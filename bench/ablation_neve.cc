// Ablation study (DESIGN.md section 5): how much does each of NEVE's three
// mechanisms contribute?
//   1. deferred access page (Table 3's VM system registers)
//   2. register redirection (Table 4's EL2->EL1 mapping)
//   3. cached copies (Table 4/5 read-side caching)
// Also measures the x86 analogue the paper cites in section 8: VMCS
// shadowing on/off (~10% on application-level work, larger on raw exits).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr int kIters = 50;

StackConfig WithParts(bool deferred, bool redirect, bool cached) {
  StackConfig cfg = StackConfig::NestedNeve(false);
  cfg.neve_deferred = deferred;
  cfg.neve_redirect = redirect;
  cfg.neve_cached = cached;
  return cfg;
}

void Run(const std::string& json_path) {
  PrintHeader("Ablation: contribution of each NEVE mechanism",
              "design-choice study over sections 6.1's three mechanisms");
  BenchReport report("ablation_neve", "cycles/op",
                     "design-choice study over section 6.1's mechanisms");

  struct Variant {
    const char* name;
    StackConfig cfg;
  };
  const Variant variants[] = {
      {"ARMv8.3 (no NEVE)", StackConfig::NestedV83(false)},
      {"deferred page only", WithParts(true, false, false)},
      {"redirection only", WithParts(false, true, false)},
      {"cached copies only", WithParts(false, false, true)},
      {"deferred + redirection", WithParts(true, true, false)},
      {"full NEVE", WithParts(true, true, true)},
  };

  for (MicrobenchKind kind :
       {MicrobenchKind::kHypercall, MicrobenchKind::kVirtualIpi}) {
    std::printf("--- %s ---\n", MicrobenchName(kind));
    TablePrinter t({"Variant", "Cycles/op", "Traps/op", "vs ARMv8.3"});
    double base = 0;
    for (const Variant& v : variants) {
      MicrobenchResult r = RunArmMicrobench(kind, v.cfg, kIters);
      if (base == 0) {
        base = r.cycles_per_op;
      }
      t.AddRow({v.name, TablePrinter::Cycles(
                            static_cast<uint64_t>(r.cycles_per_op)),
                TablePrinter::Fixed(r.traps_per_op, 1),
                TablePrinter::Fixed(base / r.cycles_per_op, 2)});
      report.Add(std::string(MicrobenchName(kind)) + " / " + v.name,
                 "ARM nested", r.cycles_per_op, std::nullopt, r.traps_per_op);
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  // GIC interface variant: the paper's hardware used a memory-mapped GICv2
  // hypervisor interface ("trivially traps to EL2 when not mapped in the
  // Stage-2 page tables", section 4); Table 5's cached copies exist only for
  // the GICv3 system-register interface.
  std::printf("--- GIC hypervisor interface: GICv3 sysregs vs GICv2 MMIO ---\n");
  {
    TablePrinter t({"Variant", "NEVE Hypercall cycles", "Traps/op"});
    StackConfig v3 = StackConfig::NestedNeve(false);
    StackConfig v2 = StackConfig::NestedNeve(false);
    v2.gicv2_mmio = true;
    MicrobenchResult r3 =
        RunArmMicrobench(MicrobenchKind::kHypercall, v3, kIters);
    MicrobenchResult r2 =
        RunArmMicrobench(MicrobenchKind::kHypercall, v2, kIters);
    t.AddRow({"GICv3 system registers",
              TablePrinter::Cycles(static_cast<uint64_t>(r3.cycles_per_op)),
              TablePrinter::Fixed(r3.traps_per_op, 1)});
    t.AddRow({"GICv2 memory-mapped",
              TablePrinter::Cycles(static_cast<uint64_t>(r2.cycles_per_op)),
              TablePrinter::Fixed(r2.traps_per_op, 1)});
    std::printf("%s\n", t.ToString().c_str());
    report.Add("Hypercall / GICv3 sysregs", "NEVE nested", r3.cycles_per_op,
               std::nullopt, r3.traps_per_op);
    report.Add("Hypercall / GICv2 MMIO", "NEVE nested", r2.cycles_per_op,
               std::nullopt, r2.traps_per_op);
  }

  std::printf("--- x86: VMCS shadowing (section 8's Intel analogue) ---\n");
  TablePrinter t({"Variant", "Nested Hypercall cycles", "Exits/op"});
  MicrobenchResult with_shadow =
      RunX86Microbench(MicrobenchKind::kHypercall, true, kIters, true);
  MicrobenchResult no_shadow =
      RunX86Microbench(MicrobenchKind::kHypercall, true, kIters, false);
  t.AddRow({"VMCS shadowing on",
            TablePrinter::Cycles(static_cast<uint64_t>(with_shadow.cycles_per_op)),
            TablePrinter::Fixed(with_shadow.traps_per_op, 1)});
  t.AddRow({"VMCS shadowing off",
            TablePrinter::Cycles(static_cast<uint64_t>(no_shadow.cycles_per_op)),
            TablePrinter::Fixed(no_shadow.traps_per_op, 1)});
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Reading: the deferred access page is the dominant mechanism (it\n"
      "covers the EL1 context switch that floods ARMv8.3 with traps);\n"
      "redirection removes the exception-vector/syndrome accesses; cached\n"
      "copies shave the remaining read-side traps. The mechanisms compose.\n");
  report.Add("Hypercall / VMCS shadowing on", "x86 nested",
             with_shadow.cycles_per_op, std::nullopt,
             with_shadow.traps_per_op);
  report.Add("Hypercall / VMCS shadowing off", "x86 nested",
             no_shadow.cycles_per_op, std::nullopt, no_shadow.traps_per_op);
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::SetBenchFaultCampaign(neve::FaultCampaignFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
