// Shared helpers for the table/figure regeneration benches.

#ifndef NEVE_BENCH_BENCH_UTIL_H_
#define NEVE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/parallel.h"

namespace neve {

// Renders "measured (paper: X, d%)" for side-by-side comparison. A zero
// paper value means "no reference number": the delta prints as n/a rather
// than a misleading +0%. The divisor is |paper| so the delta's sign always
// means "measured above/below the reference" even for negative references
// (e.g. a paper speedup expressed as a negative overhead).
inline std::string VsPaper(double measured, double paper) {
  char buf[96];
  if (paper != 0) {
    std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, %+.0f%%)", measured,
                  paper, (measured - paper) / std::fabs(paper) * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, n/a)", measured, paper);
  }
  return buf;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("    reproduces: %s\n", paper_ref);
  std::printf("    units: simulated cycles (see DESIGN.md section 1)\n\n");
}

// Extracts the value of a --json=<path> argument, or "" when absent. Every
// bench accepts this flag and mirrors its printed table into a machine-
// readable BENCH_<name>.json (schema: src/obs/report.h). Repeated flags
// behave like standard CLI flags: the last one wins.
inline std::string JsonOutPath(int argc, char** argv) {
  constexpr const char kFlag[] = "--json=";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      path = argv[i] + sizeof(kFlag) - 1;
    }
  }
  return path;
}

// Worker count for the parallel bench harness: --threads=N (last flag wins,
// like --json); absent or 0 means "pick for me" (DefaultBenchThreads).
// --threads=1 forces the serial path. Results are identical either way --
// each cell runs its own Machine, and the tables print after the join.
inline unsigned ThreadsFromArgs(int argc, char** argv) {
  constexpr const char kFlag[] = "--threads=";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      threads =
          static_cast<unsigned>(std::strtoul(argv[i] + sizeof(kFlag) - 1,
                                             nullptr, 10));
    }
  }
  return threads == 0 ? DefaultBenchThreads() : threads;
}

}  // namespace neve

#endif  // NEVE_BENCH_BENCH_UTIL_H_
