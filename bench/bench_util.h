// Shared helpers for the table/figure regeneration benches.

#ifndef NEVE_BENCH_BENCH_UTIL_H_
#define NEVE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/parallel.h"
#include "src/fault/fault.h"

namespace neve {

// Renders "measured (paper: X, d%)" for side-by-side comparison. A zero
// paper value means "no reference number": the delta prints as n/a rather
// than a misleading +0%. The divisor is |paper| so the delta's sign always
// means "measured above/below the reference" even for negative references
// (e.g. a paper speedup expressed as a negative overhead).
inline std::string VsPaper(double measured, double paper) {
  char buf[96];
  if (paper != 0) {
    std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, %+.0f%%)", measured,
                  paper, (measured - paper) / std::fabs(paper) * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, n/a)", measured, paper);
  }
  return buf;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("    reproduces: %s\n", paper_ref);
  std::printf("    units: simulated cycles (see DESIGN.md section 1)\n\n");
}

// Extracts the value of a --json=<path> argument, or "" when absent. Every
// bench accepts this flag and mirrors its printed table into a machine-
// readable BENCH_<name>.json (schema: src/obs/report.h). Repeated flags
// behave like standard CLI flags: the last one wins.
inline std::string JsonOutPath(int argc, char** argv) {
  constexpr const char kFlag[] = "--json=";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      path = argv[i] + sizeof(kFlag) - 1;
    }
  }
  return path;
}

// Worker count for the parallel bench harness: --threads=N (last flag wins,
// like --json); absent or 0 means "pick for me" (DefaultBenchThreads).
// --threads=1 forces the serial path. Results are identical either way --
// each cell runs its own Machine, and the tables print after the join.
inline unsigned ThreadsFromArgs(int argc, char** argv) {
  constexpr const char kFlag[] = "--threads=";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      threads =
          static_cast<unsigned>(std::strtoul(argv[i] + sizeof(kFlag) - 1,
                                             nullptr, 10));
    }
  }
  return threads == 0 ? DefaultBenchThreads() : threads;
}

// Batched superblock execution (src/sim/batch): --batch=on|off, last flag
// wins, default on (batching is the production path and byte-identical by
// the engine's design invariant). "off" forces the pure per-op interpreter
// everywhere -- the baseline half of every batched-vs-interpreted pair and
// the escape hatch if a batching bug is ever suspected.
inline bool BatchFromArgs(int argc, char** argv) {
  constexpr const char kFlag[] = "--batch=";
  bool batch = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      batch = std::strcmp(argv[i] + sizeof(kFlag) - 1, "off") != 0;
    }
  }
  return batch;
}

// Fault-injection campaign seed: --fault-seed=N (last flag wins). 0 (the
// default) leaves injection disabled so every bench stays byte-identical to
// its uninstrumented behavior unless a campaign is explicitly requested.
inline uint64_t FaultSeedFromArgs(int argc, char** argv) {
  constexpr const char kFlag[] = "--fault-seed=";
  uint64_t seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      seed = std::strtoull(argv[i] + sizeof(kFlag) - 1, nullptr, 10);
    }
  }
  return seed;
}

// Per-opportunity injection probability: --fault-rate=R in [0,1] (last flag
// wins); defaults to 0.
inline double FaultRateFromArgs(int argc, char** argv) {
  constexpr const char kFlag[] = "--fault-rate=";
  double rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      rate = std::strtod(argv[i] + sizeof(kFlag) - 1, nullptr);
    }
  }
  return rate;
}

// Assembles a fault campaign from the two flags above. The campaign is
// enabled only when --fault-rate is positive; --fault-seed alone keeps
// injection off (a seed without a rate draws nothing anyway, and benches
// must stay byte-identical unless a campaign is explicitly requested). The
// watchdog budget clears the longest legitimate single vcpu entry (a full
// nested-v8.3 boot, ~22M cycles) with a wide margin.
inline FaultConfig FaultCampaignFromArgs(int argc, char** argv) {
  FaultConfig fault;
  fault.seed = FaultSeedFromArgs(argc, argv);
  fault.rate = FaultRateFromArgs(argc, argv);
  fault.enabled = fault.rate > 0.0;
  if (fault.enabled) {
    fault.watchdog_budget = 200'000'000;
  }
  return fault;
}

}  // namespace neve

#endif  // NEVE_BENCH_BENCH_UTIL_H_
