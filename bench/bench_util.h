// Shared helpers for the table/figure regeneration benches.

#ifndef NEVE_BENCH_BENCH_UTIL_H_
#define NEVE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace neve {

// Renders "measured (paper: X, d%)" for side-by-side comparison.
inline std::string VsPaper(double measured, double paper) {
  char buf[96];
  double delta = paper != 0 ? (measured - paper) / paper * 100.0 : 0;
  std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, %+.0f%%)", measured,
                paper, delta);
  return buf;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("    reproduces: %s\n", paper_ref);
  std::printf("    units: simulated cycles (see DESIGN.md section 1)\n\n");
}

}  // namespace neve

#endif  // NEVE_BENCH_BENCH_UTIL_H_
