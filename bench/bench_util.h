// Shared helpers for the table/figure regeneration benches.

#ifndef NEVE_BENCH_BENCH_UTIL_H_
#define NEVE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace neve {

// Renders "measured (paper: X, d%)" for side-by-side comparison. A zero
// paper value means "no reference number": the delta prints as n/a rather
// than a misleading +0%.
inline std::string VsPaper(double measured, double paper) {
  char buf[96];
  if (paper != 0) {
    std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, %+.0f%%)", measured,
                  paper, (measured - paper) / paper * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f (paper %.0f, n/a)", measured, paper);
  }
  return buf;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("    reproduces: %s\n", paper_ref);
  std::printf("    units: simulated cycles (see DESIGN.md section 1)\n\n");
}

// Extracts the value of a --json=<path> argument, or "" when absent. Every
// bench accepts this flag and mirrors its printed table into a machine-
// readable BENCH_<name>.json (schema: src/obs/report.h).
inline std::string JsonOutPath(int argc, char** argv) {
  constexpr const char kFlag[] = "--json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return argv[i] + sizeof(kFlag) - 1;
    }
  }
  return "";
}

}  // namespace neve

#endif  // NEVE_BENCH_BENCH_UTIL_H_
