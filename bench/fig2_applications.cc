// Regenerates Figure 2: "Application Benchmark Performance" -- normalized
// overhead versus native execution for the paper's ten application workloads
// (Table 8) across seven configurations, rendered as a table plus an ASCII
// bar chart in the figure's two-scale layout.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/workload/appbench.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr AppStack kStacks[] = {
    AppStack::kArmVm,           AppStack::kArmNestedV83,
    AppStack::kArmNestedV83Vhe, AppStack::kArmNestedNeve,
    AppStack::kArmNestedNeveVhe, AppStack::kX86Vm,
    AppStack::kX86Nested,
};

std::string Bar(double overhead, double scale_max) {
  constexpr int kWidth = 34;
  int len = static_cast<int>(std::min(overhead, scale_max) / scale_max *
                             kWidth);
  std::string bar(len, '#');
  if (overhead > scale_max) {
    bar += '>';
  }
  return bar;
}

void Run(const std::string& json_path, unsigned threads) {
  PrintHeader("Figure 2: Application Benchmark Performance",
              "Lim et al., SOSP'17, Figure 2 (workloads of Table 8)");
  BenchReport report("fig2_applications", "overhead vs native (x)",
                     "Lim et al., SOSP'17, Figure 2");

  // Each of the 10x7 cells builds and runs its own Machine; the cells are
  // independent, so fan them out (--threads=N; see bench_util.h). Results
  // land in an index-addressed array and everything below prints serially,
  // keeping the output deterministic at any thread count.
  const auto profiles = AppProfiles();
  double results[10][7];
  ParallelFor(profiles.size() * 7, threads, [&](size_t cell) {
    size_t wi = cell / 7;
    size_t s = cell % 7;
    results[wi][s] = RunAppBench(profiles[wi], kStacks[s]).overhead;
  });
  std::printf("(ran %zu cells on %u threads)\n\n", profiles.size() * 7,
              threads);
  int wi = 0;
  for (const AppProfile& p : AppProfiles()) {
    for (int s = 0; s < 7; ++s) {
      report.Add(p.name, AppStackName(kStacks[s]), results[wi][s]);
    }
    ++wi;
  }

  TablePrinter t({"Workload", "ARM VM", "v8.3 Nested", "v8.3 Nested VHE",
                  "NEVE Nested", "NEVE Nested VHE", "x86 VM", "x86 Nested"});
  wi = 0;
  for (const AppProfile& p : AppProfiles()) {
    std::vector<std::string> row{p.name};
    for (int s = 0; s < 7; ++s) {
      row.push_back(TablePrinter::Fixed(results[wi][s], 2));
    }
    t.AddRow(row);
    ++wi;
  }
  std::printf("%s\n", t.ToString().c_str());

  // The figure's two vertical scales: a 0-40x panel for the collapse cases
  // and a 0-4x panel for the rest.
  std::printf("Performance overhead normalized to native (lower is better)\n");
  for (double scale : {40.0, 4.0}) {
    std::printf("\n--- scale: 0 to %.0fx ---\n", scale);
    wi = 0;
    for (const AppProfile& p : AppProfiles()) {
      std::printf("%-12s\n", p.name);
      for (int s = 0; s < 7; ++s) {
        std::printf("  %-18s %6.2fx |%s\n", AppStackName(kStacks[s]),
                    results[wi][s], Bar(results[wi][s], scale).c_str());
      }
      ++wi;
    }
  }

  std::printf(
      "\nPaper anchor points (section 7.2): kernbench 1.33x/1.26x and\n"
      "SPECjvm 1.24x/1.14x nested non-VHE/VHE; hackbench 15x/11x;\n"
      "Memcached >40x on ARMv8.3, <3x with NEVE, 8x on x86; NEVE beats\n"
      "x86 on TCP_MAERTS, Nginx, Memcached and MySQL.\n");
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv), neve::ThreadsFromArgs(argc, argv));
  return 0;
}
