// Live-migration downtime and transfer cost versus the workload's dirty
// rate, ARMv8.3-NV against NEVE.
//
// Each cell runs one full pre-copy migration (src/snap/migrate.h) of a
// nested stack over the simulated link: baseline round, dirty-delta rounds,
// stop-copy, commit handshake. The workload's store/load mix strides across
// a configurable page span, so sweeping the span sweeps how many pages each
// pre-copy round finds dirty -- the classic downtime driver. Downtime is
// analytic: the stop-copy transfer (final dirty delta plus the non-RAM
// sections of the snapshot stream) over the link bandwidth, plus one commit
// round trip.
//
// The architecture comparison isolates a NEVE-specific migration cost: the
// deferred-access (VNCR) page lives in host RAM and the guest hypervisor
// dirties it continuously, so a NEVE source ships extra dirty state every
// round that the trap-everything v8.3 stack does not have.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/snap/migrate.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr uint64_t kSteps = 192;
constexpr uint64_t kPulseInterval = 16;  // workload steps between rounds

snap::MigrationStats RunCell(bool neve, uint64_t span_pages) {
  snap::SnapSpec spec;
  spec.cfg = neve ? StackConfig::NestedNeve(false)
                  : StackConfig::NestedV83(false);
  spec.steps = kSteps;
  spec.seed = 7;
  spec.store_span_pages = span_pages;

  snap::MigrateConfig cfg;
  cfg.precopy_rounds = 4;
  cfg.pulse_interval_steps = kPulseInterval;

  snap::MigrationOutcome out;
  Status st = RunMigration(spec, cfg, &out);
  NEVE_CHECK_MSG(st.ok(), "fault-free migration must succeed");
  NEVE_CHECK_MSG(out.stats.committed && out.vm_on_dest,
                 "fault-free migration must commit");
  return out.stats;
}

void Run(const std::string& json_path) {
  PrintHeader("live-migration downtime vs dirty rate (v8.3 vs NEVE)",
              "Lim et al., SOSP'17 -- NEVE state lives in RAM (the VNCR "
              "page), so checkpoint/migration carries it as dirty state");
  BenchReport report("migrate_downtime", "simulated cycles",
                     "Lim et al., SOSP'17, sections 5-6 (VNCR page as "
                     "migratable state)");

  constexpr uint64_t kSpans[] = {1, 8, 32, 128};
  TablePrinter t({"Dirty span (pages)", "Arch", "Rounds", "Pages sent",
                  "Stop-copy bytes", "Downtime (cycles)", "Link cycles"});
  for (uint64_t span : kSpans) {
    for (bool neve : {false, true}) {
      snap::MigrationStats s = RunCell(neve, span);
      char label[32];
      std::snprintf(label, sizeof(label), "%llu",
                    static_cast<unsigned long long>(span));
      t.AddRow({label, neve ? "NEVE" : "v8.3",
                TablePrinter::Cycles(s.rounds_sent),
                TablePrinter::Cycles(s.pages_sent),
                TablePrinter::Cycles(s.stopcopy_bytes),
                TablePrinter::Fixed(s.downtime_cycles, 0),
                TablePrinter::Fixed(s.transfer_cycles, 0)});
      std::string name = std::string("span=") + label;
      std::string arch = neve ? "NEVE" : "ARM v8.3";
      report.Add(name + " downtime", arch, s.downtime_cycles);
      report.Add(name + " stopcopy_bytes", arch,
                 static_cast<double>(s.stopcopy_bytes));
      report.Add(name + " pages_sent", arch,
                 static_cast<double>(s.pages_sent));
      report.Add(name + " transfer_cycles", arch, s.transfer_cycles);
    }
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Downtime scales with the final dirty delta: wider store spans leave\n"
      "more pages dirty when stop-copy begins. NEVE ships slightly more\n"
      "state per round than v8.3 at the same span -- the deferred-access\n"
      "(VNCR) page is ordinary dirty RAM the pre-copy rounds must chase,\n"
      "the price of NEVE keeping EL2 state in memory instead of traps.\n");
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
