// Regenerates the section 6.2 recursive-virtualization claim: NEVE's trap
// savings apply at every nesting level, with the host emulating NEVE for
// deeper levels by translating the guest's VNCR page address through
// Stage-2 and using the hardware directly.
//
// The measurable consequence (not tabulated in the paper, quantified here):
// exit multiplication *squares* with depth. One L3 hypercall on plain
// ARMv8.3 costs ~126^2 traps to the host, because each of the L2
// hypervisor's ~126 trapped instructions costs the L1 hypervisor a full
// ~126-trap handling episode of its own. NEVE collapses both levels.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

struct L3Result {
  double cycles = 0;
  double traps = 0;
};

L3Result MeasureL3Hypercall(bool neve, int iters) {
  MachineConfig mc;
  mc.features = neve ? ArchFeatures::Armv84Neve() : ArchFeatures::Armv83Nv();
  Machine machine(mc);
  HostKvm l0(&machine, {});
  Vm* vm1 = l0.CreateVm({.name = "l1",
                         .ram_size = 128ull << 20,
                         .virtual_el2 = true,
                         .expose_neve = neve});
  std::unique_ptr<GuestKvm> l1;
  std::unique_ptr<GuestKvm> l2;
  L3Result result;

  vm1->vcpu(0).main_sw.main = [&](GuestEnv& env) {
    l1 = std::make_unique<GuestKvm>(&env, &machine, GuestKvmConfig{});
    Vm* vm2 = l1->CreateVm({.name = "l2",
                            .ram_size = 24ull << 20,
                            .virtual_el2 = true,
                            .expose_neve = neve});
    l1->RunVcpu(env, vm2->vcpu(0), [&](GuestEnv& l2env) {
      l2 = std::make_unique<GuestKvm>(&l2env, &machine, GuestKvmConfig{},
                                      l1->view(), &vm2->s2(), 24ull << 20);
      Vm* vm3 = l2->CreateVm({.name = "l3", .ram_size = 4ull << 20});
      l2->RunVcpu(l2env, vm3->vcpu(0), [&](GuestEnv& l3env) {
        l3env.Hvc(kHvcTestCall);  // warm shadows and caches
        uint64_t c0 = l3env.cpu().cycles();
        uint64_t t0 = l3env.cpu().trace().traps_to_el2();
        for (int i = 0; i < iters; ++i) {
          l3env.Hvc(kHvcTestCall);
        }
        result.cycles =
            static_cast<double>(l3env.cpu().cycles() - c0) / iters;
        result.traps =
            static_cast<double>(l3env.cpu().trace().traps_to_el2() - t0) /
            iters;
      });
    });
  };
  l0.RunVcpu(vm1->vcpu(0), 0);
  return result;
}

void Run(const std::string& json_path) {
  PrintHeader("Recursive nesting: L0 -> L1 -> L2 -> L3 (section 6.2)",
              "Lim et al., SOSP'17, section 6.2 (quantified extension)");
  BenchReport report("recursive_nesting", "cycles/op",
                     "Lim et al., SOSP'17, section 6.2");

  constexpr int kIters = 3;
  L3Result v83 = MeasureL3Hypercall(/*neve=*/false, kIters);
  L3Result nv = MeasureL3Hypercall(/*neve=*/true, kIters);

  TablePrinter t({"Configuration", "L3 Hypercall cycles", "Traps to L0"});
  t.AddRow({"ARMv8.3 (both levels)",
            TablePrinter::Cycles(static_cast<uint64_t>(v83.cycles)),
            TablePrinter::Fixed(v83.traps, 0)});
  t.AddRow({"NEVE (both levels)",
            TablePrinter::Cycles(static_cast<uint64_t>(nv.cycles)),
            TablePrinter::Fixed(nv.traps, 0)});
  std::printf("%s\n", t.ToString().c_str());

  std::printf("improvement: %.0fx fewer cycles, %.0fx fewer traps\n",
              v83.cycles / nv.cycles, v83.traps / nv.traps);
  std::printf(
      "\nNote the square law: the Table 7 single-level counts (~126 vs ~15\n"
      "traps) compose multiplicatively with depth -- %.0f is ~126^2 -- which\n"
      "is why the paper's recursive story depends on NEVE applying at every\n"
      "level (the host translates each level's VNCR page through Stage-2).\n",
      v83.traps);
  report.Add("L3 Hypercall", "ARMv8.3 (both levels)", v83.cycles, std::nullopt,
             v83.traps);
  report.Add("L3 Hypercall", "NEVE (both levels)", nv.cycles, std::nullopt,
             nv.traps);
  report.AddMetric("cycle_improvement_ratio", v83.cycles / nv.cycles);
  report.AddMetric("trap_improvement_ratio", v83.traps / nv.traps);
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
