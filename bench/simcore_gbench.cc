// google-benchmark microbenchmarks of the *simulator itself*: how fast the
// machine model executes, so users know what workload sizes are practical.
// (The paper's motivation for paravirtualization over cycle-accurate
// simulators -- section 3 -- is simulator slowness; ours runs a full nested
// hypercall, >100 traps deep, in microseconds of host time.)

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/arch/vncr.h"
#include "src/obs/attr.h"
#include "src/sim/batch/batch.h"
#include "src/workload/microbench.h"
#include "src/workload/stacks.h"

namespace neve {
namespace {

void BM_SysRegOp(benchmark::State& state) {
  PhysMem mem(16ull << 20);
  Cpu cpu(0, ArchFeatures::Armv83Nv(), CostModel::Default(), &mem);
  for (auto _ : state) {
    cpu.SysRegWrite(SysReg::kVBAR_EL2, 1);
    benchmark::DoNotOptimize(cpu.SysRegRead(SysReg::kVBAR_EL2));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SysRegOp);

// The steady-state call pattern of a guest hypervisor's world switch: a
// burst of EL2 sysreg accesses at virtual EL2 under NEVE, all resolving
// without trapping (deferred page + cached copies). This is the resolution
// pipeline's hottest path; the cached/uncached pair isolates the fast-path
// cache's host-side speedup (the uncached variant re-walks the full
// E2H/NV/NEVE decision tree on every access).
void RunVel2SysRegBurst(benchmark::State& state, bool cache_enabled,
                        CycleAttribution* attr = nullptr) {
  PhysMem mem(16ull << 20);
  Cpu cpu(0, ArchFeatures::Armv84Neve(), CostModel::Default(), &mem);
  if (attr != nullptr) {
    attr->AttachCpu(0);
    cpu.SetAttribution(attr);
  }
  cpu.resolution_cache().set_enabled(cache_enabled);
  cpu.PokeReg(RegId::kVNCR_EL2, VncrEl2::Make(8ull << 20, true).bits());
  cpu.PokeReg(RegId::kHCR_EL2, Hcr::Make({HcrBits::kVm, HcrBits::kImo,
                                          HcrBits::kNv, HcrBits::kNv1}));
  cpu.RunLowerEl(El::kEl1, [&] {
    for (auto _ : state) {
      benchmark::DoNotOptimize(cpu.SysRegRead(SysReg::kHCR_EL2));
      benchmark::DoNotOptimize(cpu.SysRegRead(SysReg::kVTTBR_EL2));
      benchmark::DoNotOptimize(cpu.SysRegRead(SysReg::kTPIDR_EL2));
      cpu.SysRegWrite(SysReg::kHSTR_EL2, 1);
    }
  });
  state.SetItemsProcessed(state.iterations() * 4);
}

void BM_Vel2SysRegBurstCached(benchmark::State& state) {
  RunVel2SysRegBurst(state, /*cache_enabled=*/true);
}
BENCHMARK(BM_Vel2SysRegBurstCached);

void BM_Vel2SysRegBurstUncached(benchmark::State& state) {
  RunVel2SysRegBurst(state, /*cache_enabled=*/false);
}
BENCHMARK(BM_Vel2SysRegBurstUncached);

void BM_Vel2SysRegBurstAttr(benchmark::State& state) {
  // The same burst with cycle attribution attached: the gap to
  // BM_Vel2SysRegBurstCached is the always-on accounting overhead (one
  // pointer-add per Charge). attr_test's overhead guard holds it within 3%.
  CycleAttribution attr;
  RunVel2SysRegBurst(state, /*cache_enabled=*/true, &attr);
}
BENCHMARK(BM_Vel2SysRegBurstAttr);

void BM_GuestMemoryAccess(benchmark::State& state) {
  ArmStack stack(StackConfig::Vm(), 1);
  stack.Run([&](GuestEnv& env) {
    (void)env.Load(Va(0x2000));  // warm the TLB
    for (auto _ : state) {
      benchmark::DoNotOptimize(env.Load(Va(0x2000)));
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestMemoryAccess);

void BM_VmHypercall(benchmark::State& state) {
  ArmStack stack(StackConfig::Vm(), 1);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmHypercall);

void BM_NestedHypercallV83(benchmark::State& state) {
  // >120 traps and two full world switches per iteration.
  ArmStack stack(StackConfig::NestedV83(false), 1);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedHypercallV83);

void BM_NestedHypercallV83Uncached(benchmark::State& state) {
  // The same >120-trap episode with the resolution fast-path cache disabled:
  // every sysreg access in every world switch re-walks the decision tree.
  // The gap to BM_NestedHypercallV83 is the cache's win on a trap-heavy
  // workload.
  ArmStack stack(StackConfig::NestedV83(false), 1);
  stack.machine().cpu(0).resolution_cache().set_enabled(false);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedHypercallV83Uncached);

void BM_NestedHypercallNeve(benchmark::State& state) {
  ArmStack stack(StackConfig::NestedNeve(false), 1);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedHypercallNeve);

void BM_NestedHypercallV83Observed(benchmark::State& state) {
  // Same workload as BM_NestedHypercallV83 with the observability layer
  // recording: the gap between the two is the cost of metrics + tracing when
  // *enabled* (disabled-cost is covered by the plain variant, whose Machine
  // carries the layer switched off).
  ArmStack stack(StackConfig::NestedV83(false), 1);
  stack.machine().obs().set_enabled(true);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedHypercallV83Observed);

// --- guest-ops/sec: interpreter vs batched superblock execution --------------
//
// The trap-free burst family: a straight-line run of guest ops none of which
// trap under the stack's configuration, executed through the batch engine's
// program IR -- per-op interpretation with --batch=off, one compiled block
// per Run with --batch=on. items_per_second is guest ops retired per host
// second; the batched/interpreter ratio is the engine's raw speedup, locked
// by tools/perf_ratchet.txt in CI.
batch::Program TrapFreeBurst() {
  batch::Program p;
  for (int i = 0; i < 8; ++i) {
    p.ops.push_back({.kind = batch::OpKind::kSysWrite,
                     .enc = SysReg::kTPIDR_EL1,
                     .value = static_cast<uint64_t>(i)});
    p.ops.push_back({.kind = batch::OpKind::kSysRead,
                     .enc = SysReg::kTPIDR_EL1});
    p.ops.push_back({.kind = batch::OpKind::kSysWrite,
                     .enc = SysReg::kCONTEXTIDR_EL1,
                     .value = static_cast<uint64_t>(i) * 3});
    p.ops.push_back({.kind = batch::OpKind::kSysRead,
                     .enc = SysReg::kTPIDR_EL0});
    p.ops.push_back({.kind = batch::OpKind::kCurrentEl});
    p.ops.push_back({.kind = batch::OpKind::kCompute, .value = 16});
    p.ops.push_back({.kind = batch::OpKind::kBarrier});
    p.ops.push_back({.kind = batch::OpKind::kSysRead,
                     .enc = SysReg::kCONTEXTIDR_EL1});
  }
  p.Finalize();
  return p;
}

void RunGuestOpsBurst(benchmark::State& state, StackConfig cfg, bool batch) {
  cfg.batch = batch;
  ArmStack stack(cfg, 1);
  batch::Program burst = TrapFreeBurst();
  stack.Run([&](GuestEnv& env) {
    batch::BatchEngine& eng = stack.machine().batch_engine();
    for (auto _ : state) {
      benchmark::DoNotOptimize(eng.Run(env.cpu(), burst));
    }
  });
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(burst.ops.size()));
}

#define NEVE_GUEST_OPS_BENCH(tag, config)                            \
  void BM_GuestOpsBurst_##tag##_interp(benchmark::State& state) {    \
    RunGuestOpsBurst(state, config, /*batch=*/false);                \
  }                                                                  \
  BENCHMARK(BM_GuestOpsBurst_##tag##_interp);                        \
  void BM_GuestOpsBurst_##tag##_batched(benchmark::State& state) {   \
    RunGuestOpsBurst(state, config, /*batch=*/true);                 \
  }                                                                  \
  BENCHMARK(BM_GuestOpsBurst_##tag##_batched)

NEVE_GUEST_OPS_BENCH(vm, StackConfig::Vm());
NEVE_GUEST_OPS_BENCH(nested_v83, StackConfig::NestedV83(false));
NEVE_GUEST_OPS_BENCH(nested_v83_vhe, StackConfig::NestedV83(true));
NEVE_GUEST_OPS_BENCH(nested_neve, StackConfig::NestedNeve(false));
NEVE_GUEST_OPS_BENCH(nested_neve_vhe, StackConfig::NestedNeve(true));

#undef NEVE_GUEST_OPS_BENCH

void BM_StackConstruction(benchmark::State& state) {
  for (auto _ : state) {
    ArmStack stack(StackConfig::NestedNeve(false), 1);
    benchmark::DoNotOptimize(&stack);
  }
}
BENCHMARK(BM_StackConstruction);

}  // namespace
}  // namespace neve

// BENCHMARK_MAIN plus the repo-wide --json=<path> and --batch=on|off flags;
// --json translates into google-benchmark's JSON reporter so every bench
// shares one output contract, --batch is consumed here (google-benchmark
// would reject it) and applied process-wide before any stack is built.
int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  std::vector<std::string> args(argv, argv + argc);
  std::vector<char*> argv2;
  std::string out_flag, fmt_flag;
  for (std::string& a : args) {
    constexpr const char kFlag[] = "--json=";
    if (a.compare(0, sizeof(kFlag) - 1, kFlag) == 0) {
      out_flag = "--benchmark_out=" + a.substr(sizeof(kFlag) - 1);
      fmt_flag = "--benchmark_out_format=json";
      continue;
    }
    if (a.compare(0, 8, "--batch=") == 0) {
      continue;  // consumed above
    }
    argv2.push_back(a.data());
  }
  if (!out_flag.empty()) {
    argv2.push_back(out_flag.data());
    argv2.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
