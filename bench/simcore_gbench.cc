// google-benchmark microbenchmarks of the *simulator itself*: how fast the
// machine model executes, so users know what workload sizes are practical.
// (The paper's motivation for paravirtualization over cycle-accurate
// simulators -- section 3 -- is simulator slowness; ours runs a full nested
// hypercall, >100 traps deep, in microseconds of host time.)

#include <benchmark/benchmark.h>

#include "src/workload/microbench.h"
#include "src/workload/stacks.h"

namespace neve {
namespace {

void BM_SysRegOp(benchmark::State& state) {
  PhysMem mem(16ull << 20);
  Cpu cpu(0, ArchFeatures::Armv83Nv(), CostModel::Default(), &mem);
  for (auto _ : state) {
    cpu.SysRegWrite(SysReg::kVBAR_EL2, 1);
    benchmark::DoNotOptimize(cpu.SysRegRead(SysReg::kVBAR_EL2));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SysRegOp);

void BM_GuestMemoryAccess(benchmark::State& state) {
  ArmStack stack(StackConfig::Vm(), 1);
  stack.Run([&](GuestEnv& env) {
    (void)env.Load(Va(0x2000));  // warm the TLB
    for (auto _ : state) {
      benchmark::DoNotOptimize(env.Load(Va(0x2000)));
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestMemoryAccess);

void BM_VmHypercall(benchmark::State& state) {
  ArmStack stack(StackConfig::Vm(), 1);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmHypercall);

void BM_NestedHypercallV83(benchmark::State& state) {
  // >120 traps and two full world switches per iteration.
  ArmStack stack(StackConfig::NestedV83(false), 1);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedHypercallV83);

void BM_NestedHypercallNeve(benchmark::State& state) {
  ArmStack stack(StackConfig::NestedNeve(false), 1);
  stack.Run([&](GuestEnv& env) {
    for (auto _ : state) {
      env.Hvc(kHvcTestCall);
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedHypercallNeve);

void BM_StackConstruction(benchmark::State& state) {
  for (auto _ : state) {
    ArmStack stack(StackConfig::NestedNeve(false), 1);
    benchmark::DoNotOptimize(&stack);
  }
}
BENCHMARK(BM_StackConstruction);

}  // namespace
}  // namespace neve

BENCHMARK_MAIN();
