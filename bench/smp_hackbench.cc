// SMP rows: multi-vCPU nested guests on real host threads.
//
// The paper's application benchmarks (hackbench in particular) are SMP
// workloads whose cost is dominated by cross-vCPU IPI traffic -- every
// sender/receiver wakeup is an SGI, and under nested virtualization each
// SGI's injection path multiplies through the guest hypervisor's trapped
// ICC accesses. This bench regenerates that effect with two workloads on a
// 4-vCPU nested stack driven by the SMP engine (sim/smp.h):
//
//   IPI rendezvous     -- rounds of all-to-all SGI barriers: pure cross-vCPU
//                         interrupt traffic (the hackbench signal).
//   SMP hypercalls     -- every vCPU issues hypercalls concurrently: the
//                         Table-7 hypercall row under real parallelism.
//
// Costs are measured as a difference between two round counts, so the
// (deterministic) boot and teardown cancel exactly. Output is byte-identical
// at every --threads value -- the CI tsan stage diffs --threads=1 against
// --threads=8.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/hyp/guest_kvm.h"
#include "src/obs/report.h"
#include "src/base/status.h"
#include "src/workload/microbench.h"
#include "src/workload/stacks.h"

namespace neve {
namespace {

constexpr int kVcpus = 4;

struct SmpRun {
  uint64_t traps = 0;                // total traps to the host hypervisor
  std::vector<uint64_t> vcpu_cycles; // per-vCPU simulated cycles
};

// Runs `rounds` of all-to-all IPI rendezvous on a fresh 4-vCPU stack.
SmpRun RunRendezvous(const StackConfig& cfg, int rounds, int threads) {
  ArmStack stack(cfg, kVcpus);
  std::vector<GuestMain> bodies;
  for (int k = 0; k < kVcpus; ++k) {
    bodies.push_back(stack.MakeIpiRendezvous(k, kVcpus, rounds));
  }
  std::vector<Status> statuses = stack.RunSmp(std::move(bodies), threads);
  for (const Status& s : statuses) {
    NEVE_CHECK_MSG(s.ok(), s.message().c_str());
  }
  SmpRun r;
  r.traps = stack.TotalTrapsToHost();
  for (int i = 0; i < kVcpus; ++i) {
    r.vcpu_cycles.push_back(stack.machine().cpu(i).cycles());
  }
  return r;
}

// Runs `per_vcpu` hypercalls on every vCPU of a fresh 4-vCPU stack.
SmpRun RunSmpHypercalls(const StackConfig& cfg, int per_vcpu, int threads) {
  ArmStack stack(cfg, kVcpus);
  std::vector<GuestMain> bodies;
  for (int k = 0; k < kVcpus; ++k) {
    bodies.push_back([per_vcpu](GuestEnv& env) {
      for (int i = 0; i < per_vcpu; ++i) {
        env.Hvc(kHvcTestCall);
      }
    });
  }
  std::vector<Status> statuses = stack.RunSmp(std::move(bodies), threads);
  for (const Status& s : statuses) {
    NEVE_CHECK_MSG(s.ok(), s.message().c_str());
  }
  SmpRun r;
  r.traps = stack.TotalTrapsToHost();
  for (int i = 0; i < kVcpus; ++i) {
    r.vcpu_cycles.push_back(stack.machine().cpu(i).cycles());
  }
  return r;
}

// Per-operation cost by differencing two operation counts: boot, attach and
// teardown traps are identical between the runs (determinism is the engine's
// hard invariant), so the difference is exactly the steady-state cost.
double PerOp(uint64_t hi, uint64_t lo, int ops_hi, int ops_lo) {
  return static_cast<double>(hi - lo) / static_cast<double>(ops_hi - ops_lo);
}

void Run(const std::string& json_path, int threads) {
  if (threads > kVcpus) {
    threads = kVcpus;  // the engine caps lanes at one per vCPU anyway
  }
  PrintHeader("SMP nested guests: IPI rendezvous and concurrent hypercalls",
              "Lim et al., SOSP'17, section 6 application benchmarks "
              "(hackbench) -- trap multiplication under SMP");
  BenchReport report("smp_hackbench", "traps/op",
                     "Lim et al., SOSP'17, section 6 (hackbench)");

  struct Config {
    const char* name;
    StackConfig cfg;
  };
  const Config configs[] = {
      {"ARMv8.3 Nested VHE", StackConfig::NestedV83(true)},
      {"NEVE Nested VHE", StackConfig::NestedNeve(true)},
  };

  // --- IPI rendezvous: traps per all-to-all round ---------------------------
  TablePrinter rt({"Workload", "Config", "traps/round", "cycles/round (max vCPU)"});
  double rendezvous_traps[2] = {0, 0};
  constexpr int kRoundsLo = 2, kRoundsHi = 10;
  for (int c = 0; c < 2; ++c) {
    SmpRun lo = RunRendezvous(configs[c].cfg, kRoundsLo, threads);
    SmpRun hi = RunRendezvous(configs[c].cfg, kRoundsHi, threads);
    double traps_per_round = PerOp(hi.traps, lo.traps, kRoundsHi, kRoundsLo);
    uint64_t max_lo = 0, max_hi = 0;
    for (int i = 0; i < kVcpus; ++i) {
      max_lo = std::max(max_lo, lo.vcpu_cycles[i]);
      max_hi = std::max(max_hi, hi.vcpu_cycles[i]);
    }
    double cycles_per_round = PerOp(max_hi, max_lo, kRoundsHi, kRoundsLo);
    rendezvous_traps[c] = traps_per_round;
    char traps_buf[32], cyc_buf[32];
    std::snprintf(traps_buf, sizeof(traps_buf), "%.1f", traps_per_round);
    std::snprintf(cyc_buf, sizeof(cyc_buf), "%.0f", cycles_per_round);
    rt.AddRow({"IPI rendezvous", configs[c].name, traps_buf, cyc_buf});
    report.Add("IPI Rendezvous", configs[c].name, traps_per_round,
               std::nullopt, traps_per_round);
    report.AddMetric(std::string("rendezvous_cycles_per_round_") +
                         (c == 0 ? "v83" : "neve"),
                     cycles_per_round);
    // Per-vCPU cycle attribution for the steady state (hi minus lo).
    for (int i = 0; i < kVcpus; ++i) {
      report.AddMetric(std::string("rendezvous_vcpu") + std::to_string(i) +
                           "_cycles_per_round_" + (c == 0 ? "v83" : "neve"),
                       PerOp(hi.vcpu_cycles[static_cast<size_t>(i)],
                             lo.vcpu_cycles[static_cast<size_t>(i)], kRoundsHi,
                             kRoundsLo));
    }
  }
  std::printf("%s\n", rt.ToString().c_str());

  // --- SMP hypercalls: traps per hypercall ----------------------------------
  TablePrinter ht({"Workload", "Config", "traps/op"});
  double hvc_traps[2] = {0, 0};
  constexpr int kOpsLo = 8, kOpsHi = 40;
  for (int c = 0; c < 2; ++c) {
    SmpRun lo = RunSmpHypercalls(configs[c].cfg, kOpsLo, threads);
    SmpRun hi = RunSmpHypercalls(configs[c].cfg, kOpsHi, threads);
    double traps_per_op =
        PerOp(hi.traps, lo.traps, kOpsHi * kVcpus, kOpsLo * kVcpus);
    hvc_traps[c] = traps_per_op;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", traps_per_op);
    ht.AddRow({"SMP hypercalls (4 vCPU)", configs[c].name, buf});
    report.Add("SMP Hypercall", configs[c].name, traps_per_op, std::nullopt,
               traps_per_op);
  }
  std::printf("%s\n", ht.ToString().c_str());

  double rendezvous_ratio = rendezvous_traps[1] > 0
                                ? rendezvous_traps[0] / rendezvous_traps[1]
                                : 0;
  double hvc_ratio = hvc_traps[1] > 0 ? hvc_traps[0] / hvc_traps[1] : 0;
  std::printf(
      "NEVE cuts SMP trap traffic: %.1fx fewer traps per rendezvous round,\n"
      "%.1fx fewer per concurrent hypercall (the paper's hackbench rows are\n"
      "dominated by exactly this IPI-injection path).\n",
      rendezvous_ratio, hvc_ratio);
  report.AddMetric("neve_smp_rendezvous_trap_reduction_ratio",
                   rendezvous_ratio);
  report.AddMetric("neve_smp_hypercall_trap_reduction_ratio", hvc_ratio);
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv),
            static_cast<int>(neve::ThreadsFromArgs(argc, argv)));
  return 0;
}
