// Regenerates Table 1: "Microbenchmark Cycle Counts" -- kvm-unit-tests style
// microbenchmarks in VM and nested-VM configurations on ARMv8.3 (non-VHE and
// VHE guest hypervisors) and x86 (KVM with VMCS shadowing).

#include <cstdio>
#include <iterator>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr int kIters = 50;

struct PaperRow {
  MicrobenchKind kind;
  double vm, nested, nested_vhe, x86_vm, x86_nested;
};

// Table 1 of the paper.
constexpr PaperRow kPaper[] = {
    {MicrobenchKind::kHypercall, 2729, 422720, 307363, 1188, 36345},
    {MicrobenchKind::kDeviceIo, 3534, 436924, 312148, 2307, 39108},
    {MicrobenchKind::kVirtualIpi, 8364, 611686, 494765, 2751, 45360},
    {MicrobenchKind::kVirtualEoi, 71, 71, 71, 316, 316},
};

void Run(const std::string& json_path, unsigned threads) {
  PrintHeader("Table 1: Microbenchmark Cycle Counts (ARMv8.3 vs x86)",
              "Lim et al., SOSP'17, Table 1");
  BenchReport report("table1_micro_v83", "cycles/op",
                     "Lim et al., SOSP'17, Table 1");
  TablePrinter t({"Micro-benchmark", "ARM VM", "ARM Nested VM",
                  "ARM Nested VM VHE", "x86 VM", "x86 Nested VM"});
  // 4 rows x 5 configurations, each an independent stack: fan the cells out
  // (--threads=N), then assemble the table serially from the result array.
  constexpr size_t kRows = std::size(kPaper);
  constexpr size_t kCols = 5;
  MicrobenchResult cells[kRows][kCols];
  ParallelFor(kRows * kCols, threads, [&](size_t cell) {
    size_t r = cell / kCols;
    MicrobenchKind kind = kPaper[r].kind;
    switch (cell % kCols) {
      case 0:
        cells[r][0] = RunArmMicrobench(kind, StackConfig::Vm(), kIters);
        break;
      case 1:
        cells[r][1] =
            RunArmMicrobench(kind, StackConfig::NestedV83(false), kIters);
        break;
      case 2:
        cells[r][2] =
            RunArmMicrobench(kind, StackConfig::NestedV83(true), kIters);
        break;
      case 3:
        cells[r][3] = RunX86Microbench(kind, false, kIters);
        break;
      case 4:
        cells[r][4] = RunX86Microbench(kind, true, kIters);
        break;
    }
  });
  for (size_t r = 0; r < kRows; ++r) {
    const PaperRow& row = kPaper[r];
    const MicrobenchResult& vm = cells[r][0];
    const MicrobenchResult& nested = cells[r][1];
    const MicrobenchResult& nested_vhe = cells[r][2];
    const MicrobenchResult& x86_vm = cells[r][3];
    const MicrobenchResult& x86_nested = cells[r][4];
    t.AddRow({MicrobenchName(row.kind), VsPaper(vm.cycles_per_op, row.vm),
              VsPaper(nested.cycles_per_op, row.nested),
              VsPaper(nested_vhe.cycles_per_op, row.nested_vhe),
              VsPaper(x86_vm.cycles_per_op, row.x86_vm),
              VsPaper(x86_nested.cycles_per_op, row.x86_nested)});
    const char* name = MicrobenchName(row.kind);
    report.Add(name, "ARM VM", vm.cycles_per_op, row.vm, vm.traps_per_op);
    report.Add(name, "ARM Nested VM", nested.cycles_per_op, row.nested,
               nested.traps_per_op);
    report.Add(name, "ARM Nested VM VHE", nested_vhe.cycles_per_op,
               row.nested_vhe, nested_vhe.traps_per_op);
    report.Add(name, "x86 VM", x86_vm.cycles_per_op, row.x86_vm,
               x86_vm.traps_per_op);
    report.Add(name, "x86 Nested VM", x86_nested.cycles_per_op, row.x86_nested,
               x86_nested.traps_per_op);
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Shape checks: ARM nested-VM costs are 1-2 orders of magnitude above\n"
      "the VM baseline (exit multiplication), VHE guest hypervisors trap\n"
      "less than non-VHE ones, Virtual EOI is flat (hardware-accelerated),\n"
      "and x86 nesting is far cheaper than ARMv8.3 nesting.\n");
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::SetBenchFaultCampaign(neve::FaultCampaignFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv), neve::ThreadsFromArgs(argc, argv));
  return 0;
}
