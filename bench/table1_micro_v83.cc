// Regenerates Table 1: "Microbenchmark Cycle Counts" -- kvm-unit-tests style
// microbenchmarks in VM and nested-VM configurations on ARMv8.3 (non-VHE and
// VHE guest hypervisors) and x86 (KVM with VMCS shadowing).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr int kIters = 50;

struct PaperRow {
  MicrobenchKind kind;
  double vm, nested, nested_vhe, x86_vm, x86_nested;
};

// Table 1 of the paper.
constexpr PaperRow kPaper[] = {
    {MicrobenchKind::kHypercall, 2729, 422720, 307363, 1188, 36345},
    {MicrobenchKind::kDeviceIo, 3534, 436924, 312148, 2307, 39108},
    {MicrobenchKind::kVirtualIpi, 8364, 611686, 494765, 2751, 45360},
    {MicrobenchKind::kVirtualEoi, 71, 71, 71, 316, 316},
};

void Run(const std::string& json_path) {
  PrintHeader("Table 1: Microbenchmark Cycle Counts (ARMv8.3 vs x86)",
              "Lim et al., SOSP'17, Table 1");
  BenchReport report("table1_micro_v83", "cycles/op",
                     "Lim et al., SOSP'17, Table 1");
  TablePrinter t({"Micro-benchmark", "ARM VM", "ARM Nested VM",
                  "ARM Nested VM VHE", "x86 VM", "x86 Nested VM"});
  for (const PaperRow& row : kPaper) {
    MicrobenchResult vm = RunArmMicrobench(row.kind, StackConfig::Vm(), kIters);
    MicrobenchResult nested =
        RunArmMicrobench(row.kind, StackConfig::NestedV83(false), kIters);
    MicrobenchResult nested_vhe =
        RunArmMicrobench(row.kind, StackConfig::NestedV83(true), kIters);
    MicrobenchResult x86_vm = RunX86Microbench(row.kind, false, kIters);
    MicrobenchResult x86_nested = RunX86Microbench(row.kind, true, kIters);
    t.AddRow({MicrobenchName(row.kind), VsPaper(vm.cycles_per_op, row.vm),
              VsPaper(nested.cycles_per_op, row.nested),
              VsPaper(nested_vhe.cycles_per_op, row.nested_vhe),
              VsPaper(x86_vm.cycles_per_op, row.x86_vm),
              VsPaper(x86_nested.cycles_per_op, row.x86_nested)});
    const char* name = MicrobenchName(row.kind);
    report.Add(name, "ARM VM", vm.cycles_per_op, row.vm, vm.traps_per_op);
    report.Add(name, "ARM Nested VM", nested.cycles_per_op, row.nested,
               nested.traps_per_op);
    report.Add(name, "ARM Nested VM VHE", nested_vhe.cycles_per_op,
               row.nested_vhe, nested_vhe.traps_per_op);
    report.Add(name, "x86 VM", x86_vm.cycles_per_op, row.x86_vm,
               x86_vm.traps_per_op);
    report.Add(name, "x86 Nested VM", x86_nested.cycles_per_op, row.x86_nested,
               x86_nested.traps_per_op);
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Shape checks: ARM nested-VM costs are 1-2 orders of magnitude above\n"
      "the VM baseline (exit multiplication), VHE guest hypervisors trap\n"
      "less than non-VHE ones, Virtual EOI is flat (hardware-accelerated),\n"
      "and x86 nesting is far cheaper than ARMv8.3 nesting.\n");
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
