// Regenerates Table 6: "Microbenchmark Cycle Counts" with NEVE -- the same
// microbenchmarks with NEVE guest hypervisors next to ARMv8.3 and x86, plus
// the relative overhead versus each platform's non-nested VM.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr int kIters = 50;

struct PaperRow {
  MicrobenchKind kind;
  double v83, v83_vhe, neve, neve_vhe, x86;        // nested cycle counts
  double v83_x, v83_vhe_x, neve_x, neve_vhe_x, x86_x;  // paper's overheads
};

// Table 6 of the paper (cycle counts and parenthesized overheads).
constexpr PaperRow kPaper[] = {
    {MicrobenchKind::kHypercall, 422720, 307363, 92385, 100895, 36345,
     155, 113, 34, 37, 31},
    {MicrobenchKind::kDeviceIo, 436924, 312148, 96002, 105071, 39108,
     124, 88, 27, 30, 17},
    {MicrobenchKind::kVirtualIpi, 611686, 494765, 184657, 213256, 45360,
     73, 59, 22, 25, 16},
    {MicrobenchKind::kVirtualEoi, 71, 71, 71, 71, 316, 1, 1, 1, 1, 1},
};

std::string WithOverhead(double cycles, double baseline, double paper_cycles,
                         double paper_x) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.0f (%.0fx; paper %.0f/%.0fx)", cycles,
                baseline > 0 ? cycles / baseline : 0, paper_cycles, paper_x);
  return buf;
}

void Run(const std::string& json_path) {
  PrintHeader("Table 6: Microbenchmark Cycle Counts with NEVE",
              "Lim et al., SOSP'17, Table 6");
  BenchReport report("table6_micro_neve", "cycles/op",
                     "Lim et al., SOSP'17, Table 6");
  TablePrinter t({"Micro-benchmark", "ARMv8.3 Nested", "ARMv8.3 Nested VHE",
                  "NEVE Nested", "NEVE Nested VHE", "x86 Nested"});
  for (const PaperRow& row : kPaper) {
    double vm =
        RunArmMicrobench(row.kind, StackConfig::Vm(), kIters).cycles_per_op;
    double x86_vm = RunX86Microbench(row.kind, false, kIters).cycles_per_op;
    double v83 = RunArmMicrobench(row.kind, StackConfig::NestedV83(false),
                                  kIters)
                     .cycles_per_op;
    double v83_vhe =
        RunArmMicrobench(row.kind, StackConfig::NestedV83(true), kIters)
            .cycles_per_op;
    double nv = RunArmMicrobench(row.kind, StackConfig::NestedNeve(false),
                                 kIters)
                    .cycles_per_op;
    double nv_vhe =
        RunArmMicrobench(row.kind, StackConfig::NestedNeve(true), kIters)
            .cycles_per_op;
    double x86 = RunX86Microbench(row.kind, true, kIters).cycles_per_op;
    t.AddRow({MicrobenchName(row.kind),
              WithOverhead(v83, vm, row.v83, row.v83_x),
              WithOverhead(v83_vhe, vm, row.v83_vhe, row.v83_vhe_x),
              WithOverhead(nv, vm, row.neve, row.neve_x),
              WithOverhead(nv_vhe, vm, row.neve_vhe, row.neve_vhe_x),
              WithOverhead(x86, x86_vm, row.x86, row.x86_x)});
    const char* name = MicrobenchName(row.kind);
    report.Add(name, "ARMv8.3 Nested", v83, row.v83);
    report.Add(name, "ARMv8.3 Nested VHE", v83_vhe, row.v83_vhe);
    report.Add(name, "NEVE Nested", nv, row.neve);
    report.Add(name, "NEVE Nested VHE", nv_vhe, row.neve_vhe);
    report.Add(name, "x86 Nested", x86, row.x86);
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Headline claims: NEVE is up to ~5x faster than ARMv8.3 for nested\n"
      "VMs, and its *relative* overhead (vs a non-nested VM) is comparable\n"
      "to x86's despite slower absolute hardware (section 7.1).\n");
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::SetBenchFaultCampaign(neve::FaultCampaignFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
