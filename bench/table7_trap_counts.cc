// Regenerates Table 7: "Microbenchmark Average Trap Counts" -- exceptions
// taken to the host hypervisor per microbenchmark operation -- plus the
// section 5 in-text trap counts (1 trap per VM hypercall; 126/82 nested).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table_printer.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr int kIters = 50;

struct PaperRow {
  MicrobenchKind kind;
  double v83, v83_vhe, neve, neve_vhe, x86;
};

// Table 7 of the paper.
constexpr PaperRow kPaper[] = {
    {MicrobenchKind::kHypercall, 126, 82, 15, 15, 5},
    {MicrobenchKind::kDeviceIo, 128, 82, 15, 15, 5},
    {MicrobenchKind::kVirtualIpi, 261, 172, 37, 38, 9},
    {MicrobenchKind::kVirtualEoi, 0, 0, 0, 0, 0},
};

void Run(const std::string& json_path) {
  PrintHeader("Table 7: Microbenchmark Average Trap Counts",
              "Lim et al., SOSP'17, Table 7 + section 5 in-text counts");
  BenchReport report("table7_trap_counts", "traps/op",
                     "Lim et al., SOSP'17, Table 7");

  // Section 5: single-level baseline.
  MicrobenchResult vm =
      RunArmMicrobench(MicrobenchKind::kHypercall, StackConfig::Vm(), kIters);
  std::printf("VM Hypercall: %.1f traps (paper: 1)\n\n", vm.traps_per_op);
  report.Add("Hypercall", "ARM VM", vm.traps_per_op, 1, vm.traps_per_op);

  TablePrinter t({"Micro-benchmark", "ARMv8.3 Nested", "ARMv8.3 Nested VHE",
                  "NEVE Nested", "NEVE Nested VHE", "x86 Nested"});
  double worst_ratio = 0;
  for (const PaperRow& row : kPaper) {
    double v83 = RunArmMicrobench(row.kind, StackConfig::NestedV83(false),
                                  kIters)
                     .traps_per_op;
    double v83_vhe =
        RunArmMicrobench(row.kind, StackConfig::NestedV83(true), kIters)
            .traps_per_op;
    double nv = RunArmMicrobench(row.kind, StackConfig::NestedNeve(false),
                                 kIters)
                    .traps_per_op;
    double nv_vhe =
        RunArmMicrobench(row.kind, StackConfig::NestedNeve(true), kIters)
            .traps_per_op;
    double x86 = RunX86Microbench(row.kind, true, kIters).traps_per_op;
    t.AddRow({MicrobenchName(row.kind), VsPaper(v83, row.v83),
              VsPaper(v83_vhe, row.v83_vhe), VsPaper(nv, row.neve),
              VsPaper(nv_vhe, row.neve_vhe), VsPaper(x86, row.x86)});
    const char* name = MicrobenchName(row.kind);
    report.Add(name, "ARMv8.3 Nested", v83, row.v83, v83);
    report.Add(name, "ARMv8.3 Nested VHE", v83_vhe, row.v83_vhe, v83_vhe);
    report.Add(name, "NEVE Nested", nv, row.neve, nv);
    report.Add(name, "NEVE Nested VHE", nv_vhe, row.neve_vhe, nv_vhe);
    report.Add(name, "x86 Nested", x86, row.x86, x86);
    if (nv > 0) {
      worst_ratio = std::max(worst_ratio, v83 / nv);
    }
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "NEVE reduces trap counts by up to %.1fx versus ARMv8.3 (paper:\n"
      "\"more than six times\"), resolving the exit multiplication problem.\n",
      worst_ratio);
  report.AddMetric("neve_trap_reduction_ratio", worst_ratio);
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::SetBenchFaultCampaign(neve::FaultCampaignFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
