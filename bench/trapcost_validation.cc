// Regenerates the section 5 trap-cost validation: the paravirtualization
// methodology (section 3) assumes different trapping instruction classes
// cost about the same, so that hvc can stand in for sysreg traps. The paper
// measures EL1->EL2 trap costs of 68-76 cycles, exception returns of 65
// cycles, and an overall spread under 10%.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/stats.h"
#include "src/base/table_printer.h"
#include "src/cpu/cpu.h"
#include "src/obs/report.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

// Measures the pure trap cost (entry + return, empty handler) of one
// operation class.
class NullHost : public El2Host {
 public:
  TrapOutcome OnTrapToEl2(Cpu&, const Syndrome&) override {
    return TrapOutcome::Completed(0);
  }
};

struct Probe {
  const char* name;
  void (*op)(Cpu&);
};

void Run(const std::string& json_path) {
  PrintHeader("Section 5: trap-cost interchangeability validation",
              "Lim et al., SOSP'17, section 5 in-text measurements");
  BenchReport report("trapcost_validation", "cycles",
                     "Lim et al., SOSP'17, section 5 in-text");

  PhysMem mem(16ull << 20);
  Cpu cpu(0, ArchFeatures::Armv83Nv(), CostModel::Default(), &mem);
  NullHost host;
  cpu.SetEl2Host(&host);
  cpu.PokeReg(RegId::kHCR_EL2, Hcr::Make({HcrBits::kVm, HcrBits::kImo,
                                          HcrBits::kNv, HcrBits::kNv1}));

  const Probe probes[] = {
      {"hvc (explicit trap)", [](Cpu& c) { c.Hvc(0); }},
      {"msr VBAR_EL2 (sysreg trap)",
       [](Cpu& c) { c.SysRegWrite(SysReg::kVBAR_EL2, 0); }},
      {"mrs HCR_EL2 (sysreg trap)",
       [](Cpu& c) { (void)c.SysRegRead(SysReg::kHCR_EL2); }},
      {"msr SPSR_EL1 (NV1 trap)",
       [](Cpu& c) { c.SysRegWrite(SysReg::kSPSR_EL1, 0); }},
      {"msr ICH_LR0_EL2 (GIC trap)",
       [](Cpu& c) { c.SysRegWrite(SysReg::kICH_LR0_EL2, 0); }},
      {"eret (NV trap)", [](Cpu& c) { c.EretFromVirtualEl2(); }},
      {"wfi (TWI trap)", [](Cpu& c) { c.Wfi(); }},
  };

  RunningStats entry_stats;
  TablePrinter t({"Trapping instruction", "EL1->EL2 entry", "EL2->EL1 return",
                  "Total"});
  for (const Probe& probe : probes) {
    // The TWI probe needs the trap bit.
    uint64_t hcr = Hcr::Make({HcrBits::kVm, HcrBits::kImo, HcrBits::kNv,
                              HcrBits::kNv1, HcrBits::kTwi});
    cpu.PokeReg(RegId::kHCR_EL2, hcr);
    uint64_t total = 0;
    cpu.RunLowerEl(El::kEl1, [&] {
      uint64_t c0 = cpu.cycles();
      probe.op(cpu);
      total = cpu.cycles() - c0;
    });
    uint64_t ret = cpu.cost().trap_return;
    uint64_t entry = total - ret;
    entry_stats.Add(static_cast<double>(entry));
    t.AddRow({probe.name, TablePrinter::Cycles(entry),
              TablePrinter::Cycles(ret), TablePrinter::Cycles(total)});
    report.Add(probe.name, "EL1->EL2 entry", static_cast<double>(entry));
  }
  std::printf("%s\n", t.ToString().c_str());

  std::printf("entry cost:  min %.0f  max %.0f  (paper: 68-76 cycles)\n",
              entry_stats.min(), entry_stats.max());
  std::printf("return cost: %u (paper: 65 cycles)\n",
              CostModel::Default().trap_return);
  std::printf("relative spread: %.1f%% (paper: <10%% overall, <10 cycles)\n",
              entry_stats.relative_spread() * 100.0);
  std::printf(
      "\nConclusion (as in the paper): hvc is a faithful stand-in for the\n"
      "system-register traps ARMv8.3 introduces, validating the\n"
      "paravirtualization-based evaluation methodology.\n");
  report.AddMetric("entry_min_cycles", entry_stats.min());
  report.AddMetric("entry_max_cycles", entry_stats.max());
  report.AddMetric("entry_mean_cycles", entry_stats.mean());
  report.AddMetric("relative_spread_pct", entry_stats.relative_spread() * 100);
  report.AddMetric("return_cycles", CostModel::Default().trap_return);
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
