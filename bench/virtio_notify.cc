// Quantifies the virtio notification-scaling anomaly of section 7.2: "the
// quicker the backend driver handles packets, the more the frontend needs to
// notify ... having faster hardware can result in more virtualization
// overhead." The paper demonstrates it by busy-waiting in the x86 L1 backend
// to slow it down, which pulled Memcached's overhead down toward NEVE's; this
// bench sweeps the backend's per-buffer cost and reports the kick (VM-exit)
// rate through a real split virtqueue in guest memory.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/base/table_printer.h"
#include "src/hyp/host_kvm.h"
#include "src/hyp/virtio.h"
#include "src/obs/report.h"
#include "src/sim/machine.h"
#include "src/workload/microbench.h"

namespace neve {
namespace {

constexpr uint64_t kRingIpa = 0x10000;
constexpr uint64_t kDoorbellIpa = 0x4000'0000;
// Bursty request traffic: bursts of packets with jittered inter-packet gaps,
// separated by client think time (a memcached-like pattern).
constexpr int kBursts = 40;
constexpr int kBurstLen = 5;
constexpr int kSends = kBursts * kBurstLen;
constexpr uint32_t kMeanGap = 6000;
constexpr uint32_t kThinkTime = 60000;

struct SweepResult {
  uint64_t kicks = 0;
  uint64_t exits = 0;
  double cycles_per_send = 0;
};

SweepResult RunSweep(uint32_t per_buffer_cycles, BenchReport* report) {
  Machine machine(MachineConfig{.features = ArchFeatures::Armv83Nv()});
  // Observability on: the sweep doubles as an end-to-end exercise of the
  // virtio instrumentation (recording never charges simulated cycles, so the
  // measured numbers are unaffected).
  machine.obs().set_enabled(true);
  HostKvm kvm(&machine, {});
  Vm* vm = kvm.CreateVm({.name = "net", .ram_size = 8ull << 20});
  VirtioBackend backend(&machine.mem(), Pa(vm->ram_base().value + kRingIpa),
                        per_buffer_cycles);
  vm->AddMmioRange(Ipa(kDoorbellIpa), kPageSize, &backend);

  SweepResult result;
  vm->vcpu(0).main_sw.main = [&](GuestEnv& env) {
    VirtioDriver driver{Va(kRingIpa), Va(kDoorbellIpa)};
    driver.Init(env);
    // Warm the translations and the first kick.
    driver.SendBuffer(env, 0x5000, 1500);
    env.Compute(10 * per_buffer_cycles + 1000);
    backend.Poll(env.cpu().cycles());
    (void)driver.ReapUsed(env);

    Rng rng(42);
    uint64_t kicks0 = driver.kicks_sent();
    uint64_t traps0 = env.cpu().trace().traps_to_el2();
    uint64_t c0 = env.cpu().cycles();
    for (int burst = 0; burst < kBursts; ++burst) {
      for (int i = 0; i < kBurstLen; ++i) {
        driver.SendBuffer(env, 0x5000 + (i % 8) * 0x200, 1500);
        env.Compute(
            static_cast<uint32_t>(kMeanGap / 2 + rng.NextBelow(kMeanGap)));
        backend.Poll(env.cpu().cycles());
        (void)driver.ReapUsed(env);
      }
      env.Compute(kThinkTime);  // client think time: backend catches up
      backend.Poll(env.cpu().cycles());
      (void)driver.ReapUsed(env);
    }
    result.kicks = driver.kicks_sent() - kicks0;
    result.exits = env.cpu().trace().traps_to_el2() - traps0;
    result.cycles_per_send =
        static_cast<double>(env.cpu().cycles() - c0) / kSends;
  };
  kvm.RunVcpu(vm->vcpu(0), 0);
  if (report != nullptr) {
    // Publish the machine's metrics (trap-episode histogram, virtio/GIC
    // counters) from this sweep alongside the table data.
    report->AddRegistry(machine.obs().metrics());
  }
  return result;
}

void Run(const std::string& json_path) {
  PrintHeader("virtio notification scaling (section 7.2's anomaly)",
              "Lim et al., SOSP'17, section 7.2 Memcached discussion");
  BenchReport report("virtio_notify", "kicks per 200 sends",
                     "Lim et al., SOSP'17, section 7.2");

  constexpr uint32_t kSweep[] = {200u, 1000u, 4000u, 8000u, 16000u, 64000u};
  TablePrinter t({"Backend per-buffer cycles", "Kicks / 200 sends",
                  "Exits / 200 sends", "Guest cycles per send"});
  for (uint32_t per_buffer : kSweep) {
    // The fastest (most kick-heavy) backend contributes its metric registry.
    SweepResult r = RunSweep(per_buffer, per_buffer == kSweep[0] ? &report
                                                                 : nullptr);
    char label[32];
    std::snprintf(label, sizeof(label), "%u", per_buffer);
    t.AddRow({label, TablePrinter::Cycles(r.kicks),
              TablePrinter::Cycles(r.exits),
              TablePrinter::Fixed(r.cycles_per_send, 0)});
    report.Add(std::string("per_buffer=") + label, "ARM VM",
               static_cast<double>(r.kicks), std::nullopt,
               static_cast<double>(r.exits) / kSends);
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Fast backends (left rows: x86-like) re-enable notifications before\n"
      "the guest's next packet, so nearly every send exits; slow backends\n"
      "(ARMv8.3-nested-like) coalesce sends under one suppression window.\n"
      "This is why the paper measured >4x as many I/O exits for Memcached\n"
      "on x86 as with NEVE, and why slowing the x86 backend artificially\n"
      "closed the gap.\n");
  report.WriteIfRequested(json_path);
}

}  // namespace
}  // namespace neve

int main(int argc, char** argv) {
  neve::SetBenchBatchMode(neve::BatchFromArgs(argc, argv));
  neve::Run(neve::JsonOutPath(argc, argv));
  return 0;
}
