file(REMOVE_RECURSE
  "CMakeFiles/ablation_neve.dir/ablation_neve.cc.o"
  "CMakeFiles/ablation_neve.dir/ablation_neve.cc.o.d"
  "ablation_neve"
  "ablation_neve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_neve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
