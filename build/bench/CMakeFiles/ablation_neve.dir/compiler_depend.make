# Empty compiler generated dependencies file for ablation_neve.
# This may be replaced when dependencies are built.
