file(REMOVE_RECURSE
  "CMakeFiles/fig2_applications.dir/fig2_applications.cc.o"
  "CMakeFiles/fig2_applications.dir/fig2_applications.cc.o.d"
  "fig2_applications"
  "fig2_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
