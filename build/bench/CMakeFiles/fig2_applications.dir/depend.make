# Empty dependencies file for fig2_applications.
# This may be replaced when dependencies are built.
