file(REMOVE_RECURSE
  "CMakeFiles/recursive_nesting.dir/recursive_nesting.cc.o"
  "CMakeFiles/recursive_nesting.dir/recursive_nesting.cc.o.d"
  "recursive_nesting"
  "recursive_nesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_nesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
