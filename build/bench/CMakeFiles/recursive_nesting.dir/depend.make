# Empty dependencies file for recursive_nesting.
# This may be replaced when dependencies are built.
