file(REMOVE_RECURSE
  "CMakeFiles/table1_micro_v83.dir/table1_micro_v83.cc.o"
  "CMakeFiles/table1_micro_v83.dir/table1_micro_v83.cc.o.d"
  "table1_micro_v83"
  "table1_micro_v83.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_micro_v83.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
