# Empty compiler generated dependencies file for table1_micro_v83.
# This may be replaced when dependencies are built.
