file(REMOVE_RECURSE
  "CMakeFiles/table6_micro_neve.dir/table6_micro_neve.cc.o"
  "CMakeFiles/table6_micro_neve.dir/table6_micro_neve.cc.o.d"
  "table6_micro_neve"
  "table6_micro_neve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_micro_neve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
