# Empty compiler generated dependencies file for table6_micro_neve.
# This may be replaced when dependencies are built.
