
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table7_trap_counts.cc" "bench/CMakeFiles/table7_trap_counts.dir/table7_trap_counts.cc.o" "gcc" "bench/CMakeFiles/table7_trap_counts.dir/table7_trap_counts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/neve_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hyp/CMakeFiles/neve_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/neve_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/gic/CMakeFiles/neve_gic.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/neve_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/neve_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/neve_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/neve_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/neve_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
