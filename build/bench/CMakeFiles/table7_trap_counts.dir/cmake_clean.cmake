file(REMOVE_RECURSE
  "CMakeFiles/table7_trap_counts.dir/table7_trap_counts.cc.o"
  "CMakeFiles/table7_trap_counts.dir/table7_trap_counts.cc.o.d"
  "table7_trap_counts"
  "table7_trap_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_trap_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
