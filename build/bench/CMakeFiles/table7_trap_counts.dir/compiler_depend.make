# Empty compiler generated dependencies file for table7_trap_counts.
# This may be replaced when dependencies are built.
