file(REMOVE_RECURSE
  "CMakeFiles/trapcost_validation.dir/trapcost_validation.cc.o"
  "CMakeFiles/trapcost_validation.dir/trapcost_validation.cc.o.d"
  "trapcost_validation"
  "trapcost_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trapcost_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
