# Empty compiler generated dependencies file for trapcost_validation.
# This may be replaced when dependencies are built.
