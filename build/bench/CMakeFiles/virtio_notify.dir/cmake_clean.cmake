file(REMOVE_RECURSE
  "CMakeFiles/virtio_notify.dir/virtio_notify.cc.o"
  "CMakeFiles/virtio_notify.dir/virtio_notify.cc.o.d"
  "virtio_notify"
  "virtio_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtio_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
