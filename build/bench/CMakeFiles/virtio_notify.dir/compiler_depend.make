# Empty compiler generated dependencies file for virtio_notify.
# This may be replaced when dependencies are built.
