file(REMOVE_RECURSE
  "CMakeFiles/nested_boot.dir/nested_boot.cpp.o"
  "CMakeFiles/nested_boot.dir/nested_boot.cpp.o.d"
  "nested_boot"
  "nested_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
