# Empty compiler generated dependencies file for nested_boot.
# This may be replaced when dependencies are built.
