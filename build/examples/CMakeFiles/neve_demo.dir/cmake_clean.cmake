file(REMOVE_RECURSE
  "CMakeFiles/neve_demo.dir/neve_demo.cpp.o"
  "CMakeFiles/neve_demo.dir/neve_demo.cpp.o.d"
  "neve_demo"
  "neve_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
