# Empty compiler generated dependencies file for neve_demo.
# This may be replaced when dependencies are built.
