file(REMOVE_RECURSE
  "CMakeFiles/recursive_l3.dir/recursive_l3.cpp.o"
  "CMakeFiles/recursive_l3.dir/recursive_l3.cpp.o.d"
  "recursive_l3"
  "recursive_l3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_l3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
