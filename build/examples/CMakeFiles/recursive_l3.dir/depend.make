# Empty dependencies file for recursive_l3.
# This may be replaced when dependencies are built.
