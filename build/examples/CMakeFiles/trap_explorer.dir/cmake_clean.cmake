file(REMOVE_RECURSE
  "CMakeFiles/trap_explorer.dir/trap_explorer.cpp.o"
  "CMakeFiles/trap_explorer.dir/trap_explorer.cpp.o.d"
  "trap_explorer"
  "trap_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
