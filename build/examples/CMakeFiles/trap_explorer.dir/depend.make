# Empty dependencies file for trap_explorer.
# This may be replaced when dependencies are built.
