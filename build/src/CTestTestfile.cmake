# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("arch")
subdirs("mem")
subdirs("cpu")
subdirs("gic")
subdirs("timer")
subdirs("sim")
subdirs("hyp")
subdirs("x86")
subdirs("workload")
