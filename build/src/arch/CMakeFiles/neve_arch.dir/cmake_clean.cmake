file(REMOVE_RECURSE
  "CMakeFiles/neve_arch.dir/esr.cc.o"
  "CMakeFiles/neve_arch.dir/esr.cc.o.d"
  "CMakeFiles/neve_arch.dir/sysreg.cc.o"
  "CMakeFiles/neve_arch.dir/sysreg.cc.o.d"
  "libneve_arch.a"
  "libneve_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
