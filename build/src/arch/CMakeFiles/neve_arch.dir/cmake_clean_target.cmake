file(REMOVE_RECURSE
  "libneve_arch.a"
)
