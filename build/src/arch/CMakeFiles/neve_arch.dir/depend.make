# Empty dependencies file for neve_arch.
# This may be replaced when dependencies are built.
