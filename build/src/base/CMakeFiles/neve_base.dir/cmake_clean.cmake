file(REMOVE_RECURSE
  "CMakeFiles/neve_base.dir/log.cc.o"
  "CMakeFiles/neve_base.dir/log.cc.o.d"
  "CMakeFiles/neve_base.dir/status.cc.o"
  "CMakeFiles/neve_base.dir/status.cc.o.d"
  "CMakeFiles/neve_base.dir/table_printer.cc.o"
  "CMakeFiles/neve_base.dir/table_printer.cc.o.d"
  "libneve_base.a"
  "libneve_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
