file(REMOVE_RECURSE
  "libneve_base.a"
)
