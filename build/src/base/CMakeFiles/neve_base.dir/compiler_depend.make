# Empty compiler generated dependencies file for neve_base.
# This may be replaced when dependencies are built.
