file(REMOVE_RECURSE
  "CMakeFiles/neve_cpu.dir/cpu.cc.o"
  "CMakeFiles/neve_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/neve_cpu.dir/trace.cc.o"
  "CMakeFiles/neve_cpu.dir/trace.cc.o.d"
  "CMakeFiles/neve_cpu.dir/trap_rules.cc.o"
  "CMakeFiles/neve_cpu.dir/trap_rules.cc.o.d"
  "libneve_cpu.a"
  "libneve_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
