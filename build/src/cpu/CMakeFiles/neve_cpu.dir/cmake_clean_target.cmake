file(REMOVE_RECURSE
  "libneve_cpu.a"
)
