# Empty compiler generated dependencies file for neve_cpu.
# This may be replaced when dependencies are built.
