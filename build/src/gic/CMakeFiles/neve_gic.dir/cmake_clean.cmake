file(REMOVE_RECURSE
  "CMakeFiles/neve_gic.dir/gic.cc.o"
  "CMakeFiles/neve_gic.dir/gic.cc.o.d"
  "libneve_gic.a"
  "libneve_gic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_gic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
