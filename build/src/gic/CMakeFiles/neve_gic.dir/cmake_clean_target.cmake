file(REMOVE_RECURSE
  "libneve_gic.a"
)
