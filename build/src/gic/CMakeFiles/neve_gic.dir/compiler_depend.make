# Empty compiler generated dependencies file for neve_gic.
# This may be replaced when dependencies are built.
