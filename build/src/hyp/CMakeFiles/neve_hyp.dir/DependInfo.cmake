
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyp/guest_env.cc" "src/hyp/CMakeFiles/neve_hyp.dir/guest_env.cc.o" "gcc" "src/hyp/CMakeFiles/neve_hyp.dir/guest_env.cc.o.d"
  "/root/repo/src/hyp/guest_kvm.cc" "src/hyp/CMakeFiles/neve_hyp.dir/guest_kvm.cc.o" "gcc" "src/hyp/CMakeFiles/neve_hyp.dir/guest_kvm.cc.o.d"
  "/root/repo/src/hyp/host_kvm.cc" "src/hyp/CMakeFiles/neve_hyp.dir/host_kvm.cc.o" "gcc" "src/hyp/CMakeFiles/neve_hyp.dir/host_kvm.cc.o.d"
  "/root/repo/src/hyp/virtio.cc" "src/hyp/CMakeFiles/neve_hyp.dir/virtio.cc.o" "gcc" "src/hyp/CMakeFiles/neve_hyp.dir/virtio.cc.o.d"
  "/root/repo/src/hyp/vm.cc" "src/hyp/CMakeFiles/neve_hyp.dir/vm.cc.o" "gcc" "src/hyp/CMakeFiles/neve_hyp.dir/vm.cc.o.d"
  "/root/repo/src/hyp/world_switch.cc" "src/hyp/CMakeFiles/neve_hyp.dir/world_switch.cc.o" "gcc" "src/hyp/CMakeFiles/neve_hyp.dir/world_switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gic/CMakeFiles/neve_gic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/neve_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/neve_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/neve_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/neve_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/neve_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
