file(REMOVE_RECURSE
  "CMakeFiles/neve_hyp.dir/guest_env.cc.o"
  "CMakeFiles/neve_hyp.dir/guest_env.cc.o.d"
  "CMakeFiles/neve_hyp.dir/guest_kvm.cc.o"
  "CMakeFiles/neve_hyp.dir/guest_kvm.cc.o.d"
  "CMakeFiles/neve_hyp.dir/host_kvm.cc.o"
  "CMakeFiles/neve_hyp.dir/host_kvm.cc.o.d"
  "CMakeFiles/neve_hyp.dir/virtio.cc.o"
  "CMakeFiles/neve_hyp.dir/virtio.cc.o.d"
  "CMakeFiles/neve_hyp.dir/vm.cc.o"
  "CMakeFiles/neve_hyp.dir/vm.cc.o.d"
  "CMakeFiles/neve_hyp.dir/world_switch.cc.o"
  "CMakeFiles/neve_hyp.dir/world_switch.cc.o.d"
  "libneve_hyp.a"
  "libneve_hyp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_hyp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
