file(REMOVE_RECURSE
  "libneve_hyp.a"
)
