# Empty dependencies file for neve_hyp.
# This may be replaced when dependencies are built.
