file(REMOVE_RECURSE
  "CMakeFiles/neve_mem.dir/page_table.cc.o"
  "CMakeFiles/neve_mem.dir/page_table.cc.o.d"
  "CMakeFiles/neve_mem.dir/phys_mem.cc.o"
  "CMakeFiles/neve_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/neve_mem.dir/shadow_s2.cc.o"
  "CMakeFiles/neve_mem.dir/shadow_s2.cc.o.d"
  "libneve_mem.a"
  "libneve_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
