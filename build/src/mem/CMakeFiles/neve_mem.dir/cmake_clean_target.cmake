file(REMOVE_RECURSE
  "libneve_mem.a"
)
