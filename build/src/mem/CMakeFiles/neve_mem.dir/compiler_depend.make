# Empty compiler generated dependencies file for neve_mem.
# This may be replaced when dependencies are built.
