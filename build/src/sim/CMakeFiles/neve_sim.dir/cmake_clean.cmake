file(REMOVE_RECURSE
  "CMakeFiles/neve_sim.dir/machine.cc.o"
  "CMakeFiles/neve_sim.dir/machine.cc.o.d"
  "libneve_sim.a"
  "libneve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
