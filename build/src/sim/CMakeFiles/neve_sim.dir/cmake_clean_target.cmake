file(REMOVE_RECURSE
  "libneve_sim.a"
)
