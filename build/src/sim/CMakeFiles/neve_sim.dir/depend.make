# Empty dependencies file for neve_sim.
# This may be replaced when dependencies are built.
