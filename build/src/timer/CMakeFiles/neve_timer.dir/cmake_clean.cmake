file(REMOVE_RECURSE
  "CMakeFiles/neve_timer.dir/timer.cc.o"
  "CMakeFiles/neve_timer.dir/timer.cc.o.d"
  "libneve_timer.a"
  "libneve_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
