file(REMOVE_RECURSE
  "libneve_timer.a"
)
