# Empty compiler generated dependencies file for neve_timer.
# This may be replaced when dependencies are built.
