file(REMOVE_RECURSE
  "CMakeFiles/neve_workload.dir/appbench.cc.o"
  "CMakeFiles/neve_workload.dir/appbench.cc.o.d"
  "CMakeFiles/neve_workload.dir/microbench.cc.o"
  "CMakeFiles/neve_workload.dir/microbench.cc.o.d"
  "CMakeFiles/neve_workload.dir/microbench_x86.cc.o"
  "CMakeFiles/neve_workload.dir/microbench_x86.cc.o.d"
  "CMakeFiles/neve_workload.dir/stacks.cc.o"
  "CMakeFiles/neve_workload.dir/stacks.cc.o.d"
  "libneve_workload.a"
  "libneve_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
