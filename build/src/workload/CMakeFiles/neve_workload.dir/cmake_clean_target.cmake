file(REMOVE_RECURSE
  "libneve_workload.a"
)
