# Empty compiler generated dependencies file for neve_workload.
# This may be replaced when dependencies are built.
