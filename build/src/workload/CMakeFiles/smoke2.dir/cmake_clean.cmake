file(REMOVE_RECURSE
  "CMakeFiles/smoke2.dir/__/__/tools/smoke2.cc.o"
  "CMakeFiles/smoke2.dir/__/__/tools/smoke2.cc.o.d"
  "smoke2"
  "smoke2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
