# Empty compiler generated dependencies file for smoke2.
# This may be replaced when dependencies are built.
