
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/kvm_x86.cc" "src/x86/CMakeFiles/neve_x86.dir/kvm_x86.cc.o" "gcc" "src/x86/CMakeFiles/neve_x86.dir/kvm_x86.cc.o.d"
  "/root/repo/src/x86/vmcs.cc" "src/x86/CMakeFiles/neve_x86.dir/vmcs.cc.o" "gcc" "src/x86/CMakeFiles/neve_x86.dir/vmcs.cc.o.d"
  "/root/repo/src/x86/vmx_cpu.cc" "src/x86/CMakeFiles/neve_x86.dir/vmx_cpu.cc.o" "gcc" "src/x86/CMakeFiles/neve_x86.dir/vmx_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/neve_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/neve_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/neve_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/neve_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
