file(REMOVE_RECURSE
  "CMakeFiles/neve_x86.dir/kvm_x86.cc.o"
  "CMakeFiles/neve_x86.dir/kvm_x86.cc.o.d"
  "CMakeFiles/neve_x86.dir/vmcs.cc.o"
  "CMakeFiles/neve_x86.dir/vmcs.cc.o.d"
  "CMakeFiles/neve_x86.dir/vmx_cpu.cc.o"
  "CMakeFiles/neve_x86.dir/vmx_cpu.cc.o.d"
  "libneve_x86.a"
  "libneve_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neve_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
