file(REMOVE_RECURSE
  "libneve_x86.a"
)
