# Empty compiler generated dependencies file for neve_x86.
# This may be replaced when dependencies are built.
