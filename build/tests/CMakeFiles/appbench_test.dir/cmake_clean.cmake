file(REMOVE_RECURSE
  "CMakeFiles/appbench_test.dir/appbench_test.cc.o"
  "CMakeFiles/appbench_test.dir/appbench_test.cc.o.d"
  "appbench_test"
  "appbench_test.pdb"
  "appbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
