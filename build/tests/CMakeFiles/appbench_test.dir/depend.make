# Empty dependencies file for appbench_test.
# This may be replaced when dependencies are built.
