file(REMOVE_RECURSE
  "CMakeFiles/gic_test.dir/gic_test.cc.o"
  "CMakeFiles/gic_test.dir/gic_test.cc.o.d"
  "gic_test"
  "gic_test.pdb"
  "gic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
