# Empty dependencies file for gic_test.
# This may be replaced when dependencies are built.
