file(REMOVE_RECURSE
  "CMakeFiles/hyp_test.dir/hyp_test.cc.o"
  "CMakeFiles/hyp_test.dir/hyp_test.cc.o.d"
  "hyp_test"
  "hyp_test.pdb"
  "hyp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
