# Empty dependencies file for hyp_test.
# This may be replaced when dependencies are built.
