file(REMOVE_RECURSE
  "CMakeFiles/recursive_test.dir/recursive_test.cc.o"
  "CMakeFiles/recursive_test.dir/recursive_test.cc.o.d"
  "recursive_test"
  "recursive_test.pdb"
  "recursive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
