file(REMOVE_RECURSE
  "CMakeFiles/stacks_test.dir/stacks_test.cc.o"
  "CMakeFiles/stacks_test.dir/stacks_test.cc.o.d"
  "stacks_test"
  "stacks_test.pdb"
  "stacks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
