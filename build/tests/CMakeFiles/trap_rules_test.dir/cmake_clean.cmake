file(REMOVE_RECURSE
  "CMakeFiles/trap_rules_test.dir/trap_rules_test.cc.o"
  "CMakeFiles/trap_rules_test.dir/trap_rules_test.cc.o.d"
  "trap_rules_test"
  "trap_rules_test.pdb"
  "trap_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
