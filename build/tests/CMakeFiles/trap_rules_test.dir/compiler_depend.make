# Empty compiler generated dependencies file for trap_rules_test.
# This may be replaced when dependencies are built.
