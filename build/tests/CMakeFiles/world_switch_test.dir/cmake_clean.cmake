file(REMOVE_RECURSE
  "CMakeFiles/world_switch_test.dir/world_switch_test.cc.o"
  "CMakeFiles/world_switch_test.dir/world_switch_test.cc.o.d"
  "world_switch_test"
  "world_switch_test.pdb"
  "world_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
