# Empty dependencies file for world_switch_test.
# This may be replaced when dependencies are built.
