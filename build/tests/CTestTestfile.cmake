# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/trap_rules_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/gic_test[1]_include.cmake")
include("/root/repo/build/tests/timer_test[1]_include.cmake")
include("/root/repo/build/tests/world_switch_test[1]_include.cmake")
include("/root/repo/build/tests/hyp_test[1]_include.cmake")
include("/root/repo/build/tests/recursive_test[1]_include.cmake")
include("/root/repo/build/tests/virtio_test[1]_include.cmake")
include("/root/repo/build/tests/stacks_test[1]_include.cmake")
include("/root/repo/build/tests/x86_test[1]_include.cmake")
include("/root/repo/build/tests/microbench_test[1]_include.cmake")
include("/root/repo/build/tests/appbench_test[1]_include.cmake")
