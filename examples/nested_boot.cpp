// Nested boot: the full L0 / L1 / L2 stack on ARMv8.3-NV, with a detailed
// exit trace showing the *exit multiplication problem* (paper section 5):
// one hypercall from the nested VM explodes into >100 traps to the host as
// the deprivileged guest hypervisor's world switch trips over NV trapping.
//
//   $ ./build/examples/nested_boot
//   $ ./build/examples/nested_boot --trace-out=trace.json
//
// With --trace-out the machine-wide observability layer records every trap
// episode, world-switch phase, shadow Stage-2 fixup and virtio kick, and the
// run ends by writing a Chrome trace-event file (load it in chrome://tracing
// or https://ui.perfetto.dev; timestamps are simulated cycles).

#include <cstdio>
#include <cstring>
#include <string>

#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"
#include "src/hyp/virtio.h"
#include "src/sim/machine.h"

using namespace neve;

namespace {

constexpr uint64_t kRingIpa = 0x10000;
constexpr uint64_t kDoorbellIpa = 0x4000'0000;

std::string TraceOutPath(int argc, char** argv) {
  constexpr const char kFlag[] = "--trace-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return argv[i] + sizeof(kFlag) - 1;
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out = TraceOutPath(argc, argv);

  MachineConfig mc;
  mc.features = ArchFeatures::Armv83Nv();
  Machine machine(mc);
  machine.obs().set_enabled(true);
  HostKvm l0(&machine, HostKvmConfig{});

  // The L1 VM: exposes virtual EL2 so it can host a hypervisor.
  Vm* vm1 = l0.CreateVm({.name = "l1",
                         .ram_size = 64ull << 20,
                         .virtual_el2 = true,
                         .guest_vhe = false});

  // A virtio device for the L1 guest hypervisor itself (console-like): its
  // ring lives in L1 RAM, the doorbell in an MMIO hole. Gives the trace a
  // virtio track alongside the trap/world-switch/shadow ones.
  VirtioBackend backend(&machine.mem(), Pa(vm1->ram_base().value + kRingIpa),
                        /*per_buffer_cycles=*/2000);
  vm1->AddMmioRange(Ipa(kDoorbellIpa), kPageSize, &backend);

  std::unique_ptr<GuestKvm> l1;

  vm1->vcpu(0).main_sw.main = [&](GuestEnv& env) {
    std::printf("[L1] booting guest hypervisor; CurrentEL reads %s "
                "(the NV disguise)\n",
                ElName(env.CurrentEl()));

    VirtioDriver console{Va(kRingIpa), Va(kDoorbellIpa)};
    console.Init(env);
    console.SendBuffer(env, 0x5000, 64);  // "booting" log line

    l1 = std::make_unique<GuestKvm>(&env, &machine, GuestKvmConfig{});

    Vm* vm2 = l1->CreateVm({.name = "l2", .ram_size = 8ull << 20});
    std::printf("[L1] created nested VM; virtual Stage-2 root at L1 IPA "
                "0x%lx\n",
                static_cast<unsigned long>(vm2->s2().root().value));

    l1->RunVcpu(env, vm2->vcpu(0), [&](GuestEnv& l2env) {
      std::printf("[L2] nested guest running; CurrentEL=%s\n",
                  ElName(l2env.CurrentEl()));
      // Touch memory: each first access faults on the (empty) shadow
      // Stage-2, and the host lazily collapses the L1's virtual Stage-2
      // with its own (paper section 4).
      l2env.Store(Va(0x2000), 0x1234);
      (void)l2env.Load(Va(0x3000));
      l2env.Hvc(kHvcTestCall);  // warm the shadow structures
      std::printf("[L2] making the measured hypercall...\n");
      uint64_t traps0 = machine.cpu(0).trace().traps_to_el2();
      machine.cpu(0).trace().set_record_details(true);
      l2env.Hvc(kHvcTestCall);
      machine.cpu(0).trace().set_record_details(false);
      uint64_t traps1 = machine.cpu(0).trace().traps_to_el2();
      std::printf("[L2] hypercall done: %lu traps to L0 for ONE hypercall\n",
                  static_cast<unsigned long>(traps1 - traps0));
    });
    std::printf("[L1] nested guest finished\n");

    backend.Poll(env.cpu().cycles());
    console.SendBuffer(env, 0x5000, 64);  // "finished" log line
    (void)console.ReapUsed(env);
  };

  l0.RunVcpu(vm1->vcpu(0), 0);

  std::printf("\n=== exit-multiplication trace (one L2 hypercall) ===\n");
  std::printf("%s", machine.cpu(0).trace().Dump().c_str());
  std::printf("\n=== where the cycles went ===\n%s",
              machine.cpu(0).trace().AttributionReport().c_str());
  std::printf("\n=== cycle attribution (vm -> layer -> category) ===\n%s",
              machine.attr().TextTree().c_str());
  std::printf("\n=== machine-wide metrics ===\n%s",
              machine.obs().metrics().TextReport().c_str());
  std::printf(
      "\nReading the trace: the L2 hvc arrives first; everything after it is\n"
      "the L1 guest hypervisor's world switch -- EL1 context save/restore,\n"
      "exit-info reads, vGIC and timer switches, trap-control writes, the\n"
      "eret/hvc kernel bounce -- each instruction trapping to L0 under\n"
      "ARMv8.3-NV. This is Table 7's 126-trap row, live.\n");

  if (!trace_out.empty()) {
    if (machine.obs().tracer().WriteChromeJson(trace_out)) {
      std::printf("\nwrote %zu trace events to %s (chrome://tracing)\n",
                  machine.obs().tracer().size(), trace_out.c_str());
    } else {
      return 1;
    }
  }
  return 0;
}
