// NEVE demo: the same nested stack as examples/nested_boot, but on ARMv8.4
// hardware with NEVE enabled. Shows:
//   - the hardware VNCR_EL2 value the host programs,
//   - the live deferred access page filling up with the guest hypervisor's
//     register writes (no traps),
//   - the trap-count collapse versus ARMv8.3 (Table 7: 126 -> 15).
//
//   $ ./build/examples/neve_demo

#include <cstdio>

#include "src/arch/vncr.h"
#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"
#include "src/sim/machine.h"
#include "src/workload/microbench.h"

using namespace neve;

namespace {

uint64_t MeasureNestedHypercallTraps(const StackConfig& cfg) {
  return static_cast<uint64_t>(
      RunArmMicrobench(MicrobenchKind::kHypercall, cfg, 10).traps_per_op);
}

void DumpDeferredPage(Machine& machine, Pa page) {
  std::printf("  deferred access page @ PA 0x%lx (nonzero slots):\n",
              static_cast<unsigned long>(page.value));
  for (int r = 0; r < kNumRegIds; ++r) {
    auto reg = static_cast<RegId>(r);
    uint64_t v = machine.mem().Read64(Pa(page.value + DeferredPageOffset(reg)));
    if (v != 0) {
      std::printf("    +0x%03lx  %-16s = 0x%lx\n",
                  static_cast<unsigned long>(DeferredPageOffset(reg)),
                  RegName(reg), static_cast<unsigned long>(v));
    }
  }
}

}  // namespace

int main() {
  MachineConfig mc;
  mc.features = ArchFeatures::Armv84Neve();
  Machine machine(mc);
  HostKvm l0(&machine, HostKvmConfig{});

  Vm* vm1 = l0.CreateVm({.name = "l1",
                         .ram_size = 64ull << 20,
                         .virtual_el2 = true,
                         .expose_neve = true});
  Vcpu& vcpu = vm1->vcpu(0);
  std::unique_ptr<GuestKvm> l1;

  vcpu.main_sw.main = [&](GuestEnv& env) {
    std::printf("[L1] booting with NEVE; hardware VNCR_EL2 = 0x%lx "
                "(BADDR | Enable)\n",
                static_cast<unsigned long>(
                    env.cpu().PeekReg(RegId::kVNCR_EL2)));

    uint64_t traps0 = env.cpu().trace().traps_to_el2();
    // These are all EL2-register writes that would trap on ARMv8.3; under
    // NEVE the hardware rewrites them into stores to the deferred page.
    env.WriteSys(SysReg::kHCR_EL2, Hcr::Make({HcrBits::kVm, HcrBits::kImo}));
    env.WriteSys(SysReg::kHSTR_EL2, 0x5A);
    env.WriteSys(SysReg::kVTTBR_EL2, 0x123000);
    env.WriteSys(SysReg::kVMPIDR_EL2, 7);
    env.WriteSys(SysReg::kSPSR_EL1, 0x3C5);  // VM register via NV1 path
    uint64_t traps1 = env.cpu().trace().traps_to_el2();
    std::printf("[L1] five hypervisor-register writes took %lu traps "
                "(ARMv8.3 would take 5)\n",
                static_cast<unsigned long>(traps1 - traps0));

    l1 = std::make_unique<GuestKvm>(&env, &machine, GuestKvmConfig{});
    Vm* vm2 = l1->CreateVm({.name = "l2", .ram_size = 8ull << 20});
    l1->RunVcpu(env, vm2->vcpu(0), [](GuestEnv& l2env) {
      l2env.Hvc(kHvcTestCall);
    });
  };

  l0.RunVcpu(vcpu, 0);

  std::printf("\n[host] after the run:\n");
  DumpDeferredPage(machine, vcpu.vncr_hw_page);

  std::printf("\n=== trap counts per nested hypercall (Table 7) ===\n");
  std::printf("  ARMv8.3:      %3lu traps\n",
              static_cast<unsigned long>(
                  MeasureNestedHypercallTraps(StackConfig::NestedV83(false))));
  std::printf("  NEVE:         %3lu traps\n",
              static_cast<unsigned long>(MeasureNestedHypercallTraps(
                  StackConfig::NestedNeve(false))));
  std::printf(
      "\nNEVE coalesces and defers: VM-register traps became stores to the\n"
      "page above; the host reads them back only when it actually needs\n"
      "them (on eret into the nested VM).\n");
  return 0;
}
