// Quickstart: build a machine, boot the host hypervisor, run one VM that
// makes a hypercall and does some memory-mapped I/O, and read the bill.
//
//   $ ./build/examples/quickstart
//
// This walks the public API end to end: Machine -> HostKvm -> Vm/Vcpu ->
// guest software as a C++ lambda running against cycle-charged CPU
// operations.

#include <cstdio>

#include "src/hyp/host_kvm.h"
#include "src/sim/machine.h"

using namespace neve;

int main() {
  // 1. A machine: one CPU, ARMv8.3-NV features, default (paper-calibrated)
  //    cycle costs.
  MachineConfig mc;
  mc.num_cpus = 1;
  mc.features = ArchFeatures::Armv83Nv();
  Machine machine(mc);

  // 2. The host hypervisor (KVM/ARM-style, non-VHE, as on the paper's
  //    ARMv8.0 testbed). It installs itself as the EL2 exception vector.
  HostKvm kvm(&machine, HostKvmConfig{});

  // 3. A VM with 16 MB of RAM and one emulated device.
  TestDevice device(/*emulation_cycles=*/800);
  Vm* vm = kvm.CreateVm({.name = "demo", .ram_size = 16ull << 20});
  vm->AddMmioRange(Ipa(0x4000'0000), kPageSize, &device);

  // 4. Guest software: a lambda running at EL1 through cycle-charged CPU
  //    operations. Every Hvc/Load below really traps into the hypervisor.
  machine.cpu(0).trace().set_record_details(true);
  vm->vcpu(0).main_sw.main = [](GuestEnv& env) {
    std::printf("[guest] hello from EL1; CurrentEL=%s\n",
                ElName(env.CurrentEl()));
    env.Store(Va(0x1000), 0xC0FFEE);          // plain RAM, Stage-2 translated
    env.Hvc(0x4B00);                          // hypercall: exit + handle
    uint64_t id = env.Load(Va(0x4000'0000));  // MMIO: Stage-2 fault + emulate
    std::printf("[guest] device returned 0x%lx\n",
                static_cast<unsigned long>(id));
  };

  // 5. Run it and inspect the results.
  kvm.RunVcpu(vm->vcpu(0), /*pcpu=*/0);

  Cpu& cpu = machine.cpu(0);
  std::printf("\n[host] guest finished\n");
  std::printf("[host] simulated cycles: %lu\n",
              static_cast<unsigned long>(cpu.cycles()));
  std::printf("[host] traps to EL2:     %lu\n",
              static_cast<unsigned long>(cpu.trace().traps_to_el2()));
  std::printf("[host] exit trace:\n%s", cpu.trace().Dump().c_str());
  std::printf("[host] guest RAM at IPA 0x1000 holds 0x%lx (machine PA 0x%lx)\n",
              static_cast<unsigned long>(
                  machine.mem().Read64(Pa(vm->ram_base().value + 0x1000))),
              static_cast<unsigned long>(vm->ram_base().value + 0x1000));
  return 0;
}
