// Recursive nesting demo (paper section 6.2): four software levels --
//
//   L0 host hypervisor (real EL2)
//   L1 guest hypervisor (virtual EL2)
//   L2 guest hypervisor (virtual-virtual EL2, emulated by L1)
//   L3 guest (three translation stages below the machine)
//
// -- each believing it owns EL2, with NEVE optionally collapsing the traps
// at every level.
//
//   $ ./build/examples/recursive_l3

#include <cstdio>
#include <memory>

#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"

using namespace neve;

int main() {
  for (bool neve : {false, true}) {
    std::printf("=== %s ===\n", neve ? "NEVE (ARMv8.4)" : "ARMv8.3");
    MachineConfig mc;
    mc.features = neve ? ArchFeatures::Armv84Neve() : ArchFeatures::Armv83Nv();
    Machine machine(mc);
    HostKvm l0(&machine, {});
    Vm* vm1 = l0.CreateVm({.name = "l1",
                           .ram_size = 128ull << 20,
                           .virtual_el2 = true,
                           .expose_neve = neve});
    std::unique_ptr<GuestKvm> l1;
    std::unique_ptr<GuestKvm> l2;

    vm1->vcpu(0).main_sw.main = [&](GuestEnv& env) {
      std::printf("[L1] CurrentEL=%s (deprivileged once)\n",
                  ElName(env.CurrentEl()));
      l1 = std::make_unique<GuestKvm>(&env, &machine, GuestKvmConfig{});
      Vm* vm2 = l1->CreateVm({.name = "l2",
                              .ram_size = 24ull << 20,
                              .virtual_el2 = true,
                              .expose_neve = neve});
      l1->RunVcpu(env, vm2->vcpu(0), [&](GuestEnv& l2env) {
        std::printf("[L2] CurrentEL=%s (deprivileged twice -- the disguise "
                    "holds transitively)\n",
                    ElName(l2env.CurrentEl()));
        l2 = std::make_unique<GuestKvm>(&l2env, &machine, GuestKvmConfig{},
                                        l1->view(), &vm2->s2(), 24ull << 20);
        Vm* vm3 = l2->CreateVm({.name = "l3", .ram_size = 4ull << 20});
        l2->RunVcpu(l2env, vm3->vcpu(0), [&](GuestEnv& l3env) {
          std::printf("[L3] CurrentEL=%s; storing through three stages of "
                      "address translation...\n",
                      ElName(l3env.CurrentEl()));
          l3env.Store(Va(0x2000), 0x1333);
          std::printf("[L3] load back: 0x%lx\n",
                      static_cast<unsigned long>(l3env.Load(Va(0x2000))));
          l3env.Hvc(kHvcTestCall);  // warm
          uint64_t c0 = l3env.cpu().cycles();
          uint64_t t0 = l3env.cpu().trace().traps_to_el2();
          l3env.Hvc(kHvcTestCall);
          std::printf("[L3] one hypercall: %lu cycles, %lu traps to L0\n",
                      static_cast<unsigned long>(l3env.cpu().cycles() - c0),
                      static_cast<unsigned long>(
                          l3env.cpu().trace().traps_to_el2() - t0));
        });
      });
    };
    l0.RunVcpu(vm1->vcpu(0), 0);
    std::printf("\n");
  }
  std::printf(
      "Exit multiplication squares with nesting depth (~126^2 traps per L3\n"
      "hypercall on ARMv8.3); NEVE collapses it at both levels because the\n"
      "host emulates NEVE for deeper hypervisors by translating their VNCR\n"
      "page through Stage-2 (section 6.2).\n");
  return 0;
}
