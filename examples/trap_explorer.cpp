// Trap explorer: for every register the paper classifies (Tables 3-5),
// show what an access from a deprivileged guest hypervisor (virtual EL2)
// does under each architecture generation:
//
//   ARMv8.0  UNDEF   -> the crash that motivates NV (section 2)
//   ARMv8.3  trap    -> exit multiplication (section 5)
//   NEVE     memory / EL1-register / cached / trap (section 6.1)
//
//   $ ./build/examples/trap_explorer [--all]   (--all includes every register)

#include <cstdio>
#include <cstring>

#include "src/base/table_printer.h"
#include "src/cpu/trap_rules.h"

using namespace neve;

namespace {

const char* Describe(const AccessContext& ctx, SysReg enc, bool is_write) {
  AccessResolution r = ResolveSysRegAccess(ctx, enc, is_write);
  switch (r.kind) {
    case AccessResolution::Kind::kRegister:
      return r.target == SysRegStorage(enc) ? "hw register"
                                            : "redirect->EL1";
    case AccessResolution::Kind::kGicCpuIf:
      return "GIC cpuif";
    case AccessResolution::Kind::kMemory:
      return "deferred page";
    case AccessResolution::Kind::kTrapEl2:
      return "TRAP";
    case AccessResolution::Kind::kUndefined:
      return "UNDEF (crash)";
  }
  return "?";
}

AccessContext Vel2Context(ArchFeatures f, bool guest_vhe) {
  uint64_t hcr = Hcr::Make({HcrBits::kVm, HcrBits::kImo});
  if (f.nv) {
    hcr = SetBit(hcr, HcrBits::kNv);
    if (!guest_vhe) {
      hcr = SetBit(hcr, HcrBits::kNv1);
    }
  }
  return AccessContext{.features = f,
                       .el = El::kEl1,
                       .hcr = Hcr{hcr},
                       .vncr_enabled = f.neve};
}

const char* ClassName(NeveClass c) {
  switch (c) {
    case NeveClass::kNone:
      return "-";
    case NeveClass::kDeferred:
      return "Table 3 (VM reg)";
    case NeveClass::kRedirect:
      return "Table 4 redirect";
    case NeveClass::kRedirectVhe:
      return "Table 4 redirect (VHE)";
    case NeveClass::kTrapOnWrite:
      return "Table 4 trap-on-write";
    case NeveClass::kRedirectOrTrap:
      return "Table 4 redirect-or-trap";
    case NeveClass::kGicCached:
      return "Table 5 (GIC)";
    case NeveClass::kTimerTrap:
      return "6.1 timer (trap)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool all = argc > 1 && std::strcmp(argv[1], "--all") == 0;

  AccessContext v80 = Vel2Context(ArchFeatures::Armv80(), false);
  AccessContext v83 = Vel2Context(ArchFeatures::Armv83Nv(), false);
  AccessContext neve = Vel2Context(ArchFeatures::Armv84Neve(), false);
  AccessContext neve_vhe = Vel2Context(ArchFeatures::Armv84Neve(), true);

  std::printf("Access behaviour from a deprivileged guest hypervisor "
              "(virtual EL2)\n");
  std::printf("R/W column shows read,write when they differ.\n\n");

  TablePrinter t({"Register", "Paper class", "ARMv8.0", "ARMv8.3", "NEVE",
                  "NEVE (VHE guest)"});
  for (int r = 0; r < kNumRegIds; ++r) {
    auto reg = static_cast<RegId>(r);
    if (!all && RegNeveClass(reg) == NeveClass::kNone) {
      continue;
    }
    SysReg enc = DirectEncodingOf(reg);
    bool can_read = SysRegRw(enc) != Rw::kWO;
    bool can_write = SysRegRw(enc) != Rw::kRO;
    auto cell = [&](const AccessContext& ctx) -> std::string {
      const char* rd = can_read ? Describe(ctx, enc, false) : "-";
      const char* wr = can_write ? Describe(ctx, enc, true) : "-";
      if (std::strcmp(rd, wr) == 0) {
        return rd;
      }
      return std::string(rd) + "," + wr;
    };
    t.AddRow({RegName(reg), ClassName(RegNeveClass(reg)), cell(v80), cell(v83),
              cell(neve), cell(neve_vhe)});
  }
  std::printf("%s\n", t.ToString().c_str());

  std::printf("Special cases:\n");
  std::printf("  CurrentEL read:  v8.0 -> %s, v8.3/NEVE -> %s (the disguise)\n",
              ElName(ResolveCurrentEl(v80)), ElName(ResolveCurrentEl(v83)));
  std::printf("  eret:            v8.0 -> local (crashes the stack), "
              "v8.3/NEVE -> %s\n",
              ResolveEret(v83) == EretResolution::kTrapEl2 ? "TRAP" : "local");
  std::printf("\nRun with --all to include unclassified registers.\n");
  return 0;
}
