#include "src/analysis/archlint.h"

#include <iterator>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "src/arch/esr.h"
#include "src/arch/features.h"
#include "src/arch/hcr.h"
#include "src/base/bits.h"
#include "src/cpu/cost_model.h"
#include "src/cpu/resolution_cache.h"
#include "src/cpu/trap_rules.h"

namespace neve::analysis {
namespace {

// A runaway model produces the same diagnostic for thousands of cells; cap
// the output so a broken tree still prints something readable.
constexpr size_t kMaxDiagnostics = 200;

bool Full(std::vector<Diagnostic>& diags) {
  if (diags.size() < kMaxDiagnostics) {
    return false;
  }
  if (diags.size() == kMaxDiagnostics) {
    diags.push_back({"", 0, "truncated",
                     "diagnostic limit reached; further findings suppressed"});
  }
  return true;
}

void Diag(std::vector<Diagnostic>& diags, std::string file, int line,
          std::string check, std::string message) {
  if (!Full(diags)) {
    diags.push_back(
        {std::move(file), line, std::move(check), std::move(message)});
  }
}

bool IsRedirectClass(NeveClass k) {
  return k == NeveClass::kRedirect || k == NeveClass::kRedirectVhe ||
         k == NeveClass::kRedirectOrTrap;
}

int ElRank(El el) { return static_cast<int>(el); }

const char* KindName(AccessResolution::Kind k) {
  switch (k) {
    case AccessResolution::Kind::kRegister:
      return "register";
    case AccessResolution::Kind::kGicCpuIf:
      return "gic";
    case AccessResolution::Kind::kMemory:
      return "memory";
    case AccessResolution::Kind::kTrapEl2:
      return "trap";
    case AccessResolution::Kind::kUndefined:
      return "undef";
  }
  return "?";
}

// --- sweep configuration -----------------------------------------------------

struct FeatureCase {
  const char* name;
  ArchFeatures f;
};

ArchFeatures NeveWithout(bool deferred, bool redirect, bool cached) {
  ArchFeatures f = ArchFeatures::Armv84Neve();
  f.neve_deferred = deferred;
  f.neve_redirect = redirect;
  f.neve_cached = cached;
  return f;
}

const FeatureCase kFeatureCases[] = {
    {"v8.0", ArchFeatures::Armv80()},
    {"v8.1-vhe", ArchFeatures::Armv81Vhe()},
    {"v8.3-nv", ArchFeatures::Armv83Nv()},
    {"neve", ArchFeatures::Armv84Neve()},
    {"neve-no-deferred", NeveWithout(false, true, true)},
    {"neve-no-redirect", NeveWithout(true, false, true)},
    {"neve-no-cached", NeveWithout(true, true, false)},
};

// HCR bit subsets swept: E2H, NV, NV1, IMO.
constexpr unsigned kSweptHcrBits[] = {HcrBits::kE2h, HcrBits::kNv,
                                      HcrBits::kNv1, HcrBits::kImo};

uint64_t HcrFromMask(unsigned combo) {
  uint64_t bits = 0;
  for (size_t i = 0; i < std::size(kSweptHcrBits); ++i) {
    if ((combo >> i) & 1u) {
      bits = SetBit(bits, kSweptHcrBits[i]);
    }
  }
  return bits;
}

std::string DescribeContext(const FeatureCase& fc, const AccessContext& ctx,
                            bool is_write) {
  std::ostringstream oss;
  oss << "features=" << fc.name << " el=" << ElName(ctx.el) << " hcr=";
  bool any = false;
  auto bit = [&](bool on, const char* name) {
    if (on) {
      oss << (any ? "|" : "") << name;
      any = true;
    }
  };
  bit(ctx.hcr.e2h(), "E2H");
  bit(ctx.hcr.nv(), "NV");
  bit(ctx.hcr.nv1(), "NV1");
  bit(ctx.hcr.imo(), "IMO");
  if (!any) {
    oss << "0";
  }
  oss << " vncr=" << (ctx.vncr_enabled ? 1 : 0)
      << (is_write ? " write" : " read");
  return oss.str();
}

bool SameResolution(const AccessResolution& a, const AccessResolution& b) {
  return a.kind == b.kind && a.target == b.target &&
         a.mem_offset == b.mem_offset;
}

}  // namespace

// --- pass 1: structural table lint -------------------------------------------

std::vector<Diagnostic> LintModel(const ArchModel& m) {
  std::vector<Diagnostic> d;
  auto reg_ok = [&](RegId id) {
    return static_cast<size_t>(id) < m.regs.size();
  };

  // Names: present and unique within each table.
  std::map<std::string, int> reg_names;
  for (const RegRow& r : m.regs) {
    if (r.name.empty()) {
      Diag(d, kRegIdDefsPath, r.line, "reg-name-empty",
           "backing register with empty name");
      continue;
    }
    auto [it, inserted] = reg_names.emplace(r.name, r.line);
    if (!inserted) {
      Diag(d, kRegIdDefsPath, r.line, "reg-name-duplicate",
           "duplicate register name " + r.name + " (first defined at line " +
               std::to_string(it->second) + ")");
    }
  }
  std::map<std::string, int> enc_names;
  for (const EncRow& e : m.encs) {
    if (e.name.empty()) {
      Diag(d, kSysRegDefsPath, e.line, "enc-name-empty",
           "encoding with empty name");
      continue;
    }
    auto [it, inserted] = enc_names.emplace(e.name, e.line);
    if (!inserted) {
      Diag(d, kSysRegDefsPath, e.line, "enc-name-duplicate",
           "duplicate encoding name " + e.name + " (first defined at line " +
               std::to_string(it->second) + ")");
    }
  }

  // Deferred-page slots: 8-byte aligned, inside the 4 KiB page, unique.
  std::map<uint64_t, const RegRow*> offsets;
  for (const RegRow& r : m.regs) {
    if (r.deferred_offset % 8 != 0) {
      Diag(d, kRegIdDefsPath, r.line, "vncr-offset-alignment",
           r.name + ": deferred-page offset " +
               std::to_string(r.deferred_offset) + " is not 8-byte aligned");
    }
    if (r.deferred_offset + 8 > kDeferredPageSize) {
      Diag(d, kRegIdDefsPath, r.line, "vncr-offset-range",
           r.name + ": deferred-page offset " +
               std::to_string(r.deferred_offset) +
               " overruns the 4 KiB VNCR page");
    }
    auto [it, inserted] = offsets.emplace(r.deferred_offset, &r);
    if (!inserted) {
      Diag(d, kRegIdDefsPath, r.line, "vncr-offset-duplicate",
           r.name + ": deferred-page offset " +
               std::to_string(r.deferred_offset) + " already used by " +
               it->second->name);
    }
  }

  // Encodings: valid storage, one direct encoding per register, alias rules.
  std::vector<int> direct_count(m.regs.size(), 0);
  for (const EncRow& e : m.encs) {
    if (!reg_ok(e.storage)) {
      Diag(d, kSysRegDefsPath, e.line, "enc-storage-range",
           e.name + ": storage RegId out of range");
      continue;
    }
    const RegRow& reg = m.regs[static_cast<size_t>(e.storage)];
    switch (e.kind) {
      case EncKind::kDirect:
        ++direct_count[static_cast<size_t>(e.storage)];
        if (ElRank(e.min_el) < ElRank(reg.owner)) {
          Diag(d, kSysRegDefsPath, e.line, "enc-min-el",
               e.name + ": accessible below its owner EL (" +
                   ElName(e.min_el) + " < " + ElName(reg.owner) + ")");
        }
        break;
      case EncKind::kEl12:
        if (reg.owner != El::kEl1) {
          Diag(d, kSysRegDefsPath, e.line, "alias-el12-storage",
               e.name + ": EL12 alias must target EL1 storage, targets " +
                   reg.name);
        }
        if (e.min_el != El::kEl2) {
          Diag(d, kSysRegDefsPath, e.line, "alias-min-el",
               e.name + ": VHE alias encodings are EL2-only");
        }
        break;
      case EncKind::kEl02:
        if (reg.owner != El::kEl0) {
          Diag(d, kSysRegDefsPath, e.line, "alias-el02-storage",
               e.name + ": EL02 alias must target EL0 storage, targets " +
                   reg.name);
        }
        if (e.min_el != El::kEl2) {
          Diag(d, kSysRegDefsPath, e.line, "alias-min-el",
               e.name + ": VHE alias encodings are EL2-only");
        }
        break;
    }
  }
  for (size_t r = 0; r < m.regs.size(); ++r) {
    if (direct_count[r] != 1) {
      Diag(d, kRegIdDefsPath, m.regs[r].line, "direct-encoding-bijection",
           m.regs[r].name + ": has " + std::to_string(direct_count[r]) +
               " direct encodings, expected exactly 1");
    }
  }

  // NEVE class rules.
  for (size_t i = 0; i < m.regs.size(); ++i) {
    const RegRow& r = m.regs[i];
    if (IsRedirectClass(r.klass)) {
      auto t = static_cast<size_t>(r.redirect);
      if (t >= m.regs.size() || t == i) {
        Diag(d, kRegIdDefsPath, r.line, "redirect-target",
             r.name + ": redirect class without a distinct valid target");
      } else if (m.regs[t].owner != El::kEl1) {
        Diag(d, kRegIdDefsPath, r.line, "redirect-target-el1",
             r.name + ": redirects to " + m.regs[t].name +
                 " which is not EL1 storage");
      }
      if (r.owner != El::kEl2) {
        Diag(d, kRegIdDefsPath, r.line, "redirect-owner",
             r.name + ": Table 4 redirect rows are EL2 registers");
      }
    } else if (static_cast<size_t>(r.redirect) != i) {
      Diag(d, kRegIdDefsPath, r.line, "redirect-self",
           r.name + ": non-redirect rows name themselves in the redirect "
                    "column");
    }
    if (r.klass == NeveClass::kGicCached) {
      if (r.owner != El::kEl2 || r.name.rfind("ICH_", 0) != 0) {
        Diag(d, kRegIdDefsPath, r.line, "gic-cached-rows",
             r.name + ": Table 5 rows are EL2 ICH_* registers");
      }
    }
    if (r.klass == NeveClass::kTimerTrap && r.owner != El::kEl2) {
      Diag(d, kRegIdDefsPath, r.line, "timer-trap-owner",
           r.name + ": EL2 hypervisor timer expected");
    }
  }
  return d;
}

// --- pass 2: exhaustive resolution sweep -------------------------------------

std::vector<Diagnostic> SweepResolution() {
  std::vector<Diagnostic> d;

  const CostModel cost = CostModel::Default();
  if (cost.trap_entry == 0 || cost.trap_return == 0 ||
      cost.sysreg_access == 0 || cost.mem_access == 0 ||
      cost.gic_vcpuif_access == 0) {
    Diag(d, "src/cpu/cost_model.h", 0, "cost-model-entries",
         "a resolution outcome has no nonzero cost-model entry");
  }

  // ESR round-trip is per (encoding, direction); dedup across contexts.
  std::set<std::pair<int, bool>> esr_checked;

  // The fast-path cache, differentially checked against the plain tree walk
  // on every cell. Feature/HCR/VNCR changes happen at the loop boundaries
  // below; Invalidate() there mirrors the CPU's configuration-write hook
  // (features are immutable per CPU, so the CPU itself only ever invalidates
  // on HCR_EL2/VNCR_EL2 writes).
  ResolutionCache cache;

  for (const FeatureCase& fc : kFeatureCases) {
    for (unsigned combo = 0; combo < (1u << std::size(kSweptHcrBits));
         ++combo) {
      for (bool vncr : {false, true}) {
        if (vncr && !fc.f.neve) {
          continue;  // VNCR enable is meaningless pre-NEVE
        }
        cache.Invalidate();  // new configuration: all cached cells are stale
        for (El el : {El::kEl0, El::kEl1, El::kEl2}) {
          AccessContext ctx{.features = fc.f,
                            .el = el,
                            .hcr = Hcr{HcrFromMask(combo)},
                            .vncr_enabled = vncr};
          const bool nv_active = fc.f.nv && ctx.hcr.nv();
          const bool neve_active = fc.f.neve && nv_active && vncr;

          for (int e = 0; e < kNumSysRegs; ++e) {
            auto enc = static_cast<SysReg>(e);
            const RegId storage = SysRegStorage(enc);
            const El min_el = SysRegMinEl(enc);
            for (bool w : {false, true}) {
              if (Full(d)) {
                return d;
              }
              AccessResolution res = ResolveSysRegAccess(ctx, enc, w);
              auto fail = [&](const char* check, const std::string& msg) {
                Diag(d, kSysRegDefsPath, EncDefLine(enc), check,
                     std::string(SysRegName(enc)) + " [" +
                         DescribeContext(fc, ctx, w) + " -> " +
                         KindName(res.kind) + "] " + msg);
              };

              // Determinism: the pipeline is a pure function of its inputs.
              if (!SameResolution(res, ResolveSysRegAccess(ctx, enc, w))) {
                fail("resolve-deterministic",
                     "two identical resolutions disagree");
              }

              // Cached-vs-uncached differential: the first cache resolve
              // fills the slot, the second must hit it; both must agree with
              // the plain tree walk on every cell of the cross-product.
              bool hit = false;
              AccessResolution cached = cache.Resolve(ctx, enc, w, &hit);
              AccessResolution cached_again = cache.Resolve(ctx, enc, w, &hit);
              if (!SameResolution(cached, res) ||
                  !SameResolution(cached_again, res)) {
                fail("cache-differential",
                     "fast-path cache resolution diverges from the tree walk");
              }
              if (!hit) {
                fail("cache-hit-after-fill",
                     "second cache resolve of an unchanged configuration "
                     "missed");
              }

              // Access kinds (RO/WO) are honored at every EL and config.
              const Rw rw = SysRegRw(enc);
              if ((w && rw == Rw::kRO) || (!w && rw == Rw::kWO)) {
                if (res.kind != AccessResolution::Kind::kUndefined) {
                  fail("rw-honored",
                       "wrong-direction access must be UNDEFINED");
                }
                continue;  // remaining invariants assume a legal direction
              }

              // The host hypervisor (real EL2) never traps or hits the
              // deferred page, and direct encodings always work for it.
              if (el == El::kEl2) {
                if (res.kind == AccessResolution::Kind::kTrapEl2 ||
                    res.kind == AccessResolution::Kind::kMemory) {
                  fail("el2-never-traps",
                       "real-EL2 access trapped or deferred");
                }
                if (res.kind == AccessResolution::Kind::kUndefined &&
                    SysRegEncKind(enc) == EncKind::kDirect) {
                  fail("el2-direct-defined",
                       "direct encoding UNDEFINED at real EL2");
                }
              }

              // ARMv8.0/8.1 crash story: EL2 encodings below EL2 without NV
              // are UNDEFINED -- never silently resolved to a register.
              if (el != El::kEl2 && min_el == El::kEl2 && !nv_active &&
                  res.kind != AccessResolution::Kind::kUndefined) {
                fail("no-nv-undefined",
                     "EL2 encoding resolved below EL2 without NV");
              }

              // Plain ARMv8.3 NV: every EL2 encoding traps from EL1.
              if (el == El::kEl1 && min_el == El::kEl2 && nv_active &&
                  !neve_active &&
                  res.kind != AccessResolution::Kind::kTrapEl2) {
                fail("nv-traps-el2-encodings",
                     "EL2 encoding at virtual EL2 under plain NV must trap");
              }

              // EL0 software may only use EL0 encodings.
              if (el == El::kEl0 && min_el != El::kEl0 &&
                  res.kind != AccessResolution::Kind::kUndefined) {
                fail("el0-privileged-undefined",
                     "privileged encoding resolved at EL0");
              }

              // EL02 timer aliases always trap at virtual EL2 (section 7.1).
              if (el == El::kEl1 && nv_active &&
                  SysRegEncKind(enc) == EncKind::kEl02 &&
                  res.kind != AccessResolution::Kind::kTrapEl2) {
                fail("el02-always-traps",
                     "EL02 alias must trap at virtual EL2 even under NEVE");
              }

              switch (res.kind) {
                case AccessResolution::Kind::kMemory: {
                  if (!neve_active || el == El::kEl2) {
                    fail("memory-only-under-neve",
                         "deferred-page resolution without active NEVE");
                    break;
                  }
                  if (static_cast<int>(res.target) >= kNumRegIds) {
                    fail("memory-target-valid", "invalid backing register");
                    break;
                  }
                  if (res.mem_offset != DeferredPageOffset(res.target) ||
                      res.mem_offset % 8 != 0 ||
                      res.mem_offset + 8 > kDeferredPageSize) {
                    fail("memory-offset-valid",
                         "deferred-page offset mismatch");
                  }
                  NeveClass k = RegNeveClass(res.target);
                  if (k != NeveClass::kDeferred &&
                      k != NeveClass::kTrapOnWrite &&
                      k != NeveClass::kGicCached &&
                      k != NeveClass::kRedirectOrTrap) {
                    fail("memory-class", "NEVE class never goes in-memory");
                  }
                  if (w && k != NeveClass::kDeferred) {
                    fail("memory-write-deferred-only",
                         "only Table 3 registers take in-memory writes; "
                         "cached copies trap on write");
                  }
                  break;
                }
                case AccessResolution::Kind::kRegister:
                  if (static_cast<int>(res.target) >= kNumRegIds) {
                    fail("register-target-valid", "invalid backing register");
                    break;
                  }
                  // An EL2 encoding resolving to a register at EL1 is
                  // exclusively the NEVE Table 4 redirection.
                  if (el == El::kEl1 && min_el == El::kEl2) {
                    if (SysRegEncKind(enc) != EncKind::kDirect) {
                      fail("redirect-direct-only",
                           "alias encoding redirected to a register");
                    } else if (std::optional<RegId> t =
                                   RegRedirectTarget(storage);
                               !t.has_value() || *t != res.target ||
                               RegOwnerEl(res.target) == El::kEl2) {
                      fail("redirect-target-honored",
                           "EL2 encoding resolved to a register that is not "
                           "its Table 4 EL1 redirect target");
                    }
                  }
                  break;
                case AccessResolution::Kind::kGicCpuIf:
                  if (!IsGicCpuInterfaceReg(res.target)) {
                    fail("gic-route", "non-ICC register routed to the GIC");
                  }
                  break;
                case AccessResolution::Kind::kTrapEl2: {
                  auto key = std::make_pair(e, w);
                  if (esr_checked.insert(key).second) {
                    uint64_t esr = Syndrome::SysRegTrap(enc, w, 0).ToEsrBits();
                    if (ExtractBits(esr, 31, 26) !=
                            static_cast<uint64_t>(Ec::kSysReg) ||
                        ExtractBits(esr, 21, 5) != static_cast<uint64_t>(e) ||
                        TestBit(esr, 0) != !w) {
                      fail("trap-esr-roundtrip",
                           "ESR encoding does not round-trip the trapped "
                           "encoding and direction");
                    }
                  }
                  break;
                }
                case AccessResolution::Kind::kUndefined:
                  break;
              }

              // NEVE is an optimization, not a semantics change: whatever NV
              // would have completed without trapping must resolve
              // identically, and NEVE cannot legalize an UNDEFINED access.
              if (fc.f.neve) {
                AccessContext base_ctx = ctx;
                base_ctx.features.neve = false;
                base_ctx.vncr_enabled = false;
                AccessResolution base =
                    ResolveSysRegAccess(base_ctx, enc, w);
                if ((base.kind == AccessResolution::Kind::kRegister ||
                     base.kind == AccessResolution::Kind::kGicCpuIf) &&
                    !SameResolution(res, base)) {
                  fail("neve-preserves-untrapped",
                       "NEVE changed an access NV would not have trapped");
                }
                if (base.kind == AccessResolution::Kind::kUndefined &&
                    res.kind != AccessResolution::Kind::kUndefined) {
                  fail("neve-preserves-undefined",
                       "NEVE legalized an UNDEFINED access");
                }
              }
            }
          }
        }
      }
    }
  }
  return d;
}

// --- pass 3: golden tables ---------------------------------------------------

namespace {

struct GoldenCtx {
  AccessContext vhe_guest;   // vE2H guest hypervisor: HCR = NV, VNCR on
  AccessContext nv1_guest;   // non-VHE guest hypervisor: HCR = NV|NV1
};

GoldenCtx MakeGoldenCtx() {
  GoldenCtx g;
  g.vhe_guest = {.features = ArchFeatures::Armv84Neve(),
                 .el = El::kEl1,
                 .hcr = Hcr{Hcr::Make({HcrBits::kNv})},
                 .vncr_enabled = true};
  g.nv1_guest = g.vhe_guest;
  g.nv1_guest.hcr = Hcr{Hcr::Make({HcrBits::kNv, HcrBits::kNv1})};
  return g;
}

// Expected outcome of one golden behavioural probe.
struct Expect {
  AccessResolution::Kind kind;
  std::optional<RegId> target;  // checked when set
};

void Probe(std::vector<Diagnostic>& d, const AccessContext& ctx, SysReg enc,
           bool is_write, const Expect& want, const char* check,
           const std::string& detail) {
  AccessResolution res = ResolveSysRegAccess(ctx, enc, is_write);
  bool ok = res.kind == want.kind &&
            (!want.target.has_value() || res.target == *want.target);
  if (ok && want.kind == AccessResolution::Kind::kMemory &&
      res.mem_offset != DeferredPageOffset(res.target)) {
    ok = false;
  }
  if (!ok) {
    Diag(d, kSysRegDefsPath, EncDefLine(enc), check,
         std::string(SysRegName(enc)) + (is_write ? " write" : " read") +
             ": resolved to " + KindName(res.kind) + ", paper table says " +
             KindName(want.kind) + " (" + detail + ")");
  }
}

}  // namespace

std::vector<Diagnostic> CheckGoldenTables(const GoldenTables& g) {
  std::vector<Diagnostic> d;
  const GoldenCtx ctx = MakeGoldenCtx();

  // 1. Class membership must match the paper exactly, in both directions.
  std::map<std::string, NeveClass> expected;
  auto add_class = [&](const std::vector<std::string>& names, NeveClass k) {
    for (const std::string& n : names) {
      expected[n] = k;
    }
  };
  add_class(g.DeferredNames(), NeveClass::kDeferred);
  add_class(g.table4_redirect, NeveClass::kRedirect);
  add_class(g.table4_redirect_vhe, NeveClass::kRedirectVhe);
  add_class(g.table4_trap_on_write, NeveClass::kTrapOnWrite);
  add_class(g.trap_on_write_el1, NeveClass::kTrapOnWrite);
  add_class(g.table4_redirect_or_trap, NeveClass::kRedirectOrTrap);
  add_class(g.table5_gic_cached, NeveClass::kGicCached);
  add_class(g.timer_trap, NeveClass::kTimerTrap);

  for (const auto& [name, klass] : expected) {
    std::optional<RegId> reg = RegIdFromName(name);
    if (!reg.has_value()) {
      Diag(d, kRegIdDefsPath, 0, "golden-missing-register",
           "paper table register " + name + " is not in the model");
      continue;
    }
    if (RegNeveClass(*reg) != klass) {
      Diag(d, kRegIdDefsPath, RegDefLine(*reg), "golden-class-mismatch",
           name + ": model NEVE class disagrees with the paper tables");
    }
  }
  for (int r = 0; r < kNumRegIds; ++r) {
    auto reg = static_cast<RegId>(r);
    if (RegNeveClass(reg) == NeveClass::kNone) {
      continue;
    }
    if (expected.find(RegName(reg)) == expected.end()) {
      Diag(d, kRegIdDefsPath, RegDefLine(reg), "golden-extra-register",
           std::string(RegName(reg)) +
               ": NEVE-classified register absent from the paper tables");
    }
  }

  // 2. Behaviour at virtual EL2 must match the tables row by row.
  auto direct = [](const std::string& name) {
    return SysRegFromName(name);
  };
  auto el1_counterpart = [](const std::string& el2_name) {
    std::string n = el2_name;
    n.back() = '1';  // FOO_EL2 -> FOO_EL1
    return RegIdFromName(n);
  };

  // Table 3, EL2-owned rows + TPIDR_EL2: in-memory from either guest kind.
  for (const auto* list : {&g.table3_vm_trap_control, &g.table3_thread_id}) {
    for (const std::string& name : *list) {
      std::optional<SysReg> enc = direct(name);
      if (!enc.has_value()) {
        continue;  // reported by the membership pass
      }
      for (const AccessContext* c : {&ctx.vhe_guest, &ctx.nv1_guest}) {
        for (bool w : {false, true}) {
          Probe(d, *c, *enc, w,
                {AccessResolution::Kind::kMemory, SysRegStorage(*enc)},
                "golden-table3-deferred", "Table 3 VM system register");
        }
      }
    }
  }

  // Table 3, EL1-owned VM execution context: the non-VHE guest reaches it
  // through EL1 encodings (NV1), the VHE guest through *_EL12 aliases (or
  // the EL2-only direct encoding, e.g. SP_EL1).
  for (const std::string& name : g.table3_vm_execution_control) {
    std::optional<SysReg> el1_enc = direct(name);
    if (!el1_enc.has_value()) {
      continue;
    }
    for (bool w : {false, true}) {
      Probe(d, ctx.nv1_guest, *el1_enc, w,
            {AccessResolution::Kind::kMemory, SysRegStorage(*el1_enc)},
            "golden-table3-nv1-deferred",
            "Table 3 VM execution register under NV1");
    }
    std::optional<SysReg> vhe_enc = direct(name + "2");  // FOO_EL1 -> FOO_EL12
    if (!vhe_enc.has_value() && SysRegMinEl(*el1_enc) == El::kEl2) {
      vhe_enc = el1_enc;  // SP_EL1: EL2-only encoding, no alias
    }
    if (vhe_enc.has_value()) {
      for (bool w : {false, true}) {
        Probe(d, ctx.vhe_guest, *vhe_enc, w,
              {AccessResolution::Kind::kMemory, SysRegStorage(*vhe_enc)},
              "golden-table3-el12-deferred",
              "Table 3 VM execution register via VHE alias");
      }
    }
  }

  // Table 4 redirect rows: both guest kinds land on the EL1 counterpart.
  for (const auto* list : {&g.table4_redirect, &g.table4_redirect_vhe}) {
    for (const std::string& name : *list) {
      std::optional<SysReg> enc = direct(name);
      std::optional<RegId> target = el1_counterpart(name);
      if (!enc.has_value() || !target.has_value()) {
        continue;
      }
      for (const AccessContext* c : {&ctx.vhe_guest, &ctx.nv1_guest}) {
        for (bool w : {false, true}) {
          Probe(d, *c, *enc, w,
                {AccessResolution::Kind::kRegister, target},
                "golden-table4-redirect", "Table 4 redirect to *_EL1");
        }
      }
    }
  }

  // Table 4 trap-on-write rows: cached reads, trapped writes.
  for (const std::string& name : g.table4_trap_on_write) {
    std::optional<SysReg> enc = direct(name);
    if (!enc.has_value()) {
      continue;
    }
    for (const AccessContext* c : {&ctx.vhe_guest, &ctx.nv1_guest}) {
      Probe(d, *c, *enc, false,
            {AccessResolution::Kind::kMemory, SysRegStorage(*enc)},
            "golden-table4-cached-read", "Table 4 trap-on-write: cached read");
      Probe(d, *c, *enc, true, {AccessResolution::Kind::kTrapEl2, {}},
            "golden-table4-write-traps", "Table 4 trap-on-write: write");
    }
  }
  for (const std::string& name : g.trap_on_write_el1) {
    std::optional<SysReg> enc = direct(name);
    if (!enc.has_value()) {
      continue;
    }
    Probe(d, ctx.nv1_guest, *enc, false,
          {AccessResolution::Kind::kMemory, SysRegStorage(*enc)},
          "golden-mdscr-cached-read", "section 6.1 debug register read");
    Probe(d, ctx.nv1_guest, *enc, true, {AccessResolution::Kind::kTrapEl2, {}},
          "golden-mdscr-write-traps", "section 6.1 debug register write");
  }

  // Table 4 redirect-or-trap rows: redirect for VHE guests, cached/trap for
  // non-VHE guests (register formats differ, section 6.1).
  for (const std::string& name : g.table4_redirect_or_trap) {
    std::optional<SysReg> enc = direct(name);
    std::optional<RegId> target = el1_counterpart(name);
    if (!enc.has_value() || !target.has_value()) {
      continue;
    }
    for (bool w : {false, true}) {
      Probe(d, ctx.vhe_guest, *enc, w,
            {AccessResolution::Kind::kRegister, target},
            "golden-redirect-or-trap-vhe", "redirect for VHE guest");
    }
    Probe(d, ctx.nv1_guest, *enc, false,
          {AccessResolution::Kind::kMemory, SysRegStorage(*enc)},
          "golden-redirect-or-trap-read", "cached read for non-VHE guest");
    Probe(d, ctx.nv1_guest, *enc, true,
          {AccessResolution::Kind::kTrapEl2, {}},
          "golden-redirect-or-trap-write", "trapped write for non-VHE guest");
  }

  // Table 5: ICH_* cached copies; writes (where legal) trap.
  for (const std::string& name : g.table5_gic_cached) {
    std::optional<SysReg> enc = direct(name);
    if (!enc.has_value()) {
      continue;
    }
    for (const AccessContext* c : {&ctx.vhe_guest, &ctx.nv1_guest}) {
      Probe(d, *c, *enc, false,
            {AccessResolution::Kind::kMemory, SysRegStorage(*enc)},
            "golden-table5-cached-read", "Table 5 cached GIC state");
      if (SysRegRw(*enc) == Rw::kRW) {
        Probe(d, *c, *enc, true, {AccessResolution::Kind::kTrapEl2, {}},
              "golden-table5-write-traps", "Table 5 write");
      }
    }
  }

  // Section 6.1: EL2 hypervisor timers always trap.
  for (const std::string& name : g.timer_trap) {
    std::optional<SysReg> enc = direct(name);
    if (!enc.has_value()) {
      continue;
    }
    for (const AccessContext* c : {&ctx.vhe_guest, &ctx.nv1_guest}) {
      for (bool w : {false, true}) {
        Probe(d, *c, *enc, w, {AccessResolution::Kind::kTrapEl2, {}},
              "golden-timer-traps", "EL2 hypervisor timer");
      }
    }
  }

  // Unclassified EL2 registers keep plain NV behaviour: trap.
  for (int r = 0; r < kNumRegIds; ++r) {
    auto reg = static_cast<RegId>(r);
    if (RegNeveClass(reg) != NeveClass::kNone || RegOwnerEl(reg) != El::kEl2) {
      continue;
    }
    SysReg enc = DirectEncodingOf(reg);
    for (bool w : {false, true}) {
      if ((w && SysRegRw(enc) == Rw::kRO) ||
          (!w && SysRegRw(enc) == Rw::kWO)) {
        continue;
      }
      Probe(d, ctx.vhe_guest, enc, w, {AccessResolution::Kind::kTrapEl2, {}},
            "golden-unclassified-traps",
            "EL2 register outside Tables 3-5 keeps NV trapping");
    }
  }

  return d;
}

std::vector<Diagnostic> RunArchLint() {
  std::vector<Diagnostic> all = LintModel(ArchModel::FromTables());
  for (auto&& pass : {SweepResolution(), CheckGoldenTables(
                          GoldenTables::Paper())}) {
    all.insert(all.end(), pass.begin(), pass.end());
  }
  return all;
}

// --- matrix dump -------------------------------------------------------------

void WriteResolutionMatrix(std::ostream& os, MatrixFormat format,
                           bool use_cache) {
  ResolutionCache cache;
  bool json = format == MatrixFormat::kJson;
  if (json) {
    os << "[\n";
  } else {
    os << "features,el,e2h,nv,nv1,vncr,write,encoding,kind,target,"
          "mem_offset\n";
  }
  bool first = true;
  // The four architecture generations the paper compares; ablation variants
  // are sweep-only (they exist to check invariants, not to be diffed).
  for (size_t fi = 0; fi < 4; ++fi) {
    const FeatureCase& fc = kFeatureCases[fi];
    for (unsigned combo = 0; combo < 8; ++combo) {  // E2H, NV, NV1
      for (bool vncr : {false, true}) {
        if (vncr && !fc.f.neve) {
          continue;
        }
        cache.Invalidate();  // configuration boundary, as on the CPU
        for (El el : {El::kEl0, El::kEl1, El::kEl2}) {
          AccessContext ctx{.features = fc.f,
                            .el = el,
                            .hcr = Hcr{HcrFromMask(combo)},
                            .vncr_enabled = vncr};
          for (int e = 0; e < kNumSysRegs; ++e) {
            auto enc = static_cast<SysReg>(e);
            for (bool w : {false, true}) {
              AccessResolution res = use_cache
                                         ? cache.Resolve(ctx, enc, w)
                                         : ResolveSysRegAccess(ctx, enc, w);
              bool has_target =
                  res.kind == AccessResolution::Kind::kRegister ||
                  res.kind == AccessResolution::Kind::kGicCpuIf ||
                  res.kind == AccessResolution::Kind::kMemory;
              const char* target = has_target ? RegName(res.target) : "";
              if (json) {
                os << (first ? "" : ",\n") << "{\"features\":\"" << fc.name
                   << "\",\"el\":\"" << ElName(el) << "\",\"e2h\":"
                   << (ctx.hcr.e2h() ? 1 : 0) << ",\"nv\":"
                   << (ctx.hcr.nv() ? 1 : 0) << ",\"nv1\":"
                   << (ctx.hcr.nv1() ? 1 : 0) << ",\"vncr\":" << (vncr ? 1 : 0)
                   << ",\"write\":" << (w ? 1 : 0) << ",\"encoding\":\""
                   << SysRegName(enc) << "\",\"kind\":\"" << KindName(res.kind)
                   << "\",\"target\":\"" << target
                   << "\",\"mem_offset\":" << res.mem_offset << "}";
                first = false;
              } else {
                os << fc.name << "," << ElName(el) << ","
                   << (ctx.hcr.e2h() ? 1 : 0) << "," << (ctx.hcr.nv() ? 1 : 0)
                   << "," << (ctx.hcr.nv1() ? 1 : 0) << "," << (vncr ? 1 : 0)
                   << "," << (w ? 1 : 0) << "," << SysRegName(enc) << ","
                   << KindName(res.kind) << "," << target << ","
                   << res.mem_offset << "\n";
              }
            }
          }
        }
      }
    }
  }
  if (json) {
    os << "\n]\n";
  }
}

}  // namespace neve::analysis
