// Static verification of the architecture model.
//
// Three passes, each returning file:line diagnostics (empty == clean):
//
//  1. LintModel       -- structural invariants over the declarative tables
//                        (offsets, aliases, redirect targets, encoding
//                        bijection). Operates on an ArchModel snapshot so
//                        tests can seed violations into a copy.
//  2. SweepResolution -- exhaustively drives ResolveSysRegAccess over the
//                        cross-product of every encoding x EL x feature
//                        generation (incl. NEVE ablations) x HCR{E2H,NV,NV1,
//                        IMO} x VNCR enable x read/write, and checks
//                        architectural invariants on every cell. Every cell
//                        is also resolved through a ResolutionCache twice
//                        (miss-then-hit) and compared against the plain tree
//                        walk -- the differential oracle for the CPU's
//                        fast-path cache.
//  3. CheckGoldenTables - per-class register sets and virtual-EL2 behaviour
//                        must exactly match the paper's Tables 3-5 golden
//                        data (golden_tables.h).
//
// A fourth entry point dumps the full resolution cross-product as CSV or
// JSON so model behaviour can be diffed between commits.

#ifndef NEVE_SRC_ANALYSIS_ARCHLINT_H_
#define NEVE_SRC_ANALYSIS_ARCHLINT_H_

#include <iosfwd>
#include <vector>

#include "src/analysis/golden_tables.h"
#include "src/analysis/model.h"

namespace neve::analysis {

std::vector<Diagnostic> LintModel(const ArchModel& model);
std::vector<Diagnostic> SweepResolution();
std::vector<Diagnostic> CheckGoldenTables(const GoldenTables& golden);

// All three passes over the live tables and the paper golden data.
std::vector<Diagnostic> RunArchLint();

enum class MatrixFormat { kCsv, kJson };

// Emits one row per (features, HCR, VNCR, EL, direction, encoding) cell of
// the resolution cross-product. With `use_cache` the cells are resolved
// through a ResolutionCache (invalidated on each configuration change,
// exactly as the CPU does); the output must be byte-identical to the
// uncached dump -- the CI smoke stage diffs the two.
void WriteResolutionMatrix(std::ostream& os, MatrixFormat format,
                           bool use_cache = false);

}  // namespace neve::analysis

#endif  // NEVE_SRC_ANALYSIS_ARCHLINT_H_
