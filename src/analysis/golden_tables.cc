#include "src/analysis/golden_tables.h"

namespace neve::analysis {

std::vector<std::string> GoldenTables::DeferredNames() const {
  std::vector<std::string> out;
  for (const auto* list : {&table3_vm_trap_control, &table3_vm_execution_control,
                           &table3_thread_id, &table3_extended}) {
    out.insert(out.end(), list->begin(), list->end());
  }
  return out;
}

GoldenTables GoldenTables::Paper() {
  GoldenTables g;
  g.table3_vm_trap_control = {
      "HACR_EL2", "HCR_EL2",  "HPFAR_EL2", "HSTR_EL2", "VMPIDR_EL2",
      "VNCR_EL2", "VPIDR_EL2", "VTCR_EL2", "VTTBR_EL2",
  };
  g.table3_vm_execution_control = {
      "AFSR0_EL1", "AFSR1_EL1", "AMAIR_EL1", "CONTEXTIDR_EL1",
      "CPACR_EL1", "ELR_EL1",   "ESR_EL1",   "FAR_EL1",
      "MAIR_EL1",  "SCTLR_EL1", "SP_EL1",    "SPSR_EL1",
      "TCR_EL1",   "TTBR0_EL1", "TTBR1_EL1", "VBAR_EL1",
  };
  g.table3_thread_id = {"TPIDR_EL2"};
  g.table3_extended = {
      "PMUSERENR_EL0", "PMSELR_EL0",  // section 6.1 PMU registers
      "TPIDR_EL1", "PAR_EL1", "CNTKCTL_EL1", "CSSELR_EL1",  // extended ctx
  };
  g.table4_redirect = {
      "AFSR0_EL2", "AFSR1_EL2", "AMAIR_EL2", "ELR_EL2",   "ESR_EL2",
      "FAR_EL2",   "SPSR_EL2",  "MAIR_EL2",  "SCTLR_EL2", "VBAR_EL2",
  };
  g.table4_redirect_vhe = {"CONTEXTIDR_EL2", "TTBR1_EL2"};
  g.table4_trap_on_write = {"CNTHCTL_EL2", "CNTVOFF_EL2", "CPTR_EL2",
                            "MDCR_EL2"};
  g.table4_redirect_or_trap = {"TCR_EL2", "TTBR0_EL2"};
  g.trap_on_write_el1 = {"MDSCR_EL1"};
  g.table5_gic_cached = {
      "ICH_HCR_EL2",   "ICH_VTR_EL2",   "ICH_VMCR_EL2",  "ICH_MISR_EL2",
      "ICH_EISR_EL2",  "ICH_ELRSR_EL2", "ICH_AP0R0_EL2", "ICH_AP0R1_EL2",
      "ICH_AP0R2_EL2", "ICH_AP0R3_EL2", "ICH_AP1R0_EL2", "ICH_AP1R1_EL2",
      "ICH_AP1R2_EL2", "ICH_AP1R3_EL2", "ICH_LR0_EL2",   "ICH_LR1_EL2",
      "ICH_LR2_EL2",   "ICH_LR3_EL2",   "ICH_LR4_EL2",   "ICH_LR5_EL2",
      "ICH_LR6_EL2",   "ICH_LR7_EL2",   "ICH_LR8_EL2",   "ICH_LR9_EL2",
      "ICH_LR10_EL2",  "ICH_LR11_EL2",  "ICH_LR12_EL2",  "ICH_LR13_EL2",
      "ICH_LR14_EL2",  "ICH_LR15_EL2",
  };
  g.timer_trap = {"CNTHV_CTL_EL2", "CNTHV_CVAL_EL2", "CNTHP_CTL_EL2",
                  "CNTHP_CVAL_EL2"};
  return g;
}

}  // namespace neve::analysis
