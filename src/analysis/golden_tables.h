// Golden register sets transcribed from the paper (Tables 3, 4, 5 and
// section 6.1), kept as plain name strings on purpose: they are an
// *independent* statement of what the model must contain, so a wrong row in
// regid_defs.inc cannot silently agree with itself. archlint checks both
// directions -- every golden name exists with the right class, and no class
// contains a register the paper (plus the documented model extensions) does
// not assign to it.

#ifndef NEVE_SRC_ANALYSIS_GOLDEN_TABLES_H_
#define NEVE_SRC_ANALYSIS_GOLDEN_TABLES_H_

#include <string>
#include <vector>

namespace neve::analysis {

struct GoldenTables {
  // Table 3 "VM system registers": redirected to the deferred access page.
  std::vector<std::string> table3_vm_trap_control;      // 9 EL2 registers
  std::vector<std::string> table3_vm_execution_control; // 16 EL1 registers
  std::vector<std::string> table3_thread_id;            // TPIDR_EL2
  // Section 6.1 PMU/debug additions + the extended EL1 kernel context the
  // paper's table abridges (modeled deferred, see regid_defs.inc).
  std::vector<std::string> table3_extended;

  // Table 4 "hypervisor control registers".
  std::vector<std::string> table4_redirect;        // Redirect to *_EL1
  std::vector<std::string> table4_redirect_vhe;    // Redirect to *_EL1 (VHE)
  std::vector<std::string> table4_trap_on_write;   // cached reads, write traps
  std::vector<std::string> table4_redirect_or_trap;
  // Section 6.1: EL1-owned register with trap-on-write treatment (MDSCR).
  std::vector<std::string> trap_on_write_el1;

  // Table 5: GIC hypervisor control interface, cached copies.
  std::vector<std::string> table5_gic_cached;      // 30 ICH_* registers

  // Section 6.1: EL2 hypervisor timers, always trap.
  std::vector<std::string> timer_trap;

  // All deferred-page names (union of the table3 lists).
  std::vector<std::string> DeferredNames() const;

  static GoldenTables Paper();
};

}  // namespace neve::analysis

#endif  // NEVE_SRC_ANALYSIS_GOLDEN_TABLES_H_
