#include "src/analysis/model.h"

#include <array>
#include <sstream>

#include "src/base/status.h"

namespace neve::analysis {
namespace {

// __LINE__ inside an included file expands to the line within *that* file,
// so re-including the .inc tables with a line-capturing macro yields the
// source row of every table entry.
constexpr std::array<int, kNumRegIds> kRegLines = {
#define NEVE_REGID(id, name, owner, klass, redirect) __LINE__,
#include "src/arch/regid_defs.inc"
#undef NEVE_REGID
};

constexpr std::array<int, kNumSysRegs> kEncLines = {
#define NEVE_SYSREG(id, name, storage, min_el, kind, rw) __LINE__,
#include "src/arch/sysreg_defs.inc"
#undef NEVE_SYSREG
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream oss;
  oss << file;
  if (line > 0) {
    oss << ":" << line;
  }
  oss << ": [" << check << "] " << message;
  return oss.str();
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream oss;
  for (const Diagnostic& d : diags) {
    oss << d.ToString() << "\n";
  }
  return oss.str();
}

int RegDefLine(RegId reg) {
  auto idx = static_cast<size_t>(reg);
  NEVE_CHECK(idx < kRegLines.size());
  return kRegLines[idx];
}

int EncDefLine(SysReg enc) {
  auto idx = static_cast<size_t>(enc);
  NEVE_CHECK(idx < kEncLines.size());
  return kEncLines[idx];
}

ArchModel ArchModel::FromTables() {
  ArchModel m;
  m.regs.reserve(kNumRegIds);
  for (int r = 0; r < kNumRegIds; ++r) {
    auto reg = static_cast<RegId>(r);
    RegRow row;
    row.name = RegName(reg);
    row.owner = RegOwnerEl(reg);
    row.klass = RegNeveClass(reg);
    row.redirect = RegRedirectTarget(reg).value_or(reg);
    row.deferred_offset = DeferredPageOffset(reg);
    row.line = RegDefLine(reg);
    m.regs.push_back(std::move(row));
  }
  m.encs.reserve(kNumSysRegs);
  for (int e = 0; e < kNumSysRegs; ++e) {
    auto enc = static_cast<SysReg>(e);
    EncRow row;
    row.name = SysRegName(enc);
    row.storage = SysRegStorage(enc);
    row.min_el = SysRegMinEl(enc);
    row.kind = SysRegEncKind(enc);
    row.rw = SysRegRw(enc);
    row.line = EncDefLine(enc);
    m.encs.push_back(std::move(row));
  }
  return m;
}

}  // namespace neve::analysis
