// A mutable snapshot of the declarative architecture model.
//
// The live tables in src/arch are constexpr arrays stamped out of the .inc
// files; archlint wants to (a) check invariants over them and (b) let tests
// seed violations to prove each check actually fires. ArchModel copies every
// row into plain vectors -- tests corrupt a copy, the linter never knows the
// difference -- and records the .inc line each row came from, so diagnostics
// point at the offending row, not just at a register name.

#ifndef NEVE_SRC_ANALYSIS_MODEL_H_
#define NEVE_SRC_ANALYSIS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/el.h"
#include "src/arch/sysreg.h"

namespace neve::analysis {

// Repo-relative paths of the table sources, used as diagnostic locations.
inline constexpr char kRegIdDefsPath[] = "src/arch/regid_defs.inc";
inline constexpr char kSysRegDefsPath[] = "src/arch/sysreg_defs.inc";

// One finding. `file` is repo-relative; line 0 means "whole file / no row".
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string check;  // short kebab-case id of the violated rule
  std::string message;

  std::string ToString() const;
};

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags);

// One NEVE_REGID row.
struct RegRow {
  std::string name;
  El owner = El::kEl0;
  NeveClass klass = NeveClass::kNone;
  RegId redirect = RegId::kNumRegIds;  // self for non-redirect classes
  uint64_t deferred_offset = 0;
  int line = 0;  // row in regid_defs.inc
};

// One NEVE_SYSREG row.
struct EncRow {
  std::string name;
  RegId storage = RegId::kNumRegIds;
  El min_el = El::kEl0;
  EncKind kind = EncKind::kDirect;
  Rw rw = Rw::kRW;
  int line = 0;  // row in sysreg_defs.inc
};

struct ArchModel {
  std::vector<RegRow> regs;  // indexed by RegId ordinal
  std::vector<EncRow> encs;  // indexed by SysReg ordinal

  // Snapshot of the tables the simulator actually runs on.
  static ArchModel FromTables();
};

// Line (in the respective .inc file) of a row, for diagnostics that start
// from a live RegId/SysReg rather than an ArchModel row.
int RegDefLine(RegId reg);
int EncDefLine(SysReg enc);

}  // namespace neve::analysis

#endif  // NEVE_SRC_ANALYSIS_MODEL_H_
