#include "src/analysis/srclint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace neve::analysis {
namespace {

// Files allowed to index the raw register file directly. (The linter's own
// pattern strings no longer need whitelisting: rules match against views
// with string-literal contents blanked.)
constexpr const char* kRawRegsWhitelist[] = {
    "src/cpu/cpu.h",
    "src/cpu/cpu.cc",
};

// Files allowed to use the non-resolving PeekReg/PokeReg accessors: the CPU
// itself, the host hypervisor's world switch and KVM emulation, and the
// device models that share hardware register state with the CPU.
constexpr const char* kPeekPokeWhitelist[] = {
    "src/cpu/cpu.h",           "src/cpu/cpu.cc",
    "src/hyp/world_switch.cc", "src/hyp/host_kvm.cc",
    "src/gic/gic.cc",          "src/timer/timer.cc",
    "src/workload/microbench.cc",
};

bool PathMatches(std::string_view path, std::string_view repo_relative) {
  if (path == repo_relative) {
    return true;
  }
  return path.size() > repo_relative.size() &&
         path.compare(path.size() - repo_relative.size(),
                      repo_relative.size(), repo_relative) == 0 &&
         path[path.size() - repo_relative.size() - 1] == '/';
}

template <size_t N>
bool Whitelisted(std::string_view path, const char* const (&list)[N]) {
  for (const char* entry : list) {
    if (PathMatches(path, entry)) {
      return true;
    }
  }
  return false;
}

bool IdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Shared engine of StripComments / StripCommentsAndLiterals: a small state
// machine over the text, replacing what the caller wants hidden with spaces.
// Newlines are always kept so line numbers survive; the delimiting quotes of
// a literal are kept so token boundaries survive.
std::string StripImpl(std::string_view content, bool strip_literals) {
  std::string out(content);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kBlockComment;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !IdentChar(content[i - 1]))) {
          // An apostrophe after an identifier char is a digit separator
          // (1'000'000) or a literal suffix, not a character literal.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char delim = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < content.size()) {
          if (strip_literals) {
            out[i] = out[i + 1] = ' ';
          }
          ++i;  // the escaped char cannot close the literal
        } else if (c == delim) {
          state = State::kCode;
        } else if (strip_literals && c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

// A source file plus the preprocessed views the rules match against.
// `uncommented` keeps string literals (for required-needle searches like
// Counter("cpu.traps_to_el2") and for .inc quoted NAMEs); `stripped` blanks
// them too (for call-site pattern matching). Justification comments and
// call-argument text are read from the original `f.content`.
struct LintedFile {
  const SourceFile& f;
  std::string uncommented;
  std::string stripped;
};

int LineOfOffset(std::string_view content, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(content.begin(), content.begin() + offset, '\n'));
}

bool IsCommentLine(std::string_view content, size_t offset) {
  size_t bol = content.rfind('\n', offset);
  bol = (bol == std::string_view::npos) ? 0 : bol + 1;
  while (bol < offset && (content[bol] == ' ' || content[bol] == '\t')) {
    ++bol;
  }
  return content.compare(bol, 2, "//") == 0;
}

// Every occurrence of `pattern` as a whole token prefix (previous char is not
// part of an identifier), skipping comment lines.
std::vector<size_t> FindCalls(std::string_view content,
                              std::string_view pattern) {
  std::vector<size_t> out;
  for (size_t pos = content.find(pattern); pos != std::string_view::npos;
       pos = content.find(pattern, pos + 1)) {
    if (pos > 0 && IdentChar(content[pos - 1])) {
      continue;  // e.g. vregs_[ is not regs_[
    }
    if (!IsCommentLine(content, pos)) {
      out.push_back(pos);
    }
  }
  return out;
}

// --- rule: raw register-file access ------------------------------------------

void LintRawRegisterAccess(const LintedFile& lf, std::vector<Diagnostic>& d) {
  struct Rule {
    const char* pattern;
    bool raw_array;  // uses the tighter regs_[ whitelist
  };
  static constexpr Rule kRules[] = {
      {"regs_[", true}, {"PeekReg(", false}, {"PokeReg(", false}};
  for (const Rule& rule : kRules) {
    bool ok = rule.raw_array ? Whitelisted(lf.f.path, kRawRegsWhitelist)
                             : Whitelisted(lf.f.path, kPeekPokeWhitelist);
    if (ok) {
      continue;
    }
    for (size_t pos : FindCalls(lf.stripped, rule.pattern)) {
      d.push_back({lf.f.path, LineOfOffset(lf.stripped, pos),
                   "raw-register-access",
                   std::string(rule.pattern) +
                       "... bypasses access resolution; use the Cpu "
                       "SysRegRead/SysRegWrite accessors or whitelist this "
                       "file in srclint.cc"});
    }
  }
}

// --- rule: .inc table hygiene ------------------------------------------------

struct IncRow {
  int line = 0;
  std::string id;                     // first macro argument
  std::string name;                   // quoted NAME argument
  std::vector<std::string> args;      // all arguments, trimmed
};

std::string Trim(std::string s) {
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t");
  return (b == std::string::npos) ? std::string() : s.substr(b, e - b + 1);
}

std::vector<IncRow> ParseIncRows(std::string_view content,
                                 std::string_view macro) {
  std::vector<IncRow> rows;
  std::string open = std::string(macro) + "(";
  for (size_t pos : FindCalls(content, open)) {
    size_t args_begin = pos + open.size();
    size_t close = content.find(')', args_begin);
    if (close == std::string_view::npos) {
      continue;
    }
    IncRow row;
    row.line = LineOfOffset(content, pos);
    std::string args(content.substr(args_begin, close - args_begin));
    std::istringstream iss(args);
    std::string field;
    while (std::getline(iss, field, ',')) {
      row.args.push_back(Trim(field));
    }
    if (row.args.size() < 2) {
      continue;
    }
    row.id = row.args[0];
    std::string& quoted = row.args[1];
    if (quoted.size() >= 2 && quoted.front() == '"' && quoted.back() == '"') {
      row.name = quoted.substr(1, quoted.size() - 2);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

int EncKindRank(const std::string& kind_arg) {
  if (kind_arg.find("kDirect") != std::string::npos) {
    return 0;
  }
  if (kind_arg.find("kEl12") != std::string::npos) {
    return 1;
  }
  if (kind_arg.find("kEl02") != std::string::npos) {
    return 2;
  }
  return -1;
}

// ICH_LR<n> suffix of a row name, or -1.
int IchLrIndex(const std::string& name) {
  constexpr std::string_view prefix = "ICH_LR";
  if (name.rfind(prefix, 0) != 0) {
    return -1;
  }
  size_t i = prefix.size();
  int n = 0;
  bool any = false;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
    n = n * 10 + (name[i] - '0');
    any = true;
    ++i;
  }
  return (any && name.compare(i, std::string::npos, "_EL2") == 0) ? n : -1;
}

void LintIncRows(const LintedFile& lf, std::string_view macro,
                 std::vector<Diagnostic>& d) {
  // Parsed from the uncommented view: quoted NAME arguments must stay
  // intact, but commented-out rows must not parse.
  const SourceFile& f = lf.f;
  std::vector<IncRow> rows = ParseIncRows(lf.uncommented, macro);
  std::map<std::string, int> ids;
  int prev_kind = 0;
  int prev_lr = -1;
  for (const IncRow& row : rows) {
    if (row.id != "k" + row.name) {
      d.push_back({f.path, row.line, "inc-identifier-name",
                   row.id + ": identifier must be 'k' + NAME (k" + row.name +
                       ")"});
    }
    auto [it, inserted] = ids.emplace(row.id, row.line);
    if (!inserted) {
      d.push_back({f.path, row.line, "inc-duplicate-id",
                   row.id + " already defined at line " +
                       std::to_string(it->second)});
    }
    if (macro == "NEVE_SYSREG" && row.args.size() >= 5) {
      int kind = EncKindRank(row.args[4]);
      if (kind >= 0) {
        if (kind < prev_kind) {
          d.push_back({f.path, row.line, "inc-kind-order",
                       row.id + ": encoding kinds must be grouped kDirect, "
                                "then kEl12, then kEl02"});
        }
        prev_kind = std::max(prev_kind, kind);
      }
    }
    int lr = IchLrIndex(row.name);
    if (lr >= 0) {
      if (prev_lr >= 0 && lr != prev_lr + 1) {
        d.push_back({f.path, row.line, "ich-lr-order",
                     row.name + ": ICH_LR rows must be consecutive and "
                                "ascending (previous was ICH_LR" +
                         std::to_string(prev_lr) + "_EL2)"});
      }
      prev_lr = lr;
    }
  }
}

// --- rule: trap-path instrumentation -----------------------------------------

void LintTrapInstrumentation(const LintedFile& lf,
                             std::vector<Diagnostic>& d) {
  const SourceFile& f = lf.f;
  if (!PathMatches(f.path, "src/cpu/cpu.cc")) {
    return;
  }
  for (size_t pos : FindCalls(lf.stripped, "TakeTrapToEl2(")) {
    // The argument list may span lines; scan to the matching close paren on
    // the stripped view (parens inside literals cannot confuse the match),
    // then read the argument text from the ORIGINAL: the detect charge may
    // be an explicit /*detect_cost=*/ comment.
    size_t open = lf.stripped.find('(', pos);
    int depth = 0;
    size_t end = open;
    for (; end < lf.stripped.size(); ++end) {
      if (lf.stripped[end] == '(') {
        ++depth;
      } else if (lf.stripped[end] == ')' && --depth == 0) {
        break;
      }
    }
    std::string call = f.content.substr(open, end - open);
    if (call.find("detect") == std::string::npos) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "trap-missing-detect",
                   "TakeTrapToEl2 call does not charge a detect cost "
                   "(pass cost_.detect_* or an explicit /*detect_cost=*/)"});
    }
  }
  struct Required {
    const char* needle;
    const char* check;
    const char* message;
  };
  static constexpr Required kRequired[] = {
      {"cost_.trap_entry", "trap-missing-entry-charge",
       "trap path never charges cost_.trap_entry"},
      {"cost_.trap_return", "trap-missing-return-charge",
       "trap path never charges cost_.trap_return"},
      {"Counter(\"cpu.traps_to_el2\")", "trap-missing-counter",
       "trap path never bumps the cpu.traps_to_el2 counter"},
  };
  for (const Required& req : kRequired) {
    // Needles contain quoted metric names, so search the uncommented view
    // (literals intact, but a commented-out charge does not satisfy).
    if (lf.uncommented.find(req.needle) == std::string::npos) {
      d.push_back({f.path, 0, req.check, req.message});
    }
  }
}

// --- rule: guest-reachable aborts --------------------------------------------

// Layers a guest can drive trap paths through: a failed NEVE_CHECK there
// takes the whole machine down with the guest's bug. Checks in these
// directories must either be confined (NEVE_GUEST_CHECK / RaiseGuestFault)
// or justified as unreachable-by-guest with a `// host-invariant:` comment.
constexpr const char* kConfinedDirs[] = {"src/hyp/", "src/gic/", "src/x86/"};

bool InConfinedDir(std::string_view path) {
  for (const char* dir : kConfinedDirs) {
    if (path.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

// True when `needle` (a justification marker like "host-invariant:" or
// "single-mutator:") appears on the match's own line or within the two
// preceding lines. Always evaluated on ORIGINAL text: justifications live
// in comments.
bool JustifiedNear(std::string_view content, size_t pos,
                   std::string_view needle) {
  size_t bol = content.rfind('\n', pos);
  bol = (bol == std::string_view::npos) ? 0 : bol + 1;
  for (int i = 0; i < 2 && bol >= 2; ++i) {
    size_t prev = content.rfind('\n', bol - 2);
    bol = (prev == std::string_view::npos) ? 0 : prev + 1;
  }
  size_t eol = content.find('\n', pos);
  if (eol == std::string_view::npos) {
    eol = content.size();
  }
  return content.substr(bol, eol - bol).find(needle) !=
         std::string_view::npos;
}

void LintGuestReachableAborts(const LintedFile& lf,
                              std::vector<Diagnostic>& d) {
  const SourceFile& f = lf.f;
  if (!InConfinedDir(f.path)) {
    return;
  }
  static constexpr const char* kPatterns[] = {"NEVE_CHECK(", "NEVE_CHECK_MSG(",
                                              "abort("};
  for (const char* pattern : kPatterns) {
    for (size_t pos : FindCalls(lf.stripped, pattern)) {
      if (JustifiedNear(f.content, pos, "host-invariant:")) {
        continue;
      }
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "guest-reachable-abort",
                   std::string(pattern) +
                       "...) in a guest-drivable layer takes the machine "
                       "down with the guest; confine it (NEVE_GUEST_CHECK / "
                       "RaiseGuestFault) or justify it with a "
                       "'// host-invariant:' comment within the two "
                       "preceding lines"});
    }
  }
}

// --- rule: attribution category annotation -----------------------------------

// Files defining the attribution primitives themselves.
constexpr const char* kAttrWhitelist[] = {
    "src/obs/attr.h",
    "src/obs/attr.cc",
    "src/cpu/cpu.h",
};

// The parenthesized argument text of the call starting at `pos`, or "" when
// no '(' opens before the statement ends (a declaration, not a call).
// Boundaries come from the stripped view (parens and semicolons inside
// literals cannot confuse the scan); the text returned is the ORIGINAL,
// comments included, so /*category=*/-style markers survive.
std::string CallArgText(std::string_view stripped, std::string_view original,
                        size_t pos) {
  size_t open = stripped.find('(', pos);
  size_t semi = stripped.find(';', pos);
  if (open == std::string_view::npos ||
      (semi != std::string_view::npos && semi < open)) {
    return "";
  }
  int depth = 0;
  size_t end = open;
  for (; end < stripped.size(); ++end) {
    if (stripped[end] == '(') {
      ++depth;
    } else if (stripped[end] == ')' && --depth == 0) {
      break;
    }
  }
  return std::string(original.substr(open, end - open));
}

// The arguments name a category: a literal AttrCat:: enumerator or an
// expression that computes one (emul_cat, TrapCatForEc(...)).
bool MentionsAttrCategory(const std::string& args) {
  if (args.find("AttrCat::") != std::string::npos) {
    return true;
  }
  std::string lower = args;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return lower.find("cat") != std::string::npos;
}

// Every cycle-charging attribution site must say *which* category it charges:
// an uncategorized charge silently lands cycles in whatever frame happens to
// be on top, which corrupts the per-category breakdown without tripping the
// conservation invariant. src/cpu/cpu.cc must additionally keep its two
// non-scope charge sites (AdvanceTo's idle rendezvous and the VNCR redirect)
// on their dedicated categories.
void LintAttrCategories(const LintedFile& lf, std::vector<Diagnostic>& d) {
  const SourceFile& f = lf.f;
  if (Whitelisted(f.path, kAttrWhitelist)) {
    return;
  }
  static constexpr const char* kChargePatterns[] = {"ChargeAttributed(",
                                                    "ChargeTo("};
  for (const char* pattern : kChargePatterns) {
    for (size_t pos : FindCalls(lf.stripped, pattern)) {
      if (!MentionsAttrCategory(CallArgText(lf.stripped, f.content, pos))) {
        d.push_back({f.path, LineOfOffset(f.content, pos),
                     "attr-missing-category",
                     std::string(pattern) +
                         "...) charges cycles without an attribution "
                         "category; pass an AttrCat:: enumerator (or an "
                         "expression computing one)"});
      }
    }
  }
  for (size_t pos : FindCalls(lf.stripped, "AttrScope")) {
    std::string args = CallArgText(lf.stripped, f.content, pos);
    if (args.empty()) {
      continue;  // a mention, not a construction
    }
    if (!MentionsAttrCategory(args)) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "attr-missing-category",
                   "AttrScope constructed without an attribution category; "
                   "every frame must name the AttrCat it charges"});
    }
  }
  if (PathMatches(f.path, "src/cpu/cpu.cc")) {
    struct Required {
      const char* needle;
      const char* check;
      const char* message;
    };
    static constexpr Required kRequired[] = {
        {"AttrCat::kIdleWait", "attr-missing-idle-category",
         "AdvanceTo's rendezvous charge must stay on AttrCat::kIdleWait"},
        {"AttrCat::kVncrRedirect", "attr-missing-vncr-category",
         "the VNCR redirect charge must stay on AttrCat::kVncrRedirect"},
    };
    for (const Required& req : kRequired) {
      if (lf.uncommented.find(req.needle) == std::string::npos) {
        d.push_back({f.path, 0, req.check, req.message});
      }
    }
  }
}

// --- rule: batch-bypass ------------------------------------------------------

// The batch engine's contract is ONE aggregated charge (and one counter
// delta) per executed block. A per-op Charge/metric call sneaking into a
// batch-eligible path keeps byte-identity -- the cycles still add up -- so
// no differential test catches it; what it silently destroys is the
// aggregation itself, i.e. the engine's entire perf win. Every charging or
// metric call under src/sim/batch must therefore say which side of the
// contract it is on: `// block-delta:` (an aggregated per-block apply site)
// or `// unbatched:` (a deliberate per-op fallback path), on the call's line
// or the two lines above.
void LintBatchBypass(const LintedFile& lf, std::vector<Diagnostic>& d) {
  const SourceFile& f = lf.f;
  if (f.path.rfind("src/sim/batch/", 0) != 0) {
    return;
  }
  static constexpr const char* kPatterns[] = {
      "Charge(", "ChargeAttributed(", "ChargeTo(", "Counter(", "Instant("};
  for (const char* pattern : kPatterns) {
    for (size_t pos : FindCalls(lf.stripped, pattern)) {
      if (JustifiedNear(f.content, pos, "block-delta:") ||
          JustifiedNear(f.content, pos, "unbatched:")) {
        continue;
      }
      d.push_back({f.path, LineOfOffset(f.content, pos), "batch-bypass",
                   std::string(pattern) +
                       "...) in the batch layer without a contract marker; "
                       "annotate it '// block-delta: <why>' (aggregated "
                       "per-block apply site) or '// unbatched: <why>' "
                       "(deliberate per-op fallback) within the two "
                       "preceding lines"});
    }
  }
}

// --- rule: unseeded randomness in the fuzzer ---------------------------------

// The fuzzer's determinism contract (stackfuzz output is a pure function of
// --seed/--runs) dies the moment any ambient entropy source sneaks in. All
// randomness in src/fuzz must flow from the seeded neve::Rng.
void LintFuzzUnseededRandomness(const LintedFile& lf,
                                std::vector<Diagnostic>& d) {
  const SourceFile& f = lf.f;
  if (f.path.rfind("src/fuzz/", 0) != 0) {
    return;
  }
  static constexpr const char* kForbidden[] = {
      "rand(",        "srand(",       "random_device",
      "mt19937",      "minstd_rand",  "default_random_engine",
      "drand48(",     "lrand48(",     "ranlux",
  };
  for (const char* pattern : kForbidden) {
    for (size_t pos : FindCalls(lf.stripped, pattern)) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "fuzz-unseeded-randomness",
                   std::string(pattern) +
                       "... is ambient entropy; src/fuzz must derive all "
                       "randomness from the seeded neve::Rng so campaigns "
                       "replay byte-identically"});
    }
  }
}

// --- rule: obs span balance --------------------------------------------------

void LintSpanBalance(const LintedFile& lf, std::vector<Diagnostic>& d) {
  size_t begins = FindCalls(lf.stripped, "tracer().Begin(").size();
  size_t ends = FindCalls(lf.stripped, "tracer().End(").size();
  if (begins != ends) {
    d.push_back({lf.f.path, 0, "span-balance",
                 "tracer().Begin/End mismatch: " + std::to_string(begins) +
                     " Begin vs " + std::to_string(ends) +
                     " End -- a span leaks or double-closes"});
  }
}

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- rule: shared-mutation lockset audit -------------------------------------

// Directories whose classes the lockset audit enforces (the simulator's
// guest-state-bearing layers). Declarations elsewhere still enter the
// catalog -- so a name declared in several classes resolves toward the union
// of its home TUs -- but only audited members produce diagnostics.
constexpr const char* kLocksetDirs[] = {"src/cpu/", "src/hyp/", "src/gic/",
                                        "src/mem/", "src/sim/"};

bool InLocksetDir(std::string_view path) {
  for (const char* dir : kLocksetDirs) {
    if (path.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

// src/hyp/virtio.cc -> "virtio": the TU stem. foo.h and foo.cc share a stem
// and therefore a TU (the header is textually part of the .cc that includes
// it), so header-inline mutations are home.
std::string TuStem(std::string_view path) {
  size_t slash = path.rfind('/');
  std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  size_t dot = base.rfind('.');
  return std::string(dot == std::string_view::npos ? base
                                                   : base.substr(0, dot));
}

struct Token {
  size_t pos = 0;
  size_t len = 0;
};

// Identifier tokens that follow the repo's member-naming convention:
// lowercase start, trailing underscore, at least one more character.
std::vector<Token> MemberTokens(std::string_view s) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < s.size()) {
    if (!IdentChar(s[i]) || (i > 0 && IdentChar(s[i - 1]))) {
      ++i;
      continue;
    }
    size_t e = i;
    while (e < s.size() && IdentChar(s[e])) {
      ++e;
    }
    if (e - i >= 2 && s[e - 1] == '_' &&
        std::islower(static_cast<unsigned char>(s[i])) != 0) {
      out.push_back({i, e - i});
    }
    i = e;
  }
  return out;
}

// True when the token at [pos, pos+len) reads as a member *declaration*: a
// type-ish token (identifier, '*', '&', '>') precedes it on its own line --
// an assignment statement starts with the member itself -- and one of ';',
// '=', '{', '[' or a GUARDED_BY annotation follows. Heuristic by design:
// srclint is flow-light string matching, and the naming convention plus
// these shape checks pin down the cases that occur in practice.
bool IsDeclSite(std::string_view s, size_t pos, size_t len) {
  size_t bol = s.rfind('\n', pos);
  bol = (bol == std::string_view::npos) ? 0 : bol + 1;
  size_t p = pos;
  while (p > bol && (s[p - 1] == ' ' || s[p - 1] == '\t')) {
    --p;
  }
  if (p == bol) {
    return false;  // starts the line: an assignment or a wrapped expression
  }
  char prev = s[p - 1];
  if (!IdentChar(prev) && prev != '*' && prev != '&' && prev != '>') {
    return false;
  }
  if (prev == '&' && p >= 2 && s[p - 2] == '&') {
    return false;  // `a && b_` is an expression, not `T& b_`
  }
  // Walk back over pointer/reference decoration to the type-ish token, so
  // `return *ptr_;` is recognized as a dereference, not a `T* ptr_;` decl.
  size_t te = p;
  while (te > bol && (s[te - 1] == '*' || s[te - 1] == '&' ||
                      s[te - 1] == ' ' || s[te - 1] == '\t')) {
    --te;
  }
  if (te > bol && IdentChar(s[te - 1])) {
    size_t tb = te;
    while (tb > bol && IdentChar(s[tb - 1])) {
      --tb;
    }
    std::string_view tok = s.substr(tb, te - tb);
    if (tok == "return" || tok == "co_return" || tok == "delete" ||
        tok == "new" || tok == "case" || tok == "goto" || tok == "throw") {
      return false;
    }
  }
  size_t q = pos + len;
  while (q < s.size() && (s[q] == ' ' || s[q] == '\t' || s[q] == '\n')) {
    ++q;
  }
  if (q >= s.size()) {
    return false;
  }
  if (s[q] == '=') {
    return q + 1 >= s.size() || s[q + 1] != '=';  // `==` compares
  }
  if (s[q] == ';' || s[q] == '{' || s[q] == '[') {
    return true;
  }
  return s.compare(q, 11, "GUARDED_BY(") == 0;
}

// True when the token at [pos, pos+len) is *mutated*: assigned (compound
// assignments included), incremented or decremented, directly or through
// one [subscript].
bool IsWriteSite(std::string_view s, size_t pos, size_t len) {
  // Prefix ++/-- applies to the whole access path: walk back over
  // `obj.`/`ptr->` chains (`++w.pending_` mutates pending_).
  size_t p = pos;
  while (true) {
    while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t')) {
      --p;
    }
    if (p >= 1 && s[p - 1] == '.') {
      --p;
    } else if (p >= 2 && s[p - 1] == '>' && s[p - 2] == '-') {
      p -= 2;
    } else {
      break;
    }
    while (p > 0 && IdentChar(s[p - 1])) {
      --p;
    }
  }
  if (p >= 2 && ((s[p - 1] == '+' && s[p - 2] == '+') ||
                 (s[p - 1] == '-' && s[p - 2] == '-'))) {
    return true;  // prefix ++/--
  }
  size_t q = pos + len;
  while (q < s.size() && (s[q] == ' ' || s[q] == '\t')) {
    ++q;
  }
  if (q < s.size() && s[q] == '[') {
    int depth = 0;
    for (; q < s.size(); ++q) {
      if (s[q] == '[') {
        ++depth;
      } else if (s[q] == ']' && --depth == 0) {
        ++q;
        break;
      }
    }
  }
  while (q < s.size() && (s[q] == ' ' || s[q] == '\t' || s[q] == '\n')) {
    ++q;
  }
  if (q >= s.size()) {
    return false;
  }
  if (q + 1 < s.size() && ((s[q] == '+' && s[q + 1] == '+') ||
                           (s[q] == '-' && s[q + 1] == '-'))) {
    return true;  // postfix ++/--
  }
  static constexpr std::string_view kOps[] = {
      "<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
  for (std::string_view op : kOps) {
    if (s.compare(q, op.size(), op) == 0) {
      return true;
    }
  }
  return s[q] == '=' && (q + 1 >= s.size() || s[q + 1] != '=');
}

// --- rule: snapshot coverage -------------------------------------------------

// Directories whose headers declare checkpointable guest/host state. Every
// `member_`-style field there must either appear in src/snap (serialized,
// reconstructed, or structurally verified by the serializer) or carry a
// `// not-snapshotted: <why>` annotation.
constexpr const char* kSnapshotDirs[] = {"src/cpu/", "src/hyp/", "src/gic/",
                                         "src/mem/", "src/timer/"};

bool InSnapshotDir(std::string_view path) {
  for (const char* dir : kSnapshotDirs) {
    if (path.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

// The identifier token immediately before `pos` (skipping blanks), or "".
std::string_view PrecedingIdentifier(std::string_view s, size_t pos) {
  size_t p = pos;
  while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t')) {
    --p;
  }
  size_t e = p;
  while (p > 0 && IdentChar(s[p - 1])) {
    --p;
  }
  return s.substr(p, e - p);
}

void LintSnapshotCoverage(const std::vector<SourceFile>& files,
                          std::vector<Diagnostic>& d) {
  // Pass 1: every member-style token mentioned anywhere in src/snap counts
  // as covered -- the serializer reads fields to capture them and writes
  // them to restore, so a mere mention is the right (conservative) signal.
  std::set<std::string> covered;
  bool snap_layer_present = false;
  for (const SourceFile& f : files) {
    if (f.path.rfind("src/snap/", 0) != 0) {
      continue;
    }
    snap_layer_present = true;
    std::string s = StripCommentsAndLiterals(f.content);
    for (Token t : MemberTokens(s)) {
      covered.insert(std::string(s.substr(t.pos, t.len)));
    }
  }
  if (!snap_layer_present) {
    return;  // nothing to audit against (e.g. a synthetic test source set)
  }
  // Pass 2: audit declarations in the state-bearing headers.
  for (const SourceFile& f : files) {
    if (!InSnapshotDir(f.path) || !HasSuffix(f.path, ".h")) {
      continue;
    }
    std::string s = StripCommentsAndLiterals(f.content);
    for (Token t : MemberTokens(s)) {
      if (!IsDeclSite(s, t.pos, t.len)) {
        continue;
      }
      // Host-side synchronization primitives hold no guest state.
      if (PrecedingIdentifier(s, t.pos) == "Mutex") {
        continue;
      }
      std::string name(s.substr(t.pos, t.len));
      if (covered.count(name) != 0) {
        continue;
      }
      if (JustifiedNear(f.content, t.pos, "not-snapshotted:")) {
        continue;
      }
      d.push_back({f.path, LineOfOffset(s, t.pos), "snapshot-coverage",
                   "'" + name +
                       "' is neither serialized in src/snap nor annotated "
                       "'// not-snapshotted: <why>' on the declaration or "
                       "the two lines above; checkpoint/restore would "
                       "silently drop it"});
    }
  }
}

void LintLockset(const std::vector<SourceFile>& files,
                 std::vector<Diagnostic>& d) {
  for (const LocksetMember& m : LocksetInventory(files)) {
    if (!m.audited || m.guarded || m.justified) {
      continue;
    }
    for (const LocksetWrite& w : m.foreign_writes) {
      d.push_back({w.path, w.line, "lockset-multi-tu-mutation",
                   "'" + m.name + "' (declared at " + m.declared_in + ":" +
                       std::to_string(m.declared_line) +
                       ") is mutated outside its declaring translation unit; "
                       "guard it with GUARDED_BY(mu) on the declaration or "
                       "justify it with a '// single-mutator: <why>' comment "
                       "there"});
    }
  }
}

}  // namespace

std::string StripComments(std::string_view content) {
  return StripImpl(content, /*strip_literals=*/false);
}

std::string StripCommentsAndLiterals(std::string_view content) {
  return StripImpl(content, /*strip_literals=*/true);
}

std::vector<LocksetMember> LocksetInventory(
    const std::vector<SourceFile>& files) {
  std::vector<std::string> stripped;
  stripped.reserve(files.size());
  for (const SourceFile& f : files) {
    stripped.push_back(StripCommentsAndLiterals(f.content));
  }
  // Pass 1: declarations build the catalog and each name's home-TU union.
  std::map<std::string, LocksetMember> members;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const std::string& s = stripped[fi];
    for (Token t : MemberTokens(s)) {
      if (!IsDeclSite(s, t.pos, t.len)) {
        continue;
      }
      std::string name(s.substr(t.pos, t.len));
      LocksetMember& m = members[name];
      if (m.name.empty()) {
        m.name = name;
        m.declared_in = f.path;
        m.declared_line = LineOfOffset(s, t.pos);
      }
      m.audited = m.audited || InLocksetDir(f.path);
      // GUARDED_BY may sit on a continuation line, so scan to the
      // declaration's terminating semicolon (literal semicolons are blanked
      // in the stripped view and cannot cut the statement short).
      size_t semi = s.find(';', t.pos);
      size_t stmt_end = semi == std::string::npos ? s.size() : semi;
      if (s.substr(t.pos, stmt_end - t.pos).find("GUARDED_BY(") !=
          std::string::npos) {
        m.guarded = true;
      }
      if (JustifiedNear(f.content, t.pos, "single-mutator:")) {
        m.justified = true;
      }
      std::string stem = TuStem(f.path);
      if (std::find(m.home_tus.begin(), m.home_tus.end(), stem) ==
          m.home_tus.end()) {
        m.home_tus.push_back(stem);
      }
    }
  }
  // Pass 2: mutation sites, classified home/foreign against the catalog.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const std::string& s = stripped[fi];
    std::string stem = TuStem(f.path);
    for (Token t : MemberTokens(s)) {
      auto it = members.find(std::string(s.substr(t.pos, t.len)));
      if (it == members.end() || !IsWriteSite(s, t.pos, t.len)) {
        continue;
      }
      LocksetMember& m = it->second;
      if (std::find(m.writer_tus.begin(), m.writer_tus.end(), stem) ==
          m.writer_tus.end()) {
        m.writer_tus.push_back(stem);
      }
      if (std::find(m.home_tus.begin(), m.home_tus.end(), stem) ==
          m.home_tus.end()) {
        m.foreign_writes.push_back({f.path, LineOfOffset(s, t.pos)});
      }
    }
  }
  std::vector<LocksetMember> out;
  out.reserve(members.size());
  for (auto& [name, m] : members) {
    std::sort(m.home_tus.begin(), m.home_tus.end());
    std::sort(m.writer_tus.begin(), m.writer_tus.end());
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Diagnostic> LintSources(const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> d;
  for (const SourceFile& f : files) {
    LintedFile lf{f, StripComments(f.content),
                  StripCommentsAndLiterals(f.content)};
    if (HasSuffix(f.path, ".inc")) {
      LintIncRows(lf, "NEVE_REGID", d);
      LintIncRows(lf, "NEVE_SYSREG", d);
      continue;
    }
    LintRawRegisterAccess(lf, d);
    LintTrapInstrumentation(lf, d);
    LintGuestReachableAborts(lf, d);
    LintAttrCategories(lf, d);
    LintBatchBypass(lf, d);
    LintFuzzUnseededRandomness(lf, d);
    LintSpanBalance(lf, d);
  }
  LintLockset(files, d);
  LintSnapshotCoverage(files, d);
  return d;
}

std::vector<SourceFile> LoadRepoSources(const std::string& repo_root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  fs::path src = fs::path(repo_root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return files;
  }
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec || !it->is_regular_file()) {
      continue;
    }
    std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".inc") {
      continue;
    }
    std::ifstream in(it->path(), std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    std::string rel =
        fs::relative(it->path(), fs::path(repo_root), ec).generic_string();
    if (ec) {
      rel = it->path().generic_string();
    }
    files.push_back({std::move(rel), content.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace neve::analysis
