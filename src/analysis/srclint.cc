#include "src/analysis/srclint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

namespace neve::analysis {
namespace {

// Files allowed to index the raw register file directly. The linter itself
// is whitelisted because it names the patterns as string literals.
constexpr const char* kRawRegsWhitelist[] = {
    "src/cpu/cpu.h",
    "src/cpu/cpu.cc",
    "src/analysis/srclint.cc",
};

// Files allowed to use the non-resolving PeekReg/PokeReg accessors: the CPU
// itself, the host hypervisor's world switch and KVM emulation, and the
// device models that share hardware register state with the CPU.
constexpr const char* kPeekPokeWhitelist[] = {
    "src/cpu/cpu.h",          "src/cpu/cpu.cc",
    "src/hyp/world_switch.cc", "src/hyp/host_kvm.cc",
    "src/gic/gic.cc",          "src/timer/timer.cc",
    "src/workload/microbench.cc", "src/analysis/srclint.cc",
};

bool PathMatches(std::string_view path, std::string_view repo_relative) {
  if (path == repo_relative) {
    return true;
  }
  return path.size() > repo_relative.size() &&
         path.compare(path.size() - repo_relative.size(),
                      repo_relative.size(), repo_relative) == 0 &&
         path[path.size() - repo_relative.size() - 1] == '/';
}

template <size_t N>
bool Whitelisted(std::string_view path, const char* const (&list)[N]) {
  for (const char* entry : list) {
    if (PathMatches(path, entry)) {
      return true;
    }
  }
  return false;
}

bool IdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int LineOfOffset(std::string_view content, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(content.begin(), content.begin() + offset, '\n'));
}

bool IsCommentLine(std::string_view content, size_t offset) {
  size_t bol = content.rfind('\n', offset);
  bol = (bol == std::string_view::npos) ? 0 : bol + 1;
  while (bol < offset && (content[bol] == ' ' || content[bol] == '\t')) {
    ++bol;
  }
  return content.compare(bol, 2, "//") == 0;
}

// Every occurrence of `pattern` as a whole token prefix (previous char is not
// part of an identifier), skipping comment lines.
std::vector<size_t> FindCalls(std::string_view content,
                              std::string_view pattern) {
  std::vector<size_t> out;
  for (size_t pos = content.find(pattern); pos != std::string_view::npos;
       pos = content.find(pattern, pos + 1)) {
    if (pos > 0 && IdentChar(content[pos - 1])) {
      continue;  // e.g. vregs_[ is not regs_[
    }
    if (!IsCommentLine(content, pos)) {
      out.push_back(pos);
    }
  }
  return out;
}

// --- rule: raw register-file access ------------------------------------------

void LintRawRegisterAccess(const SourceFile& f, std::vector<Diagnostic>& d) {
  struct Rule {
    const char* pattern;
    bool raw_array;  // uses the tighter regs_[ whitelist
  };
  static constexpr Rule kRules[] = {
      {"regs_[", true}, {"PeekReg(", false}, {"PokeReg(", false}};
  for (const Rule& rule : kRules) {
    bool ok = rule.raw_array ? Whitelisted(f.path, kRawRegsWhitelist)
                             : Whitelisted(f.path, kPeekPokeWhitelist);
    if (ok) {
      continue;
    }
    for (size_t pos : FindCalls(f.content, rule.pattern)) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "raw-register-access",
                   std::string(rule.pattern) +
                       "... bypasses access resolution; use the Cpu "
                       "SysRegRead/SysRegWrite accessors or whitelist this "
                       "file in srclint.cc"});
    }
  }
}

// --- rule: .inc table hygiene ------------------------------------------------

struct IncRow {
  int line = 0;
  std::string id;                     // first macro argument
  std::string name;                   // quoted NAME argument
  std::vector<std::string> args;      // all arguments, trimmed
};

std::string Trim(std::string s) {
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t");
  return (b == std::string::npos) ? std::string() : s.substr(b, e - b + 1);
}

std::vector<IncRow> ParseIncRows(std::string_view content,
                                 std::string_view macro) {
  std::vector<IncRow> rows;
  std::string open = std::string(macro) + "(";
  for (size_t pos : FindCalls(content, open)) {
    size_t args_begin = pos + open.size();
    size_t close = content.find(')', args_begin);
    if (close == std::string_view::npos) {
      continue;
    }
    IncRow row;
    row.line = LineOfOffset(content, pos);
    std::string args(content.substr(args_begin, close - args_begin));
    std::istringstream iss(args);
    std::string field;
    while (std::getline(iss, field, ',')) {
      row.args.push_back(Trim(field));
    }
    if (row.args.size() < 2) {
      continue;
    }
    row.id = row.args[0];
    std::string& quoted = row.args[1];
    if (quoted.size() >= 2 && quoted.front() == '"' && quoted.back() == '"') {
      row.name = quoted.substr(1, quoted.size() - 2);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

int EncKindRank(const std::string& kind_arg) {
  if (kind_arg.find("kDirect") != std::string::npos) {
    return 0;
  }
  if (kind_arg.find("kEl12") != std::string::npos) {
    return 1;
  }
  if (kind_arg.find("kEl02") != std::string::npos) {
    return 2;
  }
  return -1;
}

// ICH_LR<n> suffix of a row name, or -1.
int IchLrIndex(const std::string& name) {
  constexpr std::string_view prefix = "ICH_LR";
  if (name.rfind(prefix, 0) != 0) {
    return -1;
  }
  size_t i = prefix.size();
  int n = 0;
  bool any = false;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
    n = n * 10 + (name[i] - '0');
    any = true;
    ++i;
  }
  return (any && name.compare(i, std::string::npos, "_EL2") == 0) ? n : -1;
}

void LintIncRows(const SourceFile& f, std::string_view macro,
                 std::vector<Diagnostic>& d) {
  std::vector<IncRow> rows = ParseIncRows(f.content, macro);
  std::map<std::string, int> ids;
  int prev_kind = 0;
  int prev_lr = -1;
  for (const IncRow& row : rows) {
    if (row.id != "k" + row.name) {
      d.push_back({f.path, row.line, "inc-identifier-name",
                   row.id + ": identifier must be 'k' + NAME (k" + row.name +
                       ")"});
    }
    auto [it, inserted] = ids.emplace(row.id, row.line);
    if (!inserted) {
      d.push_back({f.path, row.line, "inc-duplicate-id",
                   row.id + " already defined at line " +
                       std::to_string(it->second)});
    }
    if (macro == "NEVE_SYSREG" && row.args.size() >= 5) {
      int kind = EncKindRank(row.args[4]);
      if (kind >= 0) {
        if (kind < prev_kind) {
          d.push_back({f.path, row.line, "inc-kind-order",
                       row.id + ": encoding kinds must be grouped kDirect, "
                                "then kEl12, then kEl02"});
        }
        prev_kind = std::max(prev_kind, kind);
      }
    }
    int lr = IchLrIndex(row.name);
    if (lr >= 0) {
      if (prev_lr >= 0 && lr != prev_lr + 1) {
        d.push_back({f.path, row.line, "ich-lr-order",
                     row.name + ": ICH_LR rows must be consecutive and "
                                "ascending (previous was ICH_LR" +
                         std::to_string(prev_lr) + "_EL2)"});
      }
      prev_lr = lr;
    }
  }
}

// --- rule: trap-path instrumentation -----------------------------------------

void LintTrapInstrumentation(const SourceFile& f,
                             std::vector<Diagnostic>& d) {
  if (!PathMatches(f.path, "src/cpu/cpu.cc")) {
    return;
  }
  for (size_t pos : FindCalls(f.content, "TakeTrapToEl2(")) {
    // The argument list may span lines; scan to the matching close paren.
    size_t open = f.content.find('(', pos);
    int depth = 0;
    size_t end = open;
    for (; end < f.content.size(); ++end) {
      if (f.content[end] == '(') {
        ++depth;
      } else if (f.content[end] == ')' && --depth == 0) {
        break;
      }
    }
    std::string call = f.content.substr(open, end - open);
    if (call.find("detect") == std::string::npos) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "trap-missing-detect",
                   "TakeTrapToEl2 call does not charge a detect cost "
                   "(pass cost_.detect_* or an explicit /*detect_cost=*/)"});
    }
  }
  struct Required {
    const char* needle;
    const char* check;
    const char* message;
  };
  static constexpr Required kRequired[] = {
      {"cost_.trap_entry", "trap-missing-entry-charge",
       "trap path never charges cost_.trap_entry"},
      {"cost_.trap_return", "trap-missing-return-charge",
       "trap path never charges cost_.trap_return"},
      {"Counter(\"cpu.traps_to_el2\")", "trap-missing-counter",
       "trap path never bumps the cpu.traps_to_el2 counter"},
  };
  for (const Required& req : kRequired) {
    if (f.content.find(req.needle) == std::string::npos) {
      d.push_back({f.path, 0, req.check, req.message});
    }
  }
}

// --- rule: guest-reachable aborts --------------------------------------------

// Layers a guest can drive trap paths through: a failed NEVE_CHECK there
// takes the whole machine down with the guest's bug. Checks in these
// directories must either be confined (NEVE_GUEST_CHECK / RaiseGuestFault)
// or justified as unreachable-by-guest with a `// host-invariant:` comment.
constexpr const char* kConfinedDirs[] = {"src/hyp/", "src/gic/", "src/x86/"};

bool InConfinedDir(std::string_view path) {
  for (const char* dir : kConfinedDirs) {
    if (path.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

// True when "host-invariant:" appears on the match's own line or within the
// two preceding lines.
bool JustifiedHostInvariant(std::string_view content, size_t pos) {
  size_t bol = content.rfind('\n', pos);
  bol = (bol == std::string_view::npos) ? 0 : bol + 1;
  for (int i = 0; i < 2 && bol >= 2; ++i) {
    size_t prev = content.rfind('\n', bol - 2);
    bol = (prev == std::string_view::npos) ? 0 : prev + 1;
  }
  size_t eol = content.find('\n', pos);
  if (eol == std::string_view::npos) {
    eol = content.size();
  }
  return content.substr(bol, eol - bol).find("host-invariant:") !=
         std::string_view::npos;
}

void LintGuestReachableAborts(const SourceFile& f,
                              std::vector<Diagnostic>& d) {
  if (!InConfinedDir(f.path)) {
    return;
  }
  static constexpr const char* kPatterns[] = {"NEVE_CHECK(", "NEVE_CHECK_MSG(",
                                              "abort("};
  for (const char* pattern : kPatterns) {
    for (size_t pos : FindCalls(f.content, pattern)) {
      if (JustifiedHostInvariant(f.content, pos)) {
        continue;
      }
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "guest-reachable-abort",
                   std::string(pattern) +
                       "...) in a guest-drivable layer takes the machine "
                       "down with the guest; confine it (NEVE_GUEST_CHECK / "
                       "RaiseGuestFault) or justify it with a "
                       "'// host-invariant:' comment within the two "
                       "preceding lines"});
    }
  }
}

// --- rule: attribution category annotation -----------------------------------

// Files defining (or naming, in the linter's case) the attribution
// primitives themselves.
constexpr const char* kAttrWhitelist[] = {
    "src/obs/attr.h",
    "src/obs/attr.cc",
    "src/cpu/cpu.h",
    "src/analysis/srclint.cc",
};

// The parenthesized argument text of the call starting at `pos`, or "" when
// no '(' opens before the statement ends (a declaration, not a call).
std::string CallArgText(std::string_view content, size_t pos) {
  size_t open = content.find('(', pos);
  size_t semi = content.find(';', pos);
  if (open == std::string_view::npos ||
      (semi != std::string_view::npos && semi < open)) {
    return "";
  }
  int depth = 0;
  size_t end = open;
  for (; end < content.size(); ++end) {
    if (content[end] == '(') {
      ++depth;
    } else if (content[end] == ')' && --depth == 0) {
      break;
    }
  }
  return std::string(content.substr(open, end - open));
}

// The arguments name a category: a literal AttrCat:: enumerator or an
// expression that computes one (emul_cat, TrapCatForEc(...)).
bool MentionsAttrCategory(const std::string& args) {
  if (args.find("AttrCat::") != std::string::npos) {
    return true;
  }
  std::string lower = args;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return lower.find("cat") != std::string::npos;
}

// Every cycle-charging attribution site must say *which* category it charges:
// an uncategorized charge silently lands cycles in whatever frame happens to
// be on top, which corrupts the per-category breakdown without tripping the
// conservation invariant. src/cpu/cpu.cc must additionally keep its two
// non-scope charge sites (AdvanceTo's idle rendezvous and the VNCR redirect)
// on their dedicated categories.
void LintAttrCategories(const SourceFile& f, std::vector<Diagnostic>& d) {
  if (Whitelisted(f.path, kAttrWhitelist)) {
    return;
  }
  static constexpr const char* kChargePatterns[] = {"ChargeAttributed(",
                                                    "ChargeTo("};
  for (const char* pattern : kChargePatterns) {
    for (size_t pos : FindCalls(f.content, pattern)) {
      if (!MentionsAttrCategory(CallArgText(f.content, pos))) {
        d.push_back({f.path, LineOfOffset(f.content, pos),
                     "attr-missing-category",
                     std::string(pattern) +
                         "...) charges cycles without an attribution "
                         "category; pass an AttrCat:: enumerator (or an "
                         "expression computing one)"});
      }
    }
  }
  for (size_t pos : FindCalls(f.content, "AttrScope")) {
    std::string args = CallArgText(f.content, pos);
    if (args.empty()) {
      continue;  // a mention, not a construction
    }
    if (!MentionsAttrCategory(args)) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "attr-missing-category",
                   "AttrScope constructed without an attribution category; "
                   "every frame must name the AttrCat it charges"});
    }
  }
  if (PathMatches(f.path, "src/cpu/cpu.cc")) {
    struct Required {
      const char* needle;
      const char* check;
      const char* message;
    };
    static constexpr Required kRequired[] = {
        {"AttrCat::kIdleWait", "attr-missing-idle-category",
         "AdvanceTo's rendezvous charge must stay on AttrCat::kIdleWait"},
        {"AttrCat::kVncrRedirect", "attr-missing-vncr-category",
         "the VNCR redirect charge must stay on AttrCat::kVncrRedirect"},
    };
    for (const Required& req : kRequired) {
      if (f.content.find(req.needle) == std::string::npos) {
        d.push_back({f.path, 0, req.check, req.message});
      }
    }
  }
}

// --- rule: unseeded randomness in the fuzzer ---------------------------------

// The fuzzer's determinism contract (stackfuzz output is a pure function of
// --seed/--runs) dies the moment any ambient entropy source sneaks in. All
// randomness in src/fuzz must flow from the seeded neve::Rng.
void LintFuzzUnseededRandomness(const SourceFile& f,
                                std::vector<Diagnostic>& d) {
  if (f.path.rfind("src/fuzz/", 0) != 0) {
    return;
  }
  static constexpr const char* kForbidden[] = {
      "rand(",        "srand(",       "random_device",
      "mt19937",      "minstd_rand",  "default_random_engine",
      "drand48(",     "lrand48(",     "ranlux",
  };
  for (const char* pattern : kForbidden) {
    for (size_t pos : FindCalls(f.content, pattern)) {
      d.push_back({f.path, LineOfOffset(f.content, pos),
                   "fuzz-unseeded-randomness",
                   std::string(pattern) +
                       "... is ambient entropy; src/fuzz must derive all "
                       "randomness from the seeded neve::Rng so campaigns "
                       "replay byte-identically"});
    }
  }
}

// --- rule: obs span balance --------------------------------------------------

void LintSpanBalance(const SourceFile& f, std::vector<Diagnostic>& d) {
  size_t begins = FindCalls(f.content, "tracer().Begin(").size();
  size_t ends = FindCalls(f.content, "tracer().End(").size();
  if (begins != ends) {
    d.push_back({f.path, 0, "span-balance",
                 "tracer().Begin/End mismatch: " + std::to_string(begins) +
                     " Begin vs " + std::to_string(ends) +
                     " End -- a span leaks or double-closes"});
  }
}

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::vector<Diagnostic> LintSources(const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> d;
  for (const SourceFile& f : files) {
    if (HasSuffix(f.path, ".inc")) {
      LintIncRows(f, "NEVE_REGID", d);
      LintIncRows(f, "NEVE_SYSREG", d);
      continue;
    }
    LintRawRegisterAccess(f, d);
    LintTrapInstrumentation(f, d);
    LintGuestReachableAborts(f, d);
    LintAttrCategories(f, d);
    LintFuzzUnseededRandomness(f, d);
    LintSpanBalance(f, d);
  }
  return d;
}

std::vector<SourceFile> LoadRepoSources(const std::string& repo_root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  fs::path src = fs::path(repo_root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return files;
  }
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec || !it->is_regular_file()) {
      continue;
    }
    std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".inc") {
      continue;
    }
    std::ifstream in(it->path(), std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    std::string rel =
        fs::relative(it->path(), fs::path(repo_root), ec).generic_string();
    if (ec) {
      rel = it->path().generic_string();
    }
    files.push_back({std::move(rel), content.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace neve::analysis
