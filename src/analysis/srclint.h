// Source lint: repo-convention checks that the compiler cannot enforce.
//
// Rules:
//   raw-register-access   direct register-file pokes (regs_[...], PeekReg,
//                         PokeReg) outside the whitelisted CPU/hypervisor/
//                         device files; everything else must go through the
//                         resolving SysRegRead/SysRegWrite accessors
//   inc-*                 .inc table hygiene: identifier is 'k' + NAME, no
//                         duplicate identifiers, encoding kinds appear in
//                         canonical kDirect < kEl12 < kEl02 group order,
//                         ICH_LR<n> rows consecutive and ascending
//   trap-*                every TakeTrapToEl2 call site charges a detect
//                         cost, and the trap path charges trap_entry /
//                         trap_return and bumps the cpu.traps_to_el2 counter
//   guest-reachable-abort NEVE_CHECK / NEVE_CHECK_MSG / abort() in the
//                         guest-drivable layers (src/hyp, src/gic, src/x86)
//                         without a `// host-invariant:` justification on
//                         the same line or the two lines above; such checks
//                         must be confined (NEVE_GUEST_CHECK or
//                         RaiseGuestFault) so a guest bug kills only its VM
//   attr-*                cycle-charging attribution sites (ChargeAttributed,
//                         ChargeTo, AttrScope constructions) must name the
//                         AttrCat they charge — a literal enumerator or an
//                         expression computing one; src/cpu/cpu.cc must keep
//                         the idle rendezvous and the VNCR redirect on their
//                         dedicated categories
//   batch-bypass          charging/metric calls (Charge, ChargeAttributed,
//                         ChargeTo, Counter, Instant) under src/sim/batch
//                         without a contract marker; the batch engine's
//                         aggregated-charge contract requires every such
//                         site to be annotated `// block-delta: <why>`
//                         (per-block apply site) or `// unbatched: <why>`
//                         (deliberate per-op fallback) on the call's line or
//                         the two lines above
//   fuzz-unseeded-randomness
//                         ambient entropy sources (rand, std::random_device,
//                         mt19937, drand48, ...) anywhere under src/fuzz;
//                         the fuzzer's byte-identical-replay contract
//                         requires every random bit to come from the seeded
//                         neve::Rng
//   span-balance          tracer().Begin( and tracer().End( counts match per
//                         file, so obs spans cannot leak
//   lockset-multi-tu-mutation
//                         the shared-mutation audit (DESIGN.md 6i): a
//                         `member_`-style field declared in src/cpu, src/hyp,
//                         src/gic, src/mem or src/sim that is assigned or
//                         incremented from a translation unit other than its
//                         declaring one must either be GUARDED_BY(mu) on its
//                         declaration or carry a `// single-mutator: <why>`
//                         justification on the declaration line or the two
//                         lines above
//   snapshot-coverage     the checkpoint completeness audit (DESIGN.md 6k):
//                         a `member_`-style field declared in a header under
//                         src/cpu, src/hyp, src/gic, src/mem or src/timer
//                         must either be mentioned in src/snap (serialized,
//                         reconstructed or structurally verified) or carry a
//                         `// not-snapshotted: <why>` annotation on the
//                         declaration line or the two lines above; Mutex
//                         members are exempt (host-side synchronization).
//                         Silent when the source set has no src/snap files.
//
// False-positive hardening: every pattern rule matches against a
// preprocessed view of the file with comments (and, where the rule wants it,
// string/char-literal contents) blanked out -- a `regs_[` inside a comment
// or a "PeekReg(" inside a string literal is not a finding. The views are
// length- and newline-preserving, so offsets and line numbers computed on a
// view hold on the original text. Justification comments
// (`// host-invariant:`, `// single-mutator:`) and call-argument text (which
// may carry /*detect_cost=*/ markers) are read from the ORIGINAL text.
//
// The linter operates on (path, content) pairs so tests can feed it seeded
// bad sources; LoadRepoSources gathers the real tree for the CLI.

#ifndef NEVE_SRC_ANALYSIS_SRCLINT_H_
#define NEVE_SRC_ANALYSIS_SRCLINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/model.h"

namespace neve::analysis {

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string content;
};

// Comment text (// and /* */) replaced by spaces. Length- and
// newline-preserving: offsets and line numbers computed on the result hold
// on the input. String and character literals are left intact.
std::string StripComments(std::string_view content);

// StripComments plus the *contents* of string and character literals blanked
// (the delimiting quotes stay, so tokenization boundaries survive). Raw
// string literals are not understood; the repo style avoids them.
std::string StripCommentsAndLiterals(std::string_view content);

// One mutation site of a lockset-audited member outside its home TU.
struct LocksetWrite {
  std::string path;
  int line = 0;
};

// The shared-mutation catalog entry for one `member_`-style field name.
// Declarations of the same name in different classes are merged: the home
// set is the union of their TU stems, which errs toward accepting (a write
// in any declaring TU is home) rather than misattributing.
struct LocksetMember {
  std::string name;
  std::string declared_in;           // first declaring file
  int declared_line = 0;             // line of that declaration
  bool audited = false;              // some declaration is in an audited dir
  bool guarded = false;              // a declaration carries GUARDED_BY(...)
  bool justified = false;            // a declaration carries single-mutator:
  std::vector<std::string> home_tus;     // TU stems that may mutate freely
  std::vector<std::string> writer_tus;   // TU stems that actually mutate
  std::vector<LocksetWrite> foreign_writes;  // mutations outside home_tus
};

// Scans every file for member declarations and mutation sites; the basis of
// the lockset-multi-tu-mutation rule and of `srclint --lockset`. Sorted by
// member name.
std::vector<LocksetMember> LocksetInventory(
    const std::vector<SourceFile>& files);

std::vector<Diagnostic> LintSources(const std::vector<SourceFile>& files);

// Reads every .h/.cc/.inc under <repo_root>/src, paths repo-relative,
// sorted. Missing root yields an empty list.
std::vector<SourceFile> LoadRepoSources(const std::string& repo_root);

}  // namespace neve::analysis

#endif  // NEVE_SRC_ANALYSIS_SRCLINT_H_
