// Source lint: repo-convention checks that the compiler cannot enforce.
//
// Rules:
//   raw-register-access   direct register-file pokes (regs_[...], PeekReg,
//                         PokeReg) outside the whitelisted CPU/hypervisor/
//                         device files; everything else must go through the
//                         resolving SysRegRead/SysRegWrite accessors
//   inc-*                 .inc table hygiene: identifier is 'k' + NAME, no
//                         duplicate identifiers, encoding kinds appear in
//                         canonical kDirect < kEl12 < kEl02 group order,
//                         ICH_LR<n> rows consecutive and ascending
//   trap-*                every TakeTrapToEl2 call site charges a detect
//                         cost, and the trap path charges trap_entry /
//                         trap_return and bumps the cpu.traps_to_el2 counter
//   guest-reachable-abort NEVE_CHECK / NEVE_CHECK_MSG / abort() in the
//                         guest-drivable layers (src/hyp, src/gic, src/x86)
//                         without a `// host-invariant:` justification on
//                         the same line or the two lines above; such checks
//                         must be confined (NEVE_GUEST_CHECK or
//                         RaiseGuestFault) so a guest bug kills only its VM
//   attr-*                cycle-charging attribution sites (ChargeAttributed,
//                         ChargeTo, AttrScope constructions) must name the
//                         AttrCat they charge — a literal enumerator or an
//                         expression computing one; src/cpu/cpu.cc must keep
//                         the idle rendezvous and the VNCR redirect on their
//                         dedicated categories
//   fuzz-unseeded-randomness
//                         ambient entropy sources (rand, std::random_device,
//                         mt19937, drand48, ...) anywhere under src/fuzz;
//                         the fuzzer's byte-identical-replay contract
//                         requires every random bit to come from the seeded
//                         neve::Rng
//   span-balance          tracer().Begin( and tracer().End( counts match per
//                         file, so obs spans cannot leak
//
// The linter operates on (path, content) pairs so tests can feed it seeded
// bad sources; LoadRepoSources gathers the real tree for the CLI.

#ifndef NEVE_SRC_ANALYSIS_SRCLINT_H_
#define NEVE_SRC_ANALYSIS_SRCLINT_H_

#include <string>
#include <vector>

#include "src/analysis/model.h"

namespace neve::analysis {

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string content;
};

std::vector<Diagnostic> LintSources(const std::vector<SourceFile>& files);

// Reads every .h/.cc/.inc under <repo_root>/src, paths repo-relative,
// sorted. Missing root yields an empty list.
std::vector<SourceFile> LoadRepoSources(const std::string& repo_root);

}  // namespace neve::analysis

#endif  // NEVE_SRC_ANALYSIS_SRCLINT_H_
