// Compile-time verification of the declarative tables.
//
// These static_asserts re-include the .inc tables into constexpr arrays and
// prove the invariants that can be stated without running the resolution
// pipeline: a bad table row stops the build of neve_analysis instead of
// silently skewing every trap count downstream. The runtime linter
// (archlint.cc) re-checks the same properties over an injectable ArchModel so
// tests can watch each check fail; this file is the layer that cannot be
// bypassed by forgetting to run a tool.

#include <array>
#include <cstddef>

#include "src/arch/el.h"
#include "src/arch/sysreg.h"

namespace neve::analysis {
namespace {

struct CtReg {
  El owner;
  NeveClass klass;
  RegId redirect;
};

constexpr std::array<CtReg, kNumRegIds> kCtRegs = {{
#define NEVE_REGID(id, name, owner, klass, redirect) \
  CtReg{owner, klass, RegId::redirect},
#include "src/arch/regid_defs.inc"
#undef NEVE_REGID
}};

struct CtEnc {
  RegId storage;
  El min_el;
  EncKind kind;
};

constexpr std::array<CtEnc, kNumSysRegs> kCtEncs = {{
#define NEVE_SYSREG(id, name, storage, min_el, kind, rw) \
  CtEnc{storage, min_el, kind},
#include "src/arch/sysreg_defs.inc"
#undef NEVE_SYSREG
}};

constexpr bool IsRedirectClass(NeveClass k) {
  return k == NeveClass::kRedirect || k == NeveClass::kRedirectVhe ||
         k == NeveClass::kRedirectOrTrap;
}

// Every encoding names a defined backing register.
constexpr bool EveryEncodingMapsToDefinedRegId() {
  for (const CtEnc& e : kCtEncs) {
    if (static_cast<size_t>(e.storage) >= kCtRegs.size()) {
      return false;
    }
  }
  return true;
}
static_assert(EveryEncodingMapsToDefinedRegId(),
              "sysreg_defs.inc row references an undefined RegId");

// The deferred access page assigns slot idx*8 per register (sysreg.cc); all
// slots must fit the 4 KiB page, which also makes them unique and 8-aligned.
static_assert(static_cast<uint64_t>(kNumRegIds) * 8 <= kDeferredPageSize,
              "deferred access page overflow: too many backing registers for "
              "one 4 KiB VNCR page");

// VHE aliases reach exactly the storage their name implies: *_EL12 -> EL1,
// *_EL02 -> EL0, and both are EL2-only encodings.
constexpr bool AliasesTargetLowerElStorage() {
  for (const CtEnc& e : kCtEncs) {
    if (e.kind == EncKind::kDirect) {
      continue;
    }
    El owner = kCtRegs[static_cast<size_t>(e.storage)].owner;
    if (e.min_el != El::kEl2) {
      return false;
    }
    if (e.kind == EncKind::kEl12 && owner != El::kEl1) {
      return false;
    }
    if (e.kind == EncKind::kEl02 && owner != El::kEl0) {
      return false;
    }
  }
  return true;
}
static_assert(AliasesTargetLowerElStorage(),
              "EL12/EL02 alias encoding targets storage of the wrong EL");

// Exactly one canonical (kDirect) encoding per backing register.
constexpr bool OneDirectEncodingPerRegister() {
  for (size_t r = 0; r < kCtRegs.size(); ++r) {
    int count = 0;
    for (const CtEnc& e : kCtEncs) {
      if (e.kind == EncKind::kDirect &&
          static_cast<size_t>(e.storage) == r) {
        ++count;
      }
    }
    if (count != 1) {
      return false;
    }
  }
  return true;
}
static_assert(OneDirectEncodingPerRegister(),
              "every RegId needs exactly one kDirect SysReg encoding");

// Redirect targets exist, differ from their source and land on EL1 storage
// (Table 4 always redirects EL2 registers to EL1 counterparts).
constexpr bool RedirectTargetsAreEl1() {
  for (size_t r = 0; r < kCtRegs.size(); ++r) {
    const CtReg& reg = kCtRegs[r];
    if (!IsRedirectClass(reg.klass)) {
      continue;
    }
    auto t = static_cast<size_t>(reg.redirect);
    if (t >= kCtRegs.size() || t == r || kCtRegs[t].owner != El::kEl1) {
      return false;
    }
  }
  return true;
}
static_assert(RedirectTargetsAreEl1(),
              "Table 4 redirect row must target a distinct EL1 register");

// The ICH_LR<n> block must be contiguous and in order: IchListRegister()
// computes RegIds arithmetically from kICH_LR0_EL2.
constexpr bool IchListRegistersAreContiguous() {
  auto first = static_cast<size_t>(RegId::kICH_LR0_EL2);
  auto last = static_cast<size_t>(RegId::kICH_LR15_EL2);
  if (last - first != 15) {
    return false;
  }
  for (size_t r = first; r <= last; ++r) {
    if (kCtRegs[r].klass != NeveClass::kGicCached) {
      return false;
    }
  }
  return true;
}
static_assert(IchListRegistersAreContiguous(),
              "ICH_LR0..15 must be 16 consecutive kGicCached RegId rows");

}  // namespace
}  // namespace neve::analysis
