// ARM exception levels.

#ifndef NEVE_SRC_ARCH_EL_H_
#define NEVE_SRC_ARCH_EL_H_

#include <cstdint>

namespace neve {

// Hardware exception level. The simulator models EL0-EL2 (EL3 / secure world
// is out of scope for the paper). "Virtual EL2" -- the mode a deprivileged
// guest hypervisor believes it runs in -- is not a hardware EL: it is tracked
// by hypervisor software (see hyp/nested.h) while the hardware runs at kEl1.
enum class El : uint8_t {
  kEl0 = 0,
  kEl1 = 1,
  kEl2 = 2,
};

constexpr const char* ElName(El el) {
  switch (el) {
    case El::kEl0:
      return "EL0";
    case El::kEl1:
      return "EL1";
    case El::kEl2:
      return "EL2";
  }
  return "EL?";
}

}  // namespace neve

#endif  // NEVE_SRC_ARCH_EL_H_
