#include "src/arch/esr.h"

#include <sstream>

#include "src/base/bits.h"

namespace neve {

const char* EcName(Ec ec) {
  switch (ec) {
    case Ec::kUnknown:
      return "UNKNOWN";
    case Ec::kWfx:
      return "WFX";
    case Ec::kHvc64:
      return "HVC64";
    case Ec::kSmc64:
      return "SMC64";
    case Ec::kSysReg:
      return "SYSREG";
    case Ec::kTlbi:
      return "TLBI";
    case Ec::kEretTrap:
      return "ERET";
    case Ec::kInstAbortLow:
      return "IABT_LOW";
    case Ec::kDataAbortLow:
      return "DABT_LOW";
    case Ec::kIrq:
      return "IRQ";
  }
  return "EC?";
}

uint64_t Syndrome::ToEsrBits() const {
  uint64_t esr = 0;
  esr = InsertBits(esr, 31, 26, static_cast<uint64_t>(ec));
  esr = SetBit(esr, 25);  // IL: 32-bit instruction
  if (ec == Ec::kHvc64 || ec == Ec::kSmc64) {
    esr = InsertBits(esr, 15, 0, imm16);
  } else if (ec == Ec::kSysReg) {
    // Encode the SysReg ordinal and direction in the ISS. Real hardware packs
    // op0/op1/CRn/CRm/op2; the simulator's stable ordinal is equivalent
    // information for software.
    esr = InsertBits(esr, 21, 5, static_cast<uint64_t>(sysreg));
    esr = AssignBit(esr, 0, !is_write);  // ISS.Direction: 1 = read
  }
  return esr;
}

std::string Syndrome::ToString() const {
  std::ostringstream oss;
  oss << EcName(ec);
  switch (ec) {
    case Ec::kHvc64:
    case Ec::kSmc64:
      oss << " imm=" << imm16;
      break;
    case Ec::kSysReg:
      oss << " " << (is_write ? "write " : "read ") << SysRegName(sysreg);
      break;
    case Ec::kDataAbortLow:
      oss << (abort_is_write ? " write" : " read") << " far=0x" << std::hex
          << far << " hpfar=0x" << hpfar;
      break;
    case Ec::kIrq:
      oss << " intid=" << intid;
      break;
    default:
      break;
  }
  return oss.str();
}

}  // namespace neve
