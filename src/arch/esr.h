// Exception Syndrome Register (ESR_EL2 / ESR_EL1) model.
//
// A trimmed but faithful encoding of the syndrome information the hypervisor
// needs: exception class, plus a class-specific payload. We keep the payload
// as a decoded struct rather than packing everything into ISS bits -- the
// simulator charges the same cycle costs either way, and decoded syndromes
// make hypervisor code and tests far easier to read. The 16-bit HVC immediate
// and the trapped-sysreg identity are preserved exactly, since the paper's
// paravirtualization scheme (section 4) rides on them.

#ifndef NEVE_SRC_ARCH_ESR_H_
#define NEVE_SRC_ARCH_ESR_H_

#include <cstdint>
#include <string>

#include "src/arch/sysreg.h"

namespace neve {

// Exception class, values matching the AArch64 ESR.EC encodings.
enum class Ec : uint8_t {
  kUnknown = 0x00,
  kWfx = 0x01,
  kHvc64 = 0x16,
  kSmc64 = 0x17,
  kSysReg = 0x18,      // trapped MSR/MRS
  kTlbi = 0x19,        // trapped TLB maintenance (HCR_EL2.TTLB-style)
  kEretTrap = 0x1A,    // ARMv8.3-NV: trapped eret from EL1
  kInstAbortLow = 0x20,
  kDataAbortLow = 0x24,
  kIrq = 0x80,         // not an ESR EC; marker for asynchronous interrupts
};

const char* EcName(Ec ec);

// Decoded syndrome for an exception taken to EL2 (or emulated into a virtual
// EL2 by the host hypervisor).
struct Syndrome {
  Ec ec = Ec::kUnknown;

  // kHvc64 / kSmc64: the 16-bit immediate.
  uint16_t imm16 = 0;

  // kSysReg: which encoding trapped and the access direction/value.
  SysReg sysreg = SysReg::kNumSysRegs;
  bool is_write = false;
  uint64_t write_value = 0;  // value the guest attempted to write

  // kDataAbortLow: faulting addresses. far is the virtual address; hpfar the
  // IPA page (what hardware reports in HPFAR_EL2 on a Stage-2 fault).
  uint64_t far = 0;
  uint64_t hpfar = 0;
  bool abort_is_write = false;
  uint8_t access_size = 8;  // bytes

  // kIrq: the interrupt id pending at the time of the exit.
  uint32_t intid = 0;

  static Syndrome Hvc(uint16_t imm) {
    Syndrome s;
    s.ec = Ec::kHvc64;
    s.imm16 = imm;
    return s;
  }
  static Syndrome SysRegTrap(SysReg enc, bool is_write, uint64_t value) {
    Syndrome s;
    s.ec = Ec::kSysReg;
    s.sysreg = enc;
    s.is_write = is_write;
    s.write_value = value;
    return s;
  }
  static Syndrome EretTrap() {
    Syndrome s;
    s.ec = Ec::kEretTrap;
    return s;
  }
  static Syndrome Tlbi() {
    Syndrome s;
    s.ec = Ec::kTlbi;
    return s;
  }
  static Syndrome DataAbort(uint64_t far, uint64_t hpfar, bool is_write,
                            uint8_t size) {
    Syndrome s;
    s.ec = Ec::kDataAbortLow;
    s.far = far;
    s.hpfar = hpfar;
    s.abort_is_write = is_write;
    s.access_size = size;
    return s;
  }
  static Syndrome Irq(uint32_t intid) {
    Syndrome s;
    s.ec = Ec::kIrq;
    s.intid = intid;
    return s;
  }
  static Syndrome Wfx() {
    Syndrome s;
    s.ec = Ec::kWfx;
    return s;
  }

  // Packs ec/imm16 into an architectural-looking 64-bit ESR value for storage
  // in ESR_EL1/ESR_EL2 register slots (EC in [31:26], IL set, imm16 in ISS).
  uint64_t ToEsrBits() const;

  std::string ToString() const;
};

}  // namespace neve

#endif  // NEVE_SRC_ARCH_ESR_H_
