// Architecture feature sets modeled by the simulator.
//
// The paper compares four points in the ARM architecture's evolution:
//   - ARMv8.0: VE only; EL2-register accesses from EL1 are UNDEFINED.
//   - ARMv8.1: adds VHE (E2H redirection, *_EL12/*_EL02 encodings).
//   - ARMv8.3: adds NV (trap EL2-register accesses / eret from EL1 to EL2,
//     CurrentEL disguise, EL2 page-table format at EL1).
//   - NEVE (adopted as ARMv8.4 FEAT_NV2): adds VNCR_EL2-driven register
//     redirection to memory / EL1 registers on top of NV.

#ifndef NEVE_SRC_ARCH_FEATURES_H_
#define NEVE_SRC_ARCH_FEATURES_H_

namespace neve {

struct ArchFeatures {
  // ARMv8.1 Virtualization Host Extensions: HCR_EL2.E2H, *_EL12 encodings.
  bool vhe = false;
  // ARMv8.3 nested virtualization: HCR_EL2.{NV,NV1} trapping.
  bool nv = false;
  // The paper's proposal: VNCR_EL2, deferred access page, register
  // redirection. Requires nv.
  bool neve = false;

  // Ablation switches (bench/ablation_neve): disable individual NEVE
  // mechanisms to measure each one's contribution. Ignored unless neve.
  bool neve_deferred = true;  // Table 3: deferred access page
  bool neve_redirect = true;  // Table 4: EL2 -> EL1 register redirection
  bool neve_cached = true;    // Tables 4/5: cached copies for reads

  static constexpr ArchFeatures Armv80() { return {}; }
  static constexpr ArchFeatures Armv81Vhe() { return {.vhe = true}; }
  static constexpr ArchFeatures Armv83Nv() { return {.vhe = true, .nv = true}; }
  static constexpr ArchFeatures Armv84Neve() {
    return {.vhe = true, .nv = true, .neve = true};
  }

  constexpr bool Valid() const { return !neve || nv; }
};

}  // namespace neve

#endif  // NEVE_SRC_ARCH_FEATURES_H_
