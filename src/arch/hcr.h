// HCR_EL2 (Hypervisor Configuration Register) bit assignments used by the
// simulator. Values match the AArch64 architecture.
//
// The CPU model derives its trap behaviour from the *hardware* HCR_EL2
// storage value -- which only the host hypervisor (real EL2 software) can
// write -- exactly as silicon does. A guest hypervisor's writes to "HCR_EL2"
// land in its virtual EL2 state (trapped, or deferred-page under NEVE) and
// never affect these bits directly.

#ifndef NEVE_SRC_ARCH_HCR_H_
#define NEVE_SRC_ARCH_HCR_H_

#include <cstdint>
#include <initializer_list>

#include "src/base/bits.h"

namespace neve {

struct HcrBits {
  static constexpr unsigned kVm = 0;    // Stage-2 translation enable
  static constexpr unsigned kImo = 4;   // route IRQs to EL2
  static constexpr unsigned kFmo = 3;   // route FIQs to EL2
  static constexpr unsigned kTwi = 13;  // trap WFI
  static constexpr unsigned kTge = 27;  // trap general exceptions
  static constexpr unsigned kE2h = 34;  // VHE: EL2 hosts an OS
  static constexpr unsigned kNv = 42;   // ARMv8.3: nested virtualization
  static constexpr unsigned kNv1 = 43;  // ARMv8.3: trap EL1 sysreg accesses
};

struct Hcr {
  uint64_t bits = 0;

  constexpr bool vm() const { return TestBit(bits, HcrBits::kVm); }
  constexpr bool imo() const { return TestBit(bits, HcrBits::kImo); }
  constexpr bool twi() const { return TestBit(bits, HcrBits::kTwi); }
  constexpr bool tge() const { return TestBit(bits, HcrBits::kTge); }
  constexpr bool e2h() const { return TestBit(bits, HcrBits::kE2h); }
  constexpr bool nv() const { return TestBit(bits, HcrBits::kNv); }
  constexpr bool nv1() const { return TestBit(bits, HcrBits::kNv1); }

  static constexpr uint64_t Make(std::initializer_list<unsigned> set_bits) {
    uint64_t v = 0;
    for (unsigned b : set_bits) {
      v = SetBit(v, b);
    }
    return v;
  }
};

}  // namespace neve

#endif  // NEVE_SRC_ARCH_HCR_H_
