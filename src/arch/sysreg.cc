#include "src/arch/sysreg.h"

#include <array>

#include "src/base/status.h"

namespace neve {
namespace {

struct RegInfo {
  const char* name;
  El owner;
  NeveClass neve_class;
  RegId redirect;
};

constexpr std::array<RegInfo, kNumRegIds> kRegInfo = {{
#define NEVE_REGID(id, name, owner, klass, redirect) \
  RegInfo{name, owner, klass, RegId::redirect},
#include "src/arch/regid_defs.inc"
#undef NEVE_REGID
}};

struct EncInfo {
  const char* name;
  RegId storage;
  El min_el;
  EncKind kind;
  Rw rw;
};

constexpr std::array<EncInfo, kNumSysRegs> kEncInfo = {{
#define NEVE_SYSREG(id, name, storage, min_el, kind, rw) \
  EncInfo{name, storage, min_el, kind, rw},
#include "src/arch/sysreg_defs.inc"
#undef NEVE_SYSREG
}};

const RegInfo& InfoOf(RegId reg) {
  auto idx = static_cast<size_t>(reg);
  NEVE_CHECK(idx < kRegInfo.size());
  return kRegInfo[idx];
}

const EncInfo& InfoOf(SysReg enc) {
  auto idx = static_cast<size_t>(enc);
  NEVE_CHECK(idx < kEncInfo.size());
  return kEncInfo[idx];
}

// Direct-encoding lookup table, built once.
std::array<SysReg, kNumRegIds> BuildDirectEncodingTable() {
  std::array<SysReg, kNumRegIds> table{};
  std::array<bool, kNumRegIds> seen{};
  for (int e = 0; e < kNumSysRegs; ++e) {
    auto enc = static_cast<SysReg>(e);
    if (SysRegEncKind(enc) == EncKind::kDirect) {
      auto s = static_cast<size_t>(SysRegStorage(enc));
      NEVE_CHECK_MSG(!seen[s], "duplicate direct encoding");
      seen[s] = true;
      table[s] = enc;
    }
  }
  for (int r = 0; r < kNumRegIds; ++r) {
    NEVE_CHECK_MSG(seen[r], std::string("no direct encoding for ") +
                                RegName(static_cast<RegId>(r)));
  }
  return table;
}

}  // namespace

const char* RegName(RegId reg) { return InfoOf(reg).name; }

std::optional<RegId> RegIdFromName(std::string_view name) {
  for (int r = 0; r < kNumRegIds; ++r) {
    if (name == kRegInfo[r].name) {
      return static_cast<RegId>(r);
    }
  }
  return std::nullopt;
}

std::optional<SysReg> SysRegFromName(std::string_view name) {
  for (int e = 0; e < kNumSysRegs; ++e) {
    if (name == kEncInfo[e].name) {
      return static_cast<SysReg>(e);
    }
  }
  return std::nullopt;
}
El RegOwnerEl(RegId reg) { return InfoOf(reg).owner; }
NeveClass RegNeveClass(RegId reg) { return InfoOf(reg).neve_class; }

std::optional<RegId> RegRedirectTarget(RegId reg) {
  const RegInfo& info = InfoOf(reg);
  switch (info.neve_class) {
    case NeveClass::kRedirect:
    case NeveClass::kRedirectVhe:
    case NeveClass::kRedirectOrTrap:
      return info.redirect;
    default:
      return std::nullopt;
  }
}

uint64_t DeferredPageOffset(RegId reg) {
  auto idx = static_cast<uint64_t>(reg);
  NEVE_CHECK(idx < static_cast<uint64_t>(kNumRegIds));
  uint64_t offset = idx * 8;
  NEVE_CHECK(offset + 8 <= kDeferredPageSize);
  return offset;
}

const char* SysRegName(SysReg enc) { return InfoOf(enc).name; }
RegId SysRegStorage(SysReg enc) { return InfoOf(enc).storage; }
EncKind SysRegEncKind(SysReg enc) { return InfoOf(enc).kind; }
Rw SysRegRw(SysReg enc) { return InfoOf(enc).rw; }
El SysRegMinEl(SysReg enc) { return InfoOf(enc).min_el; }

SysReg DirectEncodingOf(RegId reg) {
  static const std::array<SysReg, kNumRegIds> kTable = BuildDirectEncodingTable();
  auto idx = static_cast<size_t>(reg);
  NEVE_CHECK(idx < kTable.size());
  return kTable[idx];
}

bool IsIchRegister(RegId reg) {
  return RegNeveClass(reg) == NeveClass::kGicCached;
}

bool IsIchListRegister(RegId reg, int* index) {
  auto first = static_cast<int>(RegId::kICH_LR0_EL2);
  auto last = static_cast<int>(RegId::kICH_LR15_EL2);
  auto r = static_cast<int>(reg);
  if (r < first || r > last) {
    return false;
  }
  if (index != nullptr) {
    *index = r - first;
  }
  return true;
}

RegId IchListRegister(int n) {
  NEVE_CHECK(n >= 0 && n < 16);
  return static_cast<RegId>(static_cast<int>(RegId::kICH_LR0_EL2) + n);
}

SysReg IchListRegisterEncoding(int n) {
  return DirectEncodingOf(IchListRegister(n));
}

}  // namespace neve
