// System-register model: storage registers, access encodings, and the NEVE
// classification from the paper's Tables 3, 4 and 5.
//
// Two enums:
//  - RegId: a *backing register* (one storage slot per hardware register).
//  - SysReg: an *access encoding* (MSR/MRS mnemonic). The VHE *_EL12/*_EL02
//    aliases are distinct encodings onto EL1/EL0 storage.
//
// What an encoding touches at runtime (hardware register, EL1 counterpart,
// deferred-access-page slot, or a trap) is computed by cpu/trap_rules.cc from
// the metadata exposed here.

#ifndef NEVE_SRC_ARCH_SYSREG_H_
#define NEVE_SRC_ARCH_SYSREG_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/arch/el.h"

namespace neve {

// NEVE treatment of a backing register when accessed from virtual EL2
// (paper section 6.1; see regid_defs.inc for the table-by-table breakdown).
enum class NeveClass : uint8_t {
  kNone = 0,
  kDeferred,        // Table 3: VM system register -> deferred access page
  kRedirect,        // Table 4: EL2 access -> corresponding EL1 register
  kRedirectVhe,     // Table 4 (VHE rows): same, register exists since v8.1
  kTrapOnWrite,     // Table 4: reads from cached copy, writes trap
  kRedirectOrTrap,  // Table 4: redirect for VHE guests, cached/trap otherwise
  kGicCached,       // Table 5: ICH_* cached copies, writes trap
  kTimerTrap,       // 6.1: EL2 timers always trap (hardware-updated values)
};

enum class RegId : uint16_t {
#define NEVE_REGID(id, name, owner, klass, redirect) id,
#include "src/arch/regid_defs.inc"
#undef NEVE_REGID
  kNumRegIds,
};

inline constexpr int kNumRegIds = static_cast<int>(RegId::kNumRegIds);

// How an encoding reaches its storage.
enum class EncKind : uint8_t {
  kDirect,  // canonical encoding of the backing register
  kEl12,    // VHE alias: EL1 storage reachable from E2H EL2
  kEl02,    // VHE alias: EL0 timer storage reachable from E2H EL2
};

enum class Rw : uint8_t { kRW, kRO, kWO };

enum class SysReg : uint16_t {
#define NEVE_SYSREG(id, name, storage, min_el, kind, rw) id,
#include "src/arch/sysreg_defs.inc"
#undef NEVE_SYSREG
  kNumSysRegs,
};

inline constexpr int kNumSysRegs = static_cast<int>(SysReg::kNumSysRegs);

// --- Backing-register metadata ----------------------------------------------

const char* RegName(RegId reg);

// Inverse of RegName / SysRegName: look an entry up by its architectural name
// string. nullopt when no table row carries that name.
std::optional<RegId> RegIdFromName(std::string_view name);
std::optional<SysReg> SysRegFromName(std::string_view name);

// Which EL's context this register belongs to.
El RegOwnerEl(RegId reg);

// The paper's NEVE classification of this register.
NeveClass RegNeveClass(RegId reg);

// For kRedirect / kRedirectVhe / kRedirectOrTrap: the EL1 register an EL2
// access is redirected to. nullopt for other classes.
std::optional<RegId> RegRedirectTarget(RegId reg);

// Byte offset of this register's slot in the deferred access page
// (section 6.1: "each VM system register is stored at a well-defined offset
// from BADDR"). Every backing register has a slot; NEVE only *uses* the slots
// of kDeferred / kTrapOnWrite / kGicCached / kRedirectOrTrap registers.
uint64_t DeferredPageOffset(RegId reg);

// The deferred access page itself: one 4 KB page.
inline constexpr uint64_t kDeferredPageSize = 4096;

// --- Encoding metadata --------------------------------------------------------

const char* SysRegName(SysReg enc);
RegId SysRegStorage(SysReg enc);
EncKind SysRegEncKind(SysReg enc);
Rw SysRegRw(SysReg enc);

// Lowest exception level from which this encoding is architecturally
// accessible on hardware that implements it.
El SysRegMinEl(SysReg enc);

// The canonical (kDirect) encoding of a backing register. Every backing
// register has exactly one.
SysReg DirectEncodingOf(RegId reg);

// True for registers that belong to the GIC hypervisor control interface
// (Table 5) -- the hyp vGIC code treats these specially.
bool IsIchRegister(RegId reg);

// True for the ICH_LR<n> list registers; `index` receives n when non-null.
bool IsIchListRegister(RegId reg, int* index = nullptr);

// RegId for ICH_LR<n>. n must be in [0, 16).
RegId IchListRegister(int n);

// SysReg encoding for ICH_LR<n>. n must be in [0, 16).
SysReg IchListRegisterEncoding(int n);

}  // namespace neve

#endif  // NEVE_SRC_ARCH_SYSREG_H_
