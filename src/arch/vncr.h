// VNCR_EL2 -- the EL2 Virtual Nested Control Register introduced by NEVE
// (paper section 6.1, Table 2).
//
//   bits[52:12]  BADDR   deferred access page base address (page-aligned PA)
//   bits[11:1]   reserved
//   bit[0]       Enable
//
// The architecture mandates a page-aligned physical address in BADDR so the
// redirection logic never needs alignment checks or translation faults
// (section 6.3); the setters below enforce that invariant.

#ifndef NEVE_SRC_ARCH_VNCR_H_
#define NEVE_SRC_ARCH_VNCR_H_

#include <cstdint>

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {

class VncrEl2 {
 public:
  // The architecturally defined fields: BADDR[52:12] and Enable[0]. Anything
  // else is reserved, RES0.
  static constexpr uint64_t kDefinedBits = BitMask(52, 12) | uint64_t{1};

  VncrEl2() = default;

  // Constructing from a raw register value keeps only the defined fields,
  // exactly as hardware treats writes to RES0 bits. This is the single place
  // raw bits enter the type: BADDR taken from bits[52:12] is page-aligned by
  // construction, so the setter invariants hold for any input value.
  explicit VncrEl2(uint64_t bits) : bits_(bits & kDefinedBits) {}

  uint64_t bits() const { return bits_; }

  bool enabled() const { return TestBit(bits_, 0); }
  void set_enabled(bool on) { bits_ = AssignBit(bits_, 0, on); }

  // Physical base address of the deferred access page.
  uint64_t baddr() const { return bits_ & BitMask(52, 12); }
  void set_baddr(uint64_t pa) {
    NEVE_CHECK_MSG(IsAligned(pa, 4096), "VNCR_EL2.BADDR must be page-aligned");
    NEVE_CHECK_MSG((pa & ~BitMask(52, 12)) == 0, "BADDR out of range");
    bits_ = (bits_ & ~BitMask(52, 12)) | pa;
  }

  static VncrEl2 Make(uint64_t page_pa, bool enable) {
    VncrEl2 v;
    v.set_baddr(page_pa);
    v.set_enabled(enable);
    return v;
  }

 private:
  uint64_t bits_ = 0;
};

}  // namespace neve

#endif  // NEVE_SRC_ARCH_VNCR_H_
