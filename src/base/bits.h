// Bit-manipulation helpers for register field encoding/decoding.
//
// All helpers operate on 64-bit values, the native width of AArch64 system
// registers, and are constexpr so register layouts can be computed at compile
// time (e.g. the VNCR_EL2 field masks in src/arch/vncr.h).

#ifndef NEVE_SRC_BASE_BITS_H_
#define NEVE_SRC_BASE_BITS_H_

#include <cstdint>

#include "src/base/status.h"

namespace neve {

// A mask covering bits [hi:lo], inclusive, e.g. BitMask(3, 1) == 0b1110.
constexpr uint64_t BitMask(unsigned hi, unsigned lo) {
  if (hi >= 64 || lo > hi) {
    return 0;  // Callers validate; constexpr context forbids Panic here.
  }
  uint64_t width = hi - lo + 1;
  uint64_t mask = (width >= 64) ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  return mask << lo;
}

// Extracts bits [hi:lo] of value, right-aligned.
constexpr uint64_t ExtractBits(uint64_t value, unsigned hi, unsigned lo) {
  return (value & BitMask(hi, lo)) >> lo;
}

// Returns value with bits [hi:lo] replaced by field (right-aligned).
constexpr uint64_t InsertBits(uint64_t value, unsigned hi, unsigned lo,
                              uint64_t field) {
  uint64_t mask = BitMask(hi, lo);
  return (value & ~mask) | ((field << lo) & mask);
}

// Single-bit helpers.
constexpr bool TestBit(uint64_t value, unsigned bit) {
  return ((value >> bit) & 1u) != 0;
}
constexpr uint64_t SetBit(uint64_t value, unsigned bit) {
  return value | (uint64_t{1} << bit);
}
constexpr uint64_t ClearBit(uint64_t value, unsigned bit) {
  return value & ~(uint64_t{1} << bit);
}
constexpr uint64_t AssignBit(uint64_t value, unsigned bit, bool on) {
  return on ? SetBit(value, bit) : ClearBit(value, bit);
}

// Alignment helpers; alignment must be a power of two.
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return IsPowerOfTwo(alignment) && (value & (alignment - 1)) == 0;
}
constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}
constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return AlignDown(value + alignment - 1, alignment);
}

}  // namespace neve

#endif  // NEVE_SRC_BASE_BITS_H_
