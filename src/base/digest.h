// Order-sensitive 64-bit digests for architectural-state comparison.
//
// The differential oracles (src/fuzz, archlint's sweeps, the world-switch
// round-trip property test) need a cheap, deterministic fingerprint of "the
// architectural state right now" and of "every value the guest observed".
// A digest is FNV-1a-style multiply/xor mixing: not cryptographic, but two
// runs that diverge anywhere in a mixed stream disagree with overwhelming
// probability, which is all a differential test needs -- a mismatch is then
// re-diagnosed from the component values, never from the hash.
//
// Determinism contract: a digest is a pure function of the mixed values and
// their order. No addresses, no iteration over unordered containers, no
// wall-clock anywhere near this file.

#ifndef NEVE_SRC_BASE_DIGEST_H_
#define NEVE_SRC_BASE_DIGEST_H_

#include <cstdint>
#include <string_view>

namespace neve {

inline constexpr uint64_t kDigestSeed = 0xCBF29CE484222325ull;  // FNV basis

// One mixing step: absorb `v` into `h`. The odd multiplier and the two
// xor-shifts give full avalanche over 64 bits (splitmix64 finalizer).
constexpr uint64_t DigestMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

// Convenience for hashing a few values outside a running digest.
constexpr uint64_t DigestOf(uint64_t a) { return DigestMix(kDigestSeed, a); }
constexpr uint64_t DigestOf(uint64_t a, uint64_t b) {
  return DigestMix(DigestOf(a), b);
}
constexpr uint64_t DigestOf(uint64_t a, uint64_t b, uint64_t c) {
  return DigestMix(DigestOf(a, b), c);
}

// Accumulator form for streams.
class Digest {
 public:
  void Mix(uint64_t v) { h_ = DigestMix(h_, v); }
  void Mix(std::string_view s) {
    Mix(s.size());
    uint64_t word = 0;
    int n = 0;
    for (unsigned char c : s) {
      word = (word << 8) | c;
      if (++n == 8) {
        Mix(word);
        word = 0;
        n = 0;
      }
    }
    if (n != 0) {
      Mix(word);
    }
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kDigestSeed;
};

}  // namespace neve

#endif  // NEVE_SRC_BASE_DIGEST_H_
