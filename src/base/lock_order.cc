#include "src/base/lock_order.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace neve::lock_order {
namespace {

// The detector's own state is guarded by a raw std::mutex: it cannot
// instrument itself, and Panic() must never be reached while holding it
// (panic hooks acquire instrumented neve::Mutexes).
struct Registry {
  std::mutex mu;
  std::map<std::string, int, std::less<>> ids;
  std::vector<const char*> names;              // class id -> name
  std::map<int, std::set<int>> edges;          // a -> b: a held while locking b
  std::map<std::pair<int, int>, std::string> witnesses;  // edge -> held stack
  uint64_t edge_count = 0;
};

Registry& Reg() {
  static auto* registry = new Registry;
  return *registry;
}

std::atomic<uint64_t> g_acquisitions{0};

// Classes this thread currently holds, in acquisition order. thread_local:
// only ever touched by the owning thread.
thread_local std::vector<int> tls_held;

// Caller holds reg.mu.
std::string HeldNames(const Registry& reg, const std::vector<int>& held) {
  if (held.empty()) {
    return "(none)";
  }
  std::string out;
  for (int id : held) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += reg.names[static_cast<size_t>(id)];
  }
  return out;
}

// Caller holds reg.mu. True when `to` is reachable from `from` in the edge
// set; fills `path` with the class ids visited from -> ... -> to.
bool PathExists(const Registry& reg, int from, int to, std::vector<int>& path) {
  std::vector<int> stack{from};
  std::map<int, int> parent;  // child -> parent in the DFS tree
  std::set<int> visited{from};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    if (node == to) {
      path.clear();
      for (int n = to; n != from; n = parent[n]) {
        path.push_back(n);
      }
      path.push_back(from);
      std::reverse(path.begin(), path.end());
      return true;
    }
    auto it = reg.edges.find(node);
    if (it == reg.edges.end()) {
      continue;
    }
    for (int next : it->second) {
      if (visited.insert(next).second) {
        parent[next] = node;
        stack.push_back(next);
      }
    }
  }
  return false;
}

// Caller holds reg.mu. "" when acquiring `id` is safe; otherwise the panic
// message for the reentrant-acquire or cycle it would create.
std::string CheckAndRecord(Registry& reg, int id, bool add_edges) {
  const char* name = reg.names[static_cast<size_t>(id)];
  for (int held : tls_held) {
    if (held == id) {
      return std::string("lock-order: reentrant acquire of '") + name +
             "' (self-deadlock); this thread holds: " +
             HeldNames(reg, tls_held);
    }
  }
  if (add_edges) {
    for (int held : tls_held) {
      auto [it, new_edge] = reg.edges[held].insert(id);
      (void)it;
      if (!new_edge) {
        continue;
      }
      std::vector<int> path;
      if (PathExists(reg, id, held, path)) {
        // Acquiring id while holding held, but id -> ... -> held is already
        // established: the classic AB/BA deadlock, caught on whichever
        // interleaving performs the second nesting.
        std::string msg = std::string("lock-order cycle: acquiring '") + name +
                          "' while holding '" +
                          reg.names[static_cast<size_t>(held)] +
                          "', but the reverse order " + HeldNames(reg, path) +
                          " is established\n  this thread holds: " +
                          HeldNames(reg, tls_held);
        auto wit = reg.witnesses.find({path[0], path[1]});
        if (wit != reg.witnesses.end()) {
          msg += "\n  prior acquisition of '" +
                 std::string(reg.names[static_cast<size_t>(path[1])]) +
                 "' held: " + wit->second;
        }
        reg.edges[held].erase(id);
        return msg;
      }
      reg.witnesses[{held, id}] = HeldNames(reg, tls_held);
      ++reg.edge_count;
    }
  }
  tls_held.push_back(id);
  return "";
}

}  // namespace

int ClassId(const char* name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.ids.find(name);
  if (it == reg.ids.end()) {
    it = reg.ids.emplace(name, static_cast<int>(reg.names.size())).first;
    reg.names.push_back(name);
  }
  return it->second;
}

void OnLock(int class_id) {
  g_acquisitions.fetch_add(1, std::memory_order_relaxed);
  Registry& reg = Reg();
  std::string panic_msg;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    panic_msg = CheckAndRecord(reg, class_id, /*add_edges=*/true);
  }
  // Panic outside reg.mu: panic hooks acquire instrumented mutexes, which
  // would re-enter the detector.
  if (!panic_msg.empty()) {
    Panic(__FILE__, __LINE__, panic_msg);
  }
}

void OnTryLockSuccess(int class_id) {
  g_acquisitions.fetch_add(1, std::memory_order_relaxed);
  Registry& reg = Reg();
  std::string panic_msg;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    panic_msg = CheckAndRecord(reg, class_id, /*add_edges=*/false);
  }
  if (!panic_msg.empty()) {
    Panic(__FILE__, __LINE__, panic_msg);
  }
}

void OnUnlock(int class_id) {
  // Drop the most recent hold of the class (unlock order need not be LIFO).
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (*it == class_id) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
}

uint64_t Acquisitions() {
  return g_acquisitions.load(std::memory_order_relaxed);
}

uint64_t Edges() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.edge_count;
}

std::string GraphDump() {
  Registry& reg = Reg();
  std::vector<std::pair<std::string, std::string>> lines;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& [from, tos] : reg.edges) {
      for (int to : tos) {
        lines.emplace_back(reg.names[static_cast<size_t>(from)],
                           reg.names[static_cast<size_t>(to)]);
      }
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [from, to] : lines) {
    out += from + " -> " + to + "\n";
  }
  return out;
}

void ResetForTest() {
  g_acquisitions.store(0, std::memory_order_relaxed);
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.edges.clear();
  reg.witnesses.clear();
  reg.edge_count = 0;
}

}  // namespace neve::lock_order
