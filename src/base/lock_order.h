// Deterministic lock-order (deadlock) detector behind neve::Mutex.
//
// Every neve::Mutex belongs to a lock *class* keyed by its name ("obs.tracer",
// "base.panic_hooks", ...); all instances of a class -- e.g. every Machine's
// tracer mutex -- share one node in a process-wide acquisition graph. Classes,
// not instances, key the graph so its contents depend only on which nestings
// the workload performs, never on thread count, scheduling, or machine
// construction order: GraphDump() is byte-identical across --threads for a
// fixed workload (asserted by tests/lock_order_test.cc).
//
// Each thread keeps a stack of held classes. Acquiring B while holding A adds
// the edge A -> B (with the acquiring thread's held stack recorded as the
// edge's witness); an acquisition that would close a cycle -- the classic
// AB/BA deadlock -- panics immediately with both stacks (the current thread's
// and the witness of the prior ordering), turning a
// would-deadlock-under-the-right-interleaving bug into a deterministic
// failure on ANY interleaving that performs both nestings. Re-acquiring a
// held class (self-deadlock) panics the same way.
//
// The detector is on by default and costs one short critical section per
// blocking acquisition; build with -DNEVE_LOCK_ORDER=OFF (cmake) to compile
// the hooks out of neve::Mutex entirely.

#ifndef NEVE_SRC_BASE_LOCK_ORDER_H_
#define NEVE_SRC_BASE_LOCK_ORDER_H_

#include <cstdint>
#include <string>

namespace neve::lock_order {

// The process-wide id of the lock class named `name`. `name` must outlive
// the process (in practice: a string literal).
int ClassId(const char* name);

// Hooks called by neve::Mutex. OnLock runs before blocking (so the ordering
// violation fires even on the interleaving that would have deadlocked);
// OnTryLockSuccess records the hold without adding graph edges (a trylock
// cannot deadlock); OnUnlock drops the class from the thread's held stack.
void OnLock(int class_id);
void OnTryLockSuccess(int class_id);
void OnUnlock(int class_id);

// Total blocking + successful-try acquisitions, and distinct acquisition-
// graph edges, since start (or the last ResetForTest). Mirrored into a
// Machine's metrics as base.lock_acquisitions / base.lock_order_edges.
uint64_t Acquisitions();
uint64_t Edges();

// One "<a> -> <b>\n" line per distinct edge, sorted lexically by class
// names; deterministic across runs and thread counts for a fixed workload.
std::string GraphDump();

// Test-only: forgets all edges, witnesses and counters (lock classes
// persist). Call with no neve::Mutex held.
void ResetForTest();

}  // namespace neve::lock_order

#endif  // NEVE_SRC_BASE_LOCK_ORDER_H_
