#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace neve {
namespace {

LogLevel InitialLevel() {
  // Nothing in the process calls setenv, so this lone startup read is safe.
  const char* env = std::getenv("NEVE_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) {
    return LogLevel::kWarning;
  }
  std::optional<LogLevel> parsed = ParseLogLevel(env);
  if (!parsed.has_value()) {
    // Warn exactly once (InitialLevel runs once, under the function-local
    // static below) rather than silently running at the default level.
    std::fprintf(stderr,
                 "[W log] unrecognized NEVE_LOG_LEVEL=\"%s\" "
                 "(want debug|info|warning|error|off); using \"warning\"\n",
                 env);
    return LogLevel::kWarning;
  }
  return *parsed;
}

// Atomic: worker threads in the bench fan-out consult the threshold while
// the embedder may flip it; relaxed ordering is enough for a filter knob.
std::atomic<LogLevel>& MutableLevel() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return MutableLevel().load(std::memory_order_relaxed);
}
void SetLogLevel(LogLevel level) {
  MutableLevel().store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> ParseLogLevel(const char* s) {
  if (std::strcmp(s, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(s, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(s, "warning") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(s, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(s, "off") == 0) {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base != nullptr ? base + 1 : file)
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace neve
