// Minimal leveled logger.
//
// The simulator's correctness story does not depend on logging; this exists so
// examples can narrate what the machine is doing and so deep debugging of the
// hypervisor model is possible with NEVE_LOG_LEVEL=debug.

#ifndef NEVE_SRC_BASE_LOG_H_
#define NEVE_SRC_BASE_LOG_H_

#include <optional>
#include <sstream>
#include <string>

namespace neve {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global log threshold; messages below it are dropped. Defaults to kWarning,
// overridable via the NEVE_LOG_LEVEL environment variable
// (debug|info|warning|error|off), read once at first use. An unrecognized
// value keeps the default and warns on stderr, once.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Maps a NEVE_LOG_LEVEL spelling to its level; nullopt if unrecognized.
std::optional<LogLevel> ParseLogLevel(const char* s);

namespace internal {

// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace neve

#define NEVE_LOG(level)                                                    \
  if (::neve::LogLevel::level < ::neve::GetLogLevel()) {                   \
  } else                                                                   \
    ::neve::internal::LogMessage(::neve::LogLevel::level, __FILE__, __LINE__) \
        .stream()

#define NEVE_LOG_DEBUG NEVE_LOG(kDebug)
#define NEVE_LOG_INFO NEVE_LOG(kInfo)
#define NEVE_LOG_WARNING NEVE_LOG(kWarning)
#define NEVE_LOG_ERROR NEVE_LOG(kError)

#endif  // NEVE_SRC_BASE_LOG_H_
