// neve::Mutex / neve::MutexLock: the repo's lockable capability.
//
// A thin wrapper over std::mutex that adds the two things the concurrency-
// readiness layer needs and std::mutex cannot provide:
//
//   1. Clang thread-safety annotations (src/base/thread_annotations.h):
//      members declared GUARDED_BY(mu_) are compile-time checked against
//      this capability under -Wthread-safety.
//   2. The deterministic lock-order detector (src/base/lock_order.h): every
//      Mutex names its lock class, and acquisitions feed the process-wide
//      acquisition graph; a nesting that could deadlock panics on any
//      interleaving that performs both orders.
//
// Name mutexes by subsystem ("obs.tracer", "hyp.virtio_ring"): all
// instances sharing a name are one lock class in the acquisition graph,
// which is what keeps the graph deterministic across machine counts and
// --threads (see lock_order.h).

#ifndef NEVE_SRC_BASE_MUTEX_H_
#define NEVE_SRC_BASE_MUTEX_H_

#include <mutex>

#include "src/base/lock_order.h"
#include "src/base/thread_annotations.h"

// Compiled in by default; cmake -DNEVE_LOCK_ORDER=OFF defines this to 0 and
// the hooks vanish entirely.
#ifndef NEVE_LOCK_ORDER
#define NEVE_LOCK_ORDER 1
#endif

namespace neve {

class CAPABILITY("mutex") Mutex {
 public:
  // `name` is the lock class (string literal; must outlive the process).
  explicit Mutex(const char* name = "base.anonymous")
#if NEVE_LOCK_ORDER
      : class_id_(lock_order::ClassId(name))
#endif
  {
    (void)name;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if NEVE_LOCK_ORDER
    // Before blocking: the ordering violation must fire even on the
    // interleaving that would have deadlocked here.
    lock_order::OnLock(class_id_);
#endif
    mu_.lock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if NEVE_LOCK_ORDER
    lock_order::OnTryLockSuccess(class_id_);
#endif
    return true;
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if NEVE_LOCK_ORDER
    lock_order::OnUnlock(class_id_);
#endif
  }

 private:
  std::mutex mu_;
#if NEVE_LOCK_ORDER
  int class_id_;
#endif
};

// RAII holder; the annotated equivalent of std::lock_guard<neve::Mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace neve

#endif  // NEVE_SRC_BASE_MUTEX_H_
