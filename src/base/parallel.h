// A minimal fork-join helper for the bench harness.
//
// The fig2/table benches iterate independent Machine instances (one per
// workload x stack cell); a Machine is self-contained -- its CPUs, memory,
// GIC, timers and observability layer share no mutable global state (the
// only process-wide mutable is the log level, which the benches never touch
// mid-run). ParallelFor fans those cells out across a small thread pool and
// joins before returning, so callers fill index-addressed result arrays in
// parallel and print them serially afterwards: output stays byte-for-byte
// deterministic regardless of thread count.

#ifndef NEVE_SRC_BASE_PARALLEL_H_
#define NEVE_SRC_BASE_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "src/base/mutex.h"

namespace neve {

// Default worker count for the bench harness: the hardware concurrency,
// clamped to a small pool (the benches have at most ~70 independent cells;
// more threads than that is pure overhead).
inline unsigned DefaultBenchThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 8u);
}

// Invokes fn(0) .. fn(n-1), distributing indices across `threads` workers
// via an atomic work counter (cells have uneven costs -- nested NEVE stacks
// run ~10x faster than nested v8.3 stacks -- so static striping would leave
// workers idle). threads <= 1 runs inline. Joins all workers before
// returning. fn must not touch shared mutable state for distinct indices.
//
// Exception semantics: a throw from fn(i) never escapes a worker thread
// (that would std::terminate the process) and never deadlocks the join.
// Every remaining index still runs exactly once -- a failing cell must not
// starve later cells of their slot in the result arrays -- and after the
// join the exception of the LOWEST failing index is rethrown to the caller:
// the same one the serial path surfaces, so which error the caller sees is
// deterministic across --threads= values.
inline void ParallelFor(size_t n, unsigned threads,
                        const std::function<void(size_t)>& fn) {
  Mutex error_mu{"base.parallel_for"};
  std::exception_ptr first_error;     // both guarded by error_mu while
  size_t first_error_index = n;       // workers run; read after the join
  auto invoke = [&](size_t i) {
    try {
      fn(i);
    } catch (...) {
      MutexLock lock(error_mu);
      if (i < first_error_index) {
        first_error_index = i;
        first_error = std::current_exception();
      }
    }
  };
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      invoke(i);
    }
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        invoke(i);
      }
    };
    std::vector<std::thread> pool;
    unsigned spawned =
        std::min<size_t>(threads, n) - 1;  // this thread works too
    pool.reserve(spawned);
    for (unsigned t = 0; t < spawned; ++t) {
      pool.emplace_back(worker);
    }
    worker();
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace neve

#endif  // NEVE_SRC_BASE_PARALLEL_H_
