// Deterministic pseudo-random number generator (xoshiro256**).
//
// Workload models use randomness (e.g. jitter in application exit mixes);
// determinism matters because the benchmark harness must regenerate the same
// tables on every run. std::mt19937 would work but is heavyweight and its
// distributions are not cross-stdlib reproducible; we keep both the engine and
// the distributions in-house.

#ifndef NEVE_SRC_BASE_RNG_H_
#define NEVE_SRC_BASE_RNG_H_

#include <cstdint>

#include "src/base/status.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: checkpoints the generator state mid-stream
}  // namespace snap

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    NEVE_CHECK(bound != 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  friend class snap::Serializer;

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace neve

#endif  // NEVE_SRC_BASE_RNG_H_
