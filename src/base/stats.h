// Small online-statistics accumulator for benchmark runs.

#ifndef NEVE_SRC_BASE_STATS_H_
#define NEVE_SRC_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "src/base/status.h"

namespace neve {

// Accumulates min/max/mean/variance of a stream of samples (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const {
    NEVE_CHECK(n_ > 0);
    return min_;
  }
  double max() const {
    NEVE_CHECK(n_ > 0);
    return max_;
  }
  double variance() const {
    // Welford's m2 can dip fractionally below zero from floating-point
    // cancellation when all samples are (nearly) equal; without the clamp
    // stddev() would be sqrt(negative) = NaN.
    return n_ > 1 ? std::max(0.0, m2_) / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  // Max relative spread: (max - min) / mean. Used by the trap-cost validation
  // bench, which checks the paper's "<10% overall" claim (section 5).
  double relative_spread() const {
    NEVE_CHECK(n_ > 0);
    return mean_ != 0.0 ? (max_ - min_) / mean_ : 0.0;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace neve

#endif  // NEVE_SRC_BASE_STATS_H_
