#include "src/base/status.h"

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace neve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace {

struct PanicHookRegistry {
  // Cross-thread by design: any thread may panic while others register or
  // remove hooks (bench fan-out workers each own a Machine whose ctor/dtor
  // touches this registry).
  Mutex mu{"base.panic_hooks"};
  std::vector<std::pair<int, std::function<void()>>> hooks GUARDED_BY(mu);
  int next_id GUARDED_BY(mu) = 1;
};

PanicHookRegistry& HookRegistry() {
  static auto* registry = new PanicHookRegistry;
  return *registry;
}

}  // namespace

int AddPanicHook(std::function<void()> hook) {
  PanicHookRegistry& reg = HookRegistry();
  MutexLock lock(reg.mu);
  int id = reg.next_id++;
  reg.hooks.emplace_back(id, std::move(hook));
  return id;
}

void RemovePanicHook(int id) {
  PanicHookRegistry& reg = HookRegistry();
  MutexLock lock(reg.mu);
  for (auto it = reg.hooks.begin(); it != reg.hooks.end(); ++it) {
    if (it->first == id) {
      reg.hooks.erase(it);
      return;
    }
  }
}

void Panic(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[neve PANIC] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  // Flush diagnostics (newest hook first), once: a panic raised from inside
  // a hook falls straight through to abort instead of recursing.
  static thread_local bool in_panic = false;
  if (!in_panic) {
    in_panic = true;
    std::vector<std::function<void()>> hooks;
    {
      PanicHookRegistry& reg = HookRegistry();
      MutexLock lock(reg.mu);
      for (auto it = reg.hooks.rbegin(); it != reg.hooks.rend(); ++it) {
        hooks.push_back(it->second);
      }
    }
    for (const auto& hook : hooks) {
      hook();
    }
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace neve
