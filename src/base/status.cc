#include "src/base/status.h"

#include <cstdio>
#include <cstdlib>

namespace neve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Panic(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[neve PANIC] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace neve
