// Lightweight status / result types used across the NEVE simulator.
//
// The simulator is a library first: internal invariant violations abort loudly
// (they indicate a modeling bug), while conditions that model *architectural*
// outcomes (faults, undefined instructions) are ordinary values, never errors.
// Status/StatusOr are reserved for host-level, recoverable failures such as
// bad configuration supplied by an embedder.

#ifndef NEVE_SRC_BASE_STATUS_H_
#define NEVE_SRC_BASE_STATUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <variant>

namespace neve {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

// Human-readable name for an ErrorCode ("OK", "INVALID_ARGUMENT", ...).
const char* ErrorCodeName(ErrorCode code);

// A success-or-error value with an optional message. Cheap to copy on the
// success path (no allocation).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(ErrorCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(ErrorCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(ErrorCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(ErrorCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(ErrorCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(ErrorCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Value-or-Status. Accessing value() on an error aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : v_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : v_(std::move(status)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(v_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(v_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // The held value, or `fallback` converted to T on error. The rvalue
  // overload moves the held value out, so it works for move-only T
  // (e.g. `std::move(so).value_or(nullptr)` on a StatusOr<unique_ptr<X>>).
  template <typename U>
  T value_or(U&& fallback) const& {
    if (ok()) {
      return std::get<T>(v_);
    }
    return static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  T value_or(U&& fallback) && {
    if (ok()) {
      return std::get<T>(std::move(v_));
    }
    return static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void CheckOk() const;

  std::variant<T, Status> v_;
};

// Aborts the process with a formatted message. Used for modeling-invariant
// violations where continuing would silently corrupt measured results.
// Before aborting, runs every registered panic hook (newest first) so layers
// can flush diagnostics -- the Machine registers one that dumps its metric
// snapshot and trace ring (status.cc guards against recursive panics).
[[noreturn]] void Panic(const char* file, int line, const std::string& message);

// Registers `hook` to run inside Panic() before the abort; returns an id for
// RemovePanicHook. Hooks must not allocate unboundedly or panic themselves
// (a panic from inside a hook skips the remaining hooks and aborts).
int AddPanicHook(std::function<void()> hook);
void RemovePanicHook(int id);

}  // namespace neve

// Invariant check used throughout the simulator. Unlike assert(), stays on in
// release builds: a violated invariant means the simulation results would be
// garbage, which is never acceptable in a measurement tool.
#define NEVE_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::neve::Panic(__FILE__, __LINE__, "check failed: " #cond);      \
    }                                                                 \
  } while (false)

#define NEVE_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::neve::Panic(__FILE__, __LINE__,                                     \
                    std::string("check failed: " #cond ": ") + (msg));      \
    }                                                                       \
  } while (false)

namespace neve {

template <typename T>
void StatusOr<T>::CheckOk() const {
  if (!ok()) {
    Panic(__FILE__, __LINE__,
          "StatusOr::value() on error: " + std::get<Status>(v_).ToString());
  }
}

}  // namespace neve

#endif  // NEVE_SRC_BASE_STATUS_H_
