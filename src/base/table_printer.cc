#include "src/base/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/base/status.h"

namespace neve {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : num_cols_(header.size()), header_(std::move(header)) {
  NEVE_CHECK(num_cols_ > 0);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(num_cols_);
  rows_.push_back(Row{.separator = false, .cells = std::move(cells)});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{.separator = true, .cells = {}});
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(num_cols_);
  for (size_t c = 0; c < num_cols_; ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < num_cols_; ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_line = [&]() {
    os << "+";
    for (size_t c = 0; c < num_cols_; ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < num_cols_; ++c) {
      const std::string& cell = cells[c];
      os << " " << cell << std::string(widths[c] - cell.size() + 1, ' ') << "|";
    }
    os << "\n";
  };

  print_line();
  print_cells(header_);
  print_line();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_line();
    } else {
      print_cells(row.cells);
    }
  }
  print_line();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::string TablePrinter::Cycles(uint64_t cycles) {
  std::string digits = std::to_string(cycles);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TablePrinter::Ratio(double x) {
  char buf[32];
  if (x >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.0fx", x);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fx", x);
  }
  return buf;
}

std::string TablePrinter::Fixed(double x, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

}  // namespace neve
