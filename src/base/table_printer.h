// ASCII table rendering for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables/figures; this
// printer produces aligned, pipe-separated rows so the output can be compared
// side by side with the paper and pasted into EXPERIMENTS.md.

#ifndef NEVE_SRC_BASE_TABLE_PRINTER_H_
#define NEVE_SRC_BASE_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace neve {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal separator line before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;

  // Formatting helpers for cells.
  static std::string Cycles(uint64_t cycles);          // "422,720"
  static std::string Ratio(double x);                  // "155x"
  static std::string Fixed(double x, int precision);   // "2.53"

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  size_t num_cols_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace neve

#endif  // NEVE_SRC_BASE_TABLE_PRINTER_H_
