// Clang thread-safety annotations (-Wthread-safety), no-ops elsewhere.
//
// These macros attach compile-time locking contracts to data and functions:
// a member declared GUARDED_BY(mu_) may only be touched while mu_ is held,
// a function declared REQUIRES(mu_) may only be called with mu_ held, and
// clang's analysis (enabled with -Wthread-safety -Werror for clang builds,
// see the top-level CMakeLists.txt) rejects violations at compile time. GCC
// ignores them all, so the annotations cost nothing on the default
// toolchain -- they are machine-checked documentation, not code.
//
// The vocabulary follows the standard clang/abseil naming so the contracts
// read the same here as in any annotated codebase. Use neve::Mutex
// (src/base/mutex.h), not std::mutex, for lockable state: only the wrapper
// carries the CAPABILITY attribute the analysis needs.

#ifndef NEVE_SRC_BASE_THREAD_ANNOTATIONS_H_
#define NEVE_SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define NEVE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NEVE_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// On data members: the member may only be read or written while the named
// capability (mutex) is held.
#define GUARDED_BY(x) NEVE_THREAD_ANNOTATION_(guarded_by(x))

// On pointer members: the pointed-to data (not the pointer itself) is
// protected by the named mutex.
#define PT_GUARDED_BY(x) NEVE_THREAD_ANNOTATION_(pt_guarded_by(x))

// On functions: the caller must hold the listed mutexes (exclusively /
// shared) when calling.
#define REQUIRES(...) \
  NEVE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NEVE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On functions: the function acquires / releases the listed mutexes and
// holds them across the call boundary.
#define ACQUIRE(...) NEVE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NEVE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) NEVE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NEVE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// On functions: acquires the mutex only when returning `ret`
// (e.g. TRY_ACQUIRE(true) on a TryLock that returns success).
#define TRY_ACQUIRE(...) \
  NEVE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On functions: the caller must NOT hold the listed mutexes (deadlock
// guard for functions that acquire them internally).
#define EXCLUDES(...) NEVE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On mutex members: documents (and checks) a global acquisition order.
#define ACQUIRED_BEFORE(...) \
  NEVE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NEVE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// On types: marks a class as a lockable capability ("mutex") / a scoped
// lock-holder (RAII guard).
#define CAPABILITY(x) NEVE_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY NEVE_THREAD_ANNOTATION_(scoped_lockable)

// On functions: returns a reference to the mutex protecting this object
// (lets accessors hand the guard to callers).
#define RETURN_CAPABILITY(x) NEVE_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function's locking discipline is correct but beyond
// the analysis (owner-serialized read sides, init/teardown paths). Every
// use should say why in a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  NEVE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // NEVE_SRC_BASE_THREAD_ANNOTATIONS_H_
