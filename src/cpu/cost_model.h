// Cycle-cost model for CPU operations.
//
// Calibration (DESIGN.md section 6): the primitive costs come from the
// paper's own measurements on ARMv8.0 server hardware --
//   - trapping EL1 -> EL2 costs 68-76 cycles regardless of the trapping
//     instruction class (section 5); we use a 72-cycle base plus a small
//     per-class detect delta so the spread stays under the paper's 10% bound,
//   - returning from EL2 to EL1 costs 65 cycles,
//   - a completed virtual EOI costs 71 cycles (Tables 1/6).
// Everything else (world-switch totals, exit multiplication, NEVE savings)
// emerges from the hypervisor code paths executing these primitives.

#ifndef NEVE_SRC_CPU_COST_MODEL_H_
#define NEVE_SRC_CPU_COST_MODEL_H_

#include <cstdint>

namespace neve {

struct CostModel {
  // Exception entry EL1->EL2 (take the trap: pipeline flush, vector fetch).
  uint32_t trap_entry = 72;
  // Exception return EL2->EL1 (eret).
  uint32_t trap_return = 65;

  // Per-instruction-class *detect* deltas, added to trap_entry. The paper
  // observes "finding out that you need to generate an exception" ranges
  // from free (hvc) to almost free (sysreg trap); keeping distinct deltas
  // lets the trapcost_validation bench reproduce the <10% spread claim.
  uint32_t detect_hvc = 0;
  uint32_t detect_sysreg = 2;
  uint32_t detect_eret = 1;
  uint32_t detect_mem_abort = 6;
  uint32_t detect_wfx = 1;

  // Non-trapping system register access (MSR/MRS).
  uint32_t sysreg_access = 8;
  // Cached memory access; also the cost of a NEVE deferred-page access,
  // which is an L1-hit store/load by design.
  uint32_t mem_access = 4;
  // Page-table walk cost per level on a TLB miss.
  uint32_t tlb_walk_per_level = 14;
  // GIC virtual CPU interface access (hardware-accelerated ack/EOI). The
  // paper measures a completed virtual EOI at 71 cycles on Applied Micro
  // Atlas cores (Tables 1/6); GIC CPU-interface accesses hit the external
  // interrupt controller block, far slower than core system registers.
  uint32_t gic_vcpuif_access = 71;
  // GIC distributor MMIO access from the hypervisor.
  uint32_t gic_dist_access = 28;
  // wfi/wfe, barrier instructions.
  uint32_t wfx = 4;
  uint32_t barrier = 6;
  // Exception entry within EL1 (guest vector dispatch for a virtual IRQ).
  uint32_t el1_vector_entry = 36;
  uint32_t el1_eret = 30;

  // x86 comparator (src/x86): VT-x transition costs. Root-mode transitions
  // bundle the hardware VMCS state save/restore, which is why they dwarf the
  // ARM trap cost -- the architectural difference the paper builds on
  // (section 2, "Comparison to x86").
  uint32_t vmexit = 480;
  uint32_t vmentry = 430;
  uint32_t vmread = 18;
  uint32_t vmwrite = 20;
  uint32_t x86_insn = 1;

  static CostModel Default() { return {}; }
};

}  // namespace neve

#endif  // NEVE_SRC_CPU_COST_MODEL_H_
