#include "src/cpu/cpu.h"

#include "src/arch/vncr.h"
#include "src/base/bits.h"
#include "src/base/digest.h"
#include "src/base/log.h"
#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fault/guest_fault.h"
#include "src/mem/mem_io.h"
#include "src/mem/page_table.h"

namespace neve {
namespace {

// Stage-1 table walks read descriptors in guest-physical space; when Stage-2
// is active those reads translate through the Stage-2 tables first, as the
// hardware nested walk does.
class S2TranslatingView : public MemIo {
 public:
  S2TranslatingView(PhysMem* mem, Pa s2_root) : mem_(mem), s2_root_(s2_root) {}

  uint64_t Read64(Pa ipa) const override {
    WalkResult w =
        PageTable::WalkFrom(*mem_, s2_root_, ipa.value, /*is_write=*/false);
    // The model does not take the hardware's "Stage-2 fault on a Stage-1
    // table walk" trap-and-retry path; the state is reachable only when the
    // controlling hypervisor yanked Stage-2 mappings under live Stage-1
    // tables (e.g. a lost-TLBI / injected stale shadow), so it is
    // guest-attributable: confine it to the VM.
    NEVE_GUEST_CHECK(w.ok, "s2_on_s1_walk",
                     "Stage-2 fault on a Stage-1 table walk");
    return mem_->Read64(w.pa);
  }
  void Write64(Pa, uint64_t) override {
    NEVE_CHECK_MSG(false, "table walker never writes");
  }
  void ZeroPage(Pa) override { NEVE_CHECK(false); }
  bool Contains(Pa, uint64_t) const override { return true; }

 private:
  PhysMem* mem_;
  Pa s2_root_;
};

// The attribution category of a whole trap episode: entry, dispatch and
// return cycles land here unless the handler refines them with a nested
// scope (sysreg/timer/GIC emulation, shadow fixups, ...).
AttrCat TrapCatForEc(Ec ec) {
  switch (ec) {
    case Ec::kHvc64:
    case Ec::kSmc64:
      return AttrCat::kTrapHvc;
    case Ec::kSysReg:
      return AttrCat::kTrapSysReg;
    case Ec::kEretTrap:
      return AttrCat::kTrapEret;
    case Ec::kInstAbortLow:
    case Ec::kDataAbortLow:
      return AttrCat::kTrapDataAbort;
    case Ec::kIrq:
      return AttrCat::kTrapIrq;
    case Ec::kWfx:
      return AttrCat::kTrapWfx;
    case Ec::kTlbi:
    case Ec::kUnknown:
      break;
  }
  return AttrCat::kTrapOther;
}

}  // namespace

Cpu::Cpu(int index, ArchFeatures features, const CostModel& cost, PhysMem* mem)
    : index_(index), features_(features), cost_(cost), mem_(mem) {
  NEVE_CHECK(mem != nullptr);
  NEVE_CHECK(features.Valid());
  // ID registers: a fixed midr, per-CPU mpidr (affinity level 0 = index).
  regs_[static_cast<size_t>(RegId::kMIDR_EL1)] = 0x410FD073;  // modeled core
  regs_[static_cast<size_t>(RegId::kMPIDR_EL1)] = static_cast<uint64_t>(index);
  regs_[static_cast<size_t>(RegId::kCNTFRQ_EL0)] = 100'000'000;
  // ICH_VTR: 4 list registers (typical GIC implementation; Table 7's IPI trap
  // counts depend on the hypervisor only touching in-use LRs, not this limit).
  regs_[static_cast<size_t>(RegId::kICH_VTR_EL2)] = 4;
}

void Cpu::AdvanceTo(uint64_t cycle_count) {
  if (cycle_count > cycles_) {
    uint64_t delta = cycle_count - cycles_;
    cycles_ = cycle_count;
    // The skipped-forward cycles are time this CPU logically sat idle while
    // another CPU ran ahead; attribute them so the conservation invariant
    // (sum of buckets == sum of clocks) covers rendezvous too.
    if (attr_ != nullptr) {
      attr_->ChargeTo(index_, AttrCat::kIdleWait, delta);
    }
    // Idle-rendezvous time must not consume the trap-livelock budget: the
    // watchdog bounds work *this* vCPU does inside one VM entry, and a vCPU
    // parked waiting on a slower sibling is doing none. Without this an
    // idle-heavy SMP rendezvous trips a false VM kill (the deadline was
    // sized for single-vCPU entries).
    if (watchdog_deadline_ != 0) {
      watchdog_deadline_ += delta;
    }
  }
}

bool Cpu::VncrEnabled() const {
  return features_.neve &&
         VncrEl2(regs_[static_cast<size_t>(RegId::kVNCR_EL2)]).enabled();
}

Pa Cpu::VncrPage() const {
  return Pa(VncrEl2(regs_[static_cast<size_t>(RegId::kVNCR_EL2)]).baddr());
}

AccessContext Cpu::CurrentAccessContext() const {
  return AccessContext{.features = features_,
                       .el = el_,
                       .hcr = hcr(),
                       .vncr_enabled = VncrEnabled()};
}

uint64_t Cpu::ArchStateDigest() const {
  Digest d;
  d.Mix(static_cast<uint64_t>(el_));
  for (uint64_t reg : regs_) {
    d.Mix(reg);
  }
  return d.value();
}

TrapOutcome Cpu::TakeTrapToEl2(const Syndrome& s, uint32_t detect_cost) {
  NEVE_CHECK_MSG(el_ != El::kEl2, "host hypervisor code cannot trap to EL2");
  NEVE_CHECK_MSG(host_ != nullptr, "no EL2 host installed");
  NEVE_CHECK_MSG(trap_depth_ < 64, "runaway trap recursion (modeling bug)");

  // Trap-livelock watchdog: the guest burned through its cycle budget for
  // this VM entry (e.g. an injected runaway hypercall storm, or corrupt
  // state refaulting forever). Checked here because every livelock by
  // construction keeps trapping; raising a confined guest fault unwinds the
  // guest frames back to the HostKvm::RunVcpu that armed the deadline.
  if (watchdog_deadline_ != 0 && cycles_ >= watchdog_deadline_) {
    watchdog_deadline_ = 0;
    RaiseGuestFault("watchdog",
                    "trap-livelock watchdog: cycle budget exhausted inside "
                    "one VM entry (next trap: " + s.ToString() + ")");
  }

  // The whole episode -- entry, host dispatch, return -- is attributed to
  // the trap's category at layer L0 (handling happens in the host) unless a
  // handler pushes a finer-grained scope. The RAII scope survives a
  // GuestFaultException unwinding out of the host handler.
  AttrScope attr_scope(*this, AttrLayer::kL0, TrapCatForEc(s.ec));

  uint64_t episode_start = cycles_;
  Charge(detect_cost + cost_.trap_entry);
  trace_.OnTrapToEl2(s, cycles_);

  // Snapshot observability state at entry so the begin/end pair stays
  // balanced even if tracing is toggled while the handler runs. The begin
  // event's ID doubles as the episode's exemplar link.
  bool observing = ObsActive(obs_);
  uint64_t trace_id = 0;
  if (observing) {
    obs_->metrics().Counter("cpu.traps_to_el2").Add(1);
    trace_id = obs_->tracer().Begin(index_, "trap", EcName(s.ec),
                                    episode_start);
  }

  // Hardware exception-entry side effects: syndrome and return state land in
  // the EL2 registers (part of the trap cost, not separately charged).
  regs_[static_cast<size_t>(RegId::kESR_EL2)] = s.ToEsrBits();
  regs_[static_cast<size_t>(RegId::kSPSR_EL2)] = static_cast<uint64_t>(el_);
  if (s.ec == Ec::kDataAbortLow) {
    regs_[static_cast<size_t>(RegId::kFAR_EL2)] = s.far;
    regs_[static_cast<size_t>(RegId::kHPFAR_EL2)] = s.hpfar >> 8;
  }

  // RAII so a GuestFaultException unwinding out of the host handler (a
  // confined VM kill) leaves the EL and trap-depth bookkeeping consistent
  // for the next VM entry on this CPU.
  struct TrapScope {
    Cpu* cpu;
    El saved_el;
    ~TrapScope() {
      --cpu->trap_depth_;
      cpu->el_ = saved_el;
    }
  };
  TrapOutcome outcome;
  {
    TrapScope scope{this, el_};
    el_ = El::kEl2;
    ++trap_depth_;
    outcome = host_->OnTrapToEl2(*this, s);
  }
  Charge(cost_.trap_return);
  if (trap_depth_ == 0) {
    trace_.AttributeCycles(s.ec, cycles_ - episode_start);
    if (observing) {
      // Episode latency histograms, overall and per trap class, each with
      // the begin event's ID as the bucket exemplar: an outlier links
      // straight back to its trace span.
      uint64_t episode = cycles_ - episode_start;
      obs_->metrics()
          .Histogram("cpu.trap_episode_cycles")
          .RecordWithExemplar(episode, trace_id);
      obs_->metrics()
          .Histogram(std::string("cpu.trap_episode_cycles.") + EcName(s.ec))
          .RecordWithExemplar(episode, trace_id);
    }
  }
  if (observing) {
    obs_->tracer().End(index_, "trap", EcName(s.ec), cycles_);
  }
  return outcome;
}

AccessResolution Cpu::ResolveCached(SysReg enc, bool is_write) {
  // Hit path first, and without building an AccessContext: constructing one
  // reads HCR_EL2/VNCR_EL2 and copies the feature set, which costs more than
  // the tree walk it feeds. Only a miss pays for the context + full resolve.
  if (rcache_.enabled()) {
    if (const AccessResolution* hit = rcache_.Lookup(enc, el_, is_write)) {
      if (ObsActive(obs_)) {
        obs_->metrics().Counter("cpu.resolve_cache_hits").Add(1);
      }
      return *hit;
    }
  }
  AccessResolution r = ResolveSysRegAccess(CurrentAccessContext(), enc,
                                           is_write);
  if (rcache_.enabled()) {
    rcache_.Insert(enc, el_, is_write, r);
    if (ObsActive(obs_)) {
      obs_->metrics().Counter("cpu.resolve_cache_misses").Add(1);
    }
  }
  return r;
}

uint64_t Cpu::SysRegRead(SysReg enc) {
  AccessResolution r = ResolveCached(enc, /*is_write=*/false);
  switch (r.kind) {
    case AccessResolution::Kind::kRegister:
      Charge(cost_.sysreg_access);
      return regs_[static_cast<size_t>(r.target)];
    case AccessResolution::Kind::kGicCpuIf:
      NEVE_CHECK_MSG(gic_ != nullptr, "no GIC CPU interface installed");
      ChargeAttributed(cost_.gic_vcpuif_access, AttrCat::kGicEmul);
      return gic_->IccRead(index_, r.target);
    case AccessResolution::Kind::kMemory: {
      // NEVE rewrote the register read into a plain load (section 6.1).
      ChargeAttributed(cost_.mem_access, AttrCat::kVncrRedirect);
      if (ObsActive(obs_)) {
        obs_->metrics().Counter("cpu.vncr_redirects").Add(1);
        obs_->tracer().Instant(index_, "vncr", SysRegName(enc), cycles_);
      }
      uint64_t value = mem_->Read64(VncrPage() + r.mem_offset);
      // Injected VNCR page corruption: the deferred-access load returns
      // flipped bits, as a DRAM error or hypervisor bug in the deferred
      // page would. The guest hypervisor consumes garbage state.
      if (FaultActive(fault_) &&
          fault_->ShouldInject(FaultPoint::kVncrCorruption, index_, cycles_,
                               static_cast<uint64_t>(enc))) {
        value ^= fault_->CorruptBits();
      }
      return value;
    }
    case AccessResolution::Kind::kTrapEl2: {
      TrapOutcome out = TakeTrapToEl2(
          Syndrome::SysRegTrap(enc, /*is_write=*/false, 0), cost_.detect_sysreg);
      NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
      return out.value;
    }
    case AccessResolution::Kind::kUndefined:
      // A real guest hypervisor would take an UNDEF and crash; confinement
      // kills the offending VM instead of the simulation.
      RaiseGuestFault("undefined_sysreg",
                      std::string("UNDEFINED read of ") + SysRegName(enc) +
                          " at " + ElName(el_));
  }
  return 0;
}

void Cpu::SysRegWrite(SysReg enc, uint64_t value) {
  AccessResolution r = ResolveCached(enc, /*is_write=*/true);
  switch (r.kind) {
    case AccessResolution::Kind::kRegister:
      // Note: translation-control writes do not flush the TLB model -- the
      // TLB key includes the active table roots (the moral equivalent of
      // VMID/ASID tagging), so switching contexts cannot hit stale entries.
      // Mutating table *contents* requires an explicit TlbiAll, as on real
      // hardware.
      Charge(cost_.sysreg_access);
      regs_[static_cast<size_t>(r.target)] = value;
      InvalidateResolutionsFor(r.target);
      return;
    case AccessResolution::Kind::kGicCpuIf:
      NEVE_CHECK_MSG(gic_ != nullptr, "no GIC CPU interface installed");
      ChargeAttributed(cost_.gic_vcpuif_access, AttrCat::kGicEmul);
      gic_->IccWrite(index_, r.target, value);
      return;
    case AccessResolution::Kind::kMemory:
      ChargeAttributed(cost_.mem_access, AttrCat::kVncrRedirect);
      if (ObsActive(obs_)) {
        obs_->metrics().Counter("cpu.vncr_redirects").Add(1);
        obs_->tracer().Instant(index_, "vncr", SysRegName(enc), cycles_);
      }
      // Injected stale VNCR contents: the deferred write never lands, so
      // the page keeps the previous value and the next world switch loads
      // stale guest-hypervisor state.
      if (FaultActive(fault_) &&
          fault_->ShouldInject(FaultPoint::kVncrStale, index_, cycles_,
                               static_cast<uint64_t>(enc))) {
        return;
      }
      mem_->Write64(VncrPage() + r.mem_offset, value);
      return;
    case AccessResolution::Kind::kTrapEl2: {
      TrapOutcome out = TakeTrapToEl2(
          Syndrome::SysRegTrap(enc, /*is_write=*/true, value),
          cost_.detect_sysreg);
      NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
      return;
    }
    case AccessResolution::Kind::kUndefined:
      RaiseGuestFault("undefined_sysreg",
                      std::string("UNDEFINED write of ") + SysRegName(enc) +
                          " at " + ElName(el_));
  }
}

El Cpu::ReadCurrentEl() {
  Charge(cost_.sysreg_access);
  return ResolveCurrentEl(CurrentAccessContext());
}

void Cpu::Hvc(uint16_t imm) {
  NEVE_CHECK_MSG(el_ != El::kEl2, "hvc at EL2 is not modeled (no EL3)");
  TrapOutcome out = TakeTrapToEl2(Syndrome::Hvc(imm), cost_.detect_hvc);
  NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
}

void Cpu::EretFromVirtualEl2() {
  NEVE_CHECK_MSG(el_ != El::kEl2,
                 "host hypervisor enters guests via RunLowerEl, not eret");
  if (ObsActive(obs_)) {
    obs_->metrics().Counter("cpu.virtual_el2_erets").Add(1);
    obs_->tracer().Instant(index_, "trap", "eret_virtual_el2", cycles_);
  }
  switch (ResolveEret(CurrentAccessContext())) {
    case EretResolution::kTrapEl2: {
      TrapOutcome out = TakeTrapToEl2(Syndrome::EretTrap(), cost_.detect_eret);
      NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
      return;
    }
    case EretResolution::kUndefined:
      RaiseGuestFault("undefined_eret",
                      std::string("UNDEFINED eret at ") + ElName(el_));
    case EretResolution::kLocal:
      // Plain EL1 eret (a guest OS returning to its user space): cost only.
      Charge(cost_.el1_eret);
      return;
  }
}

void Cpu::TakeIrq(uint32_t intid) {
  NEVE_CHECK_MSG(el_ != El::kEl2, "IRQ-exit injection targets guest context");
  NEVE_CHECK_MSG(hcr().imo(), "IRQ while IMO clear is not modeled");
  TrapOutcome out = TakeTrapToEl2(Syndrome::Irq(intid), /*detect_cost=*/0);
  NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
}

void Cpu::Wfi() {
  if (el_ != El::kEl2 && hcr().twi()) {
    TrapOutcome out = TakeTrapToEl2(Syndrome::Wfx(), cost_.detect_wfx);
    NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
    return;
  }
  Charge(cost_.wfx);
}

void Cpu::Barrier() { Charge(cost_.barrier); }

void Cpu::TlbiAll() {
  if (trap_tlbi_ && el_ != El::kEl2) {
    // Guest TLB maintenance with shadow Stage-2 state behind it: the host
    // must observe the invalidation to flush stale shadow entries (and
    // broadcast to sibling vCPUs under SMP) before the local invalidate
    // completes.
    TrapOutcome out = TakeTrapToEl2(Syndrome::Tlbi(), cost_.detect_hvc);
    NEVE_CHECK(out.kind == TrapOutcome::Kind::kCompleted);
  }
  Charge(cost_.barrier);
  tlb_.clear();
}

void Cpu::Compute(uint32_t cycles) {
  Charge(cycles);
  WatchdogCheckGuestSpin();
}

bool Cpu::TranslateVa(Va va, bool is_write, Pa* pa, Syndrome* fault) {
  bool below_el2 = el_ != El::kEl2;
  bool s1_on = below_el2 &&
               TestBit(regs_[static_cast<size_t>(RegId::kSCTLR_EL1)], 0);
  bool s2_on = below_el2 && hcr().vm();
  uint64_t s1_root =
      s1_on ? regs_[static_cast<size_t>(RegId::kTTBR0_EL1)] : 0;
  uint64_t s2_root =
      s2_on ? regs_[static_cast<size_t>(RegId::kVTTBR_EL2)] : 0;

  TlbKey key{va.PageIndex(), s1_root, s2_root};
  if (auto it = tlb_.find(key); it != tlb_.end()) {
    if (!is_write || it->second.writable) {
      *pa = Pa((it->second.pa_page << kPageShift) | va.PageOffset());
      return true;
    }
    // Write to a cached read-only translation: re-walk to classify the fault.
  }

  uint64_t addr = va.value;
  bool writable = true;

  if (s1_on) {
    Charge(PageTable::kWalkLevels * cost_.tlb_walk_per_level *
           (s2_on ? 2 : 1));  // nested walks double the descriptor loads
    WalkResult s1;
    if (s2_on) {
      S2TranslatingView view(mem_, Pa(s2_root));
      s1 = PageTable::WalkFrom(view, Pa(s1_root), addr, is_write);
    } else {
      s1 = PageTable::WalkFrom(*mem_, Pa(s1_root), addr, is_write);
    }
    NEVE_CHECK_MSG(s1.ok, "Stage-1 fault: simulated guests premap their "
                          "address spaces; this is a modeling bug");
    writable = writable && s1.perms.write;
    addr = s1.pa.value;
  }

  if (s2_on) {
    Charge(PageTable::kWalkLevels * cost_.tlb_walk_per_level);
    WalkResult s2 =
        PageTable::WalkFrom(*mem_, Pa(s2_root), addr, is_write);
    if (!s2.ok) {
      *fault = Syndrome::DataAbort(va.value, addr & ~uint64_t{0xFFF}, is_write,
                                   /*size=*/8);
      return false;
    }
    writable = writable && s2.perms.write;
    addr = s2.pa.value;
  }

  *pa = Pa(addr);
  tlb_[key] = TlbEntry{.pa_page = addr >> kPageShift, .writable = writable};
  return true;
}

uint64_t Cpu::LoadVa(Va va) {
  while (true) {
    Pa pa;
    Syndrome fault;
    if (TranslateVa(va, /*is_write=*/false, &pa, &fault)) {
      Charge(cost_.mem_access);
      WatchdogCheckGuestSpin();
      return mem_->Read64(pa);
    }
    TrapOutcome out = TakeTrapToEl2(fault, cost_.detect_mem_abort);
    if (out.kind == TrapOutcome::Kind::kCompleted) {
      return out.value;  // MMIO read emulated by the hypervisor
    }
  }
}

void Cpu::StoreVa(Va va, uint64_t value) {
  while (true) {
    Pa pa;
    Syndrome fault;
    if (TranslateVa(va, /*is_write=*/true, &pa, &fault)) {
      Charge(cost_.mem_access);
      WatchdogCheckGuestSpin();
      mem_->Write64(pa, value);
      return;
    }
    fault.write_value = value;
    TrapOutcome out = TakeTrapToEl2(fault, cost_.detect_mem_abort);
    if (out.kind == TrapOutcome::Kind::kCompleted) {
      return;  // MMIO write emulated
    }
  }
}

void Cpu::RunLowerEl(El target_el, const std::function<void()>& body) {
  NEVE_CHECK_MSG(el_ == El::kEl2, "only the host hypervisor enters guests");
  NEVE_CHECK(target_el != El::kEl2);
  Charge(cost_.trap_return);  // the eret into the guest
  el_ = target_el;
  // RAII: a confined guest fault unwinding out of `body` must still land the
  // CPU back at EL2 for the catch handler in HostKvm::RunVcpu.
  struct ElScope {
    Cpu* cpu;
    ~ElScope() { cpu->el_ = El::kEl2; }
  } scope{this};
  body();
  NEVE_CHECK_MSG(el_ == target_el, "unbalanced EL transitions");
}

uint64_t Cpu::HostLoad(Pa pa) {
  NEVE_CHECK(el_ == El::kEl2);
  Charge(cost_.mem_access);
  return mem_->Read64(pa);
}

void Cpu::HostStore(Pa pa, uint64_t value) {
  NEVE_CHECK(el_ == El::kEl2);
  Charge(cost_.mem_access);
  mem_->Write64(pa, value);
}

uint64_t Cpu::PeekReg(RegId reg) const {
  return regs_[static_cast<size_t>(reg)];
}

void Cpu::PokeReg(RegId reg, uint64_t value) {
  regs_[static_cast<size_t>(reg)] = value;
  InvalidateResolutionsFor(reg);
}

}  // namespace neve
