// The simulated CPU core.
//
// All simulated software -- guest workloads, guest hypervisors and the host
// hypervisor -- executes by calling the operation methods below. Each
// operation charges calibrated cycles (cost_model.h) and consults the
// E2H/NV/NEVE resolution pipeline (trap_rules.h); an operation that must trap
// performs exception entry to EL2 and invokes the installed El2Host
// synchronously, so exit multiplication (the paper's core phenomenon) arises
// from real control flow rather than bookkeeping.
//
// Control-transfer modeling: "entering a guest" is a nested call
// (RunLowerEl), mirroring how KVM's __guest_enter returns on the next exit.
// A trapped operation resumes after its handler returns, exactly like
// hardware resuming at the preferred return address. The C++ call stack
// therefore always mirrors the privilege stack, and unwinds symmetrically.

#ifndef NEVE_SRC_CPU_CPU_H_
#define NEVE_SRC_CPU_CPU_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/arch/el.h"
#include "src/arch/esr.h"
#include "src/arch/features.h"
#include "src/arch/hcr.h"
#include "src/arch/sysreg.h"
#include "src/cpu/cost_model.h"
#include "src/cpu/resolution_cache.h"
#include "src/cpu/trace.h"
#include "src/cpu/trap_rules.h"
#include "src/fault/guest_fault.h"
#include "src/mem/phys_mem.h"
#include "src/obs/attr.h"
#include "src/obs/observability.h"

namespace neve {

class FaultInjector;

namespace snap {
class Serializer;  // src/snap: serializes the register file, TLB and clock
}  // namespace snap

namespace batch {
class BatchEngine;  // src/sim/batch: batched superblock execution
}  // namespace batch

// How a trapped operation completes, decided by the host hypervisor.
struct TrapOutcome {
  enum class Kind : uint8_t {
    kCompleted,  // instruction emulated; reads receive `value`
    kRetry,      // replay the faulting operation (e.g. after S2 fixup)
  };
  Kind kind = Kind::kCompleted;
  uint64_t value = 0;

  static TrapOutcome Completed(uint64_t v = 0) {
    return {.kind = Kind::kCompleted, .value = v};
  }
  static TrapOutcome Retry() { return {.kind = Kind::kRetry}; }
};

class Cpu;

// The EL2 exception vector: implemented by the host hypervisor. Invoked by
// the CPU after exception entry; runs at EL2 and may itself run lower-EL
// software via RunLowerEl (nested VM entry).
class El2Host {
 public:
  virtual ~El2Host() = default;
  virtual TrapOutcome OnTrapToEl2(Cpu& cpu, const Syndrome& syndrome) = 0;
};

// The GICv3 CPU interface, served by the GIC model (hardware-accelerated
// ack/EOI path; see src/gic).
class GicCpuInterface {
 public:
  virtual ~GicCpuInterface() = default;
  virtual uint64_t IccRead(int cpu, RegId reg) = 0;
  virtual void IccWrite(int cpu, RegId reg, uint64_t value) = 0;
};

class Cpu {
 public:
  Cpu(int index, ArchFeatures features, const CostModel& cost, PhysMem* mem);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // --- wiring -----------------------------------------------------------
  void SetEl2Host(El2Host* host) { host_ = host; }
  void SetGicCpuInterface(GicCpuInterface* gic) { gic_ = gic; }
  // Machine-wide observability layer (metrics + tracer); may stay null for
  // bare CPUs built outside a Machine. Hooks are no-ops unless the layer is
  // both present and enabled.
  void SetObservability(Observability* obs) { obs_ = obs; }
  Observability* obs() const { return obs_; }
  // Machine-wide fault injector (src/fault); may stay null. Injection sites
  // are no-ops unless the injector is both present and armed (FaultActive).
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }
  FaultInjector* fault() const { return fault_; }
  // Machine-wide cycle attribution (src/obs/attr.h); may stay null for bare
  // CPUs built outside a Machine. When attached, every Charge lands in the
  // CPU's current attribution frame; the CPU must have been AttachCpu()d
  // first.
  void SetAttribution(CycleAttribution* attr) { attr_ = attr; }
  CycleAttribution* attribution() const { return attr_; }

  // --- trap-livelock watchdog -------------------------------------------
  // When nonzero, the next trap taken at or past this cycle count raises a
  // confined guest fault ("watchdog") instead of dispatching to the host.
  // Armed by HostKvm::RunVcpu from MachineConfig::fault.watchdog_budget; the
  // check only fires on guest-context traps, so it unwinds to the VM entry
  // point that armed it.
  uint64_t watchdog_deadline() const { return watchdog_deadline_; }
  void SetWatchdogDeadline(uint64_t deadline) {
    watchdog_deadline_ = deadline;
  }

  // The complementary check for livelocks that never trap: a guest spinning
  // on compute or ordinary memory accesses (e.g. waiting on a flag that a
  // dropped interrupt will never set) burns cycles without ever reaching
  // the trap-entry check above. Called from guest-context Compute/LoadVa/
  // StoreVa; inert at EL2 (host emulation work is bounded by construction)
  // and when no deadline is armed.
  void WatchdogCheckGuestSpin() {
    if (watchdog_deadline_ != 0 && el_ != El::kEl2 &&
        cycles_ >= watchdog_deadline_) {
      watchdog_deadline_ = 0;
      RaiseGuestFault("watchdog",
                      "trap-livelock watchdog: cycle budget exhausted inside "
                      "one VM entry (compute/memory spin, no trap)");
    }
  }

  int index() const { return index_; }
  const ArchFeatures& features() const { return features_; }
  const CostModel& cost() const { return cost_; }
  PhysMem& mem() { return *mem_; }

  // --- clock & trace ------------------------------------------------------
  uint64_t cycles() const { return cycles_; }
  void AdvanceTo(uint64_t cycle_count);  // cross-CPU rendezvous (sim layer)
  CpuTrace& trace() { return trace_; }

  El current_el() const { return el_; }

  // =======================================================================
  // Software-visible operations (cycle charged, may trap)
  // =======================================================================

  uint64_t SysRegRead(SysReg enc);
  void SysRegWrite(SysReg enc, uint64_t value);

  // CurrentEL special register, with the ARMv8.3-NV disguise.
  El ReadCurrentEl();

  // hvc #imm. Only meaningful below EL2 (EL3 is not modeled).
  void Hvc(uint16_t imm);

  // eret executed by a deprivileged guest hypervisor (virtual EL2). Under
  // ARMv8.3-NV this traps to the host hypervisor, which switches contexts and
  // runs the nested VM; the call returns when control next reaches this
  // context (the host delivered a virtual exception back to virtual EL2) or
  // when the nested workload finished.
  void EretFromVirtualEl2();

  // An asynchronous interrupt arrives while this guest executes: with
  // HCR_EL2.IMO the hardware routes it to EL2 (an IRQ exit). Called by
  // device models / the app-workload driver at instruction boundaries.
  void TakeIrq(uint32_t intid);

  // wfi (may trap with HCR_EL2.TWI).
  void Wfi();

  // Barriers (isb/dsb): cost only.
  void Barrier();

  // TLB invalidate: drops the TLB and charges a barrier-ish cost. When the
  // host armed trap_tlbi (SMP guests whose shadow Stage-2 must be kept
  // coherent across vCPUs), a guest-context TLBI traps to EL2 first so the
  // host can broadcast the shadow invalidation; the local drop and charge
  // happen after the handler returns, like any other trapped instruction.
  void TlbiAll();

  // Host control over guest TLBI trapping (HCR_EL2.TTLB in spirit; kept out
  // of the HCR bits so existing guest HCR images stay valid). Armed by
  // SwitchIntoGuest for virtual-EL2 VMs, cleared on the way out.
  void SetTrapTlbi(bool trap) { trap_tlbi_ = trap; }
  bool trap_tlbi() const { return trap_tlbi_; }

  // Simulator-side TLB drop with no cycle charge: the host broadcasts a
  // sibling CPU's shootdown (the IPI + flush costs are charged by the
  // hypervisor emulation, not re-charged here).
  void DropTlb() { tlb_.clear(); }

  // Generic software work worth `cycles` cycles (straight-line code between
  // the architecturally interesting instructions).
  void Compute(uint32_t cycles);

  // Memory access through the active translation regime(s): Stage-1 when
  // SCTLR_EL1.M is set (EL0/EL1), Stage-2 when HCR_EL2.VM is set and the CPU
  // is below EL2. Stage-2 faults trap to EL2 (data abort, HPFAR set); the
  // host either fixes the mapping (retry) or emulates MMIO (complete).
  uint64_t LoadVa(Va va);
  void StoreVa(Va va, uint64_t value);

  // =======================================================================
  // Host-only operations (real EL2)
  // =======================================================================

  // Enters lower-EL software: charges the eret, switches to `target_el`,
  // runs `body`, and restores EL2 on return. `body` returning models the
  // final teardown of that software context (benchmark finished); mid-run
  // exits are handled inside trapped operations and do not unwind.
  void RunLowerEl(El target_el, const std::function<void()>& body);

  // Direct physical memory access by host hypervisor code (its VA==PA).
  uint64_t HostLoad(Pa pa);
  void HostStore(Pa pa, uint64_t value);

  // Raw register-file access for state save/restore by the *simulator* (not
  // cycle-charged; hypervisor code must use SysRegRead/Write instead).
  uint64_t PeekReg(RegId reg) const;
  void PokeReg(RegId reg, uint64_t value);

  // The access context software currently executes under (for tests and the
  // trap_explorer example).
  AccessContext CurrentAccessContext() const;

  // Order-stable digest of the architectural CPU state: the full backing
  // register file plus the current EL. Cycle counts are deliberately *not*
  // mixed in -- callers that need cycle identity (the resolution-cache
  // differential oracle) compare cycles() separately so a digest mismatch
  // always means a register/EL divergence. Simulator-side caches (TLB,
  // resolution cache) are invisible to this digest by design: they must
  // never change architectural state, which is exactly what the fuzz
  // oracles use this hook to prove.
  uint64_t ArchStateDigest() const;

  // The sysreg resolution fast-path cache (resolution_cache.h). Exposed so
  // tests and benches can read its counters or disable it (the uncached
  // variant in simcore_gbench, the differential checks in archlint).
  ResolutionCache& resolution_cache() { return rcache_; }
  const ResolutionCache& resolution_cache() const { return rcache_; }

 private:
  struct TlbEntry {
    uint64_t pa_page = 0;
    bool writable = false;
  };
  struct TlbKey {
    uint64_t va_page;
    uint64_t s1_root;
    uint64_t s2_root;
    bool operator==(const TlbKey&) const = default;
  };
  struct TlbKeyHash {
    size_t operator()(const TlbKey& k) const {
      return std::hash<uint64_t>()(k.va_page * 0x9E3779B97F4A7C15ull ^
                                   k.s1_root ^ (k.s2_root << 1));
    }
  };

  Hcr hcr() const { return Hcr{regs_[static_cast<size_t>(RegId::kHCR_EL2)]}; }
  bool VncrEnabled() const;
  Pa VncrPage() const;

  // SysRegRead/Write resolution through the fast-path cache (or the full
  // tree walk when the cache is disabled).
  AccessResolution ResolveCached(SysReg enc, bool is_write);

  // Re-keys the resolution cache when a configuration register the
  // resolution pipeline reads was written (HCR_EL2, VNCR_EL2). Call *after*
  // the store: the cache banks are tagged with the post-write values, so a
  // rewrite of identical values costs nothing and the world-switch pattern
  // of toggling between host and guest trap controls flips between two warm
  // banks instead of discarding the cache on every switch.
  void InvalidateResolutionsFor(RegId reg) {
    if (reg == RegId::kHCR_EL2 || reg == RegId::kVNCR_EL2) {
      rcache_.OnConfigChange(regs_[static_cast<size_t>(RegId::kHCR_EL2)],
                             regs_[static_cast<size_t>(RegId::kVNCR_EL2)]);
    }
  }

  // Exception entry to EL2 + host dispatch + return. Returns the outcome.
  TrapOutcome TakeTrapToEl2(const Syndrome& s, uint32_t detect_cost);

  // Address translation for LoadVa/StoreVa. On success fills pa; on Stage-2
  // fault fills the syndrome for the trap. Stage-1 faults are modeling
  // errors (guests premap their address spaces) and panic.
  bool TranslateVa(Va va, bool is_write, Pa* pa, Syndrome* fault);

  // The only mutation points of cycles_ are Charge and AdvanceTo; both
  // attribute, which is what makes the cycles-conserved invariant (sum of
  // attribution buckets == sum of CPU clocks) hold by construction.
  void Charge(uint32_t cycles) {
    cycles_ += cycles;
    if (attr_ != nullptr) {
      attr_->ChargeCurrent(index_, cycles);
    }
  }

  // Charge to the current frame's context but a specific category, for
  // single-charge sites that are not worth a frame push (VNCR redirects,
  // GIC vCPU-interface accesses).
  void ChargeAttributed(uint32_t cycles, AttrCat cat) {
    cycles_ += cycles;
    if (attr_ != nullptr) {
      attr_->ChargeTo(index_, cat, cycles);
    }
  }

  friend class snap::Serializer;
  // The batch engine (src/sim/batch) replays precompiled resolutions over
  // regs_ directly and applies per-block aggregated charges through
  // Charge/ChargeAttributed -- the same two mutation points, so the
  // cycles-conserved invariant is untouched by batching.
  friend class batch::BatchEngine;

  int index_;             // not-snapshotted: construction identity, verified
  ArchFeatures features_; // not-snapshotted: fixed by MachineConfig
  CostModel cost_;        // not-snapshotted: fixed by MachineConfig
  PhysMem* mem_;          // not-snapshotted: host wiring
  El2Host* host_ = nullptr;           // not-snapshotted: host wiring
  GicCpuInterface* gic_ = nullptr;    // not-snapshotted: host wiring
  Observability* obs_ = nullptr;      // not-snapshotted: host wiring
  FaultInjector* fault_ = nullptr;    // not-snapshotted: host wiring
  CycleAttribution* attr_ = nullptr;  // not-snapshotted: host wiring

  El el_ = El::kEl2;  // verified structurally on snapshot apply
  uint64_t cycles_ = 0;  // single-mutator: snap restore runs quiesced
  // not-snapshotted: cycle-invisible fast path; re-keyed via OnConfigChange
  // after the register file is applied.
  ResolutionCache rcache_;
  uint64_t regs_[kNumRegIds] = {};
  CpuTrace trace_;
  // single-mutator: snap restore rebuilds the TLB while quiesced
  std::unordered_map<TlbKey, TlbEntry, TlbKeyHash> tlb_;
  int trap_depth_ = 0;  // verified structurally on snapshot apply
  uint64_t watchdog_deadline_ = 0;  // single-mutator: snap restore
  bool trap_tlbi_ = false;  // single-mutator: snap restore
};

}  // namespace neve

#endif  // NEVE_SRC_CPU_CPU_H_
