// Resolution fast-path cache: memoizes ResolveSysRegAccess results.
//
// The outcome of a system-register access depends on (encoding, EL,
// direction) plus the machine configuration: the implemented features
// (immutable per CPU), HCR_EL2 and VNCR_EL2. The configuration changes only
// when the host hypervisor writes HCR_EL2 or VNCR_EL2, which is rare
// compared with the millions of sysreg accesses a bench run executes -- so
// steady-state accesses can skip the full E2H/NV/NEVE decision tree and load
// a previously computed AccessResolution from a flat table.
//
// Invalidation is generation-based: every entry is stamped with the
// generation it was filled under, and anything that makes the configuration
// unknown moves to a fresh generation, making stale entries unreachable in
// O(1). On top of that sits a small set of *banks*, one per recently seen
// (HCR_EL2, VNCR_EL2) value pair. The Cpu reports every write (cycle-charged
// or simulator Poke) to those registers via OnConfigChange(); rewriting the
// same values is a no-op, and toggling between a few configurations -- the
// world-switch pattern, where the host flips guest trap controls in and out
// around every trap -- lands back in the still-warm bank for that
// configuration instead of discarding the cache twice per trap. Only a
// genuinely new configuration pays a bank eviction (fresh generation).
// Features never change after construction, so no hook is needed for them.
//
// The fingerprint is the registers' full values, not the subset of bits the
// resolution pipeline currently reads: value-identity can never go stale
// against trap_rules.cc changes, and the cost is only that a write flipping
// an irrelevant bit re-fills a bank it could in principle have kept.
//
// This is a host-side speedup only. Cycle charging, trap behaviour and every
// architectural outcome are unchanged: archlint's SweepResolution runs a
// cached-vs-uncached differential over the full ~200k-cell cross-product,
// and `archlint --dump-matrix` must be byte-identical with the cache on and
// off (tools/ci.sh smoke stage).

#ifndef NEVE_SRC_CPU_RESOLUTION_CACHE_H_
#define NEVE_SRC_CPU_RESOLUTION_CACHE_H_

#include <array>
#include <cstdint>

#include "src/cpu/trap_rules.h"

namespace neve {

class ResolutionCache {
 public:
  static constexpr size_t kNumEls = 3;  // EL0, EL1, EL2
  static constexpr size_t kNumSlots =
      static_cast<size_t>(kNumSysRegs) * kNumEls * 2;
  // Distinct (HCR_EL2, VNCR_EL2) configurations kept warm at once. The
  // steady-state working set is two (host controls, guest controls); four
  // leaves headroom for a second guest or a transient without thrashing.
  static constexpr size_t kNumBanks = 4;

  ResolutionCache() {
    banks_[0].generation = 1;
    banks_[0].tagged = true;  // the reset configuration: HCR = VNCR = 0
  }

  // Hot-path probe: returns the memoized resolution, or nullptr on a miss.
  // Deliberately takes no AccessContext -- a hit must not pay for building
  // one (that construction reads HCR_EL2/VNCR_EL2 and copies the feature
  // set, which on a hit is all wasted work). The caller resolves misses
  // itself and stores the result with Insert().
  const AccessResolution* Lookup(SysReg enc, El el, bool is_write) {
    const Entry& e = banks_[current_].slots[SlotIndex(enc, el, is_write)];
    if (e.generation != banks_[current_].generation) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &e.res;
  }

  // Memoizes a freshly computed resolution under the current generation.
  void Insert(SysReg enc, El el, bool is_write, const AccessResolution& res) {
    Bank& b = banks_[current_];
    Entry& e = b.slots[SlotIndex(enc, el, is_write)];
    e.res = res;
    e.generation = b.generation;
  }

  // Convenience wrapper used by archlint's differential sweeps: one array
  // load on a hit, a full ResolveSysRegAccess walk (then memoized) on a
  // miss. `ctx.el` must match the EL the caller keys with -- the context's
  // feature/HCR/VNCR state is what the current generation stands for.
  const AccessResolution& Resolve(const AccessContext& ctx, SysReg enc,
                                  bool is_write, bool* was_hit = nullptr) {
    if (const AccessResolution* hit = Lookup(enc, ctx.el, is_write)) {
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return *hit;
    }
    if (was_hit != nullptr) {
      *was_hit = false;
    }
    Bank& b = banks_[current_];
    Entry& e = b.slots[SlotIndex(enc, ctx.el, is_write)];
    e.res = ResolveSysRegAccess(ctx, enc, is_write);
    e.generation = b.generation;
    return e.res;
  }

  // Reports the post-write (HCR_EL2, VNCR_EL2) values. Switches to the bank
  // memoized for that configuration (possibly the current one: a rewrite of
  // identical values is a no-op), or recycles the least-recently-used bank
  // under a fresh generation when the configuration is new.
  void OnConfigChange(uint64_t hcr, uint64_t vncr) {
    ++tick_;
    Bank& cur = banks_[current_];
    if (cur.tagged && cur.hcr == hcr && cur.vncr == vncr) {
      cur.last_used = tick_;
      return;
    }
    for (size_t i = 0; i < kNumBanks; ++i) {
      Bank& b = banks_[i];
      if (b.tagged && b.hcr == hcr && b.vncr == vncr) {
        b.last_used = tick_;
        current_ = i;
        ++revalidations_;
        return;
      }
    }
    size_t victim = 0;
    for (size_t i = 1; i < kNumBanks; ++i) {
      if (banks_[i].last_used < banks_[victim].last_used) {
        victim = i;
      }
    }
    Bank& b = banks_[victim];
    b.hcr = hcr;
    b.vncr = vncr;
    b.tagged = true;
    b.last_used = tick_;
    b.generation = ++next_generation_;
    current_ = victim;
    ++invalidations_;
  }

  // Drops every memoized resolution in O(1): the current bank moves to a
  // fresh generation and every bank's configuration tag is cleared, so
  // nothing can revalidate by fingerprint either. This is the blunt hammer
  // for callers that change configuration without going through
  // OnConfigChange (archlint's sweeps build AccessContexts directly).
  void Invalidate() {
    for (Bank& b : banks_) {
      b.tagged = false;
    }
    banks_[current_].generation = ++next_generation_;
    ++invalidations_;
  }

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // The current bank's generation: a value-identity fingerprint of the live
  // (HCR_EL2, VNCR_EL2) configuration, moved by every OnConfigChange to a
  // genuinely new configuration and *restored* when a warm one returns. The
  // batch engine (src/sim/batch) keys compiled superblocks on it, which is
  // how "invalidate formed blocks on any trap-config write" reuses this
  // cache's generation machinery instead of growing its own. Maintained
  // even with the cache disabled (OnConfigChange is called unconditionally).
  uint64_t config_generation() const { return banks_[current_].generation; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t revalidations() const { return revalidations_; }

 private:
  struct Entry {
    uint64_t generation = 0;  // valid iff == owning bank's generation
    AccessResolution res;
  };

  struct Bank {
    std::array<Entry, kNumSlots> slots = {};
    uint64_t hcr = 0;
    uint64_t vncr = 0;
    uint64_t generation = 0;
    uint64_t last_used = 0;
    bool tagged = false;  // hcr/vncr identify a real configuration
  };

  static size_t SlotIndex(SysReg enc, El el, bool is_write) {
    return (static_cast<size_t>(enc) * kNumEls + static_cast<size_t>(el)) * 2 +
           (is_write ? 1 : 0);
  }

  // not-snapshotted: the whole cache is a cycle-invisible fast path,
  // rebuilt via InvalidateResolutionsFor/OnConfigChange after restore.
  std::array<Bank, kNumBanks> banks_ = {};
  size_t current_ = 0;  // not-snapshotted: see banks_
  // Generations start at 1 so zero-initialized entries are stale in every
  // bank; bank 0 owns generation 1 from the start and is tagged with the
  // reset configuration (HCR_EL2 = VNCR_EL2 = 0), matching a fresh Cpu.
  uint64_t next_generation_ = 1;  // not-snapshotted: see banks_
  uint64_t tick_ = 0;             // not-snapshotted: see banks_
  uint64_t hits_ = 0;             // not-snapshotted: host-side metric
  uint64_t misses_ = 0;           // not-snapshotted: host-side metric
  uint64_t invalidations_ = 0;    // not-snapshotted: host-side metric
  uint64_t revalidations_ = 0;    // not-snapshotted: host-side metric
  bool enabled_ = true;  // not-snapshotted: fixed by MachineConfig
};

}  // namespace neve

#endif  // NEVE_SRC_CPU_RESOLUTION_CACHE_H_
