#include "src/cpu/trace.h"

#include <cstdio>
#include <sstream>

namespace neve {

std::string CpuTrace::AttributionReport() const {
  const char* names[kNumClasses] = {"hvc/smc", "sysreg",      "eret",
                                    "aborts",  "interrupts", "other"};
  uint64_t total = total_attributed_cycles();
  std::ostringstream oss;
  oss << "  cycles by trap class (outermost episodes):\n";
  for (int i = 0; i < kNumClasses; ++i) {
    if (cycles_by_class_[i] == 0) {
      continue;
    }
    double pct = total != 0
                     ? 100.0 * static_cast<double>(cycles_by_class_[i]) /
                           static_cast<double>(total)
                     : 0.0;
    char line[96];
    std::snprintf(line, sizeof(line), "    %-11s %12llu  (%5.1f%%)\n",
                  names[i],
                  static_cast<unsigned long long>(cycles_by_class_[i]), pct);
    oss << line;
  }
  return oss.str();
}

std::string CpuTrace::Dump() const {
  std::ostringstream oss;
  for (const TrapRecord& r : records_) {
    oss << "  #" << r.sequence << " @" << r.cycles_at_entry << "cyc  "
        << r.syndrome.ToString() << "\n";
  }
  oss << "  total traps to EL2: " << traps_to_el2_ << " (sysreg "
      << sysreg_traps_ << ", hvc " << hvc_traps_ << ", eret " << eret_traps_
      << ", abort " << abort_traps_ << ", irq " << irq_exits_ << ")\n";
  return oss.str();
}

}  // namespace neve
