// Execution trace and trap accounting.
//
// Table 7 of the paper reports *traps to the host hypervisor* per
// microbenchmark operation; section 5 narrates individual exit-multiplication
// traces. The trace records every exception taken to (real) EL2 with its
// syndrome, plus coarse counters, so benches and examples can reproduce both.

#ifndef NEVE_SRC_CPU_TRACE_H_
#define NEVE_SRC_CPU_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/esr.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes counters and recorded traps
}  // namespace snap

struct TrapRecord {
  uint64_t sequence = 0;  // monotonically increasing per CPU
  Syndrome syndrome;
  uint64_t cycles_at_entry = 0;
};

class CpuTrace {
 public:
  // When detailed recording is off, only counters are maintained (benches
  // run millions of ops; keeping full records would be wasteful).
  void set_record_details(bool on) { record_details_ = on; }

  void OnTrapToEl2(const Syndrome& s, uint64_t cycles) {
    ++traps_to_el2_;
    switch (s.ec) {
      case Ec::kHvc64:
        ++hvc_traps_;
        break;
      case Ec::kSysReg:
        ++sysreg_traps_;
        break;
      case Ec::kEretTrap:
        ++eret_traps_;
        break;
      case Ec::kDataAbortLow:
        ++abort_traps_;
        break;
      case Ec::kIrq:
        ++irq_exits_;
        break;
      default:
        break;
    }
    if (record_details_) {
      records_.push_back(
          {.sequence = traps_to_el2_, .syndrome = s, .cycles_at_entry = cycles});
    }
  }

  // Attributes `cycles` of handling time to exception class `ec`. The CPU
  // calls this for outermost traps only, so nested handling (a guest
  // hypervisor's emulation traps inside a forwarded exit) rolls up into the
  // class that started the episode.
  void AttributeCycles(Ec ec, uint64_t cycles) {
    cycles_by_class_[ClassIndex(ec)] += cycles;
  }

  uint64_t cycles_for(Ec ec) const { return cycles_by_class_[ClassIndex(ec)]; }
  uint64_t total_attributed_cycles() const {
    uint64_t sum = 0;
    for (uint64_t c : cycles_by_class_) {
      sum += c;
    }
    return sum;
  }

  void Reset() {
    traps_to_el2_ = 0;
    hvc_traps_ = 0;
    sysreg_traps_ = 0;
    eret_traps_ = 0;
    abort_traps_ = 0;
    irq_exits_ = 0;
    records_.clear();
    cycles_by_class_.fill(0);
  }

  uint64_t traps_to_el2() const { return traps_to_el2_; }
  uint64_t hvc_traps() const { return hvc_traps_; }
  uint64_t sysreg_traps() const { return sysreg_traps_; }
  uint64_t eret_traps() const { return eret_traps_; }
  uint64_t abort_traps() const { return abort_traps_; }
  uint64_t irq_exits() const { return irq_exits_; }

  const std::vector<TrapRecord>& records() const { return records_; }

  // Multi-line rendering of the recorded trace (examples/nested_boot).
  std::string Dump() const;

  // "Where the cycles went": per-exception-class handling time.
  std::string AttributionReport() const;

 private:
  friend class snap::Serializer;

  static constexpr int kNumClasses = 6;
  static int ClassIndex(Ec ec) {
    switch (ec) {
      case Ec::kHvc64:
      case Ec::kSmc64:
        return 0;
      case Ec::kSysReg:
        return 1;
      case Ec::kEretTrap:
        return 2;
      case Ec::kDataAbortLow:
      case Ec::kInstAbortLow:
        return 3;
      case Ec::kIrq:
        return 4;
      default:
        return 5;
    }
  }

  bool record_details_ = false;  // single-mutator: snap restore
  uint64_t traps_to_el2_ = 0;  // single-mutator: snap restore
  uint64_t hvc_traps_ = 0;  // single-mutator: snap restore
  uint64_t sysreg_traps_ = 0;  // single-mutator: snap restore
  uint64_t eret_traps_ = 0;  // single-mutator: snap restore
  uint64_t abort_traps_ = 0;  // single-mutator: snap restore
  uint64_t irq_exits_ = 0;  // single-mutator: snap restore
  std::vector<TrapRecord> records_;
  std::array<uint64_t, kNumClasses> cycles_by_class_ = {};
};

}  // namespace neve

#endif  // NEVE_SRC_CPU_TRACE_H_
