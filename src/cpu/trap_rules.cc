#include "src/cpu/trap_rules.h"

#include "src/base/status.h"

namespace neve {
namespace {

// Resolution for an access executed at (real) EL2.
AccessResolution ResolveAtEl2(const AccessContext& ctx, SysReg enc) {
  RegId storage = SysRegStorage(enc);
  switch (SysRegEncKind(enc)) {
    case EncKind::kEl12:
    case EncKind::kEl02:
      // VHE aliases reach the EL1/EL0 storage, but only with E2H set.
      if (!ctx.features.vhe || !ctx.hcr.e2h()) {
        return AccessResolution::Undefined();
      }
      return AccessResolution::Register(storage);
    case EncKind::kDirect:
      break;
  }
  if (IsGicCpuInterfaceReg(storage)) {
    return AccessResolution::GicCpuIf(storage);
  }
  // E2H redirection: EL1-encoded accesses at VHE EL2 touch the EL2
  // counterpart, letting an unmodified OS kernel run in EL2 (section 2).
  if (ctx.features.vhe && ctx.hcr.e2h() && RegOwnerEl(storage) != El::kEl2) {
    if (std::optional<RegId> el2 = El2CounterpartOf(storage); el2.has_value()) {
      return AccessResolution::Register(*el2);
    }
  }
  return AccessResolution::Register(storage);
}

// NEVE treatment of an access to `storage` from virtual EL2 (paper 6.1).
// The ablation switches in ArchFeatures can disable each mechanism, falling
// back to plain NV trapping for the registers it covers.
AccessResolution ResolveNeve(const AccessContext& ctx, RegId storage,
                             bool is_write) {
  const ArchFeatures& f = ctx.features;
  switch (RegNeveClass(storage)) {
    case NeveClass::kDeferred:
      return f.neve_deferred ? AccessResolution::Memory(storage)
                             : AccessResolution::TrapEl2();
    case NeveClass::kRedirect:
    case NeveClass::kRedirectVhe:
      // (The VHE rows were added by v8.1; NEVE hardware implies v8.1+, so
      // the EL1 counterpart always exists.)
      return f.neve_redirect
                 ? AccessResolution::Register(*RegRedirectTarget(storage))
                 : AccessResolution::TrapEl2();
    case NeveClass::kTrapOnWrite:
      if (is_write || !f.neve_cached) {
        return AccessResolution::TrapEl2();
      }
      return AccessResolution::Memory(storage);
    case NeveClass::kRedirectOrTrap:
      // VHE guest hypervisors (vE2H=1, run with NV1 clear) see the VHE
      // register format, identical to EL1's: redirect. Non-VHE guests use
      // the incompatible EL2 format: cached reads, trapped writes.
      if (!ctx.hcr.nv1()) {
        return f.neve_redirect
                   ? AccessResolution::Register(*RegRedirectTarget(storage))
                   : AccessResolution::TrapEl2();
      }
      if (is_write || !f.neve_cached) {
        return AccessResolution::TrapEl2();
      }
      return AccessResolution::Memory(storage);
    case NeveClass::kGicCached:
      if (is_write || !f.neve_cached) {
        return AccessResolution::TrapEl2();
      }
      return AccessResolution::Memory(storage);
    case NeveClass::kTimerTrap:
      // Hardware updates these; reads must see live values (section 6.1).
      return AccessResolution::TrapEl2();
    case NeveClass::kNone:
      return AccessResolution::TrapEl2();
  }
  return AccessResolution::TrapEl2();
}

// Resolution for an access executed at EL1 (or EL0 for EL0 registers).
AccessResolution ResolveAtEl01(const AccessContext& ctx, SysReg enc,
                               bool is_write) {
  RegId storage = SysRegStorage(enc);
  bool nv = ctx.features.nv && ctx.hcr.nv();
  bool neve = ctx.features.neve && nv && ctx.vncr_enabled;

  // EL2-only encodings (including the *_EL12/*_EL02 aliases, which require
  // EL2 + E2H on real hardware).
  if (SysRegMinEl(enc) == El::kEl2) {
    if (!nv) {
      // ARMv8.0/8.1: a deprivileged hypervisor's EL2 access is UNDEFINED --
      // the crash scenario from section 2.
      return AccessResolution::Undefined();
    }
    if (!neve) {
      return AccessResolution::TrapEl2();  // plain ARMv8.3 NV
    }
    switch (SysRegEncKind(enc)) {
      case EncKind::kEl12:
        // VHE guest hypervisor saving/restoring its VM's EL1 context: all
        // EL12 targets are Table 3 VM registers -> deferred page.
        return ctx.features.neve_deferred ? AccessResolution::Memory(storage)
                                          : AccessResolution::TrapEl2();
      case EncKind::kEl02:
        // EL02 timer accesses always trap, even under NEVE (section 7.1):
        // the EL1 virtual timer is live hardware while the guest hypervisor
        // runs.
        return AccessResolution::TrapEl2();
      case EncKind::kDirect:
        return ResolveNeve(ctx, storage, is_write);
    }
    return AccessResolution::TrapEl2();
  }

  // GIC CPU interface: hardware-accelerated for VM ack/EOI, but SGI
  // generation is emulated by the hypervisor (it must translate target CPU
  // lists), so ICC_SGI1R writes trap out of VM context.
  if (IsGicCpuInterfaceReg(storage)) {
    if (storage == RegId::kICC_SGI1R_EL1 && ctx.hcr.imo()) {
      return AccessResolution::TrapEl2();
    }
    return AccessResolution::GicCpuIf(storage);
  }

  // EL1/EL0 encodings. At virtual EL2 with NV1 (non-VHE guest hypervisor),
  // VM-register accesses would clobber the guest hypervisor's own execution
  // context (section 4) and therefore trap -- or, under NEVE, go to the
  // deferred page (Table 3). Trap-on-write registers (MDSCR_EL1) keep their
  // cached-read behaviour.
  if (nv && ctx.hcr.nv1() && RegOwnerEl(storage) != El::kEl2) {
    switch (RegNeveClass(storage)) {
      case NeveClass::kDeferred:
        return neve && ctx.features.neve_deferred
                   ? AccessResolution::Memory(storage)
                   : AccessResolution::TrapEl2();
      case NeveClass::kTrapOnWrite:
        if (!neve || is_write || !ctx.features.neve_cached) {
          return AccessResolution::TrapEl2();
        }
        return AccessResolution::Memory(storage);
      default:
        break;
    }
  }

  return AccessResolution::Register(storage);
}

}  // namespace

AccessResolution ResolveSysRegAccess(const AccessContext& ctx, SysReg enc,
                                     bool is_write) {
  NEVE_CHECK(ctx.features.Valid());
  // Reject architecturally impossible directions regardless of EL.
  if ((is_write && SysRegRw(enc) == Rw::kRO) ||
      (!is_write && SysRegRw(enc) == Rw::kWO)) {
    return AccessResolution::Undefined();
  }
  if (ctx.el == El::kEl2) {
    return ResolveAtEl2(ctx, enc);
  }
  // EL0 software may only use EL0 encodings.
  if (ctx.el == El::kEl0 && SysRegMinEl(enc) != El::kEl0) {
    return AccessResolution::Undefined();
  }
  return ResolveAtEl01(ctx, enc, is_write);
}

EretResolution ResolveEret(const AccessContext& ctx) {
  if (ctx.el == El::kEl0) {
    // eret is a privileged instruction: UNDEFINED at EL0 on every
    // architecture generation, with or without NV -- HCR_EL2.NV redefines
    // EL1 behaviour only.
    return EretResolution::kUndefined;
  }
  if (ctx.el != El::kEl2 && ctx.features.nv && ctx.hcr.nv()) {
    return EretResolution::kTrapEl2;
  }
  return EretResolution::kLocal;
}

El ResolveCurrentEl(const AccessContext& ctx) {
  if (ctx.el == El::kEl1 && ctx.features.nv && ctx.hcr.nv()) {
    // The NV disguise: a deprivileged guest hypervisor believes it is in EL2.
    return El::kEl2;
  }
  return ctx.el;
}

std::optional<RegId> El2CounterpartOf(RegId el1_reg) {
  switch (el1_reg) {
    case RegId::kSCTLR_EL1:
      return RegId::kSCTLR_EL2;
    case RegId::kTTBR0_EL1:
      return RegId::kTTBR0_EL2;
    case RegId::kTTBR1_EL1:
      return RegId::kTTBR1_EL2;
    case RegId::kTCR_EL1:
      return RegId::kTCR_EL2;
    case RegId::kESR_EL1:
      return RegId::kESR_EL2;
    case RegId::kFAR_EL1:
      return RegId::kFAR_EL2;
    case RegId::kAFSR0_EL1:
      return RegId::kAFSR0_EL2;
    case RegId::kAFSR1_EL1:
      return RegId::kAFSR1_EL2;
    case RegId::kMAIR_EL1:
      return RegId::kMAIR_EL2;
    case RegId::kAMAIR_EL1:
      return RegId::kAMAIR_EL2;
    case RegId::kCONTEXTIDR_EL1:
      return RegId::kCONTEXTIDR_EL2;
    case RegId::kVBAR_EL1:
      return RegId::kVBAR_EL2;
    case RegId::kELR_EL1:
      return RegId::kELR_EL2;
    case RegId::kSPSR_EL1:
      return RegId::kSPSR_EL2;
    case RegId::kCPACR_EL1:
      return RegId::kCPTR_EL2;
    case RegId::kCNTKCTL_EL1:
      return RegId::kCNTHCTL_EL2;
    case RegId::kCNTV_CTL_EL0:
      return RegId::kCNTHV_CTL_EL2;
    case RegId::kCNTV_CVAL_EL0:
      return RegId::kCNTHV_CVAL_EL2;
    case RegId::kCNTP_CTL_EL0:
      return RegId::kCNTHP_CTL_EL2;
    case RegId::kCNTP_CVAL_EL0:
      return RegId::kCNTHP_CVAL_EL2;
    default:
      return std::nullopt;
  }
}

bool IsGicCpuInterfaceReg(RegId reg) {
  switch (reg) {
    case RegId::kICC_IAR1_EL1:
    case RegId::kICC_EOIR1_EL1:
    case RegId::kICC_DIR_EL1:
    case RegId::kICC_PMR_EL1:
    case RegId::kICC_BPR1_EL1:
    case RegId::kICC_IGRPEN1_EL1:
    case RegId::kICC_CTLR_EL1:
    case RegId::kICC_HPPIR1_EL1:
    case RegId::kICC_SGI1R_EL1:
      return true;
    default:
      return false;
  }
}

}  // namespace neve
