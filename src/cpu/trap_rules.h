// System-register access resolution: the E2H / NV / NEVE pipeline.
//
// Given an access encoding, the current exception level, and the hardware
// configuration (HCR_EL2 bits, VNCR_EL2, implemented features), decide what
// the access does. This one function captures the architectural story the
// paper tells:
//
//   ARMv8.0  EL2 encodings are UNDEFINED at EL1  -> guest hypervisors crash
//   ARMv8.1  VHE: E2H redirection at EL2, *_EL12/*_EL02 aliases
//   ARMv8.3  NV: EL2 encodings (and, with NV1, the EL1 VM-register
//            encodings) trap from EL1 to EL2; CurrentEL reads EL2
//   NEVE     VNCR_EL2-driven redirection: deferred page, EL1-register
//            redirection, cached copies (Tables 3-5)

#ifndef NEVE_SRC_CPU_TRAP_RULES_H_
#define NEVE_SRC_CPU_TRAP_RULES_H_

#include <cstdint>
#include <optional>

#include "src/arch/el.h"
#include "src/arch/features.h"
#include "src/arch/hcr.h"
#include "src/arch/sysreg.h"

namespace neve {

struct AccessContext {
  ArchFeatures features;
  El el = El::kEl2;
  Hcr hcr;            // hardware HCR_EL2 value
  bool vncr_enabled = false;  // hardware VNCR_EL2.Enable (NEVE active)
};

struct AccessResolution {
  enum class Kind : uint8_t {
    kRegister,   // access backing register `target`
    kGicCpuIf,   // ICC_* access served by the GIC virtual CPU interface
    kMemory,     // NEVE: redirected to deferred access page at `mem_offset`
    kTrapEl2,    // trap to EL2
    kUndefined,  // UNDEFINED at this EL / configuration
  };

  Kind kind = Kind::kUndefined;
  RegId target = RegId::kNumRegIds;
  uint64_t mem_offset = 0;

  static AccessResolution Register(RegId reg) {
    return {.kind = Kind::kRegister, .target = reg};
  }
  static AccessResolution GicCpuIf(RegId reg) {
    return {.kind = Kind::kGicCpuIf, .target = reg};
  }
  static AccessResolution Memory(RegId reg) {
    return {.kind = Kind::kMemory,
            .target = reg,
            .mem_offset = DeferredPageOffset(reg)};
  }
  static AccessResolution TrapEl2() { return {.kind = Kind::kTrapEl2}; }
  static AccessResolution Undefined() { return {.kind = Kind::kUndefined}; }
};

// Resolves a system-register access.
AccessResolution ResolveSysRegAccess(const AccessContext& ctx, SysReg enc,
                                     bool is_write);

// Resolves the eret instruction: executes locally, traps to EL2 (NV), or is
// undefined in the current context. eret at EL0 is always UNDEFINED -- NV
// trapping only covers EL1 (a deprivileged guest hypervisor), never user
// space.
enum class EretResolution : uint8_t { kLocal, kTrapEl2, kUndefined };
EretResolution ResolveEret(const AccessContext& ctx);

// CurrentEL as seen by software (the NV disguise: a deprivileged guest
// hypervisor reads EL2).
El ResolveCurrentEl(const AccessContext& ctx);

// The EL2 register an EL1-encoded access is redirected to at E2H EL2
// (ARMv8.1 VHE), when one exists.
std::optional<RegId> El2CounterpartOf(RegId el1_reg);

// True when the backing register is part of the GICv3 CPU interface (ICC_*),
// which the CPU routes to the GIC model rather than plain storage.
bool IsGicCpuInterfaceReg(RegId reg);

}  // namespace neve

#endif  // NEVE_SRC_CPU_TRAP_RULES_H_
