#include "src/fault/fault.h"

#include <cinttypes>
#include <cstdio>

namespace neve {

const char* FaultPointName(FaultPoint p) {
  switch (p) {
    case FaultPoint::kShadowS2TranslationFault:
      return "shadow_s2.translation_fault";
    case FaultPoint::kShadowS2ExternalAbort:
      return "s2.external_abort";
    case FaultPoint::kGicSpuriousIrq:
      return "gic.spurious_irq";
    case FaultPoint::kGicDroppedIrq:
      return "gic.dropped_irq";
    case FaultPoint::kGicMisroutedIrq:
      return "gic.misrouted_irq";
    case FaultPoint::kVncrCorruption:
      return "vncr.corruption";
    case FaultPoint::kVncrStale:
      return "vncr.stale_write";
    case FaultPoint::kVirtioRingCorruption:
      return "virtio.ring_corruption";
    case FaultPoint::kGuestHypPanic:
      return "guest_hyp.panic";
    case FaultPoint::kTrapLoop:
      return "guest_hyp.trap_loop";
    case FaultPoint::kMigrateLinkDrop:
      return "migrate.link_drop";
    case FaultPoint::kMigrateStreamTruncation:
      return "migrate.stream_truncation";
    case FaultPoint::kMigratePageCorruption:
      return "migrate.page_corruption";
    case FaultPoint::kMigrateDestOom:
      return "migrate.dest_oom";
    case FaultPoint::kMigrateSourceCrash:
      return "migrate.source_crash";
    case FaultPoint::kMigrateCommitRace:
      return "migrate.commit_race";
  }
  return "?";
}

bool FaultInjector::ShouldInject(FaultPoint point, int cpu, uint64_t cycles,
                                 uint64_t detail) {
  if (!config_.enabled || (config_.points & FaultPointBit(point)) == 0) {
    return false;
  }
  // An injected trap loop is only survivable with the watchdog armed.
  if (point == FaultPoint::kTrapLoop && config_.watchdog_budget == 0) {
    return false;
  }
  if (config_.rate <= 0.0 || !rng_.NextBool(config_.rate)) {
    return false;
  }
  InjectionRecord rec{.seq = log_.size(),
                      .point = point,
                      .cpu = cpu,
                      .cycles = cycles,
                      .detail = detail,
                      .attr_key = attr_ != nullptr ? attr_->CurrentKey(cpu)
                                                   : kNoAttrKey};
  log_.push_back(rec);
  ++counts_[static_cast<size_t>(point)];
  if (ObsActive(obs_)) {
    obs_->metrics().Counter("fault.injected_total").Add(1);
    obs_->metrics()
        .Counter(std::string("fault.injected.") + FaultPointName(point))
        .Add(1);
    obs_->tracer().Instant(cpu < 0 ? 0 : cpu, "fault", FaultPointName(point),
                           cycles, "detail", detail);
  }
  return true;
}

uint64_t FaultInjector::CorruptBits() {
  uint64_t bits = rng_.Next();
  return bits != 0 ? bits : 0xDEADBEEFDEADBEEFull;
}

std::string FaultInjector::LogText() const {
  std::string out;
  char line[160];
  for (const InjectionRecord& r : log_) {
    snprintf(line, sizeof(line),
             "%" PRIu64 " %s cpu=%d cycles=%" PRIu64 " detail=0x%" PRIx64 "\n",
             r.seq, FaultPointName(r.point), r.cpu, r.cycles, r.detail);
    out += line;
  }
  return out;
}

}  // namespace neve
