// Deterministic, seed-driven fault injection for the simulated machine.
//
// A FaultInjector is owned by each Machine (like the obs layer) and handed to
// the CPU, GIC, shadow-S2 and hypervisor layers, which consult it at *named
// injection points*: places where real hardware or a buggy/malicious guest
// could present the stack with off-nominal state -- a dropped or misrouted
// interrupt, a spurious IAR read, corrupted VNCR page contents, a stale
// shadow Stage-2, a torn virtio ring index, a panicking guest hypervisor.
//
// Determinism contract: the injector draws from one xoshiro256** stream per
// machine, and a machine is single-threaded, so the injection log for a given
// (seed, rate, points, workload) is byte-identical across runs and across any
// bench `--threads=` fan-out (parallel bench cells each own a machine and a
// seed). fault_test.cc asserts this.
//
// Zero-cost contract: every instrumentation site is gated on
// `FaultActive(injector)` -- a null check plus one bool load -- mirroring
// ObsActive. With the injector absent or disabled no RNG draw, no logging and
// no behavioural change happens; tools/chaos.sh byte-compares a disabled run
// against an armed-at-rate-zero run to prove the gates are inert.

#ifndef NEVE_SRC_FAULT_FAULT_H_
#define NEVE_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/obs/attr.h"
#include "src/obs/observability.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: checkpoints the injector's stream and log
}  // namespace snap

// Every named injection point in the stack. Keep FaultPointName() and
// kNumFaultPoints in sync when adding one.
enum class FaultPoint : uint32_t {
  kShadowS2TranslationFault = 0,  // shadow_s2: drop the shadow before fixup
  kShadowS2ExternalAbort,         // host_kvm: synthesized SEA on an S2 fault
  kGicSpuriousIrq,                // gic: IAR read acks nothing, returns 1023
  kGicDroppedIrq,                 // gic: SPI/PPI/SGI silently swallowed
  kGicMisroutedIrq,               // gic: SPI delivered to the wrong CPU
  kVncrCorruption,                // cpu: deferred sysreg read returns flipped bits
  kVncrStale,                     // cpu: deferred sysreg write never lands
  kVirtioRingCorruption,          // virtio: used.idx torn by the backend
  kGuestHypPanic,                 // guest_kvm: the L1 hypervisor panics
  kTrapLoop,                      // guest_kvm: runaway hypercall storm
  // Migration-transport points (src/snap/migrate.cc). These model failures
  // of the migration *machinery*, not of the guest or the machine: they are
  // consulted only by a MigrationEngine and never on a guest execution path,
  // so arming them cannot perturb guest-visible behaviour.
  kMigrateLinkDrop,          // migrate: a pre-copy round's data never arrives
  kMigrateStreamTruncation,  // migrate: stop-copy stream cut short mid-section
  kMigratePageCorruption,    // migrate: bits flipped in a transferred page
  kMigrateDestOom,           // migrate: destination host cannot stage the VM
  kMigrateSourceCrash,       // migrate: source migration task dies mid-round
  kMigrateCommitRace,        // migrate: commit handshake ack lost in flight
};
inline constexpr int kNumFaultPoints = 16;
inline constexpr int kNumGuestFaultPoints = 10;

const char* FaultPointName(FaultPoint p);

// All *guest-path* points armed (the historical "everything" mask; chaos
// campaigns and their golden logs predate the migration points, which live
// behind their own mask below and fire only inside a MigrationEngine).
inline constexpr uint32_t kAllFaultPoints = (1u << kNumGuestFaultPoints) - 1;

// The migration-transport points (everything from kMigrateLinkDrop up).
inline constexpr uint32_t kMigrateFaultPoints =
    ((1u << kNumFaultPoints) - 1) & ~kAllFaultPoints;

inline constexpr uint32_t FaultPointBit(FaultPoint p) {
  return 1u << static_cast<uint32_t>(p);
}

// Per-machine injection campaign parameters (MachineConfig::fault).
struct FaultConfig {
  // Master switch. When false the injector is inert and every gated site
  // reduces to a single branch.
  bool enabled = false;
  // Seed for the deterministic stream. Same seed + same workload => same log.
  uint64_t seed = 0;
  // Per-opportunity injection probability in [0, 1].
  double rate = 0.0;
  // Bitmask of FaultPointBit(); only armed points draw from the stream.
  uint32_t points = kAllFaultPoints;
  // Cycle budget per host RunVcpu entry; when a guest spends more than this
  // many cycles inside one entry the next trap converts into a confined VM
  // kill (trap-livelock watchdog). 0 disables the watchdog. The kTrapLoop
  // point refuses to fire while the watchdog is off -- an injected infinite
  // trap loop with no watchdog would hang the process.
  uint64_t watchdog_budget = 0;
};

// One injected fault, in injection order.
struct InjectionRecord {
  uint64_t seq = 0;      // 0-based injection sequence number
  FaultPoint point = FaultPoint::kShadowS2TranslationFault;
  int cpu = -1;          // simulated CPU at the injection site (-1: none)
  uint64_t cycles = 0;   // that CPU's cycle clock at injection
  uint64_t detail = 0;   // site-specific (intid, IPA, sysreg encoding, ...)
  // Packed attribution key (attr.h) of the CPU's active frame at injection
  // time (kNoAttrKey when no attribution was wired or cpu is -1); says which
  // (vm, layer, category) the fault landed in -- chaos triage reads this via
  // UnpackAttrKey. Deliberately not part of LogText(): the determinism
  // contract compares that string across configurations that may differ only
  // in attribution wiring.
  uint64_t attr_key = kNoAttrKey;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& config) { Configure(config); }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Configure(const FaultConfig& config) {
    config_ = config;
    rng_ = Rng(config.seed);
  }
  const FaultConfig& config() const { return config_; }

  // Wired by Machine; injections are mirrored into fault.* metrics and
  // tracer instants when the obs layer is enabled.
  void SetObservability(Observability* obs) { obs_ = obs; }

  // Wired by Machine; when present, each InjectionRecord is tagged with the
  // injecting CPU's current attribution context (attr_key).
  void SetAttribution(const CycleAttribution* attr) { attr_ = attr; }

  // The cheap gate every site checks first (via FaultActive).
  bool armed() const { return config_.enabled; }
  void set_enabled(bool enabled) { config_.enabled = enabled; }

  // Draws from the stream and decides whether the fault fires at this
  // opportunity; when it does, appends an InjectionRecord. Only call behind
  // FaultActive() -- the draw itself perturbs the deterministic stream.
  bool ShouldInject(FaultPoint point, int cpu, uint64_t cycles,
                    uint64_t detail = 0);

  // A deterministic nonzero 64-bit corruption pattern (for XOR-flipping a
  // value at a corruption site).
  uint64_t CorruptBits();

  // --- reconciliation ----------------------------------------------------
  const std::vector<InjectionRecord>& log() const { return log_; }
  uint64_t count(FaultPoint p) const {
    return counts_[static_cast<size_t>(p)];
  }
  uint64_t total_injections() const { return log_.size(); }

  // One line per injection: "<seq> <point> cpu=<c> cycles=<n> detail=0x<x>".
  // The determinism tests compare this string across runs.
  std::string LogText() const;

 private:
  friend class snap::Serializer;

  FaultConfig config_;      // not-snapshotted: campaign parameters, not state
  Rng rng_{0};
  Observability* obs_ = nullptr;           // not-snapshotted: host wiring
  const CycleAttribution* attr_ = nullptr; // not-snapshotted: host wiring
  std::vector<InjectionRecord> log_;
  uint64_t counts_[kNumFaultPoints] = {};
};

// Mirror of ObsActive: true when fault injection is wired and armed. Sites
// do `if (FaultActive(f) && f->ShouldInject(...))`.
inline bool FaultActive(const FaultInjector* f) {
  return f != nullptr && f->armed();
}

}  // namespace neve

#endif  // NEVE_SRC_FAULT_FAULT_H_
