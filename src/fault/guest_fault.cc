#include "src/fault/guest_fault.h"

namespace neve {

void RaiseGuestFault(const char* kind, std::string reason) {
  throw GuestFaultException(kind, std::move(reason));
}

}  // namespace neve
