// Guest-fault confinement: the mechanism that turns a guest-attributable
// anomaly anywhere in the nested stack into a dead *VM* instead of a dead
// process.
//
// The simulator's C++ call stack mirrors the privilege stack (cpu.h), so the
// natural confinement boundary is stack unwinding: a layer that detects
// guest-corrupted state throws GuestFaultException, which unwinds through
// every nested guest frame -- RAII guards in Cpu::TakeTrapToEl2/RunLowerEl
// keep the EL and trap-depth bookkeeping consistent -- and is caught at the
// host's outermost VM entry point (HostKvm::RunVcpu). The catch handler
// kills the faulting VM, restores the pCPU's host context, records fault.*
// metrics and a tracer instant, and returns an error Status; the machine,
// its other VMs and the bench harness keep running.
//
// Use NEVE_GUEST_CHECK for invariants whose violation a guest can provoke
// (corrupt virtual Stage-2 tables, bogus MMIO, torn virtio rings, unmodeled
// register traffic). Keep NEVE_CHECK -- with a `// host-invariant:`
// justification comment, enforced by srclint -- for conditions only a
// simulator or embedder bug can violate.

#ifndef NEVE_SRC_FAULT_GUEST_FAULT_H_
#define NEVE_SRC_FAULT_GUEST_FAULT_H_

#include <exception>
#include <string>

namespace neve {

class GuestFaultException : public std::exception {
 public:
  GuestFaultException(const char* kind, std::string reason)
      : kind_(kind), reason_(std::move(reason)) {}

  // Short static tag ("watchdog", "unhandled_exit", ...) used for the
  // fault.kill.<kind> metric name; must outlive the exception (string
  // literals only).
  const char* kind() const { return kind_; }
  const std::string& reason() const { return reason_; }
  const char* what() const noexcept override { return reason_.c_str(); }

 private:
  const char* kind_;
  std::string reason_;
};

// Throws GuestFaultException. A free function so call sites read like the
// Panic they replace.
[[noreturn]] void RaiseGuestFault(const char* kind, std::string reason);

// Guest-reachable invariant: violation kills the faulting VM, not the
// process. `kind` must be a string literal.
#define NEVE_GUEST_CHECK(cond, kind, msg)                   \
  do {                                                      \
    if (!(cond)) {                                          \
      ::neve::RaiseGuestFault((kind), (msg));               \
    }                                                       \
  } while (false)

}  // namespace neve

#endif  // NEVE_SRC_FAULT_GUEST_FAULT_H_
