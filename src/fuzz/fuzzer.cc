#include "src/fuzz/fuzzer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>

#include "src/base/parallel.h"
#include "src/base/rng.h"

namespace neve::fuzz {
namespace {

constexpr uint64_t kBatch = 32;
constexpr size_t kMaxInputLen = 256;

uint64_t BytesHash(const std::vector<uint8_t>& bytes) {
  Digest d;
  for (uint8_t b : bytes) {
    d.Mix(b);
  }
  return d.value();
}

// The oracle identifier is the failure string up to the first ':'.
std::string OracleOf(const std::string& failure) {
  return failure.substr(0, failure.find(':'));
}

std::vector<uint8_t> FreshInput(Rng& rng) {
  std::vector<uint8_t> bytes(8 + rng.NextBelow(120));
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return bytes;
}

void MutateOnce(Rng& rng, const std::vector<std::vector<uint8_t>>& corpus,
                std::vector<uint8_t>* b) {
  if (b->empty()) {
    *b = FreshInput(rng);
    return;
  }
  switch (rng.NextBelow(8)) {
    case 0: {  // flip a bit
      size_t i = rng.NextBelow(b->size());
      (*b)[i] ^= uint8_t{1} << rng.NextBelow(8);
      break;
    }
    case 1:  // overwrite a byte
      (*b)[rng.NextBelow(b->size())] = static_cast<uint8_t>(rng.Next());
      break;
    case 2: {  // overwrite a 16-bit field
      size_t i = rng.NextBelow(b->size());
      (*b)[i] = static_cast<uint8_t>(rng.Next());
      if (i + 1 < b->size()) {
        (*b)[i + 1] = static_cast<uint8_t>(rng.Next());
      }
      break;
    }
    case 3: {  // insert a few bytes
      size_t i = rng.NextBelow(b->size() + 1);
      size_t n = 1 + rng.NextBelow(8);
      std::vector<uint8_t> ins(n);
      for (uint8_t& c : ins) {
        c = static_cast<uint8_t>(rng.Next());
      }
      b->insert(b->begin() + i, ins.begin(), ins.end());
      break;
    }
    case 4: {  // erase a range
      size_t i = rng.NextBelow(b->size());
      size_t n = std::min(b->size() - i, 1 + rng.NextBelow(8));
      b->erase(b->begin() + i, b->begin() + i + n);
      break;
    }
    case 5: {  // duplicate a chunk (op-sequence stutter)
      size_t i = rng.NextBelow(b->size());
      size_t n = std::min(b->size() - i, 1 + rng.NextBelow(16));
      std::vector<uint8_t> chunk(b->begin() + i, b->begin() + i + n);
      b->insert(b->begin() + i, chunk.begin(), chunk.end());
      break;
    }
    case 6: {  // splice: replace the tail with another corpus entry's tail
      const std::vector<uint8_t>& other =
          corpus[rng.NextBelow(corpus.size())];
      if (!other.empty()) {
        size_t cut = rng.NextBelow(b->size());
        size_t ocut = rng.NextBelow(other.size());
        b->resize(cut);
        b->insert(b->end(), other.begin() + ocut, other.end());
      }
      break;
    }
    default: {  // append noise (extends the program)
      size_t n = 1 + rng.NextBelow(16);
      for (size_t k = 0; k < n; ++k) {
        b->push_back(static_cast<uint8_t>(rng.Next()));
      }
      break;
    }
  }
  if (b->size() > kMaxInputLen) {
    b->resize(kMaxInputLen);
  }
}

// Greedy chunked shrinking: repeatedly try deleting chunks (halving the
// chunk size down to one byte) while `keep` still accepts the re-run.
std::vector<uint8_t> Shrink(
    std::vector<uint8_t> bytes,
    const std::function<bool(const CaseResult&)>& keep, uint64_t budget,
    uint64_t* execs, CaseResult* last_kept) {
  for (size_t chunk = std::max<size_t>(bytes.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    for (size_t pos = 0; pos + chunk <= bytes.size();) {
      if (bytes.size() <= 1 || budget == 0) {
        return bytes;
      }
      std::vector<uint8_t> cand(bytes);
      cand.erase(cand.begin() + pos, cand.begin() + pos + chunk);
      CaseResult r = RunCase(cand);
      *execs += r.execs;
      --budget;
      if (keep(r)) {
        bytes = std::move(cand);
        if (last_kept != nullptr) {
          *last_kept = std::move(r);
        }
      } else {
        pos += chunk;
      }
    }
    if (chunk == 1) {
      break;
    }
  }
  return bytes;
}

}  // namespace

std::vector<uint8_t> Fuzzer::GenerateInput(uint64_t case_index) const {
  Rng rng(DigestOf(opts_.seed, case_index));
  if (corpus_.empty() || rng.NextBelow(5) == 0) {
    return FreshInput(rng);
  }
  std::vector<uint8_t> bytes = corpus_[rng.NextBelow(corpus_.size())];
  uint64_t n = 1 + rng.NextBelow(4);
  for (uint64_t i = 0; i < n; ++i) {
    MutateOnce(rng, corpus_, &bytes);
  }
  if (bytes.empty()) {
    bytes = FreshInput(rng);
  }
  return bytes;
}

std::vector<uint8_t> Fuzzer::MinimizeFailure(const std::vector<uint8_t>& bytes,
                                             const std::string& failure) {
  std::string oracle = OracleOf(failure);
  return Shrink(
      bytes,
      [&](const CaseResult& r) { return !r.ok && OracleOf(r.failure) == oracle; },
      opts_.minimize_budget, &execs_, nullptr);
}

std::vector<uint8_t> Fuzzer::MinimizeForCoverage(
    const std::vector<uint8_t>& bytes, CaseResult* result) {
  // The bits this input would newly set; shrinking must preserve them all.
  std::set<size_t> target;
  for (uint64_t f : result->features) {
    if (!bitmap_.Test(f)) {
      target.insert(CoverageBitmap::BitIndex(f));
    }
  }
  auto covers = [&](const CaseResult& r) {
    if (!r.ok) {
      return false;
    }
    std::set<size_t> got;
    for (uint64_t f : r.features) {
      got.insert(CoverageBitmap::BitIndex(f));
    }
    return std::includes(got.begin(), got.end(), target.begin(), target.end());
  };
  return Shrink(bytes, covers, opts_.minimize_budget / 4, &execs_, result);
}

std::string Fuzzer::WriteCorpusFile(const char* prefix, uint64_t case_index,
                                    const std::vector<uint8_t>& bytes,
                                    const std::string& comment) {
  std::filesystem::create_directories(opts_.corpus_out);
  char name[80];
  std::snprintf(name, sizeof(name), "%s-%08llu-%016llx.seed", prefix,
                static_cast<unsigned long long>(case_index),
                static_cast<unsigned long long>(BytesHash(bytes)));
  std::string path = opts_.corpus_out + "/" + name;
  WriteSeedFile(path, bytes, comment);
  return path;
}

int Fuzzer::Run(std::ostream& out) {
  out << "[stackfuzz] seed=" << opts_.seed << " runs=" << opts_.runs
      << " corpus=" << (opts_.corpus_out.empty() ? "-" : opts_.corpus_out)
      << "\n";
  bool stop = false;
  uint64_t batches = 0;
  for (uint64_t base = 0; base < opts_.runs && !stop; base += kBatch) {
    uint64_t n = std::min(kBatch, opts_.runs - base);
    // Inputs derive from the corpus as frozen here; RunCase is pure, so the
    // fan-out below cannot observe merge order.
    std::vector<std::vector<uint8_t>> inputs(n);
    for (uint64_t i = 0; i < n; ++i) {
      inputs[i] = GenerateInput(base + i);
    }
    std::vector<CaseResult> results(n);
    ParallelFor(n, opts_.threads,
                [&](size_t i) { results[i] = RunCase(inputs[i]); });
    for (uint64_t i = 0; i < n; ++i) {
      execs_ += results[i].execs;
      ++cases_run_;
      if (!results[i].ok) {
        FailureRecord fr;
        fr.case_index = base + i;
        fr.failure = results[i].failure;
        fr.bytes = MinimizeFailure(inputs[i], results[i].failure);
        if (!opts_.corpus_out.empty()) {
          fr.file = WriteCorpusFile("fail", base + i, fr.bytes, fr.failure);
        }
        failures_.push_back(std::move(fr));
        if (!opts_.keep_going) {
          stop = true;
        }
        continue;
      }
      if (bitmap_.CountNew(results[i].features) == 0) {
        continue;
      }
      std::vector<uint8_t> min = MinimizeForCoverage(inputs[i], &results[i]);
      bitmap_.Merge(results[i].features);
      corpus_.push_back(min);
      if (!opts_.corpus_out.empty()) {
        WriteCorpusFile("cov", base + i, min, "");
      }
    }
    if (++batches % 8 == 0) {
      out << "[stackfuzz] cases=" << cases_run_ << " execs=" << execs_
          << " corpus=" << corpus_.size() << " bits=" << bitmap_.bits_set()
          << " failures=" << failures_.size() << "\n";
    }
  }
  out << "[stackfuzz] done: cases=" << cases_run_ << " execs=" << execs_
      << " corpus=" << corpus_.size() << " bits=" << bitmap_.bits_set()
      << " failures=" << failures_.size() << "\n";
  for (const FailureRecord& fr : failures_) {
    out << "[stackfuzz] FAILURE case " << fr.case_index << " ("
        << fr.bytes.size() << " bytes";
    if (!fr.file.empty()) {
      out << ", " << fr.file;
    }
    out << "):\n  " << fr.failure << "\n";
  }
  return static_cast<int>(failures_.size());
}

void WriteSeedFile(const std::string& path, const std::vector<uint8_t>& bytes,
                   const std::string& comment) {
  std::ofstream f(path, std::ios::trunc);
  f << "# stackfuzz seed v1\n";
  if (!comment.empty()) {
    std::string line;
    for (char c : comment) {
      if (c == '\n') {
        f << "# " << line << "\n";
        line.clear();
      } else {
        line += c;
      }
    }
    if (!line.empty()) {
      f << "# " << line << "\n";
    }
  }
  static const char* kHex = "0123456789abcdef";
  std::string hex;
  for (uint8_t b : bytes) {
    hex += kHex[b >> 4];
    hex += kHex[b & 0xF];
    if (hex.size() >= 64) {
      f << hex << "\n";
      hex.clear();
    }
  }
  if (!hex.empty()) {
    f << hex << "\n";
  }
}

std::optional<std::vector<uint8_t>> LoadSeedFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return std::nullopt;
  }
  std::vector<uint8_t> bytes;
  std::string line;
  int nibble = -1;
  while (std::getline(f, line)) {
    if (!line.empty() && line[0] == '#') {
      continue;
    }
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        continue;
      }
      int v;
      if (c >= '0' && c <= '9') {
        v = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        v = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        v = c - 'A' + 10;
      } else {
        return std::nullopt;
      }
      if (nibble < 0) {
        nibble = v;
      } else {
        bytes.push_back(static_cast<uint8_t>((nibble << 4) | v));
        nibble = -1;
      }
    }
  }
  if (nibble >= 0) {
    return std::nullopt;
  }
  return bytes;
}

bool ReplaySeedFile(const std::string& path, std::ostream& out) {
  std::optional<std::vector<uint8_t>> bytes = LoadSeedFile(path);
  if (!bytes.has_value()) {
    out << path << ": UNREADABLE (not a stackfuzz seed file)\n";
    return false;
  }
  CaseResult r = RunCase(*bytes);
  if (r.ok) {
    out << path << ": OK (" << r.execs << " stack runs)\n";
    return true;
  }
  out << path << ": FAIL\n  " << r.failure << "\n";
  return false;
}

}  // namespace neve::fuzz
