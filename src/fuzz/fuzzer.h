// The coverage-guided campaign engine.
//
// Determinism contract: Run() output (and the corpus/failure files written)
// is a pure function of (seed, runs) -- independent of --threads and of
// wall-clock anything. The engine achieves this by working in fixed-size
// batches: inputs for a batch are generated serially from per-case seeds
// (DigestOf(master_seed, case_index)) against a corpus frozen at the start
// of the batch, the pure RunCase calls fan out across threads, and results
// merge serially in case order (coverage accounting, corpus growth,
// minimization -- itself a sequence of pure re-runs -- and reporting all
// happen on the merge path).

#ifndef NEVE_SRC_FUZZ_FUZZER_H_
#define NEVE_SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/fuzz/harness.h"
#include "src/obs/coverage.h"

namespace neve::fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  uint64_t runs = 1000;          // fuzz cases (each runs 2 or 4 stack variants)
  unsigned threads = 1;
  std::string corpus_out;        // directory for seed files ("" = don't write)
  bool keep_going = false;       // keep fuzzing past the first oracle failure
  uint64_t minimize_budget = 96; // RunCase executions per minimization
};

struct FailureRecord {
  uint64_t case_index = 0;
  std::string failure;
  std::vector<uint8_t> bytes;  // minimized reproducer
  std::string file;            // written seed file ("" when not writing)
};

class Fuzzer {
 public:
  explicit Fuzzer(const FuzzOptions& opts) : opts_(opts) {}

  // Runs the campaign, streaming deterministic progress/report lines to
  // `out`. Returns the number of oracle failures (0 = clean).
  int Run(std::ostream& out);

  const std::vector<FailureRecord>& failures() const { return failures_; }
  uint64_t cases_run() const { return cases_run_; }
  uint64_t execs() const { return execs_; }
  uint64_t corpus_size() const { return corpus_.size(); }
  uint64_t coverage_bits() const { return bitmap_.bits_set(); }

 private:
  std::vector<uint8_t> GenerateInput(uint64_t case_index) const;
  std::vector<uint8_t> MinimizeFailure(const std::vector<uint8_t>& bytes,
                                       const std::string& failure);
  std::vector<uint8_t> MinimizeForCoverage(const std::vector<uint8_t>& bytes,
                                           CaseResult* result);
  std::string WriteCorpusFile(const char* prefix, uint64_t case_index,
                              const std::vector<uint8_t>& bytes,
                              const std::string& comment);

  FuzzOptions opts_;
  CoverageBitmap bitmap_;
  std::vector<std::vector<uint8_t>> corpus_;
  std::vector<FailureRecord> failures_;
  uint64_t cases_run_ = 0;
  uint64_t execs_ = 0;
};

// --- replayable seed files ---------------------------------------------------
// Format: "# stackfuzz seed v1" header, optional "# ..." comment lines, then
// the input bytes in hex (64 chars per line).
void WriteSeedFile(const std::string& path, const std::vector<uint8_t>& bytes,
                   const std::string& comment);
std::optional<std::vector<uint8_t>> LoadSeedFile(const std::string& path);

// Replays one seed file through the oracle matrix; prints "<path>: OK" or
// the failure. Returns true when every oracle passed.
bool ReplaySeedFile(const std::string& path, std::ostream& out);

}  // namespace neve::fuzz

#endif  // NEVE_SRC_FUZZ_FUZZER_H_
