#include "src/fuzz/harness.h"

#include <cstdio>
#include <map>
#include <string_view>

#include "src/arch/hcr.h"
#include "src/base/digest.h"
#include "src/cpu/trap_rules.h"
#include "src/gic/gic.h"
#include "src/obs/coverage.h"
#include "src/sim/batch/batch.h"
#include "src/snap/snapshot.h"
#include "src/workload/stacks.h"

namespace neve::fuzz {
namespace {

using ResKind = AccessResolution::Kind;

std::string Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

const char* KindName(ResKind k) {
  switch (k) {
    case ResKind::kRegister:
      return "register";
    case ResKind::kGicCpuIf:
      return "gic-cpuif";
    case ResKind::kMemory:
      return "deferred-page";
    case ResKind::kTrapEl2:
      return "trap";
    case ResKind::kUndefined:
      return "undefined";
  }
  return "?";
}

// Registers whose read-back the host legitimately rewrites between guest
// instructions: exception frames (virtual exception delivery), stack
// pointers (mode stashing), GIC and timer state (vGIC/timer machinery).
bool GoldenTracked(RegId r) {
  if (IsIchRegister(r)) {
    return false;
  }
  std::string_view name = RegName(r);
  if (name.starts_with("CNT") || name.starts_with("ICC") ||
      name.starts_with("SP_")) {
    return false;
  }
  switch (r) {
    case RegId::kESR_EL1:
    case RegId::kESR_EL2:
    case RegId::kFAR_EL1:
    case RegId::kFAR_EL2:
    case RegId::kELR_EL1:
    case RegId::kELR_EL2:
    case RegId::kSPSR_EL1:
    case RegId::kSPSR_EL2:
    case RegId::kHPFAR_EL2:
    case RegId::kVNCR_EL2:
      return false;
    default:
      return true;
  }
}

// Read values excluded from the cross-architecture digest: live counters and
// timer status bits advance with the cycle clock (which the two
// architectures legitimately disagree on), and GIC CPU-interface reads
// reflect delivery timing. Everything else a guest reads must match.
bool ArchComparableRead(SysReg enc, const AccessResolution& res) {
  if (res.kind == ResKind::kGicCpuIf) {
    return false;
  }
  RegId r = SysRegStorage(enc);
  std::string_view name = RegName(r);
  if (name.starts_with("ICC")) {
    return false;
  }
  switch (r) {
    case RegId::kCNTVCT_EL0:
    case RegId::kCNTPCT_EL0:
    case RegId::kCNTV_CTL_EL0:
    case RegId::kCNTP_CTL_EL0:
    case RegId::kCNTHV_CTL_EL2:
    case RegId::kCNTHP_CTL_EL2:
      return false;
    default:
      return true;
  }
}

// Virtual-EL2 interrupt sink for the mode-A SMP receiver: a vel2 vCPU takes
// cross-vCPU deliveries through its (virtual) EL2 vector, so a receiver with
// only an EL1 IRQ handler would die with no_vel2_vector on the first fan-out
// SGI. Acks and EOIs whatever arrived; the count feeds both digests.
class Vel2IrqSink : public Vel2Handler {
 public:
  explicit Vel2IrqSink(uint64_t* count) : count_(count) {}

  void OnVirtualExit(GuestEnv& env, const Syndrome& s) override {
    if (s.ec != Ec::kIrq) {
      return;
    }
    ++*count_;
    uint64_t iar = env.ReadSys(DirectEncodingOf(RegId::kICC_IAR1_EL1));
    if ((iar & 0xFFFFFFu) != 1023) {
      env.WriteSys(DirectEncodingOf(RegId::kICC_EOIR1_EL1), iar);
    }
  }

 private:
  uint64_t* count_;
};

class Executor {
 public:
  Executor(const Program& p, const VariantSpec& v, RunResult* r)
      : p_(p), v_(v), r_(r), check_(!v.fault.enabled) {
    // Static FuzzOp -> batch-IR translation: op kinds with executor-side
    // semantics (mode-dependent skips, digest side channels, SGI fan-out)
    // become kOpaque, which the engine treats as block enders it never
    // interprets; the rest map 1:1 so TryRunBlock can batch trap-free runs.
    bprog_.ops.reserve(p.ops.size());
    for (const FuzzOp& op : p.ops) {
      bprog_.ops.push_back(TranslateOp(op));
    }
    bprog_.Finalize();
  }

  void Run() {
    if (p_.cfg.nested) {
      RunModeB();
    } else {
      RunModeA();
    }
  }

 private:
  void Prepare(Machine& machine) {
    machine.obs().set_enabled(true);
    for (int i = 0; i < machine.num_cpus(); ++i) {
      machine.cpu(i).resolution_cache().set_enabled(v_.cache_enabled);
    }
    // Both batch-on and batch-off variants route RunOps through the engine
    // (a disabled engine never forms blocks), so the two paths share every
    // line of mixing code and differ only in this switch.
    machine.batch_engine().set_enabled(v_.batch);
    engine_ = &machine.batch_engine();
  }

  static batch::Op TranslateOp(const FuzzOp& op) {
    switch (op.kind) {
      case OpKind::kSysRead:
        return {.kind = batch::OpKind::kSysRead, .enc = op.enc};
      case OpKind::kSysWrite:
        return {.kind = batch::OpKind::kSysWrite,
                .enc = op.enc,
                .value = op.value};
      case OpKind::kCurrentEl:
        return {.kind = batch::OpKind::kCurrentEl};
      case OpKind::kWfi:
        return {.kind = batch::OpKind::kWfi};
      case OpKind::kBarrier:
        return {.kind = batch::OpKind::kBarrier};
      case OpKind::kTlbi:
        return {.kind = batch::OpKind::kTlbi};
      case OpKind::kCompute:
        return {.kind = batch::OpKind::kCompute, .value = op.value};
      default:
        return {.kind = batch::OpKind::kOpaque};
    }
  }

  // Mode A: the fuzzed program IS the guest hypervisor, running in virtual
  // EL2 directly under the host -- the tightest loop around the NV/NEVE
  // emulation machinery.
  void RunModeA() {
    MachineConfig mc;
    mc.num_cpus = p_.cfg.smp ? 2 : 1;
    mc.ram_size = 64ull << 20;
    mc.features =
        v_.neve ? ArchFeatures::Armv84Neve() : ArchFeatures::Armv83Nv();
    mc.fault = v_.fault;
    Machine machine(mc);
    Prepare(machine);
    HostKvm l0(&machine, {.vhe = false, .use_neve = v_.neve});
    Vm* vm = l0.CreateVm({.name = "fuzz-l1",
                          .num_vcpus = p_.cfg.smp ? 2 : 1,
                          .ram_size = 32ull << 20,
                          .virtual_el2 = true,
                          .expose_neve = v_.neve,
                          .guest_vhe = p_.cfg.guest_vhe});
    Vel2IrqSink sink(&r_->receiver_irqs);
    if (p_.cfg.smp) {
      // Park a receiver on vCPU 1 first; the kSgi op fans out to it, which
      // exercises the cross-vCPU injection path (kick SGI on the raiser's
      // CPU, cooperative delivery on the receiver's).
      vm->vcpu(1).main_sw.main = [this, &sink](GuestEnv& env) {
        env.SetVel2Handler(&sink);
        env.SetIrqHandler([this](GuestEnv& henv, uint32_t) {
          ++r_->receiver_irqs;
          uint64_t iar = henv.ReadSys(DirectEncodingOf(RegId::kICC_IAR1_EL1));
          if ((iar & 0xFFFFFFu) != 1023) {
            henv.WriteSys(DirectEncodingOf(RegId::kICC_EOIR1_EL1), iar);
          }
        });
        env.ParkRunning();
      };
      Status rs = l0.RunVcpu(vm->vcpu(1), /*pcpu=*/1);
      if (!rs.ok()) {
        r_->status = rs;
        Finish(machine, machine.cpu(0), vm->vcpu(0));
        return;
      }
    }
    Vcpu& vcpu = vm->vcpu(0);
    vcpu.main_sw.main = [this](GuestEnv& env) {
      env.SetIrqHandler(
          [this](GuestEnv& e, uint32_t intid) { OnIrq(e, intid); });
      // The nested image is memory-free: with no guest hypervisor building
      // Stage-2 tables for it, any L2 memory access would die in the shadow
      // walk. Its hvc exercises the forward-to-virtual-EL2 path.
      env.SetNestedProgram([this](GuestEnv& e) {
        ++r_->nested_entries;
        e.Compute(64);
        e.Hvc(kHvcTestCall);
      });
      RunOps(env);
    };
    r_->status = l0.RunVcpu(vcpu, 0);
    Finish(machine, machine.cpu(0), vcpu);
  }

  // Mode B: the fuzzed program runs at L2 under a real GuestKvm guest
  // hypervisor -- every trap multiplies through forwarding, shadow Stage-2
  // and the guest hypervisor's own (trappable) emulation work.
  void RunModeB() {
    StackConfig sc = v_.neve ? StackConfig::NestedNeve(p_.cfg.guest_vhe)
                             : StackConfig::NestedV83(p_.cfg.guest_vhe);
    sc.fault = v_.fault;
    if (v_.snap_restore && p_.cfg.snap_restore) {
      RunModeBSnap(sc);
      return;
    }
    ArmStack stack(sc, /*num_cpus=*/p_.cfg.smp ? 2 : 1);
    Prepare(stack.machine());
    GuestMain receiver = nullptr;
    if (p_.cfg.smp) {
      // Parked L2 receiver (stack.Run boots the guest hypervisor on vCPU 1
      // for it): the kSgi fan-out multiplies through the guest hypervisor's
      // trapped injection path, mode B's whole point.
      receiver = [this](GuestEnv& env) {
        env.SetIrqHandler([this](GuestEnv& henv, uint32_t) {
          ++r_->receiver_irqs;
          uint64_t iar = henv.ReadSys(DirectEncodingOf(RegId::kICC_IAR1_EL1));
          if ((iar & 0xFFFFFFu) != 1023) {
            henv.WriteSys(DirectEncodingOf(RegId::kICC_EOIR1_EL1), iar);
          }
        });
        env.ParkRunning();
      };
    }
    r_->status = stack.Run(
        [this](GuestEnv& env) {
          env.SetIrqHandler(
              [this](GuestEnv& e, uint32_t intid) { OnIrq(e, intid); });
          RunOps(env);
        },
        std::move(receiver));
    Finish(stack.machine(), stack.machine().cpu(0), stack.MeasuredVcpu());
  }

  // The split variant of mode B: run the first `split` ops on a source
  // stack, capture a snapshot at the op boundary, boot a fresh identical
  // stack, apply the snapshot at the structurally identical point (workload
  // entry, after the deterministic boot) and run the remaining ops there.
  // The digest mixers carry across the two stacks untouched and nothing
  // extra is mixed, so the oracle can demand byte-identity with the
  // uninterrupted run: a checkpoint/restore cycle must be invisible.
  void RunModeBSnap(const StackConfig& sc) {
    const size_t n = p_.ops.size();
    const size_t split = n == 0 ? 0 : p_.cfg.snap_at % (n + 1);
    snap::Image img;
    Status cap_status;
    bool captured = false;
    {
      ArmStack src(sc, /*num_cpus=*/1);
      Prepare(src.machine());
      r_->status = src.Run([&](GuestEnv& env) {
        env.SetIrqHandler(
            [this](GuestEnv& e, uint32_t intid) { OnIrq(e, intid); });
        RunOps(env, 0, split);
        cap_status = snap::Serializer::Capture(TargetsOf(src), &img);
        captured = cap_status.ok();
      });
      if (!captured) {
        // The guest died before reaching the checkpoint (a confined fault
        // unwinds past the capture call) or capture itself failed; the
        // source run is the whole run, same as the uninterrupted variant.
        if (r_->status.ok() && !cap_status.ok()) {
          r_->status = cap_status;
        }
        Finish(src.machine(), src.machine().cpu(0), src.MeasuredVcpu());
        return;
      }
    }
    ArmStack dst(sc, /*num_cpus=*/1);
    Prepare(dst.machine());
    Status apply_status;
    r_->status = dst.Run([&](GuestEnv& env) {
      env.SetIrqHandler(
          [this](GuestEnv& e, uint32_t intid) { OnIrq(e, intid); });
      apply_status = snap::Serializer::Apply(TargetsOf(dst), img);
      if (!apply_status.ok()) {
        return;
      }
      RunOps(env, split, n);
    });
    if (r_->status.ok() && !apply_status.ok()) {
      r_->status = apply_status;
    }
    Finish(dst.machine(), dst.machine().cpu(0), dst.MeasuredVcpu());
  }

  static snap::SnapTargets TargetsOf(ArmStack& stack) {
    snap::SnapTargets t;
    t.machine = &stack.machine();
    t.host = &stack.host();
    t.guest_hyp = stack.guest_hyp();
    t.device = &stack.device();
    return t;
  }

  void RunOps(GuestEnv& env) { RunOps(env, 0, p_.ops.size()); }

  void RunOps(GuestEnv& env, size_t begin, size_t end) {
    for (size_t i = begin; i < end;) {
      batch::BlockRecord rec;
      size_t consumed =
          engine_ ? engine_->TryRunBlock(env.cpu(), bprog_, i, end, &rec) : 0;
      if (consumed == 0) {
        op_index_ = static_cast<int>(r_->ops_executed);
        ExecOp(env, p_.ops[i]);
        ++r_->ops_executed;
        ++i;
        continue;
      }
      // The engine executed ops [i, i+consumed) as one batched step; the
      // digest mixing the per-op path would have done is replayed here from
      // the block record -- byte-identically, because a batched op by
      // construction takes zero traps and leaves the access context alone.
      // The record's values are compact (producing ops only, in program
      // order), so a cursor tracks which result belongs to which op.
      size_t vi = 0;
      for (size_t j = 0; j < consumed; ++j) {
        op_index_ = static_cast<int>(r_->ops_executed);
        uint64_t value = batch::ProducesValue(bprog_.ops[i + j].kind)
                             ? rec.values[vi++]
                             : 0;
        MixBatchedOp(env, p_.ops[i + j], value);
        ++r_->ops_executed;
      }
      i += consumed;
    }
  }

  // Digest/oracle bookkeeping for one op the batch engine already executed.
  // Mirrors ExecOp line for line with the execution elided and the trap
  // delta pinned to zero (blocks only form over trap-free resolutions).
  void MixBatchedOp(GuestEnv& env, const FuzzOp& op, uint64_t value) {
    switch (op.kind) {
      case OpKind::kSysRead:
        MixBatchedSys(env, op.enc, /*is_write=*/false, 0, value);
        break;
      case OpKind::kSysWrite:
        MixBatchedSys(env, op.enc, /*is_write=*/true, op.value, 0);
        break;
      case OpKind::kCurrentEl:
        full_.Mix(DigestOf(0x2200, value));
        arch_.Mix(DigestOf(0x2201, value));
        break;
      case OpKind::kWfi:
      case OpKind::kTlbi:
        full_.Mix(DigestOf(0x4400, uint64_t{0}));  // NonSys, zero trap delta
        break;
      case OpKind::kBarrier:
      case OpKind::kCompute:
        break;  // ExecOp mixes nothing for these
      default:
        // Translated to kOpaque, which ends every block: the engine can
        // never hand one back as batched.
        NEVE_CHECK(false);
    }
  }

  // SysAccess's digest/oracle tail for a batched access. The resolution is
  // recomputed (stable across the block: no traps, no EL change, no
  // HCR/VNCR writes inside a block) and the mixing matches SysAccess with
  // dt == 0 exactly -- same keys, same golden-model updates.
  void MixBatchedSys(GuestEnv& env, SysReg enc, bool is_write, uint64_t wval,
                     uint64_t rval) {
    Cpu& cpu = env.cpu();
    VcpuMode mode_before = env.vcpu().mode;
    AccessResolution res =
        ResolveSysRegAccess(cpu.CurrentAccessContext(), enc, is_write);
    uint64_t value = is_write ? 0 : rval;

    uint64_t key = static_cast<uint64_t>(enc) * 2 + (is_write ? 1 : 0);
    full_.Mix(DigestOf(key, value, /*dt=*/uint64_t{0}));
    if (!is_write && ArchComparableRead(enc, res)) {
      arch_.Mix(DigestOf(key, value));
    }
    features_.push_back(
        DigestOf(key, (static_cast<uint64_t>(res.kind) << 8) |
                          (static_cast<uint64_t>(mode_before) << 4) |
                          (v_.neve ? 1 : 0)));

    if (check_ && res.kind == ResKind::kTrapEl2) {
      // Unreachable by construction (trapping resolutions end blocks); if it
      // ever fires the engine batched an access it had no business batching.
      Violation(enc, is_write, res, mode_before,
                "batched access resolves to a trap");
    }

    if (check_ && !p_.cfg.nested && mode_before == VcpuMode::kVel2 &&
        env.vcpu().mode == VcpuMode::kVel2 && res.kind != ResKind::kUndefined) {
      RegId storage = SysRegStorage(enc);
      if (GoldenTracked(storage)) {
        uint64_t gkey = GoldenKey(storage, res);
        if (is_write) {
          golden_[gkey] = wval;
        } else if (auto it = golden_.find(gkey);
                   it != golden_.end() && it->second != value) {
          r_->violations.push_back(
              "vel2-golden: op " + std::to_string(op_index_) + " " +
              SysRegName(enc) + " read " + Hex(value) + ", golden model has " +
              Hex(it->second) + " [" + (v_.neve ? "neve" : "v83") +
              ", batched]");
        }
      }
    }
  }

  void OnIrq(GuestEnv& env, uint32_t intid) {
    ++r_->irqs_taken;
    full_.Mix(DigestOf(0x1290, intid));
    arch_.Mix(DigestOf(0x1291, intid));
    uint64_t iar = env.ReadSys(DirectEncodingOf(RegId::kICC_IAR1_EL1));
    full_.Mix(iar);
    if ((iar & 0xFFFFFFu) != 1023) {
      env.WriteSys(DirectEncodingOf(RegId::kICC_EOIR1_EL1), iar);
    }
  }

  void ExecOp(GuestEnv& env, const FuzzOp& op) {
    const bool nested = p_.cfg.nested;
    switch (op.kind) {
      case OpKind::kSysRead:
        SysAccess(env, op.enc, /*is_write=*/false, 0);
        break;
      case OpKind::kSysWrite:
        SysAccess(env, op.enc, /*is_write=*/true, op.value);
        break;
      case OpKind::kHcrFlip: {
        if (nested) {
          // HCR_EL2 is UNDEFINED at L2's EL1; flip a benign VM register so
          // the op survives mode B instead of always ending the program.
          SysAccess(env, DirectEncodingOf(RegId::kCONTEXTIDR_EL1),
                    /*is_write=*/true, op.value);
          break;
        }
        SysReg hcr = DirectEncodingOf(RegId::kHCR_EL2);
        uint64_t cur = SysAccess(env, hcr, /*is_write=*/false, 0);
        SysAccess(env, hcr, /*is_write=*/true,
                  cur ^ (op.value & kHcrFlipMask));
        break;
      }
      case OpKind::kHvc:
        NonSys(env, [&] { env.Hvc(op.imm); });
        break;
      case OpKind::kEret:
        if (!nested && env.vcpu().mode == VcpuMode::kVel2) {
          NonSys(env, [&] { env.EretToGuest(); });
        } else {
          env.Compute(32);
        }
        break;
      case OpKind::kCurrentEl: {
        uint64_t el = static_cast<uint64_t>(env.CurrentEl());
        full_.Mix(DigestOf(0x2200, el));
        arch_.Mix(DigestOf(0x2201, el));  // the NV disguise must agree
        break;
      }
      case OpKind::kMemLoad:
      case OpKind::kMemStore: {
        if (!nested && env.vcpu().mode == VcpuMode::kVel1Nested) {
          // Mode A's nested context has no Stage-2 tables behind it; a
          // memory access would die in the shadow walk either way, but the
          // walk consumes the fault budget non-portably. Skip.
          env.Compute(16);
          break;
        }
        NonSys(env, [&] {
          if (op.kind == OpKind::kMemStore) {
            env.Store(Va(op.addr), op.value);
            arch_.Mix(DigestOf(0x3300, op.addr, op.value));
          } else {
            uint64_t v = env.Load(Va(op.addr));
            full_.Mix(v);
            arch_.Mix(DigestOf(0x3301, op.addr, v));
          }
        });
        break;
      }
      case OpKind::kDeviceLoad:
      case OpKind::kDeviceStore: {
        if (!nested) {
          env.Compute(16);  // mode A wires no MMIO device
          break;
        }
        uint64_t addr = kBenchDeviceBase + op.addr;
        NonSys(env, [&] {
          if (op.kind == OpKind::kDeviceStore) {
            env.Store(Va(addr), op.value);
          } else {
            uint64_t v = env.Load(Va(addr));
            full_.Mix(v);
            arch_.Mix(DigestOf(0x3302, op.addr, v));
          }
        });
        break;
      }
      case OpKind::kSgi:
        // Self-SGI -- plus the parked sibling in SMP mode (cross-vCPU
        // injection): delivery (vGIC emulation, list registers, the IRQ
        // handlers above) completes within the write's trap handling, but
        // may take more than one host trap even single-level.
        SysAccess(env, DirectEncodingOf(RegId::kICC_SGI1R_EL1),
                  /*is_write=*/true,
                  SgiR::Make(p_.cfg.smp ? 0b11 : 0b1, op.imm),
                  /*multi_trap_ok=*/true);
        break;
      case OpKind::kWfi:
        NonSys(env, [&] { env.Wfi(); });
        break;
      case OpKind::kBarrier:
        env.Barrier();
        break;
      case OpKind::kTlbi:
        NonSys(env, [&] { env.TlbiAll(); });
        break;
      case OpKind::kCompute:
        env.Compute(static_cast<uint32_t>(op.value));
        break;
    }
  }

  // Non-sysreg op: record the trap delta in the full digest (cache pairs
  // must agree on it) without predicting it.
  template <typename F>
  void NonSys(GuestEnv& env, F&& f) {
    uint64_t t0 = env.cpu().trace().traps_to_el2();
    f();
    full_.Mix(DigestOf(0x4400, env.cpu().trace().traps_to_el2() - t0));
  }

  uint64_t SysAccess(GuestEnv& env, SysReg enc, bool is_write, uint64_t wval,
                     bool multi_trap_ok = false) {
    Cpu& cpu = env.cpu();
    VcpuMode mode_before = env.vcpu().mode;
    AccessResolution res =
        ResolveSysRegAccess(cpu.CurrentAccessContext(), enc, is_write);
    uint64_t t0 = cpu.trace().traps_to_el2();
    // An UNDEFINED access raises a confined guest fault here: everything
    // below is skipped and the run ends -- at the same op in both stacks of
    // a pair, which the status/ops_executed comparisons then verify.
    uint64_t value = 0;
    if (is_write) {
      env.WriteSys(enc, wval);
    } else {
      value = env.ReadSys(enc);
    }
    uint64_t dt = cpu.trace().traps_to_el2() - t0;

    uint64_t key = static_cast<uint64_t>(enc) * 2 + (is_write ? 1 : 0);
    full_.Mix(DigestOf(key, value, dt));
    if (!is_write && ArchComparableRead(enc, res)) {
      arch_.Mix(DigestOf(key, value));
    }
    features_.push_back(
        DigestOf(key, (static_cast<uint64_t>(res.kind) << 8) |
                          (static_cast<uint64_t>(mode_before) << 4) |
                          (v_.neve ? 1 : 0)));

    if (check_) {
      bool predicted = res.kind == ResKind::kTrapEl2;
      if (!predicted && dt != 0) {
        Violation(enc, is_write, res, mode_before,
                  "predicted " + std::string(KindName(res.kind)) +
                      " (no trap), observed " + std::to_string(dt) +
                      " trap(s)");
      } else if (predicted && dt == 0) {
        Violation(enc, is_write, res, mode_before,
                  "predicted trap, observed none");
      } else if (predicted && !p_.cfg.nested && !multi_trap_ok && dt != 1) {
        Violation(enc, is_write, res, mode_before,
                  "predicted exactly one trap, observed " +
                      std::to_string(dt));
      }
    }

    if (check_ && !p_.cfg.nested && mode_before == VcpuMode::kVel2 &&
        env.vcpu().mode == VcpuMode::kVel2 && res.kind != ResKind::kUndefined) {
      RegId storage = SysRegStorage(enc);
      if (GoldenTracked(storage)) {
        // Key the shadow by the resolved *destination*, not the backing
        // RegId: at virtual EL2 with virtual E2H, FOO_EL12 (the VM's
        // register) and FOO_EL1 (the guest hypervisor's own register) share
        // a backing RegId but are distinct architectural registers -- one
        // lands in the trapped/deferred VM context, the other in the live
        // hardware register. Same-destination read-after-write must still
        // round-trip exactly.
        uint64_t key = GoldenKey(storage, res);
        if (is_write) {
          golden_[key] = wval;
        } else if (auto it = golden_.find(key);
                   it != golden_.end() && it->second != value) {
          r_->violations.push_back(
              "vel2-golden: op " + std::to_string(op_index_) + " " +
              SysRegName(enc) + " read " + Hex(value) + ", golden model has " +
              Hex(it->second) + " [" + (v_.neve ? "neve" : "v83") + "]");
        }
      }
    }
    return value;
  }

  static uint64_t GoldenKey(RegId storage, const AccessResolution& res) {
    switch (res.kind) {
      case ResKind::kRegister:  // live hardware register (incl. redirects)
        return static_cast<uint64_t>(res.target) * 4 + 0;
      case ResKind::kMemory:  // deferred-page slot
        return static_cast<uint64_t>(res.target) * 4 + 1;
      default:  // trapped: the host routes by backing register
        return static_cast<uint64_t>(storage) * 4 + 2;
    }
  }

  void Violation(SysReg enc, bool is_write, const AccessResolution& res,
                 VcpuMode mode, const std::string& what) {
    r_->violations.push_back(
        "trap-predict: op " + std::to_string(op_index_) + " " +
        (is_write ? "write " : "read ") + SysRegName(enc) + " at " +
        VcpuModeName(mode) + ": " + what + " [" + (v_.neve ? "neve" : "v83") +
        (p_.cfg.nested ? ", nested" : "") + "]");
    (void)res;
  }

  void Finish(Machine& machine, Cpu& cpu, Vcpu& vcpu) {
    r_->died = !r_->status.ok();
    r_->end_cycles = cpu.cycles();
    r_->traps = cpu.trace().traps_to_el2();
    r_->fault_log = machine.fault().LogText();

    Digest st;
    st.Mix(cpu.ArchStateDigest());
    st.Mix(vcpu.ContextDigest());
    full_.Mix(st.value());
    full_.Mix(r_->end_cycles);
    full_.Mix(r_->traps);
    full_.Mix(static_cast<uint64_t>(r_->status.code()));
    full_.Mix(r_->status.message());
    full_.Mix(r_->fault_log);

    full_.Mix(r_->receiver_irqs);
    arch_.Mix(r_->ops_executed);
    arch_.Mix(r_->irqs_taken);
    arch_.Mix(r_->receiver_irqs);
    arch_.Mix(r_->nested_entries);
    arch_.Mix(static_cast<uint64_t>(r_->status.code()));
    arch_.Mix(r_->died ? 1 : 0);

    r_->full_digest = full_.value();
    r_->arch_digest = arch_.value();

    std::vector<uint64_t> obs_features;
    CollectObsFeatures(machine.obs(), &obs_features);
    uint64_t tag =
        (v_.neve ? 1u : 0u) | (v_.fault.enabled ? 2u : 0u) |
        (p_.cfg.nested ? 4u : 0u) | (p_.cfg.smp ? 8u : 0u);
    for (uint64_t f : obs_features) {
      features_.push_back(DigestOf(f, tag));
    }
    features_.push_back(DigestOf(0x5500, tag,
                                 static_cast<uint64_t>(r_->status.code())));
    r_->features = std::move(features_);
  }

  const Program& p_;
  const VariantSpec& v_;
  RunResult* r_;
  bool check_;
  batch::Program bprog_;  // p_.ops translated to the engine's IR
  batch::BatchEngine* engine_ = nullptr;  // current Machine's; set in Prepare
  int op_index_ = 0;
  Digest full_;
  Digest arch_;
  std::vector<uint64_t> features_;
  std::map<uint64_t, uint64_t> golden_;
};

void AppendFeatures(const RunResult& r, CaseResult* out) {
  out->features.insert(out->features.end(), r.features.begin(),
                       r.features.end());
}

bool TakeViolations(const RunResult& r, CaseResult* out) {
  if (r.violations.empty()) {
    return false;
  }
  out->ok = false;
  out->failure = r.violations.front();
  return true;
}

bool CompareCachePair(const RunResult& on, const RunResult& off,
                      const std::string& tag, CaseResult* out) {
  auto fail = [&](const std::string& what) {
    out->ok = false;
    out->failure = "cache-diff[" + tag + "]: " + what;
    return true;
  };
  if (on.end_cycles != off.end_cycles) {
    return fail("cycles " + std::to_string(on.end_cycles) + " vs " +
                std::to_string(off.end_cycles));
  }
  if (on.traps != off.traps) {
    return fail("traps " + std::to_string(on.traps) + " vs " +
                std::to_string(off.traps));
  }
  if (!(on.status == off.status)) {
    return fail("status " + on.status.ToString() + " vs " +
                off.status.ToString());
  }
  if (on.fault_log != off.fault_log) {
    return fail("fault log diverged:\n--- cache on ---\n" + on.fault_log +
                "--- cache off ---\n" + off.fault_log);
  }
  if (on.full_digest != off.full_digest) {
    return fail("state digest " + Hex(on.full_digest) + " vs " +
                Hex(off.full_digest));
  }
  return false;
}

// Byte-identity of a batched run against the interpreted run of the same
// architecture: the superblock engine is a simulator fast path (like the
// resolution cache) and must be invisible -- cycles, traps, outcome, fault
// log and the full per-op digest included.
bool CompareBatchPair(const RunResult& interp, const RunResult& batched,
                      const std::string& tag, CaseResult* out) {
  auto fail = [&](const std::string& what) {
    out->ok = false;
    out->failure = "batch-diff[" + tag + "]: " + what;
    return true;
  };
  if (interp.ops_executed != batched.ops_executed) {
    return fail("ops " + std::to_string(interp.ops_executed) + " vs " +
                std::to_string(batched.ops_executed));
  }
  if (interp.end_cycles != batched.end_cycles) {
    return fail("cycles " + std::to_string(interp.end_cycles) + " vs " +
                std::to_string(batched.end_cycles));
  }
  if (interp.traps != batched.traps) {
    return fail("traps " + std::to_string(interp.traps) + " vs " +
                std::to_string(batched.traps));
  }
  if (!(interp.status == batched.status)) {
    return fail("status " + interp.status.ToString() + " vs " +
                batched.status.ToString());
  }
  if (interp.fault_log != batched.fault_log) {
    return fail("fault log diverged:\n--- interpreted ---\n" +
                interp.fault_log + "--- batched ---\n" + batched.fault_log);
  }
  if (interp.full_digest != batched.full_digest) {
    return fail("state digest " + Hex(interp.full_digest) + " vs " +
                Hex(batched.full_digest));
  }
  if (interp.arch_digest != batched.arch_digest) {
    return fail("guest-visible state " + Hex(interp.arch_digest) + " vs " +
                Hex(batched.arch_digest));
  }
  return false;
}

// Byte-identity of a checkpoint/restore split against the uninterrupted run
// of the same architecture: every digest and counter must match -- a
// snapshot cycle is host machinery and must be invisible to the guest.
bool CompareSnapPair(const RunResult& base, const RunResult& snap,
                     const std::string& tag, CaseResult* out) {
  auto fail = [&](const std::string& what) {
    out->ok = false;
    out->failure = "snap-diff[" + tag + "]: " + what;
    return true;
  };
  if (base.ops_executed != snap.ops_executed) {
    return fail("ops " + std::to_string(base.ops_executed) + " vs " +
                std::to_string(snap.ops_executed));
  }
  if (!(base.status == snap.status)) {
    return fail("status " + base.status.ToString() + " vs " +
                snap.status.ToString());
  }
  if (base.end_cycles != snap.end_cycles) {
    return fail("cycles " + std::to_string(base.end_cycles) + " vs " +
                std::to_string(snap.end_cycles));
  }
  if (base.traps != snap.traps) {
    return fail("traps " + std::to_string(base.traps) + " vs " +
                std::to_string(snap.traps));
  }
  if (base.fault_log != snap.fault_log) {
    return fail("fault log diverged:\n--- uninterrupted ---\n" +
                base.fault_log + "--- restored ---\n" + snap.fault_log);
  }
  if (base.full_digest != snap.full_digest) {
    return fail("state digest " + Hex(base.full_digest) + " vs " +
                Hex(snap.full_digest));
  }
  if (base.arch_digest != snap.arch_digest) {
    return fail("guest-visible state " + Hex(base.arch_digest) + " vs " +
                Hex(snap.arch_digest));
  }
  return false;
}

bool CompareCrossArch(const RunResult& v83, const RunResult& neve,
                      CaseResult* out) {
  auto fail = [&](const std::string& what) {
    out->ok = false;
    out->failure = "arch-diff: " + what;
    return true;
  };
  if (v83.ops_executed != neve.ops_executed) {
    return fail("program length v83=" + std::to_string(v83.ops_executed) +
                " neve=" + std::to_string(neve.ops_executed));
  }
  if (v83.status.code() != neve.status.code()) {
    return fail("outcome v83=" + v83.status.ToString() +
                " neve=" + neve.status.ToString());
  }
  if (v83.irqs_taken != neve.irqs_taken) {
    return fail("irqs v83=" + std::to_string(v83.irqs_taken) +
                " neve=" + std::to_string(neve.irqs_taken));
  }
  if (v83.receiver_irqs != neve.receiver_irqs) {
    return fail("receiver irqs v83=" + std::to_string(v83.receiver_irqs) +
                " neve=" + std::to_string(neve.receiver_irqs));
  }
  if (v83.nested_entries != neve.nested_entries) {
    return fail("nested entries v83=" + std::to_string(v83.nested_entries) +
                " neve=" + std::to_string(neve.nested_entries));
  }
  if (v83.arch_digest != neve.arch_digest) {
    return fail("guest-visible state " + Hex(v83.arch_digest) + " vs " +
                Hex(neve.arch_digest));
  }
  return false;
}

}  // namespace

RunResult RunProgramVariant(const Program& program, const VariantSpec& v) {
  RunResult r;
  Executor ex(program, v, &r);
  ex.Run();
  return r;
}

CaseResult RunCase(const std::vector<uint8_t>& bytes) {
  Program p = DecodeProgram(bytes);
  CaseResult out;

  if (p.cfg.fault) {
    VariantSpec on{.neve = p.cfg.fault_neve,
                   .cache_enabled = true,
                   .fault = p.cfg.fault_config};
    VariantSpec off = on;
    off.cache_enabled = false;
    RunResult r_on = RunProgramVariant(p, on);
    RunResult r_off = RunProgramVariant(p, off);
    out.execs = 2;
    AppendFeatures(r_on, &out);
    CompareCachePair(r_on, r_off, p.cfg.fault_neve ? "neve,fault" : "v83,fault",
                     &out);
    return out;
  }

  RunResult v83_on = RunProgramVariant(p, {.neve = false});
  RunResult v83_off =
      RunProgramVariant(p, {.neve = false, .cache_enabled = false});
  RunResult nv_on = RunProgramVariant(p, {.neve = true});
  RunResult nv_off =
      RunProgramVariant(p, {.neve = true, .cache_enabled = false});
  out.execs = 4;
  AppendFeatures(v83_on, &out);
  AppendFeatures(nv_on, &out);

  if (TakeViolations(v83_on, &out) || TakeViolations(nv_on, &out)) {
    return out;
  }
  if (CompareCachePair(v83_on, v83_off, "v83", &out) ||
      CompareCachePair(nv_on, nv_off, "neve", &out)) {
    return out;
  }
  if (CompareCrossArch(v83_on, nv_on, &out)) {
    return out;
  }

  if (p.cfg.batch) {
    RunResult v83_b = RunProgramVariant(p, {.neve = false, .batch = true});
    RunResult nv_b = RunProgramVariant(p, {.neve = true, .batch = true});
    out.execs += 2;
    if (TakeViolations(v83_b, &out) || TakeViolations(nv_b, &out)) {
      return out;
    }
    if (CompareBatchPair(v83_on, v83_b, "v83", &out) ||
        CompareBatchPair(nv_on, nv_b, "neve", &out)) {
      return out;
    }
  }

  if (p.cfg.snap_restore) {
    RunResult v83_snap =
        RunProgramVariant(p, {.neve = false, .snap_restore = true});
    RunResult nv_snap =
        RunProgramVariant(p, {.neve = true, .snap_restore = true});
    out.execs += 2;
    if (TakeViolations(v83_snap, &out) || TakeViolations(nv_snap, &out)) {
      return out;
    }
    if (CompareSnapPair(v83_on, v83_snap, "v83", &out) ||
        CompareSnapPair(nv_on, nv_snap, "neve", &out)) {
      return out;
    }
  }
  return out;
}

}  // namespace neve::fuzz
