// Paired-stack execution of a fuzzed guest program, plus the differential
// oracles.
//
// One *case* (a decoded Program) runs through several stack variants; each
// variant produces a RunResult carrying two digests:
//
//   full_digest  everything the variant computed -- per-op values, per-op
//                trap deltas, final architectural state, cycle count, trap
//                count, status, fault log. Two runs differing only in the
//                resolution-cache setting must produce IDENTICAL full
//                digests: the cache is a simulator fast-path and must be
//                invisible, cycles included.
//
//   arch_digest  the architecture-independent guest-visible view -- values
//                the guest program read (minus live counters/GIC state),
//                op/irq/nested-entry counts, how the program ended. An
//                ARMv8.3-NV stack and a NEVE stack running the same program
//                must produce IDENTICAL arch digests: NEVE changes *where*
//                accesses resolve and how often they trap, never what
//                software observes (the paper's transparency claim).
//
// Per-op oracles run inside the executor:
//
//   trap-predict  before each sysreg access the executor consults
//                 ResolveSysRegAccess (the same pure function archlint
//                 verifies against the paper tables) and checks the observed
//                 trap delta: non-trapping resolutions take zero traps; a
//                 predicted trap takes exactly one in a single-level stack
//                 (>= 1 at L2, where forwarding multiplies exits).
//
//   vel2-golden   a shadow model of the virtual-EL2 register file: values
//                 written from virtual EL2 to plain-storage registers must
//                 read back unchanged, whether they landed in a trapped
//                 vreg, the deferred access page, or a redirected EL1
//                 register. Registers the host legitimately rewrites
//                 (exception frames, GIC, timers) are excluded.
//
// Both per-op oracles are disabled when fault injection is armed (faults
// perturb trap counts and redirected values by design); the cache-identity
// oracle is NOT -- fault campaigns draw from a seeded stream keyed by
// machine behaviour the cache must not alter.

#ifndef NEVE_SRC_FUZZ_HARNESS_H_
#define NEVE_SRC_FUZZ_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fuzz/program.h"

namespace neve::fuzz {

struct VariantSpec {
  bool neve = false;          // ARMv8.4 NEVE stack vs plain ARMv8.3-NV
  bool cache_enabled = true;  // sysreg resolution cache on/off
  bool snap_restore = false;  // split the run: checkpoint mid-program,
                              // restore into a fresh stack, finish there
                              // (mode B only; requires cfg.snap_restore)
  bool batch = false;         // batched superblock engine (src/sim/batch) on:
                              // trap-free runs execute as one batched step;
                              // must be byte-invisible (full identity)
  FaultConfig fault{};        // armed => fault dimension
};

struct RunResult {
  Status status;
  bool died = false;  // program ended in a confined guest fault
  uint64_t ops_executed = 0;
  uint64_t irqs_taken = 0;
  uint64_t receiver_irqs = 0;  // deliveries observed by the SMP receiver vCPU
  uint64_t nested_entries = 0;
  uint64_t full_digest = 0;
  uint64_t arch_digest = 0;
  uint64_t end_cycles = 0;
  uint64_t traps = 0;
  std::string fault_log;
  std::vector<uint64_t> features;
  std::vector<std::string> violations;  // per-op oracle failures
};

RunResult RunProgramVariant(const Program& program, const VariantSpec& v);

struct CaseResult {
  bool ok = true;
  std::string failure;  // "<oracle>: detail" for the first failed oracle
  uint64_t execs = 0;   // stack variants executed
  std::vector<uint64_t> features;
};

// Runs the full oracle matrix for one input:
//   fault armed:  one architecture, cache on vs off (full identity).
//   otherwise:    {v8.3, NEVE} x {cache on, cache off}; cache identity per
//                 architecture, per-op oracles per run, transparency across
//                 architectures. When cfg.snap_restore is armed, each
//                 architecture additionally runs once as a checkpoint/
//                 restore split (capture mid-program, restore into a fresh
//                 Machine, finish there) and must reproduce the
//                 uninterrupted run's digests byte-for-byte -- a snapshot
//                 is a simulator artifact and must be invisible to the
//                 guest, cycles and trap counts included. When cfg.batch is
//                 armed, each architecture additionally runs once with the
//                 batched superblock engine enabled, under the same full-
//                 identity demand (batching is a simulator fast path, like
//                 the resolution cache).
CaseResult RunCase(const std::vector<uint8_t>& bytes);

}  // namespace neve::fuzz

#endif  // NEVE_SRC_FUZZ_HARNESS_H_
