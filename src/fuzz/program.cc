#include "src/fuzz/program.h"

namespace neve::fuzz {
namespace {

std::vector<SysReg> BuildPool(bool (*pred)(SysReg)) {
  std::vector<SysReg> pool;
  for (int i = 0; i < kNumSysRegs; ++i) {
    SysReg enc = static_cast<SysReg>(i);
    if (pred(enc)) {
      pool.push_back(enc);
    }
  }
  return pool;
}

}  // namespace

const std::vector<SysReg>& El2EncodingPool() {
  static const std::vector<SysReg> pool = BuildPool([](SysReg e) {
    return SysRegEncKind(e) == EncKind::kDirect && SysRegMinEl(e) == El::kEl2;
  });
  return pool;
}

const std::vector<SysReg>& El1EncodingPool() {
  static const std::vector<SysReg> pool = BuildPool([](SysReg e) {
    return SysRegEncKind(e) == EncKind::kDirect && SysRegMinEl(e) != El::kEl2;
  });
  return pool;
}

const std::vector<SysReg>& AliasEncodingPool() {
  static const std::vector<SysReg> pool = BuildPool([](SysReg e) {
    return SysRegEncKind(e) != EncKind::kDirect;
  });
  return pool;
}

const std::vector<SysReg>& AllEncodingPool() {
  static const std::vector<SysReg> pool =
      BuildPool([](SysReg) { return true; });
  return pool;
}

bool WriteAllowed(SysReg enc) {
  switch (SysRegStorage(enc)) {
    // Stage-1 translation control: the simulator's guests premap their
    // address spaces and never enable Stage-1, so don't flip SCTLR.M or
    // retarget translation out from under running software.
    case RegId::kSCTLR_EL1:
    case RegId::kSCTLR_EL2:
    case RegId::kTCR_EL1:
    case RegId::kTCR_EL2:
    case RegId::kTTBR0_EL1:
    case RegId::kTTBR1_EL1:
    case RegId::kTTBR0_EL2:
    case RegId::kTTBR1_EL2:
      return false;
    // The deferred access page location is host-programmed; a guest write
    // would move NEVE redirection onto an arbitrary page.
    case RegId::kVNCR_EL2:
      return false;
    // Only the masked flip op may touch HCR_EL2 (virtual or hardware view).
    case RegId::kHCR_EL2:
      return false;
    // Timer enable bits: an armed timer fires asynchronously relative to
    // the op stream and would break per-op trap prediction. CVAL/CNTVOFF
    // writes stay allowed (they cover the deferred/trap-on-write classes).
    case RegId::kCNTV_CTL_EL0:
    case RegId::kCNTP_CTL_EL0:
    case RegId::kCNTHV_CTL_EL2:
    case RegId::kCNTHP_CTL_EL2:
    case RegId::kCNTHCTL_EL2:
      return false;
    default:
      return true;
  }
}

namespace {

SysReg PickEncoding(SeedStream& s) {
  uint8_t c = s.U8();
  const std::vector<SysReg>* pool;
  if (c < 110) {
    pool = &El2EncodingPool();       // the NEVE-interesting space
  } else if (c < 170) {
    pool = &El1EncodingPool();       // VM registers / NV1 territory
  } else if (c < 215) {
    pool = &AliasEncodingPool();     // *_EL12 / *_EL02
  } else {
    pool = &AllEncodingPool();
  }
  return (*pool)[s.U16() % pool->size()];
}

uint64_t PickValue(SeedStream& s) {
  switch (s.U8() % 6) {
    case 0:
      return 0;
    case 1:
      return 1;
    case 2:
      return ~uint64_t{0};
    case 3:
      return 0x5A5A5A5A5A5A5A5Aull;
    case 4:
      return uint64_t{1} << (s.U8() % 64);
    default:
      return s.U64();
  }
}

uint64_t PickMemAddr(SeedStream& s) {
  uint64_t addr = (s.U16() % kMemSpanPages) * 4096 + (s.U8() % 8) * 8;
  if (s.U8() < 10) {
    // Rare wild pointer: lands outside every stack's RAM, exercising the
    // unmapped-Stage-2 confinement path.
    addr |= 0x7000'0000ull;
  }
  return addr;
}

void DecodeFaultConfig(SeedStream& s, FaultConfig* fc) {
  fc->enabled = true;
  fc->seed = s.U16();
  static constexpr double kRates[] = {0.002, 0.01, 0.05};
  fc->rate = kRates[s.U8() % 3];
  uint32_t points = s.U16() & kAllFaultPoints;
  fc->points = points != 0 ? points : kAllFaultPoints;
  // The kTrapLoop point requires a watchdog; give every fault campaign one
  // so injected livelocks terminate deterministically. The budget is sized
  // to take a few thousand storm iterations -- enough to exercise the
  // livelock/kill path, small enough that a nested SMP storm (each
  // iteration a full emulated exit round-trip, per vCPU, per stack variant)
  // stays in the milliseconds; at 50M cycles a single shrink candidate
  // could grind for minutes.
  fc->watchdog_budget = 2'000'000;
}

}  // namespace

Program DecodeProgram(const std::vector<uint8_t>& bytes) {
  SeedStream s(bytes);
  Program p;
  uint8_t header = s.U8();
  p.cfg.nested = (header & 1) != 0;
  p.cfg.guest_vhe = (header & 2) != 0;
  p.cfg.fault = (header & 4) != 0;
  p.cfg.fault_neve = (header & 8) != 0;
  p.cfg.smp = (header & 16) != 0;
  p.cfg.snap_restore =
      (header & 32) != 0 && p.cfg.nested && !p.cfg.smp && !p.cfg.fault;
  p.cfg.batch = (header & 64) != 0 && !p.cfg.fault;
  if (p.cfg.fault) {
    DecodeFaultConfig(s, &p.cfg.fault_config);
  }
  if (p.cfg.snap_restore) {
    p.cfg.snap_at = s.U8();
  }
  while (!s.exhausted() && p.ops.size() < kMaxOps) {
    FuzzOp op;
    switch (s.U8() % 16) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
        op.kind = OpKind::kSysRead;
        op.enc = PickEncoding(s);
        break;
      case 5:
      case 6:
      case 7:
      case 8:
      case 9:
        op.enc = PickEncoding(s);
        op.value = PickValue(s);
        // Deny-listed targets decay to reads of the same encoding so the
        // byte stream keeps its meaning under mutation.
        op.kind = WriteAllowed(op.enc) ? OpKind::kSysWrite : OpKind::kSysRead;
        break;
      case 10:
        op.kind = OpKind::kHcrFlip;
        op.value = s.U8();  // masked by the executor with kHcrFlipMask
        break;
      case 11:
        op.kind = OpKind::kHvc;
        op.imm = s.U8() < 200 ? uint16_t{0x4B00} : s.U16();
        break;
      case 12:
        op.kind = OpKind::kEret;
        break;
      case 13:
        op.kind = (s.U8() & 1) != 0 ? OpKind::kMemStore : OpKind::kMemLoad;
        op.addr = PickMemAddr(s);
        op.value = PickValue(s);
        break;
      case 14:
        switch (s.U8() % 4) {
          case 0:
            op.kind = OpKind::kDeviceLoad;
            op.addr = s.U16() & 0xFF8;
            break;
          case 1:
            op.kind = OpKind::kDeviceStore;
            op.addr = s.U16() & 0xFF8;
            op.value = PickValue(s);
            break;
          default:
            op.kind = OpKind::kSgi;
            op.imm = s.U8() % 16;
            break;
        }
        break;
      default:
        switch (s.U8() % 5) {
          case 0:
            op.kind = OpKind::kCurrentEl;
            break;
          case 1:
            op.kind = OpKind::kWfi;
            break;
          case 2:
            op.kind = OpKind::kBarrier;
            break;
          case 3:
            op.kind = OpKind::kTlbi;
            break;
          default:
            op.kind = OpKind::kCompute;
            op.value = (uint64_t{s.U8()} + 1) * 8;
            break;
        }
        break;
    }
    p.ops.push_back(op);
  }
  return p;
}

}  // namespace neve::fuzz
