// Guest-program synthesis: input bytes -> a sequence of operations a fuzzed
// guest (hypervisor) executes through its GuestEnv.
//
// The decoder is a total function: every byte string decodes to a valid
// program (garbage degrades to no-ops, exhaustion ends the program). Ops
// deliberately include accesses that are UNDEFINED in context -- a confined
// guest fault is a legal program ending, and the differential oracles
// require both stacks of a pair to die at the same op for the same reason.
//
// A small deny-list keeps programs inside what the simulator models
// (DESIGN.md: guests premap their address spaces, so Stage-1 stays off;
// timers fire only when workloads arm them): writes that would enable
// Stage-1 translation, move VNCR_EL2 out from under the host, or arm timer
// interrupts are decoded as reads instead. HCR_EL2 is only touched through
// a masked flip op so programs can toggle Stage-2/WFI/IRQ routing for the
// *virtual* EL2 state without wedging the stack.

#ifndef NEVE_SRC_FUZZ_PROGRAM_H_
#define NEVE_SRC_FUZZ_PROGRAM_H_

#include <cstdint>
#include <vector>

#include "src/arch/sysreg.h"
#include "src/fault/fault.h"
#include "src/fuzz/seed_stream.h"

namespace neve::fuzz {

enum class OpKind : uint8_t {
  kSysRead,     // ReadSys(enc)
  kSysWrite,    // WriteSys(enc, value)
  kHcrFlip,     // HCR_EL2 ^= (value & kHcrFlipMask) via read+write
  kHvc,         // Hvc(imm)
  kEret,        // EretToGuest (virtual EL2 only; elsewhere decays to Compute)
  kCurrentEl,   // ReadCurrentEl
  kMemLoad,     // Load(addr)
  kMemStore,    // Store(addr, value)
  kDeviceLoad,  // Load(device base + addr); nested stacks only
  kDeviceStore, // Store(device base + addr, value)
  kSgi,         // ICC_SGI1R self-SGI, id = imm
  kWfi,
  kBarrier,
  kTlbi,
  kCompute,     // Compute(value) cycles
};

struct FuzzOp {
  OpKind kind = OpKind::kCompute;
  SysReg enc = SysReg::kNumSysRegs;  // kSysRead / kSysWrite
  uint64_t value = 0;                // write value / flip mask / cycles
  uint64_t addr = 0;                 // kMem* / kDevice* offset
  uint16_t imm = 0;                  // hvc immediate / SGI id
};

// HCR_EL2 bits the flip op may toggle: Stage-2 enable (whether an eret
// enters a nested context), WFI trapping, and IRQ/FIQ routing.
inline constexpr uint64_t kHcrFlipMask =
    (1ull << 0) | (1ull << 3) | (1ull << 4) | (1ull << 13);

// Which stack pair a case exercises and whether the fault-injection
// dimension is armed. Under fault injection the cross-architecture and
// prediction oracles are off (faults perturb trap counts and values by
// design); the cache-identity oracle still applies and the FaultConfig is
// part of the decoded program, so fault campaigns replay exactly.
struct CaseConfig {
  bool nested = false;     // mode B: workload at L2 under a guest hypervisor
  bool guest_vhe = false;
  bool smp = false;        // two vCPUs: a parked receiver rides along and the
                           // kSgi op fans out to it (cross-vCPU injection path)
  bool fault = false;
  bool fault_neve = false;           // which architecture the fault pair uses
  FaultConfig fault_config{};        // populated when `fault`

  // Checkpoint/restore dimension: the case additionally runs each
  // architecture as a split pair -- checkpoint after `snap_at % (ops + 1)`
  // ops, restore into a fresh stack, finish there -- and the oracle demands
  // byte-identical digests against the uninterrupted run. Decoded only for
  // nested non-SMP non-fault cases (the snapshot layer targets a full
  // single-vCPU ArmStack; SMP checkpointing needs the cooperative rendezvous
  // workload, not an arbitrary op stream).
  bool snap_restore = false;
  uint8_t snap_at = 0;               // raw split cursor (populated when armed)

  // Batched-execution dimension (src/sim/batch): the case additionally runs
  // each architecture with the batch engine enabled, and the oracle demands
  // full byte-identity against the interpreted run -- the engine is a
  // simulator fast path and must be invisible, cycles included. Decoded for
  // non-fault cases only (with injection armed the engine falls back to
  // per-op interpretation wholesale, so the pair would compare the
  // interpreter against itself).
  bool batch = false;
};

struct Program {
  CaseConfig cfg;
  std::vector<FuzzOp> ops;
};

inline constexpr int kMaxOps = 96;

// Span of guest-RAM the kMem* ops address (well inside every stack's RAM).
inline constexpr uint64_t kMemSpanPages = 512;  // 2 MB

Program DecodeProgram(const std::vector<uint8_t>& bytes);

// Deny-list described above. Exposed for tests.
bool WriteAllowed(SysReg enc);

// Encoding pools the decoder draws from (EL2-encoded, EL1/EL0-encoded,
// VHE aliases, everything). Exposed for tests.
const std::vector<SysReg>& El2EncodingPool();
const std::vector<SysReg>& El1EncodingPool();
const std::vector<SysReg>& AliasEncodingPool();
const std::vector<SysReg>& AllEncodingPool();

}  // namespace neve::fuzz

#endif  // NEVE_SRC_FUZZ_PROGRAM_H_
