// The fuzzer's only randomness source: a byte stream decoded from the input.
//
// Every draw the program decoder makes comes from the input bytes, so the
// mapping input -> guest program is a pure function: the corpus stays
// replayable forever, minimization works by deleting bytes, and mutation
// works by editing them. When the stream runs dry it returns zeros and sets
// `exhausted`; the decoder treats exhaustion as end-of-program, which makes
// truncation a natural minimization operator.
//
// Engine-side randomness (mutation scheduling) uses the repo's seeded Rng;
// the srclint `fuzz-unseeded-randomness` rule keeps both this directory and
// that one free of ambient entropy (rand, std::random_device, ...).

#ifndef NEVE_SRC_FUZZ_SEED_STREAM_H_
#define NEVE_SRC_FUZZ_SEED_STREAM_H_

#include <cstdint>
#include <vector>

namespace neve::fuzz {

class SeedStream {
 public:
  explicit SeedStream(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  bool exhausted() const { return pos_ >= bytes_->size(); }
  size_t consumed() const { return pos_; }

  uint8_t U8() {
    if (exhausted()) {
      return 0;
    }
    return (*bytes_)[pos_++];
  }

  uint16_t U16() {
    uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(U8()) << (8 * i);
    }
    return v;
  }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t pos_ = 0;
};

}  // namespace neve::fuzz

#endif  // NEVE_SRC_FUZZ_SEED_STREAM_H_
