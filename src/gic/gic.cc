#include "src/gic/gic.h"

#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fault/guest_fault.h"

namespace neve {

GicV3::GicV3(int num_cpus) : num_cpus_(num_cpus) {
  // host-invariant: machine construction parameter, no guest influence.
  NEVE_CHECK(num_cpus > 0);
  cpus_.resize(num_cpus, nullptr);
  ack_info_.resize(num_cpus);
  virtual_acks_.resize(num_cpus, 0);
  virtual_eois_.resize(num_cpus, 0);
}

void GicV3::AttachCpu(Cpu* cpu) {
  // host-invariant: wiring happens at machine construction time.
  NEVE_CHECK(cpu != nullptr);
  // host-invariant: wiring happens at machine construction time.
  NEVE_CHECK(cpu->index() >= 0 && cpu->index() < num_cpus_);
  cpus_[cpu->index()] = cpu;
  cpu->SetGicCpuInterface(this);
}

Cpu& GicV3::CpuRef(int cpu) {
  // host-invariant: CPU indices come from machine wiring, not guest state.
  NEVE_CHECK(cpu >= 0 && cpu < num_cpus_ && cpus_[cpu] != nullptr);
  return *cpus_[cpu];
}

void GicV3::SendPhysSgi(int from_cpu, int to_cpu, uint8_t sgi_id) {
  // Only host hypervisor code sends physical SGIs, and the guest-facing SGI
  // emulation validates target masks before fanning out, so an out-of-range
  // target here is a hypervisor bug -- fail loudly, don't misroute the IPI.
  // host-invariant: guest-chosen targets were validated by EmulateSgi.
  NEVE_CHECK_MSG(to_cpu >= 0 && to_cpu < num_cpus_,
                 "physical SGI target out of range");
  // host-invariant: only host hypervisor code sends physical SGIs.
  NEVE_CHECK_MSG(sink_, "no physical IRQ sink installed");
  uint64_t raiser_cycles = CpuRef(from_cpu).cycles();
  if (ObsActive(obs_)) {
    obs_->metrics().Counter("gic.phys_sgis").Add(1);
    obs_->tracer().Instant(from_cpu, "gic", "phys_sgi", raiser_cycles);
  }
  // Injected IPI loss: the kick never reaches the target CPU (as a wire
  // glitch or distributor bug would). The queued virtual interrupt stays
  // pending until the next vcpu load.
  if (FaultActive(fault_) &&
      fault_->ShouldInject(FaultPoint::kGicDroppedIrq, to_cpu, raiser_cycles,
                           kSgiBase + sgi_id)) {
    return;
  }
  sink_(to_cpu, kSgiBase + sgi_id, raiser_cycles);
}

void GicV3::RaiseSpi(int target_cpu, uint32_t intid, uint64_t raiser_cycles) {
  // host-invariant: device models raise SPIs with device-fixed intids.
  NEVE_CHECK(intid >= kSpiBase);
  // host-invariant: the sink is installed at hypervisor construction.
  NEVE_CHECK_MSG(sink_, "no physical IRQ sink installed");
  if (FaultActive(fault_)) {
    // Injected interrupt loss: the device's SPI is silently swallowed.
    if (fault_->ShouldInject(FaultPoint::kGicDroppedIrq, target_cpu,
                             raiser_cycles, intid)) {
      return;
    }
    // Injected misrouting: the distributor delivers to the wrong CPU (a
    // corrupted affinity-routing table).
    if (num_cpus_ > 1 &&
        fault_->ShouldInject(FaultPoint::kGicMisroutedIrq, target_cpu,
                             raiser_cycles, intid)) {
      target_cpu = (target_cpu + 1) % num_cpus_;
    }
  }
  sink_(target_cpu, intid, raiser_cycles);
}

void GicV3::RaisePpi(int target_cpu, uint32_t intid, uint64_t raiser_cycles) {
  // host-invariant: the timer raises PPIs with architecture-fixed intids.
  NEVE_CHECK(intid >= kPpiBase && intid < kSpiBase);
  // host-invariant: the sink is installed at hypervisor construction.
  NEVE_CHECK_MSG(sink_, "no physical IRQ sink installed");
  // Injected interrupt loss (timer ticks can vanish too).
  if (FaultActive(fault_) &&
      fault_->ShouldInject(FaultPoint::kGicDroppedIrq, target_cpu,
                           raiser_cycles, intid)) {
    return;
  }
  sink_(target_cpu, intid, raiser_cycles);
}

int GicV3::FindPendingLr(const Cpu& cpu) const {
  int best = -1;
  uint32_t best_intid = kSpuriousIntid;
  for (int i = 0; i < kNumListRegs; ++i) {
    uint64_t lr = cpu.PeekReg(IchListRegister(i));
    if (ListReg::Pending(lr) && ListReg::Intid(lr) < best_intid) {
      best = i;
      best_intid = ListReg::Intid(lr);
    }
  }
  return best;
}

int GicV3::FindEmptyLr(const Cpu& cpu) const {
  for (int i = 0; i < kNumListRegs; ++i) {
    if (ListReg::Inactive(cpu.PeekReg(IchListRegister(i)))) {
      return i;
    }
  }
  return -1;
}

void GicV3::SyncStatusRegs(Cpu& cpu) const {
  uint64_t elrsr = 0;
  uint64_t eisr = 0;
  for (int i = 0; i < kNumListRegs; ++i) {
    uint64_t lr = cpu.PeekReg(IchListRegister(i));
    if (ListReg::Inactive(lr)) {
      elrsr = SetBit(elrsr, i);
    }
  }
  cpu.PokeReg(RegId::kICH_ELRSR_EL2, elrsr);
  cpu.PokeReg(RegId::kICH_EISR_EL2, eisr);
  cpu.PokeReg(RegId::kICH_MISR_EL2, 0);
}

uint64_t GicV3::IccRead(int cpu_idx, RegId reg) {
  Cpu& cpu = CpuRef(cpu_idx);
  switch (reg) {
    case RegId::kICC_IAR1_EL1: {
      // Injected spurious interrupt: the acknowledge races a deactivation
      // and reads back 1023 without acking anything. Well-written guests
      // (and the guest_kvm IRQ path) must tolerate this per the GIC spec.
      if (FaultActive(fault_) &&
          fault_->ShouldInject(FaultPoint::kGicSpuriousIrq, cpu_idx,
                               cpu.cycles())) {
        return kSpuriousIntid;
      }
      // Virtual acknowledge: highest-priority pending list register goes
      // active; the VM learns the intid -- no hypervisor involvement.
      int lr_idx = FindPendingLr(cpu);
      if (lr_idx < 0) {
        return kSpuriousIntid;
      }
      uint64_t lr = cpu.PeekReg(IchListRegister(lr_idx));
      cpu.PokeReg(IchListRegister(lr_idx), ListReg::ToActive(lr));
      SyncStatusRegs(cpu);
      ++virtual_acks_[cpu_idx];
      uint64_t ack_id = 0;
      if (ObsActive(obs_)) {
        obs_->metrics().Counter("gic.virtual_acks").Add(1);
        ack_id = obs_->tracer().Instant(cpu_idx, "gic", "virtual_ack",
                                        cpu.cycles(), "intid",
                                        ListReg::Intid(lr));
      }
      ack_info_[cpu_idx][lr_idx] =
          LrAckInfo{.ack_cycles = cpu.cycles(), .ack_trace_id = ack_id,
                    .valid = true};
      return ListReg::Intid(lr);
    }
    case RegId::kICC_HPPIR1_EL1: {
      int lr_idx = FindPendingLr(cpu);
      return lr_idx < 0
                 ? kSpuriousIntid
                 : ListReg::Intid(cpu.PeekReg(IchListRegister(lr_idx)));
    }
    case RegId::kICC_PMR_EL1:
    case RegId::kICC_BPR1_EL1:
    case RegId::kICC_IGRPEN1_EL1:
    case RegId::kICC_CTLR_EL1:
    case RegId::kICC_SRE_EL1:
      return cpu.PeekReg(reg);
    default:
      // Guest traffic to an ICC register the model does not implement:
      // confine to the offending VM rather than killing the simulation.
      RaiseGuestFault("unmodeled_icc", "unmodeled ICC read");
  }
  return 0;
}

void GicV3::IccWrite(int cpu_idx, RegId reg, uint64_t value) {
  Cpu& cpu = CpuRef(cpu_idx);
  switch (reg) {
    case RegId::kICC_EOIR1_EL1: {
      // Virtual EOI: deactivate the matching active list register. Hardware-
      // accelerated -- no trap (Tables 1/6, "Virtual EOI" row).
      uint32_t intid = static_cast<uint32_t>(value);
      for (int i = 0; i < kNumListRegs; ++i) {
        uint64_t lr = cpu.PeekReg(IchListRegister(i));
        if (ListReg::Active(lr) && ListReg::Intid(lr) == intid) {
          cpu.PokeReg(IchListRegister(i), 0);
          SyncStatusRegs(cpu);
          ++virtual_eois_[cpu_idx];
          LrAckInfo& ai = ack_info_[cpu_idx][i];
          if (ObsActive(obs_)) {
            obs_->metrics().Counter("gic.virtual_eois").Add(1);
            obs_->tracer().Instant(cpu_idx, "gic", "virtual_eoi", cpu.cycles(),
                                   "intid", intid);
            if (ai.valid) {
              // Ack-to-EOI distance: how long the virtual interrupt stayed
              // active in the guest's handler. The ack instant is the
              // exemplar so a slow handler links back to its trace event.
              obs_->metrics()
                  .Histogram("gic.virtual_irq_active_cycles")
                  .RecordWithExemplar(cpu.cycles() - ai.ack_cycles,
                                      ai.ack_trace_id);
            }
          }
          ai.valid = false;
          return;
        }
      }
      // EOI for an interrupt not in the LRs: ignored (spec: priority drop
      // still happens; nothing to deactivate in the model).
      return;
    }
    case RegId::kICC_DIR_EL1:
      return;  // separate deactivation: modeled as part of EOI
    case RegId::kICC_SGI1R_EL1: {
      // Reached only from contexts where SGI writes do not trap (host EL2
      // sending a physical IPI).
      // host-invariant: host code builds kick masks from physical CPU
      // indices; a mask bit past num_cpus_ would silently drop an IPI.
      NEVE_CHECK_MSG(SgiR::Encodable(value) &&
                         (SgiR::TargetMask(value) >> num_cpus_) == 0,
                     "host SGI mask targets nonexistent CPUs");
      uint16_t mask = SgiR::TargetMask(value);
      for (int t = 0; t < num_cpus_; ++t) {
        if ((mask >> t) & 1) {
          SendPhysSgi(cpu_idx, t, SgiR::SgiId(value));
        }
      }
      return;
    }
    case RegId::kICC_PMR_EL1:
    case RegId::kICC_BPR1_EL1:
    case RegId::kICC_IGRPEN1_EL1:
    case RegId::kICC_CTLR_EL1:
    case RegId::kICC_SRE_EL1:
      cpu.PokeReg(reg, value);
      return;
    default:
      RaiseGuestFault("unmodeled_icc", "unmodeled ICC write");
  }
}

}  // namespace neve
