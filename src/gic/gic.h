// GICv3 interrupt controller model.
//
// Three roles, matching how the paper's stack uses the GIC:
//
//  1. Physical distribution: SGIs (IPIs between physical CPUs) and SPIs
//     (device interrupts) delivered to target CPUs through a registered
//     sink -- in practice the host hypervisor, because HCR_EL2.IMO routes
//     IRQs to EL2 whenever a VM is running.
//
//  2. The *hypervisor control interface* (ICH_* registers, Table 5): list
//     registers and control state that hypervisor software programs to
//     inject virtual interrupts. Storage lives in each CPU's system-register
//     file; this class interprets it.
//
//  3. The *virtual CPU interface* (ICC_* at EL1 from a VM): hardware-
//     accelerated acknowledge and EOI against the list registers, with no
//     trap to the hypervisor -- the reason Virtual EOI costs 71 cycles in
//     every configuration of Tables 1 and 6.

#ifndef NEVE_SRC_GIC_GIC_H_
#define NEVE_SRC_GIC_GIC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/bits.h"
#include "src/cpu/cpu.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes ack bookkeeping and counter shards
}  // namespace snap

// Interrupt id ranges (GICv3 architecture).
inline constexpr uint32_t kSgiBase = 0;     // 0-15: inter-processor
inline constexpr uint32_t kPpiBase = 16;    // 16-31: per-CPU peripherals
inline constexpr uint32_t kSpiBase = 32;    // 32+: shared peripherals
inline constexpr uint32_t kSpuriousIntid = 1023;

// List-register encoding (trimmed ICH_LR<n>_EL2 layout).
struct ListReg {
  static constexpr unsigned kStatePendingBit = 62;
  static constexpr unsigned kStateActiveBit = 63;

  static uint64_t MakePending(uint32_t intid) {
    return SetBit(static_cast<uint64_t>(intid), kStatePendingBit);
  }
  static uint32_t Intid(uint64_t lr) {
    return static_cast<uint32_t>(lr & 0xFFFFFFFF);
  }
  static bool Pending(uint64_t lr) { return TestBit(lr, kStatePendingBit); }
  static bool Active(uint64_t lr) { return TestBit(lr, kStateActiveBit); }
  static bool Inactive(uint64_t lr) { return !Pending(lr) && !Active(lr); }
  static uint64_t ToActive(uint64_t lr) {
    return SetBit(ClearBit(lr, kStatePendingBit), kStateActiveBit);
  }
};

// ICC_SGI1R target encoding (simplified): low 16 bits = target CPU mask,
// bits [27:24] = SGI id.
struct SgiR {
  // Every architecturally meaningful bit of the simplified encoding. A
  // write with any other bit set is malformed: TargetMask/SgiId would
  // silently truncate it, so emulation paths reject it up front (a guest
  // writing garbage into ICC_SGI1R gets a confined fault, not a
  // quietly-misrouted IPI).
  static constexpr uint64_t kEncodableMask =
      UINT64_C(0xFFFF) | (UINT64_C(0xF) << 24);

  static bool Encodable(uint64_t v) { return (v & ~kEncodableMask) == 0; }

  static uint64_t Make(uint16_t target_mask, uint8_t sgi_id) {
    return static_cast<uint64_t>(target_mask) |
           (static_cast<uint64_t>(sgi_id & 0xF) << 24);
  }
  static uint16_t TargetMask(uint64_t v) { return v & 0xFFFF; }
  static uint8_t SgiId(uint64_t v) { return (v >> 24) & 0xF; }
};

class GicV3 : public GicCpuInterface {
 public:
  // A physical interrupt became pending for cpu `target`; `raiser_cycles` is
  // the raising context's clock (sender CPU or device model) for cross-CPU
  // time propagation. The sink is the host hypervisor's physical-IRQ entry.
  using PhysIrqSink =
      std::function<void(int target_cpu, uint32_t intid, uint64_t raiser_cycles)>;

  explicit GicV3(int num_cpus);

  void AttachCpu(Cpu* cpu);
  void SetPhysIrqSink(PhysIrqSink sink) { sink_ = std::move(sink); }
  void SetObservability(Observability* obs) { obs_ = obs; }
  // Machine-wide fault injector (drop/misroute/spurious interrupt points);
  // may stay null for bare GICs built outside a Machine.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  int num_list_regs() const { return kNumListRegs; }

  // --- physical side -------------------------------------------------------
  // Sends a physical SGI (host IPI / vcpu kick).
  void SendPhysSgi(int from_cpu, int to_cpu, uint8_t sgi_id);
  // Raises a shared peripheral interrupt routed to `target_cpu`.
  void RaiseSpi(int target_cpu, uint32_t intid, uint64_t raiser_cycles);
  // Raises a private peripheral interrupt (timers) on `target_cpu`.
  void RaisePpi(int target_cpu, uint32_t intid, uint64_t raiser_cycles);

  // --- hypervisor control interface helpers (used by hyp/vgic) -------------
  // Finds an empty list register on `cpu` via direct state inspection, or -1.
  // The *hypervisor software* instead reads ICH_ELRSR through sysreg ops so
  // traps are modeled; this helper is for tests and assertions.
  int FindEmptyLr(const Cpu& cpu) const;

  // Recomputes the read-only ICH status registers (ELRSR, EISR, MISR) from
  // the list registers. The hypervisor model calls this after LR updates,
  // standing in for the hardware keeping them coherent.
  void SyncStatusRegs(Cpu& cpu) const;

  // --- virtual CPU interface (GicCpuInterface) -------------------------------
  uint64_t IccRead(int cpu, RegId reg) override;
  void IccWrite(int cpu, RegId reg, uint64_t value) override;

  // Statistics. The backing counters are sharded per CPU (each vCPU lane
  // acks/EOIs only through its own CPU's interface, so the shards are
  // single-writer under SMP); the accessors sum on read in index order,
  // which keeps the totals deterministic at every --threads value.
  uint64_t virtual_acks() const { return SumShards(virtual_acks_); }
  uint64_t virtual_eois() const { return SumShards(virtual_eois_); }

 private:
  static constexpr int kNumListRegs = 4;

  // Virtual-ack bookkeeping per (cpu, list register): when the matching EOI
  // arrives, the ack-to-EOI distance feeds the
  // "gic.virtual_irq_active_cycles" histogram, with the ack's tracer event id
  // as the bucket exemplar (histogram outlier -> the trace event behind it).
  struct LrAckInfo {
    uint64_t ack_cycles = 0;
    uint64_t ack_trace_id = 0;
    bool valid = false;
  };

  Cpu& CpuRef(int cpu);

  // Highest-priority pending list register (lowest intid wins), or -1.
  int FindPendingLr(const Cpu& cpu) const;

  static uint64_t SumShards(const std::vector<uint64_t>& shards) {
    uint64_t total = 0;
    for (uint64_t s : shards) {
      total += s;
    }
    return total;
  }

  friend class snap::Serializer;

  int num_cpus_;            // not-snapshotted: fixed at construction, verified
  std::vector<Cpu*> cpus_;  // not-snapshotted: host wiring
  // Indexed by CPU: each entry is only touched through that CPU's own ICC
  // interface, so two vCPU lanes never share a slot (the SMP-safety shape
  // the per-CPU ack/EOI shards below follow too).
  std::vector<std::array<LrAckInfo, kNumListRegs>> ack_info_;
  PhysIrqSink sink_;                // not-snapshotted: host wiring
  Observability* obs_ = nullptr;    // not-snapshotted: host wiring
  FaultInjector* fault_ = nullptr;  // not-snapshotted: host wiring
  // Per-CPU shards (see virtual_acks()/virtual_eois()): slot i is mutated
  // only from CPU i's ack/EOI path, so concurrent lanes never race on a
  // shard and the summed read is exact at quiescence.
  std::vector<uint64_t> virtual_acks_;  // single-mutator: snap restore
  std::vector<uint64_t> virtual_eois_;  // single-mutator: snap restore
};

}  // namespace neve

#endif  // NEVE_SRC_GIC_GIC_H_
