// Emulated MMIO devices.
//
// A device occupies an IPA range that is deliberately absent from the VM's
// Stage-2 tables, so every guest access faults to the hypervisor (the
// "trivially traps when not mapped" mechanism from section 4). Emulation
// runs in hypervisor context; costs are charged through the CPU.

#ifndef NEVE_SRC_HYP_DEVICES_H_
#define NEVE_SRC_HYP_DEVICES_H_

#include <cstdint>

#include "src/cpu/cpu.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes device-model counters
}  // namespace snap

class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual uint64_t MmioRead(Cpu& cpu, uint64_t offset) = 0;
  virtual void MmioWrite(Cpu& cpu, uint64_t offset, uint64_t value) = 0;
};

// The kvm-unit-test style test device: a register block whose accesses are
// absorbed with a fixed emulation cost. Mirrors the "Device I/O" benchmark's
// emulated device (Table 1: Device I/O = Hypercall + device emulation work).
class TestDevice : public MmioDevice {
 public:
  explicit TestDevice(uint32_t emulation_cycles)
      : emulation_cycles_(emulation_cycles) {}

  uint64_t MmioRead(Cpu& cpu, uint64_t offset) override {
    cpu.Compute(emulation_cycles_);
    ++reads_;
    return 0xD0D0'0000 | (offset & 0xFFFF);
  }
  void MmioWrite(Cpu& cpu, uint64_t offset, uint64_t value) override {
    cpu.Compute(emulation_cycles_);
    ++writes_;
    last_write_ = value;
    (void)offset;
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t last_write() const { return last_write_; }

 private:
  friend class snap::Serializer;

  uint32_t emulation_cycles_;  // not-snapshotted: fixed at construction
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t last_write_ = 0;
};

}  // namespace neve

#endif  // NEVE_SRC_HYP_DEVICES_H_
