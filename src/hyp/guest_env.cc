#include "src/hyp/guest_env.h"

#include "src/base/status.h"
#include "src/hyp/vm.h"

namespace neve {

void GuestEnv::SetIrqHandler(GuestIrqHandler handler) {
  vcpu_->SoftwareFor(vcpu_->mode).irq = std::move(handler);
}

void GuestEnv::SetVel2Handler(Vel2Handler* handler) {
  // host-invariant: handlers are C++ objects wired by the workload code.
  NEVE_CHECK(handler != nullptr);
  vcpu_->SoftwareFor(vcpu_->mode).vel2 = handler;
}

void GuestEnv::SetNestedProgram(GuestMain program) {
  // host-invariant: only GuestKvm (itself gated on virtual_el2) calls this.
  NEVE_CHECK_MSG(vcpu_->vm().config().virtual_el2,
                 "only guest hypervisors load nested images");
  // A hypervisor running as someone's nested guest loads images one level
  // deeper than a first-level guest hypervisor.
  GuestSoftware& slot = vcpu_->mode == VcpuMode::kVel1Nested
                            ? vcpu_->nested2_sw
                            : vcpu_->nested_sw;
  slot.main = std::move(program);
  slot.started = false;
}

void GuestEnv::DeferVectorCall(Vel2Handler* handler, const Syndrome& syndrome) {
  // host-invariant: handlers are C++ objects wired by the workload code.
  NEVE_CHECK(handler != nullptr);
  // host-invariant: single-slot deferral is GuestKvm's own sequencing.
  NEVE_CHECK_MSG(!vcpu_->deferred_vector.has_value(),
                 "a vector call is already pending");
  vcpu_->deferred_vector =
      Vcpu::DeferredVector{.handler = handler, .syndrome = syndrome};
}

void GuestEnv::RequestRetry() { vcpu_->mmio_retry = true; }

void GuestEnv::CompleteMmio(uint64_t value) { vcpu_->mmio_result = value; }

void GuestEnv::ParkRunning() { vcpu_->parked = true; }

bool GuestEnv::parked() const { return vcpu_->parked; }

}  // namespace neve
