#include "src/hyp/guest_env.h"

#include <utility>

#include "src/base/status.h"
#include "src/fault/guest_fault.h"
#include "src/hyp/vm.h"
#include "src/sim/smp.h"

namespace neve {

void GuestEnv::SetIrqHandler(GuestIrqHandler handler) {
  vcpu_->SoftwareFor(vcpu_->mode).irq = std::move(handler);
}

void GuestEnv::SetVel2Handler(Vel2Handler* handler) {
  // host-invariant: handlers are C++ objects wired by the workload code.
  NEVE_CHECK(handler != nullptr);
  vcpu_->SoftwareFor(vcpu_->mode).vel2 = handler;
}

void GuestEnv::SetNestedProgram(GuestMain program) {
  // host-invariant: only GuestKvm (itself gated on virtual_el2) calls this.
  NEVE_CHECK_MSG(vcpu_->vm().config().virtual_el2,
                 "only guest hypervisors load nested images");
  // A hypervisor running as someone's nested guest loads images one level
  // deeper than a first-level guest hypervisor.
  GuestSoftware& slot = vcpu_->mode == VcpuMode::kVel1Nested
                            ? vcpu_->nested2_sw
                            : vcpu_->nested_sw;
  slot.main = std::move(program);
  slot.started = false;
}

void GuestEnv::DeferVectorCall(Vel2Handler* handler, const Syndrome& syndrome) {
  // host-invariant: handlers are C++ objects wired by the workload code.
  NEVE_CHECK(handler != nullptr);
  // host-invariant: single-slot deferral is GuestKvm's own sequencing.
  NEVE_CHECK_MSG(!vcpu_->deferred_vector.has_value(),
                 "a vector call is already pending");
  vcpu_->deferred_vector =
      Vcpu::DeferredVector{.handler = handler, .syndrome = syndrome};
}

void GuestEnv::RequestRetry() { vcpu_->mmio_retry = true; }

void GuestEnv::CompleteMmio(uint64_t value) { vcpu_->mmio_result = value; }

void GuestEnv::ParkRunning() { vcpu_->parked = true; }

bool GuestEnv::parked() const { return vcpu_->parked; }

void GuestEnv::SmpWaitUntil(std::function<bool()> pred) {
  if (SmpEngine* engine = SmpEngine::Current(); engine != nullptr) {
    engine->SetWaitPred(SmpEngine::CurrentLane(), std::move(pred));
    cpu_->Hvc(kHvcSmpWait);
    return;
  }
  // Cooperative path: every cross-vCPU send already delivered synchronously
  // on this thread, so there is no pending event left to satisfy the
  // predicate later -- an unsatisfied predicate here can never make
  // progress.
  if (!pred()) {
    RaiseGuestFault("smp_wait_stuck",
                    "cooperative SMP wait: predicate unsatisfied with no "
                    "pending cross-vCPU work");
  }
  cpu_->Hvc(kHvcSmpWait);
}

}  // namespace neve
