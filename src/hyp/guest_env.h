// Guest software model.
//
// Simulated guest software -- workloads, guest OS kernels, guest hypervisors
// -- is C++ code executing operations through a GuestEnv. The env wraps the
// CPU operation API (every call is cycle-charged and may trap per the
// NV/NEVE rules) and adds the registration hooks that stand in for state a
// real guest establishes in memory/registers:
//
//   SetIrqHandler    "I wrote my EL1 exception vector" (VBAR_EL1)
//   SetVel2Handler   "I wrote my EL2 exception vector" (VBAR_EL2, as seen by
//                    a guest hypervisor in virtual EL2)
//   SetNestedProgram "I loaded a software image for my own guest to run"
//
// The host hypervisor consults these when it emulates exception delivery or
// starts a nested context, mirroring how hardware would vector into the
// registered addresses.

#ifndef NEVE_SRC_HYP_GUEST_ENV_H_
#define NEVE_SRC_HYP_GUEST_ENV_H_

#include <cstdint>
#include <functional>

#include "src/cpu/cpu.h"

namespace neve {

class Vcpu;
class GuestEnv;

// A guest's EL1 IRQ vector: invoked (through the full virtualization stack)
// when a virtual interrupt is delivered while the guest runs.
using GuestIrqHandler = std::function<void(GuestEnv&, uint32_t intid)>;

// A guest hypervisor's virtual-EL2 exception vector: invoked when the host
// forwards an exit (trap, IRQ) from the guest hypervisor's own guest.
class Vel2Handler {
 public:
  virtual ~Vel2Handler() = default;
  virtual void OnVirtualExit(GuestEnv& env, const Syndrome& syndrome) = 0;
};

// Guest entry point.
using GuestMain = std::function<void(GuestEnv&)>;

// Paravirtual "SMP wait" hypercall immediate (see SmpWaitUntil): the host
// parks the issuing vCPU's lane at a deterministic rendezvous until the
// registered predicate holds. Intercepted by the host for every guest level
// (an L2's SmpWait is host business, never forwarded to its guest
// hypervisor), like KVM's own PV hypercalls.
inline constexpr uint16_t kHvcSmpWait = 0x4B20;

class GuestEnv {
 public:
  GuestEnv(Cpu* cpu, Vcpu* vcpu) : cpu_(cpu), vcpu_(vcpu) {}

  Cpu& cpu() { return *cpu_; }
  Vcpu& vcpu() { return *vcpu_; }

  // --- plain CPU operations (cycle-charged; may trap) ----------------------
  uint64_t ReadSys(SysReg enc) { return cpu_->SysRegRead(enc); }
  void WriteSys(SysReg enc, uint64_t v) { cpu_->SysRegWrite(enc, v); }
  El CurrentEl() { return cpu_->ReadCurrentEl(); }
  void Hvc(uint16_t imm) { cpu_->Hvc(imm); }
  void Wfi() { cpu_->Wfi(); }
  void Barrier() { cpu_->Barrier(); }
  void TlbiAll() { cpu_->TlbiAll(); }
  void Compute(uint32_t cycles) { cpu_->Compute(cycles); }
  uint64_t Load(Va va) { return cpu_->LoadVa(va); }
  void Store(Va va, uint64_t v) { cpu_->StoreVa(va, v); }

  // eret from virtual EL2: enter this guest hypervisor's own guest. Returns
  // when the nested workload has finished or parked (see ParkRunning); all
  // intermediate exits are delivered through the registered Vel2Handler.
  void EretToGuest() { cpu_->EretFromVirtualEl2(); }

  // --- registration hooks ---------------------------------------------------
  void SetIrqHandler(GuestIrqHandler handler);
  void SetVel2Handler(Vel2Handler* handler);

  // Guest-hypervisor only: registers the software its guest will run. The
  // host starts it on the first eret into a fresh nested context. Called
  // from virtual EL2 this loads the L2 image; called from a nested
  // hypervisor (an L2 in virtual-virtual EL2) it loads the L3 image.
  void SetNestedProgram(GuestMain program);

  // Guest-hypervisor only: schedules `handler` to be invoked (with
  // `syndrome`) when control next reaches the guest this hypervisor is
  // about to resume -- the simulation's expression of "my eret lands at the
  // deeper hypervisor's exception vector". Used for recursive nesting: a
  // guest hypervisor forwarding its own guest's exits one level down.
  void DeferVectorCall(Vel2Handler* handler, const Syndrome& syndrome);

  // Guest-hypervisor only: tells the host that a forwarded Stage-2 fault
  // was resolved by fixing translation state (not by emulating MMIO); the
  // host replays the faulting access.
  void RequestRetry();

  // Guest-hypervisor only: completes a forwarded MMIO access on behalf of
  // the nested VM (modeling "wrote the emulated value into the VM's x0").
  void CompleteMmio(uint64_t value);

  // Leaves this guest "running" from the hypervisor's point of view while
  // returning from its main function -- used by vCPUs whose foreground work
  // is an idle/spin loop and whose interesting activity is interrupt-driven
  // (e.g. the Virtual IPI receiver). The full register/mode state stays
  // loaded; interrupts delivered later run against it.
  void ParkRunning();
  bool parked() const;

  // SMP rendezvous: parks this vCPU until `pred` holds. Under the SMP
  // engine this issues the kHvcSmpWait hypercall (one real trap; the host
  // parks the lane and cross-vCPU events are merged while everyone waits).
  // On the cooperative path, cross-vCPU delivery already ran synchronously
  // inside the sends, so the predicate must hold on entry -- a predicate
  // that does not is a guest-level deadlock and confines the VM. Both paths
  // execute the same hypercall so trap counts match across threading modes.
  void SmpWaitUntil(std::function<bool()> pred);

 private:
  // not-snapshotted: call-stack wiring; a GuestEnv lives in the guest
  // body's C++ frame, which restore re-creates by replaying the boot.
  Cpu* cpu_;
  Vcpu* vcpu_;  // not-snapshotted: see cpu_
};

}  // namespace neve

#endif  // NEVE_SRC_HYP_GUEST_ENV_H_
