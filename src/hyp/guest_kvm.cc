#include "src/hyp/guest_kvm.h"

#include "src/arch/vncr.h"
#include "src/base/bits.h"
#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fault/guest_fault.h"
#include "src/gic/gic.h"
#include "src/sim/smp.h"

namespace neve {
namespace {

// Layout of the guest hypervisor's own guest-physical space: nested VM RAM
// carve-outs start at one quarter of its memory (below is "its kernel"),
// page tables come from the top eighth.
constexpr uint64_t kNestedRamFraction = 4;
constexpr uint64_t kTableFraction = 8;

// The guest hypervisor's kick SGI for its own vCPUs.
constexpr uint8_t kNestedKickSgi = 2;

// Enqueues `virq` on an L2 vcpu. Under the SMP engine a cross-lane enqueue
// is deferred to the next merge point (the L2 vcpu's lane is the L1 virtual
// CPU it is loaded on; lane == pcpu == vcpu index). Event-time propagation
// rides the host-level kick SGI's own deferral, so only the queue mutation
// is deferred here.
void EnqueueNestedVirq(GuestEnv& env, Vcpu& target, int target_pv,
                       uint32_t virq) {
  if (SmpEngine* eng = SmpEngine::Current(); eng != nullptr) {
    int target_lane = target_pv >= 0 ? target_pv : target.id();
    if (target_lane != SmpEngine::CurrentLane()) {
      Vcpu* t = &target;
      eng->Defer(target_lane, env.cpu().cycles(), [t, virq] {
        t->pending_virq.push_back(virq);
        ++t->virqs_enqueued;
      });
      return;
    }
  }
  target.pending_virq.push_back(virq);
  ++target.virqs_enqueued;
}

}  // namespace

GuestKvm::GuestKvm(GuestEnv* boot_env, Machine* machine,
                   const GuestKvmConfig& config)
    : GuestKvm(boot_env, machine, config, &machine->mem(),
               &boot_env->vcpu().vm().s2(),
               boot_env->vcpu().vm().config().ram_size) {}

GuestKvm::GuestKvm(GuestEnv* boot_env, Machine* machine,
                   const GuestKvmConfig& config, MemIo* parent_space,
                   const Stage2Table* my_s2, uint64_t my_ram_size)
    : machine_(machine),
      config_(config),
      view_(parent_space, my_s2),
      table_alloc_(&view_, Pa(my_ram_size - my_ram_size / kTableFraction),
                   my_ram_size / kTableFraction),
      next_nested_ram_(my_ram_size / kNestedRamFraction),
      nested_ram_end_(my_ram_size - my_ram_size / kTableFraction) {
  // host-invariant: construction wiring supplied by the embedder.
  NEVE_CHECK(machine != nullptr);
  pvcpu_.resize(boot_env->vcpu().vm().num_vcpus());
  // Sanity: we believe we run in EL2 (the NV disguise) -- a hypervisor
  // booting in EL1 would bail out here, which is exactly the pre-ARMv8.3
  // crash scenario of section 2. The disguise holds transitively for an L2
  // hypervisor under recursive nesting. This is guest code bailing out, so
  // it dies as a guest: the VM is killed, the machine lives.
  NEVE_GUEST_CHECK(boot_env->CurrentEl() == El::kEl2, "no_nv_boot",
                   "guest hypervisor does not see EL2: no NV support?");
  boot_env->SetVel2Handler(this);
  // Hypervisor boot: vector base, hyp configuration (trapped or deferred
  // depending on the architecture; boot cost is not part of any benchmark).
  boot_env->WriteSys(SysReg::kVBAR_EL2, 0xFFFF'0000'0000'0800ull);
  // RES1 bits with M clear: the simulated guest hypervisor runs identity
  // mapped (its Stage-1 tables are not modeled; under NEVE/NV this write
  // reaches the hardware SCTLR_EL1 via redirection, so an enabled MMU here
  // would demand real tables).
  boot_env->WriteSys(SysReg::kSCTLR_EL2, 0x30C5'0830ull);
  boot_env->WriteSys(SysReg::kTPIDR_EL2, 0x1000 + boot_env->vcpu().id());
}

void GuestKvm::AttachVcpu(GuestEnv& env) {
  NEVE_GUEST_CHECK(env.CurrentEl() == El::kEl2, "no_nv_boot",
                   "secondary vcpu does not see EL2");
  env.SetVel2Handler(this);
  env.WriteSys(SysReg::kVBAR_EL2, 0xFFFF'0000'0000'0800ull);
  env.WriteSys(SysReg::kTPIDR_EL2, 0x1000 + env.vcpu().id());
}

GuestKvm::PvcpuState& GuestKvm::PstateOf(GuestEnv& env) {
  return pvcpu_.at(env.vcpu().id());
}

GuestKvm::NestedVcpuState& GuestKvm::NstateOf(Vcpu& vcpu) {
  MutexLock lock(nstate_mu_);
  auto& slot = nstate_[&vcpu];
  if (slot == nullptr) {
    slot = std::make_unique<NestedVcpuState>();
    slot->spsr = static_cast<uint64_t>(El::kEl1);
  }
  return *slot;
}

Vm* GuestKvm::CreateVm(const VmConfig& config) {
  // The guest hypervisor over-committing its own RAM is its bug.
  NEVE_GUEST_CHECK(next_nested_ram_ + config.ram_size <= nested_ram_end_,
                   "guest_oom",
                   "guest hypervisor out of memory for nested VMs");
  Pa ram_base(next_nested_ram_);
  next_nested_ram_ += config.ram_size;
  vms_.push_back(
      std::make_unique<Vm>(config, ram_base, &view_, &table_alloc_));
  return vms_.back().get();
}

void GuestKvm::RunVcpu(GuestEnv& env, Vcpu& vcpu, GuestMain program) {
  PvcpuState& ps = PstateOf(env);
  // host-invariant: nested scheduling is sequenced by the workload harness.
  NEVE_CHECK_MSG(ps.running == nullptr, "virtual CPU already runs a vcpu");
  ps.running = &vcpu;
  vcpu.loaded_on_pcpu = env.vcpu().id();

  // Recursive nesting: our guest is itself a hypervisor.
  if (vcpu.vm().config().virtual_el2) {
    NestedVcpuState& ns = NstateOf(vcpu);
    if (ns.rec == nullptr) {
      ns.rec = std::make_unique<RecState>();
      ns.rec->shadow = std::make_unique<ShadowS2>(&view_, &table_alloc_);
      ns.rec->shadow->SetFaultInjector(&machine_->fault());
      if (vcpu.vm().config().expose_neve) {
        // The deferred access page for our guest lives in *our* memory; the
        // host translates its address through Stage-2 when emulating NEVE
        // for the deeper level (section 6.2).
        NEVE_GUEST_CHECK(next_nested_ram_ + kPageSize <= nested_ram_end_,
                         "guest_oom",
                         "guest hypervisor out of memory for a deferred page");
        ns.rec->page_ipa = Pa(next_nested_ram_);
        ns.rec->has_page = true;
        next_nested_ram_ += kPageSize;
      }
    }
  }

  env.SetNestedProgram(std::move(program));
  env.Compute(SwCost::kVcpuLoadPut);
  SwitchIntoNested(env, vcpu);
  env.EretToGuest();
  // Control returns here only when the nested program finished or parked;
  // every intermediate exit arrived through OnVirtualExit instead.
  if (env.parked()) {
    return;
  }
  env.Compute(SwCost::kVcpuLoadPut);
  ps.running = nullptr;
  vcpu.loaded_on_pcpu = -1;
}

void GuestKvm::SwitchIntoNested(GuestEnv& env, Vcpu& vcpu) {
  Cpu& cpu = env.cpu();
  PvcpuState& ps = PstateOf(env);
  NestedVcpuState& ns = NstateOf(vcpu);

  env.Compute(SwCost::kRunLoop);
  env.Compute(SwCost::kGprSwitch);
  TouchPerCpuData(cpu);
  if (!config_.vhe) {
    // Split design: the kernel's EL1 context must leave the hardware before
    // the nested VM's context is loaded.
    SaveEl1Context(cpu, /*vhe=*/false, &ps.kernel_el1);
    SaveExtEl1Context(cpu, /*vhe=*/false, &ps.kernel_ext);
  }
  RestoreEl1Context(cpu, config_.vhe, ns.el1);
  RestoreExtEl1Context(cpu, config_.vhe, ns.ext);
  RestorePmuDebugState(cpu, ns.pmu);

  VgicContext vg;
  while (!vcpu.pending_virq.empty() &&
         vg.lrs_in_use < machine_->gic().num_list_regs()) {
    vg.lr[vg.lrs_in_use++] = ListReg::MakePending(vcpu.pending_virq.front());
    vcpu.pending_virq.pop_front();
  }
  if (config_.gicv2_mmio) {
    Gicv2RestoreVgic(env, vg);
  } else {
    RestoreVgic(cpu, vg);
  }

  RestoreGuestTimer(cpu, config_.vhe, ps.timer, /*cntvoff=*/0);
  if (config_.vhe) {
    // A VHE hypervisor arms its own EL2 virtual timer through EL1 access
    // instructions (redirected by E2H; they reach the EL1 virtual timer
    // when deprivileged -- section 7.1).
    (void)cpu.SysRegRead(SysReg::kCNTV_CTL_EL0);
    cpu.SysRegWrite(SysReg::kCNTV_CTL_EL0, 0);
  }

  // Trap controls for the context being entered. A plain guest (and a
  // recursive stack's vv-kernel) runs under our Stage-2 for its VM; a guest
  // hypervisor in virtual-virtual EL2 additionally gets NV (and, if we
  // expose NEVE to it, our virtual VNCR); its own guest (the L3) runs under
  // the recursive shadow we maintain.
  uint64_t vhcr = Hcr::Make({HcrBits::kVm, HcrBits::kImo, HcrBits::kFmo});
  uint64_t vttbr = vcpu.vm().s2().root().value;
  if (ns.rec != nullptr) {
    switch (ns.rec->mode) {
      case RecState::VvMode::kVvel2:
        vhcr = SetBit(vhcr, HcrBits::kNv);
        if (!vcpu.vm().config().guest_vhe) {
          vhcr = SetBit(vhcr, HcrBits::kNv1);
        }
        cpu.SysRegWrite(
            SysReg::kVNCR_EL2,
            ns.rec->has_page
                ? VncrEl2::Make(ns.rec->page_ipa.value, true).bits()
                : 0);
        break;
      case RecState::VvMode::kVvKernel:
        cpu.SysRegWrite(SysReg::kVNCR_EL2, 0);
        break;
      case RecState::VvMode::kVvNested:
        vttbr = ns.rec->shadow->table().root().value;
        cpu.SysRegWrite(SysReg::kVNCR_EL2, 0);
        break;
    }
  }
  WriteGuestTrapControls(cpu, vhcr, vttbr, static_cast<uint64_t>(vcpu.id()));
  WriteReturnState(cpu, config_.vhe, ns.elr, ns.spsr);
}

void GuestKvm::SwitchOutOfNested(GuestEnv& env, Vcpu& vcpu) {
  Cpu& cpu = env.cpu();
  PvcpuState& ps = PstateOf(env);
  NestedVcpuState& ns = NstateOf(vcpu);

  TouchPerCpuData(cpu);
  env.Compute(SwCost::kGprSwitch);
  ExitInfo info = ReadExitInfo(cpu, config_.vhe, /*read_fault_regs=*/true);
  ns.elr = info.elr;
  ns.spsr = info.spsr;
  SaveEl1Context(cpu, config_.vhe, &ns.el1);
  SaveExtEl1Context(cpu, config_.vhe, &ns.ext);
  SavePmuDebugState(cpu, &ns.pmu);

  VgicContext vg;
  vg.lrs_in_use = machine_->gic().num_list_regs() == 0 ? 0 : 1;
  // Read back the first list register (the common case: at most one
  // interrupt in flight) and requeue anything still pending.
  if (config_.gicv2_mmio) {
    Gicv2SaveVgic(env, &vg);
  } else {
    SaveVgic(cpu, &vg);
  }
  if (ListReg::Pending(vg.lr[0])) {
    vcpu.pending_virq.push_front(ListReg::Intid(vg.lr[0]));
  }

  SaveGuestTimer(cpu, config_.vhe, &ps.timer);
  if (!config_.vhe) {
    RestoreEl1Context(cpu, /*vhe=*/false, ps.kernel_el1);
    RestoreExtEl1Context(cpu, /*vhe=*/false, ps.kernel_ext);
  }
  WriteHostTrapControls(cpu, /*host_hcr=*/0);
  env.Compute(SwCost::kRunLoop);
}

void GuestKvm::OnVirtualExit(GuestEnv& env, const Syndrome& s) {
  PvcpuState& ps = PstateOf(env);
  // host-invariant: the host only vectors here while RunVcpu has a nested
  // vcpu loaded on this virtual CPU.
  NEVE_CHECK_MSG(ps.running != nullptr,
                 "virtual exit with no nested vcpu loaded");
  Vcpu& vcpu = *ps.running;
  ++vcpu.exits;

  SwitchOutOfNested(env, vcpu);
  env.Compute(SwCost::kExitDispatch);

  if (!config_.vhe) {
    // Split design: exit handling runs in the kernel at virtual EL1. The
    // eret below and the hvc after the handler both trap to the host --
    // the two extra exits per handled event unique to non-VHE guests.
    env.EretToGuest();
    env.Compute(SwCost::kGuestKernelWork);
    HandleNestedExit(env, vcpu, s);
    env.Hvc(kHvcKernelToHyp);
  } else {
    env.Compute(SwCost::kGuestKernelWork);
    HandleNestedExit(env, vcpu, s);
  }

  SwitchIntoNested(env, vcpu);
  env.EretToGuest();
  // Contract: the host resumed the nested VM; this vector must unwind now.
}

void GuestKvm::HandleNestedExit(GuestEnv& env, Vcpu& vcpu, const Syndrome& s) {
  if (FaultInjector& fi = machine_->fault(); FaultActive(&fi)) {
    // Injected guest-hypervisor panic: the L1's exit handler hits its own
    // BUG() while servicing this exit. The whole L1 VM (and everything
    // nested inside it) dies; the host and sibling VMs do not.
    if (fi.ShouldInject(FaultPoint::kGuestHypPanic, env.cpu().index(),
                        env.cpu().cycles(), static_cast<uint64_t>(s.ec))) {
      RaiseGuestFault("guest_hyp_panic",
                      "injected guest hypervisor panic handling " +
                          s.ToString());
    }
    // Injected runaway trap storm: the L1 spins issuing hypercalls forever.
    // Only fires when the trap-livelock watchdog is armed (ShouldInject
    // refuses otherwise), which converts the storm into a confined kill.
    if (fi.ShouldInject(FaultPoint::kTrapLoop, env.cpu().index(),
                        env.cpu().cycles())) {
      for (;;) {
        env.Hvc(kHvcTestCall);
      }
    }
  }
  if (NstateOf(vcpu).rec != nullptr) {
    HandleRecursiveExit(env, vcpu, s);
    return;
  }
  switch (s.ec) {
    case Ec::kHvc64:
      env.Compute(SwCost::kHypercall);
      return;
    case Ec::kSysReg:
      if (SysRegStorage(s.sysreg) == RegId::kICC_SGI1R_EL1) {
        EmulateNestedSgi(env, vcpu, s.write_value);
        return;
      }
      env.Compute(SwCost::kSysregEmulate);
      return;
    case Ec::kDataAbortLow: {
      // MMIO from the nested VM: our backend emulates the device.
      env.Compute(SwCost::kMmioDispatch);
      if (mmio_backend_ != nullptr) {
        uint64_t value = s.abort_is_write
                             ? (mmio_backend_->MmioWrite(env.cpu(), s.far & 0xFFF,
                                                         s.write_value),
                                0)
                             : mmio_backend_->MmioRead(env.cpu(), s.far & 0xFFF);
        env.CompleteMmio(value);
      } else {
        env.Compute(SwCost::kDeviceIo);
        env.CompleteMmio(0xD0D0'BEEF);
      }
      return;
    }
    case Ec::kIrq: {
      // Acknowledge on the hardware CPU interface (accelerated, no trap).
      // A device interrupt means our virtio backend has data for the nested
      // VM: queue it for injection. A kick SGI carries no payload -- the
      // pending virtual interrupt was queued by the sender's vgic emulation
      // -- and rides the next entry's list registers either way.
      uint64_t intid = env.ReadSys(SysReg::kICC_IAR1_EL1);
      env.Compute(SwCost::kVirqInject);
      if (intid == kSpuriousIntid) {
        // Spurious acknowledge (1023): possible on real hardware when the
        // interrupt vanished between exit and ack -- and injectable via the
        // kGicSpuriousIrq fault point. Nothing to queue, nothing to EOI.
        return;
      }
      if (intid >= kSpiBase) {
        env.Compute(SwCost::kDeviceIo);  // backend RX processing
        vcpu.pending_virq.push_back(static_cast<uint32_t>(intid));
        ++vcpu.virqs_enqueued;
      }
      env.WriteSys(SysReg::kICC_EOIR1_EL1, intid);
      return;
    }
    case Ec::kWfx:
      env.Compute(SwCost::kHypercall);
      return;
    default:
      // The guest hypervisor's exit handler has no case for this: its bug.
      RaiseGuestFault("unhandled_exit",
                      "guest hypervisor: unhandled exit " + s.ToString());
  }
}

void GuestKvm::EmulateNestedSgi(GuestEnv& env, Vcpu& sender, uint64_t sgir) {
  env.Compute(SwCost::kVgicSgi);
  // The nested VM chose this ICC_SGI1R value (the host forwarded the trap
  // to us). SgiR's accessors would silently truncate reserved bits, so
  // reject malformed encodings and out-of-range targets as its bug.
  NEVE_GUEST_CHECK(SgiR::Encodable(sgir), "sgi_malformed",
                   "nested ICC_SGI1R write with reserved bits set");
  uint16_t mask = SgiR::TargetMask(sgir);
  uint32_t virq = kSgiBase + SgiR::SgiId(sgir);
  Vm& vm = sender.vm();
  NEVE_GUEST_CHECK((mask >> vm.num_vcpus()) == 0, "sgi_bad_target",
                   "nested SGI target mask addresses nonexistent vCPUs");
  for (int t = 0; t < vm.num_vcpus(); ++t) {
    if (((mask >> t) & 1) == 0) {
      continue;
    }
    Vcpu& target = vm.vcpu(t);
    int target_pv = target.loaded_on_pcpu;  // our virtual CPU id
    EnqueueNestedVirq(env, target, target_pv, virq);
    if (target_pv < 0 || target_pv == env.vcpu().id()) {
      continue;  // loaded here: rides the next entry's list registers
    }
    // Kick the virtual CPU running the target: send our own SGI, which
    // traps to the host and fans out as a physical IPI.
    env.WriteSys(SysReg::kICC_SGI1R_EL1,
                 SgiR::Make(static_cast<uint16_t>(1u << target_pv),
                            kNestedKickSgi));
  }
}

// ---------------------------------------------------------------------------
// GICv2-style memory-mapped hypervisor control interface: the same register
// sequence as Save/RestoreVgic, but through MMIO. Every access Stage-2
// faults to the host -- under NEVE as much as under plain ARMv8.3, since a
// memory-mapped interface has no system registers to defer or cache.
// ---------------------------------------------------------------------------

namespace {

Va GichMmio(RegId reg) {
  return Va(kGichMmioBase + DeferredPageOffset(reg));
}

}  // namespace

void GuestKvm::Gicv2SaveVgic(GuestEnv& env, VgicContext* ctx) {
  ctx->vmcr = env.Load(GichMmio(RegId::kICH_VMCR_EL2));
  (void)env.Load(GichMmio(RegId::kICH_VTR_EL2));
  (void)env.Load(GichMmio(RegId::kICH_ELRSR_EL2));
  (void)env.Load(GichMmio(RegId::kICH_EISR_EL2));
  for (int i = 0; i < ctx->lrs_in_use; ++i) {
    ctx->lr[i] = env.Load(GichMmio(IchListRegister(i)));
  }
  if (ctx->lrs_in_use > 0) {
    (void)env.Load(GichMmio(RegId::kICH_AP1R0_EL2));
  }
  env.Store(GichMmio(RegId::kICH_HCR_EL2), 0);
}

void GuestKvm::Gicv2RestoreVgic(GuestEnv& env, const VgicContext& ctx) {
  env.Store(GichMmio(RegId::kICH_VMCR_EL2), ctx.vmcr);
  for (int i = 0; i < ctx.lrs_in_use; ++i) {
    env.Store(GichMmio(IchListRegister(i)), ctx.lr[i]);
  }
  if (ctx.lrs_in_use > 0) {
    env.Store(GichMmio(RegId::kICH_AP1R0_EL2), 0);
  }
  env.Store(GichMmio(RegId::kICH_HCR_EL2), 1);
}

// ---------------------------------------------------------------------------
// Recursive nesting (section 6.2): this hypervisor playing the host's role
// for its own guest hypervisor (the L2), which runs an L3.
// ---------------------------------------------------------------------------

namespace {

// True when the L2's virtual-virtual EL2 state of `reg` lives in the
// deferred access page this hypervisor provides (mirrors the host's rule).
bool VvUsesDeferredSlot(RegId reg, bool l2_vhe) {
  switch (RegNeveClass(reg)) {
    case NeveClass::kDeferred:
    case NeveClass::kTrapOnWrite:
    case NeveClass::kGicCached:
      return true;
    case NeveClass::kRedirectOrTrap:
      return !l2_vhe;
    default:
      return false;
  }
}

}  // namespace

uint64_t GuestKvm::ReadVv(GuestEnv& env, Vcpu& vcpu, RegId reg) {
  NestedVcpuState& ns = NstateOf(vcpu);
  if (ns.rec->has_page &&
      VvUsesDeferredSlot(reg, vcpu.vm().config().guest_vhe)) {
    // The page lives in our memory: a plain (Stage-2 translated) load.
    return env.Load(Va(ns.rec->page_ipa.value + DeferredPageOffset(reg)));
  }
  env.Compute(env.cpu().cost().mem_access);
  return ns.rec->vregs[static_cast<size_t>(reg)];
}

void GuestKvm::WriteVv(GuestEnv& env, Vcpu& vcpu, RegId reg, uint64_t value) {
  NestedVcpuState& ns = NstateOf(vcpu);
  if (ns.rec->has_page &&
      VvUsesDeferredSlot(reg, vcpu.vm().config().guest_vhe)) {
    env.Store(Va(ns.rec->page_ipa.value + DeferredPageOffset(reg)), value);
    return;
  }
  env.Compute(env.cpu().cost().mem_access);
  ns.rec->vregs[static_cast<size_t>(reg)] = value;
}

void GuestKvm::StashVvel1(GuestEnv& env, Vcpu& vcpu) {
  NestedVcpuState& ns = NstateOf(vcpu);
  std::span<const RegId> regs = VmEl1RegIds();
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    WriteVv(env, vcpu, regs[i], ns.el1.regs[i]);
  }
}

void GuestKvm::LoadVvel1(GuestEnv& env, Vcpu& vcpu) {
  NestedVcpuState& ns = NstateOf(vcpu);
  std::span<const RegId> regs = VmEl1RegIds();
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    ns.el1.regs[i] = ReadVv(env, vcpu, regs[i]);
  }
}

void GuestKvm::HandleRecursiveExit(GuestEnv& env, Vcpu& vcpu,
                                   const Syndrome& s) {
  RecState& rec = *NstateOf(vcpu).rec;
  switch (rec.mode) {
    case RecState::VvMode::kVvel2:
      // Exits by the L2 hypervisor itself.
      switch (s.ec) {
        case Ec::kSysReg:
          EmulateVvSysReg(env, vcpu, s);
          return;
        case Ec::kEretTrap:
          EmulateVvEret(env, vcpu);
          return;
        case Ec::kHvc64:
          env.Compute(SwCost::kHypercall);  // the L2's hypercall to us
          return;
        case Ec::kDataAbortLow:
          env.Compute(SwCost::kMmioDispatch + SwCost::kDeviceIo);
          env.CompleteMmio(0xD0D0'BEEF);
          return;
        default:
          RaiseGuestFault("unhandled_exit",
                          "recursive vvEL2 exit: " + s.ToString());
      }
      return;

    case RecState::VvMode::kVvKernel:
      // The L2's kernel at virtual-virtual EL1.
      if (s.ec == Ec::kHvc64 && env.vcpu().deferred_vector_active) {
        // Kernel -> lowvisor bounce in the L2's linear flow: swap the
        // execution context back to vvEL2 and let its code continue.
        env.Compute(SwCost::kVel2Deliver);
        StashVvel1(env, vcpu);
        NstateOf(vcpu).el1 = rec.vvel2_exec;
        env.Compute(kNumVmEl1Regs * env.cpu().cost().mem_access);
        rec.mode = RecState::VvMode::kVvel2;
        return;
      }
      ForwardToVvel2(env, vcpu, s);
      return;

    case RecState::VvMode::kVvNested:
      // Exits from the L3 guest: they belong to the L2 hypervisor.
      if (s.ec == Ec::kDataAbortLow) {
        FixRecursiveShadowFault(env, vcpu, s);
        return;
      }
      ForwardToVvel2(env, vcpu, s);
      return;
  }
}

void GuestKvm::EmulateVvSysReg(GuestEnv& env, Vcpu& vcpu, const Syndrome& s) {
  RegId storage = SysRegStorage(s.sysreg);
  env.Compute(SwCost::kSysregEmulate);

  // Redirect-class registers live in the L2's (currently switched-out)
  // execution context, mirroring the host's emulation one level up.
  if (std::optional<RegId> target = RegRedirectTarget(storage);
      target.has_value() &&
      (RegNeveClass(storage) != NeveClass::kRedirectOrTrap ||
       vcpu.vm().config().guest_vhe)) {
    int idx = El1ContextIndexOf(*target);
    if (idx >= 0) {
      NestedVcpuState& ns = NstateOf(vcpu);
      if (s.is_write) {
        ns.el1.regs[idx] = s.write_value;
      } else {
        env.CompleteMmio(ns.el1.regs[idx]);
      }
      return;
    }
  }
  if (s.is_write) {
    WriteVv(env, vcpu, storage, s.write_value);
    return;
  }
  env.CompleteMmio(ReadVv(env, vcpu, storage));
}

void GuestKvm::EmulateVvEret(GuestEnv& env, Vcpu& vcpu) {
  NestedVcpuState& ns = NstateOf(vcpu);
  RecState& rec = *ns.rec;
  env.Compute(SwCost::kEretEmulate);
  ns.elr = ns.el1.regs[El1ContextIndexOf(RegId::kELR_EL1)];
  ns.spsr = ns.el1.regs[El1ContextIndexOf(RegId::kSPSR_EL1)];
  Hcr vvhcr{ReadVv(env, vcpu, RegId::kHCR_EL2)};
  // Swap the vvEL2 execution context out for the target vv-EL1 context.
  rec.vvel2_exec = ns.el1;
  env.Compute(kNumVmEl1Regs * env.cpu().cost().mem_access);
  LoadVvel1(env, vcpu);
  rec.mode = vvhcr.vm() ? RecState::VvMode::kVvNested
                        : RecState::VvMode::kVvKernel;
}

void GuestKvm::ForwardToVvel2(GuestEnv& env, Vcpu& vcpu, const Syndrome& s) {
  NestedVcpuState& ns = NstateOf(vcpu);
  RecState& rec = *ns.rec;
  env.Compute(SwCost::kVel2Deliver);
  if (rec.mode != RecState::VvMode::kVvel2) {
    StashVvel1(env, vcpu);
    ns.el1 = rec.vvel2_exec;
    env.Compute(kNumVmEl1Regs * env.cpu().cost().mem_access);
    rec.mode = RecState::VvMode::kVvel2;
  }
  // Publish the syndrome where the L2 reads it (redirect slots / page).
  ns.el1.regs[El1ContextIndexOf(RegId::kESR_EL1)] = s.ToEsrBits();
  ns.el1.regs[El1ContextIndexOf(RegId::kFAR_EL1)] = s.far;
  env.Compute(4 * env.cpu().cost().sysreg_access);
  if (s.ec == Ec::kDataAbortLow) {
    WriteVv(env, vcpu, RegId::kHPFAR_EL2, s.hpfar);
  }
  if (!env.vcpu().deferred_vector_active) {
    // When we resume our guest, control must land at the L2 hypervisor's
    // exception vector.
    NEVE_GUEST_CHECK(env.vcpu().nested_sw.vel2 != nullptr, "no_vel2_vector",
                     "L2 hypervisor registered no vector");
    env.DeferVectorCall(env.vcpu().nested_sw.vel2, s);
  }
}

void GuestKvm::FixRecursiveShadowFault(GuestEnv& env, Vcpu& vcpu,
                                       const Syndrome& s) {
  NestedVcpuState& ns = NstateOf(vcpu);
  RecState& rec = *ns.rec;
  env.Compute(SwCost::kShadowFixup);
  // Software walk of the L2's Stage-2 (its tables live in *its* physical
  // space, one more translation stage down), charged as memory traffic.
  env.Compute(2 * PageTable::kWalkLevels * env.cpu().cost().tlb_walk_per_level);
  uint64_t vvttbr = ReadVv(env, vcpu, RegId::kVTTBR_EL2);
  GuestPhysView l2_space(&view_, &vcpu.vm().s2());
  Ipa l3_ipa(s.hpfar | (s.far & 0xFFF));
  ShadowS2::FixupResult result = rec.shadow->HandleFault(
      l3_ipa, s.abort_is_write, l2_space, Pa(vvttbr), vcpu.vm().s2());
  switch (result) {
    case ShadowS2::FixupResult::kInstalled:
      env.RequestRetry();
      return;
    case ShadowS2::FixupResult::kVirtualFault:
      ForwardToVvel2(env, vcpu, s);  // the L2's device, its problem
      return;
    case ShadowS2::FixupResult::kHostFault:
      // The L2's virtual Stage-2 maps outside the memory its hypervisor (us,
      // an L1 guest) was given: guest-attributable all the way down.
      RaiseGuestFault("bad_guest_mapping",
                      "recursive shadow: hole in our own Stage-2");
  }
}

void GuestKvm::InjectVirq(GuestEnv& env, Vcpu& vcpu, uint32_t virq) {
  env.Compute(SwCost::kVirqInject);
  int target_pv = vcpu.loaded_on_pcpu;
  EnqueueNestedVirq(env, vcpu, target_pv, virq);
  if (target_pv >= 0 && target_pv != env.vcpu().id()) {
    env.WriteSys(SysReg::kICC_SGI1R_EL1,
                 SgiR::Make(static_cast<uint16_t>(1u << target_pv),
                            kNestedKickSgi));
  }
}

}  // namespace neve
