// The guest (L1) hypervisor: the same KVM/ARM design as the host, but
// running deprivileged in virtual EL2.
//
// Every operation below executes through the guest environment at real EL1;
// what each one costs therefore depends on the architecture being modeled:
// under plain ARMv8.3-NV nearly every register access in the world-switch
// path traps to the host (exit multiplication); under NEVE most become
// deferred-page or EL1-register accesses. The code is identical either way
// -- NEVE requires no guest hypervisor changes, which is the paper's point.
//
// A non-VHE guest hypervisor additionally bounces between virtual EL2 (the
// lowvisor) and its kernel at virtual EL1 for every exit it handles, costing
// one trapped eret and one hvc per exit on top of two full EL1 context
// switches -- the reason the non-VHE columns of Tables 1/7 are worst.
//
// Recursive nesting (section 6.2) is supported: a nested VM created with
// virtual_el2 hosts a *second* GuestKvm instance (the L2 hypervisor) whose
// own guest is an L3. This hypervisor then plays the host's role one level
// down -- emulating the L2's virtual-virtual EL2 state, its eret, and the
// L3 shadow Stage-2 -- with every emulation step executing through its own
// (trappable/deferrable) environment, which is where the recursion costs
// come from. When expose_neve is set on the nested VM, this hypervisor
// allocates the deferred access page in its own memory and programs its
// virtual VNCR_EL2; the host then emulates NEVE for the L2 "by using the
// hardware features directly" (translating the page address through
// Stage-2), exactly as section 6.2 describes.

#ifndef NEVE_SRC_HYP_GUEST_KVM_H_
#define NEVE_SRC_HYP_GUEST_KVM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/hyp/vm.h"
#include "src/hyp/world_switch.h"
#include "src/mem/shadow_s2.h"
#include "src/sim/machine.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes nested-VM and pvcpu contexts
}  // namespace snap

struct GuestKvmConfig {
  bool vhe = false;  // hosted-VHE design vs split non-VHE design
  // Use a GICv2-style *memory-mapped* hypervisor control interface instead
  // of GICv3 system registers (section 4: "memory mapped with GICv2 and
  // therefore trivially traps to EL2 when not mapped in the Stage-2 page
  // tables"). MMIO cannot be deferred or cached, so NEVE's Table 5 savings
  // require the GICv3 system-register interface -- measurable here.
  bool gicv2_mmio = false;
};

// hvc immediates used between the guest hypervisor's kernel and lowvisor.
inline constexpr uint16_t kHvcKernelToHyp = 0x4B10;
// The kvm-unit-test style guest hypercall.
inline constexpr uint16_t kHvcTestCall = 0x4B00;

class GuestKvm : public Vel2Handler {
 public:
  // `boot_env` is the guest hypervisor's boot context in virtual EL2. The
  // constructor registers this object as the virtual EL2 exception vector
  // (conceptually: writes VBAR_EL2) and probes its execution environment.
  GuestKvm(GuestEnv* boot_env, Machine* machine, const GuestKvmConfig& config);

  // Recursion-aware constructor: builds a hypervisor whose guest-physical
  // space is `my_s2` over `parent_space` with `my_ram_size` bytes of RAM.
  // Used for the L2 hypervisor of a recursive stack, whose space sits two
  // translation stages below the machine.
  GuestKvm(GuestEnv* boot_env, Machine* machine, const GuestKvmConfig& config,
           MemIo* parent_space, const Stage2Table* my_s2,
           uint64_t my_ram_size);

  GuestKvm(const GuestKvm&) = delete;
  GuestKvm& operator=(const GuestKvm&) = delete;

  const GuestKvmConfig& config() const { return config_; }

  // Brings a secondary virtual CPU under this hypervisor (SMP boot):
  // registers the virtual EL2 vector for it.
  void AttachVcpu(GuestEnv& env);

  // Creates a nested VM. Its Stage-2 tables live in this hypervisor's own
  // guest-physical memory (and are walked by the host when it builds shadow
  // entries).
  Vm* CreateVm(const VmConfig& config);

  // Runs `program` as `vcpu`'s software on the caller's virtual CPU. Returns
  // when the program finishes or parks itself.
  void RunVcpu(GuestEnv& env, Vcpu& vcpu, GuestMain program);

  // Injects a virtual interrupt into a nested vCPU (device backends).
  void InjectVirq(GuestEnv& env, Vcpu& vcpu, uint32_t virq);

  // Vel2Handler: exits forwarded by the host hypervisor.
  void OnVirtualExit(GuestEnv& env, const Syndrome& s) override;

  // Registers an MMIO backend for the nested VM (e.g. a virtio device
  // emulated by this hypervisor).
  void SetMmioBackend(MmioDevice* device) { mmio_backend_ = device; }

 private:
  struct PvcpuState {
    Vcpu* running = nullptr;    // nested vcpu loaded on this virtual CPU
    El1Context kernel_el1;      // kernel context (non-VHE split design)
    ExtEl1Context kernel_ext;
    TimerContext timer;
  };

  // Virtual-virtual EL2 state for a nested vCPU that is itself a
  // hypervisor (recursive nesting).
  struct RecState {
    enum class VvMode { kVvel2, kVvKernel, kVvNested };
    VvMode mode = VvMode::kVvel2;
    uint64_t vregs[kNumRegIds] = {};  // vvEL2 register file (non-NEVE path)
    El1Context vvel2_exec;            // vvEL2's execution context
    std::unique_ptr<ShadowS2> shadow;  // L3 IPA -> my IPA collapse
    Pa page_ipa{};                     // L2's deferred page (my IPA); 0=none
    bool has_page = false;
  };

  struct NestedVcpuState {
    El1Context el1;             // the nested VM's EL1 context
    ExtEl1Context ext;
    PmuDebugContext pmu;
    uint64_t elr = 0;
    uint64_t spsr = 0;
    std::unique_ptr<RecState> rec;  // set when the guest is a hypervisor
  };

  PvcpuState& PstateOf(GuestEnv& env);
  NestedVcpuState& NstateOf(Vcpu& vcpu);

  void SwitchIntoNested(GuestEnv& env, Vcpu& vcpu);
  void SwitchOutOfNested(GuestEnv& env, Vcpu& vcpu);
  void Gicv2SaveVgic(GuestEnv& env, VgicContext* ctx);
  void Gicv2RestoreVgic(GuestEnv& env, const VgicContext& ctx);
  void HandleNestedExit(GuestEnv& env, Vcpu& vcpu, const Syndrome& s);
  void EmulateNestedSgi(GuestEnv& env, Vcpu& sender, uint64_t sgir);

  // --- recursive nesting (the host's role, one level down) -----------------
  uint64_t ReadVv(GuestEnv& env, Vcpu& vcpu, RegId reg);
  void WriteVv(GuestEnv& env, Vcpu& vcpu, RegId reg, uint64_t value);
  void StashVvel1(GuestEnv& env, Vcpu& vcpu);
  void LoadVvel1(GuestEnv& env, Vcpu& vcpu);
  void HandleRecursiveExit(GuestEnv& env, Vcpu& vcpu, const Syndrome& s);
  void EmulateVvSysReg(GuestEnv& env, Vcpu& vcpu, const Syndrome& s);
  void EmulateVvEret(GuestEnv& env, Vcpu& vcpu);
  void ForwardToVvel2(GuestEnv& env, Vcpu& vcpu, const Syndrome& s);
  void FixRecursiveShadowFault(GuestEnv& env, Vcpu& vcpu, const Syndrome& s);

  friend class snap::Serializer;

  Machine* machine_;      // not-snapshotted: host wiring
  GuestKvmConfig config_; // not-snapshotted: fixed at construction, verified
  GuestPhysView view_;    // not-snapshotted: stateless view over machine mem
  PageAllocator table_alloc_;   // table pages carved from our RAM top
  uint64_t next_nested_ram_;
  uint64_t nested_ram_end_;  // not-snapshotted: fixed geometry, verified
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<PvcpuState> pvcpu_;
  // Guards the *map structure* only: SMP-engine lanes running sibling nested
  // vcpus hit NstateOf concurrently and the first touch inserts. The pointed-
  // to NestedVcpuState is per-vcpu (lane-private by the engine's lane==vcpu
  // assignment), so references returned by NstateOf stay lock-free.
  mutable Mutex nstate_mu_{"hyp.guest_nstate"};
  std::unordered_map<const Vcpu*, std::unique_ptr<NestedVcpuState>> nstate_
      GUARDED_BY(nstate_mu_);
  MmioDevice* mmio_backend_ = nullptr;  // not-snapshotted: device wiring

 public:
  // The guest-physical view of this hypervisor (for stacking deeper levels).
  MemIo* view() { return &view_; }
};

}  // namespace neve

#endif  // NEVE_SRC_HYP_GUEST_KVM_H_
