#include "src/hyp/host_kvm.h"

#include "src/arch/vncr.h"
#include "src/base/bits.h"
#include "src/base/log.h"
#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fault/guest_fault.h"
#include "src/gic/gic.h"
#include "src/mem/shootdown.h"
#include "src/obs/attr.h"
#include "src/sim/smp.h"

namespace neve {
namespace {

// Physical SGI id used to kick a vCPU loaded on another physical CPU.
constexpr uint8_t kKickSgi = 1;

// True when the virtual-EL2 state of `reg` lives in the deferred access page
// under NEVE (the page is the authoritative storage; section 6.1).
bool UsesDeferredSlot(RegId reg, bool guest_vhe) {
  switch (RegNeveClass(reg)) {
    case NeveClass::kDeferred:
    case NeveClass::kTrapOnWrite:
    case NeveClass::kGicCached:
      return true;
    case NeveClass::kRedirectOrTrap:
      return !guest_vhe;  // VHE guests get redirection instead
    default:
      return false;
  }
}

// Which attribution layer a vCPU mode executes at: the nested VM is L2,
// everything else inside the VM (plain guest, guest hypervisor in virtual
// EL2, its kernel at virtual EL1) is L1.
AttrLayer LayerOf(VcpuMode mode) {
  return mode == VcpuMode::kVel1Nested ? AttrLayer::kL2 : AttrLayer::kL1;
}

}  // namespace

HostKvm::HostKvm(Machine* machine, const HostKvmConfig& config)
    : machine_(machine), config_(config) {
  // host-invariant: hypervisor construction parameters, no guest influence.
  NEVE_CHECK(machine != nullptr);
  // host-invariant: host configuration validated against machine features.
  NEVE_CHECK_MSG(!config.vhe || machine->config().features.vhe,
                 "VHE host requires VHE hardware");
  pcpu_.resize(machine->num_cpus());
  for (int i = 0; i < machine->num_cpus(); ++i) {
    Cpu& cpu = machine->cpu(i);
    cpu.SetEl2Host(this);
    // Boot-time hardware configuration (not part of any measurement).
    cpu.PokeReg(RegId::kHCR_EL2, HostHcr());
  }
  machine->gic().SetPhysIrqSink(
      [this](int target, uint32_t intid, uint64_t raiser_cycles) {
        OnPhysIrq(target, intid, raiser_cycles);
      });
}

HostKvm::~HostKvm() = default;

HostKvm::VcpuHostState& HostKvm::HostStateOf(Vcpu& vcpu) {
  auto it = vcpu_state_.find(&vcpu);
  // host-invariant: vcpus only reach the host through its own CreateVm.
  NEVE_CHECK_MSG(it != vcpu_state_.end(), "vcpu not owned by this hypervisor");
  return *it->second;
}

Vm* HostKvm::CreateVm(const VmConfig& config) {
  // host-invariant: VM configuration is host input, validated at creation.
  NEVE_CHECK_MSG(!config.virtual_el2 || machine_->config().features.nv,
                 "virtual EL2 requires ARMv8.3-NV hardware support");
  Pa ram = machine_->AllocGuestRam(config.ram_size);
  auto vm = std::make_unique<Vm>(config, ram, &machine_->mem(),
                                 &machine_->host_pool());
  for (int i = 0; i < vm->num_vcpus(); ++i) {
    Vcpu& vcpu = vm->vcpu(i);
    vcpu_state_[&vcpu] = std::make_unique<VcpuHostState>();
    if (config.virtual_el2 && NeveActiveFor(vcpu)) {
      vcpu.vncr_hw_page = machine_->host_pool().AllocPage();
    }
  }
  vm->set_id(static_cast<int>(vms_.size()));
  vms_.push_back(std::move(vm));
  return vms_.back().get();
}

bool HostKvm::NeveActiveFor(const Vcpu& vcpu) const {
  return config_.use_neve && machine_->config().features.neve &&
         vcpu.vm().config().expose_neve;
}

uint64_t HostKvm::HostHcr() const {
  uint64_t h = 0;
  if (config_.vhe) {
    h = SetBit(h, HcrBits::kE2h);
  }
  return h;
}

uint64_t HostKvm::GuestHcrFor(const Vcpu& vcpu) const {
  uint64_t h = Hcr::Make({HcrBits::kVm, HcrBits::kImo, HcrBits::kFmo});
  if (config_.vhe) {
    h = SetBit(h, HcrBits::kE2h);
  }
  if (vcpu.mode == VcpuMode::kVel2) {
    h = SetBit(h, HcrBits::kNv);
    if (!vcpu.vm().config().guest_vhe) {
      h = SetBit(h, HcrBits::kNv1);
    }
  } else if (vcpu.mode == VcpuMode::kVel1Nested && vcpu.nested_is_hyp) {
    // Recursive nesting (6.2): the guest hypervisor's guest is itself a
    // hypervisor; mirror the NV bits it programmed so the L2's hypervisor
    // instructions trap (and get forwarded to the L1).
    h |= vcpu.nested_hcr &
         (Hcr::Make({HcrBits::kNv}) | Hcr::Make({HcrBits::kNv1}));
  }
  return h;
}

ShadowS2& HostKvm::ShadowFor(Vcpu& vcpu, uint64_t vvttbr) {
  auto& slot = vcpu.shadows[vvttbr];
  if (slot == nullptr) {
    slot = std::make_unique<ShadowS2>(&machine_->mem(), &machine_->host_pool());
    slot->SetFaultInjector(&machine_->fault());
  }
  return *slot;
}

uint64_t HostKvm::VttbrFor(Cpu& cpu, Vcpu& vcpu) {
  if (vcpu.mode == VcpuMode::kVel1Nested) {
    uint64_t vvttbr = ReadVel2Reg(cpu, vcpu, RegId::kVTTBR_EL2);
    return ShadowFor(vcpu, vvttbr).table().root().value;
  }
  return vcpu.vm().s2().root().value;
}

// ---------------------------------------------------------------------------
// Virtual EL2 register state
// ---------------------------------------------------------------------------

uint64_t HostKvm::ReadVel2Reg(Cpu& cpu, Vcpu& vcpu, RegId reg) {
  if (NeveActiveFor(vcpu) &&
      UsesDeferredSlot(reg, vcpu.vm().config().guest_vhe)) {
    return cpu.HostLoad(Pa(vcpu.vncr_hw_page.value + DeferredPageOffset(reg)));
  }
  cpu.Compute(cpu.cost().mem_access);
  return vcpu.vreg(reg);
}

void HostKvm::WriteVel2Reg(Cpu& cpu, Vcpu& vcpu, RegId reg, uint64_t value) {
  if (NeveActiveFor(vcpu) &&
      UsesDeferredSlot(reg, vcpu.vm().config().guest_vhe)) {
    cpu.HostStore(Pa(vcpu.vncr_hw_page.value + DeferredPageOffset(reg)), value);
    return;
  }
  cpu.Compute(cpu.cost().mem_access);
  vcpu.set_vreg(reg, value);
}

void HostKvm::StashVel1State(Cpu& cpu, Vcpu& vcpu) {
  // Copy the virtual-EL1 machine state out of the hardware-bound context
  // into its virtual-EL2-visible storage (deferred page under NEVE): the
  // "copies the EL1 system register values ... into the deferred access
  // page" step of section 6.1.
  VcpuHostState& hs = HostStateOf(vcpu);
  std::span<const RegId> regs = VmEl1RegIds();
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    WriteVel2Reg(cpu, vcpu, regs[i], hs.cur_el1.regs[i]);
  }
}

void HostKvm::LoadVel1State(Cpu& cpu, Vcpu& vcpu) {
  // The converse: "copies register values from the deferred access page to
  // physical EL1 registers to run the nested VM".
  VcpuHostState& hs = HostStateOf(vcpu);
  std::span<const RegId> regs = VmEl1RegIds();
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    hs.cur_el1.regs[i] = ReadVel2Reg(cpu, vcpu, regs[i]);
  }
}

void HostKvm::EnterVel1Mode(Cpu& cpu, Vcpu& vcpu, VcpuMode vel1_mode) {
  // host-invariant: mode transitions are sequenced by the host's own
  // eret/delivery emulation, not by guest-chosen values.
  NEVE_CHECK(vcpu.mode == VcpuMode::kVel2);
  // host-invariant: callers pass one of the two literal vEL1 modes.
  NEVE_CHECK(vel1_mode == VcpuMode::kVel1Kernel ||
             vel1_mode == VcpuMode::kVel1Nested);
  VcpuHostState& hs = HostStateOf(vcpu);
  cpu.Compute(SwCost::kVel1Transition);
  hs.vel2_exec = hs.cur_el1;
  cpu.Compute(kNumVmEl1Regs * cpu.cost().mem_access);
  LoadVel1State(cpu, vcpu);
  vcpu.mode = vel1_mode;
}

void HostKvm::EnterVel2Mode(Cpu& cpu, Vcpu& vcpu) {
  // host-invariant: mode transitions are sequenced by the host's own
  // eret/delivery emulation, not by guest-chosen values.
  NEVE_CHECK(vcpu.mode == VcpuMode::kVel1Kernel ||
             vcpu.mode == VcpuMode::kVel1Nested);
  VcpuHostState& hs = HostStateOf(vcpu);
  cpu.Compute(SwCost::kVel1Transition);
  StashVel1State(cpu, vcpu);
  hs.cur_el1 = hs.vel2_exec;
  cpu.Compute(kNumVmEl1Regs * cpu.cost().mem_access);
  vcpu.mode = VcpuMode::kVel2;
}

// ---------------------------------------------------------------------------
// World switch
// ---------------------------------------------------------------------------

void HostKvm::SwitchIntoGuest(Cpu& cpu, Vcpu& vcpu) {
  PcpuState& ps = pcpu_.at(cpu.index());
  // host-invariant: load/put pairing is the host run loop's own sequencing.
  NEVE_CHECK(!ps.guest_loaded);
  VcpuHostState& hs = HostStateOf(vcpu);

  ScopedSpan span(cpu.obs(), cpu, "world_switch", "switch_into_guest");
  AttrScope attr_scope(cpu, AttrCat::kWorldSwitchEnter);
  if (ObsActive(cpu.obs())) {
    cpu.obs()->metrics().Counter("hyp.switches_into_guest").Add(1);
  }

  cpu.Compute(SwCost::kRunLoop);
  cpu.Compute(SwCost::kGprSwitch);
  TouchPerCpuData(cpu);
  if (!config_.vhe) {
    SaveEl1Context(cpu, /*vhe=*/false, &ps.host_el1);
    SaveExtEl1Context(cpu, /*vhe=*/false, &ps.host_ext);
  }
  RestoreEl1Context(cpu, config_.vhe, hs.cur_el1);
  RestoreExtEl1Context(cpu, config_.vhe, hs.ext);
  RestorePmuDebugState(cpu, hs.pmu);

  // vGIC: program the list registers for this context.
  VgicContext vg;
  if (vcpu.mode == VcpuMode::kVel1Nested) {
    // The nested VM's virtual interrupts are whatever the guest hypervisor
    // programmed into its (virtual) list registers.
    for (int i = 0; i < machine_->gic().num_list_regs(); ++i) {
      uint64_t vlr = ReadVel2Reg(cpu, vcpu, IchListRegister(i));
      if (!ListReg::Inactive(vlr)) {
        vg.lr[vg.lrs_in_use++] = vlr;
      }
    }
  } else {
    while (!vcpu.pending_virq.empty() &&
           vg.lrs_in_use < machine_->gic().num_list_regs()) {
      vg.lr[vg.lrs_in_use++] = ListReg::MakePending(vcpu.pending_virq.front());
      vcpu.pending_virq.pop_front();
    }
  }
  RestoreVgic(cpu, vg);
  machine_->gic().SyncStatusRegs(cpu);
  ps.lrs_loaded = vg.lrs_in_use;

  RestoreGuestTimer(cpu, config_.vhe, hs.timer, hs.cntvoff);
  WriteGuestTrapControls(cpu, GuestHcrFor(vcpu), VttbrFor(cpu, vcpu),
                         static_cast<uint64_t>(vcpu.id()));
  // Trap guest TLB maintenance only where the broadcast matters: a
  // multi-vCPU guest hypervisor's TLBI must reach its siblings' shadow
  // Stage-2 trees and hardware TLBs (HandleTlbi). Single-vCPU stacks keep
  // the untrapped local invalidate and its original cost.
  cpu.SetTrapTlbi(vcpu.vm().config().virtual_el2 && vcpu.vm().num_vcpus() > 1);
  if (vcpu.vm().config().virtual_el2 && machine_->config().features.neve &&
      config_.use_neve) {
    // Enable the deferred access page only while the guest hypervisor runs
    // in virtual EL2; the nested VM must see its real EL1 registers (6.1).
    // Exception (6.2): when the nested context is itself a hypervisor in
    // virtual-virtual EL2 and the guest hypervisor enabled NEVE for it, the
    // host emulates NEVE "by using the hardware features directly":
    // translate the guest's VNCR base through Stage-2 and program the real
    // register with the machine address.
    uint64_t vncr = 0;
    if (vcpu.mode == VcpuMode::kVel2 && NeveActiveFor(vcpu)) {
      vncr = VncrEl2::Make(vcpu.vncr_hw_page.value, true).bits();
    } else if (vcpu.mode == VcpuMode::kVel1Nested && vcpu.nested_is_hyp) {
      VncrEl2 guest_vncr(ReadVel2Reg(cpu, vcpu, RegId::kVNCR_EL2));
      if (guest_vncr.enabled()) {
        cpu.Compute(PageTable::kWalkLevels * cpu.cost().tlb_walk_per_level);
        WalkResult walk = vcpu.vm().s2().Walk(Ipa(guest_vncr.baddr()),
                                              /*is_write=*/true);
        // The guest hypervisor chose this VNCR base address: a bad one is
        // its bug, confined to its VM.
        NEVE_GUEST_CHECK(walk.ok, "vncr_unmapped",
                         "guest VNCR page unmapped in Stage-2");
        vncr = VncrEl2::Make(walk.pa.PageBase().value, true).bits();
      }
    }
    cpu.SysRegWrite(SysReg::kVNCR_EL2, vncr);
  }
  WriteReturnState(cpu, config_.vhe, hs.elr, hs.spsr);
  ps.guest_loaded = true;
}

void HostKvm::SwitchOutOfGuest(Cpu& cpu, Vcpu& vcpu) {
  PcpuState& ps = pcpu_.at(cpu.index());
  // host-invariant: load/put pairing is the host run loop's own sequencing.
  NEVE_CHECK(ps.guest_loaded);
  ps.guest_loaded = false;
  VcpuHostState& hs = HostStateOf(vcpu);

  ScopedSpan span(cpu.obs(), cpu, "world_switch", "switch_out_of_guest");
  AttrScope attr_scope(cpu, AttrCat::kWorldSwitchExit);
  if (ObsActive(cpu.obs())) {
    cpu.obs()->metrics().Counter("hyp.switches_out_of_guest").Add(1);
  }

  TouchPerCpuData(cpu);
  cpu.Compute(SwCost::kGprSwitch);
  ExitInfo info = ReadExitInfo(cpu, config_.vhe, /*read_fault_regs=*/true);
  hs.elr = info.elr;
  hs.spsr = info.spsr;
  SaveEl1Context(cpu, config_.vhe, &hs.cur_el1);
  SaveExtEl1Context(cpu, config_.vhe, &hs.ext);
  SavePmuDebugState(cpu, &hs.pmu);

  VgicContext vg;
  vg.lrs_in_use = ps.lrs_loaded;
  SaveVgic(cpu, &vg);
  if (vcpu.mode == VcpuMode::kVel1Nested) {
    // Reflect hardware LR state (EOIed interrupts cleared) back into the
    // guest hypervisor's virtual list registers.
    for (int i = 0; i < vg.lrs_in_use; ++i) {
      WriteVel2Reg(cpu, vcpu, IchListRegister(i), vg.lr[i]);
    }
  } else {
    for (int i = 0; i < vg.lrs_in_use; ++i) {
      if (ListReg::Pending(vg.lr[i])) {
        vcpu.pending_virq.push_front(ListReg::Intid(vg.lr[i]));
      }
    }
  }
  ps.lrs_loaded = 0;

  SaveGuestTimer(cpu, config_.vhe, &hs.timer);
  if (!config_.vhe) {
    RestoreEl1Context(cpu, /*vhe=*/false, ps.host_el1);
    RestoreExtEl1Context(cpu, /*vhe=*/false, ps.host_ext);
  }
  cpu.SetTrapTlbi(false);
  WriteHostTrapControls(cpu, HostHcr());
  cpu.Compute(SwCost::kRunLoop);
}

void HostKvm::StartGuestProgram(Cpu& cpu, Vcpu& vcpu, GuestSoftware& sw) {
  // host-invariant: callers check sw.main before starting a program.
  NEVE_CHECK(sw.main);
  // host-invariant: single-start is enforced by the host's own run loop.
  NEVE_CHECK(!sw.started);
  sw.started = true;
  GuestEnv env(&cpu, &vcpu);
  AttrScope attr_scope(cpu, LayerOf(vcpu.mode), AttrCat::kGuestCompute);
  cpu.RunLowerEl(El::kEl1, [&] { sw.main(env); });
}

Status HostKvm::RunVcpu(Vcpu& vcpu, int pcpu) {
  if (vcpu.vm().dead()) {
    return Status::FailedPrecondition(
        "vm '" + vcpu.vm().config().name +
        "' was killed by a confined guest fault; RestartVm() to run it again");
  }
  PcpuState& ps = pcpu_.at(pcpu);
  // host-invariant: pcpu scheduling is the embedding harness's sequencing.
  NEVE_CHECK_MSG(ps.current == nullptr, "pcpu already running a vcpu");
  Cpu& cpu = machine_->cpu(pcpu);
  // Everything under this entry belongs to this (vm, vcpu); host-side work
  // with no finer frame lands in L0/host_other.
  AttrScope attr_scope(cpu, vcpu.vm().id(), vcpu.id(), AttrLayer::kL0,
                       AttrCat::kHostOther);
  ps.current = &vcpu;
  vcpu.loaded_on_pcpu = pcpu;

  // Arm the trap-livelock watchdog for this entry: if the guest keeps
  // trapping past the cycle budget without ever returning, the check at
  // trap entry raises a confined guest fault instead of spinning forever.
  uint64_t saved_deadline = cpu.watchdog_deadline();
  uint64_t budget = machine_->config().fault.watchdog_budget;
  if (budget > 0) {
    cpu.SetWatchdogDeadline(cpu.cycles() + budget);
  }

  try {
    cpu.Compute(SwCost::kVcpuLoadPut);
    SwitchIntoGuest(cpu, vcpu);
    StartGuestProgram(cpu, vcpu, vcpu.SoftwareFor(vcpu.mode));
    if (vcpu.parked) {
      // The guest stays logically running (interrupt-driven); state remains
      // loaded and later IRQ deliveries execute against it.
      cpu.SetWatchdogDeadline(saved_deadline);
      return Status::Ok();
    }
    if (ps.guest_loaded) {
      SwitchOutOfGuest(cpu, vcpu);
    }
    cpu.Compute(SwCost::kVcpuLoadPut);
    ps.current = nullptr;
    vcpu.loaded_on_pcpu = -1;
  } catch (const GuestFaultException& e) {
    cpu.SetWatchdogDeadline(saved_deadline);
    if (SmpEngine* eng = SmpEngine::Current(); eng != nullptr) {
      // Tear the VM down with exclusive ownership of the machine (no sibling
      // lane executing); exiting the barrier fails every lane still parked
      // in a rendezvous the dead VM can no longer complete.
      eng->EnterConfinement(SmpEngine::CurrentLane());
      Status status = ConfineGuestFault(cpu, vcpu, e);
      eng->ExitConfinement(SmpEngine::CurrentLane());
      return status;
    }
    return ConfineGuestFault(cpu, vcpu, e);
  }
  cpu.SetWatchdogDeadline(saved_deadline);
  return Status::Ok();
}

Status HostKvm::ConfineGuestFault(Cpu& cpu, Vcpu& vcpu,
                                  const GuestFaultException& e) {
  Vm& vm = vcpu.vm();
  vm.set_dead(true);
  // Flight-record the attribution tree at the moment of confinement: the
  // charges survived the unwind (buckets outlive frames), so this snapshot
  // shows exactly where the faulting run's cycles went.
  machine_->attr().RecordFlight(std::string("guest_fault:") + e.kind());
  if (Observability& obs = machine_->obs(); ObsActive(&obs)) {
    obs.metrics().Counter("fault.vm_kills").Add(1);
    obs.metrics().Counter(std::string("fault.kill.") + e.kind()).Add(1);
    obs.tracer().Instant(cpu.index(), "fault", "vm_kill", cpu.cycles());
  }

  // Drop the dead VM's run-time state from every pcpu it may be loaded on
  // (multi-vcpu VMs park siblings on other pcpus).
  for (size_t p = 0; p < pcpu_.size(); ++p) {
    PcpuState& ps = pcpu_[p];
    if (ps.current != nullptr && &ps.current->vm() == &vm) {
      ps.current = nullptr;
      ps.guest_loaded = false;
      ps.lrs_loaded = 0;
    }
  }
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& v = vm.vcpu(i);
    v.loaded_on_pcpu = -1;
    v.parked = false;
    v.vel2_handler_active = false;
    v.deferred_vector.reset();
    v.deferred_vector_active = false;
    v.mmio_retry = false;
    v.pending_virq.clear();
  }

  // The fault unwound out of an arbitrary point of the world-switch /
  // emulation code: put the hardware back into a clean host configuration
  // (trap controls, deferred page off, no Stage-2, empty list registers).
  // No costs are charged -- the VM is gone, there is nothing to measure.
  cpu.PokeReg(RegId::kHCR_EL2, HostHcr());
  cpu.PokeReg(RegId::kVNCR_EL2, 0);
  cpu.PokeReg(RegId::kVTTBR_EL2, 0);
  for (int i = 0; i < machine_->gic().num_list_regs(); ++i) {
    cpu.PokeReg(IchListRegister(i), 0);
  }
  machine_->gic().SyncStatusRegs(cpu);

  return Status::Internal("guest fault [" + std::string(e.kind()) + "] " +
                          e.what() + " (vm '" + vm.config().name +
                          "' killed)");
}

void HostKvm::CheckpointVm(Vm& vm) {
  // Host-side and cycle-free: reading pages and contexts is the simulator's
  // business, not the guest's, so taking a checkpoint never perturbs the run
  // (fault_test asserts byte-identity of a checkpointed vs plain run).
  VmCheckpoint cp;
  PhysMem& mem = machine_->mem();
  uint64_t ram_first = vm.ram_base().PageIndex();
  uint64_t ram_last = (vm.ram_base().value + vm.config().ram_size - 1)
                      >> kPageShift;
  for (uint64_t page : mem.ResidentPageIndices()) {
    if (page < ram_first || page > ram_last) {
      continue;
    }
    VmCheckpointPage p;
    p.page_index = page;
    mem.ReadPage(page, &p.data);
    cp.ram_pages.push_back(std::move(p));
  }
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& vcpu = vm.vcpu(i);
    std::array<uint64_t, kNumRegIds> regs;
    for (size_t r = 0; r < kNumRegIds; ++r) {
      regs[r] = vcpu.vreg(static_cast<RegId>(r));
    }
    cp.vregs.push_back(regs);
    cp.host_state.push_back(HostStateOf(vcpu));
    if (vcpu.vncr_hw_page.value != 0) {
      VmCheckpointPage p;
      p.page_index = vcpu.vncr_hw_page.PageIndex();
      mem.ReadPage(p.page_index, &p.data);
      cp.vncr_pages.push_back(std::move(p));
    }
  }
  checkpoints_[&vm] = std::move(cp);
  if (Observability& obs = machine_->obs(); ObsActive(&obs)) {
    obs.metrics().Counter("fault.vm_checkpoints").Add(1);
  }
}

void HostKvm::RestartVm(Vm& vm) {
  vm.set_dead(false);
  vm.bump_generation();
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& vcpu = vm.vcpu(i);
    vcpu.ResetRuntimeState();  // keeps vncr_hw_page: the host owns that page
    auto it = vcpu_state_.find(&vcpu);
    if (it != vcpu_state_.end()) {
      *it->second = VcpuHostState{};
    }
  }
  if (auto cpit = checkpoints_.find(&vm); cpit != checkpoints_.end()) {
    // Reboot from the last checkpoint instead of from scratch: put the VM's
    // RAM back exactly (resident set included -- pages the guest dirtied
    // after the checkpoint go back to implicit zero), then the register
    // files, VNCR pages and host-side contexts.
    const VmCheckpoint& cp = cpit->second;
    PhysMem& mem = machine_->mem();
    uint64_t ram_first = vm.ram_base().PageIndex();
    uint64_t ram_last = (vm.ram_base().value + vm.config().ram_size - 1)
                        >> kPageShift;
    for (uint64_t page : mem.ResidentPageIndices()) {
      if (page >= ram_first && page <= ram_last) {
        mem.DropPage(page);
      }
    }
    for (const VmCheckpointPage& p : cp.ram_pages) {
      mem.WritePage(p.page_index, p.data.data());
    }
    for (int i = 0; i < vm.num_vcpus(); ++i) {
      Vcpu& vcpu = vm.vcpu(i);
      for (size_t r = 0; r < kNumRegIds; ++r) {
        vcpu.set_vreg(static_cast<RegId>(r), cp.vregs[i][r]);
      }
      auto it = vcpu_state_.find(&vcpu);
      if (it != vcpu_state_.end()) {
        *it->second = cp.host_state[i];
      }
    }
    for (const VmCheckpointPage& p : cp.vncr_pages) {
      mem.WritePage(p.page_index, p.data.data());
    }
    if (Observability& obs = machine_->obs(); ObsActive(&obs)) {
      obs.metrics().Counter("fault.vm_restore_from_checkpoint").Add(1);
    }
  }
  if (Observability& obs = machine_->obs(); ObsActive(&obs)) {
    obs.metrics().Counter("fault.vm_restarts").Add(1);
  }
}

// ---------------------------------------------------------------------------
// Exit handling
// ---------------------------------------------------------------------------

TrapOutcome HostKvm::OnTrapToEl2(Cpu& cpu, const Syndrome& s) {
  PcpuState& ps = pcpu_.at(cpu.index());
  // host-invariant: traps only fire while RunVcpu has a vcpu loaded.
  NEVE_CHECK_MSG(ps.current != nullptr, "trap with no vcpu loaded");
  Vcpu& vcpu = *ps.current;
  ++vcpu.exits;

  SwitchOutOfGuest(cpu, vcpu);
  cpu.Compute(SwCost::kExitDispatch);
  TrapOutcome outcome = HandleExit(cpu, vcpu, s);
  if (!ps.guest_loaded) {
    SwitchIntoGuest(cpu, vcpu);
  }
  // A guest hypervisor may have scheduled a deeper vector invocation for the
  // context just resumed ("my eret lands at the L2 hypervisor's vector") --
  // recursive nesting's analogue of DeliverToVel2's handler call.
  if (vcpu.deferred_vector.has_value() &&
      vcpu.mode == VcpuMode::kVel1Nested && !vcpu.deferred_vector_active) {
    Vcpu::DeferredVector dv = *vcpu.deferred_vector;
    vcpu.deferred_vector.reset();
    vcpu.deferred_vector_active = true;
    GuestEnv env(&cpu, &vcpu);
    AttrScope attr_scope(cpu, LayerOf(vcpu.mode), AttrCat::kGuestCompute);
    cpu.RunLowerEl(El::kEl1,
                   [&] { dv.handler->OnVirtualExit(env, dv.syndrome); });
    vcpu.deferred_vector_active = false;
  }
  return outcome;
}

TrapOutcome HostKvm::HandleExit(Cpu& cpu, Vcpu& vcpu, const Syndrome& s) {
  switch (s.ec) {
    case Ec::kHvc64:
    case Ec::kSmc64:
      return HandleHvc(cpu, vcpu, s);
    case Ec::kSysReg:
      return HandleSysRegTrap(cpu, vcpu, s);
    case Ec::kEretTrap:
      if (vcpu.mode == VcpuMode::kVel1Nested && vcpu.nested_is_hyp) {
        // An L2 hypervisor's eret: its guest hypervisor emulates it.
        DeliverToVel2(cpu, vcpu, s);
        return TrapOutcome::Completed();
      }
      return HandleEret(cpu, vcpu);
    case Ec::kDataAbortLow:
      return HandleDataAbort(cpu, vcpu, s);
    case Ec::kWfx:
      cpu.Compute(SwCost::kHypercall);
      return TrapOutcome::Completed();
    case Ec::kTlbi:
      return HandleTlbi(cpu, vcpu);
    case Ec::kIrq: {
      // Synchronously-modeled IRQ exit (device interrupt for the running
      // guest; see Cpu::TakeIrq). Ack/complete on the host CPU interface,
      // then route the queued virtual interrupt.
      cpu.Compute(2 * cpu.cost().gic_vcpuif_access);
      cpu.Compute(SwCost::kIrqTriageHost);
      PcpuState& ps = pcpu_.at(cpu.index());
      DeliverVirqsToLoadedVcpu(cpu, vcpu);
      if (!ps.guest_loaded) {
        SwitchIntoGuest(cpu, vcpu);
      }
      DeliverLoadedLrToGuestSw(cpu, vcpu);
      return TrapOutcome::Completed();
    }
    default:
      // The guest triggered an exit class the host does not handle: its
      // problem, not the machine's. Kill the VM, keep simulating.
      RaiseGuestFault("unhandled_exit", "unhandled exit: " + s.ToString());
  }
  return TrapOutcome::Completed();
}

TrapOutcome HostKvm::HandleHvc(Cpu& cpu, Vcpu& vcpu, const Syndrome& s) {
  if (s.imm16 == kHvcSmpWait) {
    // Paravirtual SMP rendezvous: host business at every guest level (an
    // L2's SmpWait is never forwarded to its guest hypervisor). Under the
    // engine, park the lane until the registered predicate holds at a merge
    // point, then deliver whatever the merge enqueued -- same tail as the
    // kIrq exit above (SwitchOutOfGuest already ran at trap entry).
    if (SmpEngine* eng = SmpEngine::Current(); eng != nullptr) {
      eng->Wait(SmpEngine::CurrentLane());
      PcpuState& ps = pcpu_.at(cpu.index());
      DeliverVirqsToLoadedVcpu(cpu, vcpu);
      if (!ps.guest_loaded) {
        SwitchIntoGuest(cpu, vcpu);
      }
      DeliverLoadedLrToGuestSw(cpu, vcpu);
      return TrapOutcome::Completed();
    }
    // Cooperative path: every cross-vCPU send already delivered
    // synchronously, so the predicate held on entry (GuestEnv checked) and
    // the hypercall is a plain host round trip.
    cpu.Compute(SwCost::kHypercall);
    return TrapOutcome::Completed();
  }
  switch (vcpu.mode) {
    case VcpuMode::kGuest:
    case VcpuMode::kVel2:
      // Handled by this hypervisor (PSCI / test hypercall).
      cpu.Compute(SwCost::kHypercall);
      return TrapOutcome::Completed();
    case VcpuMode::kVel1Kernel:
    case VcpuMode::kVel1Nested:
      // hvc from below virtual EL2 belongs to the guest hypervisor.
      DeliverToVel2(cpu, vcpu, s);
      return TrapOutcome::Completed();
  }
  return TrapOutcome::Completed();
}

TrapOutcome HostKvm::HandleSysRegTrap(Cpu& cpu, Vcpu& vcpu, const Syndrome& s) {
  RegId storage = SysRegStorage(s.sysreg);

  // Refine the trap episode into the emulation family the access exercises:
  // GIC and timer state machines versus the plain VM-register stores that
  // dominate under ARMv8.3 (Table 6's sysreg-emulation column).
  AttrCat emul_cat = AttrCat::kSysRegEmul;
  if (storage == RegId::kICC_SGI1R_EL1 ||
      RegNeveClass(storage) == NeveClass::kGicCached) {
    emul_cat = AttrCat::kGicEmul;
  } else if (SysRegEncKind(s.sysreg) == EncKind::kEl02 ||
             RegNeveClass(storage) == NeveClass::kTimerTrap) {
    emul_cat = AttrCat::kTimerEmul;
  }
  AttrScope attr_scope(cpu, emul_cat);

  if (vcpu.mode != VcpuMode::kVel2) {
    // Traps from a plain guest / virtual EL1 context.
    if (vcpu.mode == VcpuMode::kVel1Nested &&
        (vcpu.nested_is_hyp || storage == RegId::kICC_SGI1R_EL1)) {
      // An L2 hypervisor's trapped instructions, and any nested VM's SGI
      // generation, belong to the guest hypervisor: forward.
      DeliverToVel2(cpu, vcpu, s);
      return TrapOutcome::Completed(vcpu.mmio_result);
    }
    if (storage == RegId::kICC_SGI1R_EL1) {
      cpu.Compute(SwCost::kSysregEmulate);
      EmulateSgi(cpu, vcpu, s.write_value);
      return TrapOutcome::Completed();
    }
    cpu.Compute(SwCost::kSysregEmulate);
    return TrapOutcome::Completed(0);
  }

  // Traps from virtual EL2: emulate against the virtual EL2 state. The
  // emulation path length depends on what trapped: the traps NEVE leaves
  // behind (vGIC, timer, trap-control writes, eret) run real state machines,
  // while the plain VM-register stores that dominate under ARMv8.3 are
  // trivial.
  if (SysRegEncKind(s.sysreg) == EncKind::kEl02) {
    cpu.Compute(SwCost::kEl02TimerEmulate);
  } else {
    switch (RegNeveClass(storage)) {
      case NeveClass::kGicCached:
        cpu.Compute(SwCost::kVgicEmulate);
        break;
      case NeveClass::kTimerTrap:
        cpu.Compute(SwCost::kTimerEmulate);
        break;
      case NeveClass::kTrapOnWrite:
      case NeveClass::kRedirectOrTrap:
        cpu.Compute(SwCost::kTrapCtlEmulate);
        break;
      default:
        cpu.Compute(SwCost::kSysregEmulate);
        break;
    }
  }

  // Guest hypervisor programming its guest's EL1 timer via *_EL02: operate
  // on the context-switched-out guest timer image.
  if (SysRegEncKind(s.sysreg) == EncKind::kEl02) {
    VcpuHostState& hs = HostStateOf(vcpu);
    uint64_t* slot = nullptr;
    switch (storage) {
      case RegId::kCNTV_CTL_EL0:
      case RegId::kCNTP_CTL_EL0:
        slot = &hs.timer.cntv_ctl;
        break;
      case RegId::kCNTV_CVAL_EL0:
      case RegId::kCNTP_CVAL_EL0:
        slot = &hs.timer.cntv_cval;
        break;
      default:
        break;
    }
    // The guest hypervisor picked the trapped EL02 encoding.
    NEVE_GUEST_CHECK(slot != nullptr, "el02_unmodeled",
                     "unmodeled EL02 timer register access");
    if (s.is_write) {
      *slot = s.write_value;
      return TrapOutcome::Completed();
    }
    return TrapOutcome::Completed(*slot);
  }

  if (storage == RegId::kICC_SGI1R_EL1) {
    EmulateSgi(cpu, vcpu, s.write_value);
    return TrapOutcome::Completed();
  }

  // Redirect-class registers: the virtual EL2 value lives in the (currently
  // switched-out) EL1 execution context.
  if (std::optional<RegId> target = RegRedirectTarget(storage);
      target.has_value() &&
      (RegNeveClass(storage) != NeveClass::kRedirectOrTrap ||
       vcpu.vm().config().guest_vhe)) {
    int idx = El1ContextIndexOf(*target);
    VcpuHostState& hs = HostStateOf(vcpu);
    if (idx >= 0) {
      if (s.is_write) {
        hs.cur_el1.regs[idx] = s.write_value;
        return TrapOutcome::Completed();
      }
      return TrapOutcome::Completed(hs.cur_el1.regs[idx]);
    }
    // Redirect target outside the switched context list (TTBR1 etc.):
    // treat the vcpu context as authoritative.
  }

  if (s.is_write) {
    WriteVel2Reg(cpu, vcpu, storage, s.write_value);
    return TrapOutcome::Completed();
  }
  return TrapOutcome::Completed(ReadVel2Reg(cpu, vcpu, storage));
}

TrapOutcome HostKvm::HandleEret(Cpu& cpu, Vcpu& vcpu) {
  // Hardware only traps eret when HCR_EL2.NV is set, which the host programs
  // exclusively for vEL2 contexts (nested_is_hyp erets are routed to
  // DeliverToVel2 by HandleExit before reaching here).
  // host-invariant: eret traps cannot come from non-vEL2 modes.
  NEVE_CHECK_MSG(vcpu.mode == VcpuMode::kVel2,
                 "eret trap outside virtual EL2");
  cpu.Compute(SwCost::kEretEmulate);
  VcpuHostState& hs = HostStateOf(vcpu);

  // The guest hypervisor's return state (vELR_EL2/vSPSR_EL2) lives in the
  // EL1 context slots (the NEVE redirect mapping; same storage under plain
  // v8.3 via trap-and-emulate).
  hs.elr = hs.cur_el1.regs[El1ContextIndexOf(RegId::kELR_EL1)];
  hs.spsr = hs.cur_el1.regs[El1ContextIndexOf(RegId::kSPSR_EL1)];
  cpu.Compute(2 * cpu.cost().mem_access);

  // Where is the guest hypervisor going? Its virtual HCR_EL2 decides:
  // VM=1 -> the nested VM under its virtual Stage-2; VM=0 -> its own kernel.
  Hcr vhcr{ReadVel2Reg(cpu, vcpu, RegId::kHCR_EL2)};
  bool to_nested = vhcr.vm();
  EnterVel1Mode(cpu, vcpu,
                to_nested ? VcpuMode::kVel1Nested : VcpuMode::kVel1Kernel);

  if (to_nested) {
    // Recursive nesting: the guest hypervisor may have programmed NV for
    // its guest, making that guest a (deeper) hypervisor.
    vcpu.nested_is_hyp = vhcr.nv();
    vcpu.nested_hcr = vhcr.bits;
    vcpu.active_nested =
        vcpu.nested_is_hyp
            ? &vcpu.nested_sw
            : (vcpu.nested2_sw.main ? &vcpu.nested2_sw : &vcpu.nested_sw);
    GuestSoftware& sw = *vcpu.active_nested;
    if (sw.main && !sw.started) {
      // First entry into this nested context: start its software image.
      SwitchIntoGuest(cpu, vcpu);
      StartGuestProgram(cpu, vcpu, sw);
      if (!vcpu.parked) {
        // The nested workload finished: hand control back to virtual EL2.
        // (In a recursive stack a deeper completion may already have done
        // so while this frame's program was unwinding.)
        SwitchOutOfGuest(cpu, vcpu);
        if (vcpu.mode != VcpuMode::kVel2) {
          EnterVel2Mode(cpu, vcpu);
        }
      }
    }
  }
  return TrapOutcome::Completed();
}

TrapOutcome HostKvm::HandleDataAbort(Cpu& cpu, Vcpu& vcpu, const Syndrome& s) {
  cpu.Compute(SwCost::kMmioDispatch);
  Ipa ipa(s.hpfar | (s.far & 0xFFF));

  if (vcpu.mode == VcpuMode::kVel1Nested) {
    // Stage-2 fault under the shadow tables: either the shadow lacks an
    // entry present in the guest hypervisor's virtual Stage-2 (fix up and
    // retry) or the guest hypervisor itself left it unmapped (forward: its
    // device, its problem).
    AttrScope attr_scope(cpu, AttrCat::kShadowS2Fixup);
    cpu.Compute(SwCost::kShadowFixup);
    // Injected Stage-2 external abort: the memory system reported an
    // uncorrectable error on the nested access. KVM's policy for SEA during
    // a guest access is to kill the VM -- model exactly that, confined.
    if (FaultInjector& fi = machine_->fault();
        FaultActive(&fi) &&
        fi.ShouldInject(FaultPoint::kShadowS2ExternalAbort, cpu.index(),
                        cpu.cycles(), ipa.value)) {
      RaiseGuestFault("s2_external_abort",
                      "injected Stage-2 external abort on nested access");
    }
    uint64_t vvttbr = ReadVel2Reg(cpu, vcpu, RegId::kVTTBR_EL2);
    GuestPhysView view(&machine_->mem(), &vcpu.vm().s2());
    ShadowS2::FixupResult result;
    {
      ScopedSpan span(cpu.obs(), cpu, "shadow_s2", "handle_fault");
      result = ShadowFor(vcpu, vvttbr).HandleFault(
          ipa, s.abort_is_write, view, Pa(vvttbr), vcpu.vm().s2());
    }
    if (ObsActive(cpu.obs())) {
      MetricsRegistry& m = cpu.obs()->metrics();
      m.Counter("shadow_s2.faults").Add(1);
      switch (result) {
        case ShadowS2::FixupResult::kInstalled:
          m.Counter("shadow_s2.installed").Add(1);
          break;
        case ShadowS2::FixupResult::kVirtualFault:
          m.Counter("shadow_s2.virtual_faults").Add(1);
          break;
        case ShadowS2::FixupResult::kHostFault:
          break;
      }
    }
    switch (result) {
      case ShadowS2::FixupResult::kInstalled:
        return TrapOutcome::Retry();
      case ShadowS2::FixupResult::kVirtualFault:
        DeliverToVel2(cpu, vcpu, s);
        if (vcpu.mmio_retry) {
          // The guest hypervisor fixed its own translation state (e.g. a
          // recursive shadow) rather than emulating a device: replay.
          vcpu.mmio_retry = false;
          return TrapOutcome::Retry();
        }
        return TrapOutcome::Completed(vcpu.mmio_result);
      case ShadowS2::FixupResult::kHostFault:
        // The guest hypervisor's virtual Stage-2 points at an L1 IPA the
        // host never mapped (outside its RAM): guest-attributable.
        RaiseGuestFault("bad_guest_mapping",
                        "guest virtual Stage-2 maps outside the VM's memory");
    }
    return TrapOutcome::Completed();
  }

  // GICv2-style memory-mapped hypervisor control interface: the guest
  // hypervisor's GICH accesses fault here and are emulated against the same
  // virtual ICH state the system-register interface uses. NEVE cannot help
  // this path -- the reason Table 5 presumes the GICv3 interface.
  if (vcpu.vm().config().virtual_el2 && ipa.value >= kGichMmioBase &&
      ipa.value < kGichMmioBase + kPageSize) {
    AttrScope attr_scope(cpu, AttrCat::kGicEmul);
    cpu.Compute(SwCost::kVgicEmulate);
    auto reg = static_cast<RegId>((ipa.value - kGichMmioBase) / 8);
    // The guest hypervisor computed this GICH offset.
    NEVE_GUEST_CHECK(IsIchRegister(reg), "gich_oob",
                     "GICH access outside the ICH block");
    if (s.abort_is_write) {
      WriteVel2Reg(cpu, vcpu, reg, s.write_value);
      return TrapOutcome::Completed();
    }
    return TrapOutcome::Completed(ReadVel2Reg(cpu, vcpu, reg));
  }

  AttrScope attr_scope(cpu, AttrCat::kMmioEmul);
  const MmioRange* range = vcpu.vm().FindMmio(ipa);
  // The guest accessed an address its hypervisor never mapped or registered
  // as a device: real KVM delivers SIGBUS / an external abort and the VM
  // dies. Confine it the same way.
  NEVE_GUEST_CHECK(range != nullptr, "unmapped_mmio",
                   "Stage-2 fault on unmapped non-MMIO address");
  uint64_t offset = ipa.value - range->base.value;
  if (s.abort_is_write) {
    range->device->MmioWrite(cpu, offset, s.write_value);
    return TrapOutcome::Completed();
  }
  return TrapOutcome::Completed(range->device->MmioRead(cpu, offset));
}

// ---------------------------------------------------------------------------
// Virtual EL2 exception delivery
// ---------------------------------------------------------------------------

void HostKvm::DeliverToVel2(Cpu& cpu, Vcpu& vcpu, const Syndrome& s) {
  // host-invariant: callers only forward exits for virtual_el2 VMs.
  NEVE_CHECK(vcpu.vm().config().virtual_el2);
  ++vcpu.vel2_deliveries;
  AttrScope attr_scope(cpu, AttrCat::kVel2Deliver);
  cpu.Compute(SwCost::kVel2Deliver);
  ScopedSpan span(cpu.obs(), cpu, "hyp", "vel2_deliver");
  if (ObsActive(cpu.obs())) {
    cpu.obs()->metrics().Counter("hyp.vel2_deliveries").Add(1);
  }

  // An hvc from the guest hypervisor's own kernel is the return half of its
  // non-VHE kernel bounce: the mode switches and its linear flow continues.
  // Every other delivery vectors into the registered virtual EL2 handler.
  bool kernel_bounce =
      vcpu.mode == VcpuMode::kVel1Kernel && s.ec == Ec::kHvc64;

  if (vcpu.mode != VcpuMode::kVel2) {
    EnterVel2Mode(cpu, vcpu);
  }
  // Publish the virtual syndrome where the guest hypervisor will read it:
  // vESR_EL2/vFAR_EL2 are redirect-class (EL1 slots); vHPFAR_EL2 is a VM
  // register (deferred page / vcpu context).
  VcpuHostState& hs = HostStateOf(vcpu);
  hs.cur_el1.regs[El1ContextIndexOf(RegId::kESR_EL1)] = s.ToEsrBits();
  hs.cur_el1.regs[El1ContextIndexOf(RegId::kFAR_EL1)] = s.far;
  hs.cur_el1.regs[El1ContextIndexOf(RegId::kELR_EL1)] = hs.elr;
  hs.cur_el1.regs[El1ContextIndexOf(RegId::kSPSR_EL1)] = hs.spsr;
  cpu.Compute(4 * cpu.cost().sysreg_access);
  if (s.ec == Ec::kDataAbortLow) {
    WriteVel2Reg(cpu, vcpu, RegId::kHPFAR_EL2, s.hpfar);
  }
  hs.elr = 0;  // virtual vector entry
  hs.spsr = static_cast<uint64_t>(El::kEl2);

  if (!kernel_bounce) {
    GuestSoftware& sw = vcpu.main_sw;
    // A guest hypervisor that takes exits before registering its vector is
    // a broken guest hypervisor.
    NEVE_GUEST_CHECK(sw.vel2 != nullptr, "no_vel2_vector",
                     "no virtual EL2 vector registered");
    SwitchIntoGuest(cpu, vcpu);
    vcpu.vel2_handler_active = true;
    GuestEnv env(&cpu, &vcpu);
    AttrScope guest_scope(cpu, LayerOf(vcpu.mode), AttrCat::kGuestCompute);
    cpu.RunLowerEl(El::kEl1, [&] { sw.vel2->OnVirtualExit(env, s); });
    vcpu.vel2_handler_active = false;
  }
  // Otherwise the guest hypervisor's linear flow continues after its
  // trapped instruction.
}

TrapOutcome HostKvm::HandleTlbi(Cpu& cpu, Vcpu& vcpu) {
  // Trapped guest TLB maintenance -- armed only for multi-vCPU virtual_el2
  // VMs (SwitchIntoGuest). Architecturally the guest hypervisor's TLBI
  // broadcasts to the inner-shareable domain, so the host must discard
  // *every* vCPU's shadow Stage-2 trees for this VM (each vCPU caches its
  // own shadows per virtual VTTBR) and drop the hardware TLBs of every pcpu
  // a sibling is loaded on, not just the trapping CPU's.
  AttrScope attr_scope(cpu, AttrCat::kShadowS2Fixup);
  cpu.Compute(SwCost::kShadowFixup);
  Vm& vm = vcpu.vm();
  std::vector<ShadowS2*> shadows;
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    for (auto& [vvttbr, shadow] : vm.vcpu(i).shadows) {
      shadows.push_back(shadow.get());
    }
  }
  int flushed = mem::FlushShadows(shadows);
  if (Observability& obs = machine_->obs(); ObsActive(&obs)) {
    obs.metrics().Counter("hyp.tlbi_broadcasts").Add(1);
    obs.metrics().Counter("hyp.tlbi_shadow_flushes").Add(flushed);
  }
  SmpEngine* eng = SmpEngine::Current();
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    int p = vm.vcpu(i).loaded_on_pcpu;
    if (p < 0 || p == cpu.index()) {
      continue;
    }
    if (eng != nullptr && p != SmpEngine::CurrentLane()) {
      Cpu* sibling = &machine_->cpu(p);
      eng->Defer(p, cpu.cycles(), [sibling] { sibling->DropTlb(); });
    } else {
      machine_->cpu(p).DropTlb();
    }
  }
  return TrapOutcome::Completed();
}

// ---------------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------------

void HostKvm::EmulateSgi(Cpu& cpu, Vcpu& vcpu, uint64_t sgir) {
  AttrScope attr_scope(cpu, AttrCat::kGicEmul);
  cpu.Compute(SwCost::kVgicSgi);
  // The guest chose this ICC_SGI1R value. SgiR's accessors would silently
  // truncate reserved bits, so reject malformed encodings and targets beyond
  // the VM's own vCPUs up front as a confined guest fault.
  NEVE_GUEST_CHECK(SgiR::Encodable(sgir), "sgi_malformed",
                   "ICC_SGI1R write with reserved bits set");
  uint16_t mask = SgiR::TargetMask(sgir);
  uint32_t virq = kSgiBase + SgiR::SgiId(sgir);
  Vm& vm = vcpu.vm();
  NEVE_GUEST_CHECK((mask >> vm.num_vcpus()) == 0, "sgi_bad_target",
                   "SGI target mask addresses nonexistent vCPUs");
  for (int t = 0; t < vm.num_vcpus(); ++t) {
    if ((mask >> t) & 1) {
      InjectVirq(vm.vcpu(t), virq, &cpu);
    }
  }
}

void HostKvm::InjectVirq(Vcpu& vcpu, uint32_t virq, Cpu* raiser,
                         uint64_t raiser_cycles) {
  if (Observability& obs = machine_->obs(); ObsActive(&obs)) {
    obs.metrics().Counter("gic.virq_injections").Add(1);
    if (raiser != nullptr) {
      obs.tracer().Instant(raiser->index(), "gic", "inject_virq",
                           raiser->cycles(), "intid", virq);
    }
  }
  if (SmpEngine* eng = SmpEngine::Current(); eng != nullptr) {
    int target_lane =
        vcpu.loaded_on_pcpu >= 0 ? vcpu.loaded_on_pcpu : vcpu.id();
    if (target_lane != SmpEngine::CurrentLane()) {
      // Cross-lane injection under the engine: defer the enqueue (and the
      // event-time propagation the kick SGI would have carried) to the next
      // merge point. No kick -- delivery happens when the target lane wakes
      // from its rendezvous; the merge *is* the kick.
      uint64_t rc = raiser != nullptr ? raiser->cycles() : raiser_cycles;
      Vcpu* target = &vcpu;
      Machine* m = machine_;
      eng->Defer(target_lane, rc, [m, target, target_lane, virq, rc] {
        target->pending_virq.push_back(virq);
        ++target->virqs_enqueued;
        m->PropagateEventTime(m->cpu(target_lane), rc);
      });
      return;
    }
  }
  vcpu.pending_virq.push_back(virq);
  ++vcpu.virqs_enqueued;
  int target_pcpu = vcpu.loaded_on_pcpu;
  if (target_pcpu < 0) {
    return;  // delivered when the vcpu is next loaded
  }
  if (raiser != nullptr && raiser->index() == target_pcpu) {
    return;  // picked up by the next guest entry on this pcpu
  }
  if (raiser != nullptr) {
    // Kick the remote pcpu with a physical SGI; the GIC sink runs the
    // receiver-side delivery synchronously with time propagation.
    raiser->SysRegWrite(SysReg::kICC_SGI1R_EL1,
                        SgiR::Make(static_cast<uint16_t>(1u << target_pcpu),
                                   kKickSgi));
  } else {
    OnPhysIrq(target_pcpu, virq, raiser_cycles);
  }
}

void HostKvm::OnPhysIrq(int target_pcpu, uint32_t intid,
                        uint64_t raiser_cycles) {
  Cpu& cpu = machine_->cpu(target_pcpu);
  machine_->PropagateEventTime(cpu, raiser_cycles);
  PcpuState& ps = pcpu_.at(target_pcpu);
  Vcpu* vcpu = ps.current;
  if (vcpu == nullptr) {
    // Interrupt while the host runs: triage only.
    AttrScope attr_scope(cpu, AttrCat::kTrapIrq);
    cpu.Compute(SwCost::kIrqTriageHost);
    return;
  }
  // host-invariant: ps.current is only set while guest state is loaded
  // (RunVcpu / confinement keep the two coherent).
  NEVE_CHECK(ps.guest_loaded);

  // Hardware IRQ exit from the running guest. The receiving pcpu's RunVcpu
  // frame is long gone (a parked vcpu's entry returned), so push a full
  // context frame rather than inheriting whatever is on top.
  AttrScope attr_scope(cpu, vcpu->vm().id(), vcpu->id(), AttrLayer::kL0,
                       AttrCat::kTrapIrq);
  cpu.Compute(cpu.cost().trap_entry);
  cpu.trace().OnTrapToEl2(Syndrome::Irq(intid), cpu.cycles());
  SwitchOutOfGuest(cpu, *vcpu);
  // Acknowledge and complete the physical interrupt on the host CPU
  // interface before routing it as a virtual interrupt.
  cpu.Compute(2 * cpu.cost().gic_vcpuif_access);
  cpu.Compute(SwCost::kIrqTriageHost);

  // Delivery executes guest code -- the L1's virtual-IRQ handler below, the
  // guest's IRQ vector in DeliverLoadedLrToGuestSw -- outside any RunVcpu
  // frame: a parked vcpu's entry returned long ago and restored its
  // deadline. Arm the trap-livelock watchdog for this episode exactly as
  // RunVcpu arms its entry; without it an injected trap storm inside
  // delivery spins unbounded (kTrapLoop's arming check sees only the
  // configured budget, not whether a deadline is live).
  uint64_t saved_deadline = cpu.watchdog_deadline();
  uint64_t budget = machine_->config().fault.watchdog_budget;
  if (budget > 0) {
    cpu.SetWatchdogDeadline(cpu.cycles() + budget);
  }
  try {
    DeliverVirqsToLoadedVcpu(cpu, *vcpu);
    if (!ps.guest_loaded) {
      SwitchIntoGuest(cpu, *vcpu);
    }
    cpu.Compute(cpu.cost().trap_return);
    DeliverLoadedLrToGuestSw(cpu, *vcpu);
  } catch (...) {
    cpu.SetWatchdogDeadline(saved_deadline);
    throw;
  }
  cpu.SetWatchdogDeadline(saved_deadline);
}

void HostKvm::DeliverVirqsToLoadedVcpu(Cpu& cpu, Vcpu& vcpu) {
  if (vcpu.pending_virq.empty()) {
    return;
  }
  if (vcpu.vm().config().virtual_el2) {
    // The guest hypervisor owns interrupt delivery for everything below it:
    // vector into its virtual EL2. The pending interrupt reaches its
    // hardware list registers on the switch into virtual EL2.
    DeliverToVel2(cpu, vcpu, Syndrome::Irq(vcpu.pending_virq.front()));
    return;
  }
  // Plain VM: the next SwitchIntoGuest programs the list registers.
}

void HostKvm::DeliverLoadedLrToGuestSw(Cpu& cpu, Vcpu& vcpu) {
  // A pending list register plus a registered guest IRQ vector means the
  // guest takes a virtual interrupt now.
  uint32_t intid = kSpuriousIntid;
  for (int i = 0; i < machine_->gic().num_list_regs(); ++i) {
    uint64_t lr = cpu.PeekReg(IchListRegister(i));
    if (ListReg::Pending(lr)) {
      intid = ListReg::Intid(lr);
      break;
    }
  }
  if (intid == kSpuriousIntid) {
    return;
  }
  GuestSoftware& sw = vcpu.SoftwareFor(vcpu.mode);
  if (!sw.irq) {
    return;
  }
  GuestEnv env(&cpu, &vcpu);
  AttrScope attr_scope(cpu, LayerOf(vcpu.mode), AttrCat::kGuestCompute);
  cpu.RunLowerEl(El::kEl1, [&] {
    cpu.Compute(cpu.cost().el1_vector_entry);
    sw.irq(env, intid);
    cpu.Compute(cpu.cost().el1_eret);
  });
}

}  // namespace neve
