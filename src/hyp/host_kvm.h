// The host (L0) hypervisor: a KVM/ARM-style hypervisor running at real EL2.
//
// Responsibilities, mirroring the paper's section 4 design:
//  - single-level virtualization: world switch, vGIC, timers, Stage-2, MMIO;
//  - nested virtualization: emulating a virtual EL2 for guest hypervisors
//    (trap-and-emulate of EL2 register accesses and eret), multiplexing the
//    guest hypervisor's virtual-EL1 contexts onto the hardware, shadow
//    Stage-2 for nested VMs, and forwarding exits to the virtual EL2 vector;
//  - NEVE host support (section 6.1): owning the hardware deferred access
//    page, enabling/disabling VNCR_EL2 per context, and copying register
//    state between the page and the physical registers on transitions.
//
// The host's own world-switch code runs at EL2 and therefore never traps;
// its cost is charged through the same CPU operations the guest hypervisor
// uses -- which is exactly why a single nested exit costs a full L0 exit
// cycle (the exit-multiplication arithmetic of section 5).

#ifndef NEVE_SRC_HYP_HOST_KVM_H_
#define NEVE_SRC_HYP_HOST_KVM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/hyp/vm.h"
#include "src/hyp/world_switch.h"
#include "src/sim/machine.h"

namespace neve {

class GuestFaultException;

namespace snap {
class Serializer;  // src/snap: serializes pcpu slots and per-vcpu contexts
}  // namespace snap

struct HostKvmConfig {
  // Host hypervisor operating mode. The paper's testbed host is ARMv8.0
  // KVM/ARM, i.e. non-VHE: a full EL1 context switch on every exit.
  bool vhe = false;
  // Program hardware VNCR_EL2 for guest hypervisors on NEVE machines.
  bool use_neve = true;
};

class HostKvm : public El2Host {
 public:
  HostKvm(Machine* machine, const HostKvmConfig& config);
  ~HostKvm() override;

  HostKvm(const HostKvm&) = delete;
  HostKvm& operator=(const HostKvm&) = delete;

  const HostKvmConfig& config() const { return config_; }
  Machine& machine() { return *machine_; }

  // Creates a VM: carves guest RAM out of machine memory, builds its
  // Stage-2, and (for virtual_el2 VMs) sets up shadow tables and, on NEVE
  // machines, the deferred access page.
  Vm* CreateVm(const VmConfig& config);

  // Runs `vcpu.main_sw` on physical CPU `pcpu` until it returns or parks.
  //
  // Fault confinement boundary: a guest-attributable fault raised anywhere
  // below this frame (trapped emulation, device models, shadow walks, the
  // trap-livelock watchdog) unwinds to here, kills only `vcpu`'s VM, restores
  // the host context on the pcpu, and surfaces as an error Status. The
  // machine and every other VM keep running. Returns OkStatus on a normal
  // run, FailedPrecondition when the VM is already dead.
  Status RunVcpu(Vcpu& vcpu, int pcpu);

  // Brings a killed VM back: clears the dead flag, resets every vCPU's
  // run-time state (software slots, shadows, pending interrupts, registers)
  // and the host-side per-vcpu context, and bumps the VM's generation.
  // When a checkpoint taken with CheckpointVm exists, the VM's RAM, virtual
  // register files, VNCR pages and host-side contexts are then restored from
  // it -- a reboot from the last known-good memory image rather than from
  // scratch. The caller re-registers software images and calls RunVcpu again.
  void RestartVm(Vm& vm);

  // Captures a restart checkpoint of `vm`: its resident RAM pages, each
  // vCPU's virtual register file and VNCR page, and the host-side per-vcpu
  // contexts. Host-side and cycle-free; callable mid-run (e.g. from guest
  // software via a host service call, or between RunVcpu entries). A later
  // RestartVm of the same VM restores from it instead of booting cold.
  void CheckpointVm(Vm& vm);
  bool HasCheckpoint(const Vm& vm) const {
    return checkpoints_.count(&vm) != 0;
  }
  void DropCheckpoint(const Vm& vm) { checkpoints_.erase(&vm); }

  // Injects a virtual interrupt for `vcpu`. If the vCPU is loaded on another
  // physical CPU, kicks it (physical SGI) and the delivery runs there,
  // synchronously, with event-time propagation. `raiser` is the CPU whose
  // clock stamps the event (nullptr for external device models, which pass
  // `raiser_cycles` instead).
  void InjectVirq(Vcpu& vcpu, uint32_t virq, Cpu* raiser,
                  uint64_t raiser_cycles = 0);

  // El2Host: every exception taken to real EL2 lands here.
  TrapOutcome OnTrapToEl2(Cpu& cpu, const Syndrome& syndrome) override;

  // GIC physical-IRQ sink (wired to GicV3 in the constructor).
  void OnPhysIrq(int target_pcpu, uint32_t intid, uint64_t raiser_cycles);

  // The vCPU currently loaded on a physical CPU (nullptr when idle).
  Vcpu* LoadedVcpu(int pcpu) { return pcpu_.at(pcpu).current; }

 private:
  struct PcpuState {
    Vcpu* current = nullptr;
    bool guest_loaded = false;  // guest register state on the hardware
    int lrs_loaded = 0;         // list registers programmed for this run
    El1Context host_el1;        // host kernel EL1 context (non-VHE only)
    ExtEl1Context host_ext;
    PmuDebugContext host_pmu;
  };

  // L0-side per-vcpu nested/context state.
  struct VcpuHostState {
    El1Context cur_el1;    // EL1 context of the vCPU's *current* mode
    El1Context vel2_exec;  // stashed vEL2 execution context while in vEL1
    ExtEl1Context ext;
    PmuDebugContext pmu;
    uint64_t elr = 0;      // return state programmed on entry
    uint64_t spsr = 0;
    TimerContext timer;
    uint64_t cntvoff = 0;
  };

  VcpuHostState& HostStateOf(Vcpu& vcpu);

  // --- world switch -----------------------------------------------------
  void SwitchOutOfGuest(Cpu& cpu, Vcpu& vcpu);
  void SwitchIntoGuest(Cpu& cpu, Vcpu& vcpu);
  uint64_t GuestHcrFor(const Vcpu& vcpu) const;
  uint64_t HostHcr() const;
  uint64_t VttbrFor(Cpu& cpu, Vcpu& vcpu);
  // The shadow Stage-2 for the guest hypervisor's current virtual VTTBR,
  // created on first use.
  ShadowS2& ShadowFor(Vcpu& vcpu, uint64_t vvttbr);

  // --- exit handling -------------------------------------------------------
  TrapOutcome HandleExit(Cpu& cpu, Vcpu& vcpu, const Syndrome& s);
  TrapOutcome HandleHvc(Cpu& cpu, Vcpu& vcpu, const Syndrome& s);
  TrapOutcome HandleSysRegTrap(Cpu& cpu, Vcpu& vcpu, const Syndrome& s);
  TrapOutcome HandleEret(Cpu& cpu, Vcpu& vcpu);
  TrapOutcome HandleDataAbort(Cpu& cpu, Vcpu& vcpu, const Syndrome& s);
  // Trapped guest TLB maintenance (multi-vCPU virtual_el2 VMs only):
  // broadcasts the shadow Stage-2 invalidation to every vCPU of the VM and
  // drops sibling hardware TLBs (deferred cross-lane under the SMP engine).
  TrapOutcome HandleTlbi(Cpu& cpu, Vcpu& vcpu);
  void EmulateSgi(Cpu& cpu, Vcpu& vcpu, uint64_t sgir);

  // --- virtual EL2 emulation ------------------------------------------------
  // Virtual EL2 register state access: deferred access page when NEVE is
  // active for the VM (charged physical memory traffic), the in-memory vcpu
  // context otherwise.
  uint64_t ReadVel2Reg(Cpu& cpu, Vcpu& vcpu, RegId reg);
  void WriteVel2Reg(Cpu& cpu, Vcpu& vcpu, RegId reg, uint64_t value);
  bool NeveActiveFor(const Vcpu& vcpu) const;

  // Moves the virtual-EL1 machine state between the hardware-bound context
  // and its storage (deferred page / vcpu context) on mode transitions --
  // the copies the paper describes in section 6.1's "typical workflow".
  void StashVel1State(Cpu& cpu, Vcpu& vcpu);
  void LoadVel1State(Cpu& cpu, Vcpu& vcpu);

  // Emulates exception delivery to the guest hypervisor's virtual EL2
  // (forwarded exits). Runs the registered Vel2Handler when one is not
  // already active; otherwise the transition is part of the guest
  // hypervisor's linear flow and only the mode switch happens.
  void DeliverToVel2(Cpu& cpu, Vcpu& vcpu, const Syndrome& s);

  // Transitions between virtual modes (shared by eret/hvc/delivery paths).
  void EnterVel2Mode(Cpu& cpu, Vcpu& vcpu);
  void EnterVel1Mode(Cpu& cpu, Vcpu& vcpu, VcpuMode vel1_mode);

  // Starts lower-EL guest software on the current pcpu.
  void StartGuestProgram(Cpu& cpu, Vcpu& vcpu, GuestSoftware& sw);

  // --- interrupts ------------------------------------------------------------
  void DeliverVirqsToLoadedVcpu(Cpu& cpu, Vcpu& vcpu);
  void DeliverLoadedLrToGuestSw(Cpu& cpu, Vcpu& vcpu);

  // --- fault confinement ----------------------------------------------------
  // Kills `vcpu`'s VM after a guest-attributable fault: records fault.*
  // metrics and a tracer episode, marks the VM dead, drops its run-time
  // state from every pcpu, and restores the host context on `cpu`.
  Status ConfineGuestFault(Cpu& cpu, Vcpu& vcpu, const GuestFaultException& e);

  // --- restart checkpoints --------------------------------------------------
  struct VmCheckpointPage {
    uint64_t page_index = 0;
    std::array<uint8_t, kPageSize> data;
  };
  struct VmCheckpoint {
    std::vector<VmCheckpointPage> ram_pages;  // resident pages, VM RAM range
    std::vector<std::array<uint64_t, kNumRegIds>> vregs;  // per vcpu
    std::vector<VcpuHostState> host_state;                // per vcpu
    std::vector<VmCheckpointPage> vncr_pages;  // per NEVE vcpu's deferred page
  };

  friend class snap::Serializer;

  Machine* machine_;      // not-snapshotted: host wiring
  HostKvmConfig config_;  // not-snapshotted: fixed at construction, verified
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<PcpuState> pcpu_;
  std::unordered_map<const Vcpu*, std::unique_ptr<VcpuHostState>> vcpu_state_;
  // not-snapshotted: restart checkpoints are a host-local recovery aid, not
  // machine state (a migrated VM starts with none, like a freshly booted one)
  std::unordered_map<const Vm*, VmCheckpoint> checkpoints_;
};

}  // namespace neve

#endif  // NEVE_SRC_HYP_HOST_KVM_H_
