#include "src/hyp/virtio.h"

#include <algorithm>

#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fault/guest_fault.h"
#include "src/hyp/world_switch.h"

namespace neve {

using L = VringLayout;

// ---------------------------------------------------------------------------
// Backend
// ---------------------------------------------------------------------------

VirtioBackend::VirtioBackend(MemIo* guest_mem, Pa ring_base,
                             uint32_t per_buffer_cycles)
    : guest_mem_(guest_mem),
      ring_base_(ring_base),
      per_buffer_cycles_(per_buffer_cycles) {
  // host-invariant: backend wiring is host/embedder construction code.
  NEVE_CHECK(guest_mem != nullptr);
}

uint64_t VirtioBackend::MmioRead(Cpu& cpu, uint64_t offset) {
  cpu.Compute(SwCost::kMmioDispatch);
  (void)offset;
  return 0;  // device status: ready
}

void VirtioBackend::MmioWrite(Cpu& cpu, uint64_t offset, uint64_t value) {
  // The kick: wakes the backend (vhost) thread. The kicker pays for the
  // exit and dispatch; the buffer processing runs on the backend's own
  // clock, concurrently with the guest.
  (void)offset;
  (void)value;
  MutexLock lock(ring_mu_);
  ++kicks_;
  ScopedSpan span(cpu.obs(), cpu, "virtio", "kick");
  if (ObsActive(cpu.obs())) {
    cpu.obs()->metrics().Counter("virtio.kicks").Add(1);
  }
  cpu.Compute(SwCost::kMmioDispatch);
  busy_until_ = std::max(busy_until_, cpu.cycles());
  // Busy window opens: suppress further notifications ("while the backend
  // driver is busy, it tells the frontend it can continue to send packets
  // without further notification", section 7.2).
  Write(L::kUsedFlags, L::kNoNotify);
  ProcessAvailLocked(cpu);
  // Injected ring corruption: the used.idx update tears (as a non-atomic
  // 64-bit store racing the frontend would), leaving an index further ahead
  // than the queue can hold. The frontend's ReapUsed detects it.
  if (FaultActive(fault_) &&
      fault_->ShouldInject(FaultPoint::kVirtioRingCorruption, cpu.index(),
                           cpu.cycles(), kicks_)) {
    Write(L::kUsedIdx, Read(L::kUsedIdx) + L::kQueueSize + 7);
  }
}

int VirtioBackend::ProcessAvail(Cpu& cpu) {
  MutexLock lock(ring_mu_);
  return ProcessAvailLocked(cpu);
}

int VirtioBackend::ProcessAvailLocked(Cpu& cpu) {
  ScopedSpan span(cpu.obs(), cpu, "virtio", "process_avail");
  uint64_t avail = Read(L::kAvailIdx);
  uint64_t used = Read(L::kUsedIdx);
  // The ring lives in guest memory: an avail.idx further ahead than the
  // queue size is guest corruption, not a backend bug.
  NEVE_GUEST_CHECK(avail - last_avail_ <= L::kQueueSize, "virtio_ring",
                   "virtio avail.idx ran past the queue size");
  int processed = 0;
  while (last_avail_ < avail) {
    int slot = static_cast<int>(last_avail_ % L::kQueueSize);
    uint64_t desc = Read(L::AvailSlot(slot));
    (void)Read(L::DescLen(static_cast<int>(desc % L::kQueueSize)));
    busy_until_ += per_buffer_cycles_;
    Write(L::UsedSlot(static_cast<int>(used % L::kQueueSize)), desc);
    ++used;
    ++last_avail_;
    ++processed;
  }
  Write(L::kUsedIdx, used);
  buffers_processed_ += processed;
  if (processed > 0 && ObsActive(cpu.obs())) {
    cpu.obs()->metrics().Counter("virtio.buffers_processed").Add(processed);
  }
  return processed;
}

void VirtioBackend::Poll(uint64_t now_cycles) {
  // The backend thread's scheduling points: pick up buffers that were
  // posted without a kick, and -- "only once the backend driver has nothing
  // left to do" -- re-enable notifications.
  MutexLock lock(ring_mu_);
  if (Read(L::kAvailIdx) > last_avail_) {
    busy_until_ = std::max(busy_until_, now_cycles);
    ProcessAvailOnThread();
  }
  if (now_cycles >= busy_until_) {
    Write(L::kUsedFlags, 0);
  }
}

void VirtioBackend::ProcessAvailOnThread() {
  uint64_t avail = Read(L::kAvailIdx);
  uint64_t used = Read(L::kUsedIdx);
  NEVE_GUEST_CHECK(avail - last_avail_ <= L::kQueueSize, "virtio_ring",
                   "virtio avail.idx ran past the queue size");
  while (last_avail_ < avail) {
    int slot = static_cast<int>(last_avail_ % L::kQueueSize);
    uint64_t desc = Read(L::AvailSlot(slot));
    busy_until_ += per_buffer_cycles_;
    Write(L::UsedSlot(static_cast<int>(used % L::kQueueSize)), desc);
    ++used;
    ++last_avail_;
    ++buffers_processed_;
  }
  Write(L::kUsedIdx, used);
}

// ---------------------------------------------------------------------------
// Frontend
// ---------------------------------------------------------------------------

VirtioDriver::VirtioDriver(Va ring_base, Va doorbell)
    : base_(ring_base), doorbell_(doorbell) {}

void VirtioDriver::Init(GuestEnv& env) {
  env.Store(Va(base_.value + L::kAvailIdx), 0);
  env.Store(Va(base_.value + L::kUsedIdx), 0);
  env.Store(Va(base_.value + L::kUsedFlags), 0);
  avail_idx_ = 0;
  last_used_ = 0;
  next_desc_ = 0;
}

bool VirtioDriver::SendBuffer(GuestEnv& env, uint64_t addr, uint64_t len) {
  int desc = next_desc_;
  next_desc_ = (next_desc_ + 1) % L::kQueueSize;
  env.Store(Va(base_.value + L::DescAddr(desc)), addr);
  env.Store(Va(base_.value + L::DescLen(desc)), len);
  env.Store(Va(base_.value + L::AvailSlot(
                                static_cast<int>(avail_idx_ % L::kQueueSize))),
            static_cast<uint64_t>(desc));
  ++avail_idx_;
  env.Store(Va(base_.value + L::kAvailIdx), avail_idx_);
  ++posts_;

  // The notification decision: kick only when the backend asked for it.
  uint64_t flags = env.Load(Va(base_.value + L::kUsedFlags));
  if ((flags & L::kNoNotify) != 0) {
    return false;  // backend is busy; it will see our buffer on its own
  }
  ++kicks_sent_;
  env.Store(doorbell_, 1);  // MMIO: exits to the device's owner
  return true;
}

int VirtioDriver::ReapUsed(GuestEnv& env) {
  uint64_t used = env.Load(Va(base_.value + L::kUsedIdx));
  // A used.idx more than one queue's worth ahead of what we reaped cannot
  // come from a well-behaved backend: the ring is torn (e.g. an injected
  // kVirtioRingCorruption). A real driver BUG()s here; the VM dies, the
  // machine does not.
  NEVE_GUEST_CHECK(used - last_used_ <= L::kQueueSize, "virtio_ring",
                   "virtio used.idx ran past the queue size (torn ring)");
  int reaped = 0;
  while (last_used_ < used) {
    (void)env.Load(Va(base_.value +
                      L::UsedSlot(static_cast<int>(last_used_ % L::kQueueSize))));
    ++last_used_;
    ++reaped;
  }
  return reaped;
}

}  // namespace neve
