// Paravirtualized I/O: a split virtqueue with notification suppression.
//
// The paper's application results hinge on virtio's notification dynamics
// (section 7.2): the frontend driver kicks the backend through a doorbell
// (an MMIO write -> VM exit); while the backend is busy it sets
// VRING_USED_F_NO_NOTIFY in the used ring, telling the frontend to keep
// posting without kicking; once drained it re-enables notifications. The
// faster the backend, the sooner notifications re-enable and the more exits
// the frontend takes -- the anomaly that makes Memcached on x86 take "more
// than four times as many exits" as on NEVE despite faster hardware.
//
// The ring lives in real guest memory: the frontend accesses it through the
// guest's translated, cycle-charged loads/stores; the backend through the
// hypervisor's view of guest-physical space.
//
// Ring layout at `ring_base` (queue size 16, packed for the simulator's
// 64-bit accessors):
//   +0x000  descriptor table   16 x {addr u64, len u64}
//   +0x100  avail.idx          u64
//   +0x108  avail.ring[16]     u64 each (descriptor index)
//   +0x188  used.flags         u64 (bit 0 = NO_NOTIFY)
//   +0x190  used.idx           u64
//   +0x198  used.ring[16]      u64 each (descriptor index)

#ifndef NEVE_SRC_HYP_VIRTIO_H_
#define NEVE_SRC_HYP_VIRTIO_H_

#include <cstdint>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/hyp/devices.h"
#include "src/hyp/guest_env.h"
#include "src/mem/mem_io.h"

namespace neve {

class FaultInjector;

namespace snap {
class Serializer;  // src/snap: serializes ring cursors and backend clocks
}  // namespace snap

struct VringLayout {
  static constexpr int kQueueSize = 16;
  static constexpr uint64_t kDescTable = 0x000;
  static constexpr uint64_t kDescStride = 16;
  static constexpr uint64_t kAvailIdx = 0x100;
  static constexpr uint64_t kAvailRing = 0x108;
  static constexpr uint64_t kUsedFlags = 0x188;
  static constexpr uint64_t kUsedIdx = 0x190;
  static constexpr uint64_t kUsedRing = 0x198;
  static constexpr uint64_t kNoNotify = 1;  // used.flags bit

  static constexpr uint64_t DescAddr(int i) {
    return kDescTable + static_cast<uint64_t>(i) * kDescStride;
  }
  static constexpr uint64_t DescLen(int i) { return DescAddr(i) + 8; }
  static constexpr uint64_t AvailSlot(int i) {
    return kAvailRing + static_cast<uint64_t>(i) * 8;
  }
  static constexpr uint64_t UsedSlot(int i) {
    return kUsedRing + static_cast<uint64_t>(i) * 8;
  }
};

// Backend half: owned by the hypervisor emulating the device. Registered as
// the MMIO device for the doorbell page; a doorbell write is the kick.
class VirtioBackend : public MmioDevice {
 public:
  // `guest_mem` is the backend's view of the frontend's physical space;
  // `ring_base` the ring's address there. `per_buffer_cycles` models how
  // fast the backend drains one buffer -- the knob behind the paper's
  // "faster backend => more notifications" anomaly.
  VirtioBackend(MemIo* guest_mem, Pa ring_base, uint32_t per_buffer_cycles);

  // MmioDevice: the doorbell register (offset 0) receives kicks.
  uint64_t MmioRead(Cpu& cpu, uint64_t offset) override;
  void MmioWrite(Cpu& cpu, uint64_t offset, uint64_t value)
      EXCLUDES(ring_mu_) override;

  // Drains available buffers into the used ring. Processing time accrues on
  // the backend thread's own clock (`busy_until`), modeling the vhost
  // thread running concurrently with the guest. Returns buffers processed.
  int ProcessAvail(Cpu& cpu) EXCLUDES(ring_mu_);

  // Scheduling point of the backend's thread (called by the machine/harness
  // between guest operations): picks up buffers posted without a kick and,
  // once the thread has drained everything and caught up with `now`,
  // re-enables notifications in the used ring.
  void Poll(uint64_t now_cycles) EXCLUDES(ring_mu_);

  // True while the backend's thread is still working at `now`: posts
  // arriving before this need no kick.
  bool BusyAt(uint64_t now_cycles) const EXCLUDES(ring_mu_) {
    MutexLock lock(ring_mu_);
    return now_cycles < busy_until_;
  }

  // Machine-wide fault injector (kVirtioRingCorruption: a kick may tear the
  // used.idx the frontend reads). May stay null.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  uint64_t kicks() const EXCLUDES(ring_mu_) {
    MutexLock lock(ring_mu_);
    return kicks_;
  }
  uint64_t buffers_processed() const EXCLUDES(ring_mu_) {
    MutexLock lock(ring_mu_);
    return buffers_processed_;
  }
  uint64_t busy_until() const EXCLUDES(ring_mu_) {
    MutexLock lock(ring_mu_);
    return busy_until_;
  }

 private:
  uint64_t Read(uint64_t off) const {
    return guest_mem_->Read64(Pa(ring_base_.value + off));
  }
  void Write(uint64_t off, uint64_t v) {
    guest_mem_->Write64(Pa(ring_base_.value + off), v);
  }
  int ProcessAvailLocked(Cpu& cpu) REQUIRES(ring_mu_);
  void ProcessAvailOnThread() REQUIRES(ring_mu_);

  friend class snap::Serializer;

  MemIo* guest_mem_;  // not-snapshotted: host wiring
  Pa ring_base_;      // not-snapshotted: fixed at construction, verified
  FaultInjector* fault_ = nullptr;  // not-snapshotted: host wiring
  uint32_t per_buffer_cycles_;      // not-snapshotted: fixed at construction
  // The backend's ring cursor and work clock: in the SMP future a vhost
  // host-thread drains the ring while vCPU threads kick it, so the shared
  // cursor state is mutex-guarded now (uncontended while each Machine has a
  // single mutator). The ring *contents* live in guest memory and follow
  // the guest's own memory model, not this lock.
  mutable Mutex ring_mu_{"hyp.virtio_ring"};
  uint64_t last_avail_ GUARDED_BY(ring_mu_) = 0;
  uint64_t busy_until_ GUARDED_BY(ring_mu_) = 0;
  uint64_t kicks_ GUARDED_BY(ring_mu_) = 0;
  uint64_t buffers_processed_ GUARDED_BY(ring_mu_) = 0;
};

// Frontend half: the guest's driver. All ring traffic goes through the
// guest's own (translated, cycle-charged) memory operations.
class VirtioDriver {
 public:
  // `ring_base`/`doorbell` are guest virtual(=physical) addresses; the
  // doorbell must sit in an MMIO region backed by the VirtioBackend.
  VirtioDriver(Va ring_base, Va doorbell);

  // Zeroes the ring indices (guest-side init).
  void Init(GuestEnv& env);

  // Posts one buffer. Kicks the doorbell unless the backend suppressed
  // notifications (used.flags NO_NOTIFY). Returns true when a kick (and so
  // a VM exit) was taken -- the measurable quantity of section 7.2.
  bool SendBuffer(GuestEnv& env, uint64_t addr, uint64_t len);

  // Reaps completed buffers from the used ring; returns how many.
  int ReapUsed(GuestEnv& env);

  uint64_t kicks_sent() const { return kicks_sent_; }
  uint64_t posts() const { return posts_; }

 private:
  friend class snap::Serializer;

  Va base_;      // not-snapshotted: fixed at construction, verified
  Va doorbell_;  // not-snapshotted: fixed at construction, verified
  uint64_t avail_idx_ = 0;
  uint64_t last_used_ = 0;
  int next_desc_ = 0;
  uint64_t kicks_sent_ = 0;
  uint64_t posts_ = 0;
};

}  // namespace neve

#endif  // NEVE_SRC_HYP_VIRTIO_H_
