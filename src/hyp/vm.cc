#include "src/hyp/vm.h"

#include "src/base/digest.h"
#include "src/base/status.h"

namespace neve {

const char* VcpuModeName(VcpuMode mode) {
  switch (mode) {
    case VcpuMode::kGuest:
      return "guest";
    case VcpuMode::kVel2:
      return "vEL2";
    case VcpuMode::kVel1Kernel:
      return "vEL1-kernel";
    case VcpuMode::kVel1Nested:
      return "vEL1-nested";
  }
  return "?";
}

uint64_t Vcpu::ContextDigest() const {
  Digest d;
  d.Mix(static_cast<uint64_t>(mode));
  for (uint64_t reg : vregs_) {
    d.Mix(reg);
  }
  return d.value();
}

void Vcpu::ResetRuntimeState() {
  mode = vm_->config().virtual_el2 ? VcpuMode::kVel2 : VcpuMode::kGuest;
  main_sw = GuestSoftware{};
  nested_sw = GuestSoftware{};
  nested2_sw = GuestSoftware{};
  active_nested = &nested_sw;
  vel2_handler_active = false;
  parked = false;
  loaded_on_pcpu = -1;
  nested_is_hyp = false;
  nested_hcr = 0;
  deferred_vector.reset();
  deferred_vector_active = false;
  mmio_retry = false;
  shadows.clear();
  pending_virq.clear();
  virqs_enqueued = 0;
  mmio_result = 0;
  for (size_t i = 0; i < kNumRegIds; ++i) {
    vregs_[i] = 0;
  }
}

Vm::Vm(const VmConfig& config, Pa ram_base, MemIo* table_mem,
       PageAllocator* table_alloc)
    : config_(config), ram_base_(ram_base), s2_(table_mem, table_alloc) {
  // host-invariant: VM configuration is host input, validated at creation.
  NEVE_CHECK(config.num_vcpus > 0);
  // host-invariant: VM configuration is host input, validated at creation.
  NEVE_CHECK(!config.expose_neve || config.virtual_el2);
  // Identity-with-offset Stage-2: guest IPA [0, ram_size) -> creator
  // physical [ram_base, ram_base + ram_size).
  s2_.MapRange(Ipa(0), ram_base, config.ram_size, PagePerms::Rw());
  for (int i = 0; i < config.num_vcpus; ++i) {
    vcpus_.push_back(std::make_unique<Vcpu>(this, i));
    if (config.virtual_el2) {
      vcpus_.back()->mode = VcpuMode::kVel2;
    }
  }
}

void Vm::AddMmioRange(Ipa base, uint64_t size, MmioDevice* device) {
  // host-invariant: device wiring is host code, not guest-controlled.
  NEVE_CHECK(device != nullptr);
  // The region must fault: unmap it from Stage-2 (it may overlap RAM
  // mappings created above; devices normally sit above RAM, but be safe).
  for (uint64_t off = 0; off < size; off += kPageSize) {
    s2_.UnmapPage(Ipa(base.value + off));
  }
  mmio_.push_back(MmioRange{.base = base, .size = size, .device = device});
}

const MmioRange* Vm::FindMmio(Ipa ipa) const {
  for (const MmioRange& r : mmio_) {
    if (r.Contains(ipa)) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace neve
