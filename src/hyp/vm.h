// VM and vCPU state kept by a hypervisor (host or guest level).
//
// A Vm owns a Stage-2 table in *its creator's* physical address space: the
// host hypervisor's VMs translate IPA -> machine PA; a guest hypervisor's
// nested VM translates L2 IPA -> L1 IPA, with the tables themselves living in
// the guest hypervisor's memory (accessed through a GuestPhysView).
//
// A Vcpu carries the virtual register file and the nested-virtualization
// context the paper's design revolves around: which virtual mode the vCPU is
// in (virtual EL2, its kernel at virtual EL1, or the nested VM), its shadow
// Stage-2, its deferred access page when NEVE is exposed, and the software
// images/vectors the guest registered.

#ifndef NEVE_SRC_HYP_VM_H_
#define NEVE_SRC_HYP_VM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/arch/sysreg.h"
#include "src/hyp/devices.h"
#include "src/hyp/guest_env.h"
#include "src/mem/page_table.h"
#include "src/mem/shadow_s2.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes vCPU contexts and shadow sets
}  // namespace snap

struct VmConfig {
  std::string name = "vm";
  int num_vcpus = 1;
  uint64_t ram_size = 16ull << 20;
  // Expose virtualization extensions (virtual EL2) to this VM, allowing it
  // to run a guest hypervisor (ARMv8.3-NV emulation, section 4).
  bool virtual_el2 = false;
  // Expose NEVE (VNCR_EL2 + deferred access page) to this VM's virtual EL2.
  bool expose_neve = false;
  // The guest hypervisor runs in VHE mode (virtual E2H). Determines NV1:
  // a VHE guest's EL1-encoded accesses target its own (virtual EL2) context
  // directly; a non-VHE guest's EL1 accesses are VM state and must trap.
  bool guest_vhe = false;
};

// Which software context a vCPU is executing, from its hypervisor's view.
enum class VcpuMode : uint8_t {
  kGuest,        // plain VM (no virtual EL2)
  kVel2,         // guest hypervisor code in virtual EL2
  kVel1Kernel,   // guest hypervisor's own kernel at virtual EL1
  kVel1Nested,   // the nested VM the guest hypervisor runs
};

const char* VcpuModeName(VcpuMode mode);

// The software a guest context consists of: entry point plus registered
// vectors (see guest_env.h).
struct GuestSoftware {
  GuestMain main;
  GuestIrqHandler irq;
  Vel2Handler* vel2 = nullptr;
  bool started = false;
};

// IPA of the (Stage-2-unmapped) GICv2-style hypervisor control interface
// inside a guest-hypervisor VM (section 4: it "trivially traps to EL2 when
// not mapped in the Stage-2 page tables"). Register offsets reuse the
// deferred-page layout (one 8-byte slot per RegId).
inline constexpr uint64_t kGichMmioBase = 0x3F00'0000;

struct MmioRange {
  Ipa base;
  uint64_t size = 0;
  MmioDevice* device = nullptr;

  bool Contains(Ipa ipa) const {
    return ipa.value >= base.value && ipa.value < base.value + size;
  }
};

class Vm;

class Vcpu {
 public:
  Vcpu(Vm* vm, int id) : vm_(vm), id_(id) {}

  Vm& vm() { return *vm_; }
  const Vm& vm() const { return *vm_; }
  int id() const { return id_; }

  // Virtual register file (the in-memory vcpu context a hypervisor keeps).
  uint64_t vreg(RegId reg) const { return vregs_[static_cast<size_t>(reg)]; }
  void set_vreg(RegId reg, uint64_t v) { vregs_[static_cast<size_t>(reg)] = v; }

  // Order-stable digest of the virtual register file plus the virtual mode
  // -- the vcpu-context half of the architectural state the differential
  // fuzz oracles compare (the hardware half is Cpu::ArchStateDigest).
  uint64_t ContextDigest() const;

  // The software slot that is executing / being set up in `mode`.
  GuestSoftware& SoftwareFor(VcpuMode mode) {
    return mode == VcpuMode::kVel1Nested ? *active_nested : main_sw;
  }

  // --- public state, managed by the owning hypervisor ----------------------
  VcpuMode mode = VcpuMode::kGuest;
  GuestSoftware main_sw;    // the VM's boot image (virtual EL2 for hyp guests)
  GuestSoftware nested_sw;  // image the guest hypervisor loads for its guest
  GuestSoftware nested2_sw;  // one level deeper: the L3 image an L2
                             // hypervisor loads (recursive nesting, 6.2)
  GuestSoftware* active_nested = &nested_sw;  // which nested image is current
  bool vel2_handler_active = false;  // virtual-EL2 vector currently running
  bool parked = false;               // left "running" by ParkRunning()
  int loaded_on_pcpu = -1;

  // Recursive nesting: the currently-entered nested context is itself a
  // hypervisor (the guest hypervisor programmed NV for it); `nested_hcr`
  // holds the virtual HCR bits the host mirrors into hardware.
  bool nested_is_hyp = false;
  uint64_t nested_hcr = 0;

  // A virtual-vector invocation the guest hypervisor scheduled for after its
  // next guest entry ("the eret lands at the deeper vector"); see
  // GuestEnv::DeferVectorCall.
  struct DeferredVector {
    Vel2Handler* handler = nullptr;
    Syndrome syndrome;
  };
  std::optional<DeferredVector> deferred_vector;
  bool deferred_vector_active = false;
  // Set by a guest hypervisor that fixed up translation state for a
  // forwarded Stage-2 fault: the host replays the access instead of
  // completing it as MMIO.
  bool mmio_retry = false;

  // Nested virtualization support: shadow Stage-2 tables, keyed by the
  // guest hypervisor's virtual VTTBR (it may maintain several Stage-2
  // trees -- one per nested VM, plus its own recursive shadows).
  std::map<uint64_t, std::unique_ptr<ShadowS2>> shadows;
  // Hardware deferred access page (host-owned) when NEVE is exposed.
  Pa vncr_hw_page{};

  // Hypervisor-level virtual GIC: interrupts pending injection into this
  // vCPU, and the list-register images to load on next entry.
  std::deque<uint32_t> pending_virq;
  // Monotonic count of virtual interrupts ever *newly* enqueued for this
  // vCPU (re-queues on context switch do not count). SMP rendezvous
  // predicates read it: unlike pending_virq's size it never decreases, so
  // "my sibling sent round N's IPI" stays observable after delivery.
  // Cross-lane writes go through the SMP engine's deferred merge (or stay
  // on the single cooperative thread), hence no lock.
  uint64_t virqs_enqueued = 0;

  // Result slot for a forwarded MMIO read completed by the guest hypervisor
  // (the architectural x0 of the faulting load).
  uint64_t mmio_result = 0;

  // Statistics.
  uint64_t exits = 0;
  uint64_t vel2_deliveries = 0;

  // Drops every piece of run-time state the hypervisor layers above manage
  // (software slots, pending interrupts, shadow tables, deferred work),
  // returning the vCPU to its just-constructed shape. Used when a confined
  // guest fault kills the VM and when a killed VM is restarted.
  void ResetRuntimeState();

 private:
  friend class snap::Serializer;

  Vm* vm_;   // not-snapshotted: owner backpointer
  int id_;   // not-snapshotted: construction identity, verified on apply
  uint64_t vregs_[kNumRegIds] = {};
};

class Vm {
 public:
  // `table_mem`/`table_alloc` provide storage for the Stage-2 tree in the
  // creating hypervisor's physical address space.
  Vm(const VmConfig& config, Pa ram_base, MemIo* table_mem,
     PageAllocator* table_alloc);

  const VmConfig& config() const { return config_; }
  Pa ram_base() const { return ram_base_; }

  // Host-assigned VM index, used as the attribution key's vm field (attr.h).
  // -1 for VMs not registered with a host hypervisor (a guest hypervisor's
  // internal Vm objects keep the default).
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  Vcpu& vcpu(int i) { return *vcpus_.at(i); }

  Stage2Table& s2() { return s2_; }
  const Stage2Table& s2() const { return s2_; }

  // Registers an MMIO device region (left unmapped in Stage-2).
  void AddMmioRange(Ipa base, uint64_t size, MmioDevice* device);
  const MmioRange* FindMmio(Ipa ipa) const;

  // A confined guest fault killed this VM: its vCPUs refuse to run until a
  // restart clears the flag. The rest of the machine is unaffected.
  bool dead() const { return dead_; }
  void set_dead(bool dead) { dead_ = dead; }
  // How often this VM has been (re)started; bumped by HostKvm::RestartVm.
  uint64_t generation() const { return generation_; }
  void bump_generation() { ++generation_; }

 private:
  friend class snap::Serializer;

  VmConfig config_;  // not-snapshotted: fixed at CreateVm, verified on apply
  int id_ = -1;      // not-snapshotted: construction identity, verified
  bool dead_ = false;  // single-mutator: snap restore runs quiesced
  uint64_t generation_ = 0;  // single-mutator: snap restore runs quiesced
  Pa ram_base_;      // not-snapshotted: deterministic carve-out, verified
  Stage2Table s2_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  std::vector<MmioRange> mmio_;  // not-snapshotted: device wiring, rebuilt
};

}  // namespace neve

#endif  // NEVE_SRC_HYP_VM_H_
