#include "src/hyp/world_switch.h"

#include <array>

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {
namespace {

constexpr std::array<SysReg, kNumVmEl1Regs> kEl1Encodings = {
    SysReg::kSCTLR_EL1, SysReg::kTTBR0_EL1, SysReg::kTTBR1_EL1,
    SysReg::kTCR_EL1,   SysReg::kESR_EL1,   SysReg::kFAR_EL1,
    SysReg::kAFSR0_EL1, SysReg::kAFSR1_EL1, SysReg::kMAIR_EL1,
    SysReg::kAMAIR_EL1, SysReg::kCONTEXTIDR_EL1, SysReg::kVBAR_EL1,
    SysReg::kCPACR_EL1, SysReg::kELR_EL1,   SysReg::kSPSR_EL1,
    SysReg::kSP_EL1,
};

constexpr std::array<SysReg, kNumVmEl1Regs> kEl12Encodings = {
    SysReg::kSCTLR_EL12, SysReg::kTTBR0_EL12, SysReg::kTTBR1_EL12,
    SysReg::kTCR_EL12,   SysReg::kESR_EL12,   SysReg::kFAR_EL12,
    SysReg::kAFSR0_EL12, SysReg::kAFSR1_EL12, SysReg::kMAIR_EL12,
    SysReg::kAMAIR_EL12, SysReg::kCONTEXTIDR_EL12, SysReg::kVBAR_EL12,
    SysReg::kCPACR_EL12, SysReg::kELR_EL12,   SysReg::kSPSR_EL12,
    SysReg::kSP_EL1,  // no *_EL12 alias exists; encoding shared
};

constexpr std::array<RegId, kNumVmEl1Regs> kEl1RegIds = {
    RegId::kSCTLR_EL1, RegId::kTTBR0_EL1, RegId::kTTBR1_EL1,
    RegId::kTCR_EL1,   RegId::kESR_EL1,   RegId::kFAR_EL1,
    RegId::kAFSR0_EL1, RegId::kAFSR1_EL1, RegId::kMAIR_EL1,
    RegId::kAMAIR_EL1, RegId::kCONTEXTIDR_EL1, RegId::kVBAR_EL1,
    RegId::kCPACR_EL1, RegId::kELR_EL1,   RegId::kSPSR_EL1,
    RegId::kSP_EL1,
};

// One cached memory reference for the in-memory context slot accompanying
// each register save/restore.
void ChargeContextSlot(Cpu& cpu) { cpu.Compute(cpu.cost().mem_access); }

}  // namespace

std::span<const RegId> VmEl1RegIds() { return kEl1RegIds; }

int El1ContextIndexOf(RegId el1_reg) {
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    if (kEl1RegIds[i] == el1_reg) {
      return i;
    }
  }
  return -1;
}

std::span<const SysReg> VmEl1Encodings(bool vhe) {
  return vhe ? std::span<const SysReg>(kEl12Encodings)
             : std::span<const SysReg>(kEl1Encodings);
}

void SaveEl1Context(Cpu& cpu, bool vhe, El1Context* out) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "save_el1");
  std::span<const SysReg> encs = VmEl1Encodings(vhe);
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    out->regs[i] = cpu.SysRegRead(encs[i]);
    ChargeContextSlot(cpu);
  }
}

void RestoreEl1Context(Cpu& cpu, bool vhe, const El1Context& in) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "restore_el1");
  std::span<const SysReg> encs = VmEl1Encodings(vhe);
  for (int i = 0; i < kNumVmEl1Regs; ++i) {
    ChargeContextSlot(cpu);
    cpu.SysRegWrite(encs[i], in.regs[i]);
  }
}

ExitInfo ReadExitInfo(Cpu& cpu, bool vhe, bool read_fault_regs) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "read_exit_info");
  // The syndrome registers are the hypervisor's *own* EL2 state; VHE and
  // non-VHE builds both use the EL2 encodings (E2H redirection only affects
  // EL1 encodings). At virtual EL2 these accesses trap under plain
  // ARMv8.3-NV and become EL1-register reads under NEVE (Table 4 redirect).
  (void)vhe;
  ExitInfo info;
  info.esr = cpu.SysRegRead(SysReg::kESR_EL2);
  info.elr = cpu.SysRegRead(SysReg::kELR_EL2);
  info.spsr = cpu.SysRegRead(SysReg::kSPSR_EL2);
  if (read_fault_regs) {
    info.far = cpu.SysRegRead(SysReg::kFAR_EL2);
    info.hpfar = cpu.SysRegRead(SysReg::kHPFAR_EL2);
  }
  return info;
}

void WriteReturnState(Cpu& cpu, bool vhe, uint64_t elr, uint64_t spsr) {
  (void)vhe;
  cpu.SysRegWrite(SysReg::kELR_EL2, elr);
  cpu.SysRegWrite(SysReg::kSPSR_EL2, spsr);
}

void SaveExtEl1Context(Cpu& cpu, bool vhe, ExtEl1Context* out) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "save_ext_el1");
  out->regs[0] = cpu.SysRegRead(SysReg::kTPIDR_EL0);
  out->regs[1] = cpu.SysRegRead(SysReg::kTPIDRRO_EL0);
  out->regs[2] = cpu.SysRegRead(SysReg::kTPIDR_EL1);
  out->regs[3] = cpu.SysRegRead(SysReg::kPAR_EL1);
  out->regs[4] =
      cpu.SysRegRead(vhe ? SysReg::kCNTKCTL_EL12 : SysReg::kCNTKCTL_EL1);
  out->regs[5] = cpu.SysRegRead(SysReg::kCSSELR_EL1);
  for (int i = 0; i < kNumExtEl1Regs; ++i) {
    ChargeContextSlot(cpu);
  }
}

void RestoreExtEl1Context(Cpu& cpu, bool vhe, const ExtEl1Context& in) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "restore_ext_el1");
  for (int i = 0; i < kNumExtEl1Regs; ++i) {
    ChargeContextSlot(cpu);
  }
  cpu.SysRegWrite(SysReg::kTPIDR_EL0, in.regs[0]);
  cpu.SysRegWrite(SysReg::kTPIDRRO_EL0, in.regs[1]);
  cpu.SysRegWrite(SysReg::kTPIDR_EL1, in.regs[2]);
  cpu.SysRegWrite(SysReg::kPAR_EL1, in.regs[3]);
  cpu.SysRegWrite(vhe ? SysReg::kCNTKCTL_EL12 : SysReg::kCNTKCTL_EL1,
                  in.regs[4]);
  cpu.SysRegWrite(SysReg::kCSSELR_EL1, in.regs[5]);
}

void SavePmuDebugState(Cpu& cpu, PmuDebugContext* out) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "save_pmu_debug");
  out->mdscr = cpu.SysRegRead(SysReg::kMDSCR_EL1);
  out->pmuserenr = cpu.SysRegRead(SysReg::kPMUSERENR_EL0);
  cpu.SysRegWrite(SysReg::kPMUSERENR_EL0, 0);  // lock out EL0 counters
  ChargeContextSlot(cpu);
  ChargeContextSlot(cpu);
}

void RestorePmuDebugState(Cpu& cpu, const PmuDebugContext& in) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "restore_pmu_debug");
  ChargeContextSlot(cpu);
  cpu.SysRegWrite(SysReg::kPMUSERENR_EL0, in.pmuserenr);
  cpu.SysRegWrite(SysReg::kPMSELR_EL0, 0);
}

void SaveVgic(Cpu& cpu, VgicContext* ctx) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "save_vgic");
  ctx->vmcr = cpu.SysRegRead(SysReg::kICH_VMCR_EL2);
  ChargeContextSlot(cpu);
  // Live list registers are discovered through the status registers.
  (void)cpu.SysRegRead(SysReg::kICH_VTR_EL2);
  (void)cpu.SysRegRead(SysReg::kICH_ELRSR_EL2);
  (void)cpu.SysRegRead(SysReg::kICH_EISR_EL2);
  for (int i = 0; i < ctx->lrs_in_use; ++i) {
    ctx->lr[i] = cpu.SysRegRead(IchListRegisterEncoding(i));
    ChargeContextSlot(cpu);
  }
  if (ctx->lrs_in_use > 0) {
    (void)cpu.SysRegRead(SysReg::kICH_AP1R0_EL2);
  }
  cpu.SysRegWrite(SysReg::kICH_HCR_EL2, 0);  // disable maintenance interface
}

void RestoreVgic(Cpu& cpu, const VgicContext& ctx) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "restore_vgic");
  cpu.SysRegWrite(SysReg::kICH_VMCR_EL2, ctx.vmcr);
  for (int i = 0; i < ctx.lrs_in_use; ++i) {
    ChargeContextSlot(cpu);
    cpu.SysRegWrite(IchListRegisterEncoding(i), ctx.lr[i]);
  }
  if (ctx.lrs_in_use > 0) {
    cpu.SysRegWrite(SysReg::kICH_AP1R0_EL2, 0);
  }
  cpu.SysRegWrite(SysReg::kICH_HCR_EL2, 1);  // En
}

void SaveGuestTimer(Cpu& cpu, bool vhe, TimerContext* out) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "save_guest_timer");
  if (vhe) {
    // VHE hypervisors reach the guest's EL1 virtual timer through the
    // *_EL02 encodings -- which always trap at virtual EL2, even with NEVE
    // (section 7.1's extra traps for VHE guest hypervisors).
    out->cntv_ctl = cpu.SysRegRead(SysReg::kCNTV_CTL_EL02);
    cpu.SysRegWrite(SysReg::kCNTV_CTL_EL02, 0);  // mask while in hypervisor
    if (TestBit(out->cntv_ctl, 0)) {
      out->cntv_cval = cpu.SysRegRead(SysReg::kCNTV_CVAL_EL02);
    }
  } else {
    out->cntv_ctl = cpu.SysRegRead(SysReg::kCNTV_CTL_EL0);
    cpu.SysRegWrite(SysReg::kCNTV_CTL_EL0, 0);
    if (TestBit(out->cntv_ctl, 0)) {
      out->cntv_cval = cpu.SysRegRead(SysReg::kCNTV_CVAL_EL0);
    }
  }
  // Open host access to the physical counter while in the hypervisor/host.
  cpu.SysRegWrite(SysReg::kCNTHCTL_EL2, 0b11);
}

void RestoreGuestTimer(Cpu& cpu, bool vhe, const TimerContext& in,
                       uint64_t cntvoff) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "restore_guest_timer");
  cpu.SysRegWrite(SysReg::kCNTHCTL_EL2, 0b01);  // restrict counter access
  cpu.SysRegWrite(SysReg::kCNTVOFF_EL2, cntvoff);
  // The compare value only needs reprogramming when the timer is armed.
  if (vhe) {
    if (TestBit(in.cntv_ctl, 0)) {
      cpu.SysRegWrite(SysReg::kCNTV_CVAL_EL02, in.cntv_cval);
    }
    cpu.SysRegWrite(SysReg::kCNTV_CTL_EL02, in.cntv_ctl);
  } else {
    if (TestBit(in.cntv_ctl, 0)) {
      cpu.SysRegWrite(SysReg::kCNTV_CVAL_EL0, in.cntv_cval);
    }
    cpu.SysRegWrite(SysReg::kCNTV_CTL_EL0, in.cntv_ctl);
  }
}

void WriteGuestTrapControls(Cpu& cpu, uint64_t hcr, uint64_t vttbr,
                            uint64_t vmpidr) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "write_guest_trap_controls");
  cpu.SysRegWrite(SysReg::kVMPIDR_EL2, vmpidr);
  cpu.SysRegWrite(SysReg::kVPIDR_EL2, cpu.PeekReg(RegId::kMIDR_EL1));
  cpu.SysRegWrite(SysReg::kHSTR_EL2, 0);
  cpu.SysRegWrite(SysReg::kVTTBR_EL2, vttbr);
  // HCR is read-modify-written: per-vcpu bits over the global base.
  uint64_t cur = cpu.SysRegRead(SysReg::kHCR_EL2);
  cpu.SysRegWrite(SysReg::kHCR_EL2, (cur & 0) | hcr);
  // Activate FP/debug traps for the guest.
  cpu.SysRegWrite(SysReg::kCPTR_EL2, 1);
  cpu.SysRegWrite(SysReg::kMDCR_EL2, 1);
}

void WriteHostTrapControls(Cpu& cpu, uint64_t host_hcr) {
  ScopedSpan span(cpu.obs(), cpu, "world_switch", "write_host_trap_controls");
  uint64_t cur = cpu.SysRegRead(SysReg::kHCR_EL2);
  cpu.SysRegWrite(SysReg::kHCR_EL2, (cur & 0) | host_hcr);
  cpu.SysRegWrite(SysReg::kVTTBR_EL2, 0);
  cpu.SysRegWrite(SysReg::kCPTR_EL2, 0);
  cpu.SysRegWrite(SysReg::kMDCR_EL2, 0);
}

void TouchPerCpuData(Cpu& cpu) {
  // Per-cpu data pointer loads at vector entry and in the run loop.
  (void)cpu.SysRegRead(SysReg::kTPIDR_EL2);
  ChargeContextSlot(cpu);
  (void)cpu.SysRegRead(SysReg::kTPIDR_EL2);
  ChargeContextSlot(cpu);
}

}  // namespace neve
