// World-switch register sequences, shared by the host and guest hypervisors.
//
// This file is the crux of the reproduction. The sequences mirror KVM/ARM's
// (Linux 4.10-era) save/restore lists, restricted to the registers the paper
// classifies in Tables 3-5. When executed by the *host* hypervisor at real
// EL2 every operation completes locally; when executed by a *guest*
// hypervisor at virtual EL2, each operation resolves per the active
// architecture:
//   ARMv8.3-NV : EL2-encoded and (NV1) EL1-encoded accesses trap -> the exit
//                multiplication of Tables 1/7 (126/82 traps per hypercall),
//   NEVE       : most accesses become deferred-page or EL1-register
//                accesses; only Table 4/5 "trap on write" registers, EL02
//                timer accesses, hvc and eret still trap (15 traps).
// Nothing here counts traps explicitly -- the counts emerge from the CPU's
// resolution pipeline executing these sequences.
//
// Encoding choice mirrors real hypervisor builds: a non-VHE hypervisor uses
// EL1 encodings for VM state and EL2 encodings for its own state; a VHE
// hypervisor uses *_EL12/*_EL02 for VM state and EL1 encodings (E2H-
// redirected) for its own state wherever the architecture allows.

#ifndef NEVE_SRC_HYP_WORLD_SWITCH_H_
#define NEVE_SRC_HYP_WORLD_SWITCH_H_

#include <cstdint>
#include <span>

#include "src/base/digest.h"
#include "src/cpu/cpu.h"

namespace neve {

// Software path lengths (cycles of straight-line hypervisor/kernel code
// between the architecturally interesting instructions). Calibrated so the
// single-level (VM) microbenchmark costs land near Table 1's baselines; all
// nested behaviour then emerges. See DESIGN.md section 6.
struct SwCost {
  static constexpr uint32_t kRunLoop = 330;       // run-loop bookkeeping/exit
  static constexpr uint32_t kVcpuLoadPut = 260;   // vcpu_load / vcpu_put
  static constexpr uint32_t kGprSwitch = 100;     // x0-x30 save or restore
  static constexpr uint32_t kExitDispatch = 240;  // ESR demux + dispatch
  static constexpr uint32_t kHypercall = 120;     // test hypercall body
  static constexpr uint32_t kSysregEmulate = 520; // plain trapped-sysreg emul.
  // Virtual-EL2 emulation paths in the host (trap-type dependent: the traps
  // NEVE leaves behind are the heavyweight ones -- eret context switching,
  // vGIC and timer state machines -- while the VM-register stores that
  // dominate under plain ARMv8.3 are trivial):
  static constexpr uint32_t kVgicEmulate = 2200;  // ICH_* write emulation
  static constexpr uint32_t kTimerEmulate = 1500; // trapped EL2-timer access
  // *_EL02 accesses: the guest's live EL1 virtual timer must be handled
  // together with the VHE-only EL2 virtual timer the host also multiplexes
  // (section 7.1) -- the costliest surviving NEVE trap, and the reason the
  // VHE rows of Table 6 exceed the non-VHE ones.
  static constexpr uint32_t kEl02TimerEmulate = 4500;
  static constexpr uint32_t kTrapCtlEmulate = 1800;  // CPTR/MDCR/CNT* writes
  static constexpr uint32_t kEretEmulate = 5600;  // vEL2 eret: mode switch
  static constexpr uint32_t kVel1Transition = 1400;  // ctx swap bookkeeping
  static constexpr uint32_t kVel2Deliver = 4600;  // build virtual exception
  static constexpr uint32_t kMmioDispatch = 260;  // abort decode + routing
  static constexpr uint32_t kDeviceIo = 820;      // device backend (userspace)
  static constexpr uint32_t kVgicSgi = 900;       // SGI emulate: target+queue
  static constexpr uint32_t kVirqInject = 900;    // pick LR, build payload
  static constexpr uint32_t kIrqTriageHost = 400; // phys IRQ triage
  static constexpr uint32_t kShadowFixup = 520;   // shadow-S2 fault software
  static constexpr uint32_t kGuestKernelWork = 800;  // guest kernel handling
};

// Number of VM execution-control registers in the save/restore list
// (Table 3's EL1 group).
inline constexpr int kNumVmEl1Regs = 16;

// The VM EL1 context encodings in KVM save order; `vhe` selects the *_EL12
// alias encodings (SP_EL1 has no alias and is shared).
std::span<const SysReg> VmEl1Encodings(bool vhe);

// The backing registers of that list, in the same order.
std::span<const RegId> VmEl1RegIds();

// Index of `el1_reg` within the context list, or -1 when absent.
int El1ContextIndexOf(RegId el1_reg);

// A saved register context (hypervisor software memory).
struct El1Context {
  uint64_t regs[kNumVmEl1Regs] = {};
};

// Save/restore the VM (or host kernel) EL1 context. Each register costs the
// access itself plus one cached memory reference for the context structure.
void SaveEl1Context(Cpu& cpu, bool vhe, El1Context* out);
void RestoreEl1Context(Cpu& cpu, bool vhe, const El1Context& in);

// Extended VM execution context: thread/kernel EL1(+EL0) state KVM also
// context switches (TPIDR*, PAR_EL1, CNTKCTL_EL1, CSSELR_EL1). The EL0
// thread registers never trap; the EL1 ones are VM registers (deferred
// under NEVE, trapped under plain NV).
inline constexpr int kNumExtEl1Regs = 6;
struct ExtEl1Context {
  uint64_t regs[kNumExtEl1Regs] = {};
};
void SaveExtEl1Context(Cpu& cpu, bool vhe, ExtEl1Context* out);
void RestoreExtEl1Context(Cpu& cpu, bool vhe, const ExtEl1Context& in);

// PMU / debug state switch (section 6.1's performance-monitoring and debug
// registers): reads of MDSCR_EL1 and PMUSERENR_EL0, write-back of the
// host/guest PMUSERENR and PMSELR values.
struct PmuDebugContext {
  uint64_t mdscr = 0;
  uint64_t pmuserenr = 0;
};
void SavePmuDebugState(Cpu& cpu, PmuDebugContext* out);
void RestorePmuDebugState(Cpu& cpu, const PmuDebugContext& in);

// Exit information read at vector entry. Non-VHE hypervisors use EL2
// encodings; VHE hypervisors use the E2H-redirected EL1 encodings.
struct ExitInfo {
  uint64_t esr = 0;
  uint64_t elr = 0;
  uint64_t spsr = 0;
  uint64_t far = 0;
  uint64_t hpfar = 0;
};
ExitInfo ReadExitInfo(Cpu& cpu, bool vhe, bool read_fault_regs);

// Programs the exception-return state (ELR/SPSR) before entering a guest.
void WriteReturnState(Cpu& cpu, bool vhe, uint64_t elr, uint64_t spsr);

// --- vGIC hypervisor control interface switch (Table 5 registers) ----------
struct VgicContext {
  uint64_t vmcr = 0;
  uint64_t lr[16] = {};
  int lrs_in_use = 0;
};
// Exit side: read VMCR, read the in-use list registers, disable ICH_HCR.
void SaveVgic(Cpu& cpu, VgicContext* ctx);
// Entry side: write VMCR, the in-use list registers, enable ICH_HCR.
void RestoreVgic(Cpu& cpu, const VgicContext& ctx);

// --- generic timer switch ----------------------------------------------------
struct TimerContext {
  uint64_t cntv_ctl = 0;
  uint64_t cntv_cval = 0;
};
// Exit: save + disable the guest's EL1 virtual timer, open host timer access.
void SaveGuestTimer(Cpu& cpu, bool vhe, TimerContext* out);
// Entry: program CNTVOFF/CNTHCTL and reload the guest timer.
void RestoreGuestTimer(Cpu& cpu, bool vhe, const TimerContext& in,
                       uint64_t cntvoff);

// --- trap controls -------------------------------------------------------------
// Entry: HCR/VTTBR/VMPIDR/HSTR for the guest, plus CPTR/MDCR trap activation.
void WriteGuestTrapControls(Cpu& cpu, uint64_t hcr, uint64_t vttbr,
                            uint64_t vmpidr);
// Exit: restore host-mode values.
void WriteHostTrapControls(Cpu& cpu, uint64_t host_hcr);

// Per-CPU data pointer reads KVM performs around a switch (TPIDR_EL2).
void TouchPerCpuData(Cpu& cpu);

// --- state digests ------------------------------------------------------------
// Order-stable fingerprints of the saved context structures, for the
// world-switch round-trip property test and the fuzz oracles: a
// save/restore cycle must leave both the hardware state
// (Cpu::ArchStateDigest) and these software images unchanged.
inline uint64_t DigestOf(const El1Context& c) {
  Digest d;
  for (uint64_t r : c.regs) {
    d.Mix(r);
  }
  return d.value();
}
inline uint64_t DigestOf(const ExtEl1Context& c) {
  Digest d;
  for (uint64_t r : c.regs) {
    d.Mix(r);
  }
  return d.value();
}
inline uint64_t DigestOf(const PmuDebugContext& c) {
  return neve::DigestOf(c.mdscr, c.pmuserenr);
}
inline uint64_t DigestOf(const VgicContext& c) {
  Digest d;
  d.Mix(c.vmcr);
  d.Mix(static_cast<uint64_t>(c.lrs_in_use));
  for (uint64_t lr : c.lr) {
    d.Mix(lr);
  }
  return d.value();
}
inline uint64_t DigestOf(const TimerContext& c) {
  return neve::DigestOf(c.cntv_ctl, c.cntv_cval);
}

}  // namespace neve

#endif  // NEVE_SRC_HYP_WORLD_SWITCH_H_
