// Strongly-typed addresses for the three translation regimes involved in
// nested virtualization (paper section 4):
//
//   Va  -- virtual address (what a guest's Stage-1 tables translate)
//   Ipa -- intermediate physical address (guest "physical"; Stage-2 input)
//   Pa  -- machine physical address
//
// With nesting there are *three* address spaces stacked below an L2 VA
// (L2 IPA -> L1 IPA -> L0 PA); the types keep hypervisor code honest about
// which space a value lives in.

#ifndef NEVE_SRC_MEM_ADDR_H_
#define NEVE_SRC_MEM_ADDR_H_

#include <compare>
#include <cstdint>

namespace neve {

namespace internal {

template <typename Tag>
struct Address {
  uint64_t value = 0;

  constexpr Address() = default;
  constexpr explicit Address(uint64_t v) : value(v) {}

  constexpr auto operator<=>(const Address&) const = default;

  constexpr Address operator+(uint64_t off) const {
    return Address(value + off);
  }
  constexpr uint64_t PageIndex() const { return value >> 12; }
  constexpr uint64_t PageOffset() const { return value & 0xFFF; }
  constexpr Address PageBase() const { return Address(value & ~uint64_t{0xFFF}); }
};

struct VaTag {};
struct IpaTag {};
struct PaTag {};

}  // namespace internal

using Va = internal::Address<internal::VaTag>;
using Ipa = internal::Address<internal::IpaTag>;
using Pa = internal::Address<internal::PaTag>;

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;

}  // namespace neve

#endif  // NEVE_SRC_MEM_ADDR_H_
