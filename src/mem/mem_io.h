// Abstract 64-bit word memory interface.
//
// Page tables are built over this rather than PhysMem directly so that a
// guest hypervisor's Stage-2 tables -- which live in *its* physical (IPA)
// space -- can be read and written through a translating view
// (GuestPhysView in shadow_s2.h). The host's shadow-S2 collapse walks the
// guest's tables through exactly such a view, as real hardware-assisted
// software walkers do.

#ifndef NEVE_SRC_MEM_MEM_IO_H_
#define NEVE_SRC_MEM_MEM_IO_H_

#include <cstdint>

#include "src/mem/addr.h"

namespace neve {

class MemIo {
 public:
  virtual ~MemIo() = default;

  virtual uint64_t Read64(Pa pa) const = 0;
  virtual void Write64(Pa pa, uint64_t value) = 0;
  virtual void ZeroPage(Pa page_base) = 0;
  virtual bool Contains(Pa pa, uint64_t bytes) const = 0;
};

}  // namespace neve

#endif  // NEVE_SRC_MEM_MEM_IO_H_
