#include "src/mem/page_table.h"

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {

PageTable::PageTable(MemIo* mem, PageAllocator* alloc)
    : mem_(mem), alloc_(alloc) {
  NEVE_CHECK(mem != nullptr && alloc != nullptr);
  root_ = alloc_->AllocPage();
}

void PageTable::Reset() { root_ = alloc_->AllocPage(); }

uint64_t PageTable::MakePageDesc(Pa page, PagePerms perms) {
  uint64_t d = page.value | 0b11;  // valid + page
  d = AssignBit(d, 53, perms.write);
  d = AssignBit(d, 54, perms.user);
  return d;
}

PagePerms PageTable::DescPerms(uint64_t d) {
  return {.write = TestBit(d, 53), .user = TestBit(d, 54)};
}

std::optional<Pa> PageTable::DescSlot(uint64_t input_addr, bool create) {
  Pa table = root_;
  for (int level = 0; level < 3; ++level) {
    Pa slot(table.value + LevelIndex(input_addr, level) * 8);
    uint64_t desc = mem_->Read64(slot);
    if (!DescValid(desc)) {
      if (!create) {
        return std::nullopt;
      }
      Pa next = alloc_->AllocPage();
      mem_->Write64(slot, MakeTableDesc(next));
      table = next;
    } else {
      table = DescOutput(desc);
    }
  }
  return Pa(table.value + LevelIndex(input_addr, 3) * 8);
}

void PageTable::MapPage(uint64_t input_page_addr, Pa output_page,
                        PagePerms perms) {
  MutexLock lock(mu_);
  MapPageLocked(input_page_addr, output_page, perms);
}

void PageTable::MapPageLocked(uint64_t input_page_addr, Pa output_page,
                              PagePerms perms) {
  NEVE_CHECK(IsAligned(input_page_addr, kPageSize));
  NEVE_CHECK(IsAligned(output_page.value, kPageSize));
  std::optional<Pa> slot = DescSlot(input_page_addr, /*create=*/true);
  mem_->Write64(*slot, MakePageDesc(output_page, perms));
}

void PageTable::MapRange(uint64_t input_start, Pa output_start, uint64_t size,
                         PagePerms perms) {
  NEVE_CHECK(IsAligned(size, kPageSize));
  MutexLock lock(mu_);
  for (uint64_t off = 0; off < size; off += kPageSize) {
    MapPageLocked(input_start + off, Pa(output_start.value + off), perms);
  }
}

void PageTable::UnmapPage(uint64_t input_page_addr) {
  MutexLock lock(mu_);
  std::optional<Pa> slot = DescSlot(input_page_addr, /*create=*/false);
  if (slot.has_value()) {
    mem_->Write64(*slot, 0);
  }
}

WalkResult PageTable::Walk(uint64_t input_addr, bool is_write) const {
  return WalkFrom(*mem_, root_, input_addr, is_write);
}

WalkResult PageTable::WalkFrom(const MemIo& mem, Pa root, uint64_t input_addr,
                               bool is_write) {
  Pa table = root;
  for (int level = 0; level < 4; ++level) {
    Pa slot(table.value + LevelIndex(input_addr, level) * 8);
    uint64_t desc = mem.Read64(slot);
    if (!DescValid(desc)) {
      return WalkResult::Fault(FaultReason::kTranslation, level, input_addr);
    }
    if (level == 3) {
      PagePerms perms = DescPerms(desc);
      if (is_write && !perms.write) {
        return WalkResult::Fault(FaultReason::kPermission, level, input_addr);
      }
      Pa out(DescOutput(desc).value | (input_addr & 0xFFF));
      return WalkResult::Success(out, perms);
    }
    table = DescOutput(desc);
  }
  NEVE_CHECK_MSG(false, "unreachable walk state");
  return {};
}

}  // namespace neve
