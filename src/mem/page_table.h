// 4-level, 4 KB-granule page tables with a software walker.
//
// The same descriptor format serves Stage-1 (VA -> IPA/PA) and Stage-2
// (IPA -> PA) translation. Real AArch64 uses slightly different attribute
// layouts per stage (and EL2's Stage-1 format differs from EL1's -- the
// ARMv8.3-NV "EL2 format at EL1" accommodation); those differences don't
// change trap or cycle behaviour, so the simulator uses one format and the
// CPU model tracks *which* format a translation regime expects (see
// cpu/cpu.h) to preserve the architectural rule the paper discusses.
//
// Descriptor layout (64-bit):
//   bit  0       valid
//   bit  1       table (levels 0-2) / page (level 3)
//   bits 47:12   next-level table PA, or output page PA at level 3
//   bit  53      writable
//   bit  54      EL0-accessible (Stage-1) / unused (Stage-2)
//   bit  55      device / MMIO region (Stage-2: fault to hypervisor even
//                when unmapped-adjacent; used by tests)

#ifndef NEVE_SRC_MEM_PAGE_TABLE_H_
#define NEVE_SRC_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/mem/addr.h"
#include "src/mem/phys_mem.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: re-roots restored table trees
}  // namespace snap

struct PagePerms {
  bool write = false;
  bool user = false;  // EL0-accessible (Stage-1 only)

  static PagePerms Rw() { return {.write = true, .user = false}; }
  static PagePerms Ro() { return {.write = false, .user = false}; }
  static PagePerms RwUser() { return {.write = true, .user = true}; }
};

enum class FaultReason : uint8_t {
  kNone = 0,
  kTranslation,  // invalid descriptor on the walk
  kPermission,   // write to read-only page
};

struct WalkResult {
  bool ok = false;
  Pa pa;                 // output address (valid when ok)
  PagePerms perms;       // effective permissions (valid when ok)
  FaultReason fault = FaultReason::kNone;
  int fault_level = -1;  // level at which the walk failed
  uint64_t fault_addr = 0;

  static WalkResult Success(Pa pa, PagePerms perms) {
    return {.ok = true, .pa = pa, .perms = perms};
  }
  static WalkResult Fault(FaultReason reason, int level, uint64_t addr) {
    WalkResult r;
    r.fault = reason;
    r.fault_level = level;
    r.fault_addr = addr;
    return r;
  }
};

// One translation table tree. Input addresses are plain uint64_t so the same
// class serves Stage-1 (Va input) and Stage-2 (Ipa input); callers wrap with
// the typed helpers below.
class PageTable {
 public:
  // Creates an empty root. alloc provides pages for the table tree; it must
  // outlive the PageTable.
  PageTable(MemIo* mem, PageAllocator* alloc);

  Pa root() const { return root_; }

  // Drops every mapping by starting a fresh root. Old table pages are not
  // returned to the allocator (the simulator's regions are sized for this;
  // real hypervisors free them, which has no bearing on trap behaviour).
  void Reset();

  // Maps one page: input page -> output page with perms. Overwrites any
  // existing mapping for the page.
  void MapPage(uint64_t input_page_addr, Pa output_page, PagePerms perms);

  // Maps a contiguous range (both addresses page-aligned, identity offset).
  void MapRange(uint64_t input_start, Pa output_start, uint64_t size,
                PagePerms perms);

  // Removes a mapping; no-op when not mapped.
  void UnmapPage(uint64_t input_page_addr);

  // Walks the tree. `is_write` checks the write permission.
  WalkResult Walk(uint64_t input_addr, bool is_write) const;

  // Walks an arbitrary table tree given its root, as the MMU does from a
  // TTBR/VTTBR value. Member Walk() delegates here.
  static WalkResult WalkFrom(const MemIo& mem, Pa root, uint64_t input_addr,
                             bool is_write);

  // Number of descriptor loads the last Walk performed (for TLB-miss cycle
  // costing). A complete 4-level walk is 4 loads.
  static constexpr int kWalkLevels = 4;

 private:
  static int LevelShift(int level) { return 12 + 9 * (3 - level); }
  static uint64_t LevelIndex(uint64_t addr, int level) {
    return (addr >> LevelShift(level)) & 0x1FF;
  }

  // Descriptor helpers.
  static bool DescValid(uint64_t d) { return (d & 1) != 0; }
  static Pa DescOutput(uint64_t d) {
    return Pa(d & 0x0000FFFFFFFFF000ull);
  }
  static uint64_t MakeTableDesc(Pa table) { return table.value | 0b11; }
  static uint64_t MakePageDesc(Pa page, PagePerms perms);
  static PagePerms DescPerms(uint64_t d);

  void MapPageLocked(uint64_t input_page_addr, Pa output_page,
                     PagePerms perms) REQUIRES(mu_);
  // Returns the PA of the level-3 descriptor slot for input_addr, allocating
  // intermediate tables when `create` is set; nullopt when absent.
  std::optional<Pa> DescSlot(uint64_t input_addr, bool create) REQUIRES(mu_);

  friend class snap::Serializer;

  MemIo* mem_;            // not-snapshotted: host wiring
  PageAllocator* alloc_;  // not-snapshotted: host wiring
  // Serializes structural mutation (Map/Unmap): SMP-engine lanes running
  // sibling nested vCPUs fix up the *shared* nested Stage-2 table
  // concurrently. Walks and root() stay lock-free, as on real hardware (the
  // MMU walks while another CPU maps): descriptor stores are whole-slot
  // writes, and SMP guests observing each other's in-flight mappings must
  // rendezvous first -- the break-before-make + TLBI contract real SMP
  // kernels follow. Reset() swaps the root and is owner-serialized (VM
  // teardown/restart, never under the engine).
  mutable Mutex mu_{"mem.page_table"};
  Pa root_;  // single-mutator: owner-serialized; snap restore quiesced
};

// Typed wrappers ---------------------------------------------------------------

// Stage-1: VA -> next stage input.
class Stage1Table {
 public:
  Stage1Table(MemIo* mem, PageAllocator* alloc) : table_(mem, alloc) {}
  void MapPage(Va va, Ipa out, PagePerms perms) {
    table_.MapPage(va.value, Pa(out.value), perms);
  }
  void MapRange(Va va, Ipa out, uint64_t size, PagePerms perms) {
    table_.MapRange(va.value, Pa(out.value), size, perms);
  }
  WalkResult Walk(Va va, bool is_write) const {
    return table_.Walk(va.value, is_write);
  }
  Pa root() const { return table_.root(); }

 private:
  friend class snap::Serializer;

  PageTable table_;
};

// Stage-2: IPA -> PA.
class Stage2Table {
 public:
  Stage2Table(MemIo* mem, PageAllocator* alloc) : table_(mem, alloc) {}
  void MapPage(Ipa ipa, Pa pa, PagePerms perms) {
    table_.MapPage(ipa.value, pa, perms);
  }
  void MapRange(Ipa ipa, Pa pa, uint64_t size, PagePerms perms) {
    table_.MapRange(ipa.value, pa, size, perms);
  }
  void UnmapPage(Ipa ipa) { table_.UnmapPage(ipa.value); }
  WalkResult Walk(Ipa ipa, bool is_write) const {
    return table_.Walk(ipa.value, is_write);
  }
  void Reset() { table_.Reset(); }
  Pa root() const { return table_.root(); }

 private:
  friend class snap::Serializer;

  PageTable table_;
};

}  // namespace neve

#endif  // NEVE_SRC_MEM_PAGE_TABLE_H_
