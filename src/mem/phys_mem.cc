#include "src/mem/phys_mem.h"

#include <algorithm>
#include <cstring>

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {

PhysMem::PhysMem(uint64_t size_bytes) : size_(size_bytes) {
  NEVE_CHECK_MSG(IsAligned(size_bytes, kPageSize), "size must be page aligned");
}

void PhysMem::CheckRange(Pa pa, uint64_t bytes) const {
  NEVE_CHECK_MSG(Contains(pa, bytes), "PA out of range: 0x" +
                                          std::to_string(pa.value) + " size " +
                                          std::to_string(size_));
  // Accesses must not straddle a page boundary (hardware would split them;
  // simulator callers always use naturally aligned accesses).
  NEVE_CHECK_MSG(pa.PageOffset() + bytes <= kPageSize, "access crosses page");
}

PhysMem::Page& PhysMem::PageFor(Pa pa) {
  MutexLock lock(pages_mu_);
  auto& slot = pages_[pa.PageIndex()];
  if (slot == nullptr) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

const PhysMem::Page* PhysMem::PageForRead(Pa pa) const {
  MutexLock lock(pages_mu_);
  auto it = pages_.find(pa.PageIndex());
  return it == pages_.end() ? nullptr : it->second.get();
}

void PhysMem::MarkDirty(uint64_t page_index) {
  MutexLock lock(pages_mu_);
  dirty_.insert(page_index);
}

std::vector<uint64_t> PhysMem::ResidentPageIndices() const {
  std::vector<uint64_t> out;
  {
    MutexLock lock(pages_mu_);
    out.reserve(pages_.size());
    for (const auto& [index, page] : pages_) {
      out.push_back(index);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PhysMem::ReadPage(uint64_t page_index,
                       std::array<uint8_t, kPageSize>* out) const {
  CheckRange(Pa(page_index << kPageShift), kPageSize);
  MutexLock lock(pages_mu_);
  auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    return false;
  }
  *out = *it->second;
  return true;
}

void PhysMem::WritePage(uint64_t page_index, const uint8_t* data) {
  Pa base(page_index << kPageShift);
  CheckRange(base, kPageSize);
  Page& page = PageFor(base);
  std::memcpy(page.data(), data, kPageSize);
  if (dirty_enabled_) {
    MarkDirty(page_index);
  }
}

void PhysMem::DropPage(uint64_t page_index) {
  CheckRange(Pa(page_index << kPageShift), kPageSize);
  MutexLock lock(pages_mu_);
  pages_.erase(page_index);
  if (dirty_enabled_) {
    dirty_.insert(page_index);
  }
}

void PhysMem::SetDirtyTracking(bool on) {
  MutexLock lock(pages_mu_);
  dirty_enabled_ = on;
  dirty_.clear();
}

std::vector<uint64_t> PhysMem::DrainDirtyPages() {
  MutexLock lock(pages_mu_);
  std::vector<uint64_t> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  return out;
}

uint64_t PhysMem::Read64(Pa pa) const {
  CheckRange(pa, 8);
  const Page* page = PageForRead(pa);
  if (page == nullptr) {
    return 0;
  }
  uint64_t v = 0;
  std::memcpy(&v, page->data() + pa.PageOffset(), 8);
  return v;
}

void PhysMem::Write64(Pa pa, uint64_t value) {
  CheckRange(pa, 8);
  std::memcpy(PageFor(pa).data() + pa.PageOffset(), &value, 8);
  if (dirty_enabled_) {
    MarkDirty(pa.PageIndex());
  }
}

uint32_t PhysMem::Read32(Pa pa) const {
  CheckRange(pa, 4);
  const Page* page = PageForRead(pa);
  if (page == nullptr) {
    return 0;
  }
  uint32_t v = 0;
  std::memcpy(&v, page->data() + pa.PageOffset(), 4);
  return v;
}

void PhysMem::Write32(Pa pa, uint32_t value) {
  CheckRange(pa, 4);
  std::memcpy(PageFor(pa).data() + pa.PageOffset(), &value, 4);
  if (dirty_enabled_) {
    MarkDirty(pa.PageIndex());
  }
}

uint8_t PhysMem::Read8(Pa pa) const {
  CheckRange(pa, 1);
  const Page* page = PageForRead(pa);
  return page == nullptr ? 0 : (*page)[pa.PageOffset()];
}

void PhysMem::Write8(Pa pa, uint8_t value) {
  CheckRange(pa, 1);
  PageFor(pa)[pa.PageOffset()] = value;
  if (dirty_enabled_) {
    MarkDirty(pa.PageIndex());
  }
}

void PhysMem::ZeroPage(Pa page_base) {
  NEVE_CHECK(IsAligned(page_base.value, kPageSize));
  CheckRange(page_base, kPageSize);
  PageFor(page_base).fill(0);
  if (dirty_enabled_) {
    MarkDirty(page_base.PageIndex());
  }
}

PageAllocator::PageAllocator(MemIo* mem, Pa start, uint64_t size)
    : mem_(mem), start_(start), next_(start.value), end_(start.value + size) {
  NEVE_CHECK(mem != nullptr);
  NEVE_CHECK(IsAligned(start.value, kPageSize));
  NEVE_CHECK(IsAligned(size, kPageSize));
  NEVE_CHECK_MSG(mem->Contains(start, size), "allocator region outside mem");
}

Pa PageAllocator::AllocPage() {
  Pa page(0);
  {
    MutexLock lock(mu_);
    NEVE_CHECK_MSG(next_ < end_, "page allocator exhausted");
    page = Pa(next_);
    next_ += kPageSize;
  }
  // Zero outside the lock: the page is ours, and ZeroPage takes the
  // phys-pages lock ("mem.page_alloc" before "mem.phys_pages" would
  // otherwise become an acquisition-graph edge for no reason).
  mem_->ZeroPage(page);
  return page;
}

}  // namespace neve
