// Sparse physical memory backing the simulated machine.
//
// Pages materialize on first touch; the simulator never cares about the
// host's memory layout, only that every PA within the configured size reads
// back what was last written. A bump allocator hands out fresh pages for
// page tables, deferred access pages, and guest RAM carve-outs.

#ifndef NEVE_SRC_MEM_PHYS_MEM_H_
#define NEVE_SRC_MEM_PHYS_MEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/mem/addr.h"
#include "src/mem/mem_io.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes the resident page set
}  // namespace snap

class PhysMem : public MemIo {
 public:
  // size must be page aligned.
  explicit PhysMem(uint64_t size_bytes);

  uint64_t size() const { return size_; }
  bool Contains(Pa pa, uint64_t bytes) const override {
    return pa.value + bytes <= size_ && pa.value + bytes >= pa.value;
  }

  uint64_t Read64(Pa pa) const override;
  void Write64(Pa pa, uint64_t value) override;
  uint32_t Read32(Pa pa) const;
  void Write32(Pa pa, uint32_t value);
  uint8_t Read8(Pa pa) const;
  void Write8(Pa pa, uint8_t value);

  // Zeroes an entire page.
  void ZeroPage(Pa page_base) override;

  // Number of pages actually materialized (for tests / stats).
  size_t ResidentPages() const {
    MutexLock lock(pages_mu_);
    return pages_.size();
  }

  // --- host-side page access (checkpoint / restore / migration) -----------
  // None of these charge cycles or appear to the guest; they are the tools
  // the snap layer and HostKvm::CheckpointVm use to move whole pages.

  // Sorted indices of every materialized page.
  std::vector<uint64_t> ResidentPageIndices() const;

  // Copies one page out; false (and *out untouched) when not resident.
  bool ReadPage(uint64_t page_index, std::array<uint8_t, kPageSize>* out) const;

  // Materializes and overwrites one page (counts as a dirtying write).
  void WritePage(uint64_t page_index, const uint8_t* data);

  // Returns the page to implicit-zero (not resident) state.
  void DropPage(uint64_t page_index);

  // --- dirty-page tracking (migration pre-copy) ---------------------------
  // While enabled, every write records its page index. Pure host
  // bookkeeping: no cycles, no guest-visible effect. Toggled only from
  // single-threaded migration drivers, never while SMP lanes run.
  void SetDirtyTracking(bool on);
  bool dirty_tracking() const { return dirty_enabled_; }

  // Sorted indices dirtied since the last drain; clears the set.
  std::vector<uint64_t> DrainDirtyPages();

 private:
  friend class snap::Serializer;

  using Page = std::array<uint8_t, kPageSize>;

  Page& PageFor(Pa pa);
  const Page* PageForRead(Pa pa) const;
  void CheckRange(Pa pa, uint64_t bytes) const;
  void MarkDirty(uint64_t page_index);

  uint64_t size_;  // not-snapshotted: fixed by MachineConfig, verified on apply
  // Guards the *map structure* only: SMP-engine lanes materialize pages
  // concurrently, and an unordered_map rehash races with every lookup. Page
  // payloads need no lock -- a byte is only shared across lanes through the
  // engine's deferred-merge rule, never accessed concurrently. Page storage
  // is a stable unique_ptr target, so pointers obtained under the lock stay
  // valid outside it.
  mutable Mutex pages_mu_{"mem.phys_pages"};
  mutable std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_
      GUARDED_BY(pages_mu_);
  // Dirty tracking. The enable flag is read without the lock on the write
  // fast path; it only ever changes while the machine is single-threaded
  // (migration drivers toggle it between guest steps).
  bool dirty_enabled_ = false;  // not-snapshotted: migration-driver toggle
  std::set<uint64_t> dirty_ GUARDED_BY(pages_mu_);  // not-snapshotted: ditto
};

// Hands out fresh page-aligned physical pages from a region of PhysMem.
class PageAllocator {
 public:
  // Allocates from [start, start+size) within mem. Region must be page
  // aligned and inside mem.
  PageAllocator(MemIo* mem, Pa start, uint64_t size);

  // Returns a zeroed page. Aborts if the region is exhausted (the simulator
  // sizes regions generously; exhaustion is a configuration bug).
  Pa AllocPage();

  uint64_t PagesAllocated() const {
    MutexLock lock(mu_);
    return (next_ - start_.value) >> kPageShift;
  }
  uint64_t PagesRemaining() const {
    MutexLock lock(mu_);
    return (end_ - next_) >> kPageShift;
  }

 private:
  friend class snap::Serializer;

  MemIo* mem_;  // not-snapshotted: host wiring
  Pa start_;    // not-snapshotted: fixed region geometry, verified on apply
  // Guards the bump pointer: SMP-engine lanes allocate page-table pages
  // concurrently (shadow fixups). NOTE: this makes the *addresses* handed
  // out dependent on lane interleaving -- byte-identity digests must avoid
  // mixing in Pa values (DESIGN.md 6j); page *contents* stay deterministic.
  mutable Mutex mu_{"mem.page_alloc"};
  uint64_t next_ GUARDED_BY(mu_);
  uint64_t end_;  // not-snapshotted: fixed region geometry, verified on apply
};

}  // namespace neve

#endif  // NEVE_SRC_MEM_PHYS_MEM_H_
