// Sparse physical memory backing the simulated machine.
//
// Pages materialize on first touch; the simulator never cares about the
// host's memory layout, only that every PA within the configured size reads
// back what was last written. A bump allocator hands out fresh pages for
// page tables, deferred access pages, and guest RAM carve-outs.

#ifndef NEVE_SRC_MEM_PHYS_MEM_H_
#define NEVE_SRC_MEM_PHYS_MEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/mem/addr.h"
#include "src/mem/mem_io.h"

namespace neve {

class PhysMem : public MemIo {
 public:
  // size must be page aligned.
  explicit PhysMem(uint64_t size_bytes);

  uint64_t size() const { return size_; }
  bool Contains(Pa pa, uint64_t bytes) const override {
    return pa.value + bytes <= size_ && pa.value + bytes >= pa.value;
  }

  uint64_t Read64(Pa pa) const override;
  void Write64(Pa pa, uint64_t value) override;
  uint32_t Read32(Pa pa) const;
  void Write32(Pa pa, uint32_t value);
  uint8_t Read8(Pa pa) const;
  void Write8(Pa pa, uint8_t value);

  // Zeroes an entire page.
  void ZeroPage(Pa page_base) override;

  // Number of pages actually materialized (for tests / stats).
  size_t ResidentPages() const { return pages_.size(); }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  Page& PageFor(Pa pa);
  const Page* PageForRead(Pa pa) const;
  void CheckRange(Pa pa, uint64_t bytes) const;

  uint64_t size_;
  mutable std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

// Hands out fresh page-aligned physical pages from a region of PhysMem.
class PageAllocator {
 public:
  // Allocates from [start, start+size) within mem. Region must be page
  // aligned and inside mem.
  PageAllocator(MemIo* mem, Pa start, uint64_t size);

  // Returns a zeroed page. Aborts if the region is exhausted (the simulator
  // sizes regions generously; exhaustion is a configuration bug).
  Pa AllocPage();

  uint64_t PagesAllocated() const { return (next_ - start_.value) >> kPageShift; }
  uint64_t PagesRemaining() const { return (end_ - next_) >> kPageShift; }

 private:
  MemIo* mem_;
  Pa start_;
  uint64_t next_;
  uint64_t end_;
};

}  // namespace neve

#endif  // NEVE_SRC_MEM_PHYS_MEM_H_
