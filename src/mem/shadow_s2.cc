#include "src/mem/shadow_s2.h"

#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/fault/guest_fault.h"

namespace neve {

Pa GuestPhysView::Translate(Pa ipa_as_pa, bool is_write) const {
  WalkResult walk = host_s2_->Walk(Ipa(ipa_as_pa.value), is_write);
  // A guest hypervisor controls the guest-physical addresses walked through
  // this view (its table roots, its virtual Stage-2 contents), so an
  // unmapped IPA here is guest-attributable: confine it to the VM.
  NEVE_GUEST_CHECK(walk.ok, "bad_guest_mapping",
                   "GuestPhysView: IPA not mapped in the VM's Stage-2");
  return walk.pa;
}

uint64_t GuestPhysView::Read64(Pa ipa_as_pa) const {
  return parent_->Read64(Translate(ipa_as_pa, /*is_write=*/false));
}

void GuestPhysView::Write64(Pa ipa_as_pa, uint64_t value) {
  parent_->Write64(Translate(ipa_as_pa, /*is_write=*/true), value);
}

void GuestPhysView::ZeroPage(Pa page_base) {
  parent_->ZeroPage(Translate(page_base, /*is_write=*/true));
}

bool GuestPhysView::Contains(Pa ipa_as_pa, uint64_t bytes) const {
  // Bounded by the Stage-2 mapping itself; delegate the final check to the
  // machine memory after translation on access. Straddle checks still apply.
  (void)ipa_as_pa;
  (void)bytes;
  return true;
}

ShadowS2::ShadowS2(MemIo* mem, PageAllocator* alloc) : table_(mem, alloc) {}

ShadowS2::FixupResult ShadowS2::HandleFault(Ipa l2_ipa, bool is_write,
                                            const Stage2Table& virtual_s2,
                                            const Stage2Table& host_s2) {
  // The table object's own memory view and root are authoritative here.
  WalkResult virt = virtual_s2.Walk(l2_ipa, is_write);
  return FinishFault(l2_ipa, virt, is_write, host_s2);
}

ShadowS2::FixupResult ShadowS2::HandleFault(Ipa l2_ipa, bool is_write,
                                            const MemIo& guest_view,
                                            Pa virtual_s2_root,
                                            const Stage2Table& host_s2) {
  WalkResult virt =
      PageTable::WalkFrom(guest_view, virtual_s2_root, l2_ipa.value, is_write);
  return FinishFault(l2_ipa, virt, is_write, host_s2);
}

ShadowS2::FixupResult ShadowS2::FinishFault(Ipa l2_ipa, const WalkResult& virt,
                                            bool is_write,
                                            const Stage2Table& host_s2) {
  // Injected stale shadow: drop the whole shadow tree before this fixup, as
  // if a lost TLBI left it out of sync. The current fault still installs its
  // page (below), but every other previously-shadowed page refaults -- extra
  // exit-multiplication pressure with unchanged final state.
  if (FaultActive(fault_) &&
      fault_->ShouldInject(FaultPoint::kShadowS2TranslationFault, /*cpu=*/-1,
                           faults_handled_, l2_ipa.value)) {
    table_.Reset();
  }
  if (!virt.ok) {
    ++virtual_faults_;
    return FixupResult::kVirtualFault;
  }
  // Step 2: L1 IPA -> L0 PA through the host's tables.
  Ipa l1_ipa(virt.pa.value);
  WalkResult host = host_s2.Walk(l1_ipa, is_write);
  if (!host.ok) {
    ++host_faults_;
    return FixupResult::kHostFault;
  }
  // Step 3: install the collapsed mapping with intersected permissions.
  PagePerms perms{.write = virt.perms.write && host.perms.write,
                  .user = virt.perms.user};
  table_.MapPage(Ipa(l2_ipa.PageBase().value), host.pa.PageBase(), perms);
  ++faults_handled_;
  ++installed_;
  return FixupResult::kInstalled;
}

}  // namespace neve
