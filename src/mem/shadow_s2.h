// Shadow Stage-2 page tables for nested memory virtualization (paper
// section 4).
//
// ARM hardware performs at most two translation stages, but a nested VM needs
// three: L2 VA -> L2 IPA (guest OS Stage-1), L2 IPA -> L1 IPA (guest
// hypervisor's virtual Stage-2) and L1 IPA -> L0 PA (host Stage-2). The host
// hypervisor collapses the last two into a *shadow* Stage-2 table
// (L2 IPA -> L0 PA) which is what the hardware actually uses while the
// nested VM runs. Shadow entries are built lazily on Stage-2 faults.

#ifndef NEVE_SRC_MEM_SHADOW_S2_H_
#define NEVE_SRC_MEM_SHADOW_S2_H_

#include <cstdint>

#include "src/mem/mem_io.h"
#include "src/mem/page_table.h"
#include "src/mem/phys_mem.h"

namespace neve {

class FaultInjector;

namespace snap {
class Serializer;  // src/snap: serializes shadow roots and fixup counters
}  // namespace snap

// Memory view in a VM's IPA space: every access is translated through the
// VM's (host-maintained) Stage-2 table before touching the parent address
// space. The guest hypervisor's own page tables are built over this view,
// exactly as a guest hypervisor's table walks land in guest-physical memory
// on hardware. Views compose: an L2 guest-physical view stacks a GuestPhysView
// on top of the L1 view, giving the L3-capable recursion of section 6.2.
class GuestPhysView : public MemIo {
 public:
  GuestPhysView(MemIo* parent, const Stage2Table* host_s2)
      : parent_(parent), host_s2_(host_s2) {}

  uint64_t Read64(Pa ipa_as_pa) const override;
  void Write64(Pa ipa_as_pa, uint64_t value) override;
  void ZeroPage(Pa page_base) override;
  bool Contains(Pa ipa_as_pa, uint64_t bytes) const override;

 private:
  Pa Translate(Pa ipa_as_pa, bool is_write) const;

  MemIo* parent_;              // not-snapshotted: host wiring
  const Stage2Table* host_s2_; // not-snapshotted: host wiring
};

// The host hypervisor's shadow table for one nested VM.
class ShadowS2 {
 public:
  enum class FixupResult {
    kInstalled,     // mapping created; the faulting access can be replayed
    kVirtualFault,  // guest hypervisor's own Stage-2 lacks a mapping: the
                    // fault must be forwarded to the guest hypervisor
    kHostFault,     // host Stage-2 lacks a mapping (host bug or MMIO region)
  };

  // Table pages come from `alloc`; `mem` is the address space the shadow
  // tree lives in (machine memory for the host hypervisor, a guest-physical
  // view for a guest hypervisor shadowing its own guest's tables).
  ShadowS2(MemIo* mem, PageAllocator* alloc);

  // Collapses the guest hypervisor's virtual Stage-2 (L2 IPA -> L1 IPA,
  // rooted at `virtual_s2_root` in guest-physical space and walked through
  // `guest_view`) with host_s2 (L1 IPA -> L0 PA) for the faulting page and
  // installs the combined mapping. Effective permissions are the
  // intersection.
  FixupResult HandleFault(Ipa l2_ipa, bool is_write, const MemIo& guest_view,
                          Pa virtual_s2_root, const Stage2Table& host_s2);

  // Convenience overload for tests holding a Stage2Table object.
  FixupResult HandleFault(Ipa l2_ipa, bool is_write,
                          const Stage2Table& virtual_s2,
                          const Stage2Table& host_s2);

  // The guest hypervisor changed its virtual Stage-2 (vTTBR write / TLBI):
  // all shadow entries are stale. Under SMP the flush is broadcast to every
  // vCPU's shadow of the same virtual Stage-2 (mem::FlushShadows).
  void Flush() {
    table_.Reset();
    ++flushes_;
  }

  // Machine-wide fault injector; when armed, HandleFault may be hit with an
  // injected stale-shadow drop (the whole shadow tree is discarded before
  // the fixup, forcing later refaults). May stay null.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  const Stage2Table& table() const { return table_; }
  Stage2Table& table() { return table_; }

  uint64_t faults_handled() const { return faults_handled_; }

  // Times this shadow tree was discarded wholesale (vTTBR switch or TLBI
  // shootdown); every flush forces refaults for the mappings still in use.
  uint64_t flushes() const { return flushes_; }

  // Per-outcome fault counts (faults_handled() counts only installs). Used
  // by the attribution report to split shadow-fixup cycles between real
  // installs and forwarded virtual faults.
  uint64_t installed() const { return installed_; }
  uint64_t virtual_faults() const { return virtual_faults_; }
  uint64_t host_faults() const { return host_faults_; }

 private:
  friend class snap::Serializer;

  FixupResult FinishFault(Ipa l2_ipa, const WalkResult& virt, bool is_write,
                          const Stage2Table& host_s2);

  Stage2Table table_;
  uint64_t faults_handled_ = 0;
  uint64_t flushes_ = 0;
  uint64_t installed_ = 0;
  uint64_t virtual_faults_ = 0;
  uint64_t host_faults_ = 0;
  FaultInjector* fault_ = nullptr;  // not-snapshotted: host wiring
};

}  // namespace neve

#endif  // NEVE_SRC_MEM_SHADOW_S2_H_
