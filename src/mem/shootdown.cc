#include "src/mem/shootdown.h"

namespace neve::mem {

int FlushShadows(const std::vector<ShadowS2*>& shadows) {
  int flushed = 0;
  for (ShadowS2* shadow : shadows) {
    if (shadow == nullptr) {
      continue;
    }
    shadow->Flush();
    ++flushed;
  }
  return flushed;
}

}  // namespace neve::mem
