// Shadow Stage-2 invalidation broadcast (TLB shootdown, memory side).
//
// A guest hypervisor that changes its virtual Stage-2 tables follows the
// architectural recipe: update the tables, then TLBI. On hardware the TLBI
// broadcasts to every PE in the inner-shareable domain; in the nested stack
// the host additionally holds *shadow* Stage-2 trees (one per vCPU per
// virtual VTTBR, see vm.h) whose entries collapse the now-stale virtual
// Stage-2 -- those must be discarded on every vCPU, not just the one that
// executed the TLBI.
//
// The hypervisor layer decides *which* shadows a trapped TLBI covers (it
// owns the vCPU/Vm topology; src/mem deliberately knows nothing about it)
// and hands the flat list here. Sibling-CPU hardware-TLB drops and the
// cross-thread deferral under the SMP engine are likewise the hypervisor's
// job: this helper only performs the memory-side invalidation.

#ifndef NEVE_SRC_MEM_SHOOTDOWN_H_
#define NEVE_SRC_MEM_SHOOTDOWN_H_

#include <vector>

#include "src/mem/shadow_s2.h"

namespace neve::mem {

// Flushes every shadow tree in `shadows` (null entries are skipped) and
// returns how many were flushed. Each flush bumps the shadow's flushes()
// counter so tests and the attribution report can see broadcast fan-out.
int FlushShadows(const std::vector<ShadowS2*>& shadows);

}  // namespace neve::mem

#endif  // NEVE_SRC_MEM_SHOOTDOWN_H_
