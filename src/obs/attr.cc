#include "src/obs/attr.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "src/base/status.h"
#include "src/obs/report.h"

namespace neve {

namespace {

constexpr const char* kLayerNames[kNumAttrLayers] = {"L0", "L1", "L2"};

constexpr const char* kCatNames[kNumAttrCats] = {
    "host_other",    "guest_compute", "trap_hvc",       "trap_sysreg",
    "trap_eret",     "trap_dabt",     "trap_irq",       "trap_wfx",
    "trap_other",    "ws_enter",      "ws_exit",        "sysreg_emul",
    "timer_emul",    "gic_emul",      "shadow_s2_fixup", "vel2_deliver",
    "mmio_emul",     "vncr_redirect", "idle_wait",
};

int UnpackVm(uint64_t key) {
  return static_cast<int16_t>(static_cast<uint16_t>(key >> 32));
}
int UnpackVcpu(uint64_t key) {
  return static_cast<int16_t>(static_cast<uint16_t>(key >> 16));
}
AttrLayer UnpackLayer(uint64_t key) {
  return static_cast<AttrLayer>(static_cast<uint8_t>(key >> 8));
}
AttrCat UnpackCat(uint64_t key) {
  return static_cast<AttrCat>(static_cast<uint8_t>(key));
}

AttrBucket Unpack(uint64_t key, uint64_t cycles) {
  return AttrBucket{.vm = UnpackVm(key),
                    .vcpu = UnpackVcpu(key),
                    .layer = UnpackLayer(key),
                    .cat = UnpackCat(key),
                    .cycles = cycles};
}

bool BucketOrder(const AttrBucket& a, const AttrBucket& b) {
  if (a.vm != b.vm) {
    return a.vm < b.vm;
  }
  if (a.vcpu != b.vcpu) {
    return a.vcpu < b.vcpu;
  }
  if (a.layer != b.layer) {
    return a.layer < b.layer;
  }
  return a.cat < b.cat;
}

std::string ContextName(int vm, int vcpu) {
  if (vm < 0) {
    return "host";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "vm%d/vcpu%d", vm, vcpu);
  return buf;
}

}  // namespace

const char* AttrLayerName(AttrLayer layer) {
  return kLayerNames[static_cast<size_t>(layer)];
}

const char* AttrCatName(AttrCat cat) {
  return kCatNames[static_cast<size_t>(cat)];
}

bool AttrLayerFromName(const std::string& name, AttrLayer* out) {
  for (int i = 0; i < kNumAttrLayers; ++i) {
    if (name == kLayerNames[i]) {
      *out = static_cast<AttrLayer>(i);
      return true;
    }
  }
  return false;
}

bool AttrCatFromName(const std::string& name, AttrCat* out) {
  for (int i = 0; i < kNumAttrCats; ++i) {
    if (name == kCatNames[i]) {
      *out = static_cast<AttrCat>(i);
      return true;
    }
  }
  return false;
}

AttrBucket UnpackAttrKey(uint64_t key) { return Unpack(key, 0); }

std::string AttrBucket::StackName() const {
  std::string s = ContextName(vm, vcpu);
  s += ';';
  s += AttrLayerName(layer);
  s += ';';
  s += AttrCatName(cat);
  return s;
}

void CycleAttribution::AttachCpu(int cpu) {
  // host-invariant: CPU indices come from machine construction.
  NEVE_CHECK(cpu >= 0);
  if (static_cast<size_t>(cpu) >= percpu_.size()) {
    percpu_.resize(static_cast<size_t>(cpu) + 1);
  }
  PerCpu& pc = percpu_[static_cast<size_t>(cpu)];
  // host-invariant: a CPU attaches exactly once.
  NEVE_CHECK(pc.stack.empty());
  uint64_t root = PackAttrKey(-1, -1, AttrLayer::kL0, AttrCat::kHostOther);
  pc.stack.push_back(root);
  pc.bucket = BucketFor(cpu, root);
}

void CycleAttribution::Push(int cpu, int vm, int vcpu, AttrLayer layer,
                            AttrCat cat) {
  PerCpu& pc = percpu_[static_cast<size_t>(cpu)];
  uint64_t key = PackAttrKey(vm, vcpu, layer, cat);
  pc.stack.push_back(key);
  pc.bucket = BucketFor(cpu, key);
}

void CycleAttribution::PushInherit(int cpu, AttrCat cat) {
  PerCpu& pc = percpu_[static_cast<size_t>(cpu)];
  uint64_t key = ReplaceAttrCat(pc.stack.back(), cat);
  pc.stack.push_back(key);
  pc.bucket = BucketFor(cpu, key);
}

void CycleAttribution::PushInheritLayer(int cpu, AttrLayer layer,
                                        AttrCat cat) {
  PerCpu& pc = percpu_[static_cast<size_t>(cpu)];
  uint64_t top = pc.stack.back();
  uint64_t key = PackAttrKey(UnpackVm(top), UnpackVcpu(top), layer, cat);
  pc.stack.push_back(key);
  pc.bucket = BucketFor(cpu, key);
}

void CycleAttribution::Pop(int cpu) {
  PerCpu& pc = percpu_[static_cast<size_t>(cpu)];
  // host-invariant: scopes are RAII-balanced; the root frame never pops.
  NEVE_CHECK(pc.stack.size() > 1);
  pc.stack.pop_back();
  pc.bucket = BucketFor(cpu, pc.stack.back());
}

void CycleAttribution::RecordFlight(const std::string& reason) {
  FlightRecord rec{.reason = reason,
                   .cycles = TotalCycles(),
                   .buckets = Snapshot()};
  MutexLock lock(flights_mu_);
  if (flights_.size() < kFlightCapacity) {
    flights_.push_back(std::move(rec));
  } else {
    flights_[flight_next_] = std::move(rec);
  }
  flight_next_ = (flight_next_ + 1) % kFlightCapacity;
}

std::vector<AttrBucket> CycleAttribution::Snapshot() const {
  // Merge-sum the per-CPU shards: the same (vm, vcpu, layer, cat) key exists
  // in every shard whose CPU charged it (every CPU has its own root-frame
  // slot, for one).
  std::map<uint64_t, uint64_t> merged;
  for (const PerCpu& pc : percpu_) {
    for (const auto& [key, cycles] : pc.buckets) {
      merged[key] += cycles;
    }
  }
  std::vector<AttrBucket> out;
  out.reserve(merged.size());
  for (const auto& [key, cycles] : merged) {
    if (cycles != 0) {
      out.push_back(Unpack(key, cycles));
    }
  }
  std::sort(out.begin(), out.end(), BucketOrder);
  return out;
}

uint64_t CycleAttribution::TotalCycles() const {
  uint64_t total = 0;
  for (const PerCpu& pc : percpu_) {
    for (const auto& [key, cycles] : pc.buckets) {
      total += cycles;
    }
  }
  return total;
}

void CycleAttribution::SortBuckets(std::vector<AttrBucket>* rows) {
  std::sort(rows->begin(), rows->end(), BucketOrder);
}

std::string CycleAttribution::RenderTextTree(
    const std::vector<AttrBucket>& rows) {
  uint64_t total = 0;
  for (const AttrBucket& b : rows) {
    total += b.cycles;
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "total %" PRIu64 " cycles\n", total);
  out += line;
  // Group rows by (vm, vcpu) then by layer; rows arrive sorted that way.
  size_t i = 0;
  while (i < rows.size()) {
    int vm = rows[i].vm;
    int vcpu = rows[i].vcpu;
    uint64_t ctx_total = 0;
    size_t j = i;
    for (; j < rows.size() && rows[j].vm == vm && rows[j].vcpu == vcpu; ++j) {
      ctx_total += rows[j].cycles;
    }
    std::snprintf(line, sizeof(line), "%s  %" PRIu64 "  (%.1f%%)\n",
                  ContextName(vm, vcpu).c_str(), ctx_total,
                  total == 0 ? 0.0 : 100.0 * ctx_total / total);
    out += line;
    size_t k = i;
    while (k < j) {
      AttrLayer layer = rows[k].layer;
      uint64_t layer_total = 0;
      size_t m = k;
      for (; m < j && rows[m].layer == layer; ++m) {
        layer_total += rows[m].cycles;
      }
      std::snprintf(line, sizeof(line), "  %s  %" PRIu64 "  (%.1f%%)\n",
                    AttrLayerName(layer), layer_total,
                    total == 0 ? 0.0 : 100.0 * layer_total / total);
      out += line;
      for (; k < m; ++k) {
        std::snprintf(line, sizeof(line), "    %-16s %12" PRIu64 "  (%.1f%%)\n",
                      AttrCatName(rows[k].cat), rows[k].cycles,
                      total == 0 ? 0.0 : 100.0 * rows[k].cycles / total);
        out += line;
      }
    }
    i = j;
  }
  return out;
}

std::string CycleAttribution::RenderCollapsed(
    const std::vector<AttrBucket>& rows) {
  std::string out;
  char line[160];
  for (const AttrBucket& b : rows) {
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n",
                  b.StackName().c_str(), b.cycles);
    out += line;
  }
  return out;
}

void CycleAttribution::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("total");
  w.Number(TotalCycles());
  w.Key("buckets");
  w.BeginArray();
  for (const AttrBucket& b : Snapshot()) {
    w.BeginObject();
    w.Key("vm");
    w.Number(static_cast<int64_t>(b.vm));
    w.Key("vcpu");
    w.Number(static_cast<int64_t>(b.vcpu));
    w.Key("layer");
    w.String(AttrLayerName(b.layer));
    w.Key("cat");
    w.String(AttrCatName(b.cat));
    w.Key("cycles");
    w.Number(b.cycles);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace neve
