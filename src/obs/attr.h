// Cross-layer cycle attribution: where do the cycles go?
//
// The paper's core measurements (Tables 6-7) are cost *breakdowns*: cycles
// split by virtualization layer and by cause (trap kind, world-switch phase,
// sysreg emulation, shadow Stage-2 fixups, GIC, VNCR redirects, guest
// compute). The flat obs counters cannot answer those questions, so every
// Machine owns a CycleAttribution: an always-on accounting layer that maps
// every cycle charged on every simulated CPU into exactly one bucket keyed by
// (vm, vcpu, layer, category).
//
// Mechanism: each CPU carries a stack of attribution *frames*. A frame is a
// packed (vm, vcpu, layer, category) key plus a pointer to that key's bucket.
// Layers push frames around meaningful regions (a trap episode, a world
// switch phase, guest execution) via the AttrScope RAII helper; Cpu::Charge
// adds to the top frame's bucket with a single pointer-chase -- no map lookup
// on the hot path. Scopes are exception-safe: a GuestFaultException unwinding
// through nested guest frames pops every frame it crossed.
//
// Conservation contract: the sum over all buckets equals the sum of the
// machine's CPU cycle counters at all times (attr_test.cc asserts this on
// every stack configuration). Two rules make that hold:
//   1. every cycle mutation goes through Cpu::Charge / Cpu::AdvanceTo, both
//      of which attribute, and
//   2. Pop never discards a frame's charges -- charges land in buckets, not
//      in frames.
//
// Overhead contract: with no CycleAttribution attached (attr_ == nullptr in
// Cpu) the cost is one predicted-not-taken branch per Charge; with one
// attached it is one add through a cached pointer. bench/simcore_gbench.cc's
// BM_Vel2SysRegBurstAttr vs BM_Vel2SysRegBurst pair and the ctest overhead
// guard keep the attached path within 3%.
//
// Thread safety: the bucket store is sharded per CPU, so concurrent lanes of
// the SMP engine (one lane per CPU, see sim/smp.h) charge without sharing a
// single map -- notably the root (host) frame, which every CPU used to alias
// to one bucket slot. The read side (Snapshot/TotalCycles) merge-sums the
// shards; it runs only when no lane is executing. The flight-recorder ring
// is the one cross-CPU mutation and takes "obs.attr_flights".

#ifndef NEVE_SRC_OBS_ATTR_H_
#define NEVE_SRC_OBS_ATTR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace neve {

class JsonWriter;

namespace snap {
class Serializer;  // src/snap: serializes bucket shards and flight records
}  // namespace snap

// Which virtualization layer the cycles belong to. L0 is the host hypervisor
// (and the host's own runtime), L1 a VM (or the guest hypervisor inside it),
// L2 a nested VM.
enum class AttrLayer : uint8_t { kL0 = 0, kL1, kL2 };
inline constexpr int kNumAttrLayers = 3;

// Why the cycles were spent. Trap categories cover the architectural trap
// entry/return and the host's exit dispatch; the emulation categories refine
// what the handler did; kGuestCompute is time the guest itself runs;
// kIdleWait is cross-CPU rendezvous (AdvanceTo) -- cycles a CPU's clock
// skipped forward while logically idle.
enum class AttrCat : uint8_t {
  kHostOther = 0,   // host run loop, vcpu load/put, uncategorized host work
  kGuestCompute,    // the guest's own instructions
  kTrapHvc,         // hypercall trap episodes
  kTrapSysReg,      // sysreg trap episodes
  kTrapEret,        // trapped ERET episodes (v8.3-NV nested entry/exit)
  kTrapDataAbort,   // Stage-2 data abort episodes
  kTrapIrq,         // physical IRQ trap episodes + host IRQ triage
  kTrapWfx,         // WFI/WFE trap episodes
  kTrapOther,       // any other trap class
  kWorldSwitchEnter,  // host->guest world-switch phase
  kWorldSwitchExit,   // guest->host world-switch phase
  kSysRegEmul,      // sysreg emulation work inside a handler
  kTimerEmul,       // timer (and EL0/2 timer) emulation
  kGicEmul,         // GIC distributor/redistributor/vCPU-interface emulation
  kShadowS2Fixup,   // shadow Stage-2 walk + install
  kVel2Deliver,     // synthesizing an exception into virtual EL2
  kMmioEmul,        // device MMIO dispatch + device model work
  kVncrRedirect,    // NEVE deferred-sysreg memory redirects
  kIdleWait,        // AdvanceTo rendezvous: clock catch-up while idle
};
inline constexpr int kNumAttrCats = 19;

const char* AttrLayerName(AttrLayer layer);
const char* AttrCatName(AttrCat cat);
// Reverse lookups for tools/obsreport's JSON reader; return false on unknown
// names.
bool AttrLayerFromName(const std::string& name, AttrLayer* out);
bool AttrCatFromName(const std::string& name, AttrCat* out);

// Packed bucket key. vm/vcpu are sign-extended 16-bit fields so the host's
// root context (vm = vcpu = -1) packs cleanly.
inline constexpr uint64_t PackAttrKey(int vm, int vcpu, AttrLayer layer,
                                      AttrCat cat) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(vm)) << 32) |
         (static_cast<uint64_t>(static_cast<uint16_t>(vcpu)) << 16) |
         (static_cast<uint64_t>(static_cast<uint8_t>(layer)) << 8) |
         static_cast<uint64_t>(static_cast<uint8_t>(cat));
}

inline constexpr uint64_t ReplaceAttrCat(uint64_t key, AttrCat cat) {
  return (key & ~UINT64_C(0xFF)) | static_cast<uint64_t>(cat);
}

// Sentinel for "no attribution context" (e.g. a fault injected on a CPU with
// no attribution attached). Distinct from every packable key: the layer byte
// is out of range.
inline constexpr uint64_t kNoAttrKey = ~UINT64_C(0);

// One row of a Snapshot(): an unpacked bucket key plus its cycle total.
struct AttrBucket {
  int vm = -1;     // -1: host root context (no VM)
  int vcpu = -1;   // -1: no vcpu loaded
  AttrLayer layer = AttrLayer::kL0;
  AttrCat cat = AttrCat::kHostOther;
  uint64_t cycles = 0;

  // "vm0/vcpu1;L2;trap_sysreg" -- the collapsed-stack frame prefix.
  std::string StackName() const;
};

// Unpacks a key into a zero-cycle bucket row (for tagged external records
// like fault injections).
AttrBucket UnpackAttrKey(uint64_t key);

class CycleAttribution {
 public:
  CycleAttribution() = default;
  CycleAttribution(const CycleAttribution&) = delete;
  CycleAttribution& operator=(const CycleAttribution&) = delete;

  // Registers a CPU and pushes its root frame (vm=-1, vcpu=-1, L0,
  // kHostOther). Called once per CPU at machine construction.
  void AttachCpu(int cpu);

  // --- frame stack (AttrScope is the intended interface) -------------------
  void Push(int cpu, int vm, int vcpu, AttrLayer layer, AttrCat cat);
  // Push inheriting vm/vcpu/layer from the current top frame.
  void PushInherit(int cpu, AttrCat cat);
  // Push inheriting vm/vcpu, overriding layer.
  void PushInheritLayer(int cpu, AttrLayer layer, AttrCat cat);
  void Pop(int cpu);
  size_t Depth(int cpu) const { return percpu_[cpu].stack.size(); }

  // The packed key of `cpu`'s current top frame, or kNoAttrKey when that CPU
  // was never attached. Used to tag externally-recorded events (fault
  // injections) with the attribution context they happened under.
  uint64_t CurrentKey(int cpu) const {
    if (cpu < 0 || static_cast<size_t>(cpu) >= percpu_.size() ||
        percpu_[static_cast<size_t>(cpu)].stack.empty()) {
      return kNoAttrKey;
    }
    return percpu_[static_cast<size_t>(cpu)].stack.back();
  }

  // --- the hot path --------------------------------------------------------
  // Charge to the current top frame's bucket: one add through a cached
  // pointer.
  void ChargeCurrent(int cpu, uint64_t cycles) {
    *percpu_[static_cast<size_t>(cpu)].bucket += cycles;
  }
  // Charge to the current frame's context but a different category, without
  // pushing a frame (for single-charge sites like the VNCR redirect). A
  // one-entry memo per CPU keeps repeated redirects at pointer-add cost.
  void ChargeTo(int cpu, AttrCat cat, uint64_t cycles) {
    PerCpu& pc = percpu_[static_cast<size_t>(cpu)];
    uint64_t key = ReplaceAttrCat(pc.stack.back(), cat);
    if (key != pc.memo_key) {
      pc.memo_key = key;
      pc.memo_bucket = &pc.buckets[key];
    }
    *pc.memo_bucket += cycles;
  }

  // --- flight recorder -----------------------------------------------------
  // A bounded ring of attribution-tree snapshots taken at notable moments
  // (guest-fault confinement, panic). Machine wires the guest-fault and
  // panic hooks to this.
  struct FlightRecord {
    std::string reason;
    uint64_t cycles = 0;  // machine cycle total at capture
    std::vector<AttrBucket> buckets;
  };
  static constexpr size_t kFlightCapacity = 16;
  void RecordFlight(const std::string& reason);
  // Returns a copy: the ring may be appended from another lane (a confined
  // guest fault under the SMP engine records a flight mid-run).
  std::vector<FlightRecord> flights() const {
    MutexLock lock(flights_mu_);
    return flights_;
  }

  // --- read side -----------------------------------------------------------
  // All nonzero buckets, sorted by (vm, vcpu, layer, cat) for deterministic
  // output.
  std::vector<AttrBucket> Snapshot() const;
  // Sum over all buckets; the conservation invariant compares this against
  // the sum of the machine's CPU cycle counters.
  uint64_t TotalCycles() const;

  // Human-readable rollup: vm -> layer -> category tree with cycle counts
  // and percentages.
  std::string TextTree() const { return RenderTextTree(Snapshot()); }
  // One line per bucket in collapsed-stack format ("frame;frame;frame N"),
  // foldable by standard flamegraph tooling.
  std::string CollapsedStacks() const { return RenderCollapsed(Snapshot()); }
  // {"total": N, "buckets": [{vm, vcpu, layer, cat, cycles}, ...]}
  void WriteJson(JsonWriter& w) const;

  // The renderers behind TextTree/CollapsedStacks, usable on any bucket set
  // (tools/obsreport renders rows it parsed back out of JSON). `rows` must be
  // sorted the way Snapshot() sorts (SortBuckets does that).
  static std::string RenderTextTree(const std::vector<AttrBucket>& rows);
  static std::string RenderCollapsed(const std::vector<AttrBucket>& rows);
  static void SortBuckets(std::vector<AttrBucket>* rows);

 private:
  friend class snap::Serializer;

  struct PerCpu {
    std::vector<uint64_t> stack;  // packed keys, bottom is the root frame
    // This CPU's bucket shard. std::unordered_map guarantees reference
    // stability under insertion (and under moving the map itself), so
    // cached bucket pointers stay valid as new keys appear. Only this CPU's
    // lane writes the shard; the merge-summing read side runs quiesced.
    std::unordered_map<uint64_t, uint64_t> buckets;
    uint64_t* bucket = nullptr;   // cached bucket of stack.back()
    uint64_t memo_key = ~UINT64_C(0);  // ChargeTo memo (impossible key)
    uint64_t* memo_bucket = nullptr;
  };

  uint64_t* BucketFor(int cpu, uint64_t key) {
    return &percpu_[static_cast<size_t>(cpu)].buckets[key];
  }

  std::vector<PerCpu> percpu_;
  mutable Mutex flights_mu_{"obs.attr_flights"};
  std::vector<FlightRecord> flights_ GUARDED_BY(flights_mu_);
  size_t flight_next_ GUARDED_BY(flights_mu_) = 0;
};

// RAII attribution frame, modeled on ScopedSpan. Clocked is any type exposing
// attribution() and index() (Cpu in practice; a template keeps this header
// free of a cpu.h dependency, which includes us). With no attribution
// attached the scope is two null checks.
template <typename Clocked>
class AttrScope {
 public:
  AttrScope(Clocked& c, AttrCat cat)
      : attr_(c.attribution()), cpu_(c.index()) {
    if (attr_ != nullptr) {
      attr_->PushInherit(cpu_, cat);
    }
  }
  AttrScope(Clocked& c, AttrLayer layer, AttrCat cat)
      : attr_(c.attribution()), cpu_(c.index()) {
    if (attr_ != nullptr) {
      attr_->PushInheritLayer(cpu_, layer, cat);
    }
  }
  AttrScope(Clocked& c, int vm, int vcpu, AttrLayer layer, AttrCat cat)
      : attr_(c.attribution()), cpu_(c.index()) {
    if (attr_ != nullptr) {
      attr_->Push(cpu_, vm, vcpu, layer, cat);
    }
  }
  ~AttrScope() {
    if (attr_ != nullptr) {
      attr_->Pop(cpu_);
    }
  }

  AttrScope(const AttrScope&) = delete;
  AttrScope& operator=(const AttrScope&) = delete;

 private:
  CycleAttribution* attr_;
  int cpu_;
};

}  // namespace neve

#endif  // NEVE_SRC_OBS_ATTR_H_
