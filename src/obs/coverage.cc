#include "src/obs/coverage.h"

#include <bit>

#include "src/obs/observability.h"

namespace neve {

uint64_t CoverageCountBucket(uint64_t count) {
  if (count < 4) {
    return count;
  }
  return 2 + std::bit_width(count);  // 4..7 -> 5, 8..15 -> 6, ...
}

size_t CoverageBitmap::CountNew(const std::vector<uint64_t>& features) const {
  // Distinct features can fold onto the same bit; count distinct *bits*.
  CoverageBitmap scratch;
  size_t fresh = 0;
  for (uint64_t f : features) {
    if (!Test(f) && scratch.Set(f)) {
      ++fresh;
    }
  }
  return fresh;
}

size_t CoverageBitmap::Merge(const std::vector<uint64_t>& features) {
  size_t fresh = 0;
  for (uint64_t f : features) {
    if (Set(f)) {
      ++fresh;
    }
  }
  return fresh;
}

void CollectObsFeatures(const Observability& obs,
                        std::vector<uint64_t>* sink) {
  for (const auto& [name, counter] : obs.metrics().counters()) {
    if (counter.value() == 0) {
      continue;
    }
    Digest d;
    d.Mix(name);
    d.Mix(CoverageCountBucket(counter.value()));
    sink->push_back(d.value());
  }
  for (const auto& [name, hist] : obs.metrics().histograms()) {
    if (hist.count() == 0) {
      continue;
    }
    Digest d;
    d.Mix(name);
    d.Mix(CoverageCountBucket(hist.count()));
    sink->push_back(d.value());
  }
}

}  // namespace neve
