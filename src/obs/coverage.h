// Coverage bitmap: the feedback signal driving the differential fuzzer.
//
// A *feature* is a 64-bit hash describing one behaviour the stack exhibited:
// a resolution cell hit (encoding x direction x resolution kind x vcpu
// mode), a metric that reached a new order of magnitude, a fault-injection
// point crossed, a trap-episode kind observed. Features are folded into a
// fixed-size bitmap (AFL-style, with hit counts bucketed into powers of two
// before hashing so "happened once" and "happened a thousand times" are
// different features). An input is *interesting* when its run sets a bit no
// earlier input set.
//
// Determinism: features are pure hashes of simulated behaviour and the
// bitmap is a plain bit set -- merging the same runs in the same order
// always yields the same bitmap, which the fuzzer's byte-identical
// `--threads=` contract depends on.

#ifndef NEVE_SRC_OBS_COVERAGE_H_
#define NEVE_SRC_OBS_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "src/base/digest.h"

namespace neve {

class Observability;

// Buckets a hit count AFL-style: 0,1,2,3 stay distinct, then powers of two.
// Folding the bucket into the feature hash makes count growth (a trap storm
// vs a single trap) visible as new coverage without per-count features.
uint64_t CoverageCountBucket(uint64_t count);

class CoverageBitmap {
 public:
  static constexpr size_t kNumBits = 1u << 16;

  CoverageBitmap() : words_(kNumBits / 64, 0) {}

  static size_t BitIndex(uint64_t feature) {
    // Finalize so structured feature values spread over the whole map.
    return static_cast<size_t>(DigestOf(feature) % kNumBits);
  }

  // Sets the feature's bit; true when it was previously clear.
  bool Set(uint64_t feature) {
    size_t bit = BitIndex(feature);
    uint64_t mask = uint64_t{1} << (bit % 64);
    uint64_t& word = words_[bit / 64];
    if ((word & mask) != 0) {
      return false;
    }
    word |= mask;
    ++bits_set_;
    return true;
  }

  bool Test(uint64_t feature) const {
    size_t bit = BitIndex(feature);
    return (words_[bit / 64] & (uint64_t{1} << (bit % 64))) != 0;
  }

  // How many of `features` would set a new bit (without setting them).
  size_t CountNew(const std::vector<uint64_t>& features) const;

  // Sets every feature; returns how many bits were newly set.
  size_t Merge(const std::vector<uint64_t>& features);

  uint64_t bits_set() const { return bits_set_; }

 private:
  std::vector<uint64_t> words_;
  uint64_t bits_set_ = 0;
};

// Exports coverage features from a run's observability layer: one feature
// per (metric name, bucketed value). Counters, histograms (by count) and
// the tracer are all reflected through the metrics registry, so this single
// walk captures trap-episode kinds, world-switch phases, shadow-S2 fixups,
// GIC/virtio activity and fault.* injection points. Appends to `sink`.
void CollectObsFeatures(const Observability& obs, std::vector<uint64_t>* sink);

}  // namespace neve

#endif  // NEVE_SRC_OBS_COVERAGE_H_
