#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace neve {

uint64_t JsonValue::AsU64() const {
  if (kind_ != Kind::kNumber) {
    return 0;
  }
  if (is_int_ && !negative_) {
    return u64_;
  }
  return num_ <= 0.0 ? 0 : static_cast<uint64_t>(num_);
}

int64_t JsonValue::AsI64() const {
  if (kind_ != Kind::kNumber) {
    return 0;
  }
  if (is_int_) {
    int64_t v = static_cast<int64_t>(u64_);
    return negative_ ? -v : v;
  }
  return static_cast<int64_t>(num_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const char* what) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "json parse error at byte %zu: %s", pos_,
                  what);
    *error_ = buf;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return Fail("bad literal");
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->str_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items_.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return Fail("bad escape");
        }
        char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // Our writer only escapes control characters; decode the BMP
            // code point as UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    bool integral = true;
    uint64_t u = 0;
    bool overflow = false;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return Fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
      if (u > (UINT64_MAX - digit) / 10) {
        overflow = true;
      } else {
        u = u * 10 + digit;
      }
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->num_ = std::strtod(text_.c_str() + start, nullptr);
    out->is_int_ = integral && !overflow;
    out->u64_ = u;
    out->negative_ = negative;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

std::unique_ptr<JsonValue> JsonValue::Parse(const std::string& text,
                                            std::string* error) {
  auto value = std::make_unique<JsonValue>();
  JsonParser parser(text, error);
  if (!parser.Run(value.get())) {
    return nullptr;
  }
  return value;
}

}  // namespace neve
