// Minimal JSON reader, the read-side twin of report.h's JsonWriter.
//
// tools/obsreport consumes attribution JSON produced by this repo only, so
// the parser covers exactly the JSON we emit: objects, arrays, strings with
// the standard escapes, integers/doubles, booleans, null. It is strict (no
// trailing commas, no comments) and keeps integers exact up to 2^63-1 --
// cycle counts must round-trip bit-for-bit for the byte-identical diff
// contract.

#ifndef NEVE_SRC_OBS_JSON_H_
#define NEVE_SRC_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace neve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  // Typed accessors; wrong-kind access returns the zero value rather than
  // aborting (tools validate shape explicitly and report errors themselves).
  bool AsBool() const { return kind_ == Kind::kBool && bool_; }
  double AsDouble() const { return kind_ == Kind::kNumber ? num_ : 0.0; }
  // Exact when the input was an unsigned integer literal <= UINT64_MAX;
  // otherwise truncated from the double value.
  uint64_t AsU64() const;
  int64_t AsI64() const;
  const std::string& AsString() const { return str_; }
  const std::vector<JsonValue>& Items() const { return items_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Parses `text`; returns nullptr and sets *error (with a byte offset) on
  // malformed input.
  static std::unique_ptr<JsonValue> Parse(const std::string& text,
                                          std::string* error);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  uint64_t u64_ = 0;     // exact integer payload when is_int_
  bool is_int_ = false;
  bool negative_ = false;
  std::string str_;
  std::vector<JsonValue> items_;                       // array elements
  std::vector<std::pair<std::string, JsonValue>> members_;  // object members
};

}  // namespace neve

#endif  // NEVE_SRC_OBS_JSON_H_
