#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace neve {
namespace {

// Upper bound of log2 bucket i (the largest value that lands in it).
uint64_t BucketUpperBound(int i) {
  if (i == 0) {
    return 0;
  }
  if (i >= 64) {
    return ~uint64_t{0};
  }
  return (uint64_t{1} << i) - 1;
}

template <typename Map>
auto* FindIn(const Map& map, std::string_view name) {
  auto it = map.find(name);
  return it != map.end() ? &it->second : nullptr;
}

}  // namespace

int MetricHistogram::PercentileBucket(double p) const {
  if (count_ == 0) {
    return -1;
  }
  // NaN fails both comparisons below and would reach the float->uint64_t
  // cast, which is undefined for NaN; treat it as the median.
  if (std::isnan(p)) {
    p = 50.0;
  }
  if (p <= 0.0) {
    return std::bit_width(min_);
  }
  if (p >= 100.0) {
    return std::bit_width(max_);
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return i;
    }
  }
  return std::bit_width(max_);
}

uint64_t MetricHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (std::isnan(p)) {
    p = 50.0;
  }
  // The extremes are tracked exactly; report them rather than a bucket
  // bound.
  if (p <= 0.0) {
    return min_;
  }
  if (p >= 100.0) {
    return max_;
  }
  // Clamp to the observed extremes so sparse histograms stay sane: the
  // bucket upper bound can exceed max (or undershoot min) when only a
  // few samples landed in it.
  return std::clamp(BucketUpperBound(PercentileBucket(p)), min_, max_);
}

std::optional<uint64_t> MetricHistogram::PercentileExemplar(double p) const {
  int bucket = PercentileBucket(p);
  if (bucket < 0) {
    return std::nullopt;
  }
  uint64_t id = exemplars_[static_cast<size_t>(bucket)];
  if (id == 0) {
    return std::nullopt;
  }
  return id;
}

MetricHistogram::Summary MetricHistogram::Summarize() const {
  return Summary{.count = count_,
                 .sum = sum_,
                 .mean = mean(),
                 .min = min(),
                 .max = max_,
                 .p50 = Percentile(50),
                 .p95 = Percentile(95),
                 .p99 = Percentile(99)};
}

MetricCounter& MetricsRegistry::Counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), MetricCounter{}).first;
  }
  return it->second;
}

MetricGauge& MetricsRegistry::Gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), MetricGauge{}).first;
  }
  return it->second;
}

MetricHistogram& MetricsRegistry::Histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), MetricHistogram{}).first;
  }
  return it->second;
}

const MetricCounter* MetricsRegistry::FindCounter(std::string_view name) const {
  MutexLock lock(mu_);
  return FindIn(counters_, name);
}

const MetricGauge* MetricsRegistry::FindGauge(std::string_view name) const {
  MutexLock lock(mu_);
  return FindIn(gauges_, name);
}

const MetricHistogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  MutexLock lock(mu_);
  return FindIn(histograms_, name);
}

std::string MetricsRegistry::TextReport() const {
  MutexLock lock(mu_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_) {
    oss << "counter   " << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", g.value());
    oss << "gauge     " << name << " = " << buf << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    MetricHistogram::Summary s = h.Summarize();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu mean=%.1f min=%llu p50=%llu p95=%llu p99=%llu "
                  "max=%llu",
                  static_cast<unsigned long long>(s.count), s.mean,
                  static_cast<unsigned long long>(s.min),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p95),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max));
    oss << "histogram " << name << " = " << buf << "\n";
  }
  return oss.str();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace neve
