// Machine-wide metrics registry: named counters, gauges and log2-bucketed
// latency histograms.
//
// The registry is owned per-Machine and shared by every CPU and device model
// of that machine, so a counter like "cpu.traps_to_el2" aggregates across
// CPUs by construction (the simulator is single-threaded; no atomics). All
// instrumentation sites are gated on Observability::enabled() -- when the
// layer is off nothing here executes, keeping the hot paths at their
// uninstrumented cost (the "zero-cost when disabled" contract verified by
// bench/simcore_gbench).
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated
// `<subsystem>.<event>[,k=v...]`, e.g. "cpu.traps_to_el2",
// "shadow_s2.faults_installed", "virtio.kicks". Histograms record simulated
// cycles unless the name says otherwise.

#ifndef NEVE_SRC_OBS_METRICS_H_
#define NEVE_SRC_OBS_METRICS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace neve {

// Monotonically increasing event count.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class MetricGauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log2-bucketed histogram of non-negative integer samples (latencies in
// simulated cycles). Bucket i holds samples whose bit width is i, i.e.
// [2^(i-1), 2^i); bucket 0 holds the value 0. Quantiles are estimated as the
// upper bound of the bucket where the cumulative count crosses the rank --
// good to within 2x, which is what a log-scale latency summary needs. min
// and max are tracked exactly.
class MetricHistogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width of a uint64_t is 0..64

  void Record(uint64_t sample) {
    ++buckets_[std::bit_width(sample)];
    ++count_;
    sum_ += sample;
    if (sample < min_ || count_ == 1) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  // Record with an exemplar: remembers `trace_id` (a Tracer event ID) as the
  // most recent representative of the sample's bucket, so a histogram
  // outlier links back to the trace event that produced it. trace_id 0
  // ("no event") records the sample without touching the exemplar.
  void RecordWithExemplar(uint64_t sample, uint64_t trace_id) {
    Record(sample);
    if (trace_id != 0) {
      exemplars_[std::bit_width(sample)] = trace_id;
    }
  }

  // Upper-bound estimate of the p-th percentile (p in [0, 100]).
  uint64_t Percentile(double p) const;

  // The exemplar trace ID of the bucket the p-th percentile falls in;
  // nullopt when the histogram is empty or that bucket never recorded an
  // exemplar.
  std::optional<uint64_t> PercentileExemplar(double p) const;

  // Exemplar of log2 bucket `bucket` (0 when none recorded).
  uint64_t BucketExemplar(int bucket) const {
    return exemplars_[static_cast<size_t>(bucket)];
  }

  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    double mean = 0.0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  Summary Summarize() const;

 private:
  // The log2 bucket Percentile(p) resolves to; -1 when the histogram is
  // empty.
  int PercentileBucket(double p) const;

  std::array<uint64_t, kNumBuckets> buckets_ = {};
  std::array<uint64_t, kNumBuckets> exemplars_ = {};  // 0: no exemplar
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Name -> metric registry. Lookup creates on first use; references remain
// valid for the registry's lifetime (std::map nodes are stable), so hot
// instrumentation sites may cache them.
class MetricsRegistry {
 public:
  MetricCounter& Counter(std::string_view name);
  MetricGauge& Gauge(std::string_view name);
  MetricHistogram& Histogram(std::string_view name);

  // Lookup without creation; nullptr when the metric was never touched.
  const MetricCounter* FindCounter(std::string_view name) const;
  const MetricGauge* FindGauge(std::string_view name) const;
  const MetricHistogram* FindHistogram(std::string_view name) const;

  const std::map<std::string, MetricCounter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, MetricGauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, MetricHistogram, std::less<>>& histograms()
      const {
    return histograms_;
  }

  // Human-readable dump of every metric, one per line, sorted by name.
  std::string TextReport() const;

  void Reset();

 private:
  std::map<std::string, MetricCounter, std::less<>> counters_;
  std::map<std::string, MetricGauge, std::less<>> gauges_;
  std::map<std::string, MetricHistogram, std::less<>> histograms_;
};

}  // namespace neve

#endif  // NEVE_SRC_OBS_METRICS_H_
