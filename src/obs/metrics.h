// Machine-wide metrics registry: named counters, gauges and log2-bucketed
// latency histograms.
//
// The registry is owned per-Machine and shared by every CPU and device model
// of that machine, so a counter like "cpu.traps_to_el2" aggregates across
// CPUs by construction. All instrumentation sites are gated on
// Observability::enabled() -- when the layer is off nothing here executes,
// keeping the hot paths at their uninstrumented cost (the "zero-cost when
// disabled" contract verified by bench/simcore_gbench).
//
// Concurrency (DESIGN.md 6i/6j): registration -- the name->metric map
// structure -- is guarded by mu_, so threads may look metrics up
// concurrently (the --threads= bench fan-out constructs and reads registries
// on worker threads). The *recorded values* (Add/Set/Record on the returned
// references) stay unsynchronized: with the obs layer enabled a Machine has
// exactly one mutator thread at a time, and the ParallelFor join publishes
// its writes to whoever aggregates. The SMP engine (sim/smp.h) runs many
// mutator threads per machine, which is why SmpEngine::Run refuses to start
// with obs enabled -- SMP runs keep their observability through the sharded
// cycle attribution (attr.h) and per-vCPU counters, not this registry.
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated
// `<subsystem>.<event>[,k=v...]`, e.g. "cpu.traps_to_el2",
// "shadow_s2.faults_installed", "virtio.kicks". Histograms record simulated
// cycles unless the name says otherwise.

#ifndef NEVE_SRC_OBS_METRICS_H_
#define NEVE_SRC_OBS_METRICS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace neve {

// Monotonically increasing event count.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class MetricGauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log2-bucketed histogram of non-negative integer samples (latencies in
// simulated cycles). Bucket i holds samples whose bit width is i, i.e.
// [2^(i-1), 2^i); bucket 0 holds the value 0. Quantiles are estimated as the
// upper bound of the bucket where the cumulative count crosses the rank --
// good to within 2x, which is what a log-scale latency summary needs. min
// and max are tracked exactly.
class MetricHistogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width of a uint64_t is 0..64

  void Record(uint64_t sample) {
    ++buckets_[std::bit_width(sample)];
    ++count_;
    sum_ += sample;
    if (sample < min_ || count_ == 1) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  // Record with an exemplar: remembers `trace_id` (a Tracer event ID) as the
  // most recent representative of the sample's bucket, so a histogram
  // outlier links back to the trace event that produced it. trace_id 0
  // ("no event") records the sample without touching the exemplar.
  void RecordWithExemplar(uint64_t sample, uint64_t trace_id) {
    Record(sample);
    if (trace_id != 0) {
      exemplars_[std::bit_width(sample)] = trace_id;
    }
  }

  // Upper-bound estimate of the p-th percentile (p in [0, 100]).
  uint64_t Percentile(double p) const;

  // The exemplar trace ID of the bucket the p-th percentile falls in;
  // nullopt when the histogram is empty or that bucket never recorded an
  // exemplar.
  std::optional<uint64_t> PercentileExemplar(double p) const;

  // Exemplar of log2 bucket `bucket` (0 when none recorded).
  uint64_t BucketExemplar(int bucket) const {
    return exemplars_[static_cast<size_t>(bucket)];
  }

  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    double mean = 0.0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  Summary Summarize() const;

 private:
  // The log2 bucket Percentile(p) resolves to; -1 when the histogram is
  // empty.
  int PercentileBucket(double p) const;

  std::array<uint64_t, kNumBuckets> buckets_ = {};
  std::array<uint64_t, kNumBuckets> exemplars_ = {};  // 0: no exemplar
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Name -> metric registry. Lookup creates on first use; references remain
// valid for the registry's lifetime (std::map nodes are stable), so hot
// instrumentation sites may cache them.
class MetricsRegistry {
 public:
  MetricCounter& Counter(std::string_view name) EXCLUDES(mu_);
  MetricGauge& Gauge(std::string_view name) EXCLUDES(mu_);
  MetricHistogram& Histogram(std::string_view name) EXCLUDES(mu_);

  // Lookup without creation; nullptr when the metric was never touched.
  const MetricCounter* FindCounter(std::string_view name) const EXCLUDES(mu_);
  const MetricGauge* FindGauge(std::string_view name) const EXCLUDES(mu_);
  const MetricHistogram* FindHistogram(std::string_view name) const
      EXCLUDES(mu_);

  // Whole-map read side, used by the post-join reporting paths (obsreport,
  // BENCH json, panic dumps). Owner-serialized: the caller is the machine's
  // only mutator (or runs after the fan-out joined), so the analysis is
  // waived rather than taking the lock on every report line.
  const std::map<std::string, MetricCounter, std::less<>>& counters() const
      NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  const std::map<std::string, MetricGauge, std::less<>>& gauges() const
      NO_THREAD_SAFETY_ANALYSIS {
    return gauges_;
  }
  const std::map<std::string, MetricHistogram, std::less<>>& histograms()
      const NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  // Human-readable dump of every metric, one per line, sorted by name.
  std::string TextReport() const EXCLUDES(mu_);

  void Reset() EXCLUDES(mu_);

 private:
  // Guards the map structure (registration); see the header comment for why
  // the metric values themselves stay owner-serialized.
  mutable Mutex mu_{"obs.metrics"};
  std::map<std::string, MetricCounter, std::less<>> counters_ GUARDED_BY(mu_);
  std::map<std::string, MetricGauge, std::less<>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, MetricHistogram, std::less<>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace neve

#endif  // NEVE_SRC_OBS_METRICS_H_
