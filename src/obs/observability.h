// The per-Machine observability layer: one metrics registry plus one event
// tracer behind a single enable switch.
//
// Wiring: Machine owns an Observability and hands a pointer to every Cpu,
// the GIC and (via the hypervisors) device models. Instrumentation sites are
// written as
//
//     if (ObsActive(obs_)) {
//       obs_->metrics().Counter("cpu.traps_to_el2").Add();
//     }
//
// so a disabled (or absent) layer costs one pointer test and one predictable
// branch -- the zero-cost-when-disabled contract bench/simcore_gbench
// guards. Spans use the ScopedSpan RAII helper below, which captures the
// enable decision at construction so a span begun while enabled always
// closes.

#ifndef NEVE_SRC_OBS_OBSERVABILITY_H_
#define NEVE_SRC_OBS_OBSERVABILITY_H_

#include <cstdint>
#include <string>

#include "src/base/lock_order.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace neve {

class Observability {
 public:
  explicit Observability(size_t trace_capacity = Tracer::kDefaultCapacity)
      : tracer_(trace_capacity) {
    // Ring-overwrite drops surface as a metric so overflowing runs are
    // visible without parsing the trace export.
    tracer_.SetDropCounter(&metrics_.Counter("obs.trace_dropped_events"));
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Mirrors process-global concurrency counters (the lock-order detector in
  // src/base/lock_order.h) into this registry so reports and panic dumps
  // carry them. Delta-mirrored against the current metric value, so calling
  // it repeatedly (or from several report paths) never double-counts.
  void SyncProcessCounters() {
    MetricCounter& acq = metrics_.Counter("base.lock_acquisitions");
    acq.Add(lock_order::Acquisitions() - acq.value());
    MetricCounter& edges = metrics_.Counter("base.lock_order_edges");
    edges.Add(lock_order::Edges() - edges.value());
  }

 private:
  bool enabled_ = false;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

// True when instrumentation should record: the site has an observability
// layer and it is switched on.
inline bool ObsActive(const Observability* obs) {
  return obs != nullptr && obs->enabled();
}

// RAII begin/end span on the clock of `Clocked` (anything exposing cycles()
// and index(), i.e. a Cpu). Templated so the tracer stays independent of the
// CPU model while call sites read naturally:
//
//     ScopedSpan span(cpu.obs(), cpu, "world_switch", "save_el1");
//
// `name` must be a static string (all call sites pass literals): holding a
// const char* keeps a disabled span to two pointer tests with no std::string
// materialization -- world-switch phases run 100+ times per nested trap, so
// an allocation here would break the zero-cost contract.
template <typename Clocked>
class ScopedSpan {
 public:
  ScopedSpan(Observability* obs, Clocked& clock, const char* category,
             const char* name)
      : obs_(ObsActive(obs) ? obs : nullptr),
        clock_(clock),
        category_(category),
        name_(name) {
    if (obs_ != nullptr) {
      obs_->tracer().Begin(clock_.index(), category_, name_, clock_.cycles());
    }
  }

  ~ScopedSpan() {
    if (obs_ != nullptr) {
      obs_->tracer().End(clock_.index(), category_, name_, clock_.cycles());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Observability* obs_;
  Clocked& clock_;
  const char* category_;
  const char* name_;
};

template <typename Clocked>
ScopedSpan(Observability*, Clocked&, const char*, const char*)
    -> ScopedSpan<Clocked>;

}  // namespace neve

#endif  // NEVE_SRC_OBS_OBSERVABILITY_H_
