#include "src/obs/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/base/log.h"
#include "src/base/status.h"

namespace neve {

// --- JsonWriter -------------------------------------------------------------

void JsonWriter::Raw(std::string_view text) { out_.append(text); }

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (!stack_.empty() && stack_.back() && !have_key_) {
    NEVE_CHECK_MSG(false, "JsonWriter: value inside object without a key");
  }
  if (need_comma_ && !have_key_) {
    Raw(",");
  }
  need_comma_ = false;
  have_key_ = false;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  stack_.push_back(true);
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  NEVE_CHECK(!stack_.empty() && stack_.back() && !have_key_);
  stack_.pop_back();
  Raw("}");
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  stack_.push_back(false);
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  NEVE_CHECK(!stack_.empty() && !stack_.back());
  stack_.pop_back();
  Raw("]");
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  NEVE_CHECK(!stack_.empty() && stack_.back() && !have_key_);
  if (need_comma_) {
    Raw(",");
    need_comma_ = false;
  }
  Raw("\"");
  Raw(Escape(key));
  Raw("\":");
  have_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  Raw("\"");
  Raw(Escape(value));
  Raw("\"");
  need_comma_ = true;
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    Raw("null");
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    Raw(buf);
  }
  need_comma_ = true;
}

void JsonWriter::Number(uint64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  Raw(buf);
  need_comma_ = true;
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  Raw(buf);
  need_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  Raw(value ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::Null() {
  BeforeValue();
  Raw("null");
  need_comma_ = true;
}

std::string JsonWriter::str() const {
  NEVE_CHECK_MSG(stack_.empty(), "JsonWriter: unclosed object/array");
  return out_;
}

// --- BenchReport ------------------------------------------------------------

std::optional<double> DeltaPct(double measured, std::optional<double> paper) {
  if (!paper.has_value() || *paper == 0.0) {
    return std::nullopt;
  }
  // |paper| keeps the sign meaning "measured above/below the reference"
  // even for negative reference values.
  return (measured - *paper) / std::fabs(*paper) * 100.0;
}

BenchReport::BenchReport(std::string bench_name, std::string units,
                         std::string paper_ref)
    : bench_name_(std::move(bench_name)),
      units_(std::move(units)),
      paper_ref_(std::move(paper_ref)) {}

void BenchReport::AddEntry(BenchEntry entry) {
  entries_.push_back(std::move(entry));
}

void BenchReport::Add(std::string name, std::string config, double measured,
                      std::optional<double> paper,
                      std::optional<double> traps_per_op) {
  entries_.push_back(BenchEntry{.name = std::move(name),
                                .config = std::move(config),
                                .measured = measured,
                                .paper = paper,
                                .traps_per_op = traps_per_op});
}

void BenchReport::AddMetric(std::string name, double value) {
  metrics_.emplace_back(std::move(name), value);
}

void BenchReport::AddHistogram(std::string name,
                               const MetricHistogram::Summary& summary) {
  histograms_.emplace_back(std::move(name), summary);
}

void BenchReport::AddRegistry(const MetricsRegistry& registry) {
  for (const auto& [name, counter] : registry.counters()) {
    AddMetric(name, static_cast<double>(counter.value()));
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    AddMetric(name, gauge.value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    AddHistogram(name, histogram.Summarize());
  }
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Number(int64_t{1});
  w.Key("bench");
  w.String(bench_name_);
  w.Key("units");
  w.String(units_);
  w.Key("paper_ref");
  w.String(paper_ref_);
  w.Key("entries");
  w.BeginArray();
  for (const BenchEntry& e : entries_) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("config");
    w.String(e.config);
    w.Key("measured");
    w.Number(e.measured);
    w.Key("paper");
    if (e.paper.has_value()) {
      w.Number(*e.paper);
    } else {
      w.Null();
    }
    w.Key("delta_pct");
    if (std::optional<double> delta = DeltaPct(e.measured, e.paper);
        delta.has_value()) {
      w.Number(*delta);
    } else {
      w.Null();
    }
    if (e.traps_per_op.has_value()) {
      w.Key("traps_per_op");
      w.Number(*e.traps_per_op);
    }
    w.EndObject();
  }
  w.EndArray();
  if (!metrics_.empty()) {
    w.Key("metrics");
    w.BeginObject();
    for (const auto& [name, value] : metrics_) {
      w.Key(name);
      w.Number(value);
    }
    w.EndObject();
  }
  if (!histograms_.empty()) {
    w.Key("histograms");
    w.BeginObject();
    for (const auto& [name, s] : histograms_) {
      w.Key(name);
      w.BeginObject();
      w.Key("count");
      w.Number(s.count);
      w.Key("sum");
      w.Number(s.sum);
      w.Key("mean");
      w.Number(s.mean);
      w.Key("min");
      w.Number(s.min);
      w.Key("max");
      w.Number(s.max);
      w.Key("p50");
      w.Number(s.p50);
      w.Key("p95");
      w.Number(s.p95);
      w.Key("p99");
      w.Number(s.p99);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

bool BenchReport::WriteFile(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    NEVE_LOG_ERROR << "cannot open bench JSON output file " << path;
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (written != json.size()) {
    NEVE_LOG_ERROR << "short write to bench JSON output file " << path;
    return false;
  }
  return true;
}

bool BenchReport::WriteIfRequested(const std::string& path) const {
  if (path.empty()) {
    return true;
  }
  if (!WriteFile(path)) {
    return false;
  }
  std::printf("wrote %zu entries to %s\n", entries_.size(), path.c_str());
  return true;
}

}  // namespace neve
