// Machine-readable benchmark reporting: a dependency-free JSON writer and
// the BENCH_*.json emitter shared by every bench.
//
// The emitted schema (validated by tools/bench_json_check.cc):
//   {
//     "schema_version": 1,
//     "bench": "<bench name>",
//     "units": "<units of measured values>",
//     "paper_ref": "<table/figure being reproduced>",
//     "entries": [
//       {"name": ..., "config": ..., "measured": N,
//        "paper": N | null, "delta_pct": N | null,
//        "traps_per_op": N (optional)},
//       ...
//     ],
//     "metrics":    {"<counter name>": N, ...}          (optional)
//     "histograms": {"<name>": {count,mean,...}, ...}   (optional)
//   }
// Every PR gets a perf trajectory out of these files: run a bench with
// --json=BENCH_<name>.json before and after a change and diff the deltas.

#ifndef NEVE_SRC_OBS_REPORT_H_
#define NEVE_SRC_OBS_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace neve {

// Minimal streaming JSON writer: tracks nesting and comma placement, escapes
// strings. Misuse (e.g. two values without a key inside an object) is a
// programming error and is checked.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view value);
  void Number(double value);
  void Number(uint64_t value);
  void Number(int64_t value);
  void Number(int value) { Number(static_cast<int64_t>(value)); }
  void Bool(bool value);
  void Null();

  // The finished document. Valid once all containers are closed.
  std::string str() const;

 private:
  void BeforeValue();
  void Raw(std::string_view text);
  static std::string Escape(std::string_view s);

  std::string out_;
  // One entry per open container: true = object, false = array.
  std::vector<bool> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

// One measured-vs-paper data point.
struct BenchEntry {
  std::string name;                    // e.g. "Hypercall"
  std::string config;                  // e.g. "ARMv8.3 Nested VHE"
  double measured = 0;
  std::optional<double> paper;         // absent: nothing to compare against
  std::optional<double> traps_per_op;  // optional trap-count annotation
};

// Accumulates a bench run and renders/writes the BENCH_*.json document.
class BenchReport {
 public:
  BenchReport(std::string bench_name, std::string units,
              std::string paper_ref);

  void AddEntry(BenchEntry entry);

  // Convenience for the common case.
  void Add(std::string name, std::string config, double measured,
           std::optional<double> paper = std::nullopt,
           std::optional<double> traps_per_op = std::nullopt);

  // Free-form scalar published under "metrics".
  void AddMetric(std::string name, double value);

  // Histogram summary published under "histograms".
  void AddHistogram(std::string name, const MetricHistogram::Summary& summary);

  // Copies every counter and histogram out of a registry (bench runs that
  // enabled machine observability).
  void AddRegistry(const MetricsRegistry& registry);

  std::string ToJson() const;

  // Writes ToJson() to `path`. Returns false (and logs) on I/O failure.
  bool WriteFile(const std::string& path) const;

  // No-op when `path` is empty (the bench ran without --json); otherwise
  // WriteFile plus a one-line confirmation on stdout.
  bool WriteIfRequested(const std::string& path) const;

  const std::vector<BenchEntry>& entries() const { return entries_; }

 private:
  std::string bench_name_;
  std::string units_;
  std::string paper_ref_;
  std::vector<BenchEntry> entries_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, MetricHistogram::Summary>> histograms_;
};

// Percent delta of measured vs paper; nullopt when paper is 0 or absent
// (a 0 baseline makes "+X%" meaningless -- render "n/a" instead).
std::optional<double> DeltaPct(double measured, std::optional<double> paper);

}  // namespace neve

#endif  // NEVE_SRC_OBS_REPORT_H_
