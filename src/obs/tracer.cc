#include "src/obs/tracer.h"

#include <cstdio>

#include "src/base/log.h"
#include "src/base/status.h"
#include "src/obs/report.h"

namespace neve {
namespace {

const char* PhaseString(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kInstant:
      return "i";
  }
  return "i";
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity) {
  NEVE_CHECK(capacity > 0);
}

uint64_t Tracer::Push(TraceEvent ev) {
  ev.id = next_id_++;
  uint64_t id = ev.id;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(ev));
    return id;
  }
  events_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
  if (drop_counter_ != nullptr) {
    drop_counter_->Add(1);
  }
  return id;
}

uint64_t Tracer::Begin(int cpu, const char* category, std::string name,
                       uint64_t ts) {
  MutexLock lock(mu_);
  return Push(TraceEvent{.phase = TracePhase::kBegin,
                         .cpu = cpu,
                         .ts = ts,
                         .category = category,
                         .name = std::move(name)});
}

void Tracer::End(int cpu, const char* category, std::string name,
                 uint64_t ts) {
  MutexLock lock(mu_);
  Push(TraceEvent{.phase = TracePhase::kEnd,
                  .cpu = cpu,
                  .ts = ts,
                  .category = category,
                  .name = std::move(name)});
}

uint64_t Tracer::Instant(int cpu, const char* category, std::string name,
                         uint64_t ts, const char* arg_name, uint64_t arg) {
  MutexLock lock(mu_);
  return Push(TraceEvent{.phase = TracePhase::kInstant,
                         .cpu = cpu,
                         .ts = ts,
                         .category = category,
                         .name = std::move(name),
                         .arg_name = arg_name,
                         .arg = arg});
}

std::vector<TraceEvent> Tracer::SnapshotLocked() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  // Oldest-first: the ring's write position is the oldest slot once wrapped.
  size_t start = events_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(start + i) % events_.size()]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  return SnapshotLocked();
}

std::string Tracer::ToChromeJson() const {
  // One consistent grab of ring + drop count; formatting runs unlocked.
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  {
    MutexLock lock(mu_);
    events = SnapshotLocked();
    dropped = dropped_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("name");
    w.String(ev.name);
    w.Key("cat");
    w.String(ev.category);
    w.Key("ph");
    w.String(PhaseString(ev.phase));
    w.Key("ts");
    w.Number(ev.ts);
    w.Key("pid");
    w.Number(uint64_t{0});
    w.Key("tid");
    w.Number(static_cast<uint64_t>(ev.cpu));
    if (ev.phase == TracePhase::kInstant) {
      w.Key("s");
      w.String("t");
    }
    if (ev.arg_name != nullptr) {
      w.Key("args");
      w.BeginObject();
      w.Key(ev.arg_name);
      w.Number(ev.arg);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ns");
  w.Key("otherData");
  w.BeginObject();
  w.Key("timebase");
  w.String("simulated cycles (rendered as us)");
  w.Key("dropped_events");
  w.Number(dropped);
  w.EndObject();
  w.EndObject();
  return w.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    NEVE_LOG_ERROR << "cannot open trace output file " << path;
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    NEVE_LOG_ERROR << "short write to trace output file " << path;
    return false;
  }
  return true;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  next_ = 0;
  dropped_ = 0;
}

}  // namespace neve
