// Structured event tracer: a bounded ring buffer of begin/end spans and
// instant events, exportable as Chrome trace-event JSON.
//
// The timebase is *simulated cycles* (each simulated CPU's own clock), not
// host time: a span covering a nested trap episode shows where the simulated
// machine's cycles went, which is the quantity the paper accounts (Tables
// 1/6/7). The exporter maps each simulated CPU to one Chrome track (tid),
// writing cycles into the microsecond field -- chrome://tracing renders the
// numbers verbatim, so read "us" as "cycles". Load the file via
// chrome://tracing -> Load, or https://ui.perfetto.dev.
//
// The ring overwrites the oldest events when full (a long run keeps the tail
// of the episode, which is usually the part being inspected);
// `dropped_events()` says how many were lost. chrome://tracing tolerates the
// unbalanced begin/end pairs a wrapped ring can produce.

#ifndef NEVE_SRC_OBS_TRACER_H_
#define NEVE_SRC_OBS_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace neve {

enum class TracePhase : uint8_t {
  kBegin,    // Chrome "B"
  kEnd,      // Chrome "E"
  kInstant,  // Chrome "i" (thread scope)
};

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  int cpu = 0;               // simulated CPU (one Chrome track each)
  uint64_t ts = 0;           // simulated cycles
  const char* category = ""; // static string: "trap", "world_switch", ...
  std::string name;
  // Optional single argument, rendered into Chrome "args" when arg_name set.
  const char* arg_name = nullptr;
  uint64_t arg = 0;
  // Monotonic per-tracer event ID (1-based; 0 means "no event"). Histogram
  // exemplars store these so an outlier sample links back to its trace
  // event; the ID survives ring overwrites as evidence the event existed
  // even after its payload is gone.
  uint64_t id = 0;
};

class MetricCounter;

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  // Begin/Instant return the recorded event's ID (for exemplar links).
  uint64_t Begin(int cpu, const char* category, std::string name, uint64_t ts)
      EXCLUDES(mu_);
  void End(int cpu, const char* category, std::string name, uint64_t ts)
      EXCLUDES(mu_);
  uint64_t Instant(int cpu, const char* category, std::string name,
                   uint64_t ts, const char* arg_name = nullptr,
                   uint64_t arg = 0) EXCLUDES(mu_);

  // Mirrors ring-overwrite drops into a metrics counter
  // (obs.trace_dropped_events); Observability wires this at construction.
  // The counter must outlive the tracer.
  void SetDropCounter(MetricCounter* counter) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    drop_counter_ = counter;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return events_.size();
  }
  size_t capacity() const { return capacity_; }
  uint64_t dropped_events() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return dropped_;
  }

  // Recorded events, oldest first (unwinds the ring).
  std::vector<TraceEvent> Snapshot() const EXCLUDES(mu_);

  // Chrome trace-event JSON ({"traceEvents": [...], ...}).
  std::string ToChromeJson() const EXCLUDES(mu_);

  // Writes ToChromeJson() to `path`; false (with a log line) on I/O failure.
  bool WriteChromeJson(const std::string& path) const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  uint64_t Push(TraceEvent ev) REQUIRES(mu_);
  std::vector<TraceEvent> SnapshotLocked() const REQUIRES(mu_);

  // Guards the ring so per-cell Machines constructed and torn down on bench
  // fan-out workers stay race-free; within one Machine the single-mutator
  // rule (srclint lockset) means the lock is uncontended.
  mutable Mutex mu_{"obs.tracer"};
  size_t capacity_;
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);  // ring once at capacity
  size_t next_ GUARDED_BY(mu_) = 0;                 // ring write position
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;  // 0 is reserved for "no event"
  MetricCounter* drop_counter_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace neve

#endif  // NEVE_SRC_OBS_TRACER_H_
