#include "src/sim/batch/batch.h"

#include "src/base/digest.h"
#include "src/base/status.h"
#include "src/cpu/cpu.h"
#include "src/fault/fault.h"
#include "src/obs/observability.h"

namespace neve::batch {

void Program::Finalize() {
  Digest d;
  d.Mix(ops.size());
  for (const Op& op : ops) {
    d.Mix(DigestOf(static_cast<uint64_t>(op.kind),
                   static_cast<uint64_t>(op.enc)));
    d.Mix(DigestOf(op.value, op.addr, op.imm));
  }
  digest_ = d.value() | 1;  // nonzero, so 0 can mean "not finalized"
}

BatchEngine::BatchEngine(int num_cpus) {
  NEVE_CHECK(num_cpus > 0);
  shards_.resize(static_cast<size_t>(num_cpus));
}

uint64_t BatchEngine::ConfigToken(const Cpu& cpu) {
  return (cpu.resolution_cache().config_generation() << 3) |
         (static_cast<uint64_t>(cpu.current_el()) << 1) |
         (cpu.trap_tlbi() ? 1u : 0u);
}

bool BatchEngine::Compile(Cpu& cpu, const Program& p, size_t start, size_t end,
                          CompiledBlock* out) const {
  const AccessContext ctx = cpu.CurrentAccessContext();
  const CostModel& cost = cpu.cost();
  out->actions.clear();
  out->ops_len = 0;
  out->n_values = 0;
  out->plain_cycles = 0;
  out->vncr_cycles = 0;
  out->vncr_count = 0;
  for (size_t i = start; i < end; ++i) {
    const Op& op = p.ops[i];
    Action a;
    a.enc = op.enc;
    switch (op.kind) {
      case OpKind::kSysRead:
      case OpKind::kSysWrite: {
        bool is_write = op.kind == OpKind::kSysWrite;
        AccessResolution r = ResolveSysRegAccess(ctx, op.enc, is_write);
        if (r.kind == AccessResolution::Kind::kRegister) {
          // Writes landing in HCR_EL2/VNCR_EL2 change the trap configuration
          // mid-stream: they end the block and run per-op, so the
          // InvalidateResolutionsFor -> OnConfigChange generation bump fires
          // exactly as in unbatched execution (and moves this token).
          if (is_write && (r.target == RegId::kHCR_EL2 ||
                           r.target == RegId::kVNCR_EL2)) {
            goto done;
          }
          a.kind = is_write ? ActKind::kRegWrite : ActKind::kRegRead;
          a.slot = static_cast<uint32_t>(r.target);
          a.imm = op.value;
          out->plain_cycles += cost.sysreg_access;
        } else if (r.kind == AccessResolution::Kind::kMemory) {
          a.kind = is_write ? ActKind::kVncrWrite : ActKind::kVncrRead;
          a.slot = static_cast<uint32_t>(r.mem_offset);
          a.imm = op.value;
          out->vncr_cycles += cost.mem_access;
          ++out->vncr_count;
        } else {
          goto done;  // GIC interface, trap, UNDEFINED: per-op territory
        }
        out->actions.push_back(a);
        break;
      }
      case OpKind::kCurrentEl:
        a.kind = ActKind::kConst;
        a.imm = static_cast<uint64_t>(ResolveCurrentEl(ctx));
        out->plain_cycles += cost.sysreg_access;
        out->actions.push_back(a);
        break;
      case OpKind::kWfi:
        if (ctx.el != El::kEl2 && ctx.hcr.twi()) {
          goto done;  // traps
        }
        out->plain_cycles += cost.wfx;  // charge-only: no action
        break;
      case OpKind::kBarrier:
        out->plain_cycles += cost.barrier;  // charge-only: no action
        break;
      case OpKind::kTlbi:
        if (cpu.trap_tlbi() && ctx.el != El::kEl2) {
          goto done;  // traps
        }
        a.kind = ActKind::kTlbFlush;
        out->plain_cycles += cost.barrier;
        out->actions.push_back(a);
        break;
      case OpKind::kCompute:
        // Matches ExecSingleOp's cast; the guest-spin watchdog check is
        // inert (blocks never form with a deadline armed).
        out->plain_cycles += static_cast<uint32_t>(op.value);
        break;
      case OpKind::kHvc:
      case OpKind::kEret:
      case OpKind::kMemLoad:
      case OpKind::kMemStore:
      case OpKind::kOpaque:
        goto done;
    }
    ++out->ops_len;
    if (ProducesValue(op.kind)) {
      ++out->n_values;
    }
  }
done:
  if (out->ops_len < kMinBlockOps) {
    // Negative result, memoized under this token (ops_len == 0 is the
    // "no block opens here" marker TryRunBlock tests).
    out->actions.clear();
    out->ops_len = 0;
    out->n_values = 0;
    return false;
  }
  return true;
}

void BatchEngine::Execute(Cpu& cpu, const CompiledBlock& b, CpuShard* shard) {
  // The tight loop: raw register file + physical memory, no resolution, no
  // dispatch through Cpu methods, no per-op charges. Produced values append
  // compactly in action order == producing-op program order (Compile emits
  // one action per effectful op, in op order).
  uint64_t* regs = cpu.regs_;
  PhysMem& mem = cpu.mem();
  const Pa vncr = b.vncr_count != 0 ? cpu.VncrPage() : Pa(0);
  if (shard->values.size() < b.n_values) {
    shard->values.resize(b.n_values);
  }
  uint64_t* vals = shard->values.data();
  size_t nv = 0;
  for (const Action& a : b.actions) {
    switch (a.kind) {
      case ActKind::kRegRead:
        vals[nv++] = regs[a.slot];
        break;
      case ActKind::kRegWrite:
        regs[a.slot] = a.imm;
        break;
      case ActKind::kVncrRead:
        vals[nv++] = mem.Read64(vncr + a.slot);
        break;
      case ActKind::kVncrWrite:
        mem.Write64(vncr + a.slot, a.imm);
        break;
      case ActKind::kConst:
        vals[nv++] = a.imm;
        break;
      case ActKind::kTlbFlush:
        cpu.DropTlb();
        break;
    }
  }
  // The aggregated charge, split exactly as the per-op charges would be:
  // plain cycles to the current attribution frame, VNCR redirect cycles to
  // their category, so attribution buckets stay byte-identical and the
  // cycles-conserved invariant holds through batching. Charge takes 32 bits;
  // chunk (a block's total can in principle exceed one op's ceiling).
  for (uint64_t left = b.plain_cycles; left > 0;) {
    uint32_t chunk = left > UINT32_MAX ? UINT32_MAX
                                       : static_cast<uint32_t>(left);
    cpu.Charge(chunk);  // block-delta: the aggregated plain-cycle apply site
    left -= chunk;
  }
  for (uint64_t left = b.vncr_cycles; left > 0;) {
    uint32_t chunk = left > UINT32_MAX ? UINT32_MAX
                                       : static_cast<uint32_t>(left);
    // block-delta: the aggregated VNCR-redirect apply site
    cpu.ChargeAttributed(chunk, AttrCat::kVncrRedirect);
    left -= chunk;
  }
  if (b.vncr_count != 0 && ObsActive(cpu.obs())) {
    // block-delta: one counter add for the whole block's VNCR redirects
    cpu.obs()->metrics().Counter("cpu.vncr_redirects").Add(b.vncr_count);
    // One instant per redirect, as per-op execution emits: identical event
    // count and names (so trace_dropped_events matches); only the
    // timestamps coarsen to the block-end cycle.
    for (const Action& a : b.actions) {
      if (a.kind == ActKind::kVncrRead || a.kind == ActKind::kVncrWrite) {
        // block-delta: replay of the block's own redirect events, not per-op
        cpu.obs()->tracer().Instant(cpu.index(), "vncr", SysRegName(a.enc),
                                    cpu.cycles());
      }
    }
  }
  ++shard->blocks_executed;
  shard->ops_batched += b.ops_len;
}

size_t BatchEngine::TryRunBlock(Cpu& cpu, const Program& p, size_t start,
                                size_t end, BlockRecord* rec) {
  if (!enabled_) {
    return 0;
  }
  NEVE_CHECK_MSG(p.digest() != 0, "Program::Finalize() before execution");
  NEVE_CHECK(end <= p.ops.size());
  if (start >= end || end - start < kMinBlockOps) {
    return 0;
  }
  // Fault injection keys off per-op cycle counts and the guest-spin
  // watchdog checks per-op; with either armed the aggregated charge would
  // move injection/kill points. Fall back to per-op interpretation wholesale.
  if (FaultActive(cpu.fault()) || cpu.watchdog_deadline() != 0) {
    return 0;
  }
  // Cheap pre-filter: kinds that can never open a block skip the memo map.
  switch (p.ops[start].kind) {
    case OpKind::kHvc:
    case OpKind::kEret:
    case OpKind::kMemLoad:
    case OpKind::kMemStore:
    case OpKind::kOpaque:
      return 0;
    default:
      break;
  }
  CpuShard& shard = shards_[static_cast<size_t>(cpu.index())];
  const uint64_t token = ConfigToken(cpu);
  const BlockKey key{p.digest(), start};
  bool compiled_now = false;
  CompiledBlock* b = shard.last_block;
  if (b == nullptr || !(shard.last_key == key) || b->token != token) {
    // Miss in the monomorphic cache: fall back to the memo map.
    auto it = shard.blocks.find(key);
    if (it == shard.blocks.end()) {
      CompiledBlock nb;
      nb.token = token;
      Compile(cpu, p, start, end, &nb);
      it = shard.blocks.emplace(key, std::move(nb)).first;
      compiled_now = true;
    } else if (it->second.token != token) {
      // The trap configuration moved under this block (HCR/VNCR write, EL
      // change, trap_tlbi flip) -- the formed block is invalid; recompile
      // under the new token. Returning to a warm configuration restores its
      // generation (resolution-cache banks), so the recompiled block
      // revalidates on the next visit instead of thrashing.
      ++shard.stale_recompiles;
      CompiledBlock nb;
      nb.token = token;
      Compile(cpu, p, start, end, &nb);
      it->second = std::move(nb);
      compiled_now = true;
    }
    b = &it->second;
    shard.last_key = key;
    shard.last_block = b;
  }
  if (b->ops_len == 0) {
    return 0;  // memoized negative: no trap-free run opens here
  }
  if (b->ops_len > end - start) {
    return 0;  // caller's window is narrower than the formed block
  }
  if (compiled_now) {
    ++shard.blocks_formed;
  } else {
    ++shard.memo_hits;
  }
  Execute(cpu, *b, &shard);
  if (rec != nullptr) {
    rec->values = shard.values.data();
    rec->len = b->ops_len;
    rec->n_values = b->n_values;
  }
  return b->ops_len;
}

uint64_t BatchEngine::ExecSingleOp(Cpu& cpu, const Op& op) {
  // unbatched: the per-op fallback is the interpreter, charge-per-op by
  // definition; every call here is the baseline the batched path must match.
  switch (op.kind) {
    case OpKind::kSysRead:
      return cpu.SysRegRead(op.enc);
    case OpKind::kSysWrite:
      cpu.SysRegWrite(op.enc, op.value);
      return 0;
    case OpKind::kCurrentEl:
      return static_cast<uint64_t>(cpu.ReadCurrentEl());
    case OpKind::kWfi:
      cpu.Wfi();
      return 0;
    case OpKind::kBarrier:
      cpu.Barrier();
      return 0;
    case OpKind::kTlbi:
      cpu.TlbiAll();
      return 0;
    case OpKind::kCompute:
      cpu.Compute(static_cast<uint32_t>(op.value));
      return 0;
    case OpKind::kHvc:
      cpu.Hvc(op.imm);
      return 0;
    case OpKind::kEret:
      cpu.EretFromVirtualEl2();
      return 0;
    case OpKind::kMemLoad:
      return cpu.LoadVa(Va(op.addr));
    case OpKind::kMemStore:
      cpu.StoreVa(Va(op.addr), op.value);
      return 0;
    case OpKind::kOpaque:
      break;
  }
  NEVE_CHECK_MSG(false, "kOpaque ops carry caller-side semantics; the engine "
                        "cannot interpret them");
  return 0;
}

uint64_t BatchEngine::Run(Cpu& cpu, const Program& p) {
  NEVE_CHECK_MSG(p.digest() != 0, "Program::Finalize() before execution");
  CpuShard& shard = shards_.at(static_cast<size_t>(cpu.index()));
  Digest d;
  size_t i = 0;
  const size_t n = p.ops.size();
  while (i < n) {
    BlockRecord rec;
    size_t consumed = TryRunBlock(cpu, p, i, n, &rec);
    if (consumed == 0) {
      const Op& op = p.ops[i];
      uint64_t v = ExecSingleOp(cpu, op);
      if (ProducesValue(op.kind)) {
        d.Mix(v);
      }
      ++shard.ops_interpreted;
      ++i;
      continue;
    }
    // The compact value record holds exactly the produced results in
    // program order, so a linear mix matches per-op interpretation's mix
    // sequence byte for byte.
    for (size_t k = 0; k < rec.n_values; ++k) {
      d.Mix(rec.values[k]);
    }
    i += consumed;
  }
  return d.value();
}

uint64_t BatchEngine::blocks_formed() const {
  uint64_t total = 0;
  for (const CpuShard& s : shards_) {
    total += s.blocks_formed;
  }
  return total;
}

uint64_t BatchEngine::memo_hits() const {
  uint64_t total = 0;
  for (const CpuShard& s : shards_) {
    total += s.memo_hits;
  }
  return total;
}

uint64_t BatchEngine::stale_recompiles() const {
  uint64_t total = 0;
  for (const CpuShard& s : shards_) {
    total += s.stale_recompiles;
  }
  return total;
}

uint64_t BatchEngine::blocks_executed() const {
  uint64_t total = 0;
  for (const CpuShard& s : shards_) {
    total += s.blocks_executed;
  }
  return total;
}

uint64_t BatchEngine::ops_batched() const {
  uint64_t total = 0;
  for (const CpuShard& s : shards_) {
    total += s.ops_batched;
  }
  return total;
}

uint64_t BatchEngine::ops_interpreted() const {
  uint64_t total = 0;
  for (const CpuShard& s : shards_) {
    total += s.ops_interpreted;
  }
  return total;
}

}  // namespace neve::batch
