// Batched superblock execution engine (DESIGN.md §6l).
//
// The interpreter executes one guest op per Cpu method call: resolve, charge,
// attribute, bump counters, touch state. For trap-free stretches of a guest
// program that per-op overhead dominates -- the simulator analogue of staying
// in TCG when KVM could run the code natively. The BatchEngine recognizes
// *trap-free runs* of ops at their first execution, compiles each run into a
// flat action list (the resolved destination devirtualized into a direct
// register-file slot or VNCR-page offset), and thereafter executes the whole
// run as one batched step: a tight switch loop over precompiled actions, one
// aggregated cycle charge, and per-block observability deltas instead of
// per-op increments.
//
// Byte-identity is the design invariant, not an aspiration: a batched block
// must leave every observation point -- ArchStateDigest, trap counts,
// metrics, attribution buckets -- exactly where per-op interpretation would
// have left it. Three mechanisms make that hold by construction:
//
//  1. Only ops whose resolution cannot trap under the *current* trap
//     configuration enter a block. Anything that traps, faults, or changes
//     the configuration (writes landing in HCR_EL2/VNCR_EL2, TLBI with
//     trap_tlbi armed, WFI with TWI set, GIC/memory/device ops) ends block
//     formation and runs through the ordinary per-op path.
//  2. Compiled blocks are keyed by (program digest, start index, config
//     token). The token reuses the resolution cache's generation machinery
//     (ResolutionCache::config_generation): any HCR_EL2/VNCR_EL2 write --
//     cycle-charged or simulator Poke -- moves the generation, so stale
//     blocks are unreachable in O(1) and returning to a warm configuration
//     revalidates its blocks, the world-switch pattern the cache banks were
//     built for. EL and the trap_tlbi latch complete the token.
//  3. The aggregated charge splits exactly as the per-op charges would:
//     plain cycles to the CPU's current attribution frame, VNCR-redirect
//     cycles to AttrCat::kVncrRedirect, so sum(buckets) == TotalCpuCycles
//     (the cycles-conserved invariant) holds through batching.
//
// Deliberate non-identities, excluded from the definition of "observation
// point": the resolution-cache meta-counters (cpu.resolve_cache_hits/misses
// -- batched blocks do not consult the cache; precedent: the cache on/off
// oracle also excludes them) and trace-event *timestamps* (a block's VNCR
// instants all carry the block-end cycle; the event count, names and the
// trace_dropped_events metric stay identical).
//
// The engine falls back to per-op interpretation wholesale when fault
// injection is armed (injection points key off per-op cycle counts) or a
// trap-livelock watchdog deadline is set (the guest-spin check is per-op).
// All mutable state is sharded per CPU index, so SMP lanes batch
// independently with no locks and byte-identical results at every --threads
// value (smp.h rules).

#ifndef NEVE_SRC_SIM_BATCH_BATCH_H_
#define NEVE_SRC_SIM_BATCH_BATCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/arch/sysreg.h"
#include "src/mem/phys_mem.h"

namespace neve {

class Cpu;

namespace batch {

// One guest operation in the engine's program IR. Values are immediates:
// the IR has no data flow, mirroring the fuzzer's FuzzOp and the workload
// bodies (guest programs in this simulator are straight-line op sequences).
enum class OpKind : uint8_t {
  kSysRead,    // SysRegRead(enc)
  kSysWrite,   // SysRegWrite(enc, value)
  kCurrentEl,  // ReadCurrentEl()
  kWfi,        // Wfi()
  kBarrier,    // Barrier()
  kTlbi,       // TlbiAll()
  kCompute,    // Compute(value)
  kHvc,        // Hvc(imm)           -- never batched (always traps)
  kEret,       // EretFromVirtualEl2() -- never batched
  kMemLoad,    // LoadVa(addr)       -- never batched (TLB/walk state)
  kMemStore,   // StoreVa(addr, value) -- never batched
  kOpaque,     // placeholder the *caller* interprets (fuzz executor ops with
               // executor-side semantics); ends blocks, inert in ExecSingleOp
};

struct Op {
  OpKind kind = OpKind::kOpaque;
  SysReg enc = static_cast<SysReg>(0);
  uint64_t value = 0;  // write value / compute cycles
  uint64_t addr = 0;   // kMemLoad/kMemStore virtual address
  uint16_t imm = 0;    // kHvc immediate
};

// True for kinds whose per-op execution returns a value (mixed into Run()'s
// result digest and surfaced per-op through BlockRecord).
inline bool ProducesValue(OpKind k) {
  return k == OpKind::kSysRead || k == OpKind::kCurrentEl ||
         k == OpKind::kMemLoad;
}

// An op sequence plus its identity digest (the memoization key's program
// half). Finalize() after the ops are in place; the engine checks.
struct Program {
  std::vector<Op> ops;

  uint64_t digest() const { return digest_; }
  void Finalize();

 private:
  uint64_t digest_ = 0;  // 0 = not finalized (Finalize yields nonzero)
};

// Results of a batched block, valid until the next engine call on the same
// CPU. `values` is COMPACT: values[0..n_values) are the results of the
// block's ProducesValue() ops in program order, with non-producing ops
// contributing no entry. Consumers walking ops [start, start + len) keep a
// cursor into `values`, advancing it on each producing op -- exactly the
// order per-op interpretation would surface the same results.
struct BlockRecord {
  const uint64_t* values = nullptr;
  size_t len = 0;       // ops the block consumed
  size_t n_values = 0;  // produced results in `values`
};

class BatchEngine {
 public:
  // `num_cpus` sizes the per-CPU shards (Machine passes its CPU count).
  explicit BatchEngine(int num_cpus);

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  // A disabled engine never forms blocks: TryRunBlock returns 0 and Run()
  // degenerates to the per-op interpreter, which is what makes `--batch=off`
  // a pure baseline sharing every other line of code with `--batch=on`.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Tries to execute a batched block starting at p.ops[start], not running
  // past `end`. Returns the number of ops consumed (>= 2) with *rec filled,
  // or 0 when no block forms there (caller interprets p.ops[start] itself).
  // A consumed run is fully executed: charges applied, state mutated,
  // per-block observability deltas emitted.
  size_t TryRunBlock(Cpu& cpu, const Program& p, size_t start, size_t end,
                     BlockRecord* rec);

  // Executes the whole program, batching where possible, and returns an
  // order-stable digest of every value the program produced (reads and
  // CurrentEL results). Identical with the engine enabled or disabled -- the
  // byte-identity tests hang off this return value plus the Cpu-side
  // observation points.
  uint64_t Run(Cpu& cpu, const Program& p);

  // The per-op fallback: interprets one op exactly as unbatched execution
  // would, returning the produced value (0 for non-producing kinds). Public
  // so tests can drive the two paths explicitly.
  static uint64_t ExecSingleOp(Cpu& cpu, const Op& op);

  // --- engine meta-counters (host-side; aggregated over CPU shards) -------
  uint64_t blocks_formed() const;     // compilations (first sight of a run)
  uint64_t memo_hits() const;         // executions served by a warm block
  uint64_t stale_recompiles() const;  // token moved under a formed block
  uint64_t blocks_executed() const;   // total batched steps
  uint64_t ops_batched() const;       // ops executed inside batched steps
  uint64_t ops_interpreted() const;   // Run()'s per-op fallback executions

 private:
  enum class ActKind : uint8_t {
    kRegRead,    // value = regs[slot]
    kRegWrite,   // regs[slot] = imm
    kVncrRead,   // value = mem[vncr_page + slot]
    kVncrWrite,  // mem[vncr_page + slot] = imm
    kConst,      // value = imm (CurrentEL under a fixed context)
    kTlbFlush,   // TLB invalidate (charge aggregated; drop is per-action)
  };
  // Charge-only ops (barrier, compute, untrapped WFI) have no ActKind: they
  // fold into CompiledBlock::plain_cycles at compile time.

  // One devirtualized step: the resolution pipeline's verdict flattened to a
  // direct register-slot / VNCR-offset action, so the batched loop never
  // consults ResolveSysRegAccess, the resolution cache, or a vtable.
  struct Action {
    ActKind kind = ActKind::kRegRead;
    SysReg enc = static_cast<SysReg>(0);  // original encoding (VNCR tracing)
    uint32_t slot = 0;                    // register slot or VNCR offset
    uint64_t imm = 0;                     // write value / constant
  };

  // A compiled block covers ops_len ops but stores only the EFFECTFUL ones
  // as actions: charge-only ops (barrier, compute, untrapped WFI) fold into
  // plain_cycles at compile time and cost nothing per execution. ops_len ==
  // 0 marks a memoized negative (no trap-free run opens at this key).
  struct CompiledBlock {
    uint64_t token = 0;  // config token the block was compiled under
    std::vector<Action> actions;
    uint32_t ops_len = 0;   // ops the block covers (>= actions.size())
    uint32_t n_values = 0;  // ProducesValue ops among them
    uint64_t plain_cycles = 0;  // charged to the current attribution frame
    uint64_t vncr_cycles = 0;   // charged to AttrCat::kVncrRedirect
    uint32_t vncr_count = 0;    // cpu.vncr_redirects delta + instant events
  };

  struct BlockKey {
    uint64_t program_digest = 0;
    uint64_t start = 0;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      return static_cast<size_t>(k.program_digest ^
                                 (k.start * 0x9E3779B97F4A7C15ull));
    }
  };

  // Per-CPU shard: SMP lanes touch only their own index, keeping the engine
  // lock-free and deterministic (smp.h rule 2). Mutated only from batch.cc
  // on the owning lane's thread; aggregate readers run quiesced.
  struct CpuShard {
    std::unordered_map<BlockKey, CompiledBlock, BlockKeyHash> blocks;
    // Monomorphic-call-site cache: the block the last TryRunBlock resolved
    // to, keyed so a hit skips the hash lookup entirely. Pointers into
    // `blocks` stay valid across inserts (unordered_map rehash moves no
    // elements) and stale-token overwrites reuse the node, so the cached
    // pointer can dangle only on erase -- which the engine never does.
    BlockKey last_key{};
    CompiledBlock* last_block = nullptr;
    std::vector<uint64_t> values;  // BlockRecord backing store, reused
    uint64_t blocks_formed = 0;
    uint64_t memo_hits = 0;
    uint64_t stale_recompiles = 0;
    uint64_t blocks_executed = 0;
    uint64_t ops_batched = 0;
    uint64_t ops_interpreted = 0;
  };

  // The trap-configuration identity a block is valid under: the resolution
  // cache's bank generation (moves on every HCR_EL2/VNCR_EL2 write, restores
  // on return to a warm configuration) plus EL and the trap_tlbi latch.
  static uint64_t ConfigToken(const Cpu& cpu);

  // Compiles a maximal trap-free run of ops[start..end) under the current
  // configuration. Returns false when fewer than kMinBlockOps ops qualify.
  bool Compile(Cpu& cpu, const Program& p, size_t start, size_t end,
               CompiledBlock* out) const;

  // Executes a compiled block: the flattened action loop, then the
  // aggregated charges and per-block observability deltas.
  void Execute(Cpu& cpu, const CompiledBlock& b, CpuShard* shard);

  static constexpr size_t kMinBlockOps = 2;  // below this, batching is noise

  bool enabled_ = true;
  std::vector<CpuShard> shards_;
};

}  // namespace batch
}  // namespace neve

#endif  // NEVE_SRC_SIM_BATCH_BATCH_H_
