#include "src/sim/machine.h"

#include <cstdio>
#include <cstdlib>

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      fault_(config.fault),
      mem_(config.ram_size + config.host_pool_size),
      gic_(config.num_cpus),
      timer_(&gic_, config.cycles_per_timer_tick),
      host_pool_(&mem_, Pa(config.ram_size), config.host_pool_size),
      next_guest_ram_(0) {
  NEVE_CHECK(config.num_cpus > 0);
  NEVE_CHECK(IsAligned(config.ram_size, kPageSize));
  NEVE_CHECK(IsAligned(config.host_pool_size, kPageSize));
  fault_.SetObservability(&obs_);
  gic_.SetObservability(&obs_);
  gic_.SetFaultInjector(&fault_);
  cpus_.reserve(config.num_cpus);
  for (int i = 0; i < config.num_cpus; ++i) {
    cpus_.push_back(
        std::make_unique<Cpu>(i, config.features, config.cost, &mem_));
    cpus_.back()->SetObservability(&obs_);
    cpus_.back()->SetFaultInjector(&fault_);
    gic_.AttachCpu(cpus_.back().get());
  }
  // On Panic(), flush this machine's diagnostics before the abort: the
  // metric snapshot to stderr and the trace ring as a Chrome trace file
  // (path from NEVE_PANIC_TRACE, default neve_panic.trace.json). Only fires
  // when the obs layer actually collected something.
  panic_hook_id_ = AddPanicHook([this] {
    if (!obs_.enabled()) {
      return;
    }
    std::string report = obs_.metrics().TextReport();
    if (!report.empty()) {
      std::fprintf(stderr, "[neve PANIC] metric snapshot:\n%s", report.c_str());
    }
    if (obs_.tracer().size() > 0) {
      const char* path = std::getenv("NEVE_PANIC_TRACE");
      if (path == nullptr || path[0] == '\0') {
        path = "neve_panic.trace.json";
      }
      if (obs_.tracer().WriteChromeJson(path)) {
        std::fprintf(stderr, "[neve PANIC] trace ring written to %s\n", path);
      }
    }
  });
}

Machine::~Machine() { RemovePanicHook(panic_hook_id_); }

Pa Machine::AllocGuestRam(uint64_t size) {
  NEVE_CHECK(IsAligned(size, kPageSize));
  NEVE_CHECK_MSG(next_guest_ram_ + size <= config_.ram_size,
                 "guest RAM exhausted; raise MachineConfig::ram_size");
  Pa base(next_guest_ram_);
  next_guest_ram_ += size;
  return base;
}

void Machine::PropagateEventTime(Cpu& target, uint64_t raiser_cycles) {
  target.AdvanceTo(raiser_cycles + config_.ipi_wire_latency);
}

}  // namespace neve
