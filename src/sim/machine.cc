#include "src/sim/machine.h"

#include <cstdio>
#include <cstdlib>

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      fault_(config.fault),
      mem_(config.ram_size + config.host_pool_size),
      gic_(config.num_cpus),
      timer_(&gic_, config.cycles_per_timer_tick),
      batch_(config.num_cpus),
      host_pool_(&mem_, Pa(config.ram_size), config.host_pool_size),
      next_guest_ram_(0) {
  batch_.set_enabled(config.batch);
  NEVE_CHECK(config.num_cpus > 0);
  NEVE_CHECK(IsAligned(config.ram_size, kPageSize));
  NEVE_CHECK(IsAligned(config.host_pool_size, kPageSize));
  fault_.SetObservability(&obs_);
  fault_.SetAttribution(&attr_);
  gic_.SetObservability(&obs_);
  gic_.SetFaultInjector(&fault_);
  cpus_.reserve(config.num_cpus);
  for (int i = 0; i < config.num_cpus; ++i) {
    cpus_.push_back(
        std::make_unique<Cpu>(i, config.features, config.cost, &mem_));
    cpus_.back()->SetObservability(&obs_);
    cpus_.back()->SetFaultInjector(&fault_);
    attr_.AttachCpu(i);
    cpus_.back()->SetAttribution(&attr_);
    gic_.AttachCpu(cpus_.back().get());
  }
  // On Panic(), flush this machine's diagnostics before the abort: the
  // attribution rollup (always on) to stderr, then -- when the obs layer
  // collected something -- the metric snapshot and the trace ring as a
  // Chrome trace file (path from NEVE_PANIC_TRACE, default
  // neve_panic.trace.json).
  panic_hook_id_ = AddPanicHook([this] {
    if (attr_.TotalCycles() > 0) {
      std::fprintf(stderr, "[neve PANIC] cycle attribution:\n%s",
                   attr_.TextTree().c_str());
    }
    for (const CycleAttribution::FlightRecord& f : attr_.flights()) {
      std::fprintf(stderr, "[neve PANIC] flight record: %s at %llu cycles\n",
                   f.reason.c_str(),
                   static_cast<unsigned long long>(f.cycles));
    }
    if (!obs_.enabled()) {
      return;
    }
    obs_.SyncProcessCounters();
    std::string report = obs_.metrics().TextReport();
    if (!report.empty()) {
      std::fprintf(stderr, "[neve PANIC] metric snapshot:\n%s", report.c_str());
    }
    if (obs_.tracer().size() > 0) {
      // Nothing in the process calls setenv, so the read is safe even here.
      const char* path = std::getenv("NEVE_PANIC_TRACE");  // NOLINT(concurrency-mt-unsafe)
      if (path == nullptr || path[0] == '\0') {
        path = "neve_panic.trace.json";
      }
      if (obs_.tracer().WriteChromeJson(path)) {
        std::fprintf(stderr, "[neve PANIC] trace ring written to %s\n", path);
      }
    }
  });
}

Machine::~Machine() { RemovePanicHook(panic_hook_id_); }

uint64_t Machine::TotalCpuCycles() const {
  uint64_t total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu->cycles();
  }
  return total;
}

Pa Machine::AllocGuestRam(uint64_t size) {
  NEVE_CHECK(IsAligned(size, kPageSize));
  NEVE_CHECK_MSG(next_guest_ram_ + size <= config_.ram_size,
                 "guest RAM exhausted; raise MachineConfig::ram_size");
  Pa base(next_guest_ram_);
  next_guest_ram_ += size;
  return base;
}

void Machine::PropagateEventTime(Cpu& target, uint64_t raiser_cycles) {
  target.AdvanceTo(raiser_cycles + config_.ipi_wire_latency);
}

}  // namespace neve
