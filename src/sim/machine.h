// The simulated machine: physical memory, CPUs, GIC and timers.
//
// Memory map (machine physical):
//   [0,            ram_size)                guest RAM carve-outs (hyp-managed)
//   [pool_base,    pool_base + pool_size)   host page pool: page tables,
//                                           deferred access pages, etc.
//
// Cross-CPU time: each CPU has its own cycle clock; cross-CPU events (IPIs,
// device interrupts) carry the raiser's timestamp, and the receiving side
// advances its clock to max(local, raiser + wire latency) -- a conservative
// discrete-event rendezvous that keeps multi-vCPU benchmarks (Virtual IPI)
// deterministic without threads.

#ifndef NEVE_SRC_SIM_MACHINE_H_
#define NEVE_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/arch/features.h"
#include "src/cpu/cost_model.h"
#include "src/cpu/cpu.h"
#include "src/fault/fault.h"
#include "src/gic/gic.h"
#include "src/mem/phys_mem.h"
#include "src/obs/attr.h"
#include "src/obs/observability.h"
#include "src/sim/batch/batch.h"
#include "src/timer/timer.h"

namespace neve {

namespace snap {
class Serializer;  // src/snap: serializes the guest-RAM carve-out cursor
}  // namespace snap

struct MachineConfig {
  int num_cpus = 1;
  uint64_t ram_size = 256ull << 20;        // guest-assignable RAM
  uint64_t host_pool_size = 64ull << 20;   // page tables & host pages
  ArchFeatures features = ArchFeatures::Armv83Nv();
  CostModel cost = CostModel::Default();
  uint64_t cycles_per_timer_tick = 24;     // 2.4 GHz CPU, 100 MHz counter
  uint64_t ipi_wire_latency = 150;         // cycles for a cross-CPU signal
  FaultConfig fault{};                     // fault-injection campaign (off)
  // Batched superblock execution (src/sim/batch). On by default: batching is
  // the production path, byte-identical to per-op interpretation by the
  // engine's design invariant; `false` forces the pure interpreter (the
  // `--batch=off` baseline on every bench).
  bool batch = true;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  Cpu& cpu(int i) { return *cpus_.at(i); }
  PhysMem& mem() { return mem_; }
  GicV3& gic() { return gic_; }
  TimerUnit& timer() { return timer_; }

  // Host page pool (page tables, VNCR pages, shadow tables).
  PageAllocator& host_pool() { return host_pool_; }

  // Machine-wide observability: metrics registry + exit-episode tracer,
  // shared by every CPU and device model. Disabled by default; call
  // obs().set_enabled(true) before a run to collect data.
  Observability& obs() { return obs_; }
  const Observability& obs() const { return obs_; }

  // Machine-wide fault injector (config().fault); shared by every CPU, the
  // GIC and the hypervisor layers. Inert unless config.fault.enabled.
  FaultInjector& fault() { return fault_; }
  const FaultInjector& fault() const { return fault_; }

  // Machine-wide cycle attribution (src/obs/attr.h). Always on -- unlike
  // obs(), there is no enable switch: every cycle charged on every CPU lands
  // in an attribution bucket, and sum(buckets) == TotalCpuCycles() at all
  // times (the cycles-conserved invariant, asserted by attr_test.cc).
  CycleAttribution& attr() { return attr_; }
  const CycleAttribution& attr() const { return attr_; }

  // Machine-wide batched execution engine (src/sim/batch), one per-CPU shard
  // per CPU. Enabled from config().batch; a disabled engine degenerates to
  // per-op interpretation, so callers route through it unconditionally.
  batch::BatchEngine& batch_engine() { return batch_; }
  const batch::BatchEngine& batch_engine() const { return batch_; }

  // Sum of every CPU's cycle clock (the conservation invariant's right-hand
  // side).
  uint64_t TotalCpuCycles() const;

  // Guest RAM carve-outs: returns the base of a fresh region of `size` bytes.
  Pa AllocGuestRam(uint64_t size);

  // Applies the cross-CPU rendezvous rule to `target`'s clock for an event
  // raised at `raiser_cycles`.
  void PropagateEventTime(Cpu& target, uint64_t raiser_cycles);

 private:
  friend class snap::Serializer;

  MachineConfig config_;  // not-snapshotted: verified for compatibility
  // Declared before cpus_/gic_ so the pointers handed to them outlive their
  // construction and destruction.
  Observability obs_;
  CycleAttribution attr_;
  FaultInjector fault_;
  PhysMem mem_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  GicV3 gic_;
  TimerUnit timer_;
  batch::BatchEngine batch_;
  PageAllocator host_pool_;
  uint64_t next_guest_ram_;  // single-mutator: snap restore runs quiesced
  int panic_hook_id_ = 0;
};

}  // namespace neve

#endif  // NEVE_SRC_SIM_MACHINE_H_
