#include "src/sim/smp.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "src/base/status.h"
#include "src/fault/guest_fault.h"
#include "src/sim/machine.h"

namespace neve {
namespace {

thread_local SmpEngine* tls_engine = nullptr;
thread_local int tls_lane = -1;

}  // namespace

SmpEngine* SmpEngine::Current() { return tls_engine; }
int SmpEngine::CurrentLane() { return tls_lane; }

SmpEngine::SmpEngine(Machine* machine, int num_lanes, int threads)
    : machine_(machine),
      num_lanes_(num_lanes),
      free_slots_(std::max(1, threads)),
      lanes_(static_cast<size_t>(num_lanes)) {
  // host-invariant: engine construction parameters come from the embedding
  // harness, not from guest state.
  NEVE_CHECK(machine != nullptr && num_lanes > 0);
  NEVE_CHECK(num_lanes <= machine->num_cpus());
}

SmpEngine::~SmpEngine() {
  for (Lane& lane : lanes_) {
    if (lane.thread.joinable()) {
      lane.thread.join();
    }
  }
}

void SmpEngine::Run(LaneBody body) {
  // host-invariant: the obs layer's recorded values are unsynchronized by
  // design (DESIGN.md 6i); running lanes in parallel underneath it would
  // race. SMP runs that need metrics use the cooperative path instead.
  NEVE_CHECK_MSG(!machine_->obs().enabled(),
                 "SmpEngine requires the observability layer disabled");
  // host-invariant: fault injection draws from a seeded stream keyed by call
  // order, which lane parallelism would permute.
  NEVE_CHECK_MSG(!machine_->config().fault.enabled,
                 "SmpEngine is incompatible with fault injection");
  // host-invariant: Run is single-shot by construction.
  NEVE_CHECK_MSG(!body_, "SmpEngine::Run called twice");
  body_ = std::move(body);
  {
    std::unique_lock<std::mutex> lk(mu_);
    lanes_[0].state = LaneState::kRunnable;
    lanes_[0].thread = std::thread([this] { LaneMain(0); });
    cv_.wait(lk, [&] {
      for (const Lane& lane : lanes_) {
        if (lane.state != LaneState::kFinished) {
          return false;
        }
      }
      return true;
    });
  }
  for (Lane& lane : lanes_) {
    if (lane.thread.joinable()) {
      lane.thread.join();
    }
  }
  for (Lane& lane : lanes_) {
    if (lane.error) {
      std::rethrow_exception(lane.error);
    }
  }
}

void SmpEngine::LaneMain(int lane) {
  tls_engine = this;
  tls_lane = lane;
  Lane& l = lanes_[lane];
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return free_slots_ > 0 && !ConfinementPendingLocked(); });
    --free_slots_;
    l.holds_slot = true;
    l.state = LaneState::kRunning;
  }
  try {
    body_(lane);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    l.error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    l.state = LaneState::kFinished;
    l.ever_blocked = true;
    if (l.holds_slot) {
      l.holds_slot = false;
      ++free_slots_;
    }
    AdmitLocked();
    MergeIfQuiescentLocked();
    cv_.notify_all();
  }
  tls_engine = nullptr;
  tls_lane = -1;
}

void SmpEngine::AdmitLocked() {
  while (next_to_admit_ < num_lanes_ &&
         lanes_[next_to_admit_ - 1].ever_blocked) {
    int lane = next_to_admit_++;
    lanes_[lane].state = LaneState::kRunnable;
    lanes_[lane].thread = std::thread([this, lane] { LaneMain(lane); });
  }
}

bool SmpEngine::ConfinementPendingLocked() const {
  if (confinement_active_) {
    return true;
  }
  for (const Lane& lane : lanes_) {
    if (lane.state == LaneState::kConfining) {
      return true;
    }
  }
  return false;
}

void SmpEngine::MergeIfQuiescentLocked() {
  if (ConfinementPendingLocked() || next_to_admit_ < num_lanes_) {
    return;
  }
  bool any_blocked = false;
  for (const Lane& lane : lanes_) {
    switch (lane.state) {
      case LaneState::kBlocked:
        if (lane.fault_kind != nullptr) {
          // Fault-woken but not yet scheduled by the OS: logically this lane
          // is already running (its wait predicate holds), so the system is
          // not quiescent. Without this, a merge racing the wake-up would
          // misclassify the lane as deadlocked and overwrite its pending
          // fault kind -- an outcome dependent on host scheduling latency.
          return;
        }
        any_blocked = true;
        break;
      case LaneState::kFinished:
        break;
      default:
        return;  // someone can still run: not quiescent
    }
  }
  if (!any_blocked) {
    // All lanes finished; leftover deferred events have no receiver (their
    // target vCPUs' runs are over) and are dropped -- identically at every
    // thread count, since quiescence is a logical-state property.
    deferred_.clear();
    return;
  }

  // Apply the cross-lane events accumulated since the last merge, in an
  // order derived purely from simulated time: raiser cycle count, then
  // raiser lane, then the raiser's local sequence number. No lane is
  // executing, so the applies own the whole machine.
  std::stable_sort(deferred_.begin(), deferred_.end(),
                   [](const Deferred& a, const Deferred& b) {
                     if (a.raiser_cycles != b.raiser_cycles) {
                       return a.raiser_cycles < b.raiser_cycles;
                     }
                     if (a.raiser_lane != b.raiser_lane) {
                       return a.raiser_lane < b.raiser_lane;
                     }
                     return a.seq < b.seq;
                   });
  for (Deferred& d : deferred_) {
    d.apply();
  }
  deferred_.clear();

  bool any_woken = false;
  for (Lane& lane : lanes_) {
    if (lane.state != LaneState::kBlocked) {
      continue;
    }
    if (!lane.pred || lane.pred()) {
      lane.state = LaneState::kRunnable;
      any_woken = true;
    }
  }
  if (any_woken) {
    cv_.notify_all();
    return;
  }
  // Every lane is parked on a predicate no future event can satisfy (there
  // are no runnable lanes left to produce one): a guest-level deadlock.
  // Confine it to the VMs involved instead of hanging the simulation.
  for (Lane& lane : lanes_) {
    if (lane.state == LaneState::kBlocked) {
      lane.fault_kind = "smp_deadlock";
    }
  }
  cv_.notify_all();
}

void SmpEngine::SetWaitPred(int lane, WaitPred pred) {
  std::lock_guard<std::mutex> lk(mu_);
  lanes_[lane].pred = std::move(pred);
}

void SmpEngine::Wait(int lane) {
  std::unique_lock<std::mutex> lk(mu_);
  Lane& l = lanes_[lane];
  l.in_wait = true;
  if (l.holds_slot) {
    l.holds_slot = false;
    ++free_slots_;
  }
  l.state = LaneState::kBlocked;
  l.ever_blocked = true;
  AdmitLocked();
  MergeIfQuiescentLocked();
  cv_.notify_all();

  cv_.wait(lk, [&] {
    if (l.fault_kind != nullptr) {
      return true;
    }
    return l.state == LaneState::kRunnable && free_slots_ > 0 &&
           !ConfinementPendingLocked();
  });
  l.in_wait = false;
  l.pred = nullptr;
  if (l.fault_kind != nullptr) {
    const char* kind = l.fault_kind;
    l.fault_kind = nullptr;
    // Unwinding runs on this thread without a slot; the confinement barrier
    // below serializes it against everything else.
    l.state = LaneState::kRunning;
    lk.unlock();
    RaiseGuestFault(kind,
                    kind == std::string_view("smp_deadlock")
                        ? "SMP rendezvous deadlock: every vCPU is parked on a "
                          "predicate no sibling can ever satisfy"
                        : "SMP rendezvous torn down: a sibling vCPU's "
                          "confined fault killed the VM");
  }
  --free_slots_;
  l.holds_slot = true;
  l.state = LaneState::kRunning;
}

void SmpEngine::Defer(int target_lane, uint64_t raiser_cycles,
                      DeferredApply apply) {
  // host-invariant: Defer is only reached from lane threads (the hypervisor
  // checks Current() before routing here).
  NEVE_CHECK(tls_lane >= 0 && tls_engine == this);
  std::lock_guard<std::mutex> lk(mu_);
  deferred_.push_back(Deferred{.raiser_cycles = raiser_cycles,
                               .raiser_lane = tls_lane,
                               .seq = lanes_[tls_lane].defer_seq++,
                               .target_lane = target_lane,
                               .apply = std::move(apply)});
}

void SmpEngine::EnterConfinement(int lane) {
  std::unique_lock<std::mutex> lk(mu_);
  Lane& l = lanes_[lane];
  l.state = LaneState::kConfining;
  cv_.notify_all();
  cv_.wait(lk, [&] {
    if (confinement_active_) {
      return false;
    }
    for (int i = 0; i < num_lanes_; ++i) {
      if (i == lane) {
        continue;
      }
      LaneState s = lanes_[i].state;
      if (s == LaneState::kRunning) {
        return false;  // let it reach its own block/finish/fault point
      }
      if (s == LaneState::kConfining && i < lane) {
        return false;  // lowest-index confiner goes first (determinism)
      }
    }
    return true;
  });
  confinement_active_ = true;
}

void SmpEngine::Quiesce(int lane, const std::function<void()>& fn) {
  std::unique_lock<std::mutex> lk(mu_);
  Lane& l = lanes_[lane];
  l.state = LaneState::kConfining;
  cv_.notify_all();
  // Same exclusive-ownership predicate as EnterConfinement: no lane is
  // executing, and lower-index confiners go first (determinism). Runnable
  // lanes cannot start while a confiner is pending (slot waits check
  // ConfinementPendingLocked), so fn owns the whole machine.
  cv_.wait(lk, [&] {
    if (confinement_active_) {
      return false;
    }
    for (int i = 0; i < num_lanes_; ++i) {
      if (i == lane) {
        continue;
      }
      LaneState s = lanes_[i].state;
      if (s == LaneState::kRunning) {
        return false;
      }
      if (s == LaneState::kConfining && i < lane) {
        return false;
      }
    }
    return true;
  });
  confinement_active_ = true;
  lk.unlock();
  fn();
  lk.lock();
  confinement_active_ = false;
  l.state = LaneState::kRunning;
  cv_.notify_all();
}

void SmpEngine::ExitConfinement(int lane) {
  std::unique_lock<std::mutex> lk(mu_);
  Lane& l = lanes_[lane];
  // The confined VM's rendezvous can never complete: every lane still parked
  // in a wait dies with it -- deterministically, since which lanes are
  // parked at a merge/confinement point is a logical-state property.
  for (int i = 0; i < num_lanes_; ++i) {
    if (i == lane) {
      continue;
    }
    Lane& sibling = lanes_[i];
    if (sibling.state == LaneState::kBlocked ||
        (sibling.state == LaneState::kRunnable && sibling.in_wait)) {
      // A sibling that already carries a fault kind (e.g. "smp_deadlock"
      // assigned at a merge point) was fault-woken before this confinement;
      // it keeps its original, deterministically-assigned kind. Overwriting
      // would make the reported fault depend on which thread the OS
      // scheduled first.
      if (sibling.fault_kind == nullptr) {
        sibling.fault_kind = "smp_sibling_fault";
      }
    }
  }
  // Pending cross-lane events die with the VM they were bound for.
  deferred_.clear();
  confinement_active_ = false;
  l.ever_blocked = true;
  AdmitLocked();
  if (!l.holds_slot) {
    // Sibling-fault lanes released their slot when they parked; take one
    // back before resuming the unwound body.
    cv_.notify_all();
    cv_.wait(lk, [&] { return free_slots_ > 0; });
    --free_slots_;
    l.holds_slot = true;
  }
  l.state = LaneState::kRunning;
  cv_.notify_all();
}

}  // namespace neve
