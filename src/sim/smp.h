// Deterministic SMP execution engine: per-vCPU run loops on real host
// threads, byte-identical at every --threads value.
//
// The simulator's cooperative model runs cross-CPU work synchronously on the
// sender's thread (a physical SGI executes the receiver's delivery path
// inline). That is deterministic but serial. The engine keeps the
// determinism while adding real host parallelism, on three rules:
//
//  1. One host thread per *lane* (lane = pcpu = vCPU index), but at most
//     `threads` lanes execute simulated code at once -- a counting slot pool
//     caps concurrency without changing any observable result, because of
//     rules 2 and 3.
//
//  2. Lanes only touch their own CPU/vCPU state while running. Every
//     cross-lane mutation (virq enqueue, sibling TLB drop, event-time
//     propagation) is *deferred*: recorded with the raiser's simulated-cycle
//     timestamp and applied later, never executed from the raiser's thread.
//
//  3. Lanes rendezvous through SmpEngine::Wait (reached via the paravirtual
//     kHvcSmpWait hypercall). When every admitted lane is blocked or
//     finished -- quiescence, a property of *logical* lane states and
//     therefore identical at every thread count -- one coordinator applies
//     all deferred events in (raiser_cycles, raiser_lane, seq) order, then
//     wakes the lanes whose wait predicates became true. All interleaving
//     freedom is thus invisible: state only crosses lanes at merge points,
//     in an order derived from simulated time.
//
// Lane admission is gated: lane N+1's thread starts only after lane N has
// blocked, finished, or faulted at least once. Multi-vCPU boot has real
// cross-lane data dependencies (the booter lane constructs the guest
// hypervisor object its siblings attach to); admission gating makes the
// construction happen-before every sibling without per-object locks.
//
// Guest-fault confinement (a GuestFaultException unwinding to
// HostKvm::RunVcpu) is serialized through Enter/ExitConfinement: the
// confining lane waits until no sibling is executing, tears the VM down
// exclusively, then fails every lane still parked in a wait -- their
// rendezvous can never complete -- with a confined "smp_sibling_fault".
//
// Observability and fault injection must be off while the engine runs (the
// obs/metrics layer is deliberately unsynchronized, DESIGN.md 6i/6j); the
// always-on cycle attribution is safe because its hot-path state is sharded
// per CPU. SMP fuzzing keeps the cooperative path for exactly this reason.
//
// Internal synchronization note: the engine uses std::mutex +
// std::condition_variable directly rather than neve::Mutex -- lanes park on
// condition variables, which neve::Mutex does not provide. Every field below
// is mutated only from this translation unit under mu_; the lock-order
// detector does not need to see mu_ because the engine never calls back into
// simulated code while holding it (deferred applies run at quiescence, when
// no simulated code is executing anywhere).

#ifndef NEVE_SRC_SIM_SMP_H_
#define NEVE_SRC_SIM_SMP_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neve {

class Machine;

class SmpEngine {
 public:
  using LaneBody = std::function<void(int lane)>;
  using WaitPred = std::function<bool()>;
  using DeferredApply = std::function<void()>;

  // `threads` is the *slot* count: how many lanes may execute simulated code
  // concurrently. Clamped to at least 1; values above num_lanes are harmless.
  SmpEngine(Machine* machine, int num_lanes, int threads);
  ~SmpEngine();

  SmpEngine(const SmpEngine&) = delete;
  SmpEngine& operator=(const SmpEngine&) = delete;

  // Runs body(lane) for every lane to completion and joins all threads.
  // Callable once. Rethrows the lowest-numbered lane's escaped (non-guest-
  // fault) exception, mirroring ParallelFor.
  void Run(LaneBody body);

  // --- called from lane threads --------------------------------------------

  // Registers the predicate the calling lane's next Wait() blocks on. The
  // predicate is evaluated by the merge coordinator at quiescence (all lanes
  // parked), so it may read any lane's simulated state.
  void SetWaitPred(int lane, WaitPred pred);

  // Parks the calling lane until its registered predicate holds at a merge
  // point. Raises a confined guest fault ("smp_deadlock") when no parked
  // lane's predicate can ever be satisfied, or ("smp_sibling_fault") when a
  // sibling's confined fault tears the rendezvous down.
  void Wait(int lane);

  // Queues a cross-lane mutation, applied at the next merge in deterministic
  // (raiser_cycles, raiser_lane, seq) order. Must be called from a lane
  // thread. The closure must not block or re-enter the engine.
  void Defer(int target_lane, uint64_t raiser_cycles, DeferredApply apply);

  // Guest-fault confinement barrier (see file comment). Enter blocks until
  // this lane has exclusive ownership of the machine; Exit fails parked
  // siblings, drops pending deferred events, and resumes normal scheduling.
  void EnterConfinement(int lane);
  void ExitConfinement(int lane);

  // Runs `fn` with exclusive ownership of the machine, non-destructively:
  // blocks until no sibling lane is executing simulated code (the same
  // rendezvous EnterConfinement uses), runs fn on the calling lane's thread,
  // then resumes normal scheduling. Unlike the confinement pair it does not
  // fail parked waiters or drop deferred events -- siblings stay parked on
  // their predicates throughout. Used for host-side whole-machine work at a
  // rendezvous point (e.g. taking or applying a snapshot while the siblings
  // wait for a GO IPI). `fn` must not block or re-enter the engine.
  void Quiesce(int lane, const std::function<void()>& fn);

  // The engine driving the calling thread, or null on threads not owned by
  // an engine (the cooperative path checks this to stay synchronous).
  static SmpEngine* Current();
  // The calling thread's lane index; -1 off-engine.
  static int CurrentLane();

  int num_lanes() const { return num_lanes_; }

 private:
  enum class LaneState : uint8_t {
    kNotAdmitted,  // thread not started yet (admission gate)
    kRunnable,     // ready to run, waiting for a free slot
    kRunning,      // executing simulated code (holds a slot)
    kBlocked,      // parked in Wait at a rendezvous
    kConfining,    // unwinding / tearing down a VM after a guest fault
    kFinished,     // lane body returned
  };

  struct Lane {
    LaneState state = LaneState::kNotAdmitted;
    bool ever_blocked = false;  // admission gate for the next lane
    bool holds_slot = false;
    bool in_wait = false;  // between Wait() entry and exit
    const char* fault_kind = nullptr;  // pending fault to raise on wake
    uint64_t defer_seq = 0;            // lane-local tiebreaker for Defer
    WaitPred pred;
    std::exception_ptr error;
    std::thread thread;
  };

  struct Deferred {
    uint64_t raiser_cycles = 0;
    int raiser_lane = -1;
    uint64_t seq = 0;
    int target_lane = -1;
    DeferredApply apply;
  };

  void LaneMain(int lane);
  // Starts threads for every lane whose predecessor has blocked at least
  // once (the admission gate).
  void AdmitLocked();
  // If every admitted lane is parked or finished (and all lanes admitted),
  // applies deferred events in deterministic order and wakes satisfied
  // waiters; unsatisfiable waits become "smp_deadlock" faults.
  void MergeIfQuiescentLocked();
  bool ConfinementPendingLocked() const;

  Machine* machine_;
  int num_lanes_;

  std::mutex mu_;
  std::condition_variable cv_;
  int free_slots_;
  int next_to_admit_ = 1;  // lane 0 is admitted by Run()
  bool confinement_active_ = false;
  std::vector<Lane> lanes_;
  std::vector<Deferred> deferred_;
  LaneBody body_;
};

}  // namespace neve

#endif  // NEVE_SRC_SIM_SMP_H_
