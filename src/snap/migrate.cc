#include "src/snap/migrate.h"

#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/mem/phys_mem.h"
#include "src/sim/machine.h"

namespace neve {
namespace snap {
namespace {

// Wire cost of one page: its contents plus the 8-byte page index.
constexpr uint64_t kPageWireBytes = kPageSize + 8;

}  // namespace

MigrationEngine::MigrationEngine(const MigrateConfig& cfg) : cfg_(cfg) {
  NEVE_CHECK_MSG(cfg_.precopy_rounds >= 0, "negative pre-copy round count");
  NEVE_CHECK_MSG(cfg_.max_attempts >= 1, "migration needs at least 1 attempt");
  NEVE_CHECK_MSG(cfg_.link.bandwidth_bytes_per_cycle > 0,
                 "migration link needs positive bandwidth");
  fault_.Configure(cfg_.fault);
}

void MigrationEngine::Event(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  stats_.events.emplace_back(buf);
}

bool MigrationEngine::Pulse(uint64_t step, const SnapTargets& targets) {
  NEVE_CHECK_MSG(targets.machine != nullptr, "migration pulse without machine");
  PhysMem& mem = targets.machine->mem();
  switch (state_) {
    case State::kDone:
      return false;
    case State::kBackoff:
      if (backoff_left_ > 0) {
        --backoff_left_;
        return false;
      }
      state_ = State::kStart;
      [[fallthrough]];
    case State::kStart: {
      ++stats_.attempts;
      round_ = 0;
      pending_.clear();
      if (!mem.dirty_tracking()) {
        mem.SetDirtyTracking(true);
      }
      // A fresh attempt re-sends everything, so the bitmap restarts clean.
      (void)mem.DrainDirtyPages();
      for (uint64_t p : mem.ResidentPageIndices()) {
        pending_.insert(p);
      }
      Event("attempt %d: baseline round, %zu resident pages", stats_.attempts,
            pending_.size());
      state_ = State::kPrecopy;
      SendRound(step, mem);
      return false;
    }
    case State::kPrecopy:
      if (round_ < 1 + cfg_.precopy_rounds) {
        SendRound(step, mem);
        return false;
      }
      StopCopy(step, targets);
      return stats_.committed;
  }
  return false;
}

void MigrationEngine::SendRound(uint64_t step, PhysMem& mem) {
  ++round_;
  ++stats_.rounds_sent;
  for (uint64_t p : mem.DrainDirtyPages()) {
    pending_.insert(p);
  }
  const uint64_t n = pending_.size();
  if (fault_.ShouldInject(FaultPoint::kMigrateLinkDrop, /*cpu=*/0, step,
                          /*detail=*/n)) {
    Event("round %d: link dropped, %llu pages deferred", round_,
          static_cast<unsigned long long>(n));
    return;  // the pages stay pending and ride the next round
  }
  const uint64_t bytes = n * kPageWireBytes;
  stats_.pages_sent += n;
  stats_.bytes_sent += bytes;
  stats_.transfer_cycles += bytes / cfg_.link.bandwidth_bytes_per_cycle;
  pending_.clear();
  Event("round %d: sent %llu pages", round_,
        static_cast<unsigned long long>(n));
}

void MigrationEngine::StopCopy(uint64_t step, const SnapTargets& targets) {
  PhysMem& mem = targets.machine->mem();
  for (uint64_t p : mem.DrainDirtyPages()) {
    pending_.insert(p);
  }
  if (fault_.ShouldInject(FaultPoint::kMigrateSourceCrash, /*cpu=*/0, step)) {
    Rollback(step, "source migration process crashed before stop-copy");
    return;
  }
  std::vector<uint8_t> stream;
  Status cap = Serializer::CaptureBytes(targets, &stream);
  if (!cap.ok()) {
    Rollback(step, cap.ToString().c_str());
    return;
  }
  // Stop-copy transfers the final dirty delta plus everything in the stream
  // that is not RAM (CPU/hyp/device state, section framing); the rest of RAM
  // already crossed during pre-copy.
  const uint64_t pages_in_image = mem.ResidentPageIndices().size();
  const uint64_t ram_bytes = pages_in_image * kPageWireBytes;
  const uint64_t non_ram =
      stream.size() > ram_bytes ? stream.size() - ram_bytes : stream.size();
  stats_.stopcopy_bytes = pending_.size() * kPageWireBytes + non_ram;
  stats_.bytes_sent += stats_.stopcopy_bytes;
  const double wire_cycles =
      stats_.stopcopy_bytes / cfg_.link.bandwidth_bytes_per_cycle;
  stats_.transfer_cycles += wire_cycles;

  if (fault_.ShouldInject(FaultPoint::kMigrateDestOom, /*cpu=*/0, step)) {
    Rollback(step, "destination out of memory receiving the stream");
    return;
  }
  if (fault_.ShouldInject(FaultPoint::kMigrateStreamTruncation, /*cpu=*/0,
                          step)) {
    stream.resize(stream.size() - stream.size() / 4);
    Event("stop-copy: stream truncated on the wire (%zu bytes survive)",
          stream.size());
  }
  if (fault_.ShouldInject(FaultPoint::kMigratePageCorruption, /*cpu=*/0,
                          step) &&
      !stream.empty()) {
    const uint8_t flip = static_cast<uint8_t>(fault_.CorruptBits() | 1u);
    stream[stream.size() / 2] ^= flip;
    Event("stop-copy: byte %zu corrupted on the wire", stream.size() / 2);
  }

  Image img;
  Status dec = Serializer::Decode(stream, &img);
  if (!dec.ok()) {
    // The destination detected the damage and discarded its half-built
    // image; the source never stopped. Exactly the failure-atomic outcome.
    Rollback(step, dec.ToString().c_str());
    return;
  }
  if (fault_.ShouldInject(FaultPoint::kMigrateCommitRace, /*cpu=*/0, step)) {
    // The destination verified the image but its ACK never arrived. The
    // source must assume failure (and keep the VM); the destination, seeing
    // no source handover, discards. Conservative on both sides: never a
    // fork.
    Rollback(step, "commit ACK lost; destination discarded verified image");
    return;
  }

  image_ = std::move(img);
  stats_.committed = true;
  stats_.commit_step = step;
  stats_.downtime_cycles =
      wire_cycles + 2.0 * static_cast<double>(cfg_.link.rtt_cycles);
  state_ = State::kDone;
  Event("committed at step %llu: stop-copy %llu bytes (%llu dirty pages), "
        "downtime %.0f cycles",
        static_cast<unsigned long long>(step),
        static_cast<unsigned long long>(stats_.stopcopy_bytes),
        static_cast<unsigned long long>(pending_.size()),
        stats_.downtime_cycles);
}

void MigrationEngine::Rollback(uint64_t step, const char* why) {
  Event("attempt %d rolled back at step %llu: %s", stats_.attempts,
        static_cast<unsigned long long>(step), why);
  pending_.clear();
  if (stats_.attempts >= cfg_.max_attempts) {
    stats_.gave_up = true;
    state_ = State::kDone;
    Event("retries exhausted after %d attempts; VM stays on the source",
          stats_.attempts);
    return;
  }
  backoff_left_ = cfg_.backoff_base_steps << stats_.attempts;
  state_ = State::kBackoff;
  Event("backing off %llu steps before attempt %d",
        static_cast<unsigned long long>(backoff_left_), stats_.attempts + 1);
}

Status RunMigration(const SnapSpec& spec, const MigrateConfig& cfg,
                    MigrationOutcome* out) {
  NEVE_CHECK_MSG(spec.num_cpus == 1,
                 "live migration drives the single-vCPU workload");
  SnapRunner source(spec);
  MigrationEngine engine(cfg);
  SnapHooks hooks;
  const uint64_t interval =
      cfg.pulse_interval_steps == 0 ? 1 : cfg.pulse_interval_steps;
  hooks.on_step = [&engine, interval](uint64_t step, const SnapTargets& t) {
    if (step % interval != 0) {
      return false;
    }
    return engine.Pulse(step, t);
  };
  Status src = source.Run(hooks);
  if (!src.ok()) {
    return src;
  }
  out->stats = engine.stats();
  out->source_end = source.End();
  out->vm_on_dest = engine.stats().committed;
  if (out->vm_on_dest) {
    SnapRunner dest(spec);
    SnapHooks resume;
    resume.resume_image = &engine.image();
    resume.resume_step = engine.stats().commit_step;
    Status dst = dest.Run(resume);
    if (!dst.ok()) {
      return dst;
    }
    out->dest_end = dest.End();
  }
  return Status::Ok();
}

}  // namespace snap
}  // namespace neve
