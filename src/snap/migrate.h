// Failure-atomic live migration of a snapshotted stack over a lossy link.
//
// The protocol is the classic pre-copy scheme, driven synchronously from the
// workload's step loop (a "pulse" between guest steps, costing zero guest
// cycles):
//
//   1. Baseline round: every resident physical page crosses the link; dirty
//      tracking starts.
//   2. Pre-copy rounds: each pulse drains the dirty-page bitmap and sends the
//      delta. A dropped link defers the round's pages to the next one.
//   3. Stop-copy: the source captures the full snapshot stream, sends the
//      final dirty delta plus the non-RAM state, and the destination decodes
//      and verifies it (magic, version, per-section digests, trailing-byte
//      checks). Downtime is the stop-copy transfer plus one commit-handshake
//      round trip, computed analytically from the link model.
//   4. Commit handshake: only a fully verified destination image plus a
//      delivered ACK commits. Every failure -- truncated stream, corrupted
//      page, destination OOM, source-side tool crash, lost ACK -- rolls the
//      attempt back: the destination discards its image, the source keeps
//      running, and the engine retries after bounded exponential backoff.
//      Exhausted attempts degrade to "the VM stays on the source". At no
//      point can the VM be lost (neither side has it) or forked (both sides
//      run it): the source only stops on a committed handshake, and the
//      destination only starts from a committed image.
//
// Faults are injected from the engine's own FaultInjector (the kMigrate*
// points), never the machine's, so the guest's execution -- and therefore
// the bit-identity oracle -- is untouched by migration-layer chaos.

#ifndef NEVE_SRC_SNAP_MIGRATE_H_
#define NEVE_SRC_SNAP_MIGRATE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/snap/snap_stack.h"
#include "src/snap/snapshot.h"

namespace neve {
namespace snap {

// The simulated migration link.
struct LinkConfig {
  double bandwidth_bytes_per_cycle = 64.0;
  uint64_t rtt_cycles = 2000;  // one way it's rtt/2; the commit ACK costs rtt
};

struct MigrateConfig {
  int precopy_rounds = 3;        // dirty-delta rounds after the baseline
  int max_attempts = 4;          // attempts before the VM stays on the source
  uint64_t backoff_base_steps = 1;  // backoff after attempt k: base << k
  uint64_t pulse_interval_steps = 1;  // workload steps between protocol
                                      // pulses: more steps = more dirty
                                      // pages per round (bench dial)
  LinkConfig link;
  FaultConfig fault;             // for the engine's own injector (kMigrate*)
};

struct MigrationStats {
  bool committed = false;
  bool gave_up = false;          // retries exhausted; VM stays on the source
  int attempts = 0;              // attempts started
  uint64_t rounds_sent = 0;      // pre-copy rounds attempted (incl. dropped)
  uint64_t pages_sent = 0;       // pages that crossed the link
  uint64_t bytes_sent = 0;       // total bytes across all attempts
  uint64_t stopcopy_bytes = 0;   // last attempt's stop-copy transfer
  double downtime_cycles = 0;    // last attempt: stop-copy + commit handshake
  double transfer_cycles = 0;    // total link time across all attempts
  uint64_t commit_step = kNoStep;
  std::vector<std::string> events;
};

class MigrationEngine {
 public:
  explicit MigrationEngine(const MigrateConfig& cfg);

  // The workload pulse (SnapHooks::on_step). Advances the protocol by one
  // round (or backoff tick) per call; returns true exactly once, when a
  // commit handshake completes -- the source's signal to stop executing.
  bool Pulse(uint64_t step, const SnapTargets& targets);

  const MigrationStats& stats() const { return stats_; }
  // The destination's verified image. Valid only after a committed Pulse.
  const Image& image() const { return image_; }
  FaultInjector& fault() { return fault_; }

 private:
  enum class State { kStart, kPrecopy, kBackoff, kDone };

  void Event(const char* fmt, ...);
  void SendRound(uint64_t step, PhysMem& mem);
  void StopCopy(uint64_t step, const SnapTargets& targets);
  void Rollback(uint64_t step, const char* why);

  MigrateConfig cfg_;
  FaultInjector fault_;
  MigrationStats stats_;
  Image image_;

  State state_ = State::kStart;
  int round_ = 0;                  // rounds sent in the current attempt
  uint64_t backoff_left_ = 0;      // pulses to skip before the next attempt
  std::set<uint64_t> pending_;     // pages owed to the destination
};

// One full source-vs-destination migration experiment.
struct MigrationOutcome {
  MigrationStats stats;
  bool vm_on_dest = false;  // where the VM ended up running
  EndState source_end;      // the source stack after its run
  EndState dest_end;        // valid only when vm_on_dest
};

// Runs `spec`'s workload on a source stack under a migration engine; on
// commit, boots a destination stack, applies the transferred image at the
// commit step, and finishes the workload there. The failure-atomicity
// invariant callers check: the live side's EndState equals an unmigrated
// control run's, and exactly one side is live.
Status RunMigration(const SnapSpec& spec, const MigrateConfig& cfg,
                    MigrationOutcome* out);

}  // namespace snap
}  // namespace neve

#endif  // NEVE_SRC_SNAP_MIGRATE_H_
