#include "src/snap/snap_stack.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/base/digest.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/gic/gic.h"
#include "src/hyp/guest_kvm.h"
#include "src/sim/smp.h"

namespace neve {
namespace snap {
namespace {

constexpr uint32_t kSnapSgi = 5;

uint64_t RamDigest(PhysMem& mem) {
  Digest d;
  std::array<uint8_t, kPageSize> page;
  for (uint64_t idx : mem.ResidentPageIndices()) {
    d.Mix(idx);
    NEVE_CHECK(mem.ReadPage(idx, &page));
    for (size_t off = 0; off < page.size(); off += 8) {
      uint64_t word = 0;
      std::memcpy(&word, page.data() + off, 8);
      d.Mix(word);
    }
  }
  return d.value();
}

void MixVm(Digest& d, Vm& vm) {
  d.Mix(vm.generation());
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& vc = vm.vcpu(i);
    d.Mix(vc.ContextDigest());
    d.Mix(static_cast<uint64_t>(vc.mode));
    d.Mix(vc.parked ? 1 : 0);
    d.Mix(static_cast<uint64_t>(vc.loaded_on_pcpu));
    d.Mix(vc.nested_hcr);
    d.Mix(vc.virqs_enqueued);
    d.Mix(vc.mmio_result);
    d.Mix(vc.exits);
    d.Mix(vc.vel2_deliveries);
    d.Mix(vc.pending_virq.size());
    for (uint32_t q : vc.pending_virq) {
      d.Mix(q);
    }
  }
}

}  // namespace

std::string ToString(const EndState& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "state=%016llx cycles=%016llx traps=%016llx attr=%016llx "
                "ram=%016llx vcpu=%016llx fault=%016llx",
                static_cast<unsigned long long>(e.state_digest),
                static_cast<unsigned long long>(e.cycles_digest),
                static_cast<unsigned long long>(e.trap_digest),
                static_cast<unsigned long long>(e.attr_digest),
                static_cast<unsigned long long>(e.ram_digest),
                static_cast<unsigned long long>(e.vcpu_digest),
                static_cast<unsigned long long>(e.fault_digest));
  return buf;
}

EndState CaptureEndState(ArmStack& stack) {
  Machine& m = stack.machine();
  EndState e;
  {
    Digest d;
    for (int i = 0; i < m.num_cpus(); ++i) {
      d.Mix(m.cpu(i).ArchStateDigest());
      d.Mix(static_cast<uint64_t>(m.cpu(i).current_el()));
    }
    e.state_digest = d.value();
  }
  {
    Digest d;
    for (int i = 0; i < m.num_cpus(); ++i) {
      d.Mix(m.cpu(i).cycles());
    }
    d.Mix(m.TotalCpuCycles());
    e.cycles_digest = d.value();
  }
  {
    Digest d;
    for (int i = 0; i < m.num_cpus(); ++i) {
      const CpuTrace& tr = m.cpu(i).trace();
      d.Mix(tr.traps_to_el2());
      d.Mix(tr.hvc_traps());
      d.Mix(tr.sysreg_traps());
      d.Mix(tr.eret_traps());
      d.Mix(tr.abort_traps());
      d.Mix(tr.irq_exits());
    }
    e.trap_digest = d.value();
  }
  {
    Digest d;
    for (const AttrBucket& b : m.attr().Snapshot()) {
      d.Mix(static_cast<uint64_t>(static_cast<int64_t>(b.vm)));
      d.Mix(static_cast<uint64_t>(static_cast<int64_t>(b.vcpu)));
      d.Mix(static_cast<uint64_t>(b.layer));
      d.Mix(static_cast<uint64_t>(b.cat));
      d.Mix(b.cycles);
    }
    e.attr_digest = d.value();
  }
  e.ram_digest = RamDigest(m.mem());
  {
    Digest d;
    MixVm(d, stack.vm());
    if (stack.nested_vm() != nullptr) {
      MixVm(d, *stack.nested_vm());
    }
    e.vcpu_digest = d.value();
  }
  {
    Digest d;
    d.Mix(m.fault().LogText());
    for (int p = 0; p < kNumFaultPoints; ++p) {
      d.Mix(m.fault().count(static_cast<FaultPoint>(p)));
    }
    e.fault_digest = d.value();
  }
  return e;
}

void SnapStep(GuestEnv& env, uint64_t seed, uint64_t step) {
  SnapStep(env, seed, step, /*store_span_pages=*/1);
}

void SnapStep(GuestEnv& env, uint64_t seed, uint64_t step,
              uint64_t store_span_pages) {
  Rng rng(DigestOf(seed, step));
  // Stores and loads stride across `store_span_pages` pages so harnesses
  // (the downtime bench) can dial the workload's dirty rate; the default
  // span of one page draws no extra random bits, keeping the single-page
  // workload's op stream unchanged.
  auto slot = [&]() -> uint64_t {
    uint64_t page =
        store_span_pages > 1 ? rng.NextBelow(store_span_pages) : 0;
    return 0x2000 + page * kPageSize + 8 * rng.NextBelow(256);
  };
  for (int op = 0; op < 3; ++op) {
    switch (rng.NextBelow(5)) {
      case 0:
        env.Compute(20 + static_cast<uint32_t>(rng.NextBelow(50)));
        break;
      case 1:
        env.Store(Va(slot()), rng.Next());
        break;
      case 2:
        (void)env.Load(Va(slot()));
        break;
      case 3:
        env.Hvc(kHvcTestCall);
        break;
      case 4:
        env.WriteSys(step % 2 == 0 ? SysReg::kTPIDR_EL1 : SysReg::kTPIDR_EL0,
                     rng.Next());
        break;
    }
  }
}

SnapRunner::SnapRunner(const SnapSpec& spec)
    : spec_(spec), stack_(spec.cfg, spec.num_cpus) {}

SnapTargets SnapRunner::Targets() {
  SnapTargets t;
  t.machine = &stack_.machine();
  t.host = &stack_.host();
  t.guest_hyp = stack_.guest_hyp();
  t.device = &stack_.device();
  return t;
}

Status SnapRunner::Run(const SnapHooks& hooks) {
  return spec_.num_cpus > 1 ? RunSmp(hooks) : RunSingle(hooks);
}

Status SnapRunner::RunSingle(const SnapHooks& hooks) {
  Status cap = Status::Ok();
  Status app = Status::Ok();
  Status run = stack_.Run([this, &hooks, &cap, &app](GuestEnv& env) {
    SnapTargets t = Targets();
    uint64_t s0 = 0;
    if (hooks.resume_image != nullptr) {
      app = Serializer::Apply(t, *hooks.resume_image);
      if (!app.ok()) {
        return;
      }
      s0 = hooks.resume_step;
    }
    for (uint64_t s = s0; s < spec_.steps; ++s) {
      if (hooks.on_step && hooks.on_step(s, t)) {
        break;  // the migration committed; the source stops here
      }
      if (s == hooks.checkpoint_step && hooks.checkpoint_out != nullptr) {
        cap = Serializer::Capture(t, hooks.checkpoint_out);
        if (!cap.ok()) {
          return;
        }
      }
      SnapStep(env, spec_.seed, s, spec_.store_span_pages);
    }
  });
  if (!app.ok()) {
    return app;
  }
  if (!cap.ok()) {
    return cap;
  }
  return run;
}

// The SMP workload: two blocks ("phases") of all-to-all IPI rendezvous
// rounds with a checkpoint/restore window at the boundary. Per round every
// lane SGIs every sibling and parks until one IPI per sibling per completed
// round has arrived (monotonic counts, so overshoot is harmless). The
// boundary protocol keeps every variant's guest instruction stream
// identical:
//   - lane 0 finishes phase A, quiesces the engine (capturing or applying
//     under exclusive ownership while every sibling is parked), then sends
//     the GO SGI and runs phase B;
//   - siblings end phase A parked on a GO-inclusive count (phase-A total
//     + 1) that only lane 0's GO can satisfy, then run phase B with the +1
//     folded into every wait;
//   - a *resumed* run replaces phase A with a hello SGI to lane 0 (lane 0
//     parks until all hellos arrived, guaranteeing every sibling is booted
//     and parked on the GO predicate before the image is applied); the
//     apply then overwrites every guest-visible trace of the hellos.
Status SnapRunner::RunSmp(const SnapHooks& hooks) {
  NEVE_CHECK_MSG(!hooks.on_step,
                 "migration pulses require a single-vCPU workload");
  const int n = spec_.num_cpus;
  const uint64_t per_round = static_cast<uint64_t>(n - 1);
  const uint64_t rounds = spec_.steps;
  const bool resuming = hooks.resume_image != nullptr;
  Status cap = Status::Ok();
  Status app = Status::Ok();

  auto sgi_all = [n](GuestEnv& env, int lane) {
    const uint16_t siblings = static_cast<uint16_t>(
        ((1u << n) - 1u) & ~(1u << lane));
    env.WriteSys(SysReg::kICC_SGI1R_EL1, SgiR::Make(siblings, kSnapSgi));
  };
  auto phase_b = [this, per_round, rounds, sgi_all](GuestEnv& env, int lane) {
    Vcpu& me = stack_.RendezvousVcpu(lane);
    for (uint64_t r = 1; r <= rounds; ++r) {
      sgi_all(env, lane);
      const uint64_t want =
          (rounds + r) * per_round + (lane != 0 ? 1 : 0);  // +1: the GO SGI
      env.SmpWaitUntil([&me, want] { return me.virqs_enqueued >= want; });
    }
  };

  std::vector<GuestMain> bodies;
  for (int lane = 0; lane < n; ++lane) {
    if (lane == 0) {
      bodies.push_back([this, per_round, rounds, resuming, &hooks, &cap, &app,
                        sgi_all, phase_b](GuestEnv& env) {
        Vcpu& me = stack_.RendezvousVcpu(0);
        if (resuming) {
          // Wait for every sibling's hello: all lanes are then booted and
          // parked on the GO predicate, so the apply owns a fully
          // materialized, structurally identical stack.
          env.SmpWaitUntil(
              [&me, per_round] { return me.virqs_enqueued >= per_round; });
        } else {
          for (uint64_t r = 1; r <= rounds; ++r) {
            sgi_all(env, 0);
            const uint64_t want = r * per_round;
            env.SmpWaitUntil(
                [&me, want] { return me.virqs_enqueued >= want; });
          }
        }
        SmpEngine::Current()->Quiesce(0, [this, resuming, &hooks, &cap,
                                          &app] {
          if (resuming) {
            app = Serializer::Apply(Targets(), *hooks.resume_image);
          } else if (hooks.checkpoint_out != nullptr) {
            cap = Serializer::Capture(Targets(), hooks.checkpoint_out);
          }
        });
        if (!cap.ok() || !app.ok()) {
          return;
        }
        sgi_all(env, 0);  // GO: release the siblings into phase B
        phase_b(env, 0);
      });
    } else {
      bodies.push_back(
          [this, lane, per_round, rounds, resuming, sgi_all, phase_b](
              GuestEnv& env) {
            Vcpu& me = stack_.RendezvousVcpu(lane);
            if (resuming) {
              env.WriteSys(SysReg::kICC_SGI1R_EL1,
                           SgiR::Make(/*mask=*/1u, kSnapSgi));  // hello
            } else {
              for (uint64_t r = 1; r + 1 <= rounds; ++r) {
                sgi_all(env, lane);
                const uint64_t want = r * per_round;
                env.SmpWaitUntil(
                    [&me, want] { return me.virqs_enqueued >= want; });
              }
              sgi_all(env, lane);  // final phase-A round
            }
            // GO-inclusive park: phase-A total + the GO SGI. Unsatisfiable
            // until lane 0 releases the boundary.
            const uint64_t want = rounds * per_round + 1;
            env.SmpWaitUntil(
                [&me, want] { return me.virqs_enqueued >= want; });
            phase_b(env, lane);
          });
    }
  }

  std::vector<Status> statuses = stack_.RunSmp(std::move(bodies),
                                               spec_.threads);
  if (!app.ok()) {
    return app;
  }
  if (!cap.ok()) {
    return cap;
  }
  for (const Status& s : statuses) {
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace snap
}  // namespace neve
