// Checkpoint/restore harness over the workload stacks.
//
// A SnapRunner owns one ArmStack and drives a deterministic, step-indexed
// guest workload through it. Hooks let a harness capture a snapshot when the
// workload reaches a given step, apply a snapshot at entry (after the
// deterministic boot replayed the structural state) and continue from a given
// step, or interpose a host-side callback between steps (the migration
// engine's pulse). The bit-identity contract the tests and the chaos
// campaigns build on: for any checkpoint step C,
//
//   run(0..steps)  ==  run(0..C) + capture, then fresh stack + apply +
//                      run(C..steps)
//
// where "==" is EndState equality -- architectural digests, golden trap
// counts, cycle-attribution buckets, RAM and fault-log fingerprints.
//
// SMP stacks checkpoint at a phase boundary instead of a step: lane 0
// quiesces the engine between two blocks of IPI-rendezvous rounds, captures
// (or applies) while no sibling executes, then releases everyone with a GO
// SGI that is part of the workload in *every* variant, so control,
// checkpoint and resume runs execute the identical guest instruction stream.

#ifndef NEVE_SRC_SNAP_SNAP_STACK_H_
#define NEVE_SRC_SNAP_SNAP_STACK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/snap/snapshot.h"
#include "src/workload/stacks.h"

namespace neve {
namespace snap {

// End-of-run fingerprint, computed through public APIs only (usable on any
// stack, snapshotted or not). Each component isolates one oracle dimension
// so a mismatch names what diverged.
struct EndState {
  uint64_t state_digest = 0;  // per-CPU ArchStateDigest + current EL
  uint64_t cycles_digest = 0; // per-CPU cycle clocks + machine total
  uint64_t trap_digest = 0;   // per-CPU golden trap counters
  uint64_t attr_digest = 0;   // cycle-attribution buckets (vm/layer/cat)
  uint64_t ram_digest = 0;    // resident physical page contents
  uint64_t vcpu_digest = 0;   // per-VM software state + vCPU counters
  uint64_t fault_digest = 0;  // injection log + per-point counts

  bool operator==(const EndState&) const = default;
};

// "state=... cycles=... ..." -- for test-failure messages.
std::string ToString(const EndState& e);

EndState CaptureEndState(ArmStack& stack);

// One deterministic workload step: a small op mix (compute, loads/stores,
// hypercalls, sysreg writes) drawn from an Rng keyed by (seed, step), so any
// step is reproducible in isolation. Exposed for the fuzz harness.
void SnapStep(GuestEnv& env, uint64_t seed, uint64_t step);

// Same step, with stores/loads striding across `store_span_pages` pages --
// the dirty-rate dial for the migration downtime bench. Span 1 is exactly
// the overload above.
void SnapStep(GuestEnv& env, uint64_t seed, uint64_t step,
              uint64_t store_span_pages);

inline constexpr uint64_t kNoStep = ~UINT64_C(0);

struct SnapSpec {
  StackConfig cfg;
  int num_cpus = 1;       // > 1 selects the SMP rendezvous workload
  int threads = 1;        // SMP host threads; identity tests need 1 (Pa
                          // values depend on lane interleaving otherwise)
  uint64_t steps = 24;    // workload steps (rendezvous rounds per SMP phase)
  uint64_t seed = 1;
  uint64_t store_span_pages = 1;  // pages the store/load mix strides across
                                  // (the migration bench's dirty-rate dial)
};

struct SnapHooks {
  // Capture into *checkpoint_out when the workload reaches this step (before
  // executing it). SMP runs ignore the step value and capture at the phase
  // boundary.
  uint64_t checkpoint_step = kNoStep;
  Image* checkpoint_out = nullptr;

  // Apply this image at the structurally identical point (workload entry /
  // SMP phase boundary), then continue from resume_step (ignored for SMP:
  // the resumed run always continues with phase B).
  const Image* resume_image = nullptr;
  uint64_t resume_step = 0;

  // Host-side pulse called before each step with the stack's SnapTargets
  // (the migration engine). Returning true stops the workload -- the
  // source's commit point. Not supported on SMP runs.
  std::function<bool(uint64_t step, const SnapTargets&)> on_step;
};

class SnapRunner {
 public:
  explicit SnapRunner(const SnapSpec& spec);

  // Runs the workload. Returns the first error among: snapshot capture,
  // snapshot apply, and the stack's own run status (confined guest faults).
  Status Run(const SnapHooks& hooks = SnapHooks{});

  ArmStack& stack() { return stack_; }
  // The stack's snapshot targets. For nested stacks the guest hypervisor
  // only exists while the workload runs, so this is meaningful inside hooks
  // (and for EndState comparison after a run).
  SnapTargets Targets();
  EndState End() { return CaptureEndState(stack_); }

 private:
  Status RunSingle(const SnapHooks& hooks);
  Status RunSmp(const SnapHooks& hooks);

  SnapSpec spec_;
  ArmStack stack_;
};

}  // namespace snap
}  // namespace neve

#endif  // NEVE_SRC_SNAP_SNAP_STACK_H_
