// Snapshot capture/encode/decode/apply. See snapshot.h for the protocol.
//
// Every private-field access the snapshot subsystem performs lives in this
// translation unit, under the Serializer methods (or lambdas inside them,
// which inherit their access) that the `friend class snap::Serializer`
// declarations across the tree license. The anonymous-namespace helpers only
// touch the all-public Image structs and wire format.

#include "src/snap/snapshot.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault.h"
#include "src/hyp/devices.h"
#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"
#include "src/hyp/virtio.h"
#include "src/hyp/vm.h"
#include "src/mem/phys_mem.h"
#include "src/mem/shadow_s2.h"
#include "src/sim/machine.h"
#include "src/snap/wire.h"

namespace neve {
namespace snap {
namespace {

Status Mismatch(const std::string& what) {
  return Status::FailedPrecondition("snapshot: structural mismatch: " + what);
}

// --- context-struct conversions (public types only) ------------------------

El1ContextImage ImageOf(const El1Context& c) {
  El1ContextImage o;
  std::copy(std::begin(c.regs), std::end(c.regs), o.regs.begin());
  return o;
}
void FromImage(const El1ContextImage& i, El1Context* o) {
  std::copy(i.regs.begin(), i.regs.end(), std::begin(o->regs));
}

ExtEl1ContextImage ImageOf(const ExtEl1Context& c) {
  ExtEl1ContextImage o;
  std::copy(std::begin(c.regs), std::end(c.regs), o.regs.begin());
  return o;
}
void FromImage(const ExtEl1ContextImage& i, ExtEl1Context* o) {
  std::copy(i.regs.begin(), i.regs.end(), std::begin(o->regs));
}

PmuImage ImageOf(const PmuDebugContext& c) {
  return {.mdscr = c.mdscr, .pmuserenr = c.pmuserenr};
}
void FromImage(const PmuImage& i, PmuDebugContext* o) {
  o->mdscr = i.mdscr;
  o->pmuserenr = i.pmuserenr;
}

TimerContextImage ImageOf(const TimerContext& c) {
  return {.cntv_ctl = c.cntv_ctl, .cntv_cval = c.cntv_cval};
}
void FromImage(const TimerContextImage& i, TimerContext* o) {
  o->cntv_ctl = i.cntv_ctl;
  o->cntv_cval = i.cntv_cval;
}

SyndromeImage ImageOf(const Syndrome& s) {
  SyndromeImage o;
  o.ec = static_cast<uint8_t>(s.ec);
  o.imm16 = s.imm16;
  o.sysreg = static_cast<uint32_t>(s.sysreg);
  o.is_write = s.is_write ? 1 : 0;
  o.write_value = s.write_value;
  o.far = s.far;
  o.hpfar = s.hpfar;
  o.abort_is_write = s.abort_is_write ? 1 : 0;
  o.access_size = s.access_size;
  o.intid = s.intid;
  return o;
}
Syndrome SyndromeFrom(const SyndromeImage& i) {
  Syndrome s;
  s.ec = static_cast<Ec>(i.ec);
  s.imm16 = i.imm16;
  s.sysreg = static_cast<SysReg>(i.sysreg);
  s.is_write = i.is_write != 0;
  s.write_value = i.write_value;
  s.far = i.far;
  s.hpfar = i.hpfar;
  s.abort_is_write = i.abort_is_write != 0;
  s.access_size = i.access_size;
  s.intid = i.intid;
  return s;
}

// --- wire encode (pure functions of the Image) -----------------------------

void PutSyndrome(Writer& w, const SyndromeImage& s) {
  w.U8(s.ec);
  w.U32(s.imm16);
  w.U32(s.sysreg);
  w.U8(s.is_write);
  w.U64(s.write_value);
  w.U64(s.far);
  w.U64(s.hpfar);
  w.U8(s.abort_is_write);
  w.U8(s.access_size);
  w.U32(s.intid);
}

void PutEl1(Writer& w, const El1ContextImage& c) {
  for (uint64_t v : c.regs) {
    w.U64(v);
  }
}
void PutExt(Writer& w, const ExtEl1ContextImage& c) {
  for (uint64_t v : c.regs) {
    w.U64(v);
  }
}
void PutPmu(Writer& w, const PmuImage& p) {
  w.U64(p.mdscr);
  w.U64(p.pmuserenr);
}
void PutTimer(Writer& w, const TimerContextImage& t) {
  w.U64(t.cntv_ctl);
  w.U64(t.cntv_cval);
}

void PutMeta(Writer& w, const MetaImage& m) {
  w.I32(m.num_cpus);
  w.U64(m.ram_size);
  w.U64(m.host_pool_size);
  w.U64(m.cycles_per_timer_tick);
  w.U64(m.ipi_wire_latency);
  w.U8(m.feat_vhe);
  w.U8(m.feat_nv);
  w.U8(m.feat_neve);
  w.U8(m.feat_neve_deferred);
  w.U8(m.feat_neve_redirect);
  w.U8(m.feat_neve_cached);
  w.U8(m.host_vhe);
  w.U8(m.host_use_neve);
}

void PutCpu(Writer& w, const CpuImage& c) {
  w.U8(c.el);
  w.I32(c.trap_depth);
  w.U64(c.cycles);
  w.U64(c.regs.size());
  for (uint64_t v : c.regs) {
    w.U64(v);
  }
  w.U64(c.watchdog_deadline);
  w.U8(c.trap_tlbi);
  w.U8(c.record_details);
  w.U64(c.traps_to_el2);
  w.U64(c.hvc_traps);
  w.U64(c.sysreg_traps);
  w.U64(c.eret_traps);
  w.U64(c.abort_traps);
  w.U64(c.irq_exits);
  w.U64(c.records.size());
  for (const TrapRecordImage& r : c.records) {
    w.U64(r.sequence);
    PutSyndrome(w, r.syndrome);
    w.U64(r.cycles_at_entry);
  }
  w.U64(c.cycles_by_class.size());
  for (uint64_t v : c.cycles_by_class) {
    w.U64(v);
  }
  w.U64(c.tlb.size());
  for (const TlbEntryImage& e : c.tlb) {
    w.U64(e.va_page);
    w.U64(e.s1_root);
    w.U64(e.s2_root);
    w.U64(e.pa_page);
    w.U8(e.writable);
  }
}

void PutVcpu(Writer& w, const VcpuImage& v) {
  w.U8(v.mode);
  w.U8(v.main_started);
  w.U8(v.nested_started);
  w.U8(v.nested2_started);
  w.U8(v.active_nested);
  w.U8(v.vel2_handler_active);
  w.U8(v.parked);
  w.I32(v.loaded_on_pcpu);
  w.U8(v.nested_is_hyp);
  w.U64(v.nested_hcr);
  w.U8(v.deferred_vector_active);
  w.U8(v.mmio_retry);
  w.U64(v.shadows.size());
  for (const ShadowImage& s : v.shadows) {
    w.U64(s.vvttbr);
    w.U64(s.root);
    w.U64(s.faults_handled);
    w.U64(s.flushes);
    w.U64(s.installed);
    w.U64(s.virtual_faults);
    w.U64(s.host_faults);
  }
  w.U64(v.vncr_hw_page);
  w.U64(v.pending_virq.size());
  for (uint32_t q : v.pending_virq) {
    w.U32(q);
  }
  w.U64(v.virqs_enqueued);
  w.U64(v.mmio_result);
  w.U64(v.exits);
  w.U64(v.vel2_deliveries);
  w.U64(v.vregs.size());
  for (uint64_t r : v.vregs) {
    w.U64(r);
  }
}

void PutVm(Writer& w, const VmImage& v) {
  w.Str(v.name);
  w.I32(v.num_vcpus);
  w.U64(v.ram_size);
  w.U8(v.virtual_el2);
  w.U8(v.expose_neve);
  w.U8(v.guest_vhe);
  w.I32(v.id);
  w.U64(v.ram_base);
  w.U64(v.s2_root);
  w.U8(v.dead);
  w.U64(v.generation);
  w.U64(v.vcpus.size());
  for (const VcpuImage& c : v.vcpus) {
    PutVcpu(w, c);
  }
}

void PutVcpuHostState(Writer& w, const VcpuHostStateImage& s) {
  w.U8(s.present);
  PutEl1(w, s.cur_el1);
  PutEl1(w, s.vel2_exec);
  PutExt(w, s.ext);
  PutPmu(w, s.pmu);
  w.U64(s.elr);
  w.U64(s.spsr);
  PutTimer(w, s.timer);
  w.U64(s.cntvoff);
}

// --- wire decode -----------------------------------------------------------

Status GetSyndrome(Reader& r, SyndromeImage* s) {
  NEVE_RETURN_IF_ERROR(r.U8(&s->ec));
  uint32_t imm = 0;
  NEVE_RETURN_IF_ERROR(r.U32(&imm));
  s->imm16 = static_cast<uint16_t>(imm);
  NEVE_RETURN_IF_ERROR(r.U32(&s->sysreg));
  NEVE_RETURN_IF_ERROR(r.U8(&s->is_write));
  NEVE_RETURN_IF_ERROR(r.U64(&s->write_value));
  NEVE_RETURN_IF_ERROR(r.U64(&s->far));
  NEVE_RETURN_IF_ERROR(r.U64(&s->hpfar));
  NEVE_RETURN_IF_ERROR(r.U8(&s->abort_is_write));
  NEVE_RETURN_IF_ERROR(r.U8(&s->access_size));
  return r.U32(&s->intid);
}

Status GetEl1(Reader& r, El1ContextImage* c) {
  for (uint64_t& v : c->regs) {
    NEVE_RETURN_IF_ERROR(r.U64(&v));
  }
  return Status::Ok();
}
Status GetExt(Reader& r, ExtEl1ContextImage* c) {
  for (uint64_t& v : c->regs) {
    NEVE_RETURN_IF_ERROR(r.U64(&v));
  }
  return Status::Ok();
}
Status GetPmu(Reader& r, PmuImage* p) {
  NEVE_RETURN_IF_ERROR(r.U64(&p->mdscr));
  return r.U64(&p->pmuserenr);
}
Status GetTimer(Reader& r, TimerContextImage* t) {
  NEVE_RETURN_IF_ERROR(r.U64(&t->cntv_ctl));
  return r.U64(&t->cntv_cval);
}

Status GetU64Vec(Reader& r, std::vector<uint64_t>* out) {
  uint64_t n = 0;
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8));
  out->resize(n);
  for (uint64_t& v : *out) {
    NEVE_RETURN_IF_ERROR(r.U64(&v));
  }
  return Status::Ok();
}

Status GetMeta(Reader& r, MetaImage* m) {
  NEVE_RETURN_IF_ERROR(r.I32(&m->num_cpus));
  NEVE_RETURN_IF_ERROR(r.U64(&m->ram_size));
  NEVE_RETURN_IF_ERROR(r.U64(&m->host_pool_size));
  NEVE_RETURN_IF_ERROR(r.U64(&m->cycles_per_timer_tick));
  NEVE_RETURN_IF_ERROR(r.U64(&m->ipi_wire_latency));
  NEVE_RETURN_IF_ERROR(r.U8(&m->feat_vhe));
  NEVE_RETURN_IF_ERROR(r.U8(&m->feat_nv));
  NEVE_RETURN_IF_ERROR(r.U8(&m->feat_neve));
  NEVE_RETURN_IF_ERROR(r.U8(&m->feat_neve_deferred));
  NEVE_RETURN_IF_ERROR(r.U8(&m->feat_neve_redirect));
  NEVE_RETURN_IF_ERROR(r.U8(&m->feat_neve_cached));
  NEVE_RETURN_IF_ERROR(r.U8(&m->host_vhe));
  return r.U8(&m->host_use_neve);
}

Status GetCpu(Reader& r, CpuImage* c) {
  NEVE_RETURN_IF_ERROR(r.U8(&c->el));
  NEVE_RETURN_IF_ERROR(r.I32(&c->trap_depth));
  NEVE_RETURN_IF_ERROR(r.U64(&c->cycles));
  NEVE_RETURN_IF_ERROR(GetU64Vec(r, &c->regs));
  NEVE_RETURN_IF_ERROR(r.U64(&c->watchdog_deadline));
  NEVE_RETURN_IF_ERROR(r.U8(&c->trap_tlbi));
  NEVE_RETURN_IF_ERROR(r.U8(&c->record_details));
  NEVE_RETURN_IF_ERROR(r.U64(&c->traps_to_el2));
  NEVE_RETURN_IF_ERROR(r.U64(&c->hvc_traps));
  NEVE_RETURN_IF_ERROR(r.U64(&c->sysreg_traps));
  NEVE_RETURN_IF_ERROR(r.U64(&c->eret_traps));
  NEVE_RETURN_IF_ERROR(r.U64(&c->abort_traps));
  NEVE_RETURN_IF_ERROR(r.U64(&c->irq_exits));
  uint64_t n = 0;
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8 + 42 + 8));
  c->records.resize(n);
  for (TrapRecordImage& rec : c->records) {
    NEVE_RETURN_IF_ERROR(r.U64(&rec.sequence));
    NEVE_RETURN_IF_ERROR(GetSyndrome(r, &rec.syndrome));
    NEVE_RETURN_IF_ERROR(r.U64(&rec.cycles_at_entry));
  }
  NEVE_RETURN_IF_ERROR(GetU64Vec(r, &c->cycles_by_class));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 4 * 8 + 1));
  c->tlb.resize(n);
  for (TlbEntryImage& e : c->tlb) {
    NEVE_RETURN_IF_ERROR(r.U64(&e.va_page));
    NEVE_RETURN_IF_ERROR(r.U64(&e.s1_root));
    NEVE_RETURN_IF_ERROR(r.U64(&e.s2_root));
    NEVE_RETURN_IF_ERROR(r.U64(&e.pa_page));
    NEVE_RETURN_IF_ERROR(r.U8(&e.writable));
  }
  return Status::Ok();
}

Status GetVcpu(Reader& r, VcpuImage* v) {
  NEVE_RETURN_IF_ERROR(r.U8(&v->mode));
  NEVE_RETURN_IF_ERROR(r.U8(&v->main_started));
  NEVE_RETURN_IF_ERROR(r.U8(&v->nested_started));
  NEVE_RETURN_IF_ERROR(r.U8(&v->nested2_started));
  NEVE_RETURN_IF_ERROR(r.U8(&v->active_nested));
  NEVE_RETURN_IF_ERROR(r.U8(&v->vel2_handler_active));
  NEVE_RETURN_IF_ERROR(r.U8(&v->parked));
  NEVE_RETURN_IF_ERROR(r.I32(&v->loaded_on_pcpu));
  NEVE_RETURN_IF_ERROR(r.U8(&v->nested_is_hyp));
  NEVE_RETURN_IF_ERROR(r.U64(&v->nested_hcr));
  NEVE_RETURN_IF_ERROR(r.U8(&v->deferred_vector_active));
  NEVE_RETURN_IF_ERROR(r.U8(&v->mmio_retry));
  uint64_t n = 0;
  NEVE_RETURN_IF_ERROR(r.Count(&n, 7 * 8));
  v->shadows.resize(n);
  for (ShadowImage& s : v->shadows) {
    NEVE_RETURN_IF_ERROR(r.U64(&s.vvttbr));
    NEVE_RETURN_IF_ERROR(r.U64(&s.root));
    NEVE_RETURN_IF_ERROR(r.U64(&s.faults_handled));
    NEVE_RETURN_IF_ERROR(r.U64(&s.flushes));
    NEVE_RETURN_IF_ERROR(r.U64(&s.installed));
    NEVE_RETURN_IF_ERROR(r.U64(&s.virtual_faults));
    NEVE_RETURN_IF_ERROR(r.U64(&s.host_faults));
  }
  NEVE_RETURN_IF_ERROR(r.U64(&v->vncr_hw_page));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 4));
  v->pending_virq.resize(n);
  for (uint32_t& q : v->pending_virq) {
    NEVE_RETURN_IF_ERROR(r.U32(&q));
  }
  NEVE_RETURN_IF_ERROR(r.U64(&v->virqs_enqueued));
  NEVE_RETURN_IF_ERROR(r.U64(&v->mmio_result));
  NEVE_RETURN_IF_ERROR(r.U64(&v->exits));
  NEVE_RETURN_IF_ERROR(r.U64(&v->vel2_deliveries));
  return GetU64Vec(r, &v->vregs);
}

Status GetVm(Reader& r, VmImage* v) {
  NEVE_RETURN_IF_ERROR(r.Str(&v->name));
  NEVE_RETURN_IF_ERROR(r.I32(&v->num_vcpus));
  NEVE_RETURN_IF_ERROR(r.U64(&v->ram_size));
  NEVE_RETURN_IF_ERROR(r.U8(&v->virtual_el2));
  NEVE_RETURN_IF_ERROR(r.U8(&v->expose_neve));
  NEVE_RETURN_IF_ERROR(r.U8(&v->guest_vhe));
  NEVE_RETURN_IF_ERROR(r.I32(&v->id));
  NEVE_RETURN_IF_ERROR(r.U64(&v->ram_base));
  NEVE_RETURN_IF_ERROR(r.U64(&v->s2_root));
  NEVE_RETURN_IF_ERROR(r.U8(&v->dead));
  NEVE_RETURN_IF_ERROR(r.U64(&v->generation));
  uint64_t n = 0;
  NEVE_RETURN_IF_ERROR(r.Count(&n, 64));
  v->vcpus.resize(n);
  for (VcpuImage& c : v->vcpus) {
    NEVE_RETURN_IF_ERROR(GetVcpu(r, &c));
  }
  return Status::Ok();
}

Status GetVcpuHostState(Reader& r, VcpuHostStateImage* s) {
  NEVE_RETURN_IF_ERROR(r.U8(&s->present));
  NEVE_RETURN_IF_ERROR(GetEl1(r, &s->cur_el1));
  NEVE_RETURN_IF_ERROR(GetEl1(r, &s->vel2_exec));
  NEVE_RETURN_IF_ERROR(GetExt(r, &s->ext));
  NEVE_RETURN_IF_ERROR(GetPmu(r, &s->pmu));
  NEVE_RETURN_IF_ERROR(r.U64(&s->elr));
  NEVE_RETURN_IF_ERROR(r.U64(&s->spsr));
  NEVE_RETURN_IF_ERROR(GetTimer(r, &s->timer));
  return r.U64(&s->cntvoff);
}

}  // namespace

// ===========================================================================
// Capture
// ===========================================================================

Status Serializer::CaptureVm(Vm& vm, VmImage* out) {
  VmImage v;
  v.name = vm.config_.name;
  v.num_vcpus = vm.config_.num_vcpus;
  v.ram_size = vm.config_.ram_size;
  v.virtual_el2 = vm.config_.virtual_el2 ? 1 : 0;
  v.expose_neve = vm.config_.expose_neve ? 1 : 0;
  v.guest_vhe = vm.config_.guest_vhe ? 1 : 0;
  v.id = vm.id_;
  v.ram_base = vm.ram_base_.value;
  v.s2_root = vm.s2_.root().value;
  v.dead = vm.dead_ ? 1 : 0;
  v.generation = vm.generation_;
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& vc = vm.vcpu(i);
    if (vc.deferred_vector.has_value()) {
      return Status::Unimplemented(
          "snapshot: vcpu of '" + v.name +
          "' holds a pending deferred vector call; checkpoint at an "
          "operation boundary instead");
    }
    VcpuImage vi;
    vi.mode = static_cast<uint8_t>(vc.mode);
    vi.main_started = vc.main_sw.started ? 1 : 0;
    vi.nested_started = vc.nested_sw.started ? 1 : 0;
    vi.nested2_started = vc.nested2_sw.started ? 1 : 0;
    vi.active_nested = (vc.active_nested == &vc.nested2_sw) ? 1 : 0;
    vi.vel2_handler_active = vc.vel2_handler_active ? 1 : 0;
    vi.parked = vc.parked ? 1 : 0;
    vi.loaded_on_pcpu = vc.loaded_on_pcpu;
    vi.nested_is_hyp = vc.nested_is_hyp ? 1 : 0;
    vi.nested_hcr = vc.nested_hcr;
    vi.deferred_vector_active = vc.deferred_vector_active ? 1 : 0;
    vi.mmio_retry = vc.mmio_retry ? 1 : 0;
    for (const auto& [vvttbr, sh] : vc.shadows) {
      ShadowImage si;
      si.vvttbr = vvttbr;
      si.root = sh->table_.root().value;
      si.faults_handled = sh->faults_handled_;
      si.flushes = sh->flushes_;
      si.installed = sh->installed_;
      si.virtual_faults = sh->virtual_faults_;
      si.host_faults = sh->host_faults_;
      vi.shadows.push_back(si);
    }
    vi.vncr_hw_page = vc.vncr_hw_page.value;
    vi.pending_virq.assign(vc.pending_virq.begin(), vc.pending_virq.end());
    vi.virqs_enqueued = vc.virqs_enqueued;
    vi.mmio_result = vc.mmio_result;
    vi.exits = vc.exits;
    vi.vel2_deliveries = vc.vel2_deliveries;
    vi.vregs.assign(vc.vregs_, vc.vregs_ + kNumRegIds);
    v.vcpus.push_back(std::move(vi));
  }
  *out = std::move(v);
  return Status::Ok();
}

Status Serializer::Capture(const SnapTargets& t, Image* out) {
  NEVE_CHECK_MSG(t.machine != nullptr && t.host != nullptr,
                 "snapshot capture needs a machine and a host hypervisor");
  Machine& m = *t.machine;
  HostKvm& h = *t.host;
  Image img;

  // META: construction parameters, for structural verification on apply.
  const MachineConfig& mc = m.config_;
  img.meta.num_cpus = mc.num_cpus;
  img.meta.ram_size = mc.ram_size;
  img.meta.host_pool_size = mc.host_pool_size;
  img.meta.cycles_per_timer_tick = mc.cycles_per_timer_tick;
  img.meta.ipi_wire_latency = mc.ipi_wire_latency;
  img.meta.feat_vhe = mc.features.vhe ? 1 : 0;
  img.meta.feat_nv = mc.features.nv ? 1 : 0;
  img.meta.feat_neve = mc.features.neve ? 1 : 0;
  img.meta.feat_neve_deferred = mc.features.neve_deferred ? 1 : 0;
  img.meta.feat_neve_redirect = mc.features.neve_redirect ? 1 : 0;
  img.meta.feat_neve_cached = mc.features.neve_cached ? 1 : 0;
  img.meta.host_vhe = h.config_.vhe ? 1 : 0;
  img.meta.host_use_neve = h.config_.use_neve ? 1 : 0;

  // CPUS: register files, clocks, traces, TLBs.
  for (int i = 0; i < m.num_cpus(); ++i) {
    Cpu& c = m.cpu(i);
    CpuImage ci;
    ci.el = static_cast<uint8_t>(c.el_);
    ci.trap_depth = c.trap_depth_;
    ci.cycles = c.cycles_;
    ci.regs.assign(c.regs_, c.regs_ + kNumRegIds);
    ci.watchdog_deadline = c.watchdog_deadline_;
    ci.trap_tlbi = c.trap_tlbi_ ? 1 : 0;
    const CpuTrace& tr = c.trace_;
    ci.record_details = tr.record_details_ ? 1 : 0;
    ci.traps_to_el2 = tr.traps_to_el2_;
    ci.hvc_traps = tr.hvc_traps_;
    ci.sysreg_traps = tr.sysreg_traps_;
    ci.eret_traps = tr.eret_traps_;
    ci.abort_traps = tr.abort_traps_;
    ci.irq_exits = tr.irq_exits_;
    for (const TrapRecord& rec : tr.records_) {
      ci.records.push_back({.sequence = rec.sequence,
                            .syndrome = ImageOf(rec.syndrome),
                            .cycles_at_entry = rec.cycles_at_entry});
    }
    ci.cycles_by_class.assign(tr.cycles_by_class_.begin(),
                              tr.cycles_by_class_.end());
    for (const auto& [key, entry] : c.tlb_) {
      TlbEntryImage te;
      te.va_page = key.va_page;
      te.s1_root = key.s1_root;
      te.s2_root = key.s2_root;
      te.pa_page = entry.pa_page;
      te.writable = entry.writable ? 1 : 0;
      ci.tlb.push_back(te);
    }
    std::sort(ci.tlb.begin(), ci.tlb.end(),
              [](const TlbEntryImage& a, const TlbEntryImage& b) {
                return std::tie(a.va_page, a.s1_root, a.s2_root) <
                       std::tie(b.va_page, b.s1_root, b.s2_root);
              });
    img.cpus.push_back(std::move(ci));
  }

  // MEMP: the full resident physical page set (page tables, shadow table
  // contents, VNCR pages and guest RAM all live here), plus the allocator
  // cursors that decide where the *next* page lands.
  PhysMem& mem = m.mem_;
  for (uint64_t idx : mem.ResidentPageIndices()) {
    PageImage pi;
    pi.page_index = idx;
    NEVE_CHECK(mem.ReadPage(idx, &pi.data));
    img.mem.pages.push_back(std::move(pi));
  }
  {
    MutexLock lock(m.host_pool_.mu_);
    img.mem.host_pool_next = m.host_pool_.next_;
  }
  img.mem.next_guest_ram = m.next_guest_ram_;

  // ATTR: per-CPU bucket shards (every key, including zero-cycle ones -- the
  // restored map must have the exact same shape for reference stability),
  // frame stacks, and the flight-recorder ring.
  CycleAttribution& attr = m.attr_;
  for (const auto& pc : attr.percpu_) {
    AttrCpuImage ai;
    ai.stack = pc.stack;
    for (const auto& [key, cycles] : pc.buckets) {
      ai.buckets.emplace_back(key, cycles);
    }
    std::sort(ai.buckets.begin(), ai.buckets.end());
    img.attr.percpu.push_back(std::move(ai));
  }
  {
    MutexLock lock(attr.flights_mu_);
    for (const auto& fr : attr.flights_) {
      FlightImage fi;
      fi.reason = fr.reason;
      fi.cycles = fr.cycles;
      for (const AttrBucket& b : fr.buckets) {
        fi.buckets.push_back({.vm = b.vm,
                              .vcpu = b.vcpu,
                              .layer = static_cast<uint8_t>(b.layer),
                              .cat = static_cast<uint8_t>(b.cat),
                              .cycles = b.cycles});
      }
      img.attr.flights.push_back(std::move(fi));
    }
    img.attr.flight_next = attr.flight_next_;
  }

  // FALT: the injector's RNG position, counters and log.
  FaultInjector& f = m.fault_;
  for (int i = 0; i < 4; ++i) {
    img.fault.rng_state[static_cast<size_t>(i)] =
        f.rng_.state_[static_cast<size_t>(i)];
  }
  img.fault.counts.assign(f.counts_, f.counts_ + kNumFaultPoints);
  for (const InjectionRecord& rec : f.log_) {
    img.fault.log.push_back({.seq = rec.seq,
                             .point = static_cast<uint32_t>(rec.point),
                             .cpu = rec.cpu,
                             .cycles = rec.cycles,
                             .detail = rec.detail,
                             .attr_key = rec.attr_key});
  }

  // GICC: ack bookkeeping + counter shards.
  GicV3& g = m.gic_;
  for (const auto& row : g.ack_info_) {
    std::vector<LrAckImage> ri;
    for (const auto& a : row) {
      ri.push_back({.ack_cycles = a.ack_cycles,
                    .ack_trace_id = a.ack_trace_id,
                    .valid = a.valid ? uint8_t{1} : uint8_t{0}});
    }
    img.gic.ack_info.push_back(std::move(ri));
  }
  img.gic.virtual_acks = g.virtual_acks_;
  img.gic.virtual_eois = g.virtual_eois_;

  // HOST: VMs, pcpu slots (loaded vcpu as (vm index, vcpu id)), and the
  // host-side per-vcpu contexts.
  for (const auto& vmp : h.vms_) {
    VmImage vi;
    NEVE_RETURN_IF_ERROR(CaptureVm(*vmp, &vi));
    img.host.vms.push_back(std::move(vi));
  }
  auto host_vm_index = [&h](const Vm* vm) {
    for (size_t i = 0; i < h.vms_.size(); ++i) {
      if (h.vms_[i].get() == vm) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (const auto& ps : h.pcpu_) {
    PcpuImage pi;
    if (ps.current != nullptr) {
      pi.current_vm = host_vm_index(&ps.current->vm());
      if (pi.current_vm < 0) {
        return Status::Internal(
            "snapshot: loaded vcpu's VM is not registered with the host");
      }
      pi.current_vcpu = ps.current->id();
    }
    pi.guest_loaded = ps.guest_loaded ? 1 : 0;
    pi.lrs_loaded = ps.lrs_loaded;
    pi.host_el1 = ImageOf(ps.host_el1);
    pi.host_ext = ImageOf(ps.host_ext);
    pi.host_pmu = ImageOf(ps.host_pmu);
    img.host.pcpu.push_back(std::move(pi));
  }
  for (const auto& vmp : h.vms_) {
    Vm& vm = *vmp;
    std::vector<VcpuHostStateImage> row;
    for (int i = 0; i < vm.num_vcpus(); ++i) {
      VcpuHostStateImage si;
      auto it = h.vcpu_state_.find(&vm.vcpu(i));
      if (it != h.vcpu_state_.end()) {
        const HostKvm::VcpuHostState& hs = *it->second;
        si.present = 1;
        si.cur_el1 = ImageOf(hs.cur_el1);
        si.vel2_exec = ImageOf(hs.vel2_exec);
        si.ext = ImageOf(hs.ext);
        si.pmu = ImageOf(hs.pmu);
        si.elr = hs.elr;
        si.spsr = hs.spsr;
        si.timer = ImageOf(hs.timer);
        si.cntvoff = hs.cntvoff;
      }
      row.push_back(si);
    }
    img.host.vcpu_state.push_back(std::move(row));
  }

  // GKVM: the guest hypervisor's nested VMs, pvcpu slots and per-nested-vcpu
  // contexts (nested stacks only).
  if (t.guest_hyp != nullptr) {
    GuestKvm& gk = *t.guest_hyp;
    img.guest.present = 1;
    {
      MutexLock lock(gk.table_alloc_.mu_);
      img.guest.table_alloc_next = gk.table_alloc_.next_;
    }
    img.guest.next_nested_ram = gk.next_nested_ram_;
    for (const auto& vmp : gk.vms_) {
      VmImage vi;
      NEVE_RETURN_IF_ERROR(CaptureVm(*vmp, &vi));
      img.guest.vms.push_back(std::move(vi));
    }
    auto guest_vm_index = [&gk](const Vm* vm) {
      for (size_t i = 0; i < gk.vms_.size(); ++i) {
        if (gk.vms_[i].get() == vm) {
          return static_cast<int>(i);
        }
      }
      return -1;
    };
    for (const auto& ps : gk.pvcpu_) {
      PvcpuImage pi;
      if (ps.running != nullptr) {
        pi.running_vm = guest_vm_index(&ps.running->vm());
        if (pi.running_vm < 0) {
          return Status::Internal(
              "snapshot: running nested vcpu's VM is not registered with the "
              "guest hypervisor");
        }
        pi.running_vcpu = ps.running->id();
      }
      pi.kernel_el1 = ImageOf(ps.kernel_el1);
      pi.kernel_ext = ImageOf(ps.kernel_ext);
      pi.timer = ImageOf(ps.timer);
      img.guest.pvcpu.push_back(std::move(pi));
    }
    MutexLock lock(gk.nstate_mu_);
    for (const auto& vmp : gk.vms_) {
      Vm& vm = *vmp;
      std::vector<NestedVcpuStateImage> row;
      for (int i = 0; i < vm.num_vcpus(); ++i) {
        NestedVcpuStateImage si;
        auto it = gk.nstate_.find(&vm.vcpu(i));
        if (it != gk.nstate_.end()) {
          const GuestKvm::NestedVcpuState& ns = *it->second;
          if (ns.rec != nullptr) {
            return Status::Unimplemented(
                "snapshot: live recursive-nesting (L2 hypervisor) state is "
                "not coverable yet");
          }
          si.present = 1;
          si.el1 = ImageOf(ns.el1);
          si.ext = ImageOf(ns.ext);
          si.pmu = ImageOf(ns.pmu);
          si.elr = ns.elr;
          si.spsr = ns.spsr;
        }
        row.push_back(si);
      }
      img.guest.nstate.push_back(std::move(row));
    }
  }

  // DEVS: device-model counters and virtio ring cursors.
  if (t.device != nullptr) {
    img.devs.device_present = 1;
    img.devs.device_reads = t.device->reads_;
    img.devs.device_writes = t.device->writes_;
    img.devs.device_last_write = t.device->last_write_;
  }
  if (t.virtio_backend != nullptr) {
    img.devs.backend_present = 1;
    MutexLock lock(t.virtio_backend->ring_mu_);
    img.devs.last_avail = t.virtio_backend->last_avail_;
    img.devs.busy_until = t.virtio_backend->busy_until_;
    img.devs.kicks = t.virtio_backend->kicks_;
    img.devs.buffers_processed = t.virtio_backend->buffers_processed_;
  }
  if (t.virtio_driver != nullptr) {
    img.devs.driver_present = 1;
    img.devs.avail_idx = t.virtio_driver->avail_idx_;
    img.devs.last_used = t.virtio_driver->last_used_;
    img.devs.next_desc = t.virtio_driver->next_desc_;
    img.devs.kicks_sent = t.virtio_driver->kicks_sent_;
    img.devs.posts = t.virtio_driver->posts_;
  }

  *out = std::move(img);
  return Status::Ok();
}

// ===========================================================================
// Encode / Decode
// ===========================================================================

std::vector<uint8_t> Serializer::Encode(const Image& img) {
  Writer w;

  w.BeginSection(kSecMeta);
  PutMeta(w, img.meta);
  w.EndSection();

  w.BeginSection(kSecCpus);
  w.U64(img.cpus.size());
  for (const CpuImage& c : img.cpus) {
    PutCpu(w, c);
  }
  w.EndSection();

  w.BeginSection(kSecMem);
  w.U64(img.mem.pages.size());
  for (const PageImage& p : img.mem.pages) {
    w.U64(p.page_index);
    w.Bytes(p.data.data(), p.data.size());
  }
  w.U64(img.mem.host_pool_next);
  w.U64(img.mem.next_guest_ram);
  w.EndSection();

  w.BeginSection(kSecAttr);
  w.U64(img.attr.percpu.size());
  for (const AttrCpuImage& a : img.attr.percpu) {
    w.U64(a.stack.size());
    for (uint64_t k : a.stack) {
      w.U64(k);
    }
    w.U64(a.buckets.size());
    for (const auto& [key, cycles] : a.buckets) {
      w.U64(key);
      w.U64(cycles);
    }
  }
  w.U64(img.attr.flights.size());
  for (const FlightImage& f : img.attr.flights) {
    w.Str(f.reason);
    w.U64(f.cycles);
    w.U64(f.buckets.size());
    for (const AttrBucketImage& b : f.buckets) {
      w.I32(b.vm);
      w.I32(b.vcpu);
      w.U8(b.layer);
      w.U8(b.cat);
      w.U64(b.cycles);
    }
  }
  w.U64(img.attr.flight_next);
  w.EndSection();

  w.BeginSection(kSecFault);
  for (uint64_t s : img.fault.rng_state) {
    w.U64(s);
  }
  w.U64(img.fault.counts.size());
  for (uint64_t c : img.fault.counts) {
    w.U64(c);
  }
  w.U64(img.fault.log.size());
  for (const InjectionImage& rec : img.fault.log) {
    w.U64(rec.seq);
    w.U32(rec.point);
    w.I32(rec.cpu);
    w.U64(rec.cycles);
    w.U64(rec.detail);
    w.U64(rec.attr_key);
  }
  w.EndSection();

  w.BeginSection(kSecGic);
  w.U64(img.gic.ack_info.size());
  for (const auto& row : img.gic.ack_info) {
    w.U64(row.size());
    for (const LrAckImage& a : row) {
      w.U64(a.ack_cycles);
      w.U64(a.ack_trace_id);
      w.U8(a.valid);
    }
  }
  w.U64(img.gic.virtual_acks.size());
  for (uint64_t v : img.gic.virtual_acks) {
    w.U64(v);
  }
  w.U64(img.gic.virtual_eois.size());
  for (uint64_t v : img.gic.virtual_eois) {
    w.U64(v);
  }
  w.EndSection();

  w.BeginSection(kSecHost);
  w.U64(img.host.vms.size());
  for (const VmImage& v : img.host.vms) {
    PutVm(w, v);
  }
  w.U64(img.host.pcpu.size());
  for (const PcpuImage& p : img.host.pcpu) {
    w.I32(p.current_vm);
    w.I32(p.current_vcpu);
    w.U8(p.guest_loaded);
    w.I32(p.lrs_loaded);
    PutEl1(w, p.host_el1);
    PutExt(w, p.host_ext);
    PutPmu(w, p.host_pmu);
  }
  w.U64(img.host.vcpu_state.size());
  for (const auto& row : img.host.vcpu_state) {
    w.U64(row.size());
    for (const VcpuHostStateImage& s : row) {
      PutVcpuHostState(w, s);
    }
  }
  w.EndSection();

  w.BeginSection(kSecGuest);
  w.U8(img.guest.present);
  w.U64(img.guest.table_alloc_next);
  w.U64(img.guest.next_nested_ram);
  w.U64(img.guest.vms.size());
  for (const VmImage& v : img.guest.vms) {
    PutVm(w, v);
  }
  w.U64(img.guest.pvcpu.size());
  for (const PvcpuImage& p : img.guest.pvcpu) {
    w.I32(p.running_vm);
    w.I32(p.running_vcpu);
    PutEl1(w, p.kernel_el1);
    PutExt(w, p.kernel_ext);
    PutTimer(w, p.timer);
  }
  w.U64(img.guest.nstate.size());
  for (const auto& row : img.guest.nstate) {
    w.U64(row.size());
    for (const NestedVcpuStateImage& s : row) {
      w.U8(s.present);
      PutEl1(w, s.el1);
      PutExt(w, s.ext);
      PutPmu(w, s.pmu);
      w.U64(s.elr);
      w.U64(s.spsr);
    }
  }
  w.EndSection();

  w.BeginSection(kSecDevs);
  w.U8(img.devs.device_present);
  w.U64(img.devs.device_reads);
  w.U64(img.devs.device_writes);
  w.U64(img.devs.device_last_write);
  w.U8(img.devs.backend_present);
  w.U64(img.devs.last_avail);
  w.U64(img.devs.busy_until);
  w.U64(img.devs.kicks);
  w.U64(img.devs.buffers_processed);
  w.U8(img.devs.driver_present);
  w.U64(img.devs.avail_idx);
  w.U64(img.devs.last_used);
  w.I32(img.devs.next_desc);
  w.U64(img.devs.kicks_sent);
  w.U64(img.devs.posts);
  w.EndSection();

  return w.Finish();
}

Status Serializer::Decode(const std::vector<uint8_t>& bytes, Image* out) {
  Image img;
  Reader r(bytes);
  uint32_t sections = 0;
  NEVE_RETURN_IF_ERROR(r.Header(&sections));
  if (sections != 9) {
    return Status::InvalidArgument("snapshot: wrong section count");
  }
  uint64_t n = 0;

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecMeta));
  NEVE_RETURN_IF_ERROR(GetMeta(r, &img.meta));
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecCpus));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 64));
  img.cpus.resize(n);
  for (CpuImage& c : img.cpus) {
    NEVE_RETURN_IF_ERROR(GetCpu(r, &c));
  }
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecMem));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8 + kPageSize));
  img.mem.pages.resize(n);
  for (PageImage& p : img.mem.pages) {
    NEVE_RETURN_IF_ERROR(r.U64(&p.page_index));
    NEVE_RETURN_IF_ERROR(r.Bytes(p.data.data(), p.data.size()));
  }
  NEVE_RETURN_IF_ERROR(r.U64(&img.mem.host_pool_next));
  NEVE_RETURN_IF_ERROR(r.U64(&img.mem.next_guest_ram));
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecAttr));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 16));
  img.attr.percpu.resize(n);
  for (AttrCpuImage& a : img.attr.percpu) {
    NEVE_RETURN_IF_ERROR(GetU64Vec(r, &a.stack));
    uint64_t nb = 0;
    NEVE_RETURN_IF_ERROR(r.Count(&nb, 16));
    a.buckets.resize(nb);
    for (auto& [key, cycles] : a.buckets) {
      NEVE_RETURN_IF_ERROR(r.U64(&key));
      NEVE_RETURN_IF_ERROR(r.U64(&cycles));
    }
  }
  NEVE_RETURN_IF_ERROR(r.Count(&n, 24));
  img.attr.flights.resize(n);
  for (FlightImage& f : img.attr.flights) {
    NEVE_RETURN_IF_ERROR(r.Str(&f.reason));
    NEVE_RETURN_IF_ERROR(r.U64(&f.cycles));
    uint64_t nb = 0;
    NEVE_RETURN_IF_ERROR(r.Count(&nb, 2 * 4 + 2 + 8));
    f.buckets.resize(nb);
    for (AttrBucketImage& b : f.buckets) {
      NEVE_RETURN_IF_ERROR(r.I32(&b.vm));
      NEVE_RETURN_IF_ERROR(r.I32(&b.vcpu));
      NEVE_RETURN_IF_ERROR(r.U8(&b.layer));
      NEVE_RETURN_IF_ERROR(r.U8(&b.cat));
      NEVE_RETURN_IF_ERROR(r.U64(&b.cycles));
    }
  }
  NEVE_RETURN_IF_ERROR(r.U64(&img.attr.flight_next));
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecFault));
  for (uint64_t& s : img.fault.rng_state) {
    NEVE_RETURN_IF_ERROR(r.U64(&s));
  }
  NEVE_RETURN_IF_ERROR(GetU64Vec(r, &img.fault.counts));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8 + 4 + 4 + 3 * 8));
  img.fault.log.resize(n);
  for (InjectionImage& rec : img.fault.log) {
    NEVE_RETURN_IF_ERROR(r.U64(&rec.seq));
    NEVE_RETURN_IF_ERROR(r.U32(&rec.point));
    NEVE_RETURN_IF_ERROR(r.I32(&rec.cpu));
    NEVE_RETURN_IF_ERROR(r.U64(&rec.cycles));
    NEVE_RETURN_IF_ERROR(r.U64(&rec.detail));
    NEVE_RETURN_IF_ERROR(r.U64(&rec.attr_key));
  }
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecGic));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8));
  img.gic.ack_info.resize(n);
  for (auto& row : img.gic.ack_info) {
    uint64_t nl = 0;
    NEVE_RETURN_IF_ERROR(r.Count(&nl, 17));
    row.resize(nl);
    for (LrAckImage& a : row) {
      NEVE_RETURN_IF_ERROR(r.U64(&a.ack_cycles));
      NEVE_RETURN_IF_ERROR(r.U64(&a.ack_trace_id));
      NEVE_RETURN_IF_ERROR(r.U8(&a.valid));
    }
  }
  NEVE_RETURN_IF_ERROR(GetU64Vec(r, &img.gic.virtual_acks));
  NEVE_RETURN_IF_ERROR(GetU64Vec(r, &img.gic.virtual_eois));
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecHost));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 64));
  img.host.vms.resize(n);
  for (VmImage& v : img.host.vms) {
    NEVE_RETURN_IF_ERROR(GetVm(r, &v));
  }
  NEVE_RETURN_IF_ERROR(r.Count(&n, 64));
  img.host.pcpu.resize(n);
  for (PcpuImage& p : img.host.pcpu) {
    NEVE_RETURN_IF_ERROR(r.I32(&p.current_vm));
    NEVE_RETURN_IF_ERROR(r.I32(&p.current_vcpu));
    NEVE_RETURN_IF_ERROR(r.U8(&p.guest_loaded));
    NEVE_RETURN_IF_ERROR(r.I32(&p.lrs_loaded));
    NEVE_RETURN_IF_ERROR(GetEl1(r, &p.host_el1));
    NEVE_RETURN_IF_ERROR(GetExt(r, &p.host_ext));
    NEVE_RETURN_IF_ERROR(GetPmu(r, &p.host_pmu));
  }
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8));
  img.host.vcpu_state.resize(n);
  for (auto& row : img.host.vcpu_state) {
    uint64_t nr = 0;
    NEVE_RETURN_IF_ERROR(r.Count(&nr, 64));
    row.resize(nr);
    for (VcpuHostStateImage& s : row) {
      NEVE_RETURN_IF_ERROR(GetVcpuHostState(r, &s));
    }
  }
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecGuest));
  NEVE_RETURN_IF_ERROR(r.U8(&img.guest.present));
  NEVE_RETURN_IF_ERROR(r.U64(&img.guest.table_alloc_next));
  NEVE_RETURN_IF_ERROR(r.U64(&img.guest.next_nested_ram));
  NEVE_RETURN_IF_ERROR(r.Count(&n, 64));
  img.guest.vms.resize(n);
  for (VmImage& v : img.guest.vms) {
    NEVE_RETURN_IF_ERROR(GetVm(r, &v));
  }
  NEVE_RETURN_IF_ERROR(r.Count(&n, 64));
  img.guest.pvcpu.resize(n);
  for (PvcpuImage& p : img.guest.pvcpu) {
    NEVE_RETURN_IF_ERROR(r.I32(&p.running_vm));
    NEVE_RETURN_IF_ERROR(r.I32(&p.running_vcpu));
    NEVE_RETURN_IF_ERROR(GetEl1(r, &p.kernel_el1));
    NEVE_RETURN_IF_ERROR(GetExt(r, &p.kernel_ext));
    NEVE_RETURN_IF_ERROR(GetTimer(r, &p.timer));
  }
  NEVE_RETURN_IF_ERROR(r.Count(&n, 8));
  img.guest.nstate.resize(n);
  for (auto& row : img.guest.nstate) {
    uint64_t nr = 0;
    NEVE_RETURN_IF_ERROR(r.Count(&nr, 64));
    row.resize(nr);
    for (NestedVcpuStateImage& s : row) {
      NEVE_RETURN_IF_ERROR(r.U8(&s.present));
      NEVE_RETURN_IF_ERROR(GetEl1(r, &s.el1));
      NEVE_RETURN_IF_ERROR(GetExt(r, &s.ext));
      NEVE_RETURN_IF_ERROR(GetPmu(r, &s.pmu));
      NEVE_RETURN_IF_ERROR(r.U64(&s.elr));
      NEVE_RETURN_IF_ERROR(r.U64(&s.spsr));
    }
  }
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  NEVE_RETURN_IF_ERROR(r.OpenSection(kSecDevs));
  NEVE_RETURN_IF_ERROR(r.U8(&img.devs.device_present));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.device_reads));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.device_writes));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.device_last_write));
  NEVE_RETURN_IF_ERROR(r.U8(&img.devs.backend_present));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.last_avail));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.busy_until));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.kicks));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.buffers_processed));
  NEVE_RETURN_IF_ERROR(r.U8(&img.devs.driver_present));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.avail_idx));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.last_used));
  NEVE_RETURN_IF_ERROR(r.I32(&img.devs.next_desc));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.kicks_sent));
  NEVE_RETURN_IF_ERROR(r.U64(&img.devs.posts));
  NEVE_RETURN_IF_ERROR(r.CloseSection());

  if (!r.AtEnd()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }
  *out = std::move(img);
  return Status::Ok();
}

// ===========================================================================
// Apply
// ===========================================================================

Status Serializer::ApplyVmStructural(Vm& vm, const VmImage& img,
                                     const std::string& where) {
  if (vm.config_.name != img.name) {
    return Mismatch(where + ": vm name '" + vm.config_.name + "' vs '" +
                    img.name + "'");
  }
  if (vm.config_.num_vcpus != img.num_vcpus ||
      vm.num_vcpus() != static_cast<int>(img.vcpus.size())) {
    return Mismatch(where + ": vcpu count of '" + img.name + "'");
  }
  if (vm.config_.ram_size != img.ram_size) {
    return Mismatch(where + ": ram size of '" + img.name + "'");
  }
  if ((vm.config_.virtual_el2 ? 1 : 0) != img.virtual_el2 ||
      (vm.config_.expose_neve ? 1 : 0) != img.expose_neve ||
      (vm.config_.guest_vhe ? 1 : 0) != img.guest_vhe) {
    return Mismatch(where + ": virtualization config of '" + img.name + "'");
  }
  if (vm.id_ != img.id) {
    return Mismatch(where + ": vm id of '" + img.name + "'");
  }
  if (vm.ram_base_.value != img.ram_base) {
    return Mismatch(where + ": ram base of '" + img.name + "'");
  }
  if (vm.s2_.root().value != img.s2_root) {
    return Mismatch(where + ": stage-2 root of '" + img.name + "'");
  }
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& vc = vm.vcpu(i);
    const VcpuImage& vi = img.vcpus[static_cast<size_t>(i)];
    if (vc.vncr_hw_page.value != vi.vncr_hw_page) {
      return Mismatch(where + ": VNCR page of '" + img.name + "'");
    }
    if (vc.deferred_vector.has_value()) {
      return Mismatch(where + ": restore target vcpu of '" + img.name +
                      "' holds a pending deferred vector call");
    }
    if (vi.vregs.size() != static_cast<size_t>(kNumRegIds)) {
      return Mismatch(where + ": vreg file size of '" + img.name + "'");
    }
  }
  return Status::Ok();
}

void Serializer::ApplyVmValues(Vm& vm, const VmImage& img) {
  vm.dead_ = img.dead != 0;
  vm.generation_ = img.generation;
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    Vcpu& vc = vm.vcpu(i);
    const VcpuImage& vi = img.vcpus[static_cast<size_t>(i)];
    vc.mode = static_cast<VcpuMode>(vi.mode);
    vc.main_sw.started = vi.main_started != 0;
    vc.nested_sw.started = vi.nested_started != 0;
    vc.nested2_sw.started = vi.nested2_started != 0;
    vc.active_nested = vi.active_nested != 0 ? &vc.nested2_sw : &vc.nested_sw;
    vc.vel2_handler_active = vi.vel2_handler_active != 0;
    vc.parked = vi.parked != 0;
    vc.loaded_on_pcpu = vi.loaded_on_pcpu;
    vc.nested_is_hyp = vi.nested_is_hyp != 0;
    vc.nested_hcr = vi.nested_hcr;
    vc.deferred_vector_active = vi.deferred_vector_active != 0;
    vc.mmio_retry = vi.mmio_retry != 0;
    for (const ShadowImage& si : vi.shadows) {
      // The shadow objects were reconciled before the page rewrite; here we
      // only point them at their restored trees and counters.
      ShadowS2& sh = *vc.shadows.at(si.vvttbr);
      sh.table_.table_.root_ = Pa(si.root);
      sh.faults_handled_ = si.faults_handled;
      sh.flushes_ = si.flushes;
      sh.installed_ = si.installed;
      sh.virtual_faults_ = si.virtual_faults;
      sh.host_faults_ = si.host_faults;
    }
    vc.pending_virq.assign(vi.pending_virq.begin(), vi.pending_virq.end());
    vc.virqs_enqueued = vi.virqs_enqueued;
    vc.mmio_result = vi.mmio_result;
    vc.exits = vi.exits;
    vc.vel2_deliveries = vi.vel2_deliveries;
    std::copy(vi.vregs.begin(), vi.vregs.end(), vc.vregs_);
  }
}

Status Serializer::Apply(const SnapTargets& t, const Image& img) {
  NEVE_CHECK_MSG(t.machine != nullptr && t.host != nullptr,
                 "snapshot apply needs a machine and a host hypervisor");
  Machine& m = *t.machine;
  HostKvm& h = *t.host;

  // ------------------------------------------------------------------
  // Phase 1: structural verification. Any mismatch returns an error
  // Status here, before a single byte of the target is mutated.
  // ------------------------------------------------------------------
  const MachineConfig& mc = m.config_;
  if (img.meta.num_cpus != mc.num_cpus ||
      img.meta.ram_size != mc.ram_size ||
      img.meta.host_pool_size != mc.host_pool_size ||
      img.meta.cycles_per_timer_tick != mc.cycles_per_timer_tick ||
      img.meta.ipi_wire_latency != mc.ipi_wire_latency) {
    return Mismatch("machine geometry");
  }
  if (img.meta.feat_vhe != (mc.features.vhe ? 1 : 0) ||
      img.meta.feat_nv != (mc.features.nv ? 1 : 0) ||
      img.meta.feat_neve != (mc.features.neve ? 1 : 0) ||
      img.meta.feat_neve_deferred != (mc.features.neve_deferred ? 1 : 0) ||
      img.meta.feat_neve_redirect != (mc.features.neve_redirect ? 1 : 0) ||
      img.meta.feat_neve_cached != (mc.features.neve_cached ? 1 : 0)) {
    return Mismatch("architecture features");
  }
  if (img.meta.host_vhe != (h.config_.vhe ? 1 : 0) ||
      img.meta.host_use_neve != (h.config_.use_neve ? 1 : 0)) {
    return Mismatch("host hypervisor config");
  }
  if ((img.guest.present != 0) != (t.guest_hyp != nullptr)) {
    return Mismatch("guest hypervisor presence");
  }
  if ((img.devs.device_present != 0) != (t.device != nullptr) ||
      (img.devs.backend_present != 0) != (t.virtio_backend != nullptr) ||
      (img.devs.driver_present != 0) != (t.virtio_driver != nullptr)) {
    return Mismatch("device presence");
  }

  if (img.cpus.size() != static_cast<size_t>(m.num_cpus())) {
    return Mismatch("cpu count");
  }
  for (int i = 0; i < m.num_cpus(); ++i) {
    Cpu& c = m.cpu(i);
    const CpuImage& ci = img.cpus[static_cast<size_t>(i)];
    if (ci.el != static_cast<uint8_t>(c.el_)) {
      return Mismatch("cpu " + std::to_string(i) + " exception level");
    }
    if (ci.trap_depth != c.trap_depth_) {
      return Mismatch("cpu " + std::to_string(i) + " trap depth");
    }
    if (ci.regs.size() != static_cast<size_t>(kNumRegIds)) {
      return Mismatch("cpu " + std::to_string(i) + " register file size");
    }
    if (ci.cycles_by_class.size() !=
        static_cast<size_t>(CpuTrace::kNumClasses)) {
      return Mismatch("cpu " + std::to_string(i) + " trace class count");
    }
  }

  PhysMem& mem = m.mem_;
  for (const PageImage& p : img.mem.pages) {
    if ((p.page_index << kPageShift) >= mem.size_) {
      return Status::InvalidArgument(
          "snapshot: resident page beyond physical memory");
    }
  }

  CycleAttribution& attr = m.attr_;
  if (img.attr.percpu.size() != attr.percpu_.size()) {
    return Mismatch("attribution shard count");
  }
  for (size_t i = 0; i < attr.percpu_.size(); ++i) {
    if (img.attr.percpu[i].stack != attr.percpu_[i].stack) {
      return Mismatch("attribution frame stack of cpu " + std::to_string(i));
    }
    if (img.attr.percpu[i].stack.empty()) {
      return Mismatch("attribution frame stack of cpu " + std::to_string(i) +
                      " is empty");
    }
  }

  if (img.fault.counts.size() != static_cast<size_t>(kNumFaultPoints)) {
    return Mismatch("fault point count");
  }

  GicV3& g = m.gic_;
  if (img.gic.ack_info.size() != g.ack_info_.size() ||
      img.gic.virtual_acks.size() != g.virtual_acks_.size() ||
      img.gic.virtual_eois.size() != g.virtual_eois_.size()) {
    return Mismatch("gic shard shape");
  }
  for (const auto& row : img.gic.ack_info) {
    if (row.size() != static_cast<size_t>(GicV3::kNumListRegs)) {
      return Mismatch("gic list-register count");
    }
  }

  if (img.host.vms.size() != h.vms_.size()) {
    return Mismatch("host VM count");
  }
  for (size_t i = 0; i < h.vms_.size(); ++i) {
    NEVE_RETURN_IF_ERROR(
        ApplyVmStructural(*h.vms_[i], img.host.vms[i], "host"));
  }
  if (img.host.pcpu.size() != h.pcpu_.size()) {
    return Mismatch("pcpu count");
  }
  for (size_t i = 0; i < h.pcpu_.size(); ++i) {
    const PcpuImage& pi = img.host.pcpu[i];
    Vcpu* want = nullptr;
    if (pi.current_vm >= 0) {
      if (static_cast<size_t>(pi.current_vm) >= h.vms_.size()) {
        return Status::InvalidArgument("snapshot: loaded-vcpu VM out of range");
      }
      Vm& vm = *h.vms_[static_cast<size_t>(pi.current_vm)];
      if (pi.current_vcpu < 0 || pi.current_vcpu >= vm.num_vcpus()) {
        return Status::InvalidArgument(
            "snapshot: loaded-vcpu index out of range");
      }
      want = &vm.vcpu(pi.current_vcpu);
    }
    if (h.pcpu_[i].current != want) {
      return Mismatch("loaded vcpu identity on pcpu " + std::to_string(i));
    }
  }
  if (img.host.vcpu_state.size() != h.vms_.size()) {
    return Mismatch("host vcpu-state shape");
  }
  for (size_t i = 0; i < h.vms_.size(); ++i) {
    if (img.host.vcpu_state[i].size() !=
        static_cast<size_t>(h.vms_[i]->num_vcpus())) {
      return Mismatch("host vcpu-state row shape");
    }
  }

  GuestKvm* gk = t.guest_hyp;
  if (gk != nullptr) {
    if (img.guest.vms.size() != gk->vms_.size()) {
      return Mismatch("nested VM count");
    }
    for (size_t i = 0; i < gk->vms_.size(); ++i) {
      NEVE_RETURN_IF_ERROR(
          ApplyVmStructural(*gk->vms_[i], img.guest.vms[i], "guest"));
    }
    if (img.guest.pvcpu.size() != gk->pvcpu_.size()) {
      return Mismatch("pvcpu count");
    }
    for (size_t i = 0; i < gk->pvcpu_.size(); ++i) {
      const PvcpuImage& pi = img.guest.pvcpu[i];
      Vcpu* want = nullptr;
      if (pi.running_vm >= 0) {
        if (static_cast<size_t>(pi.running_vm) >= gk->vms_.size()) {
          return Status::InvalidArgument(
              "snapshot: running nested-vcpu VM out of range");
        }
        Vm& vm = *gk->vms_[static_cast<size_t>(pi.running_vm)];
        if (pi.running_vcpu < 0 || pi.running_vcpu >= vm.num_vcpus()) {
          return Status::InvalidArgument(
              "snapshot: running nested-vcpu index out of range");
        }
        want = &vm.vcpu(pi.running_vcpu);
      }
      if (gk->pvcpu_[i].running != want) {
        return Mismatch("running nested vcpu identity on pvcpu " +
                        std::to_string(i));
      }
    }
    if (img.guest.nstate.size() != gk->vms_.size()) {
      return Mismatch("nested vcpu-state shape");
    }
    MutexLock lock(gk->nstate_mu_);
    for (size_t i = 0; i < gk->vms_.size(); ++i) {
      Vm& vm = *gk->vms_[i];
      if (img.guest.nstate[i].size() !=
          static_cast<size_t>(vm.num_vcpus())) {
        return Mismatch("nested vcpu-state row shape");
      }
      for (int j = 0; j < vm.num_vcpus(); ++j) {
        auto it = gk->nstate_.find(&vm.vcpu(j));
        if (it != gk->nstate_.end() && it->second->rec != nullptr) {
          return Status::Unimplemented(
              "snapshot: restore target holds live recursive-nesting state");
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Phase 2: shadow-object and context-slot reconstruction. ShadowS2
  // construction allocates (and zeroes) a root page through the target's
  // allocators, so it MUST precede both the page rewrite (which replaces the
  // whole resident set, dropping those transient pages) and the cursor
  // restore (which rewinds the allocators to the captured positions).
  // ------------------------------------------------------------------
  auto reconcile_shadows = [](Vcpu& vc, const VcpuImage& vi, MemIo* smem,
                              PageAllocator* salloc, FaultInjector* fault) {
    for (auto it = vc.shadows.begin(); it != vc.shadows.end();) {
      const uint64_t key = it->first;
      const bool keep =
          std::any_of(vi.shadows.begin(), vi.shadows.end(),
                      [key](const ShadowImage& s) { return s.vvttbr == key; });
      it = keep ? std::next(it) : vc.shadows.erase(it);
    }
    for (const ShadowImage& s : vi.shadows) {
      std::unique_ptr<ShadowS2>& slot = vc.shadows[s.vvttbr];
      if (slot == nullptr) {
        slot = std::make_unique<ShadowS2>(smem, salloc);
        slot->SetFaultInjector(fault);
      }
    }
  };
  for (size_t i = 0; i < h.vms_.size(); ++i) {
    Vm& vm = *h.vms_[i];
    for (int j = 0; j < vm.num_vcpus(); ++j) {
      reconcile_shadows(vm.vcpu(j),
                        img.host.vms[i].vcpus[static_cast<size_t>(j)],
                        &m.mem(), &m.host_pool(), &m.fault());
    }
  }
  if (gk != nullptr) {
    for (size_t i = 0; i < gk->vms_.size(); ++i) {
      Vm& vm = *gk->vms_[i];
      for (int j = 0; j < vm.num_vcpus(); ++j) {
        reconcile_shadows(vm.vcpu(j),
                          img.guest.vms[i].vcpus[static_cast<size_t>(j)],
                          &gk->view_, &gk->table_alloc_, &m.fault());
      }
    }
  }
  for (size_t i = 0; i < h.vms_.size(); ++i) {
    Vm& vm = *h.vms_[i];
    for (int j = 0; j < vm.num_vcpus(); ++j) {
      const VcpuHostStateImage& si =
          img.host.vcpu_state[i][static_cast<size_t>(j)];
      if (si.present != 0) {
        std::unique_ptr<HostKvm::VcpuHostState>& slot =
            h.vcpu_state_[&vm.vcpu(j)];
        if (slot == nullptr) {
          slot = std::make_unique<HostKvm::VcpuHostState>();
        }
      } else {
        h.vcpu_state_.erase(&vm.vcpu(j));
      }
    }
  }
  if (gk != nullptr) {
    MutexLock lock(gk->nstate_mu_);
    for (size_t i = 0; i < gk->vms_.size(); ++i) {
      Vm& vm = *gk->vms_[i];
      for (int j = 0; j < vm.num_vcpus(); ++j) {
        const NestedVcpuStateImage& si =
            img.guest.nstate[i][static_cast<size_t>(j)];
        if (si.present != 0) {
          std::unique_ptr<GuestKvm::NestedVcpuState>& slot =
              gk->nstate_[&vm.vcpu(j)];
          if (slot == nullptr) {
            slot = std::make_unique<GuestKvm::NestedVcpuState>();
          }
        } else {
          gk->nstate_.erase(&vm.vcpu(j));
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Phase 3: physical memory rewrite -- the exact captured resident set
  // replaces whatever the target materialized (including the pages the
  // reconstruction above transiently allocated).
  // ------------------------------------------------------------------
  {
    MutexLock lock(mem.pages_mu_);
    mem.pages_.clear();
    for (const PageImage& p : img.mem.pages) {
      auto page = std::make_unique<PhysMem::Page>();
      std::copy(p.data.begin(), p.data.end(), page->begin());
      mem.pages_.emplace(p.page_index, std::move(page));
    }
    mem.dirty_.clear();
  }

  // ------------------------------------------------------------------
  // Phase 4: allocator cursors.
  // ------------------------------------------------------------------
  {
    MutexLock lock(m.host_pool_.mu_);
    m.host_pool_.next_ = img.mem.host_pool_next;
  }
  m.next_guest_ram_ = img.mem.next_guest_ram;
  if (gk != nullptr) {
    {
      MutexLock lock(gk->table_alloc_.mu_);
      gk->table_alloc_.next_ = img.guest.table_alloc_next;
    }
    gk->next_nested_ram_ = img.guest.next_nested_ram;
  }

  // ------------------------------------------------------------------
  // Phase 5: value pokes.
  // ------------------------------------------------------------------
  for (int i = 0; i < m.num_cpus(); ++i) {
    Cpu& c = m.cpu(i);
    const CpuImage& ci = img.cpus[static_cast<size_t>(i)];
    c.cycles_ = ci.cycles;
    std::copy(ci.regs.begin(), ci.regs.end(), c.regs_);
    c.watchdog_deadline_ = ci.watchdog_deadline;
    c.trap_tlbi_ = ci.trap_tlbi != 0;
    CpuTrace& tr = c.trace_;
    tr.record_details_ = ci.record_details != 0;
    tr.traps_to_el2_ = ci.traps_to_el2;
    tr.hvc_traps_ = ci.hvc_traps;
    tr.sysreg_traps_ = ci.sysreg_traps;
    tr.eret_traps_ = ci.eret_traps;
    tr.abort_traps_ = ci.abort_traps;
    tr.irq_exits_ = ci.irq_exits;
    tr.records_.clear();
    for (const TrapRecordImage& ri : ci.records) {
      tr.records_.push_back({.sequence = ri.sequence,
                             .syndrome = SyndromeFrom(ri.syndrome),
                             .cycles_at_entry = ri.cycles_at_entry});
    }
    std::copy(ci.cycles_by_class.begin(), ci.cycles_by_class.end(),
              tr.cycles_by_class_.begin());
    c.tlb_.clear();
    for (const TlbEntryImage& te : ci.tlb) {
      c.tlb_[Cpu::TlbKey{.va_page = te.va_page,
                         .s1_root = te.s1_root,
                         .s2_root = te.s2_root}] =
          Cpu::TlbEntry{.pa_page = te.pa_page, .writable = te.writable != 0};
    }
    // Re-key the resolution cache against the restored HCR/VNCR values; the
    // cache itself is cycle-invisible and rebuilds warm banks on demand.
    c.InvalidateResolutionsFor(RegId::kHCR_EL2);
  }

  for (size_t i = 0; i < g.ack_info_.size(); ++i) {
    for (size_t j = 0; j < static_cast<size_t>(GicV3::kNumListRegs); ++j) {
      const LrAckImage& a = img.gic.ack_info[i][j];
      g.ack_info_[i][j] = {.ack_cycles = a.ack_cycles,
                           .ack_trace_id = a.ack_trace_id,
                           .valid = a.valid != 0};
    }
  }
  g.virtual_acks_ = img.gic.virtual_acks;
  g.virtual_eois_ = img.gic.virtual_eois;

  FaultInjector& f = m.fault_;
  for (size_t i = 0; i < 4; ++i) {
    f.rng_.state_[i] = img.fault.rng_state[i];
  }
  std::copy(img.fault.counts.begin(), img.fault.counts.end(), f.counts_);
  f.log_.clear();
  for (const InjectionImage& rec : img.fault.log) {
    f.log_.push_back({.seq = rec.seq,
                      .point = static_cast<FaultPoint>(rec.point),
                      .cpu = rec.cpu,
                      .cycles = rec.cycles,
                      .detail = rec.detail,
                      .attr_key = rec.attr_key});
  }

  for (size_t i = 0; i < h.vms_.size(); ++i) {
    ApplyVmValues(*h.vms_[i], img.host.vms[i]);
  }
  for (size_t i = 0; i < h.pcpu_.size(); ++i) {
    const PcpuImage& pi = img.host.pcpu[i];
    HostKvm::PcpuState& ps = h.pcpu_[i];
    // ps.current was verified identical above and is left alone.
    ps.guest_loaded = pi.guest_loaded != 0;
    ps.lrs_loaded = pi.lrs_loaded;
    FromImage(pi.host_el1, &ps.host_el1);
    FromImage(pi.host_ext, &ps.host_ext);
    FromImage(pi.host_pmu, &ps.host_pmu);
  }
  for (size_t i = 0; i < h.vms_.size(); ++i) {
    Vm& vm = *h.vms_[i];
    for (int j = 0; j < vm.num_vcpus(); ++j) {
      const VcpuHostStateImage& si =
          img.host.vcpu_state[i][static_cast<size_t>(j)];
      if (si.present == 0) {
        continue;
      }
      HostKvm::VcpuHostState& hs = *h.vcpu_state_.at(&vm.vcpu(j));
      FromImage(si.cur_el1, &hs.cur_el1);
      FromImage(si.vel2_exec, &hs.vel2_exec);
      FromImage(si.ext, &hs.ext);
      FromImage(si.pmu, &hs.pmu);
      hs.elr = si.elr;
      hs.spsr = si.spsr;
      FromImage(si.timer, &hs.timer);
      hs.cntvoff = si.cntvoff;
    }
  }

  if (gk != nullptr) {
    for (size_t i = 0; i < gk->vms_.size(); ++i) {
      ApplyVmValues(*gk->vms_[i], img.guest.vms[i]);
    }
    for (size_t i = 0; i < gk->pvcpu_.size(); ++i) {
      const PvcpuImage& pi = img.guest.pvcpu[i];
      GuestKvm::PvcpuState& ps = gk->pvcpu_[i];
      FromImage(pi.kernel_el1, &ps.kernel_el1);
      FromImage(pi.kernel_ext, &ps.kernel_ext);
      FromImage(pi.timer, &ps.timer);
    }
    MutexLock lock(gk->nstate_mu_);
    for (size_t i = 0; i < gk->vms_.size(); ++i) {
      Vm& vm = *gk->vms_[i];
      for (int j = 0; j < vm.num_vcpus(); ++j) {
        const NestedVcpuStateImage& si =
            img.guest.nstate[i][static_cast<size_t>(j)];
        if (si.present == 0) {
          continue;
        }
        GuestKvm::NestedVcpuState& ns = *gk->nstate_.at(&vm.vcpu(j));
        FromImage(si.el1, &ns.el1);
        FromImage(si.ext, &ns.ext);
        FromImage(si.pmu, &ns.pmu);
        ns.elr = si.elr;
        ns.spsr = si.spsr;
      }
    }
  }

  if (t.device != nullptr) {
    t.device->reads_ = img.devs.device_reads;
    t.device->writes_ = img.devs.device_writes;
    t.device->last_write_ = img.devs.device_last_write;
  }
  if (t.virtio_backend != nullptr) {
    MutexLock lock(t.virtio_backend->ring_mu_);
    t.virtio_backend->last_avail_ = img.devs.last_avail;
    t.virtio_backend->busy_until_ = img.devs.busy_until;
    t.virtio_backend->kicks_ = img.devs.kicks;
    t.virtio_backend->buffers_processed_ = img.devs.buffers_processed;
  }
  if (t.virtio_driver != nullptr) {
    t.virtio_driver->avail_idx_ = img.devs.avail_idx;
    t.virtio_driver->last_used_ = img.devs.last_used;
    t.virtio_driver->next_desc_ = img.devs.next_desc;
    t.virtio_driver->kicks_sent_ = img.devs.kicks_sent;
    t.virtio_driver->posts_ = img.devs.posts;
  }

  // ------------------------------------------------------------------
  // Phase 6: attribution rebuild. The bucket maps are cleared and refilled
  // with the exact captured key set (including zero-cycle keys), then the
  // cached hot-path pointers are recomputed against the new map.
  // ------------------------------------------------------------------
  for (size_t i = 0; i < attr.percpu_.size(); ++i) {
    CycleAttribution::PerCpu& pc = attr.percpu_[i];
    const AttrCpuImage& ai = img.attr.percpu[i];
    pc.buckets.clear();
    for (const auto& [key, cycles] : ai.buckets) {
      pc.buckets[key] = cycles;
    }
    pc.bucket = &pc.buckets[pc.stack.back()];
    pc.memo_key = ~UINT64_C(0);
    pc.memo_bucket = nullptr;
  }
  {
    MutexLock lock(attr.flights_mu_);
    attr.flights_.clear();
    for (const FlightImage& fi : img.attr.flights) {
      CycleAttribution::FlightRecord fr;
      fr.reason = fi.reason;
      fr.cycles = fi.cycles;
      for (const AttrBucketImage& b : fi.buckets) {
        fr.buckets.push_back({.vm = b.vm,
                              .vcpu = b.vcpu,
                              .layer = static_cast<AttrLayer>(b.layer),
                              .cat = static_cast<AttrCat>(b.cat),
                              .cycles = b.cycles});
      }
      attr.flights_.push_back(std::move(fr));
    }
    attr.flight_next_ = img.attr.flight_next;
  }

  return Status::Ok();
}

Status Serializer::CaptureBytes(const SnapTargets& t,
                                std::vector<uint8_t>* out) {
  Image img;
  NEVE_RETURN_IF_ERROR(Capture(t, &img));
  *out = Encode(img);
  return Status::Ok();
}

Status Serializer::ApplyBytes(const SnapTargets& t,
                              const std::vector<uint8_t>& bytes) {
  Image img;
  NEVE_RETURN_IF_ERROR(Decode(bytes, &img));
  return Apply(t, img);
}

}  // namespace snap
}  // namespace neve
