// Crash-consistent checkpoint/restore of a whole simulated stack.
//
// The snapshot covers everything ArchStateDigest covers *plus* the software
// state the hypervisor layers keep: CPU register files and cycle clocks, trap
// traces and TLBs, the resident physical page set (which transitively holds
// every page table, shadow table, VNCR deferred page and guest RAM byte),
// allocator cursors, vCPU contexts at both hypervisor levels, vGIC
// bookkeeping, virtio ring cursors, device counters, the fault injector's RNG
// stream and log, and the cycle-attribution shards. Restoring into a stack
// that was rebuilt to the same structural point and continuing the run is
// bit-identical -- digest, trap counts and attribution buckets -- to the
// uninterrupted control run (tests/snap_test.cc proves it per config).
//
// Restore protocol: a snapshot does not serialize the C++ call stack (which
// mirrors the privilege stack by construction), so Apply() must run at a
// *structurally identical* point -- same boot sequence, same nesting depth,
// same attribution frame stack -- reached by replaying the deterministic
// boot. Apply verifies the structural invariants (configs, roots, frame
// stacks, loaded-vcpu identity) and returns an error Status instead of
// mutating anything when they do not hold; migration uses exactly that
// contract to roll back on a corrupt stream.
//
// Determinism caveat: physical addresses handed out by PageAllocator depend
// on lane interleaving (phys_mem.h), so byte-identical capture -- and thus
// restore -- is guaranteed only for runs whose SMP lanes execute on one host
// thread (threads=1), where allocation order is logical, not scheduled.

#ifndef NEVE_SRC_SNAP_SNAPSHOT_H_
#define NEVE_SRC_SNAP_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/sysreg.h"
#include "src/base/status.h"
#include "src/hyp/world_switch.h"
#include "src/mem/addr.h"

namespace neve {

class Machine;
class HostKvm;
class GuestKvm;
class TestDevice;
class VirtioBackend;
class VirtioDriver;
class Vm;
class Vcpu;

namespace snap {

// Everything a snapshot reads or writes. machine and host are required; the
// rest are present on the stacks that have them (nested stacks carry a guest
// hypervisor, workload harnesses a test device and/or a virtio pair).
struct SnapTargets {
  Machine* machine = nullptr;
  HostKvm* host = nullptr;
  GuestKvm* guest_hyp = nullptr;
  TestDevice* device = nullptr;
  VirtioBackend* virtio_backend = nullptr;
  VirtioDriver* virtio_driver = nullptr;
};

// ---------------------------------------------------------------------------
// The in-memory image: pure data, decoded in full before any machine
// mutation. Field names mirror the `member_` fields they serialize; the
// snapshot-coverage lint keys on those tokens appearing in src/snap sources.
// ---------------------------------------------------------------------------

struct SyndromeImage {
  uint8_t ec = 0;
  uint16_t imm16 = 0;
  uint32_t sysreg = 0;
  uint8_t is_write = 0;
  uint64_t write_value = 0;
  uint64_t far = 0;
  uint64_t hpfar = 0;
  uint8_t abort_is_write = 0;
  uint8_t access_size = 8;
  uint32_t intid = 0;
};

struct TrapRecordImage {
  uint64_t sequence = 0;
  SyndromeImage syndrome;
  uint64_t cycles_at_entry = 0;
};

struct TlbEntryImage {
  uint64_t va_page = 0;
  uint64_t s1_root = 0;
  uint64_t s2_root = 0;
  uint64_t pa_page = 0;
  uint8_t writable = 0;
};

struct CpuImage {
  uint8_t el = 0;          // verified structurally, never overwritten
  int32_t trap_depth = 0;  // verified structurally, never overwritten
  uint64_t cycles = 0;
  std::vector<uint64_t> regs;  // kNumRegIds entries
  uint64_t watchdog_deadline = 0;
  uint8_t trap_tlbi = 0;
  uint8_t record_details = 0;
  uint64_t traps_to_el2 = 0;
  uint64_t hvc_traps = 0;
  uint64_t sysreg_traps = 0;
  uint64_t eret_traps = 0;
  uint64_t abort_traps = 0;
  uint64_t irq_exits = 0;
  std::vector<TrapRecordImage> records;
  std::vector<uint64_t> cycles_by_class;
  std::vector<TlbEntryImage> tlb;  // sorted by (va_page, s1_root, s2_root)
};

struct PageImage {
  uint64_t page_index = 0;
  std::array<uint8_t, kPageSize> data{};
};

struct MemImage {
  std::vector<PageImage> pages;  // sorted by page_index; the full resident set
  uint64_t host_pool_next = 0;   // PageAllocator cursor (machine host pool)
  uint64_t next_guest_ram = 0;   // Machine guest-RAM carve-out cursor
};

struct AttrBucketImage {
  int32_t vm = -1;
  int32_t vcpu = -1;
  uint8_t layer = 0;
  uint8_t cat = 0;
  uint64_t cycles = 0;
};

struct AttrCpuImage {
  std::vector<uint64_t> stack;  // packed frame keys; verified, not overwritten
  // This CPU's bucket shard, sorted by key for wire determinism.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct FlightImage {
  std::string reason;
  uint64_t cycles = 0;
  std::vector<AttrBucketImage> buckets;
};

struct AttrImage {
  std::vector<AttrCpuImage> percpu;
  std::vector<FlightImage> flights;
  uint64_t flight_next = 0;
};

struct InjectionImage {
  uint64_t seq = 0;
  uint32_t point = 0;
  int32_t cpu = -1;
  uint64_t cycles = 0;
  uint64_t detail = 0;
  uint64_t attr_key = 0;
};

struct FaultImage {
  std::array<uint64_t, 4> rng_state{};
  std::vector<uint64_t> counts;  // kNumFaultPoints entries
  std::vector<InjectionImage> log;
};

struct LrAckImage {
  uint64_t ack_cycles = 0;
  uint64_t ack_trace_id = 0;
  uint8_t valid = 0;
};

struct GicImage {
  std::vector<std::vector<LrAckImage>> ack_info;  // [cpu][list register]
  std::vector<uint64_t> virtual_acks;             // per-CPU shards
  std::vector<uint64_t> virtual_eois;
};

struct ShadowImage {
  uint64_t vvttbr = 0;  // the map key
  uint64_t root = 0;
  uint64_t faults_handled = 0;
  uint64_t flushes = 0;
  uint64_t installed = 0;
  uint64_t virtual_faults = 0;
  uint64_t host_faults = 0;
};

struct VcpuImage {
  uint8_t mode = 0;
  uint8_t main_started = 0;
  uint8_t nested_started = 0;
  uint8_t nested2_started = 0;
  uint8_t active_nested = 0;  // 0 = nested_sw, 1 = nested2_sw
  uint8_t vel2_handler_active = 0;
  uint8_t parked = 0;
  int32_t loaded_on_pcpu = -1;
  uint8_t nested_is_hyp = 0;
  uint64_t nested_hcr = 0;
  uint8_t deferred_vector_active = 0;
  uint8_t mmio_retry = 0;
  std::vector<ShadowImage> shadows;  // sorted by vvttbr (std::map order)
  uint64_t vncr_hw_page = 0;         // verified structurally
  std::vector<uint32_t> pending_virq;
  uint64_t virqs_enqueued = 0;
  uint64_t mmio_result = 0;
  uint64_t exits = 0;
  uint64_t vel2_deliveries = 0;
  std::vector<uint64_t> vregs;  // kNumRegIds entries
};

struct VmImage {
  // Structural (verified): the restore target must have created an identical
  // VM through the same deterministic boot.
  std::string name;
  int32_t num_vcpus = 1;
  uint64_t ram_size = 0;
  uint8_t virtual_el2 = 0;
  uint8_t expose_neve = 0;
  uint8_t guest_vhe = 0;
  int32_t id = -1;
  uint64_t ram_base = 0;
  uint64_t s2_root = 0;
  // Value state (overwritten).
  uint8_t dead = 0;
  uint64_t generation = 0;
  std::vector<VcpuImage> vcpus;
};

struct El1ContextImage {
  std::array<uint64_t, kNumVmEl1Regs> regs{};
};

struct ExtEl1ContextImage {
  std::array<uint64_t, kNumExtEl1Regs> regs{};
};

struct PmuImage {
  uint64_t mdscr = 0;
  uint64_t pmuserenr = 0;
};

struct TimerContextImage {
  uint64_t cntv_ctl = 0;
  uint64_t cntv_cval = 0;
};

struct VcpuHostStateImage {
  uint8_t present = 0;  // the host creates these lazily; absent stays absent
  El1ContextImage cur_el1;
  El1ContextImage vel2_exec;
  ExtEl1ContextImage ext;
  PmuImage pmu;
  uint64_t elr = 0;
  uint64_t spsr = 0;
  TimerContextImage timer;
  uint64_t cntvoff = 0;
};

struct PcpuImage {
  int32_t current_vm = -1;    // (vm index, vcpu id); verified against target
  int32_t current_vcpu = -1;
  uint8_t guest_loaded = 0;
  int32_t lrs_loaded = 0;
  El1ContextImage host_el1;
  ExtEl1ContextImage host_ext;
  PmuImage host_pmu;
};

struct HostImage {
  std::vector<VmImage> vms;
  std::vector<PcpuImage> pcpu;
  // Host-side per-vcpu contexts, indexed [vm][vcpu] over the vms above.
  std::vector<std::vector<VcpuHostStateImage>> vcpu_state;
};

struct NestedVcpuStateImage {
  uint8_t present = 0;
  El1ContextImage el1;
  ExtEl1ContextImage ext;
  PmuImage pmu;
  uint64_t elr = 0;
  uint64_t spsr = 0;
};

struct PvcpuImage {
  int32_t running_vm = -1;  // nested (vm index, vcpu id); verified
  int32_t running_vcpu = -1;
  El1ContextImage kernel_el1;
  ExtEl1ContextImage kernel_ext;
  TimerContextImage timer;
};

struct GuestImage {
  uint8_t present = 0;  // nested stacks only
  uint64_t table_alloc_next = 0;
  uint64_t next_nested_ram = 0;
  std::vector<VmImage> vms;
  std::vector<PvcpuImage> pvcpu;
  std::vector<std::vector<NestedVcpuStateImage>> nstate;  // [vm][vcpu]
};

struct DevImage {
  uint8_t device_present = 0;
  uint64_t device_reads = 0;
  uint64_t device_writes = 0;
  uint64_t device_last_write = 0;
  uint8_t backend_present = 0;
  uint64_t last_avail = 0;
  uint64_t busy_until = 0;
  uint64_t kicks = 0;
  uint64_t buffers_processed = 0;
  uint8_t driver_present = 0;
  uint64_t avail_idx = 0;
  uint64_t last_used = 0;
  int32_t next_desc = 0;
  uint64_t kicks_sent = 0;
  uint64_t posts = 0;
};

struct MetaImage {
  // Machine construction parameters; Apply verifies them against the target.
  int32_t num_cpus = 1;
  uint64_t ram_size = 0;
  uint64_t host_pool_size = 0;
  uint64_t cycles_per_timer_tick = 0;
  uint64_t ipi_wire_latency = 0;
  uint8_t feat_vhe = 0;
  uint8_t feat_nv = 0;
  uint8_t feat_neve = 0;
  uint8_t feat_neve_deferred = 0;
  uint8_t feat_neve_redirect = 0;
  uint8_t feat_neve_cached = 0;
  uint8_t host_vhe = 0;
  uint8_t host_use_neve = 0;
};

struct Image {
  MetaImage meta;
  std::vector<CpuImage> cpus;
  MemImage mem;
  AttrImage attr;
  FaultImage fault;
  GicImage gic;
  HostImage host;
  GuestImage guest;
  DevImage devs;
};

// ---------------------------------------------------------------------------
// The serializer. All four operations are static and stateless; every
// private-field access in the whole snapshot subsystem is concentrated in
// this class's implementation (src/snap/snapshot.cc), which is what the
// `friend class snap::Serializer` declarations across the tree license.
// ---------------------------------------------------------------------------

class Serializer {
 public:
  // Reads the live stack into an Image. Host-side: takes the layer mutexes,
  // charges no cycles, perturbs nothing -- a capture is a no-op for the
  // captured run. Fails (without partial output) when the stack holds state
  // the format does not cover yet (live recursive-nesting RecState, a
  // pending deferred vector call).
  static Status Capture(const SnapTargets& t, Image* out);

  // Byte-deterministic encoding: same Image -> same bytes, always.
  static std::vector<uint8_t> Encode(const Image& img);

  // Parses and validates a stream. Truncation -> OutOfRange; corruption
  // (magic, tags, section digests, impossible counts) -> InvalidArgument.
  // No machine is touched -- decode is pure.
  static Status Decode(const std::vector<uint8_t>& bytes, Image* out);

  // Two-phase apply: verifies every structural invariant first (configs,
  // table roots, frame stacks, loaded-vcpu identity -- any mismatch is an
  // error Status, never a Panic), then mutates in dependency order: shadow
  // object reconstruction, physical page rewrite, allocator cursors, value
  // pokes, attribution rebuild. On a verification error the target may have
  // been left untouched or partially verified but never partially written.
  static Status Apply(const SnapTargets& t, const Image& img);

  // Convenience compositions.
  static Status CaptureBytes(const SnapTargets& t, std::vector<uint8_t>* out);
  static Status ApplyBytes(const SnapTargets& t,
                           const std::vector<uint8_t>& bytes);

 private:
  // Capture/encode/decode/apply helpers, one set per section; defined in
  // snapshot.cc where the friended types are complete.
  static Status CaptureVm(Vm& vm, VmImage* out);
  static Status ApplyVmStructural(Vm& vm, const VmImage& img,
                                  const std::string& where);
  static void ApplyVmValues(Vm& vm, const VmImage& img);
};

}  // namespace snap
}  // namespace neve

#endif  // NEVE_SRC_SNAP_SNAPSHOT_H_
