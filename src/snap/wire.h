// Snapshot wire format: versioned, byte-deterministic, self-checking.
//
// A snapshot stream is
//
//   "NEVESNAP" (8 bytes)  u32 version  u32 section_count
//   section*:  u32 tag  u32 reserved  u64 payload_len  payload  u64 digest
//
// where `digest` covers the payload bytes with the same mixing the
// architectural digests use (base/digest.h). Every reader operation is
// bounds-checked and Status-returning: a truncated stream surfaces as
// OutOfRange, a corrupted one as InvalidArgument (magic/tag/digest
// mismatch), never as a crash or a silently-wrong restore. The migration
// engine leans on exactly that contract for its failure-atomic rollback.
//
// Determinism contract: encoding is a pure function of the values written
// and their order -- fixed-width little-endian integers, length-prefixed
// byte runs, no padding, no addresses, no iteration over unordered
// containers (callers sort first).

#ifndef NEVE_SRC_SNAP_WIRE_H_
#define NEVE_SRC_SNAP_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/digest.h"
#include "src/base/status.h"

// Early-return plumbing for the Status-returning reader/applier chains.
#ifndef NEVE_RETURN_IF_ERROR
#define NEVE_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::neve::Status neve_st_ = (expr);       \
    if (!neve_st_.ok()) {                   \
      return neve_st_;                      \
    }                                       \
  } while (false)
#endif

namespace neve {
namespace snap {

inline constexpr char kSnapMagic[8] = {'N', 'E', 'V', 'E',
                                       'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapVersion = 1;

// Section tags (fourcc-style).
inline constexpr uint32_t kSecMeta = 0x4154454D;   // 'META'
inline constexpr uint32_t kSecCpus = 0x53555043;   // 'CPUS'
inline constexpr uint32_t kSecMem = 0x504D454D;    // 'MEMP'
inline constexpr uint32_t kSecAttr = 0x52545441;   // 'ATTR'
inline constexpr uint32_t kSecFault = 0x544C4146;  // 'FALT'
inline constexpr uint32_t kSecGic = 0x43434947;    // 'GICC'
inline constexpr uint32_t kSecHost = 0x54534F48;   // 'HOST'
inline constexpr uint32_t kSecGuest = 0x4D564B47;  // 'GKVM'
inline constexpr uint32_t kSecDevs = 0x53564544;   // 'DEVS'

class Writer {
 public:
  Writer() {
    buf_.insert(buf_.end(), kSnapMagic, kSnapMagic + sizeof(kSnapMagic));
    PutU32(kSnapVersion);
    count_at_ = buf_.size();
    PutU32(0);  // section count, patched by Finish()
  }

  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { PutU32(v); }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void I32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void Bytes(const uint8_t* p, size_t n) { buf_.insert(buf_.end(), p, p + n); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  void BeginSection(uint32_t tag) {
    NEVE_CHECK_MSG(payload_at_ == 0, "nested snapshot section");
    PutU32(tag);
    PutU32(0);  // reserved
    len_at_ = buf_.size();
    U64(0);  // payload length, patched by EndSection()
    payload_at_ = buf_.size();
    ++sections_;
  }

  void EndSection() {
    NEVE_CHECK_MSG(payload_at_ != 0, "EndSection without BeginSection");
    const uint64_t len = buf_.size() - payload_at_;
    PatchU64(len_at_, len);
    Digest d;
    d.Mix(len);
    MixBytes(&d, buf_.data() + payload_at_, len);
    payload_at_ = 0;
    U64(d.value());
  }

  std::vector<uint8_t> Finish() {
    NEVE_CHECK_MSG(payload_at_ == 0, "Finish inside a section");
    PatchU32(count_at_, sections_);
    return std::move(buf_);
  }

 private:
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void PatchU32(size_t at, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  void PatchU64(size_t at, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  static void MixBytes(Digest* d, const uint8_t* p, uint64_t n) {
    uint64_t word = 0;
    uint64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::memcpy(&word, p + i, 8);
      d->Mix(word);
    }
    word = 0;
    for (; i < n; ++i) {
      word = (word << 8) | p[i];
    }
    d->Mix(word);
  }

  std::vector<uint8_t> buf_;
  size_t count_at_ = 0;
  size_t len_at_ = 0;
  size_t payload_at_ = 0;  // nonzero while a section is open
  uint32_t sections_ = 0;

  friend class Reader;  // shares MixBytes
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  // Consumes and validates the stream header; fills the section count.
  Status Header(uint32_t* section_count) {
    uint8_t magic[8];
    NEVE_RETURN_IF_ERROR(Raw(magic, sizeof(magic)));
    if (std::memcmp(magic, kSnapMagic, sizeof(magic)) != 0) {
      return Status::InvalidArgument("snapshot: bad magic");
    }
    uint32_t version = 0;
    NEVE_RETURN_IF_ERROR(U32(&version));
    if (version != kSnapVersion) {
      return Status::InvalidArgument("snapshot: unsupported version " +
                                     std::to_string(version));
    }
    return U32(section_count);
  }

  // Consumes a section header, verifies the tag and the payload digest, and
  // scopes subsequent reads to the payload. CloseSection() must follow.
  Status OpenSection(uint32_t expected_tag) {
    if (sec_end_ != nullptr) {
      return Status::Internal("snapshot: nested section open");
    }
    uint32_t tag = 0;
    uint32_t reserved = 0;
    NEVE_RETURN_IF_ERROR(U32(&tag));
    NEVE_RETURN_IF_ERROR(U32(&reserved));
    if (tag != expected_tag) {
      return Status::InvalidArgument("snapshot: unexpected section tag");
    }
    uint64_t len = 0;
    NEVE_RETURN_IF_ERROR(U64(&len));
    if (static_cast<uint64_t>(end_ - p_) < len + 8) {
      return Status::OutOfRange("snapshot: truncated section payload");
    }
    Digest d;
    d.Mix(len);
    Writer::MixBytes(&d, p_, len);
    const uint8_t* dp = p_ + len;
    uint64_t want = 0;
    for (int i = 0; i < 8; ++i) {
      want |= static_cast<uint64_t>(dp[i]) << (8 * i);
    }
    if (want != d.value()) {
      return Status::InvalidArgument("snapshot: section digest mismatch");
    }
    sec_end_ = p_ + len;
    return Status::Ok();
  }

  // Verifies the payload was fully consumed and steps past the digest.
  Status CloseSection() {
    if (sec_end_ == nullptr) {
      return Status::Internal("snapshot: CloseSection without open");
    }
    if (p_ != sec_end_) {
      return Status::InvalidArgument("snapshot: section payload not consumed");
    }
    sec_end_ = nullptr;
    p_ += 8;  // digest, already verified
    return Status::Ok();
  }

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) {
    uint8_t b[4];
    NEVE_RETURN_IF_ERROR(Raw(b, 4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(b[i]) << (8 * i);
    }
    return Status::Ok();
  }
  Status U64(uint64_t* v) {
    uint8_t b[8];
    NEVE_RETURN_IF_ERROR(Raw(b, 8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(b[i]) << (8 * i);
    }
    return Status::Ok();
  }
  Status I32(int32_t* v) {
    uint32_t u = 0;
    NEVE_RETURN_IF_ERROR(U32(&u));
    *v = static_cast<int32_t>(u);
    return Status::Ok();
  }
  Status Bytes(uint8_t* p, size_t n) { return Raw(p, n); }
  Status Str(std::string* s) {
    uint64_t len = 0;
    NEVE_RETURN_IF_ERROR(U64(&len));
    if (len > Remaining()) {
      return Status::OutOfRange("snapshot: truncated string");
    }
    s->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return Status::Ok();
  }
  // A length prefix about to drive a loop of >= `min_elem_bytes` reads; bound
  // it by the remaining payload so a corrupt count cannot OOM the reader.
  Status Count(uint64_t* n, uint64_t min_elem_bytes) {
    NEVE_RETURN_IF_ERROR(U64(n));
    if (min_elem_bytes != 0 && *n > Remaining() / min_elem_bytes) {
      return Status::OutOfRange("snapshot: element count exceeds payload");
    }
    return Status::Ok();
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  uint64_t Remaining() const {
    const uint8_t* lim = sec_end_ != nullptr ? sec_end_ : end_;
    return static_cast<uint64_t>(lim - p_);
  }
  Status Raw(uint8_t* out, size_t n) {
    if (Remaining() < n) {
      return Status::OutOfRange("snapshot: truncated stream");
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return Status::Ok();
  }

  const uint8_t* p_;
  const uint8_t* end_;
  const uint8_t* sec_end_ = nullptr;  // payload limit while a section is open
};

}  // namespace snap
}  // namespace neve

#endif  // NEVE_SRC_SNAP_WIRE_H_
