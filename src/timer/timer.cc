#include "src/timer/timer.h"

#include "src/base/bits.h"
#include "src/base/status.h"

namespace neve {

TimerUnit::TimerUnit(GicV3* gic, uint64_t cycles_per_tick)
    : gic_(gic), cycles_per_tick_(cycles_per_tick) {
  NEVE_CHECK(gic != nullptr);
  NEVE_CHECK(cycles_per_tick > 0);
}

uint64_t TimerUnit::CountFor(const Cpu& cpu) const {
  return cpu.cycles() / cycles_per_tick_;
}

bool TimerUnit::Expired(const Cpu& cpu, uint64_t ctl, uint64_t cval) const {
  bool enabled = TestBit(ctl, TimerCtl::kEnable);
  bool masked = TestBit(ctl, TimerCtl::kImask);
  return enabled && !masked && CountFor(cpu) >= cval;
}

bool TimerUnit::PollVirtualTimer(Cpu& cpu) {
  uint64_t ctl = cpu.PeekReg(RegId::kCNTV_CTL_EL0);
  uint64_t cval = cpu.PeekReg(RegId::kCNTV_CVAL_EL0);
  // The virtual count is the physical count minus CNTVOFF_EL2 (saturating:
  // an offset ahead of the physical count reads as zero).
  uint64_t voff = cpu.PeekReg(RegId::kCNTVOFF_EL2);
  if (!TestBit(ctl, TimerCtl::kEnable) || TestBit(ctl, TimerCtl::kImask)) {
    return false;
  }
  uint64_t count = CountFor(cpu);
  uint64_t vcount = count > voff ? count - voff : 0;
  if (vcount < cval) {
    return false;
  }
  cpu.PokeReg(RegId::kCNTV_CTL_EL0, SetBit(ctl, TimerCtl::kIstatus));
  gic_->RaisePpi(cpu.index(), kVtimerPpi, cpu.cycles());
  return true;
}

bool TimerUnit::PollHypVirtualTimer(Cpu& cpu) {
  uint64_t ctl = cpu.PeekReg(RegId::kCNTHV_CTL_EL2);
  uint64_t cval = cpu.PeekReg(RegId::kCNTHV_CVAL_EL2);
  if (!Expired(cpu, ctl, cval)) {
    return false;
  }
  cpu.PokeReg(RegId::kCNTHV_CTL_EL2, SetBit(ctl, TimerCtl::kIstatus));
  return true;
}

}  // namespace neve
