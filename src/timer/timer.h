// ARM generic timer model.
//
// Each CPU has an EL1 virtual timer (CNTV_*) and, with VHE, an EL2 virtual
// timer (CNTHV_*) -- the extra timer the paper calls out as a source of
// additional traps for VHE guest hypervisors (section 7.1). The count is
// derived from the CPU's cycle clock; an enabled timer whose compare value
// has passed raises the corresponding PPI through the GIC.

#ifndef NEVE_SRC_TIMER_TIMER_H_
#define NEVE_SRC_TIMER_TIMER_H_

#include <cstdint>

#include "src/cpu/cpu.h"
#include "src/gic/gic.h"

namespace neve {

// PPI intids (GIC architecture assignments).
inline constexpr uint32_t kVtimerPpi = 27;   // EL1 virtual timer
inline constexpr uint32_t kHvtimerPpi = 28;  // EL2 virtual timer (VHE)
inline constexpr uint32_t kPtimerPpi = 30;   // EL1 physical timer

// CNT*_CTL bits.
struct TimerCtl {
  static constexpr unsigned kEnable = 0;
  static constexpr unsigned kImask = 1;
  static constexpr unsigned kIstatus = 2;
};

class TimerUnit {
 public:
  TimerUnit(GicV3* gic, uint64_t cycles_per_tick);

  // Derives the architectural counter value from a CPU's cycle clock.
  uint64_t CountFor(const Cpu& cpu) const;

  // Checks the EL1 virtual timer condition for `cpu` and fires kVtimerPpi
  // when it is enabled, unmasked and expired. Returns true when it fired.
  // The simulated hypervisor polls this at world-switch points, standing in
  // for the asynchronous hardware signal.
  bool PollVirtualTimer(Cpu& cpu);

  // Same for the EL2 virtual timer (VHE hosts).
  bool PollHypVirtualTimer(Cpu& cpu);

 private:
  bool Expired(const Cpu& cpu, uint64_t ctl, uint64_t cval) const;

  GicV3* gic_;  // not-snapshotted: host wiring (timer state lives in the
                // CPU register file, which the snapshot covers)
  uint64_t cycles_per_tick_;  // not-snapshotted: fixed at construction
};

}  // namespace neve

#endif  // NEVE_SRC_TIMER_TIMER_H_
