#include "src/workload/appbench.h"

#include <algorithm>
#include <array>
#include <memory>

#include "src/base/status.h"
#include "src/gic/gic.h"
#include "src/workload/stacks.h"

namespace neve {
namespace {

constexpr int kWarmupRequests = 2;
constexpr int kIrqCostSamples = 4;
constexpr uint32_t kSchedSgi = 6;
constexpr uint64_t kFlagVa = 0x1000;

// The paper's ten workloads (Table 8), in Figure 2 order. Exit mixes are
// derived from the paper's qualitative characterization (section 7.2):
// kernbench/SPECjvm are CPU-bound with sparse VM interactions; hackbench is
// IPI-dominated SMP scheduling; the netperf streams / Apache / Nginx /
// Memcached are interrupt-storm workloads; MySQL mixes moderate I/O with
// x86-expensive single-level exits.
constexpr std::array<AppProfile, 10> kProfiles = {{
    {.name = "Kernbench",
     .compute_cycles = 2'600'000,
     .hypercalls = 0.1,
     .kicks = 0.2,
     .inline_irqs = 0,
     .ipis = 0.1,
     .irq_period = 2'600'000,
     .native_io_cost = 700,
     .x86_io_mult = 1.2,
     .x86_extra_exits = 25},
    {.name = "Hackbench",
     .compute_cycles = 260'000,
     .hypercalls = 0.1,
     .kicks = 0.2,
     .inline_irqs = 0,
     .ipis = 4.5,
     .irq_period = 2'000'000,
     .native_io_cost = 550,
     .x86_io_mult = 1.1,
     .x86_extra_exits = 10},
    {.name = "SPECjvm2008",
     .compute_cycles = 3'400'000,
     .hypercalls = 0.1,
     .kicks = 0.2,
     .inline_irqs = 0,
     .ipis = 0.1,
     .irq_period = 3'400'000,
     .native_io_cost = 700,
     .x86_io_mult = 1.2,
     .x86_extra_exits = 15},
    {.name = "TCP_RR",
     .compute_cycles = 30'000,
     .hypercalls = 0,
     .kicks = 1.0,
     .inline_irqs = 1.0,
     .ipis = 0,
     .irq_period = 0,
     .native_io_cost = 2'300,
     .x86_io_mult = 1.2,
     .x86_extra_exits = 0},
    {.name = "TCP_STREAM",
     .compute_cycles = 110'000,
     .hypercalls = 0,
     .kicks = 0.5,
     .inline_irqs = 0,
     .ipis = 0,
     .irq_period = 750'000,
     .native_io_cost = 1'800,
     .x86_io_mult = 1.4,
     .x86_extra_exits = 0},
    {.name = "TCP_MAERTS",
     .compute_cycles = 48'000,
     .hypercalls = 0,
     .kicks = 0.8,
     .inline_irqs = 0,
     .ipis = 0,
     .irq_period = 400'000,
     .native_io_cost = 1'800,
     .x86_io_mult = 3.6,
     .x86_extra_exits = 0},
    {.name = "Apache",
     .compute_cycles = 120'000,
     .hypercalls = 0.2,
     .kicks = 1.0,
     .inline_irqs = 0,
     .ipis = 0.4,
     .irq_period = 700'000,
     .native_io_cost = 2'200,
     .x86_io_mult = 2.5,
     .x86_extra_exits = 0},
    {.name = "Nginx",
     .compute_cycles = 150'000,
     .hypercalls = 0.1,
     .kicks = 1.2,
     .inline_irqs = 0,
     .ipis = 0.3,
     .irq_period = 800'000,
     .native_io_cost = 2'100,
     .x86_io_mult = 5.0,
     .x86_extra_exits = 0},
    {.name = "Memcached",
     .compute_cycles = 46'000,
     .hypercalls = 0,
     .kicks = 0.6,
     .inline_irqs = 0,
     .ipis = 0,
     .irq_period = 560'000,
     .native_io_cost = 1'400,
     .x86_io_mult = 7.0,
     .x86_extra_exits = 0},
    {.name = "MySQL",
     .compute_cycles = 620'000,
     .hypercalls = 0.3,
     .kicks = 1.2,
     .inline_irqs = 0,
     .ipis = 0.6,
     .irq_period = 900'000,
     .native_io_cost = 1'600,
     .x86_io_mult = 2.4,
     .x86_extra_exits = 100},
}};

// Fractional event-rate accumulator: emits floor(sum) events, carries the
// remainder, so runs honour non-integer per-request rates exactly.
class RateAcc {
 public:
  explicit RateAcc(double per_request) : rate_(per_request) {}
  int Next() {
    acc_ += rate_;
    int n = static_cast<int>(acc_);
    acc_ -= n;
    return n;
  }

 private:
  double rate_;
  double acc_ = 0;
};

double NativeCyclesPerRequest(const AppProfile& p) {
  double events = p.hypercalls + p.kicks + p.inline_irqs + p.ipis;
  return static_cast<double>(p.compute_cycles) + events * p.native_io_cost;
}

// Interrupt-load multiplier: 1/(1-x) while interrupts leave headroom, then
// a linear livelock ramp into bounded NAPI polling (see appbench.h).
double IrqLoadMultiplier(double x) {
  constexpr double kRampStart = 0.8;
  constexpr double kCap = 8.0;
  if (x <= 0) {
    return 1.0;
  }
  if (x < kRampStart) {
    return 1.0 / (1.0 - x);
  }
  double ramp_base = 1.0 / (1.0 - kRampStart);
  double ramp_slope = ramp_base * ramp_base;  // d/dx [1/(1-x)] at the knee
  return std::min(ramp_base + ramp_slope * (x - kRampStart), kCap);
}

struct ServiceMeasurement {
  double service_cycles = 0;   // inline per-request cycles through the stack
  double irq_cost = 0;         // one device-interrupt delivery, measured
};

AppBenchResult FinishResult(const AppProfile& p, bool x86,
                            const ServiceMeasurement& m) {
  AppBenchResult r;
  r.cycles_per_request = m.service_cycles;
  r.native_cycles_per_request = NativeCyclesPerRequest(p);
  double base = m.service_cycles / r.native_cycles_per_request;
  double mult = 1.0;
  if (p.irq_period > 0) {
    double rate_mult = x86 ? p.x86_io_mult : 1.0;
    double x = m.irq_cost * rate_mult / static_cast<double>(p.irq_period);
    mult = IrqLoadMultiplier(x);
  }
  r.overhead = base * mult;
  return r;
}

AppBenchResult RunArmApp(const AppProfile& profile, AppStack stack_kind,
                         int requests) {
  StackConfig cfg;
  switch (stack_kind) {
    case AppStack::kArmVm:
      cfg = StackConfig::Vm();
      break;
    case AppStack::kArmNestedV83:
      cfg = StackConfig::NestedV83(false);
      break;
    case AppStack::kArmNestedV83Vhe:
      cfg = StackConfig::NestedV83(true);
      break;
    case AppStack::kArmNestedNeve:
      cfg = StackConfig::NestedNeve(false);
      break;
    case AppStack::kArmNestedNeveVhe:
      cfg = StackConfig::NestedNeve(true);
      break;
    default:
      NEVE_CHECK(false);
  }

  bool want_ipi = profile.ipis > 0;
  ArmStack stack(cfg, want_ipi ? 2 : 1);

  ServiceMeasurement meas;
  GuestMain receiver = nullptr;
  auto seq_expect = std::make_shared<uint64_t>(0);
  if (want_ipi) {
    receiver = [](GuestEnv& env) {
      auto seq = std::make_shared<uint64_t>(0);
      env.SetIrqHandler([seq](GuestEnv& henv, uint32_t) {
        uint64_t intid = henv.ReadSys(SysReg::kICC_IAR1_EL1);
        henv.Compute(150);
        *seq += 1;
        henv.Store(Va(kFlagVa), *seq);
        henv.WriteSys(SysReg::kICC_EOIR1_EL1, intid);
      });
      env.ParkRunning();
    };
  }

  stack.Run(
      [&](GuestEnv& env) {
        // Device-interrupt handler: ack, driver RX work, EOI.
        env.SetIrqHandler([](GuestEnv& henv, uint32_t) {
          uint64_t intid = henv.ReadSys(SysReg::kICC_IAR1_EL1);
          henv.Compute(900);
          henv.WriteSys(SysReg::kICC_EOIR1_EL1, intid);
        });

        auto fire_irq = [&] {
          env.vcpu().pending_virq.push_back(kBenchDeviceSpi);
          env.cpu().TakeIrq(kBenchDeviceSpi);
        };

        RateAcc hyp(profile.hypercalls);
        RateAcc kick(profile.kicks);
        RateAcc irq(profile.inline_irqs);
        RateAcc ipi(profile.ipis);

        auto one_request = [&] {
          env.Compute(profile.compute_cycles);
          for (int n = hyp.Next(); n > 0; --n) {
            env.Hvc(kHvcTestCall);
          }
          for (int n = kick.Next(); n > 0; --n) {
            (void)env.Load(Va(kBenchDeviceBase));
          }
          for (int n = irq.Next(); n > 0; --n) {
            fire_irq();
          }
          for (int n = ipi.Next(); n > 0; --n) {
            *seq_expect += 1;
            env.WriteSys(SysReg::kICC_SGI1R_EL1, SgiR::Make(0b10, kSchedSgi));
            while (env.Load(Va(kFlagVa)) != *seq_expect) {
              env.Compute(8);
            }
            env.cpu().AdvanceTo(stack.machine().cpu(1).cycles());
          }
        };

        for (int i = 0; i < kWarmupRequests; ++i) {
          one_request();
        }
        uint64_t begin = env.cpu().cycles();
        for (int i = 0; i < requests; ++i) {
          one_request();
        }
        meas.service_cycles =
            static_cast<double>(env.cpu().cycles() - begin) / requests;

        // Sample the device-interrupt delivery cost on this stack.
        if (profile.irq_period > 0) {
          fire_irq();  // warm
          uint64_t t0 = env.cpu().cycles();
          for (int i = 0; i < kIrqCostSamples; ++i) {
            fire_irq();
          }
          meas.irq_cost = static_cast<double>(env.cpu().cycles() - t0) /
                          kIrqCostSamples;
        }
      },
      std::move(receiver));

  return FinishResult(profile, /*x86=*/false, meas);
}

AppBenchResult RunX86App(const AppProfile& profile, bool nested,
                         int requests) {
  bool want_ipi = profile.ipis > 0;
  X86Stack stack(nested, want_ipi ? 2 : 1);

  ServiceMeasurement meas;
  auto flag = std::make_shared<uint64_t>(0);
  auto seq_expect = std::make_shared<uint64_t>(0);
  X86GuestMain receiver = nullptr;
  if (want_ipi) {
    receiver = [flag](X86Env& env) {
      env.SetIrqHandler([flag](X86Env& henv, uint32_t) {
        henv.Compute(150);
        *flag += 1;
        henv.ApicEoi();
      });
      env.ParkRunning();
    };
  }

  stack.Run(
      [&](X86Env& env) {
        env.SetIrqHandler([](X86Env& henv, uint32_t) {
          henv.Compute(900);
          henv.ApicEoi();
        });

        RateAcc hyp(profile.hypercalls);
        // The virtio notification anomaly: x86's fast backend re-enables
        // notifications sooner, multiplying kick exits (section 7.2).
        RateAcc kick(profile.kicks * profile.x86_io_mult);
        RateAcc irq(profile.inline_irqs * profile.x86_io_mult);
        RateAcc ipi(profile.ipis);
        RateAcc ept(profile.x86_extra_exits);

        auto one_request = [&] {
          env.Compute(profile.compute_cycles);
          for (int n = hyp.Next(); n > 0; --n) {
            env.Vmcall(0x20);
          }
          for (int n = kick.Next(); n > 0; --n) {
            (void)env.IoRead(0x1F0);
          }
          for (int n = irq.Next(); n > 0; --n) {
            env.cpu().TakeExternalInterrupt(0xA0);
          }
          for (int n = ept.Next(); n > 0; --n) {
            env.cpu().EptViolation(0xCAFE'0000);
          }
          for (int n = ipi.Next(); n > 0; --n) {
            *seq_expect += 1;
            env.SendIpi(/*target=*/1, 0xF2);
            while (*flag != *seq_expect) {
              env.Compute(8);
            }
            env.cpu().AdvanceTo(stack.machine().cpu(1).cycles());
          }
        };

        for (int i = 0; i < kWarmupRequests; ++i) {
          one_request();
        }
        uint64_t begin = env.cpu().cycles();
        for (int i = 0; i < requests; ++i) {
          one_request();
        }
        meas.service_cycles =
            static_cast<double>(env.cpu().cycles() - begin) / requests;

        if (profile.irq_period > 0) {
          env.cpu().TakeExternalInterrupt(0xA0);  // warm
          uint64_t t0 = env.cpu().cycles();
          for (int i = 0; i < kIrqCostSamples; ++i) {
            env.cpu().TakeExternalInterrupt(0xA0);
          }
          meas.irq_cost = static_cast<double>(env.cpu().cycles() - t0) /
                          kIrqCostSamples;
        }
      },
      std::move(receiver));

  return FinishResult(profile, /*x86=*/true, meas);
}

}  // namespace

std::span<const AppProfile> AppProfiles() { return kProfiles; }

const char* AppStackName(AppStack stack) {
  switch (stack) {
    case AppStack::kArmVm:
      return "ARMv8.3 VM";
    case AppStack::kArmNestedV83:
      return "ARMv8.3 Nested";
    case AppStack::kArmNestedV83Vhe:
      return "ARMv8.3 Nested VHE";
    case AppStack::kArmNestedNeve:
      return "NEVE Nested";
    case AppStack::kArmNestedNeveVhe:
      return "NEVE Nested VHE";
    case AppStack::kX86Vm:
      return "x86 VM";
    case AppStack::kX86Nested:
      return "x86 Nested";
  }
  return "?";
}

AppBenchResult RunAppBench(const AppProfile& profile, AppStack stack,
                           int requests) {
  NEVE_CHECK(requests > 0);
  switch (stack) {
    case AppStack::kX86Vm:
      return RunX86App(profile, /*nested=*/false, requests);
    case AppStack::kX86Nested:
      return RunX86App(profile, /*nested=*/true, requests);
    default:
      return RunArmApp(profile, stack, requests);
  }
}

}  // namespace neve
