// Application benchmark models (paper Table 8 / Figure 2).
//
// Each of the paper's ten application workloads is modeled as a per-request
// *exit mix*: pure guest CPU work plus counts of hypercalls, virtio kicks
// (MMIO notifications), device interrupts (RX), scheduler IPIs, and EOIs.
// The mixes are replayed through the same simulated stacks as the
// microbenchmarks, so every event exercises the full world-switch / exit
// multiplication machinery; the reported number is overhead relative to
// native execution (the Figure 2 y-axis).
//
// Two second-order mechanisms the paper discusses are modeled explicitly:
//  - virtio notification scaling (section 7.2): the faster the backend
//    handles kicks, the sooner it re-enables notifications and the more
//    kicks/interrupts the frontend generates. x86's fast backend makes
//    Memcached take "more than four times as many exits ... than NEVE";
//    the x86_io_mult knob encodes the measured factor per workload.
//  - device interrupt load / receive livelock: NIC interrupts arrive at a
//    moderation-governed *rate* (irq_period cycles between interrupts), not
//    per request. The fraction of CPU time spent in interrupt handling is
//    x = irq_cost / irq_period; useful throughput scales by 1/(1-x), and
//    once x approaches 1 the stack falls into NAPI polling with a bounded
//    penalty. This is what turns ARMv8.3's ~0.5M-cycle interrupt path into
//    the >40x collapses of Figure 2 while NEVE stays in the low single
//    digits.

#ifndef NEVE_SRC_WORKLOAD_APPBENCH_H_
#define NEVE_SRC_WORKLOAD_APPBENCH_H_

#include <cstdint>
#include <span>

#include "src/workload/microbench.h"

namespace neve {

struct AppProfile {
  const char* name = "";
  // Per request / unit of work:
  uint32_t compute_cycles = 100000;  // guest CPU time
  double hypercalls = 0;             // PSCI/pvtime style hypercalls
  double kicks = 0;                  // virtio notifications (MMIO writes)
  double inline_irqs = 0;            // request-synchronous interrupts (RR)
  double ipis = 0;                   // cross-vCPU scheduler IPIs
  // Device (NIC/timer) interrupt moderation period in cycles; 0 = no
  // rate-based interrupt load.
  uint64_t irq_period = 0;
  // Native-execution cost of the same I/O events (syscalls, bare-metal IRQ
  // handling) so that native isn't free I/O.
  uint32_t native_io_cost = 600;
  // Measured I/O-exit multiplier on x86 (virtio notification scaling).
  double x86_io_mult = 1.0;
  // Extra cheap exits per request on x86 (EPT pressure, APIC timer --
  // the "high cost of x86 non-nested virtualization" the paper cites for
  // MySQL). Handled on the host's fast path at both levels.
  double x86_extra_exits = 0;
};

// The paper's ten workloads (Table 8), in Figure 2 order.
std::span<const AppProfile> AppProfiles();

// Figure 2 configurations.
enum class AppStack {
  kArmVm,
  kArmNestedV83,
  kArmNestedV83Vhe,
  kArmNestedNeve,
  kArmNestedNeveVhe,
  kX86Vm,
  kX86Nested,
};
const char* AppStackName(AppStack stack);

struct AppBenchResult {
  double overhead = 0;           // normalized to native (Figure 2 y-axis)
  double cycles_per_request = 0;
  double native_cycles_per_request = 0;
};

AppBenchResult RunAppBench(const AppProfile& profile, AppStack stack,
                           int requests = 24);

}  // namespace neve

#endif  // NEVE_SRC_WORKLOAD_APPBENCH_H_
