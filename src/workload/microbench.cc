#include "src/workload/microbench.h"

#include <cstdio>
#include <memory>

#include "src/base/status.h"
#include "src/gic/gic.h"
#include "src/sim/batch/batch.h"
#include "src/workload/stacks.h"

namespace neve {
namespace {

constexpr int kWarmupIters = 4;
constexpr uint32_t kBenchSgi = 5;
constexpr uint32_t kEoiIntid = 40;
constexpr uint64_t kFlagVa = 0x1000;  // shared guest page for the IPI ack

// The bench bodies are op sequences, so they run through the batch engine's
// program IR (per-op fallback for everything that traps -- identical ops,
// identical cycles and trap counts, which is what keeps the golden
// trap_counts.json byte-stable with batching on or off).
batch::Program RepeatOp(const batch::Op& op, int count) {
  batch::Program p;
  p.ops.assign(static_cast<size_t>(count), op);
  p.Finalize();
  return p;
}

// Per-run measurement capture.
struct Measure {
  ArmStack* stack = nullptr;
  uint64_t cycles_begin = 0;
  uint64_t traps_begin = 0;
  uint64_t cycles_end = 0;
  uint64_t traps_end = 0;

  void Begin(Cpu& timing_cpu) {
    cycles_begin = timing_cpu.cycles();
    traps_begin = stack->TotalTrapsToHost();
  }
  void End(Cpu& timing_cpu) {
    cycles_end = timing_cpu.cycles();
    traps_end = stack->TotalTrapsToHost();
  }
  MicrobenchResult Result(int iterations) const {
    return {.cycles_per_op =
                static_cast<double>(cycles_end - cycles_begin) / iterations,
            .traps_per_op =
                static_cast<double>(traps_end - traps_begin) / iterations};
  }
};

// The benchmark body executed by the measured guest (L1 guest OS in the VM
// configuration, L2 nested guest otherwise).
GuestMain MakeBenchBody(MicrobenchKind kind, ArmStack* stack, Measure* m,
                        int iterations) {
  switch (kind) {
    case MicrobenchKind::kHypercall:
      return [=](GuestEnv& env) {
        batch::BatchEngine& eng = stack->machine().batch_engine();
        batch::Op hvc{.kind = batch::OpKind::kHvc, .imm = kHvcTestCall};
        eng.Run(env.cpu(), RepeatOp(hvc, kWarmupIters));
        batch::Program measured = RepeatOp(hvc, iterations);
        m->Begin(env.cpu());
        eng.Run(env.cpu(), measured);
        m->End(env.cpu());
      };
    case MicrobenchKind::kDeviceIo:
      return [=](GuestEnv& env) {
        batch::BatchEngine& eng = stack->machine().batch_engine();
        batch::Op load{.kind = batch::OpKind::kMemLoad,
                       .addr = kBenchDeviceBase};
        eng.Run(env.cpu(), RepeatOp(load, kWarmupIters));
        batch::Program measured = RepeatOp(load, iterations);
        m->Begin(env.cpu());
        eng.Run(env.cpu(), measured);
        m->End(env.cpu());
      };
    case MicrobenchKind::kVirtualIpi:
      return [=](GuestEnv& env) {
        batch::BatchEngine& eng = stack->machine().batch_engine();
        batch::Program send = RepeatOp(
            batch::Op{.kind = batch::OpKind::kSysWrite,
                      .enc = SysReg::kICC_SGI1R_EL1,
                      .value = SgiR::Make(/*mask=*/0b10, kBenchSgi)},
            1);
        auto one_ipi = [&](uint64_t seq) {
          eng.Run(env.cpu(), send);
          // Wait for the receiver's handler to acknowledge. Delivery ran
          // synchronously, so the flag is visible; the sender's clock must
          // still cover the receiver's handling (the rendezvous).
          while (env.Load(Va(kFlagVa)) != seq) {
            env.Compute(8);  // spin iteration
          }
          env.cpu().AdvanceTo(stack->machine().cpu(1).cycles());
        };
        for (int i = 0; i < kWarmupIters; ++i) {
          one_ipi(static_cast<uint64_t>(i) + 1);
        }
        m->Begin(env.cpu());
        for (int i = 0; i < iterations; ++i) {
          one_ipi(static_cast<uint64_t>(kWarmupIters + i) + 1);
        }
        m->End(env.cpu());
      };
    case MicrobenchKind::kVirtualEoi:
      return [=](GuestEnv& env) {
        Cpu& cpu = env.cpu();
        batch::BatchEngine& eng = stack->machine().batch_engine();
        batch::Program eoi = RepeatOp(
            batch::Op{.kind = batch::OpKind::kSysWrite,
                      .enc = SysReg::kICC_EOIR1_EL1,
                      .value = kEoiIntid},
            1);
        auto arm_lr = [&] {
          // Harness: hardware delivered and the guest acknowledged an
          // interrupt earlier; only the EOI is being measured (free setup).
          cpu.PokeReg(IchListRegister(0),
                      ListReg::ToActive(ListReg::MakePending(kEoiIntid)));
        };
        for (int i = 0; i < kWarmupIters; ++i) {
          arm_lr();
          eng.Run(cpu, eoi);
        }
        m->Begin(cpu);
        for (int i = 0; i < iterations; ++i) {
          arm_lr();
          eng.Run(cpu, eoi);
        }
        m->End(cpu);
      };
  }
  NEVE_CHECK(false);
  return nullptr;
}

// The IPI receiver: acknowledges, does token handler work, posts the
// sequence number, completes the interrupt.
GuestMain MakeIpiReceiver() {
  return [](GuestEnv& env) {
    auto seq = std::make_shared<uint64_t>(0);
    env.SetIrqHandler([seq](GuestEnv& henv, uint32_t) {
      uint64_t intid = henv.ReadSys(SysReg::kICC_IAR1_EL1);
      henv.Compute(120);  // handler body
      *seq += 1;
      henv.Store(Va(kFlagVa), *seq);
      henv.WriteSys(SysReg::kICC_EOIR1_EL1, intid);
    });
    env.ParkRunning();
  };
}

// Campaign applied to every bench stack that doesn't bring its own
// (SetBenchFaultCampaign). Plain value, set once from main() before the
// bench fans out; workers only read it.
FaultConfig g_bench_fault;

// --batch=off override; same set-once-from-main discipline as above.
// Applied by the ArmStack constructor (the choke point every bench stack
// passes through), not here.
bool g_bench_batch = true;

}  // namespace

void SetBenchFaultCampaign(const FaultConfig& fault) {
  g_bench_fault = fault;
}

void SetBenchBatchMode(bool batch) { g_bench_batch = batch; }

bool BenchBatchMode() { return g_bench_batch; }

const char* MicrobenchName(MicrobenchKind kind) {
  switch (kind) {
    case MicrobenchKind::kHypercall:
      return "Hypercall";
    case MicrobenchKind::kDeviceIo:
      return "Device I/O";
    case MicrobenchKind::kVirtualIpi:
      return "Virtual IPI";
    case MicrobenchKind::kVirtualEoi:
      return "Virtual EOI";
  }
  return "?";
}

MicrobenchResult RunArmMicrobench(MicrobenchKind kind, const StackConfig& cfg,
                                  int iterations) {
  return RunArmMicrobenchAttributed(kind, cfg, iterations).result;
}

AttributedRun RunArmMicrobenchAttributed(MicrobenchKind kind,
                                         const StackConfig& cfg,
                                         int iterations) {
  NEVE_CHECK(iterations > 0);
  int num_cpus = kind == MicrobenchKind::kVirtualIpi ? 2 : 1;
  StackConfig run_cfg = cfg;
  if (!run_cfg.fault.enabled && g_bench_fault.enabled) {
    run_cfg.fault = g_bench_fault;
  }
  ArmStack stack(run_cfg, num_cpus);
  Measure m{.stack = &stack};
  GuestMain receiver =
      kind == MicrobenchKind::kVirtualIpi ? MakeIpiReceiver() : nullptr;
  Status status = stack.Run(MakeBenchBody(kind, &stack, &m, iterations),
                            std::move(receiver));
  if (!status.ok()) {
    // Only a fault campaign can fail a run; the kill was confined to this
    // stack's VM, so report the lost measurement and carry on.
    std::fprintf(stderr, "microbench %s: %s\n", MicrobenchName(kind),
                 status.ToString().c_str());
  }
  return AttributedRun{.result = m.Result(iterations),
                       .buckets = stack.machine().attr().Snapshot(),
                       .machine_cycles = stack.machine().TotalCpuCycles()};
}

}  // namespace neve
