// kvm-unit-tests style microbenchmarks (paper section 5, Tables 1/6/7).
//
//   Hypercall   cost of a VM -> hypervisor -> VM round trip with no work
//   Device I/O  cost of accessing a device emulated in the hypervisor
//   Virtual IPI cost of a cross-vCPU IPI, sender-measured, both vCPUs live
//   Virtual EOI cost of completing a virtual interrupt (trap-free path)
//
// Each benchmark runs on a freshly built stack: host hypervisor alone (VM
// configuration) or host + deprivileged guest hypervisor (nested VM), with
// the architecture selected by StackConfig. Results are simulated cycles and
// traps-to-host-hypervisor per operation, matching the units of Tables 1-7.

#ifndef NEVE_SRC_WORKLOAD_MICROBENCH_H_
#define NEVE_SRC_WORKLOAD_MICROBENCH_H_

#include <cstdint>
#include <vector>

#include "src/fault/fault.h"
#include "src/obs/attr.h"

namespace neve {

enum class MicrobenchKind {
  kHypercall,
  kDeviceIo,
  kVirtualIpi,
  kVirtualEoi,
};

const char* MicrobenchName(MicrobenchKind kind);

struct StackConfig {
  bool nested = false;     // run the workload in a nested VM (L2) vs a VM (L1)
  bool guest_vhe = false;  // the guest hypervisor uses the VHE design
  bool neve = false;       // NEVE hardware (ARMv8.4) + host exposes it
                           // (ignored unless nested)
  // NEVE mechanism ablation (bench/ablation_neve).
  bool neve_deferred = true;
  bool neve_redirect = true;
  bool neve_cached = true;
  // GICv2 memory-mapped hypervisor interface for the guest hypervisor
  // (instead of GICv3 system registers); see GuestKvmConfig::gicv2_mmio.
  bool gicv2_mmio = false;
  // Fault-injection campaign for the machine (off by default). Benches fill
  // this from --fault-seed/--fault-rate; the chaos harness drives it.
  FaultConfig fault{};
  // Batched superblock execution (src/sim/batch, MachineConfig::batch). On
  // by default -- batching is the production path and byte-identical by the
  // engine's invariant; `--batch=off` benches and the differential tests
  // force the pure interpreter here.
  bool batch = true;

  static StackConfig Vm() { return {}; }
  static StackConfig NestedV83(bool vhe) {
    StackConfig cfg;
    cfg.nested = true;
    cfg.guest_vhe = vhe;
    cfg.neve = false;
    return cfg;
  }
  static StackConfig NestedNeve(bool vhe) {
    StackConfig cfg;
    cfg.nested = true;
    cfg.guest_vhe = vhe;
    cfg.neve = true;
    return cfg;
  }
};

struct MicrobenchResult {
  double cycles_per_op = 0;
  double traps_per_op = 0;  // exceptions taken to the host hypervisor
};

MicrobenchResult RunArmMicrobench(MicrobenchKind kind, const StackConfig& cfg,
                                  int iterations);

// One attributed run: the per-op result plus the machine's final attribution
// snapshot (src/obs/attr.h) and its total CPU cycle count -- the two sides of
// the cycles-conserved invariant (sum of bucket cycles == machine_cycles).
// tools/obsreport builds its per-layer/per-category reports from this.
struct AttributedRun {
  MicrobenchResult result;
  std::vector<AttrBucket> buckets;  // nonzero buckets, deterministic order
  uint64_t machine_cycles = 0;      // Machine::TotalCpuCycles() after the run
};

AttributedRun RunArmMicrobenchAttributed(MicrobenchKind kind,
                                         const StackConfig& cfg,
                                         int iterations);

// Process-wide fault campaign for benches (--fault-seed=/--fault-rate=,
// assembled by FaultCampaignFromArgs). When set, RunArmMicrobench applies it
// to every stack whose config doesn't carry its own campaign. A campaign
// that kills the measured VM is reported on stderr and the bench keeps
// running -- confinement means one lost measurement, not a lost process.
void SetBenchFaultCampaign(const FaultConfig& fault);

// Process-wide batch-mode override (--batch=on|off via BatchFromArgs). When
// off, every ArmStack the process builds forces the pure interpreter,
// regardless of the config's batch flag; when on (the default), the config
// decides. Set once from main() before the bench fans out.
void SetBenchBatchMode(bool batch);
bool BenchBatchMode();

// The x86 comparison stack (Tables 1/6/7 "x86" columns): KVM x86 with VT-x,
// Turtles-style nesting, VMCS shadowing and APICv. traps_per_op counts
// vmexits to the L0 hypervisor.
MicrobenchResult RunX86Microbench(MicrobenchKind kind, bool nested,
                                  int iterations, bool vmcs_shadowing = true);

}  // namespace neve

#endif  // NEVE_SRC_WORKLOAD_MICROBENCH_H_
