#include <memory>

#include "src/base/status.h"
#include "src/workload/microbench.h"
#include "src/x86/kvm_x86.h"

namespace neve {
namespace {

constexpr int kWarmupIters = 4;
constexpr uint32_t kIpiVector = 0xF2;

struct X86Measure {
  X86Machine* machine = nullptr;
  uint64_t cycles_begin = 0;
  uint64_t exits_begin = 0;
  uint64_t cycles_end = 0;
  uint64_t exits_end = 0;

  void Begin(VmxCpu& cpu) {
    cycles_begin = cpu.cycles();
    exits_begin = machine->TotalVmexits();
  }
  void End(VmxCpu& cpu) {
    cycles_end = cpu.cycles();
    exits_end = machine->TotalVmexits();
  }
  MicrobenchResult Result(int iters) const {
    return {.cycles_per_op =
                static_cast<double>(cycles_end - cycles_begin) / iters,
            .traps_per_op =
                static_cast<double>(exits_end - exits_begin) / iters};
  }
};

X86GuestMain MakeX86BenchBody(MicrobenchKind kind, X86Machine* machine,
                              X86Measure* m, int iterations,
                              std::shared_ptr<uint64_t> flag) {
  switch (kind) {
    case MicrobenchKind::kHypercall:
      return [=](X86Env& env) {
        for (int i = 0; i < kWarmupIters; ++i) {
          env.Vmcall(0x20);
        }
        m->Begin(env.cpu());
        for (int i = 0; i < iterations; ++i) {
          env.Vmcall(0x20);
        }
        m->End(env.cpu());
      };
    case MicrobenchKind::kDeviceIo:
      return [=](X86Env& env) {
        for (int i = 0; i < kWarmupIters; ++i) {
          (void)env.IoRead(0x1F0);
        }
        m->Begin(env.cpu());
        for (int i = 0; i < iterations; ++i) {
          (void)env.IoRead(0x1F0);
        }
        m->End(env.cpu());
      };
    case MicrobenchKind::kVirtualIpi:
      return [=](X86Env& env) {
        auto one_ipi = [&](uint64_t seq) {
          env.SendIpi(/*target=*/1, kIpiVector);
          while (*flag != seq) {
            env.Compute(8);
          }
          env.cpu().AdvanceTo(machine->cpu(1).cycles());
        };
        for (int i = 0; i < kWarmupIters; ++i) {
          one_ipi(static_cast<uint64_t>(i) + 1);
        }
        m->Begin(env.cpu());
        for (int i = 0; i < iterations; ++i) {
          one_ipi(static_cast<uint64_t>(kWarmupIters + i) + 1);
        }
        m->End(env.cpu());
      };
    case MicrobenchKind::kVirtualEoi:
      return [=](X86Env& env) {
        for (int i = 0; i < kWarmupIters; ++i) {
          env.ApicEoi();
        }
        m->Begin(env.cpu());
        for (int i = 0; i < iterations; ++i) {
          env.ApicEoi();
        }
        m->End(env.cpu());
      };
  }
  NEVE_CHECK(false);
  return nullptr;
}

X86GuestMain MakeX86IpiReceiver(std::shared_ptr<uint64_t> flag) {
  return [flag](X86Env& env) {
    env.SetIrqHandler([flag](X86Env& henv, uint32_t) {
      henv.Compute(120);  // handler body
      *flag += 1;
      henv.ApicEoi();
    });
    env.ParkRunning();
  };
}

}  // namespace

MicrobenchResult RunX86Microbench(MicrobenchKind kind, bool nested,
                                  int iterations, bool vmcs_shadowing) {
  NEVE_CHECK(iterations > 0);
  int num_cpus = kind == MicrobenchKind::kVirtualIpi ? 2 : 1;
  X86Machine machine(num_cpus, CostModel::Default());
  KvmX86 l0(&machine, vmcs_shadowing);
  X86Measure m{.machine = &machine};
  auto flag = std::make_shared<uint64_t>(0);

  if (!nested) {
    X86Vcpu* sender = l0.CreateVcpu(false);
    if (kind == MicrobenchKind::kVirtualIpi) {
      X86Vcpu* receiver = l0.CreateVcpu(false);
      receiver->main_sw = MakeX86IpiReceiver(flag);
      l0.RunVcpu(*receiver, /*pcpu=*/1);
    }
    sender->main_sw = MakeX86BenchBody(kind, &machine, &m, iterations, flag);
    l0.RunVcpu(*sender, /*pcpu=*/0);
    return m.Result(iterations);
  }

  X86Vcpu* v0 = l0.CreateVcpu(/*nested_hyp=*/true);
  std::unique_ptr<X86GuestHyp> l1;

  if (kind == MicrobenchKind::kVirtualIpi) {
    X86Vcpu* v1 = l0.CreateVcpu(/*nested_hyp=*/true);
    v1->main_sw = [&](X86Env& env) {
      l1 = std::make_unique<X86GuestHyp>(&env, &machine);
      l1->RunNested(env, MakeX86IpiReceiver(flag));
    };
    l0.RunVcpu(*v1, /*pcpu=*/1);
    v0->main_sw = [&](X86Env& env) {
      l1->Attach(env);
      l1->RunNested(env,
                    MakeX86BenchBody(kind, &machine, &m, iterations, flag));
    };
    l0.RunVcpu(*v0, /*pcpu=*/0);
    return m.Result(iterations);
  }

  v0->main_sw = [&](X86Env& env) {
    l1 = std::make_unique<X86GuestHyp>(&env, &machine);
    l1->RunNested(env,
                  MakeX86BenchBody(kind, &machine, &m, iterations, flag));
  };
  l0.RunVcpu(*v0, /*pcpu=*/0);
  return m.Result(iterations);
}

}  // namespace neve
