#include "src/workload/stacks.h"

#include "src/base/status.h"
#include "src/hyp/world_switch.h"

namespace neve {

ArmStack::ArmStack(const StackConfig& cfg, int num_cpus)
    : cfg_(cfg), device_(SwCost::kDeviceIo) {
  MachineConfig mc;
  mc.num_cpus = num_cpus;
  mc.features =
      cfg.neve ? ArchFeatures::Armv84Neve() : ArchFeatures::Armv83Nv();
  mc.features.neve_deferred = cfg.neve_deferred;
  mc.features.neve_redirect = cfg.neve_redirect;
  mc.features.neve_cached = cfg.neve_cached;
  mc.fault = cfg.fault;
  machine_ = std::make_unique<Machine>(mc);
  l0_ = std::make_unique<HostKvm>(machine_.get(), HostKvmConfig{});

  VmConfig vc;
  vc.num_vcpus = num_cpus;
  if (cfg.nested) {
    vc.name = "l1";
    vc.ram_size = 64ull << 20;
    vc.virtual_el2 = true;
    vc.expose_neve = cfg.neve;
    vc.guest_vhe = cfg.guest_vhe;
  } else {
    vc.name = "vm";
    vc.ram_size = 16ull << 20;
  }
  vm_ = l0_->CreateVm(vc);
  if (!cfg.nested) {
    vm_->AddMmioRange(Ipa(kBenchDeviceBase), kPageSize, &device_);
  }
}

ArmStack::~ArmStack() = default;

Vcpu& ArmStack::MeasuredVcpu() { return vm_->vcpu(0); }

Status ArmStack::Run(GuestMain body, GuestMain receiver) {
  NEVE_CHECK(body);
  if (!cfg_.nested) {
    if (receiver) {
      vm_->vcpu(1).main_sw.main = std::move(receiver);
      Status s = l0_->RunVcpu(vm_->vcpu(1), /*pcpu=*/1);
      if (!s.ok()) {
        return s;
      }
    }
    vm_->vcpu(0).main_sw.main = std::move(body);
    return l0_->RunVcpu(vm_->vcpu(0), /*pcpu=*/0);
  }

  GuestKvmConfig gc{.vhe = cfg_.guest_vhe, .gicv2_mmio = cfg_.gicv2_mmio};
  if (receiver) {
    // Boot the guest hypervisor on vCPU 1 and park the nested receiver.
    vm_->vcpu(1).main_sw.main = [&, receiver](GuestEnv& env) {
      l1_ = std::make_unique<GuestKvm>(&env, machine_.get(), gc);
      l1_->SetMmioBackend(&device_);
      VmConfig nvc;
      nvc.name = "l2";
      nvc.num_vcpus = 2;
      nvc.ram_size = 8ull << 20;
      nvm_ = l1_->CreateVm(nvc);
      l1_->RunVcpu(env, nvm_->vcpu(1), receiver);
    };
    Status s = l0_->RunVcpu(vm_->vcpu(1), /*pcpu=*/1);
    if (!s.ok()) {
      return s;
    }
    vm_->vcpu(0).main_sw.main = [&, body](GuestEnv& env) {
      l1_->AttachVcpu(env);
      l1_->RunVcpu(env, nvm_->vcpu(0), body);
    };
    return l0_->RunVcpu(vm_->vcpu(0), /*pcpu=*/0);
  }

  vm_->vcpu(0).main_sw.main = [&, body](GuestEnv& env) {
    l1_ = std::make_unique<GuestKvm>(&env, machine_.get(), gc);
    l1_->SetMmioBackend(&device_);
    VmConfig nvc;
    nvc.name = "l2";
    nvc.ram_size = 8ull << 20;
    nvm_ = l1_->CreateVm(nvc);
    l1_->RunVcpu(env, nvm_->vcpu(0), body);
  };
  return l0_->RunVcpu(vm_->vcpu(0), /*pcpu=*/0);
}

uint64_t ArmStack::TotalTrapsToHost() const {
  uint64_t total = 0;
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    total += machine_->cpu(i).trace().traps_to_el2();
  }
  return total;
}

X86Stack::X86Stack(bool nested, int num_cpus, bool vmcs_shadowing)
    : nested_(nested) {
  machine_ = std::make_unique<X86Machine>(num_cpus, CostModel::Default());
  l0_ = std::make_unique<KvmX86>(machine_.get(), vmcs_shadowing);
}

void X86Stack::Run(X86GuestMain body, X86GuestMain receiver) {
  NEVE_CHECK(body);
  if (!nested_) {
    X86Vcpu* sender = l0_->CreateVcpu(false);
    if (receiver) {
      X86Vcpu* rx = l0_->CreateVcpu(false);
      rx->main_sw = std::move(receiver);
      l0_->RunVcpu(*rx, /*pcpu=*/1);
    }
    sender->main_sw = std::move(body);
    l0_->RunVcpu(*sender, /*pcpu=*/0);
    return;
  }

  X86Vcpu* v0 = l0_->CreateVcpu(/*nested_hyp=*/true);
  if (receiver) {
    X86Vcpu* v1 = l0_->CreateVcpu(/*nested_hyp=*/true);
    v1->main_sw = [&, receiver](X86Env& env) {
      l1_ = std::make_unique<X86GuestHyp>(&env, machine_.get());
      l1_->RunNested(env, receiver);
    };
    l0_->RunVcpu(*v1, /*pcpu=*/1);
    v0->main_sw = [&, body](X86Env& env) {
      l1_->Attach(env);
      l1_->RunNested(env, body);
    };
    l0_->RunVcpu(*v0, /*pcpu=*/0);
    return;
  }

  v0->main_sw = [&, body](X86Env& env) {
    l1_ = std::make_unique<X86GuestHyp>(&env, machine_.get());
    l1_->RunNested(env, body);
  };
  l0_->RunVcpu(*v0, /*pcpu=*/0);
}

}  // namespace neve
