#include "src/workload/stacks.h"

#include <utility>

#include "src/base/status.h"
#include "src/gic/gic.h"
#include "src/hyp/world_switch.h"
#include "src/sim/smp.h"

namespace neve {

ArmStack::ArmStack(const StackConfig& cfg, int num_cpus)
    : cfg_(cfg), device_(SwCost::kDeviceIo) {
  MachineConfig mc;
  mc.num_cpus = num_cpus;
  mc.features =
      cfg.neve ? ArchFeatures::Armv84Neve() : ArchFeatures::Armv83Nv();
  mc.features.neve_deferred = cfg.neve_deferred;
  mc.features.neve_redirect = cfg.neve_redirect;
  mc.features.neve_cached = cfg.neve_cached;
  mc.fault = cfg.fault;
  mc.batch = cfg.batch && BenchBatchMode();
  machine_ = std::make_unique<Machine>(mc);
  l0_ = std::make_unique<HostKvm>(machine_.get(), HostKvmConfig{});

  VmConfig vc;
  vc.num_vcpus = num_cpus;
  if (cfg.nested) {
    vc.name = "l1";
    vc.ram_size = 64ull << 20;
    vc.virtual_el2 = true;
    vc.expose_neve = cfg.neve;
    vc.guest_vhe = cfg.guest_vhe;
  } else {
    vc.name = "vm";
    vc.ram_size = 16ull << 20;
  }
  vm_ = l0_->CreateVm(vc);
  if (!cfg.nested) {
    vm_->AddMmioRange(Ipa(kBenchDeviceBase), kPageSize, &device_);
  }
}

ArmStack::~ArmStack() = default;

Vcpu& ArmStack::MeasuredVcpu() { return vm_->vcpu(0); }

Status ArmStack::Run(GuestMain body, GuestMain receiver) {
  NEVE_CHECK(body);
  if (!cfg_.nested) {
    if (receiver) {
      vm_->vcpu(1).main_sw.main = std::move(receiver);
      Status s = l0_->RunVcpu(vm_->vcpu(1), /*pcpu=*/1);
      if (!s.ok()) {
        return s;
      }
    }
    vm_->vcpu(0).main_sw.main = std::move(body);
    return l0_->RunVcpu(vm_->vcpu(0), /*pcpu=*/0);
  }

  GuestKvmConfig gc{.vhe = cfg_.guest_vhe, .gicv2_mmio = cfg_.gicv2_mmio};
  if (receiver) {
    // Boot the guest hypervisor on vCPU 1 and park the nested receiver.
    vm_->vcpu(1).main_sw.main = [&, receiver](GuestEnv& env) {
      l1_ = std::make_unique<GuestKvm>(&env, machine_.get(), gc);
      l1_->SetMmioBackend(&device_);
      VmConfig nvc;
      nvc.name = "l2";
      nvc.num_vcpus = 2;
      nvc.ram_size = 8ull << 20;
      nvm_ = l1_->CreateVm(nvc);
      l1_->RunVcpu(env, nvm_->vcpu(1), receiver);
    };
    Status s = l0_->RunVcpu(vm_->vcpu(1), /*pcpu=*/1);
    if (!s.ok()) {
      return s;
    }
    vm_->vcpu(0).main_sw.main = [&, body](GuestEnv& env) {
      l1_->AttachVcpu(env);
      l1_->RunVcpu(env, nvm_->vcpu(0), body);
    };
    return l0_->RunVcpu(vm_->vcpu(0), /*pcpu=*/0);
  }

  vm_->vcpu(0).main_sw.main = [&, body](GuestEnv& env) {
    l1_ = std::make_unique<GuestKvm>(&env, machine_.get(), gc);
    l1_->SetMmioBackend(&device_);
    VmConfig nvc;
    nvc.name = "l2";
    nvc.ram_size = 8ull << 20;
    nvm_ = l1_->CreateVm(nvc);
    l1_->RunVcpu(env, nvm_->vcpu(0), body);
  };
  return l0_->RunVcpu(vm_->vcpu(0), /*pcpu=*/0);
}

std::vector<Status> ArmStack::RunSmp(std::vector<GuestMain> bodies,
                                     int threads) {
  const int n = static_cast<int>(bodies.size());
  NEVE_CHECK_MSG(n >= 1 && n <= machine_->num_cpus(),
                 "one body per vCPU, at most one per pCPU");
  std::vector<Status> statuses(static_cast<size_t>(n), Status::Ok());

  if (!cfg_.nested) {
    for (int k = 0; k < n; ++k) {
      vm_->vcpu(k).main_sw.main = std::move(bodies[static_cast<size_t>(k)]);
    }
  } else {
    GuestKvmConfig gc{.vhe = cfg_.guest_vhe, .gicv2_mmio = cfg_.gicv2_mmio};
    // Lane 0 boots the guest hypervisor and the n-vCPU nested VM. The
    // engine admits lane k+1 only after lane k first blocks (or finishes),
    // and the booter's first block is inside its own L2 body -- after
    // CreateVm -- so l1_/nvm_ are visible to every sibling without locks.
    vm_->vcpu(0).main_sw.main = [this, gc, n,
                                 body = std::move(bodies[0])](GuestEnv& env) {
      l1_ = std::make_unique<GuestKvm>(&env, machine_.get(), gc);
      l1_->SetMmioBackend(&device_);
      VmConfig nvc;
      nvc.name = "l2";
      nvc.num_vcpus = n;
      nvc.ram_size = 8ull << 20;
      nvm_ = l1_->CreateVm(nvc);
      l1_->RunVcpu(env, nvm_->vcpu(0), body);
    };
    for (int k = 1; k < n; ++k) {
      vm_->vcpu(k).main_sw.main =
          [this, k, body = std::move(bodies[static_cast<size_t>(k)])](
              GuestEnv& env) {
            if (l1_ == nullptr || nvm_ == nullptr) {
              return;  // the booter faulted before constructing the stack
            }
            l1_->AttachVcpu(env);
            l1_->RunVcpu(env, nvm_->vcpu(k), body);
          };
    }
  }

  SmpEngine engine(machine_.get(), n, threads);
  engine.Run([this, &statuses](int lane) {
    statuses[static_cast<size_t>(lane)] =
        l0_->RunVcpu(vm_->vcpu(lane), /*pcpu=*/lane);
  });
  return statuses;
}

GuestMain ArmStack::MakeIpiRendezvous(int lane, int num_vcpus, int rounds) {
  return [this, lane, num_vcpus, rounds](GuestEnv& env) {
    const uint16_t siblings = static_cast<uint16_t>(
        ((1u << num_vcpus) - 1u) & ~(1u << lane));
    Vcpu& me = RendezvousVcpu(lane);
    for (int round = 1; round <= rounds; ++round) {
      env.WriteSys(SysReg::kICC_SGI1R_EL1, SgiR::Make(siblings, /*sgi_id=*/5));
      // One IPI per sibling per completed round must have *arrived* (been
      // enqueued on our vCPU) before this round's rendezvous is done. The
      // count is monotonic, so a fast sibling racing ahead only overshoots.
      const uint64_t want = static_cast<uint64_t>(round) *
                            static_cast<uint64_t>(num_vcpus - 1);
      env.SmpWaitUntil([&me, want] { return me.virqs_enqueued >= want; });
    }
  };
}

Vcpu& ArmStack::RendezvousVcpu(int lane) {
  return cfg_.nested ? nvm_->vcpu(lane) : vm_->vcpu(lane);
}

uint64_t ArmStack::TotalTrapsToHost() const {
  uint64_t total = 0;
  for (int i = 0; i < machine_->num_cpus(); ++i) {
    total += machine_->cpu(i).trace().traps_to_el2();
  }
  return total;
}

X86Stack::X86Stack(bool nested, int num_cpus, bool vmcs_shadowing)
    : nested_(nested) {
  machine_ = std::make_unique<X86Machine>(num_cpus, CostModel::Default());
  l0_ = std::make_unique<KvmX86>(machine_.get(), vmcs_shadowing);
}

void X86Stack::Run(X86GuestMain body, X86GuestMain receiver) {
  NEVE_CHECK(body);
  if (!nested_) {
    X86Vcpu* sender = l0_->CreateVcpu(false);
    if (receiver) {
      X86Vcpu* rx = l0_->CreateVcpu(false);
      rx->main_sw = std::move(receiver);
      l0_->RunVcpu(*rx, /*pcpu=*/1);
    }
    sender->main_sw = std::move(body);
    l0_->RunVcpu(*sender, /*pcpu=*/0);
    return;
  }

  X86Vcpu* v0 = l0_->CreateVcpu(/*nested_hyp=*/true);
  if (receiver) {
    X86Vcpu* v1 = l0_->CreateVcpu(/*nested_hyp=*/true);
    v1->main_sw = [&, receiver](X86Env& env) {
      l1_ = std::make_unique<X86GuestHyp>(&env, machine_.get());
      l1_->RunNested(env, receiver);
    };
    l0_->RunVcpu(*v1, /*pcpu=*/1);
    v0->main_sw = [&, body](X86Env& env) {
      l1_->Attach(env);
      l1_->RunNested(env, body);
    };
    l0_->RunVcpu(*v0, /*pcpu=*/0);
    return;
  }

  v0->main_sw = [&, body](X86Env& env) {
    l1_ = std::make_unique<X86GuestHyp>(&env, machine_.get());
    l1_->RunNested(env, body);
  };
  l0_->RunVcpu(*v0, /*pcpu=*/0);
}

}  // namespace neve
