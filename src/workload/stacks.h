// Reusable virtualization-stack harnesses for benchmarks and examples.
//
// An ArmStack builds the full simulated ARM stack for one Table-1/Figure-2
// configuration: machine + host hypervisor (VM), or machine + host + guest
// hypervisor + nested VM (nested). An X86Stack does the same for the VT-x
// comparison stack. Both expose the "run the measured guest on pCPU 0, with
// an optional parked receiver on pCPU 1" pattern every benchmark uses.

#ifndef NEVE_SRC_WORKLOAD_STACKS_H_
#define NEVE_SRC_WORKLOAD_STACKS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"
#include "src/sim/machine.h"
#include "src/workload/microbench.h"
#include "src/x86/kvm_x86.h"

namespace neve {

// MMIO device region used by all guest workloads.
inline constexpr uint64_t kBenchDeviceBase = 0x4000'0000;
// SPI used for modeled device (network RX) interrupts.
inline constexpr uint32_t kBenchDeviceSpi = 48;

class ArmStack {
 public:
  ArmStack(const StackConfig& cfg, int num_cpus);
  ~ArmStack();

  Machine& machine() { return *machine_; }
  HostKvm& host() { return *l0_; }
  TestDevice& device() { return device_; }
  // The guest hypervisor; null until a nested run has booted it (src/snap
  // captures and restores its software state).
  GuestKvm* guest_hyp() { return l1_.get(); }
  bool nested() const { return cfg_.nested; }
  // The L0-level VM (the L1 hypervisor's VM when nested). For tests that
  // inspect per-vCPU state (shadows, pending virqs) after a run.
  Vm& vm() { return *vm_; }
  // The nested (L2) VM; null until a nested run has booted it.
  Vm* nested_vm() { return nvm_; }

  // Runs `body` as the measured guest on pCPU 0. When `receiver` is given,
  // it runs first on pCPU 1 and is expected to park itself (IPI target /
  // interrupt sink). Returns the first confined guest fault (the VM is dead;
  // the machine survives) or OK; fault-free runs always return OK, so
  // benchmark callers may ignore the result.
  Status Run(GuestMain body, GuestMain receiver = nullptr);

  // The L0 vCPU carrying the measured guest (for virtual-IRQ queueing by
  // device models).
  Vcpu& MeasuredVcpu();

  // Runs one guest body per vCPU with real host parallelism through the SMP
  // engine (sim/smp.h): lane k carries vCPU k on pCPU k, `threads` lanes
  // execute simulated code concurrently, and the result is byte-identical at
  // every `threads` value. Nested stacks boot the guest hypervisor on lane 0
  // (the engine's admission gate makes the boot happen-before every sibling)
  // and run one L2 vCPU per lane. Bodies coordinate with
  // GuestEnv::SmpWaitUntil; observability and fault injection must be off.
  // Returns lane k's confined-fault status (or OK) at index k.
  std::vector<Status> RunSmp(std::vector<GuestMain> bodies, int threads);

  // A canonical SMP body: `rounds` all-to-all IPI rendezvous. Each round,
  // lane `lane` SGIs every sibling, then parks until it has received one IPI
  // per sibling per completed round. The workload behind the hackbench-style
  // SMP rows: pure cross-vCPU interrupt traffic, no shared guest memory.
  GuestMain MakeIpiRendezvous(int lane, int num_vcpus, int rounds);

  // The vCPU whose state lane `lane`'s rendezvous predicates read: the L2
  // vCPU when nested, the L0 vCPU otherwise. Valid once the stack (and, when
  // nested, lane 0's boot) has run.
  Vcpu& RendezvousVcpu(int lane);

  uint64_t TotalTrapsToHost() const;

 private:
  StackConfig cfg_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<HostKvm> l0_;
  TestDevice device_;
  Vm* vm_ = nullptr;         // the (only) L0-level VM
  Vm* nvm_ = nullptr;        // nested VM when cfg.nested
  std::unique_ptr<GuestKvm> l1_;
};

class X86Stack {
 public:
  X86Stack(bool nested, int num_cpus, bool vmcs_shadowing = true);

  X86Machine& machine() { return *machine_; }
  KvmX86& host() { return *l0_; }
  bool nested() const { return nested_; }

  void Run(X86GuestMain body, X86GuestMain receiver = nullptr);

  uint64_t TotalVmexits() const { return machine_->TotalVmexits(); }

 private:
  bool nested_;
  std::unique_ptr<X86Machine> machine_;
  std::unique_ptr<KvmX86> l0_;
  std::unique_ptr<X86GuestHyp> l1_;
};

}  // namespace neve

#endif  // NEVE_SRC_WORKLOAD_STACKS_H_
