// Reusable virtualization-stack harnesses for benchmarks and examples.
//
// An ArmStack builds the full simulated ARM stack for one Table-1/Figure-2
// configuration: machine + host hypervisor (VM), or machine + host + guest
// hypervisor + nested VM (nested). An X86Stack does the same for the VT-x
// comparison stack. Both expose the "run the measured guest on pCPU 0, with
// an optional parked receiver on pCPU 1" pattern every benchmark uses.

#ifndef NEVE_SRC_WORKLOAD_STACKS_H_
#define NEVE_SRC_WORKLOAD_STACKS_H_

#include <cstdint>
#include <memory>

#include "src/hyp/guest_kvm.h"
#include "src/hyp/host_kvm.h"
#include "src/sim/machine.h"
#include "src/workload/microbench.h"
#include "src/x86/kvm_x86.h"

namespace neve {

// MMIO device region used by all guest workloads.
inline constexpr uint64_t kBenchDeviceBase = 0x4000'0000;
// SPI used for modeled device (network RX) interrupts.
inline constexpr uint32_t kBenchDeviceSpi = 48;

class ArmStack {
 public:
  ArmStack(const StackConfig& cfg, int num_cpus);
  ~ArmStack();

  Machine& machine() { return *machine_; }
  HostKvm& host() { return *l0_; }
  TestDevice& device() { return device_; }
  bool nested() const { return cfg_.nested; }

  // Runs `body` as the measured guest on pCPU 0. When `receiver` is given,
  // it runs first on pCPU 1 and is expected to park itself (IPI target /
  // interrupt sink). Returns the first confined guest fault (the VM is dead;
  // the machine survives) or OK; fault-free runs always return OK, so
  // benchmark callers may ignore the result.
  Status Run(GuestMain body, GuestMain receiver = nullptr);

  // The L0 vCPU carrying the measured guest (for virtual-IRQ queueing by
  // device models).
  Vcpu& MeasuredVcpu();

  uint64_t TotalTrapsToHost() const;

 private:
  StackConfig cfg_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<HostKvm> l0_;
  TestDevice device_;
  Vm* vm_ = nullptr;         // the (only) L0-level VM
  Vm* nvm_ = nullptr;        // nested VM when cfg.nested
  std::unique_ptr<GuestKvm> l1_;
};

class X86Stack {
 public:
  X86Stack(bool nested, int num_cpus, bool vmcs_shadowing = true);

  X86Machine& machine() { return *machine_; }
  KvmX86& host() { return *l0_; }
  bool nested() const { return nested_; }

  void Run(X86GuestMain body, X86GuestMain receiver = nullptr);

  uint64_t TotalVmexits() const { return machine_->TotalVmexits(); }

 private:
  bool nested_;
  std::unique_ptr<X86Machine> machine_;
  std::unique_ptr<KvmX86> l0_;
  std::unique_ptr<X86GuestHyp> l1_;
};

}  // namespace neve

#endif  // NEVE_SRC_WORKLOAD_STACKS_H_
