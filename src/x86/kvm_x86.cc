#include "src/x86/kvm_x86.h"

namespace neve {

X86Machine::X86Machine(int num_cpus, const CostModel& cost,
                       uint64_t wire_latency)
    : wire_latency_(wire_latency) {
  // host-invariant: machine construction parameter.
  NEVE_CHECK(num_cpus > 0);
  for (int i = 0; i < num_cpus; ++i) {
    cpus_.push_back(std::make_unique<VmxCpu>(i, cost));
  }
}

uint64_t X86Machine::TotalVmexits() const {
  uint64_t total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu->vmexits();
  }
  return total;
}

// ---------------------------------------------------------------------------
// KvmX86 (the L0 hypervisor)
// ---------------------------------------------------------------------------

KvmX86::KvmX86(X86Machine* machine, bool vmcs_shadowing)
    : machine_(machine), vmcs_shadowing_(vmcs_shadowing) {
  // host-invariant: hypervisor construction wiring.
  NEVE_CHECK(machine != nullptr);
  loaded_.resize(machine->num_cpus(), nullptr);
  for (int i = 0; i < machine->num_cpus(); ++i) {
    machine->cpu(i).SetRootHandler(this);
  }
}

X86Vcpu* KvmX86::CreateVcpu(bool nested_hyp) {
  auto vcpu = std::make_unique<X86Vcpu>();
  vcpu->id = static_cast<int>(vcpus_.size());
  vcpu->nested_hyp = nested_hyp;
  vcpu->mode = X86VcpuMode::kGuest;
  vcpus_.push_back(std::move(vcpu));
  return vcpus_.back().get();
}

void KvmX86::EnterL1Context(VmxCpu& cpu, X86Vcpu& vcpu) {
  cpu.Vmptrld(&vcpu.vmcs01, &vcpu.vmcs12,
              vmcs_shadowing_ && vcpu.nested_hyp);
  vcpu.mode = vcpu.nested_hyp ? X86VcpuMode::kL1Hyp : X86VcpuMode::kGuest;
}

void KvmX86::EnterL2Context(VmxCpu& cpu, X86Vcpu& vcpu) {
  cpu.Vmptrld(&vcpu.vmcs02, nullptr, false);
  vcpu.mode = X86VcpuMode::kL2;
}

void KvmX86::RunVcpu(X86Vcpu& vcpu, int pcpu) {
  // host-invariant: pcpu scheduling is harness sequencing.
  NEVE_CHECK(loaded_.at(pcpu) == nullptr);
  VmxCpu& cpu = machine_->cpu(pcpu);
  loaded_[pcpu] = &vcpu;
  vcpu.loaded_on_pcpu = pcpu;
  cpu.Compute(SwCostX86::kDispatch);  // vcpu load
  EnterL1Context(cpu, vcpu);
  // host-invariant: single-start enforced by the harness.
  NEVE_CHECK(!vcpu.main_started);
  vcpu.main_started = true;
  cpu.RunNonRoot([&] {
    X86Env env(&cpu, &vcpu);
    vcpu.main_sw(env);
  });
  if (vcpu.parked) {
    return;  // stays logically running, interrupt-driven
  }
  loaded_[pcpu] = nullptr;
  vcpu.loaded_on_pcpu = -1;
}

void KvmX86::MergeVmcs02(VmxCpu& cpu, X86Vcpu& vcpu) {
  // prepare_vmcs02: guest state and controls from vmcs12, host state from
  // vmcs01 -- the software cost VMCS shadowing cannot remove.
  cpu.Compute(SwCostX86::kMerge);
  for (int f = 0; f < Vmcs::kNumGuestStateFields; ++f) {
    auto field = static_cast<VmcsField>(f);
    cpu.VmwriteRoot(vcpu.vmcs02, field, cpu.VmreadRoot(vcpu.vmcs12, field));
  }
  for (int f = Vmcs::kFirstControlField;
       f < Vmcs::kFirstControlField + Vmcs::kNumControlFields; ++f) {
    auto field = static_cast<VmcsField>(f);
    cpu.VmwriteRoot(vcpu.vmcs02, field, cpu.VmreadRoot(vcpu.vmcs12, field));
  }
}

void KvmX86::ReflectToL1(VmxCpu& cpu, X86Vcpu& vcpu, const X86Syndrome& s) {
  // Sync the exit information from the hardware VMCS into the guest
  // hypervisor's vmcs12, then vector into it.
  cpu.Compute(SwCostX86::kReflect);
  for (int f = Vmcs::kFirstExitField;
       f < Vmcs::kFirstExitField + Vmcs::kNumExitFields; ++f) {
    auto field = static_cast<VmcsField>(f);
    cpu.VmwriteRoot(vcpu.vmcs12, field, cpu.VmreadRoot(vcpu.vmcs02, field));
  }
  EnterL1Context(cpu, vcpu);
  if (!vcpu.l1_handler_active) {
    // host-invariant: the x86 baseline runs fixed scripted workloads that always register an L1.
    NEVE_CHECK_MSG(vcpu.l1 != nullptr, "no guest hypervisor registered");
    vcpu.l1_handler_active = true;
    cpu.RunNonRoot([&] {
      X86Env env(&cpu, &vcpu);
      vcpu.l1->OnForwardedExit(env, s);
    });
    vcpu.l1_handler_active = false;
  }
}

X86Outcome KvmX86::HandleL0Exit(VmxCpu& cpu, X86Vcpu& vcpu,
                                const X86Syndrome& s) {
  cpu.Compute(SwCostX86::kDispatch);
  switch (s.reason) {
    case ExitReason::kVmcall:
      cpu.Compute(SwCostX86::kHypercall);
      cpu.VmwriteRoot(*cpu.current_vmcs(), VmcsField::kGuestRip, 0);
      return X86Outcome::Completed();
    case ExitReason::kIoAccess:
      cpu.Compute(SwCostX86::kDevice);
      return X86Outcome::Completed(0xD0D0'0000 | s.qualification);
    case ExitReason::kIcrWrite:
      cpu.Compute(SwCostX86::kApicEmul);
      if (s.target_cpu >= 0 &&
          s.target_cpu < static_cast<int>(vcpus_.size())) {
        DeliverIpi(*vcpus_[s.target_cpu], s.vector, &cpu);
      }
      return X86Outcome::Completed();
    case ExitReason::kWrmsr:
      cpu.Compute(SwCostX86::kMsrEmul);
      return X86Outcome::Completed();
    case ExitReason::kInvept:
      cpu.Compute(SwCostX86::kInveptEmul);
      return X86Outcome::Completed();
    case ExitReason::kExternalInterrupt:
      // Device interrupt for the running guest: ack, inject, run the guest's
      // vector (APICv injects without a second exit).
      cpu.Compute(SwCostX86::kPostIntr);
      InvokeGuestIrqHandler(cpu, vcpu, s.vector);
      return X86Outcome::Completed();
    case ExitReason::kHlt:
      return X86Outcome::Completed();
    default:
      // host-invariant: the x86 baseline only emits the modeled exit reasons.
      NEVE_CHECK_MSG(false, "unhandled L0 exit");
  }
  return X86Outcome::Completed();
}

X86Outcome KvmX86::OnVmexit(VmxCpu& cpu, const X86Syndrome& s) {
  X86Vcpu* vcpu = loaded_.at(cpu.index());
  // host-invariant: exits only fire while RunVcpu has a vcpu loaded.
  NEVE_CHECK_MSG(vcpu != nullptr, "vmexit with no vcpu loaded");
  ++vcpu->exits;

  // EPT violations take the host's fast path regardless of nesting:
  // multi-dimensional paging resolves L2 faults against the shadow EPT
  // without the guest hypervisor.
  if (s.reason == ExitReason::kEptViolation) {
    cpu.Compute(SwCostX86::kEptFixup);
    return X86Outcome::Completed();
  }

  if (vcpu->nested_hyp) {
    // Nested bookkeeping runs on every exit of a nested stack: request
    // processing, vmcs12 dirty tracking, state reconciliation.
    cpu.Compute(SwCostX86::kNestedExitOverhead);
  }

  switch (vcpu->mode) {
    case X86VcpuMode::kGuest:
      return HandleL0Exit(cpu, *vcpu, s);

    case X86VcpuMode::kL1Hyp:
      // The guest hypervisor's own exits.
      switch (s.reason) {
        case ExitReason::kVmreadWrite:
          cpu.Compute(SwCostX86::kCtrlEmul);
          if (s.is_write) {
            cpu.VmwriteRoot(vcpu->vmcs12, s.field, s.value);
            return X86Outcome::Completed();
          }
          return X86Outcome::Completed(cpu.VmreadRoot(vcpu->vmcs12, s.field));
        case ExitReason::kVmresume: {
          MergeVmcs02(cpu, *vcpu);
          EnterL2Context(cpu, *vcpu);
          if (!vcpu->nested_started && vcpu->nested_sw) {
            vcpu->nested_started = true;
            cpu.RunNonRoot([&] {
              X86Env env(&cpu, vcpu);
              vcpu->nested_sw(env);
            });
            if (!vcpu->parked) {
              EnterL1Context(cpu, *vcpu);
            }
          }
          return X86Outcome::Completed();
        }
        default:
          return HandleL0Exit(cpu, *vcpu, s);
      }

    case X86VcpuMode::kL2:
      // The nested VM's exits belong to the guest hypervisor.
      ReflectToL1(cpu, *vcpu, s);
      if (s.reason == ExitReason::kExternalInterrupt) {
        // The guest hypervisor injected the interrupt and resumed its
        // guest, which now takes its vector.
        InvokeGuestIrqHandler(cpu, *vcpu, s.vector);
      }
      return X86Outcome::Completed(vcpu->mmio_result);
  }
  return X86Outcome::Completed();
}

void KvmX86::InvokeGuestIrqHandler(VmxCpu& cpu, X86Vcpu& vcpu,
                                   uint32_t vector) {
  if (!vcpu.guest_irq) {
    return;
  }
  cpu.Compute(SwCostX86::kVectorEntry);
  X86Env env(&cpu, &vcpu);
  vcpu.guest_irq(env, vector);
}

void KvmX86::DeliverIpi(X86Vcpu& target, uint32_t vector, VmxCpu* raiser) {
  target.pending_vectors.push_back(vector);
  int pcpu = target.loaded_on_pcpu;
  if (pcpu < 0 || (raiser != nullptr && raiser->index() == pcpu)) {
    return;
  }
  VmxCpu& rcpu = machine_->cpu(pcpu);
  if (raiser != nullptr) {
    rcpu.AdvanceTo(raiser->cycles() + machine_->wire_latency());
  }
  target.pending_vectors.pop_back();

  if (target.mode == X86VcpuMode::kGuest) {
    // APICv posted interrupt: delivered without a vmexit.
    rcpu.Compute(SwCostX86::kPostIntr);
    InvokeGuestIrqHandler(rcpu, target, vector);
    return;
  }

  // Nested receiver: external-interrupt exit, reflected to the guest
  // hypervisor, which injects into the nested VM and resumes it.
  rcpu.Compute(rcpu.cost().vmexit);
  rcpu.NoteAsyncVmexit();
  ++target.exits;
  if (target.nested_hyp) {
    rcpu.Compute(SwCostX86::kNestedExitOverhead);
  }
  X86Syndrome s;
  s.reason = ExitReason::kExternalInterrupt;
  s.vector = vector;
  ReflectToL1(rcpu, target, s);
  rcpu.Compute(rcpu.cost().vmentry);
  InvokeGuestIrqHandler(rcpu, target, vector);
}

// ---------------------------------------------------------------------------
// X86GuestHyp (the L1 hypervisor personality)
// ---------------------------------------------------------------------------

X86GuestHyp::X86GuestHyp(X86Env* boot_env, X86Machine* machine)
    : machine_(machine) {
  // host-invariant: construction wiring.
  NEVE_CHECK(boot_env != nullptr && machine != nullptr);
  boot_env->vcpu().l1 = this;
}

void X86GuestHyp::ResumeNested(X86Env& env) {
  // The non-shadowable tail of every handled exit: recompute physical
  // controls, TLB maintenance, preemption timer, then resume.
  env.Vmwrite(VmcsField::kProcControls, 0x8401'E172);  // exits (unshadowable)
  env.Invept();                                        // exits
  env.Wrmsr(0x6E0, env.cpu().cycles() + 100000);       // exits (TSC deadline)
  env.Vmresume();                                      // exits; host merges
}

void X86GuestHyp::RunNested(X86Env& env, X86GuestMain program) {
  env.vcpu().nested_sw = std::move(program);
  env.vcpu().nested_started = false;
  // Populate vmcs12's guest state (shadowed writes: no exits).
  for (int f = 0; f < Vmcs::kNumGuestStateFields; ++f) {
    env.Vmwrite(static_cast<VmcsField>(f), 0x1000 + f);
  }
  env.Vmwrite(VmcsField::kEptPointer, 0xEEE000);  // exits (unshadowable)
  env.Compute(SwCostX86::kL1Handler);             // vcpu setup
  ResumeNested(env);
  // Returns when the nested program finished or parked.
}

void X86GuestHyp::HandleExitBody(X86Env& env, const X86Syndrome& s) {
  switch (s.reason) {
    case ExitReason::kVmcall:
      env.Compute(SwCostX86::kHypercall);
      return;
    case ExitReason::kIoAccess:
      env.Compute(SwCostX86::kDevice);
      env.CompleteMmio(0xD0D0'BEEF);
      return;
    case ExitReason::kIcrWrite:
      // Our guest's IPI: emulate its APIC and kick the target through our
      // own ICR (which exits to the host).
      env.Compute(SwCostX86::kApicEmul);
      env.SendIpi(s.target_cpu, s.vector);
      return;
    case ExitReason::kExternalInterrupt:
      // A kick for our guest: inject the pending vector on the next entry.
      env.Compute(SwCostX86::kPostIntr);
      env.Vmwrite(VmcsField::kExitIntrInfo, s.vector);  // shadowed
      return;
    case ExitReason::kHlt:
      return;
    default:
      // host-invariant: the x86 baseline only emits the modeled exit reasons.
      NEVE_CHECK_MSG(false, "x86 guest hypervisor: unhandled exit");
  }
}

void X86GuestHyp::OnForwardedExit(X86Env& env, const X86Syndrome& s) {
  // Read the exit information from vmcs12 (shadowed: no exits).
  (void)env.Vmread(VmcsField::kExitReason);
  (void)env.Vmread(VmcsField::kExitQualification);
  (void)env.Vmread(VmcsField::kGuestRip);
  (void)env.Vmread(VmcsField::kExitIntrInfo);
  (void)env.Vmread(VmcsField::kInstructionLength);
  env.Compute(SwCostX86::kL1Handler);
  HandleExitBody(env, s);
  env.Vmwrite(VmcsField::kGuestRip, env.Vmread(VmcsField::kGuestRip) + 3);
  ResumeNested(env);
  // Contract: the host resumed the nested VM; unwind now.
}

}  // namespace neve
