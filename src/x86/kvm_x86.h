// KVM x86-style hypervisor with Turtles nested virtualization
// (paper sections 2 and 5's comparison baseline).
//
// Single level: trap-and-emulate with hardware VMCS transitions.
// Nested (Turtles): the guest hypervisor's VMCS for its guest (vmcs12) is
// shadowed so its vmread/vmwrite mostly complete without exits (VMCS
// shadowing -- the Intel feature the paper contrasts with NEVE); on
// vmresume the host merges vmcs12 with its own vmcs01 into the vmcs02 that
// hardware actually runs, and reflects the nested VM's exits back into
// vmcs12. The handful of non-shadowable accesses plus vmresume/invept/wrmsr
// produce the ~5 exits per operation of Table 7's x86 column.

#ifndef NEVE_SRC_X86_KVM_X86_H_
#define NEVE_SRC_X86_KVM_X86_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/x86/vmx_cpu.h"

namespace neve {

// Software path lengths for the x86 stack, calibrated so the single-level
// rows land near Table 1's x86 column; nested costs emerge (DESIGN.md 6).
struct SwCostX86 {
  static constexpr uint32_t kDispatch = 180;      // exit demux (L0)
  static constexpr uint32_t kHypercall = 90;
  static constexpr uint32_t kDevice = 1180;       // device backend
  static constexpr uint32_t kApicEmul = 600;      // ICR emulation
  static constexpr uint32_t kPostIntr = 380;      // posted-interrupt path
  static constexpr uint32_t kVectorEntry = 200;   // guest IDT dispatch
  static constexpr uint32_t kMsrEmul = 260;
  static constexpr uint32_t kInveptEmul = 340;
  static constexpr uint32_t kCtrlEmul = 320;      // non-shadowed vmwrite
  static constexpr uint32_t kEptFixup = 1600;     // fast-path EPT handling
  // Nested machinery (the heavy parts of KVM's nested_vmx_*):
  static constexpr uint32_t kNestedExitOverhead = 4000;  // per exit while a
                                                         // nested stack runs
  static constexpr uint32_t kReflect = 1800;      // sync exit into vmcs12
  static constexpr uint32_t kMerge = 2800;        // prepare_vmcs02
  static constexpr uint32_t kL1Handler = 2200;    // guest hyp kernel work
};

class X86Machine {
 public:
  X86Machine(int num_cpus, const CostModel& cost, uint64_t wire_latency = 150);

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  VmxCpu& cpu(int i) { return *cpus_.at(i); }
  uint64_t wire_latency() const { return wire_latency_; }

  uint64_t TotalVmexits() const;

 private:
  std::vector<std::unique_ptr<VmxCpu>> cpus_;
  uint64_t wire_latency_;
};

class X86Env;
using X86GuestMain = std::function<void(X86Env&)>;
using X86IrqHandler = std::function<void(X86Env&, uint32_t vector)>;

class X86GuestHyp;

enum class X86VcpuMode : uint8_t { kGuest, kL1Hyp, kL2 };

struct X86Vcpu {
  int id = 0;
  bool nested_hyp = false;     // this vcpu hosts a guest hypervisor
  X86VcpuMode mode = X86VcpuMode::kGuest;
  Vmcs vmcs01;                 // L1 state
  Vmcs vmcs12;                 // guest hypervisor's VMCS for its guest
  Vmcs vmcs02;                 // merged VMCS hardware runs the L2 with
  X86GuestMain main_sw;
  X86GuestMain nested_sw;
  bool main_started = false;
  bool nested_started = false;
  X86IrqHandler guest_irq;     // IRQ vector of the currently relevant guest
  X86GuestHyp* l1 = nullptr;   // guest hypervisor personality
  bool l1_handler_active = false;
  bool parked = false;
  int loaded_on_pcpu = -1;
  std::deque<uint32_t> pending_vectors;
  uint64_t exits = 0;
  uint64_t mmio_result = 0;
};

class X86Env {
 public:
  X86Env(VmxCpu* cpu, X86Vcpu* vcpu) : cpu_(cpu), vcpu_(vcpu) {}
  VmxCpu& cpu() { return *cpu_; }
  X86Vcpu& vcpu() { return *vcpu_; }

  void Vmcall(uint16_t imm) { cpu_->Vmcall(imm); }
  uint64_t IoRead(uint16_t port) { return cpu_->IoRead(port); }
  void SendIpi(int target, uint32_t vector) { cpu_->SendIpi(target, vector); }
  void ApicEoi() { cpu_->ApicEoi(); }
  void Compute(uint32_t cycles) { cpu_->Compute(cycles); }
  uint64_t Vmread(VmcsField f) { return cpu_->Vmread(f); }
  void Vmwrite(VmcsField f, uint64_t v) { cpu_->Vmwrite(f, v); }
  void Vmresume() { cpu_->Vmresume(); }
  void Invept() { cpu_->Invept(); }
  void Wrmsr(uint32_t msr, uint64_t v) { cpu_->Wrmsr(msr, v); }

  void SetIrqHandler(X86IrqHandler handler) {
    vcpu_->guest_irq = std::move(handler);
  }
  void ParkRunning() { vcpu_->parked = true; }
  bool parked() const { return vcpu_->parked; }
  void CompleteMmio(uint64_t v) { vcpu_->mmio_result = v; }

 private:
  VmxCpu* cpu_;
  X86Vcpu* vcpu_;
};

// The L0 KVM x86 hypervisor.
class KvmX86 : public VmxRootHandler {
 public:
  KvmX86(X86Machine* machine, bool vmcs_shadowing);

  X86Vcpu* CreateVcpu(bool nested_hyp);
  void RunVcpu(X86Vcpu& vcpu, int pcpu);

  // Sends a cross-CPU interrupt (used by APIC emulation).
  void DeliverIpi(X86Vcpu& target, uint32_t vector, VmxCpu* raiser);

  X86Outcome OnVmexit(VmxCpu& cpu, const X86Syndrome& s) override;

  bool vmcs_shadowing() const { return vmcs_shadowing_; }

 private:
  void EnterL1Context(VmxCpu& cpu, X86Vcpu& vcpu);
  void EnterL2Context(VmxCpu& cpu, X86Vcpu& vcpu);
  void ReflectToL1(VmxCpu& cpu, X86Vcpu& vcpu, const X86Syndrome& s);
  void MergeVmcs02(VmxCpu& cpu, X86Vcpu& vcpu);
  X86Outcome HandleL0Exit(VmxCpu& cpu, X86Vcpu& vcpu, const X86Syndrome& s);
  void InvokeGuestIrqHandler(VmxCpu& cpu, X86Vcpu& vcpu, uint32_t vector);

  X86Machine* machine_;
  bool vmcs_shadowing_;
  std::vector<std::unique_ptr<X86Vcpu>> vcpus_;
  std::vector<X86Vcpu*> loaded_;  // per pcpu
};

// The L1 (guest) hypervisor personality: the same KVM design deprivileged.
class X86GuestHyp {
 public:
  X86GuestHyp(X86Env* boot_env, X86Machine* machine);

  // Brings a secondary virtual CPU under this hypervisor (SMP boot).
  void Attach(X86Env& env) { env.vcpu().l1 = this; }

  // Runs `program` as the nested VM on the caller's virtual CPU.
  void RunNested(X86Env& env, X86GuestMain program);

  // Called by the host when an exit belonging to this hypervisor's guest
  // was reflected into vmcs12.
  void OnForwardedExit(X86Env& env, const X86Syndrome& s);

 private:
  void HandleExitBody(X86Env& env, const X86Syndrome& s);
  void ResumeNested(X86Env& env);

  X86Machine* machine_;
};

}  // namespace neve

#endif  // NEVE_SRC_X86_KVM_X86_H_
