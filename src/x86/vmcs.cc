#include "src/x86/vmcs.h"

namespace neve {

const char* VmcsFieldName(VmcsField field) {
  switch (field) {
    case VmcsField::kGuestRip:
      return "GUEST_RIP";
    case VmcsField::kGuestRsp:
      return "GUEST_RSP";
    case VmcsField::kGuestRflags:
      return "GUEST_RFLAGS";
    case VmcsField::kGuestCr0:
      return "GUEST_CR0";
    case VmcsField::kGuestCr3:
      return "GUEST_CR3";
    case VmcsField::kGuestCr4:
      return "GUEST_CR4";
    case VmcsField::kGuestEfer:
      return "GUEST_EFER";
    case VmcsField::kGuestCsBase:
      return "GUEST_CS_BASE";
    case VmcsField::kGuestSsBase:
      return "GUEST_SS_BASE";
    case VmcsField::kGuestDsBase:
      return "GUEST_DS_BASE";
    case VmcsField::kGuestEsBase:
      return "GUEST_ES_BASE";
    case VmcsField::kGuestFsBase:
      return "GUEST_FS_BASE";
    case VmcsField::kGuestGsBase:
      return "GUEST_GS_BASE";
    case VmcsField::kGuestTrBase:
      return "GUEST_TR_BASE";
    case VmcsField::kGuestGdtrBase:
      return "GUEST_GDTR_BASE";
    case VmcsField::kGuestIdtrBase:
      return "GUEST_IDTR_BASE";
    case VmcsField::kGuestDr7:
      return "GUEST_DR7";
    case VmcsField::kGuestSysenterEsp:
      return "GUEST_SYSENTER_ESP";
    case VmcsField::kGuestSysenterEip:
      return "GUEST_SYSENTER_EIP";
    case VmcsField::kGuestActivityState:
      return "GUEST_ACTIVITY_STATE";
    case VmcsField::kGuestIntrState:
      return "GUEST_INTERRUPTIBILITY";
    case VmcsField::kHostRip:
      return "HOST_RIP";
    case VmcsField::kHostRsp:
      return "HOST_RSP";
    case VmcsField::kHostCr3:
      return "HOST_CR3";
    case VmcsField::kHostFsBase:
      return "HOST_FS_BASE";
    case VmcsField::kHostGsBase:
      return "HOST_GS_BASE";
    case VmcsField::kPinControls:
      return "PIN_CONTROLS";
    case VmcsField::kProcControls:
      return "PROC_CONTROLS";
    case VmcsField::kProcControls2:
      return "PROC_CONTROLS2";
    case VmcsField::kExceptionBitmap:
      return "EXCEPTION_BITMAP";
    case VmcsField::kEptPointer:
      return "EPT_POINTER";
    case VmcsField::kVmcsLinkPointer:
      return "VMCS_LINK_POINTER";
    case VmcsField::kTprThreshold:
      return "TPR_THRESHOLD";
    case VmcsField::kExitReason:
      return "EXIT_REASON";
    case VmcsField::kExitQualification:
      return "EXIT_QUALIFICATION";
    case VmcsField::kGuestPhysAddr:
      return "GUEST_PHYSICAL_ADDRESS";
    case VmcsField::kExitIntrInfo:
      return "EXIT_INTR_INFO";
    case VmcsField::kInstructionLength:
      return "INSTRUCTION_LENGTH";
    case VmcsField::kNumFields:
      break;
  }
  return "?";
}

bool FieldShadowed(VmcsField field) {
  switch (field) {
    // Controls with immediate effect on the physical execution environment
    // cannot be handled from the shadow: they vmexit so the host can
    // recompute the real (merged) controls.
    case VmcsField::kProcControls:
    case VmcsField::kEptPointer:
    case VmcsField::kTprThreshold:
      return false;
    default:
      return true;
  }
}

}  // namespace neve
