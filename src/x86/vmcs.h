// VMCS (VM Control Structure) model -- the heart of the x86 comparison.
//
// The paper's section 2 contrast: Intel VT keeps the VM's machine state in a
// memory-resident structure that hardware saves/restores *wholesale* on every
// root/non-root transition, while ARM leaves state movement to software,
// register by register. The VMCS model here is what makes the x86 columns of
// Tables 1/6/7 behave: a guest hypervisor touches VM state through
// vmread/vmwrite (trappable, but mostly absorbed by VMCS shadowing), and a
// single vmexit/vmentry moves everything at once.

#ifndef NEVE_SRC_X86_VMCS_H_
#define NEVE_SRC_X86_VMCS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace neve {

enum class VmcsField : uint8_t {
  // Guest state (saved/restored by hardware on transitions).
  kGuestRip = 0,
  kGuestRsp,
  kGuestRflags,
  kGuestCr0,
  kGuestCr3,
  kGuestCr4,
  kGuestEfer,
  kGuestCsBase,
  kGuestSsBase,
  kGuestDsBase,
  kGuestEsBase,
  kGuestFsBase,
  kGuestGsBase,
  kGuestTrBase,
  kGuestGdtrBase,
  kGuestIdtrBase,
  kGuestDr7,
  kGuestSysenterEsp,
  kGuestSysenterEip,
  kGuestActivityState,
  kGuestIntrState,
  // Host state (loaded on vmexit).
  kHostRip,
  kHostRsp,
  kHostCr3,
  kHostFsBase,
  kHostGsBase,
  // Execution controls.
  kPinControls,
  kProcControls,
  kProcControls2,
  kExceptionBitmap,
  kEptPointer,
  kVmcsLinkPointer,
  kTprThreshold,
  // Exit information (read-only to software, written by hardware).
  kExitReason,
  kExitQualification,
  kGuestPhysAddr,
  kExitIntrInfo,
  kInstructionLength,
  kNumFields,
};

inline constexpr int kNumVmcsFields = static_cast<int>(VmcsField::kNumFields);

const char* VmcsFieldName(VmcsField field);

// True for fields covered by the VMCS-shadowing read/write bitmaps KVM
// programs: accesses by a guest hypervisor complete without a vmexit.
// Control fields that affect the *physical* execution environment cannot be
// shadowed and still trap (the residual exits of Table 7's x86 column).
bool FieldShadowed(VmcsField field);

class Vmcs {
 public:
  uint64_t Read(VmcsField field) const {
    return fields_[static_cast<size_t>(field)];
  }
  void Write(VmcsField field, uint64_t value) {
    fields_[static_cast<size_t>(field)] = value;
  }

  // Field groups, used by the nested-merge and hardware-transition paths.
  static constexpr int kNumGuestStateFields =
      static_cast<int>(VmcsField::kGuestIntrState) + 1;
  static constexpr int kFirstControlField =
      static_cast<int>(VmcsField::kPinControls);
  static constexpr int kNumControlFields =
      static_cast<int>(VmcsField::kTprThreshold) -
      static_cast<int>(VmcsField::kPinControls) + 1;
  static constexpr int kFirstExitField =
      static_cast<int>(VmcsField::kExitReason);
  static constexpr int kNumExitFields =
      static_cast<int>(VmcsField::kInstructionLength) -
      static_cast<int>(VmcsField::kExitReason) + 1;

 private:
  std::array<uint64_t, kNumVmcsFields> fields_ = {};
};

}  // namespace neve

#endif  // NEVE_SRC_X86_VMCS_H_
