#include "src/x86/vmx_cpu.h"

namespace neve {

const char* ExitReasonName(ExitReason reason) {
  switch (reason) {
    case ExitReason::kVmcall:
      return "VMCALL";
    case ExitReason::kIoAccess:
      return "IO";
    case ExitReason::kIcrWrite:
      return "ICR_WRITE";
    case ExitReason::kVmreadWrite:
      return "VMREAD_VMWRITE";
    case ExitReason::kVmresume:
      return "VMRESUME";
    case ExitReason::kInvept:
      return "INVEPT";
    case ExitReason::kWrmsr:
      return "WRMSR";
    case ExitReason::kExternalInterrupt:
      return "EXTERNAL_INTERRUPT";
    case ExitReason::kEptViolation:
      return "EPT_VIOLATION";
    case ExitReason::kHlt:
      return "HLT";
  }
  return "?";
}

uint64_t VmxCpu::VmreadRoot(Vmcs& vmcs, VmcsField field) {
  // host-invariant: root-mode ops are only issued by the modeled L0.
  NEVE_CHECK(!nonroot_);
  Compute(cost_.vmread);
  return vmcs.Read(field);
}

void VmxCpu::VmwriteRoot(Vmcs& vmcs, VmcsField field, uint64_t value) {
  // host-invariant: root-mode ops are only issued by the modeled L0.
  NEVE_CHECK(!nonroot_);
  Compute(cost_.vmwrite);
  vmcs.Write(field, value);
}

void VmxCpu::Vmptrld(Vmcs* vmcs, Vmcs* shadow, bool shadowing) {
  // host-invariant: root-mode ops are only issued by the modeled L0.
  NEVE_CHECK(!nonroot_);
  Compute(cost_.vmwrite);  // vmptrld is roughly a VMCS access
  current_ = vmcs;
  shadow_ = shadow;
  shadowing_ = shadowing;
}

void VmxCpu::RunNonRoot(const std::function<void()>& body) {
  // host-invariant: root-mode ops are only issued by the modeled L0.
  NEVE_CHECK(!nonroot_);
  NEVE_CHECK_MSG(current_ != nullptr, "no VMCS loaded");
  // vmentry: hardware loads the full guest state from the VMCS.
  Compute(cost_.vmentry);
  nonroot_ = true;
  body();
  // host-invariant: non-root ops are only issued from RunNonRoot bodies.
  NEVE_CHECK(nonroot_);
  nonroot_ = false;
}

X86Outcome VmxCpu::TakeVmexit(const X86Syndrome& s) {
  // host-invariant: mode pairing is VmxCpu's own sequencing.
  NEVE_CHECK_MSG(nonroot_, "vmexit from root mode");
  NEVE_CHECK_MSG(host_ != nullptr, "no root handler installed");
  // host-invariant: bounded by the fixed scripted workloads.
  NEVE_CHECK(exit_depth_ < 64);
  // Hardware: save guest state to the VMCS, load host state, record the
  // exit information -- one bundled operation (the CISC contrast).
  Compute(cost_.vmexit);
  ++vmexits_;
  current_->Write(VmcsField::kExitReason, static_cast<uint64_t>(s.reason));
  current_->Write(VmcsField::kExitQualification, s.qualification);

  nonroot_ = false;
  ++exit_depth_;
  X86Outcome outcome = host_->OnVmexit(*this, s);
  --exit_depth_;
  // Re-enter non-root mode. The handler either left the VMCS context alone
  // (plain emulate-and-resume) or deliberately switched it (nested context
  // change) -- both are entered as-is, like hardware.
  nonroot_ = true;
  Compute(cost_.vmentry);
  return outcome;
}

uint64_t VmxCpu::Vmread(VmcsField field) {
  // host-invariant: non-root ops are only issued from RunNonRoot bodies.
  NEVE_CHECK(nonroot_);
  if (shadowing_ && shadow_ != nullptr && FieldShadowed(field)) {
    Compute(cost_.vmread);
    return shadow_->Read(field);
  }
  X86Syndrome s;
  s.reason = ExitReason::kVmreadWrite;
  s.field = field;
  s.is_write = false;
  return TakeVmexit(s).value;
}

void VmxCpu::Vmwrite(VmcsField field, uint64_t value) {
  // host-invariant: non-root ops are only issued from RunNonRoot bodies.
  NEVE_CHECK(nonroot_);
  if (shadowing_ && shadow_ != nullptr && FieldShadowed(field)) {
    Compute(cost_.vmwrite);
    shadow_->Write(field, value);
    return;
  }
  X86Syndrome s;
  s.reason = ExitReason::kVmreadWrite;
  s.field = field;
  s.is_write = true;
  s.value = value;
  TakeVmexit(s);
}

void VmxCpu::Vmcall(uint16_t imm) {
  X86Syndrome s;
  s.reason = ExitReason::kVmcall;
  s.qualification = imm;
  TakeVmexit(s);
}

void VmxCpu::Vmresume() {
  X86Syndrome s;
  s.reason = ExitReason::kVmresume;
  TakeVmexit(s);
}

void VmxCpu::Invept() {
  X86Syndrome s;
  s.reason = ExitReason::kInvept;
  TakeVmexit(s);
}

void VmxCpu::Wrmsr(uint32_t msr, uint64_t value) {
  X86Syndrome s;
  s.reason = ExitReason::kWrmsr;
  s.qualification = msr;
  s.value = value;
  TakeVmexit(s);
}

uint64_t VmxCpu::IoRead(uint16_t port) {
  X86Syndrome s;
  s.reason = ExitReason::kIoAccess;
  s.qualification = port;
  return TakeVmexit(s).value;
}

void VmxCpu::SendIpi(int target_cpu, uint32_t vector) {
  X86Syndrome s;
  s.reason = ExitReason::kIcrWrite;
  s.target_cpu = target_cpu;
  s.vector = vector;
  TakeVmexit(s);
}

void VmxCpu::EptViolation(uint64_t gpa) {
  X86Syndrome s;
  s.reason = ExitReason::kEptViolation;
  s.qualification = gpa;
  TakeVmexit(s);
}

void VmxCpu::TakeExternalInterrupt(uint32_t vector) {
  X86Syndrome s;
  s.reason = ExitReason::kExternalInterrupt;
  s.vector = vector;
  TakeVmexit(s);
}

void VmxCpu::ApicEoi() {
  // APICv virtual-EOI: hardware-complete, no exit. Paper: 316 cycles.
  Compute(316);
}

}  // namespace neve
