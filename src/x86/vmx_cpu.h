// VT-x CPU model: root/non-root modes with hardware VMCS transitions.
//
// The architectural contrast with ARM (paper section 2): entering and
// leaving a VM is a *single* hardware operation that saves/restores the
// whole machine state to/from the current VMCS -- so the vmexit/vmentry
// costs here bundle what ARM's world switch performs as dozens of
// individually-trappable register accesses. Guest hypervisors touch VM state
// with vmread/vmwrite, which VMCS shadowing (Intel's analogue of NEVE's
// deferred page) redirects to a shadow structure without exits.
//
// Control-flow modeling matches the ARM side: running a guest is a nested
// call; a vmexit invokes the root-mode handler synchronously and the guest
// resumes when it returns.

#ifndef NEVE_SRC_X86_VMX_CPU_H_
#define NEVE_SRC_X86_VMX_CPU_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/cpu/cost_model.h"
#include "src/x86/vmcs.h"

namespace neve {

enum class ExitReason : uint8_t {
  kVmcall = 18,
  kIoAccess = 30,
  kIcrWrite = 45,       // APIC ICR access (IPI send)
  kVmreadWrite = 24,    // non-shadowed VMCS access by a guest hypervisor
  kVmresume = 25,
  kInvept = 50,
  kWrmsr = 32,
  kExternalInterrupt = 1,
  kEptViolation = 48,   // handled on the host's fast path, even when nested
  kHlt = 12,
};

const char* ExitReasonName(ExitReason reason);

struct X86Syndrome {
  ExitReason reason = ExitReason::kVmcall;
  uint64_t qualification = 0;
  VmcsField field = VmcsField::kNumFields;  // kVmreadWrite
  bool is_write = false;
  uint64_t value = 0;
  uint32_t vector = 0;  // kIcrWrite / kExternalInterrupt
  int target_cpu = 0;   // kIcrWrite
};

struct X86Outcome {
  uint64_t value = 0;
  static X86Outcome Completed(uint64_t v = 0) { return {.value = v}; }
};

class VmxCpu;

class VmxRootHandler {
 public:
  virtual ~VmxRootHandler() = default;
  virtual X86Outcome OnVmexit(VmxCpu& cpu, const X86Syndrome& syndrome) = 0;
};

class VmxCpu {
 public:
  VmxCpu(int index, const CostModel& cost) : index_(index), cost_(cost) {}

  VmxCpu(const VmxCpu&) = delete;
  VmxCpu& operator=(const VmxCpu&) = delete;

  int index() const { return index_; }
  uint64_t cycles() const { return cycles_; }
  void AdvanceTo(uint64_t c) { cycles_ = std::max(cycles_, c); }
  uint64_t vmexits() const { return vmexits_; }
  // Records an asynchronous (externally-initiated) exit, e.g. an external
  // interrupt arriving while this CPU runs a guest.
  void NoteAsyncVmexit() { ++vmexits_; }
  const CostModel& cost() const { return cost_; }
  bool in_nonroot() const { return nonroot_; }

  void SetRootHandler(VmxRootHandler* host) { host_ = host; }

  // --- root-mode operations (host hypervisor) -------------------------------
  uint64_t VmreadRoot(Vmcs& vmcs, VmcsField field);
  void VmwriteRoot(Vmcs& vmcs, VmcsField field, uint64_t value);
  // Loads the controlling VMCS and shadow configuration for the next entry.
  void Vmptrld(Vmcs* vmcs, Vmcs* shadow, bool shadowing);
  // Enters non-root mode (hardware loads guest state from the current VMCS),
  // runs `body`, returns when it finishes. Exits inside `body` are handled
  // via the root handler and resume transparently.
  void RunNonRoot(const std::function<void()>& body);
  // Straight-line host code.
  void Compute(uint32_t cycles) { cycles_ += cycles; }

  // --- non-root operations (guests, incl. deprivileged hypervisors) --------
  uint64_t Vmread(VmcsField field);
  void Vmwrite(VmcsField field, uint64_t value);
  void Vmcall(uint16_t imm);
  void Vmresume();   // guest hypervisor resuming its guest: always exits
  void Invept();     // EPT TLB management: always exits
  void Wrmsr(uint32_t msr, uint64_t value);  // modeled MSRs exit
  uint64_t IoRead(uint16_t port);
  void SendIpi(int target_cpu, uint32_t vector);  // ICR write: exits
  // An external (device) interrupt arrives while this guest executes:
  // external-interrupt vmexit.
  void TakeExternalInterrupt(uint32_t vector);
  // EPT violation (guest page-table pressure). The host fixes these on its
  // fast path without involving a guest hypervisor (multi-dimensional
  // paging keeps L2 EPT faults a host-only affair).
  void EptViolation(uint64_t gpa);
  // APICv-accelerated EOI: completes without an exit (the x86 "Virtual EOI"
  // row of Tables 1/6: 316 cycles in VM and nested VM alike).
  void ApicEoi();

  Vmcs* current_vmcs() { return current_; }
  Vmcs* shadow_vmcs() { return shadow_; }
  bool shadowing() const { return shadowing_; }

 private:
  X86Outcome TakeVmexit(const X86Syndrome& syndrome);

  int index_;
  CostModel cost_;
  uint64_t cycles_ = 0;
  uint64_t vmexits_ = 0;
  bool nonroot_ = false;
  Vmcs* current_ = nullptr;
  Vmcs* shadow_ = nullptr;
  bool shadowing_ = false;
  VmxRootHandler* host_ = nullptr;
  int exit_depth_ = 0;
};

}  // namespace neve

#endif  // NEVE_SRC_X86_VMX_CPU_H_
