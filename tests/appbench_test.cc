// Property tests over the application benchmark models (Figure 2).

#include <gtest/gtest.h>

#include <string>

#include "src/workload/appbench.h"

namespace neve {
namespace {

const AppProfile& Profile(const std::string& name) {
  for (const AppProfile& p : AppProfiles()) {
    if (name == p.name) {
      return p;
    }
  }
  ADD_FAILURE() << "no profile " << name;
  static AppProfile dummy;
  return dummy;
}

TEST(AppProfilesTest, TenWorkloadsInFigureOrder) {
  auto profiles = AppProfiles();
  ASSERT_EQ(profiles.size(), 10u);
  EXPECT_STREQ(profiles[0].name, "Kernbench");
  EXPECT_STREQ(profiles[1].name, "Hackbench");
  EXPECT_STREQ(profiles[2].name, "SPECjvm2008");
  EXPECT_STREQ(profiles[9].name, "MySQL");
}

TEST(AppBenchTest, Deterministic) {
  const AppProfile& p = Profile("Memcached");
  AppBenchResult a = RunAppBench(p, AppStack::kArmNestedNeve);
  AppBenchResult b = RunAppBench(p, AppStack::kArmNestedNeve);
  EXPECT_EQ(a.overhead, b.overhead);
  EXPECT_EQ(a.cycles_per_request, b.cycles_per_request);
}

TEST(AppBenchTest, OverheadIsAtLeastNearNative) {
  for (const AppProfile& p : AppProfiles()) {
    for (int s = 0; s < 7; ++s) {
      AppBenchResult r = RunAppBench(p, static_cast<AppStack>(s));
      EXPECT_GE(r.overhead, 0.97) << p.name << " " << s;
      EXPECT_GT(r.native_cycles_per_request, 0);
    }
  }
}

TEST(AppBenchTest, Figure2Orderings) {
  // The figure's invariant shape, workload by workload: v8.3 nested is the
  // worst ARM config, VHE improves it, NEVE improves it by a large factor.
  for (const AppProfile& p : AppProfiles()) {
    double vm = RunAppBench(p, AppStack::kArmVm).overhead;
    double v83 = RunAppBench(p, AppStack::kArmNestedV83).overhead;
    double vhe = RunAppBench(p, AppStack::kArmNestedV83Vhe).overhead;
    double neve = RunAppBench(p, AppStack::kArmNestedNeve).overhead;
    EXPECT_LE(vm, neve * 1.02) << p.name;
    EXPECT_LT(neve, vhe) << p.name;
    EXPECT_LT(vhe, v83) << p.name;
  }
}

TEST(AppBenchTest, CpuBoundWorkloadsHaveModestNestedOverhead) {
  // Section 7.2: kernbench/SPECjvm "have a relatively modest performance
  // slowdown in nested VMs" -- 1.33x/1.24x non-VHE, 1.26x/1.14x VHE.
  double kern = RunAppBench(Profile("Kernbench"), AppStack::kArmNestedV83)
                    .overhead;
  EXPECT_NEAR(kern, 1.33, 0.12);
  double kern_vhe =
      RunAppBench(Profile("Kernbench"), AppStack::kArmNestedV83Vhe).overhead;
  EXPECT_NEAR(kern_vhe, 1.26, 0.12);
  double jvm =
      RunAppBench(Profile("SPECjvm2008"), AppStack::kArmNestedV83).overhead;
  EXPECT_NEAR(jvm, 1.24, 0.1);
  double jvm_vhe =
      RunAppBench(Profile("SPECjvm2008"), AppStack::kArmNestedV83Vhe).overhead;
  EXPECT_NEAR(jvm_vhe, 1.14, 0.1);
}

TEST(AppBenchTest, HackbenchMatchesPaperSlowdowns) {
  // Section 7.2: hackbench "is 15 and 11 times slower for non-VHE and VHE
  // guest hypervisors".
  EXPECT_NEAR(RunAppBench(Profile("Hackbench"), AppStack::kArmNestedV83)
                  .overhead,
              15, 4);
  EXPECT_NEAR(RunAppBench(Profile("Hackbench"), AppStack::kArmNestedV83Vhe)
                  .overhead,
              11, 3);
}

TEST(AppBenchTest, MemcachedMatchesPaperStory) {
  // Section 7.2: "Memcached performance goes from more than a 40 times
  // slowdown using ARMv8.3 to less than a 3 times slowdown using NEVE ...
  // Memcached running in a nested VM on x86 shows an 8 times slowdown
  // compared to only a 2.5 times slowdown on NEVE."
  const AppProfile& p = Profile("Memcached");
  EXPECT_GT(RunAppBench(p, AppStack::kArmNestedV83).overhead, 30);
  double neve = RunAppBench(p, AppStack::kArmNestedNeve).overhead;
  EXPECT_LT(neve, 3.0);
  double x86 = RunAppBench(p, AppStack::kX86Nested).overhead;
  EXPECT_NEAR(x86, 8.0, 2.0);
  EXPECT_GT(x86, neve * 2);
}

TEST(AppBenchTest, NeveBeatsX86OnThePaperWinList) {
  // Section 7.2: "NEVE incurs significantly less overhead than both ARMv8.3
  // and x86 on many of the network-related workloads, including Netperf
  // TCP MAERTS, Nginx, Memcached, and MySQL."
  for (const char* name : {"TCP_MAERTS", "Nginx", "Memcached", "MySQL"}) {
    const AppProfile& p = Profile(name);
    double neve = RunAppBench(p, AppStack::kArmNestedNeve).overhead;
    double x86 = RunAppBench(p, AppStack::kX86Nested).overhead;
    EXPECT_LT(neve, x86) << name;
  }
}

TEST(AppBenchTest, InterruptStormWorkloadsCollapseOnV83Only) {
  // The order-of-magnitude claim: NEVE pulls the interrupt-heavy workloads
  // back by ~10x from the ARMv8.3 cliff.
  for (const char* name : {"TCP_MAERTS", "Memcached"}) {
    const AppProfile& p = Profile(name);
    double v83 = RunAppBench(p, AppStack::kArmNestedV83).overhead;
    double neve = RunAppBench(p, AppStack::kArmNestedNeve).overhead;
    EXPECT_GT(v83, 30) << name;
    EXPECT_GT(v83 / neve, 8) << name;
  }
}

TEST(AppBenchTest, MySqlShowsTheX86SingleLevelCost) {
  // Section 7.2: "MySQL runs better with NEVE because of the high cost of
  // x86 non-nested virtualization compared to ARM."
  const AppProfile& p = Profile("MySQL");
  double arm_vm = RunAppBench(p, AppStack::kArmVm).overhead;
  double x86_vm = RunAppBench(p, AppStack::kX86Vm).overhead;
  EXPECT_GT(x86_vm, arm_vm * 1.15);
}

TEST(AppBenchTest, VheNeveSlightlySlowerThanNonVheNeve) {
  // The EL02 timer traps cost VHE guest hypervisors a little extra
  // (Table 6's 100,895 vs 92,385 pattern shows up in app workloads too).
  const AppProfile& p = Profile("Apache");
  double nvhe = RunAppBench(p, AppStack::kArmNestedNeve).overhead;
  double vhe = RunAppBench(p, AppStack::kArmNestedNeveVhe).overhead;
  EXPECT_GT(vhe, nvhe * 0.98);
  EXPECT_LT(vhe, nvhe * 1.25);
}

TEST(AppBenchTest, StackNamesAreStable) {
  EXPECT_STREQ(AppStackName(AppStack::kArmVm), "ARMv8.3 VM");
  EXPECT_STREQ(AppStackName(AppStack::kArmNestedNeve), "NEVE Nested");
  EXPECT_STREQ(AppStackName(AppStack::kX86Nested), "x86 Nested");
}

}  // namespace
}  // namespace neve
